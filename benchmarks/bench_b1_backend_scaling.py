"""B1: partition-parallel execution backend on the Scenario-A mesh.

Times global time-stepping of the scaled Scenario-A coupled model under
the serial backend and the partitioned backend at 1/2/4 workers, checks
the trajectories agree to roundoff, and times the operator-plan cache
(cold build vs warm hit, plus invalidation on an order change).

The >= 1.5x speedup acceptance bar only applies where parallel hardware
exists: the assertion is gated on ``os.cpu_count() >= 4`` and the report
states the core count it ran on.  Timing results are reported per backend
configuration via ``report(..., backend=..., workers=...)`` so serial and
partitioned numbers never collide in ``benchmarks/out``.
"""

import os
import time

import numpy as np

from _cache import report, scenario_a_config
from repro.exec import clear_plan_cache, get_plan_cache
from repro.obs import get_telemetry
from repro.scenarios.scenario_a import build_coupled

N_STEPS = 8
N_PROFILE_STEPS = 2


def _build(backend="serial", workers=None):
    solver, fault = build_coupled(scenario_a_config(), backend=backend, workers=workers)
    return solver


def _time_steps(solver, n_steps=N_STEPS):
    t0 = time.perf_counter()
    for _ in range(n_steps):
        solver.step()
    return (time.perf_counter() - t0) / n_steps


def _profiled_snapshot(solver, n_steps=N_PROFILE_STEPS):
    """Per-phase telemetry of ``n_steps`` extra (untimed) steps.

    Run this only after the timed pass and any trajectory-equivalence
    assertions: the extra steps advance the solver past the compared state.
    """
    tel = get_telemetry()
    tel.reset()
    tel.enable()
    try:
        for _ in range(n_steps):
            solver.step()
    finally:
        tel.disable()
    snap = tel.snapshot()
    tel.reset()
    return {"n_steps_profiled": n_steps, "phases": snap["phases"],
            "counters": snap["counters"]}


def test_b1_backend_scaling(benchmark):
    cores = os.cpu_count() or 1
    clear_plan_cache()

    # cold operator build: every flux matrix from scratch
    t0 = time.perf_counter()
    serial = _build()
    t_setup_cold = time.perf_counter() - t0
    assert get_plan_cache().stats()["misses"] >= 1

    # one timed pass of N_STEPS steps; every backend below repeats the
    # exact same step sequence so final states are comparable
    per_step_serial = benchmark.pedantic(
        lambda: _time_steps(serial), rounds=1, iterations=1
    )
    q_serial = serial.Q.copy()

    rows = [
        "B1: execution-backend scaling, Scenario-A coupled mesh "
        f"({serial.mesh.n_elements} elements, order {serial.order}, "
        f"{cores} CPU core(s))",
        f"{'configuration':28} {'s/step':>10} {'speedup':>9}",
        f"{'serial':28} {per_step_serial:10.4f} {1.0:9.2f}",
    ]
    report("b1_backend_scaling", [f"per-step time: {per_step_serial:.4f} s"],
           backend="serial",
           metrics={"per_step_s": per_step_serial,
                    **_profiled_snapshot(serial)})

    speedups = {}
    for workers in (1, 2, 4):
        solver = _build(backend="partitioned", workers=workers)
        per_step = _time_steps(solver)
        # equivalence guard: same step count, same dt -> same trajectory
        scale = max(np.abs(q_serial).max(), 1e-300)
        np.testing.assert_allclose(solver.Q, q_serial, rtol=1e-10,
                                   atol=1e-13 * scale)
        speedups[workers] = per_step_serial / per_step
        rows.append(f"{'partitioned, %d worker(s)' % workers:28} "
                    f"{per_step:10.4f} {speedups[workers]:9.2f}")
        report("b1_backend_scaling", [f"per-step time: {per_step:.4f} s"],
               backend="partitioned", workers=workers,
               metrics={"per_step_s": per_step, "speedup": speedups[workers],
                        **_profiled_snapshot(solver)})
        solver.backend.close()

    # plan-cache warm hit: the operator build skips all flux-matrix setup
    hits0 = get_plan_cache().stats()["hits"]
    t0 = time.perf_counter()
    _build()
    t_setup_warm = time.perf_counter() - t0
    assert get_plan_cache().stats()["hits"] == hits0 + 1
    assert t_setup_warm < t_setup_cold, (
        f"plan-cache hit ({t_setup_warm:.3f} s) should beat the cold build "
        f"({t_setup_cold:.3f} s)"
    )

    # invalidation: a different order is a different problem -> cache miss
    misses0 = get_plan_cache().stats()["misses"]
    cfg = scenario_a_config()
    other_order = 1 if cfg.order != 1 else 2
    from dataclasses import replace

    build_coupled(replace(cfg, order=other_order))
    assert get_plan_cache().stats()["misses"] == misses0 + 1

    rows.append("")
    rows.append(f"operator setup  cold {t_setup_cold:.3f} s | plan-cache hit "
                f"{t_setup_warm:.3f} s ({t_setup_cold / max(t_setup_warm, 1e-9):.1f}x)")
    rows.append("plan cache invalidated on order change: yes")

    if cores >= 4:
        assert speedups[4] >= 1.5, (
            f"partitioned backend at 4 workers only {speedups[4]:.2f}x on "
            f"{cores} cores (acceptance bar: 1.5x)"
        )
        rows.append(f"acceptance (>=1.5x at 4 workers on {cores} cores): "
                    f"{speedups[4]:.2f}x PASS")
    else:
        rows.append(f"acceptance bar skipped: only {cores} CPU core(s) visible "
                    "(threads cannot speed up a serial machine)")
    report("b1_backend_scaling", rows)
