"""T4 (paper Sec. 6.3, closing numbers): efficiency table + node-weight
ablation.

Covers: the L-mesh scaling series (1298 -> 996 GFLOPS/node from 768 to
3072 nodes, 76.8% efficiency), and the node-weight ablation (without
heterogeneity-aware tpwgts, Mahti at 700 nodes reaches only 84% of the
weighted performance).
"""

import numpy as np

from _cache import report, scaling_mesh
from repro.hpc.machine import MAHTI, SUPERMUC_NG
from repro.hpc.scaling import StrongScalingModel


def test_t4_efficiency_and_node_weights(benchmark):
    mesh, cluster, _ = scaling_mesh()

    def run():
        # L-mesh-like series on SuperMUC-NG: 4x node span (768 -> 3072)
        model_ng = StrongScalingModel(mesh, cluster, order=5, machine=SUPERMUC_NG, seed=5)
        series = model_ng.sweep([8, 16, 32], ranks_per_node=2)
        # node-weight ablation on Mahti with a guaranteed straggler
        model_m = StrongScalingModel(mesh, cluster, order=5, machine=MAHTI, seed=5)
        r_on = model_m.simulate(24, 8, use_node_weights=True, force_straggler=True)
        r_off = model_m.simulate(24, 8, use_node_weights=False, force_straggler=True)
        return series, r_on, r_off

    series, r_on, r_off = benchmark.pedantic(run, rounds=1, iterations=1)

    eff = series[-1].parallel_efficiency
    ratio = r_off.gflops_per_node / r_on.gflops_per_node
    rows = [
        "T4 (Sec. 6.3): efficiency table and node-weight ablation",
        "",
        "L-mesh strong scaling (SuperMUC-NG, 2 ranks/node, 4x node span):",
        f"{'nodes':>8} {'GFLOPS/node':>12} {'efficiency':>11}",
    ]
    for r in series:
        rows.append(f"{r.n_nodes:>8} {r.gflops_per_node:>12.0f} {r.parallel_efficiency:>10.2f}")
    rows += [
        "",
        f"{'metric':46} {'paper':>8} {'model':>8}",
        f"{'L-mesh efficiency over 4x node increase':46} {'76.8%':>8} {eff * 100:>7.0f}%",
        f"{'no node weights / with node weights (Mahti)':46} {'84%':>8} {ratio * 100:>7.0f}%",
    ]
    assert 0.5 < eff <= 1.0
    assert 0.7 < ratio < 0.97
    report("t4_efficiency", rows)
