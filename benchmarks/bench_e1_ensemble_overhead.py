"""E1: supervision overhead of the multi-process ensemble driver.

Acceptance bar (ISSUE 6): on a clean (no-fault) 4-member ensemble the
supervised multi-process run must cost < 5% wall time versus running the
same members sequentially, unsupervised, in one process.  With one
worker per member the supervised fleet should in fact be *faster* than
the sequential baseline wherever parallel hardware exists — process
spawn, heartbeat traffic, durable run logs and result publishing are the
overhead the bar bounds.

Reported both ways:

* ``parallel overhead`` — supervised wall (4 workers) vs sequential
  unsupervised wall: the number the acceptance bar gates (< 5%, i.e. the
  driver never costs more than the naive loop even after paying its
  supervision machinery);
* ``serialized overhead`` — supervised wall with 1 worker vs the same
  baseline: the pure cost of supervision without the parallel win
  (informational; dominated by interpreter spawn for small members).

The digest cross-check asserts the supervised members reproduce the
sequential baseline bitwise — supervision must observe, never perturb.
"""

import os
import time

from _cache import FAST, report
from repro.ensemble import MemberSpec, Supervisor, run_member, state_digest

N_MEMBERS = 4
#: member sizing: large enough that compute dominates process spawn in
#: the full run; tiny in REPRO_FAST smoke mode
T_END = 0.25 if FAST else 2.5
N_X = 4 if FAST else 6


def _specs():
    return [
        MemberSpec(
            member_id=f"e1_{k:04d}",
            builder="quickstart",
            perturb={"n_x": N_X},
            seed=100 + k,
            t_end=T_END,
        )
        for k in range(N_MEMBERS)
    ]


def _sequential_unsupervised(specs):
    """The naive loop the driver replaces: build, run, no supervision."""
    digests = {}
    t0 = time.perf_counter()
    for spec in specs:
        handle = spec.build()
        handle.solver.run(spec.t_end)
        digests[spec.member_id] = state_digest(handle.solver, handle.lts)
    return time.perf_counter() - t0, digests


def _supervised(specs, workers, out_dir):
    t0 = time.perf_counter()
    result = Supervisor(
        specs, workers=workers, out_dir=out_dir,
        member_timeout=600.0, verbose=False,
    ).run()
    return time.perf_counter() - t0, result


def test_e1_ensemble_overhead(benchmark):
    import tempfile

    out_root = tempfile.mkdtemp(prefix="e1_")
    specs = _specs()

    seq_wall, digests = _sequential_unsupervised(specs)

    par_wall, par_result = benchmark(
        _supervised, specs, N_MEMBERS, os.path.join(out_root, "par")
    )
    ser_wall, _ = _supervised(specs, 1, os.path.join(out_root, "ser"))

    # supervision must observe, never perturb: bitwise identity per member
    for m in par_result.members:
        assert m.status == "ok", (m.member_id, m.status, m.diagnosis)
        assert m.digest == digests[m.member_id], m.member_id

    par_overhead = (par_wall - seq_wall) / seq_wall
    ser_overhead = (ser_wall - seq_wall) / seq_wall
    lines = [
        f"members: {N_MEMBERS} (quickstart n_x={N_X}, t_end={T_END}s"
        f"{', REPRO_FAST' if FAST else ''})",
        f"sequential unsupervised:      {seq_wall:8.2f} s",
        f"supervised, {N_MEMBERS} workers:        {par_wall:8.2f} s  "
        f"(overhead {par_overhead:+.1%})",
        f"supervised, 1 worker:         {ser_wall:8.2f} s  "
        f"(overhead {ser_overhead:+.1%}, spawn-dominated)",
        f"digest cross-check: {N_MEMBERS}/{N_MEMBERS} bitwise-identical",
    ]
    gate = not FAST and (os.cpu_count() or 1) >= N_MEMBERS
    if gate:
        assert par_overhead < 0.05, (
            f"supervision overhead {par_overhead:.1%} exceeds the 5% bar "
            f"(supervised {par_wall:.2f}s vs sequential {seq_wall:.2f}s)"
        )
        lines.append("acceptance: parallel overhead < 5% PASS")
    else:
        lines.append(
            "acceptance gate skipped "
            f"({'REPRO_FAST' if FAST else f'{os.cpu_count()} cpus'})"
        )
    report("e1_ensemble_overhead", lines, metrics={
        "members": N_MEMBERS,
        "t_end": T_END,
        "seq_wall_s": seq_wall,
        "par_wall_s": par_wall,
        "ser_wall_s": ser_wall,
        "par_overhead": par_overhead,
        "ser_overhead": ser_overhead,
        "gated": gate,
    })


def test_e1_worker_roundtrip(benchmark):
    """Single-member in-process worker cost: build + run + publish."""
    import tempfile

    out_root = tempfile.mkdtemp(prefix="e1w_")
    spec = _specs()[0]

    result = benchmark(
        run_member, spec, os.path.join(out_root, spec.member_id)
    )
    assert result["status"] == "completed"
    report("e1_worker_roundtrip", [
        f"one member (t_end={spec.t_end}s): {result['wall_s']:.2f} s wall, "
        f"{result['steps']} step(s)",
        f"digest {result['digest'][:16]}…",
    ])


if __name__ == "__main__":
    class _Bench:
        def __call__(self, fn, *a, **k):
            return fn(*a, **k)

    test_e1_ensemble_overhead(_Bench())
    test_e1_worker_roundtrip(_Bench())
