"""Ablation A1 (paper Sec. 4.2): one-sided flux does not converge.

The paper stresses that the elastic-acoustic interface flux must be the
*exact* Riemann solution using both sides' material parameters: "Failing to
ensure consistency, e.g., if a flux is used that only takes material
parameters from one side into account ... may lead to a non-converging
scheme when coupling elastics and acoustics [Wilcox et al.]".

This bench runs the convergence study on the coupled *SH* standing mode —
an exact solution whose elastic side slips tangentially along the interface
while the ocean stays at rest, so the zero-shear interface condition is
load-bearing.  The exact flux converges at the design order; the one-sided
flux stalls at an O(1) error.
"""

import numpy as np

from _cache import report
from repro.scenarios.convergence import CoupledSHModeSetup, l2_error


def run_variant(setup, flux_variant, nz, order=2):
    s = setup.build_solver(nz, order, flux_variant=flux_variant)
    T = 0.25 * 2 * np.pi / setup.omega
    n = int(np.ceil(T / s.dt))
    for _ in range(n):
        s.step(T / n)
    ref = l2_error(s, lambda x, t: np.zeros((len(x), 9)), 0.0)
    return l2_error(s, setup.exact, s.t) / ref


def test_a1_one_sided_flux_does_not_converge(benchmark):
    setup = CoupledSHModeSetup()

    def study():
        out = {}
        for variant in ("exact", "one_sided"):
            out[variant] = [run_variant(setup, variant, nz) for nz in (2, 4)]
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)

    rate_exact = np.log2(out["exact"][0] / out["exact"][1])
    rate_bad = np.log2(out["one_sided"][0] / out["one_sided"][1])
    rows = [
        "A1 (Sec. 4.2 ablation): exact vs one-sided elastic-acoustic flux",
        "coupled SH standing mode (interface slip), relative L2 error",
        "after a quarter period:",
        "",
        f"{'flux':>12} {'error (h)':>12} {'error (h/2)':>12} {'rate':>6}",
        f"{'exact':>12} {out['exact'][0]:>12.2e} {out['exact'][1]:>12.2e} {rate_exact:>6.2f}",
        f"{'one-sided':>12} {out['one_sided'][0]:>12.2e} {out['one_sided'][1]:>12.2e} {rate_bad:>6.2f}",
        "",
        "paper: a flux 'that only takes material parameters from one side",
        "into account ... may lead to a non-converging scheme when coupling",
        "elastics and acoustics.'",
    ]
    assert rate_exact > 2.0  # order-2 scheme: ~3
    assert out["one_sided"][1] > 20 * out["exact"][1]
    assert rate_bad < 1.0  # stalls
    report("a1_flux_ablation", rows)
