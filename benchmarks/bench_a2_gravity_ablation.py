"""Ablation A2: the gravitational free-surface term is what makes tsunamis.

The paper's core modeling contribution is that "the effects of
gravitational restoring forces, which are responsible for tsunami
propagation, are efficiently incorporated through a modification of the
standard free surface boundary condition" (Sec. 1, Eqs. 5-7).  Without the
``rho g eta`` feedback, the ocean surface has no restoring force: a
seafloor uplift permanently offsets the surface and nothing propagates as a
gravity wave.

This bench performs the same impulsive seafloor uplift with the gravity
term on and off and tracks the sea surface at the source: with gravity the
hump collapses and radiates (a tsunami); without it the hump just sits
there (an ordinary free surface only reflects acoustics).
"""

import numpy as np

from _cache import report
from repro.core.materials import acoustic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh


def uplift_response(g: float):
    h, L, c = 1.0, 8.0, 25.0
    oc = acoustic(1000.0, c)
    m = box_mesh(
        np.linspace(0, L, 17), np.linspace(0, 0.5, 2), np.linspace(-h, 0, 5), [oc]
    )
    m.glue_periodic(np.array([L, 0, 0]))
    m.glue_periodic(np.array([0, 0.5, 0]))

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.WALL.value)
        tags[nrm[:, 2] < -0.99] = FaceKind.PRESCRIBED_MOTION.value
        tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
        return tags

    m.tag_boundary(tagger)
    u0, T_rise, x0 = 1e-4, 0.12, L / 2

    def motion(pts, t):
        rate = u0 / T_rise if t < T_rise else 0.0
        return rate * np.exp(-((pts[:, 0] - x0) ** 2) / (2 * 0.8**2))

    s = CoupledSolver(m, order=2, gravity_g=g, bottom_motion=motion)
    k = 2 * np.pi / L
    omega = np.sqrt(9.81 * k * np.tanh(k * h))
    t_end = T_rise + 1.2 * 2 * np.pi / omega
    probe = np.array([[x0, 0.25]])
    ts, etas = [], []
    n = int(np.ceil(t_end / s.dt))
    stride = max(1, n // 60)
    for i in range(n):
        s.step()
        if i % stride == 0:
            ts.append(s.t)
            etas.append(float(s.gravity.sample(probe)[0]))
    return np.array(ts), np.array(etas) / u0, s


def test_a2_gravity_makes_the_tsunami(benchmark):
    def study():
        return {g: uplift_response(g) for g in (9.81, 0.0)}

    out = benchmark.pedantic(study, rounds=1, iterations=1)

    t_g, eta_g, s_g = out[9.81]
    t_0, eta_0, s_0 = out[0.0]
    # after the rise the gravity case swings below its initial hump and
    # oscillates/radiates; the g=0 case keeps its (Kajiura-filtered) hump
    early_g = eta_g[(t_g > 0.15) & (t_g < 0.3 * t_g[-1])].mean()
    early_0 = eta_0[(t_0 > 0.15) & (t_0 < 0.3 * t_0[-1])].mean()
    late_g = eta_g[t_g > 0.5 * t_g[-1]]
    late_0 = eta_0[t_0 > 0.5 * t_0[-1]]
    rows = [
        "A2 (ablation): gravitational free surface on/off, impulsive uplift",
        "sea-surface displacement above the source / uplift amplitude:",
        "",
        f"{'time window':>26} {'with gravity':>14} {'g = 0':>10}",
        f"{'early (hump established)':>26} {early_g:>14.2f} {early_0:>10.2f}",
        f"{'late (t > T_grav/2): mean':>26} {late_g.mean():>14.2f} {late_0.mean():>10.2f}",
        f"{'late: min':>26} {late_g.min():>14.2f} {late_0.min():>10.2f}",
        "(the established hump is the Kajiura-filtered uplift, < 1 by design)",
        "",
        "with gravity the hump collapses, overshoots and radiates away (the",
        "tsunami); with g = 0 there is no restoring force and the uplifted",
        "surface simply persists — 'gravitational restoring forces ... are",
        "responsible for tsunami propagation' (Sec. 3).",
    ]
    # g = 0: the hump persists (late == early within acoustic noise)
    assert abs(late_0.mean() - early_0) < 0.25 * abs(early_0), (late_0.mean(), early_0)
    assert late_0.mean() > 0.4
    # gravity: the hump collapses and swings through zero
    assert late_g.min() < 0.2
    assert late_g.mean() < 0.7 * late_0.mean()
    report("a2_gravity_ablation", rows)
