"""T1 (paper Sec. 5.1): node-level NUMA study on the AMD Rome 7H12 node.

The paper measures five numbers with a wave-propagation performance
reproducer; here the calibrated roofline+NUMA model regenerates the same
table, plus the extrapolated single-NUMA limits the paper derives from
them.  Also times this library's *actual* Python kernels on a small mesh
to report the honest pure-Python throughput for context.
"""

import time

import numpy as np

from _cache import report
from repro.core.materials import elastic
from repro.core.solver import CoupledSolver
from repro.hpc.machine import AMD_ROME_7H12
from repro.hpc.perfmodel import NodePerformanceModel, kernel_counts
from repro.mesh.generators import box_mesh


def test_t1_numa_node_level(benchmark):
    m = NodePerformanceModel(AMD_ROME_7H12, order=5)
    peak = AMD_ROME_7H12.peak_gflops

    entries = [
        ("peak GFLOPS/node", 5325.0, peak),
        ("predictor, full node", 3360.0, m.predictor_gflops()),
        ("predictor, 1 NUMA domain", 428.0, m.predictor_gflops(1)),
        ("predictor, extrapolated limit", 3424.0, m.numa_extrapolated_limit()),
        ("pred+corr, full node", 2053.0, m.full_gflops()),
        ("pred+corr, 1 NUMA domain", 376.0, m.full_gflops(1)),
        ("pred+corr, extrapolated limit", 3008.0, m.numa_extrapolated_limit(full=True)),
        ("pred+corr, one socket", 1390.0, m.full_gflops(4)),
    ]
    rows = [
        "T1 (Sec. 5.1): node-level performance, dual AMD Rome 7H12 [GFLOPS]",
        f"{'kernel / placement':34} {'paper':>9} {'model':>9} {'dev':>7}",
    ]
    for name, paper, model in entries:
        rows.append(f"{name:34} {paper:9.0f} {model:9.0f} {abs(model - paper) / paper * 100:6.1f}%")
        assert abs(model - paper) / paper < 0.16

    # NUMA effect statement of the paper: corrector suffers, predictor not
    rows.append("")
    rows.append(f"predictor efficiency  paper 63% | model {m.predictor_gflops() / peak * 100:.0f}%")
    rows.append(f"pred+corr efficiency  paper 38% | model {m.full_gflops() / peak * 100:.0f}%")
    rows.append(f"8 ranks/node (predicted, drives Sec. 6.3): {m.full_gflops(ranks_per_node=8):.0f} GFLOPS")

    # honest pure-Python kernel throughput of this reproduction, measured
    rock = elastic(2700.0, 6000.0, 3464.0)
    mesh = box_mesh(*(np.linspace(0, 1000.0, 9),) * 3, [rock])
    solver = CoupledSolver(mesh, order=3)
    solver.set_initial_condition(
        lambda x: np.exp(-((x - 500) ** 2).sum(1) / 1e5)[:, None] * np.ones((len(x), 9))
    )
    flops = kernel_counts(3).flops_total * mesh.n_elements

    def step():
        solver.step()

    benchmark.pedantic(step, rounds=5, iterations=1, warmup_rounds=1)
    t_step = benchmark.stats["mean"]
    rows.append("")
    rows.append(
        f"this reproduction (pure NumPy, 1 core, order 3, {mesh.n_elements} elems): "
        f"{flops / t_step / 1e9:.2f} GFLOPS/step"
    )
    report("t1_numa_nodelevel", rows)
