"""Fig. 2: solution structure of the coupled elastic-acoustic Riemann problem.

The paper's Fig. 2 is the schematic eigenstructure at an elastic-acoustic
interface: one left-going P and two left-going S waves in the elastic
medium, a single right-going P wave in the acoustic medium.  This bench
verifies that structure numerically from the rotated Jacobians and times
the per-face flux-matrix construction (the setup cost of Eq. 20).
"""

import numpy as np

from _cache import report
from repro.core.materials import acoustic, elastic, jacobian_normal
from repro.core.riemann import interior_flux_matrices

ROCK = elastic(2700.0, 6000.0, 3464.0)
WATER = acoustic(1000.0, 1500.0)


def wave_census(mat, n):
    ev = np.sort(np.real(np.linalg.eigvals(jacobian_normal(mat, n))))
    tol = 1e-6 * mat.cp
    left = ev[ev < -tol]
    right = ev[ev > tol]
    return left, right


def test_fig2_riemann_structure(benchmark):
    rng = np.random.default_rng(0)
    n = rng.normal(size=3)
    n /= np.linalg.norm(n)

    left_e, right_e = wave_census(ROCK, n)
    left_a, right_a = wave_census(WATER, n)

    rows = [
        "Fig. 2 (Riemann solution structure at the elastic-acoustic interface)",
        f"{'':28} {'paper':>28} {'measured':>28}",
        f"{'elastic side, out-going':28} {'1 P + 2 S waves':>28} "
        f"{f'{(np.abs(left_e + ROCK.cp) < 1).sum()} P + {(np.abs(left_e + ROCK.cs) < 1).sum()} S':>28}",
        f"{'acoustic side, out-going':28} {'1 P wave':>28} "
        f"{f'{(np.abs(right_a - WATER.cp) < 1).sum()} P + {(np.abs(np.abs(right_a) - WATER.cs) < 1).sum() if WATER.cs else 0} S':>28}",
        f"{'elastic wave speeds':28} {'cp, cs, cs':>28} "
        f"{np.array2string(-left_e, precision=0):>28}",
        f"{'acoustic wave speed':28} {'cp':>28} {np.array2string(right_a, precision=0):>28}",
    ]
    assert (np.abs(left_e + ROCK.cp) < 1).sum() == 1
    assert (np.abs(left_e + ROCK.cs) < 1).sum() == 2
    assert len(right_a) == 1 and abs(right_a[0] - WATER.cp) < 1

    # time the per-face exact-Riemann flux matrix construction (Eq. 20)
    def build():
        return interior_flux_matrices(ROCK, WATER, n)

    Fm, Fp = benchmark(build)
    rows.append(f"{'per-face F-/F+ matrices':28} {'precomputed (Eq. 20)':>28} "
                f"{'2 x 9x9 built & cached':>28}")
    report("fig2_riemann_structure", rows)
