"""T2 (paper Sec. 5.3): partition-weight sweep for w_DR and w_G.

The paper varies the Eq. 28 surcharges for dynamic-rupture faces (w_DR)
and gravitational-boundary faces (w_G) between 50 and 500 on short
production runs, finding that performance generally increases with w_G
(300-500 appropriate) while w_DR shows no clear trend (the Newton load is
dynamic and partition-dependent).

Here the same sweep runs against the scaled Palu mesh: the *actual* cost of
a gravity element carries a fixed surcharge (the face-ODE integration has a
deterministic cost), while the rupture surcharge is drawn per step from a
wide range (the data-dependent Newton iterations).  The partitioner only
sees the static Eq. 28 weights — exactly the paper's mismatch.  Performance
is the inverse of the slowest partition's actual load.
"""

import numpy as np

from _cache import FAST, palu_built, report
from repro.core.riemann import FaceKind
from repro.hpc.partition import eq28_vertex_weights, partition_geometric

WEIGHTS = [50, 100, 200, 300, 400, 500]
PART_COUNTS = [12, 16, 24, 32]  # averaged to smooth partition graininess
GRAVITY_SURCHARGE = 5.0  # actual per-face cost of the eta ODE (~8 RK stages
#   each needing a predictor trace evaluation and extrapolation, Sec. 5.3)
DR_SURCHARGE_RANGE = (1.0, 8.0)  # Newton iterations vary over time


def performance(mesh, cluster, w_g, w_dr, rng, n_steps=6):
    ne = mesh.n_elements
    base = 2.0 ** (cluster.max() - cluster)
    bnd = mesh.boundary
    grav = np.zeros(ne)
    np.add.at(grav, bnd.elem[bnd.kind == FaceKind.GRAVITY_FREE_SURFACE.value], 1.0)
    itf = mesh.interior
    f = itf.is_fault
    dr = np.zeros(ne)
    np.add.at(dr, np.concatenate([itf.minus_elem[f], itf.plus_elem[f]]), 1.0)

    weights = eq28_vertex_weights(mesh, cluster, w_g=w_g, w_dr=w_dr)
    t_total = 0.0
    for n_parts in PART_COUNTS:
        parts = partition_geometric(mesh.centroids, weights.astype(float), n_parts)
        for _ in range(n_steps):
            # Newton counts vary per fault element and per step: a rupture
            # front sweeping the fault loads different partitions at
            # different times (the paper's dynamic-load argument)
            dr_cost = rng.uniform(*DR_SURCHARGE_RANGE, size=mesh.n_elements)
            actual = base * (1.0 + GRAVITY_SURCHARGE * grav + dr_cost * dr)
            loads = np.bincount(parts, weights=actual, minlength=n_parts)
            t_total += loads.max() / loads.mean()
    return 1.0 / t_total


def test_t2_weight_sweep(benchmark):
    solver, fault, lts = palu_built()
    mesh = solver.mesh
    cluster = lts.cluster

    def sweep():
        out = {}
        for which in ("w_G", "w_DR"):
            perf = []
            for w in WEIGHTS:
                rng = np.random.default_rng(7)  # same DR noise for all weights
                if which == "w_G":
                    perf.append(performance(mesh, cluster, w_g=w, w_dr=200, rng=rng))
                else:
                    perf.append(performance(mesh, cluster, w_g=300, w_dr=w, rng=rng))
            out[which] = np.array(perf)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)

    g = result["w_G"] / result["w_G"].max()
    d = result["w_DR"] / result["w_DR"].max()
    rows = [
        "T2 (Sec. 5.3): Eq. 28 weight sweep (relative performance, 1.0 = best)",
        f"{'weight':>8} {'vary w_G (w_DR=200)':>22} {'vary w_DR (w_G=300)':>22}",
    ]
    for i, w in enumerate(WEIGHTS):
        rows.append(f"{w:>8} {g[i]:>22.3f} {d[i]:>22.3f}")
    best_g = WEIGHTS[int(np.argmax(g))]
    rows += [
        "",
        f"{'finding':44} {'paper':>14} {'model':>12}",
        f"{'best w_G':44} {'300-500':>14} {best_g:>12}",
        f"{'performance gain, best vs worst w_G':44} {'increases':>14} "
        f"{(g.max() / g.min() - 1) * 100:>10.1f}%",
        f"{'w_DR spread (no clear optimum)':44} {'trendless':>14} "
        f"{(d.max() / d.min() - 1) * 100:>10.1f}%",
        "",
        "paper: 'For w_G, we found that the performance generally increases",
        "with weight, indicating that a weight in the range of 300-500 is",
        "appropriate. For w_DR, a clear trend is not apparent' — the Newton",
        "load is dynamic, so no static weight can be consistently right.",
    ]
    if not FAST:  # the FAST mesh is too grainy for a stable optimum
        assert best_g >= 200, best_g
        assert g[WEIGHTS.index(300)] > g[WEIGHTS.index(50)]
    report("t2_weight_sweep", rows)
