"""V1 (paper Sec. 6.1, preliminaries): convergence against analytic solutions.

The paper states the coupled implementation was verified "in preliminary
convergence analyses with respect to analytic solutions".  This bench
regenerates the study: (a) elastic plane-wave convergence order N+1, and
(b) the coupled elastic-acoustic standing mode against the exact two-layer
dispersion solution — the case where a one-sided (uncoupled) flux would
not converge at all (Sec. 4.2).
"""

import numpy as np

from _cache import FAST, report
from repro.scenarios.convergence import (
    CoupledModeSetup,
    l2_error,
    periodic_box_solver,
    plane_wave,
)
from repro.core.materials import elastic


def test_v1_convergence(benchmark):
    mat = elastic(1.0, 2.0, 1.0)

    def study():
        out = {}
        # (a) plane-wave h-convergence at two orders
        for order in (1, 2) if FAST else (1, 2, 3):
            errs = []
            exact, cp = plane_wave(mat, "P")
            for nc in (4, 8):
                s = periodic_box_solver(mat, nc, order)
                s.set_initial_condition(lambda x: exact(x, 0.0))
                T = 0.15 / cp
                n = int(np.ceil(T / s.dt))
                for _ in range(n):
                    s.step(T / n)
                errs.append(l2_error(s, exact, s.t))
            out[("plane", order)] = errs
        # (b) coupled standing mode, orders 2 and 3
        setup = CoupledModeSetup()
        for order in (2, 3):
            errs = []
            for nz in (2, 4):
                s = setup.build_solver(nz, order)
                T = 0.25 * 2 * np.pi / setup.omega
                n = int(np.ceil(T / s.dt))
                for _ in range(n):
                    s.step(T / n)
                errs.append(l2_error(s, setup.exact, s.t))
            out[("coupled", order)] = errs
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)

    rows = [
        "V1 (Sec. 6.1): convergence vs analytic solutions",
        f"{'case':28} {'order':>6} {'L2(h)':>11} {'L2(h/2)':>11} {'rate':>6} {'expected':>9}",
    ]
    for (case, order), errs in out.items():
        rate = np.log2(errs[0] / errs[1])
        rows.append(
            f"{case:28} {order:>6} {errs[0]:>11.3e} {errs[1]:>11.3e} {rate:>6.2f} {order + 1:>9}"
        )
        assert rate > order + 1 - 0.6, (case, order, errs)
    rows += [
        "",
        "the coupled-mode cases verify the exact elastic-acoustic Riemann",
        "flux: a flux using one-sided material parameters would stall at",
        "O(1) error here (the non-convergence pitfall of Sec. 4.2)",
    ]
    report("v1_convergence", rows)
