"""Fig. 3 (paper Sec. 6.1): Scenario-A benchmark, coupled vs one-way linked.

The paper's verification scenario: the sea-surface height of the fully
coupled model matches the one-way-linked shallow-water model at the low
frequencies characterizing the tsunami, while short-wavelength,
high-frequency oscillations (reverberating ocean acoustic modes, periods
< 4h/c) trail the seismic wavefronts *only* in the fully coupled model.

This bench runs both pipelines on the scaled scenario and prints the
Fig. 3b transect plus the quantified comparison.
"""

import numpy as np

from _cache import report, scenario_a_config, scenario_a_coupled_run, scenario_a_linked_run, scenario_a_t_end
from repro.analysis.fields import surface_eta_transect


def lowpass(x, k):
    """Simple moving-average low-pass (k points)."""
    kernel = np.ones(k) / k
    return np.convolve(x, kernel, mode="same")


def test_fig3_scenario_a(benchmark):
    cfg = scenario_a_config()
    t_end = scenario_a_t_end()
    solver, fault = scenario_a_coupled_run()
    eq, fault2, tracker, swe = scenario_a_linked_run()

    n_pts = 33

    def transects():
        x_line = np.linspace(cfg.x_extent[0] + cfg.dx, cfg.x_extent[1] - cfg.dx, n_pts)
        _, eta_c = surface_eta_transect(solver, [x_line[0], 0.0], [x_line[-1], 0.0], n_pts)
        eta_l = swe.sample_eta(np.column_stack([x_line, np.zeros(n_pts)]))
        return x_line, eta_c, eta_l

    x_line, eta_c, eta_l = benchmark.pedantic(transects, rounds=1, iterations=1)

    rows = [
        f"Fig. 3 (Sec. 6.1): Scenario A sea-surface height along y=0, t = {t_end:.1f} s",
        f"coupled mesh {solver.mesh.n_elements} elems | "
        f"earthquake-only mesh {eq.mesh.n_elements} elems | Mw {fault.moment_magnitude():.2f}",
        "",
        f"{'x [m]':>8} {'coupled [m]':>12} {'linked [m]':>12}",
    ]
    for x, ec, el in zip(x_line, eta_c, eta_l):
        rows.append(f"{x:8.0f} {ec:12.4f} {el:12.4f}")

    # low-frequency agreement + coupled-only high-frequency content.
    # The acoustic reverberations are measured where the *linked* solution
    # is quiet (away from the tsunami hump, whose sharp hydrostatic fronts
    # would otherwise dominate the linked model's own short-wave content) —
    # the paper's "oscillations trailing the leading seismic wavefronts".
    k = 7
    lo_c, lo_l = lowpass(eta_c, k), lowpass(eta_l, k)
    corr = np.corrcoef(lo_c[k:-k], lo_l[k:-k])[0, 1]
    quiet = np.abs(eta_l) < 0.25 * np.abs(eta_l).max()
    quiet[:k] = quiet[-k:] = False
    if quiet.sum() < 6:  # fall back to the full transect
        quiet = np.ones_like(quiet)
        quiet[:k] = quiet[-k:] = False
    hf_c = float(np.std((eta_c - lo_c)[quiet]))
    hf_l = float(np.std((eta_l - lo_l)[quiet]))
    acoustic_period = 4 * cfg.ocean_depth / cfg.c_ocean

    rows += [
        "",
        f"{'comparison':46} {'paper':>12} {'measured':>10}",
        f"{'long-wavelength agreement (correlation)':46} {'matches':>12} {corr:>10.2f}",
        f"{'peak eta coupled [m]':46} {'~same':>12} {np.abs(eta_c).max():>10.3f}",
        f"{'peak eta linked [m]':46} {'~same':>12} {np.abs(eta_l).max():>10.3f}",
        f"{'short-wave content off the hump, coupled':46} {'present':>12} {hf_c:>10.4f}",
        f"{'short-wave content off the hump, linked':46} {'absent':>12} {hf_l:>10.4f}",
        f"{'acoustic reverberation period 4h/c [s]':46} {'5.3 (2 km)':>12} "
        f"{acoustic_period:>10.2f}",
        "",
        "paper: 'The sea surface height from our fully coupled solution",
        "matches the one-way linked approach at the low frequencies",
        "characterizing the tsunami response ... high frequency oscillations",
        "... are captured only in our fully coupled model.'",
    ]
    peak_ratio = np.abs(eta_c).max() / max(np.abs(eta_l).max(), 1e-12)
    assert corr > 0.55, corr
    assert 0.3 < peak_ratio < 3.0, peak_ratio
    assert hf_c > 1.2 * hf_l, (hf_c, hf_l)
    report("fig3_scenario_a", rows)
