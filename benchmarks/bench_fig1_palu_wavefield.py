"""Fig. 1 (paper Secs. 1, 6.2): the fully coupled Palu wavefield.

The paper's headline figure: sustained supershear rupture across the fault
under Palu Bay, a shear Mach cone imprinted on the vertical sea-surface
velocity, transient acoustic sea-surface motion, and the static
uplift/subsidence pattern (subsidence southeast / uplift northwest of the
fault) that sources the tsunami.

This bench runs the scaled fully coupled Palu scenario and checks the same
qualitative diagnostics: rupture speed > cs (Mach number), sea-surface
velocity dominated by the near-fault Mach front, quadrant signs of the
mean surface displacement, and acoustic frequencies consistent with the
resolvable band.
"""

import numpy as np

from _cache import palu_config, palu_coupled_run, palu_t_end, report
from repro.analysis.fields import sea_surface_grid, sea_surface_velocity_grid
from repro.analysis.spectra import max_excited_frequency, resolved_frequency


def rupture_front_speed(fault, nucleation_y):
    """Front speed from the *late* arrivals (after the Burridge-Andrews
    supershear transition; the early sub-shear phase would bias the fit)."""
    rt = fault.rupture_time
    y = fault.points[:, :, 1]
    fin = np.isfinite(rt) & (rt > 0.05) & (y < nucleation_y - 800.0)
    if fin.sum() < 8:
        return np.nan
    t_med = np.median(rt[fin])
    late = fin & (rt >= t_med)
    dist = nucleation_y - y[late]
    A = np.vstack([rt[late], np.ones(late.sum())]).T
    slope = np.linalg.lstsq(A, dist, rcond=None)[0][0]
    return float(slope)


def test_fig1_palu_wavefield(benchmark):
    cfg = palu_config()
    solver, fault, lts, receivers = palu_coupled_run()

    def diagnostics():
        xs = np.linspace(cfg.x_extent[0], cfg.x_extent[1], 29)
        ys = np.linspace(cfg.y_extent[0], cfg.y_extent[1], 37)
        X, Y, eta = sea_surface_grid(solver, xs, ys)
        _, _, vz = sea_surface_velocity_grid(solver, xs, ys)
        return X, Y, eta, vz

    X, Y, eta, vz = benchmark.pedantic(diagnostics, rounds=1, iterations=1)

    cs = cfg.earth_material.cs
    vr = rupture_front_speed(fault, cfg.nucleation_y)
    mach = vr / cs

    quad = {}
    for name, mask in [
        ("NW", (X < cfg.fault_x) & (Y > 0)),
        ("NE", (X > cfg.fault_x) & (Y > 0)),
        ("SW", (X < cfg.fault_x) & (Y < 0)),
        ("SE", (X > cfg.fault_x) & (Y < 0)),
    ]:
        quad[name] = float(eta[mask].mean())

    f_res = resolved_frequency(cfg.dx_fine / cfg.n_ocean_layers, cfg.c_ocean, cfg.order)

    rows = [
        f"Fig. 1 (Sec. 6.2): fully coupled Palu run at t = {palu_t_end():.1f} s (scaled)",
        f"mesh {solver.mesh.n_elements} elements "
        f"({int(solver.mesh.is_acoustic_elem.sum())} ocean), "
        f"LTS clusters {[int(c) for c in np.bincount(lts.cluster)]}",
        "",
        f"{'diagnostic':44} {'paper':>16} {'measured':>14}",
        f"{'rupture style':44} {'supershear':>16} "
        f"{('supershear' if mach > 1 else 'sub-shear'):>14}",
        f"{'rupture speed / cs (Mach number)':44} {'> 1':>16} {mach:>14.2f}",
        f"{'rupture direction':44} {'unilateral S':>16} "
        f"{('southward' if np.isfinite(vr) else 'n/a'):>14}",
        f"{'sea surface velocity extrema [m/s]':44} {'Mach front':>16} "
        f"{f'{vz.min():+.2f}/{vz.max():+.2f}':>14}",
        "",
        "mean sea-surface displacement by quadrant [cm] (paper Fig. 1d:",
        "uplift NW, subsidence SE of the fault):",
        f"  NW {quad['NW'] * 100:+8.2f}   NE {quad['NE'] * 100:+8.2f}",
        f"  SW {quad['SW'] * 100:+8.2f}   SE {quad['SE'] * 100:+8.2f}",
        "",
        f"{'resolved acoustic frequency (2 elems/wl)':44} "
        f"{'>= 15 Hz (mesh L)':>16} {f_res:>12.1f} Hz",
        f"{'peak |eta| in the bay [m]':44} {'O(1) m':>16} "
        f"{np.abs(eta).max():>14.2f}",
    ]
    # Sec. 6.2: "we measure wave excitation of up to 30 Hz in the Fourier
    # spectra of the recorded acoustic velocity time series" (2x the
    # nominally resolved 15 Hz, attributed to the variable water depth) —
    # the same measurement on our bay receivers:
    if len(receivers.times) > 8:
        vz = receivers.data("vz")[:, 0]
        f_exc = max_excited_frequency(receivers.t, vz, threshold=0.05)
        rows += [
            "",
            f"{'max excited acoustic frequency':44} "
            f"{'~2x resolved (30 Hz)':>21} {f_exc:>6.1f} Hz "
            f"({f_exc / max(f_res, 1e-9):.1f}x resolved)",
        ]
    assert mach > 1.0, "Palu scenario must run supershear"
    assert quad["NW"] * quad["SE"] < 0 or abs(quad["SE"]) > 0, "quadrant pattern"
    assert np.abs(eta).max() > 0.05
    report("fig1_palu_wavefield", rows)
