"""Shared, lazily-computed scenario runs for the benchmark suite.

The heavy 3D runs (Palu fully coupled, Palu linked, Scenario A coupled and
linked) are each needed by several figure benchmarks; they are computed
once per pytest session and memoized here.

Set ``REPRO_FAST=1`` to shrink the runs (shorter simulated time, coarser
meshes) for a quick smoke pass of the whole suite.
"""

from __future__ import annotations

import json
import os
import tempfile
from functools import lru_cache

import numpy as np

FAST = os.environ.get("REPRO_FAST", "0") == "1"

_OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
_CREATED_DIRS: set[str] = set()


def _print_header(name: str):
    print(f"\n[{name}] computing shared run (cached for this session) ...", flush=True)


def _ensure_out_dir() -> str:
    """Create ``benchmarks/out`` once per process (fresh clones lack it).

    Memoized per path, not with a single flag, because the test suite
    monkeypatches ``_OUT_DIR`` to a temporary directory.
    """
    out = _OUT_DIR
    if out not in _CREATED_DIRS:
        os.makedirs(out, exist_ok=True)
        _CREATED_DIRS.add(out)
    return out


def _write_atomic(path: str, text: str) -> None:
    # pid-keyed unique temp name: concurrent multi-process writers (the
    # ensemble driver's workers all report here) must never share a tmp file
    out = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(
        dir=out, prefix=f".{os.path.basename(path)}.{os.getpid()}.",
        suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def report(name: str, lines: list[str], backend: str | None = None,
           workers: int | None = None, metrics: dict | None = None) -> None:
    """Print a paper-vs-measured comparison and persist it to
    ``benchmarks/out/<name>.txt`` (the EXPERIMENTS.md source data).

    Timing benchmarks that depend on the execution backend must pass
    ``backend`` (and ``workers`` for the partitioned backend) so the
    result file becomes ``<name>__<backend>[_wN].txt`` — serial and
    partitioned timings of the same benchmark never overwrite each other.

    ``metrics`` is the machine-readable side-channel: when given, the dict
    is written as ``<name>.json`` next to the text report, so benchmarks
    can persist per-phase/per-kernel breakdowns (telemetry snapshots,
    model numbers) without flattening them into the human-readable lines.

    All files are written atomically (tmp file + ``os.replace``) so an
    interrupted benchmark never leaves a truncated results file behind.
    """
    if backend is not None:
        name = f"{name}__{backend}" if workers is None else f"{name}__{backend}_w{workers}"
    elif workers is not None:
        raise ValueError("workers= requires backend=")
    text = "\n".join(lines)
    print(f"\n===== {name} =====\n{text}\n", flush=True)
    out = _ensure_out_dir()
    _write_atomic(os.path.join(out, f"{name}.txt"), text + "\n")
    if metrics is not None:
        _write_atomic(
            os.path.join(out, f"{name}.json"),
            json.dumps(metrics, indent=2, default=_json_default) + "\n",
        )


def _json_default(obj):
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def palu_config():
    from repro.scenarios.palu import PaluConfig

    if FAST:
        return PaluConfig(
            x_extent=(-3000.0, 3000.0),
            y_extent=(-3600.0, 3600.0),
            dx_fine=500.0,
            dx_coarse=1100.0,
            n_earth_layers=5,
            earth_depth=2400.0,
            fault_y_extent=(-3000.0, 3000.0),
            nucleation_y=2000.0,
            bay_length=2600.0,
        )
    return PaluConfig()


def palu_t_end() -> float:
    return 1.6 if FAST else 2.5


@lru_cache(maxsize=1)
def palu_built():
    """Fully coupled Palu model, built but not advanced: ``(solver, fault, lts)``."""
    from repro.core.lts import LocalTimeStepping
    from repro.scenarios.palu import build_coupled

    _print_header("palu build")
    solver, fault = build_coupled(palu_config())
    lts = LocalTimeStepping(solver)
    return solver, fault, lts


@lru_cache(maxsize=1)
def palu_coupled_run():
    """Fully coupled Palu run advanced to ``palu_t_end()``.

    Returns ``(solver, fault, lts, receivers)`` — the receivers sit in the
    bay's water column and sample at every LTS macro step (the Sec. 6.2
    "recorded acoustic velocity time series").
    """
    from repro.analysis.receivers import ReceiverArray

    solver, fault, lts = palu_built()
    cfg = palu_config()
    _print_header("palu coupled run")
    bay_pts = np.array(
        [
            [cfg.bay_x, 0.0, -0.5 * cfg.bay_depth],
            [cfg.bay_x, 0.3 * cfg.bay_length, -0.4 * cfg.bay_depth],
        ]
    )
    receivers = ReceiverArray(solver, bay_pts)
    receivers.record()
    lts.run(palu_t_end(), callback=lambda s: receivers.record())
    return solver, fault, lts, receivers


@lru_cache(maxsize=1)
def palu_linked_run():
    """Earthquake-only Palu run + one-way-linked SWE at ``palu_t_end()``.

    Returns ``(eq_solver, fault, tracker, swe)``.
    """
    from repro.scenarios.palu import build_earthquake_only, run_linked_tsunami

    _print_header("palu linked")
    cfg = palu_config()
    eq, fault, tracker = build_earthquake_only(cfg)
    t_end = palu_t_end()
    snapshots = [(0.0, tracker.uz.copy())]
    n_snap = 6 if FAST else 10
    for i in range(n_snap):
        eq.run(t_end * (i + 1) / n_snap, callback=tracker)
        snapshots.append((eq.t, tracker.uz.copy()))
    swe = run_linked_tsunami(cfg, tracker, snapshots, t_end)
    return eq, fault, tracker, swe


# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def scenario_a_config():
    from repro.scenarios.scenario_a import ScenarioAConfig

    if FAST:
        return ScenarioAConfig(
            x_extent=(-2000.0, 2000.0),
            y_extent=(-1800.0, 1800.0),
            n_earth_layers=7,
            fault_length_y=1200.0,
        )
    return ScenarioAConfig()


def scenario_a_t_end() -> float:
    return 3.0 if FAST else 6.0


@lru_cache(maxsize=1)
def scenario_a_coupled_run():
    """Returns ``(solver, fault)`` advanced to ``scenario_a_t_end()``."""
    from repro.core.lts import LocalTimeStepping
    from repro.scenarios.scenario_a import build_coupled

    _print_header("scenario A coupled")
    solver, fault = build_coupled(scenario_a_config())
    lts = LocalTimeStepping(solver)
    lts.run(scenario_a_t_end())
    return solver, fault


@lru_cache(maxsize=1)
def scenario_a_linked_run():
    """Returns ``(eq_solver, fault, tracker, swe)``."""
    from repro.scenarios.scenario_a import build_earthquake_only, run_linked_tsunami

    _print_header("scenario A linked")
    cfg = scenario_a_config()
    eq, fault, tracker = build_earthquake_only(cfg)
    t_end = scenario_a_t_end()
    snapshots = [(0.0, tracker.uz.copy())]
    n_snap = 6 if FAST else 10
    for i in range(n_snap):
        eq.run(t_end * (i + 1) / n_snap, callback=tracker)
        snapshots.append((eq.t, tracker.uz.copy()))
    swe = run_linked_tsunami(cfg, tracker, snapshots, t_end)
    return eq, fault, tracker, swe


# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def scaling_mesh():
    """The larger Palu-like mesh used by the machine-model benchmarks."""
    from repro.core.lts import cluster_elements
    from repro.core.materials import acoustic, elastic
    from repro.mesh.generators import bathymetry_mesh
    from repro.mesh.refine import refined_spacing

    _print_header("scaling mesh")
    earth = elastic(2700.0, 6000.0, 3464.0)
    ocean = acoustic(1000.0, 1500.0)

    def bathy(x, y):
        return -100 - 600 * np.exp(-(((x - 30e3) / 8e3) ** 2)) * (
            0.5 + 0.5 * np.tanh((y - 20e3) / 10e3)
        )

    h = 2000 if FAST else 1200
    xs = refined_spacing(0, 60e3, 4000, h, 15e3, 45e3)
    ys = refined_spacing(0, 120e3, 4000, h, 20e3, 100e3)
    zs = np.concatenate(
        [np.linspace(-30e3, -10e3, 4), refined_spacing(-10e3, -700, 3000, h, -10e3, -700)[1:]]
    )
    mesh = bathymetry_mesh(xs, ys, bathy, 2, zs, earth, ocean)
    cluster, dt_min = cluster_elements(mesh, 5)
    return mesh, cluster, dt_min
