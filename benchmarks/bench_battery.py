"""Battery: the standardized kernel micro-benchmark battery.

Runs :func:`repro.obs.bench.run_battery` — the same battery behind
``python -m repro bench`` and the CI perf job — and persists the record
to ``benchmarks/out`` for the EXPERIMENTS.md trajectory.  Unlike the CLI,
this entry point does **not** append to the repo-root ``BENCH_*.json``
history (the smoke suite must not dirty the committed trajectory with
tiny-mesh numbers); committing trajectory points is the CLI/CI job's
responsibility.

Sanity gates: every battery kernel must be present with a positive
best-of-repeats time, and the roofline-modeled kernels must not beat the
nominal local roofline (which would mean broken timing or FLOP
accounting, the same invariant ``tools/bench_compare.py`` enforces).
"""

from _cache import report
from repro.obs.bench import BATTERY_KERNELS, battery_lines, run_battery

#: slack on the roofline bound (timer jitter on sub-ms kernels)
ROOFLINE_SLACK = 1.05


def test_bench_battery(benchmark):
    record, path = benchmark.pedantic(
        lambda: run_battery(node="local", append=False), rounds=1, iterations=1
    )
    assert path is None

    benches = record["benches"]
    for name in BATTERY_KERNELS:
        assert name in benches, f"battery kernel {name} missing"
        assert benches[name]["seconds"] > 0.0

    for name in ("predictor", "corrector"):
        cell = benches[name]
        assert cell["gflops"] <= cell["model_gflops"] * ROOFLINE_SLACK, (
            f"{name} measured {cell['gflops']:.2f} GFLOP/s above the "
            f"{cell['model_gflops']:.2f} GFLOP/s roofline: timing or FLOP "
            "accounting is broken"
        )

    report("battery", battery_lines(record), metrics=record)
