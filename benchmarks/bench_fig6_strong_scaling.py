"""Fig. 6 (paper Sec. 6.3): strong scaling on Mahti and SuperMUC-NG.

The paper scales the Palu mesh M from 50 to 700 nodes on Mahti (1, 2, 8
ranks/node) and from 50 to 1600 nodes on SuperMUC-NG (1, 2 ranks/node),
reaching ~73% parallel efficiency at 14x / ~72% at 32x node increase, with
more ranks per node winning throughout on the NUMA-rich AMD nodes.

Here the same experiment runs on the simulated machines with a real
partition of the real (scaled) mesh with the real LTS clustering; node
counts are scaled so that the *relative* node-increase factor matches the
paper (the absolute element-per-node count is ~50x smaller, see DESIGN.md).
"""

import numpy as np

from _cache import report, scaling_mesh
from repro.hpc.machine import MAHTI, SUPERMUC_NG
from repro.hpc.perfmodel import NodePerformanceModel, kernel_counts
from repro.hpc.scaling import StrongScalingModel

NODES = [2, 4, 8, 16, 28]  # 14x span = paper's Mahti 50 -> 700
NODES_NG = [2, 4, 8, 16, 32, 64]  # 32x span = paper's NG 50 -> 1600

ORDER = 5


def run_machine(mesh, cluster, machine, nodes, rpns):
    model = StrongScalingModel(mesh, cluster, order=ORDER, machine=machine)
    return {r: model.sweep(nodes, ranks_per_node=r) for r in rpns}


def _kernel_metrics(machine, nodes, series, rpns):
    """Per-kernel metrics side-channel: roofline splits per placement.

    Makes the BENCH_*.json trajectories per-kernel (predictor vs corrector
    roofline rates at each ranks-per-node placement) instead of only
    end-to-end GFLOPS/node numbers.
    """
    model = NodePerformanceModel(machine.node, order=ORDER)
    kc = kernel_counts(ORDER)
    return {
        "machine": machine.name,
        "order": ORDER,
        "flops_per_elem_update": {
            "predictor": kc.flops_predictor,
            "volume": kc.flops_volume,
            "surface": kc.flops_surface,
            "corrector": kc.flops_corrector,
        },
        "node_kernel_gflops": {
            str(r): {
                "predictor": model.predictor_gflops(),
                "corrector": model.corrector_gflops(ranks_per_node=r),
                "full": model.full_gflops(ranks_per_node=r),
            }
            for r in rpns
        },
        "series": {
            str(r): {
                "nodes": list(nodes),
                "gflops_per_node": [p.gflops_per_node for p in series[r]],
                "parallel_efficiency": [p.parallel_efficiency for p in series[r]],
            }
            for r in rpns
        },
    }


def test_fig6a_mahti(benchmark):
    mesh, cluster, _ = scaling_mesh()
    series = benchmark.pedantic(
        run_machine, args=(mesh, cluster, MAHTI, NODES, (1, 2, 8)),
        rounds=1, iterations=1,
    )
    rows = [
        "Fig. 6a: strong scaling, mesh M on Mahti [GFLOPS/node (efficiency)]",
        f"{'nodes':>6} {'1 rank/node':>18} {'2 ranks/node':>18} {'8 ranks/node':>18}",
    ]
    for i, n in enumerate(NODES):
        rows.append(
            f"{n:>6} "
            + " ".join(
                f"{series[r][i].gflops_per_node:10.0f} ({series[r][i].parallel_efficiency:4.2f})"
                for r in (1, 2, 8)
            )
        )
    eff_8 = series[8][-1].parallel_efficiency
    rows += [
        "",
        f"{'metric':42} {'paper':>10} {'model':>10}",
        f"{'best placement':42} {'8 rpn':>10} "
        f"{max((1, 2, 8), key=lambda r: series[r][0].gflops_per_node):>7} rpn",
        f"{'GFLOPS/node at smallest count (8rpn)':42} {2322:>10} {series[8][0].gflops_per_node:>10.0f}",
        f"{'GFLOPS/node at largest count (8rpn)':42} {1689:>10} {series[8][-1].gflops_per_node:>10.0f}",
        f"{'parallel efficiency at 14x nodes':42} {'~73%':>10} {eff_8 * 100:>9.0f}%",
    ]
    # shape assertions: 8 rpn wins, efficiency decays into the paper's range
    assert series[8][0].gflops_per_node > series[1][0].gflops_per_node
    assert 0.45 < eff_8 < 1.0
    report("fig6a_mahti", rows,
           metrics=_kernel_metrics(MAHTI, NODES, series, (1, 2, 8)))


def test_fig6b_supermuc_ng(benchmark):
    mesh, cluster, _ = scaling_mesh()
    series = benchmark.pedantic(
        run_machine, args=(mesh, cluster, SUPERMUC_NG, NODES_NG, (1, 2)),
        rounds=1, iterations=1,
    )
    rows = [
        "Fig. 6b: strong scaling, mesh M on SuperMUC-NG [GFLOPS/node (efficiency)]",
        f"{'nodes':>6} {'1 rank/node':>18} {'2 ranks/node':>18}",
    ]
    for i, n in enumerate(NODES_NG):
        rows.append(
            f"{n:>6} "
            + " ".join(
                f"{series[r][i].gflops_per_node:10.0f} ({series[r][i].parallel_efficiency:4.2f})"
                for r in (1, 2)
            )
        )
    eff = series[2][-1].parallel_efficiency
    rows += [
        "",
        f"{'metric':42} {'paper':>10} {'model':>10}",
        f"{'GFLOPS/node at smallest count':42} {1359:>10} {series[2][0].gflops_per_node:>10.0f}",
        f"{'GFLOPS/node at largest count':42} {981:>10} {series[2][-1].gflops_per_node:>10.0f}",
        f"{'parallel efficiency at 32x nodes':42} {'~72%':>10} {eff * 100:>9.0f}%",
        f"{'total PFLOPS at largest count':42} {'~1.57 (x1600)':>10} "
        f"{series[2][-1].total_pflops:>10.3f}",
        "",
        "(node counts are scaled with the mesh; the comparison axis is the",
        " relative node-increase factor — see DESIGN.md substitutions)",
    ]
    assert series[2][0].gflops_per_node > series[1][0].gflops_per_node * 0.98
    assert 0.4 < eff < 1.0
    report("fig6b_supermuc_ng", rows,
           metrics=_kernel_metrics(SUPERMUC_NG, NODES_NG, series, (1, 2)))
