"""T3 (paper Sec. 6.2): production-run accounting for meshes M and L.

Everything in this table is *exact arithmetic* at the paper's scale (no
simulation needed): DOF counts from the order-5 basis, the ocean-layer
mesh-growth factor, the LTS update-reduction bookkeeping, and a
throughput/wall-time consistency check of the published petascale numbers
against the kernel FLOP model.
"""

import numpy as np

from _cache import palu_built, report
from repro.core.basis import basis_size
from repro.hpc.machine import SHAHEEN2, SUPERMUC_NG
from repro.hpc.perfmodel import dof_count, kernel_counts


def test_t3_production_accounting(benchmark):
    B5 = basis_size(5)

    def accounting():
        return {
            "dof_M": dof_count(89_000_000, 5),
            "dof_L": dof_count(518_000_000, 5),
            "flops_per_update": kernel_counts(5).flops_total,
        }

    acc = benchmark(accounting)

    rows = [
        "T3 (Sec. 6.2): production-run accounting",
        f"{'quantity':42} {'paper':>14} {'this repo':>14}",
        f"{'basis functions per element (O5)':42} {'56 (=B_5)':>14} {B5:>14}",
        f"{'mesh M degrees of freedom':42} {'~46 billion':>14} {acc['dof_M'] / 1e9:>12.1f} B",
        f"{'mesh L degrees of freedom':42} {'~261 billion':>14} {acc['dof_L'] / 1e9:>12.1f} B",
    ]
    assert abs(acc["dof_L"] - 261e9) < 3e9
    assert abs(acc["dof_M"] - 46e9) < 2e9

    # ocean-layer factor: paper: 453.7M of 518M cells are ocean; adding the
    # water layer grew the mesh 8x.  Same bookkeeping on our scaled mesh:
    solver, fault, lts = palu_built()
    mesh = solver.mesh
    n_oc = int(mesh.is_acoustic_elem.sum())
    growth = mesh.n_elements / (mesh.n_elements - n_oc)
    rows += [
        f"{'ocean cells, mesh L':42} {'453.7M / 518M':>14} "
        f"{f'{n_oc} / {mesh.n_elements} (scaled)':>14}",
        f"{'mesh growth from water layer':42} {'8x':>14} {growth:>13.1f}x",
    ]

    # throughput consistency of the published numbers: 3.14 PFLOPS for
    # 5.5 h simulating 30 s of mesh L -> total FLOP, vs the kernel model
    # driven by the Fig. 4 clustering (86% of elements at 32 dt_min, the
    # 32x cluster dt set by the 50 m ocean cells at c ~ 1483 m/s)
    total_flops_paper = 3.14e15 * 5.5 * 3600
    edge = 50.0
    insphere = 0.408 * edge  # regular-tet insphere diameter
    dt_ocean = 0.35 / 11.0 * insphere / 1483.0  # the 32*dt_min cluster dt
    n_macros = 30.0 / dt_ocean
    # Fig. 4-shaped histogram: updates per 32*dt_min macro step
    hist = np.array([0.01, 0.01, 0.02, 0.04, 0.06, 0.86])
    upd_per_macro = 518e6 * (hist * 2.0 ** np.arange(5, -1, -1)).sum()
    model_flops = upd_per_macro * n_macros * kernel_counts(5).flops_total
    ratio = total_flops_paper / model_flops
    rows += [
        "",
        f"L-run total FLOP   published (3.14 PFLOPS x 5.5 h): {total_flops_paper:.2e}",
        f"L-run total FLOP   kernel model x Fig.4 clustering: {model_flops:.2e}",
        f"  -> consistent within a factor {max(ratio, 1 / ratio):.1f} (mesh coarsening away",
        "     from the bay, dynamic rupture/gravity faces and hardware-counter",
        "     conventions account for the remainder)",
        "",
        f"node-weight statistics (Sec. 6.2)     paper            model machines",
        f"  SuperMUC-NG slowest/mean            60.4%            {SUPERMUC_NG.perf_min * 100:.1f}%",
        f"  Shaheen-II  slowest/mean            {3.19 / 3.34 * 100:.1f}%            {SHAHEEN2.perf_min * 100:.1f}%",
    ]
    assert 0.2 < ratio < 5.0
    report("t3_production", rows)
