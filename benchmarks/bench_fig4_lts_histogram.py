"""Fig. 4 (paper Sec. 6.2): LTS timestep-cluster histogram of the Palu mesh.

The paper's mesh L puts >86% of all elements into the 32*dt_min cluster
(the cap: rate-2 clustering limited to 6 clusters) and the chosen
clustering reduces the total number of element updates by ~30x; dt_min is
dictated by a thin tail of tiny cells where the water column shoals
towards the coastline.

The same structure is rebuilt here: a bathymetry-conforming bay mesh whose
shallow coastal cells are ~50x smaller than the ocean bulk, clustered with
rate-2 LTS capped at 32*dt_min exactly as in the paper.
"""

import numpy as np

from _cache import FAST, report
from repro.core.lts import cluster_elements, lts_statistics
from repro.core.materials import acoustic, elastic
from repro.mesh.generators import bathymetry_mesh
from repro.mesh.refine import refined_spacing


def build_fig4_mesh():
    """Palu-like bay (600 m deep) in an open shelf (160 m), separated by a
    few-meter-deep coastal rim — the shoaling tail that dictates dt_min in
    the paper's bathymetry-conforming mesh."""
    earth = elastic(2700.0, 6000.0, 3464.0)
    ocean = acoustic(1000.0, 1500.0)
    h = 2500.0 if FAST else 1500.0

    def bathy(x, y):
        s_in = np.minimum(7e3 - np.abs(x - 30e3), y - 12e3)  # >0 inside bay
        base = np.where(s_in > 0, 600.0, 160.0)
        # 4 m coastal plateau (>= one cell wide) ramping to the base depth
        f = np.clip((np.abs(s_in) - 1.4 * h) / 3000.0, 0.0, 1.0)
        return -(4.0 + (base - 4.0) * f)

    xs = refined_spacing(0, 60e3, 6000, h, 12e3, 48e3)
    ys = refined_spacing(0, 100e3, 6000, h, 10e3, 90e3)
    zs = np.concatenate(
        [np.linspace(-30e3, -12e3, 3), refined_spacing(-12e3, -650, 5000, 2500, -12e3, -650)[1:]]
    )
    return bathymetry_mesh(xs, ys, bathy, 2, zs, earth, ocean, min_depth=4.0)


def test_fig4_lts_histogram(benchmark):
    mesh = build_fig4_mesh()

    def cluster_and_count():
        # the paper's clustering: rate 2, capped at 32 * dt_min (6 clusters)
        cluster, dt_min = cluster_elements(mesh, order=5, max_cluster=5)
        return cluster, dt_min, lts_statistics(cluster)

    cluster, dt_min, stats = benchmark.pedantic(cluster_and_count, rounds=1, iterations=1)

    counts = stats["counts"]
    total = counts.sum()
    rows = [
        "Fig. 4 (Sec. 6.2): distribution of elements over LTS clusters",
        f"bathymetry-conforming bay mesh: {mesh.n_elements} elements "
        f"({int(mesh.is_acoustic_elem.sum())} ocean), dt_min = {dt_min * 1e3:.3f} ms",
        "",
        f"{'cluster dt':>12} {'elements':>10} {'fraction':>9}   (log-scaled in the paper)",
    ]
    for c, n in enumerate(counts):
        bar = "#" * max(1, int(np.log10(max(n, 1)) * 6))
        rows.append(f"{stats['dt_factors'][c]:>9} dt {n:>10} {n / total * 100:>8.1f}%  {bar}")
    frac_largest = counts[-1] / total
    rows += [
        "",
        f"{'metric':40} {'paper (mesh L)':>15} {'this mesh':>12}",
        f"{'fraction in the 32 dt cluster':40} {'> 86%':>15} {frac_largest * 100:>11.1f}%",
        f"{'LTS update reduction vs GTS':40} {'~30x':>15} {stats['speedup']:>11.1f}x",
        f"{'dt_min origin':40} {'coastal cells':>15} {'coastal cells':>12}",
        "",
        "(the production mesh's coastal tail is ~10x thinner relative to the",
        " mesh, which pushes the update reduction from ~11x here to ~30x)",
    ]
    assert len(counts) == 6
    assert frac_largest > (0.7 if FAST else 0.8), frac_largest
    assert stats["speedup"] > (4.0 if FAST else 8.0), stats["speedup"]
    assert counts[0] / total < 0.1
    report("fig4_lts_histogram", rows)
