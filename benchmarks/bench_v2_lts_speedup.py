"""V2 (paper Sec. 4.4): LTS correctness and measured update reduction.

The paper reports that LTS "has an even stronger influence on
time-to-solution than reported previously", attributing it to the
acoustic/elastic wave-speed and mesh-size discrepancy, and that running
mesh L with global time-stepping "is therefore not feasible".  This bench
measures, on a coupled ocean-over-crust mesh: (i) the LTS vs GTS element
-update reduction, (ii) actual wall-time speedup of this implementation,
(iii) the solution difference (correctness).
"""

import time

import numpy as np

from _cache import report
from repro.core.lts import LocalTimeStepping
from repro.core.materials import acoustic, elastic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver


def build():
    """Bay-like coupled mesh: shallow coastal cells set dt_min, the earth
    bulk carries the largest timesteps (the Sec. 4.4 situation)."""
    from repro.mesh.generators import bathymetry_mesh
    from repro.mesh.refine import geometric_spacing

    water = acoustic(1000.0, 1500.0)
    rock = elastic(2700.0, 6000.0, 3464.0)

    def bathy(x, y):
        return -(15.0 + 285.0 * np.exp(-(((x - 4000.0) / 1500.0) ** 2)))

    xs = np.linspace(0, 8000.0, 11)
    ys = np.linspace(0, 6000.0, 8)
    zs_e = -np.flip(geometric_spacing(400.0, 8000.0, 800.0, 1.7))
    m = bathymetry_mesh(xs, ys, bathy, 2, zs_e, rock, water, min_depth=15.0)

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.ABSORBING.value)
        tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
        return tags

    m.tag_boundary(tagger)
    s = CoupledSolver(m, order=2)

    def ic(x):
        out = np.zeros((len(x), 9))
        out[:, 8] = 0.3 * np.exp(-((x[:, 0] - 4000) ** 2 + (x[:, 1] - 3000) ** 2
                                   + (x[:, 2] + 2000) ** 2) / (2 * 700.0**2))
        return out

    s.set_initial_condition(ic)
    return s


def test_v2_lts_speedup(benchmark):
    s_gts = build()
    T = 48 * s_gts.dt

    t0 = time.perf_counter()
    n = int(np.ceil(T / s_gts.dt))
    for _ in range(n):
        s_gts.step(T / n)
    t_gts = time.perf_counter() - t0

    s_lts = build()
    lts = LocalTimeStepping(s_lts)

    def run_lts():
        lts.run(T)

    benchmark.pedantic(run_lts, rounds=1, iterations=1)
    t_lts = benchmark.stats["mean"]

    st = lts.statistics()
    rel = np.abs(s_gts.Q - s_lts.Q).max() / np.abs(s_gts.Q).max()
    updates_done = int((lts.updates * lts.elem_count).sum())
    updates_gts = n * s_gts.mesh.n_elements

    rows = [
        "V2 (Sec. 4.4): local time-stepping on a coupled ocean-crust mesh",
        f"mesh: {s_gts.mesh.n_elements} elements, clusters {[int(c) for c in st['counts']]}",
        "",
        f"{'metric':44} {'value':>12}",
        f"{'theoretical update reduction (this mesh)':44} {st['speedup']:>11.2f}x",
        f"{'actual element updates LTS / GTS':44} "
        f"{f'{updates_done} / {updates_gts}':>12}",
        f"{'wall-time speedup (this implementation)':44} {t_gts / t_lts:>11.2f}x",
        f"{'max solution difference LTS vs GTS':44} {rel:>12.2e}",
        "",
        "paper (mesh L): chosen clustering reduces element updates ~30x;",
        "GTS 'not feasible'.  The reduction scales with the resolution span",
        "(octaves of element size x wave speed), which is far wider in the",
        "518M-element production mesh than in this test mesh.",
    ]
    assert st["speedup"] > 2.0
    assert rel < 2e-2
    assert updates_done < updates_gts
    report("v2_lts_speedup", rows)
