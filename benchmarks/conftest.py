"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one table or figure of the paper and
prints a paper-vs-measured comparison; ``pytest benchmarks/
--benchmark-only`` runs them all.  Heavy scenario runs are shared through
:mod:`benchmarks._cache`; set ``REPRO_FAST=1`` for a quick smoke pass.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    # make the printed comparisons visible by default
    config.option.verbose = max(config.option.verbose, 0)
