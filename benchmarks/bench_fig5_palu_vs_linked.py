"""Fig. 5 (paper Sec. 6.2): Palu snapshots, fully coupled vs one-way linked.

The paper compares vertical ocean-surface displacement snapshots of the
fully coupled Palu run against a one-way linked 2D shallow-water run on the
same bathymetry: overall dynamics and amplitudes agree; the wavefronts are
noticeably *smoother* in the fully coupled model, which the paper
attributes to "non-hydrostatic effects that filter short-wavelength
features in the transfer function between seafloor and sea surface motions
[Kajiura]".

This bench (i) compares the two Palu fields (correlation, amplitudes,
roughness — noting that at rupture time scales the coupled field also
carries ocean-acoustic oscillations), and (ii) *measures the smoothing
mechanism itself*: the seafloor-to-surface transfer function of the coupled
model vs the exact Kajiura filter ``1/cosh(kh)``, against the hydrostatic
(linked/shallow-water) transfer of 1.
"""

import numpy as np

from _cache import FAST, palu_config, palu_coupled_run, palu_linked_run, palu_t_end, report
from repro.analysis.fields import sea_surface_grid
from repro.core.materials import acoustic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh


def roughness(field, mask):
    """RMS of the discrete Laplacian — front-sharpness proxy."""
    lap = (
        field[2:, 1:-1] + field[:-2, 1:-1] + field[1:-1, 2:] + field[1:-1, :-2]
        - 4 * field[1:-1, 1:-1]
    )
    m = mask[1:-1, 1:-1]
    return float(np.sqrt(np.mean(lap[m] ** 2)))


def kajiura_transfer(kh_target: float, h: float = 1.0, c: float = 25.0) -> float:
    """Measured seafloor->surface transfer of the coupled model at one kh."""
    L = 2 * np.pi * h / kh_target
    nx = max(6, int(round(4 * L / h)))
    oc = acoustic(1000.0, c)
    m = box_mesh(
        np.linspace(0, L, nx + 1), np.linspace(0, 0.4, 2), np.linspace(-h, 0, 5), [oc]
    )
    m.glue_periodic(np.array([L, 0, 0]))
    m.glue_periodic(np.array([0, 0.4, 0]))

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.WALL.value)
        tags[nrm[:, 2] < -0.99] = FaceKind.PRESCRIBED_MOTION.value
        tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
        return tags

    m.tag_boundary(tagger)
    k = 2 * np.pi / L
    u0, T_rise = 1e-4, 3 * h / c

    def motion(pts, t):
        rate = u0 / T_rise if t < T_rise else 0.0
        return rate * np.cos(k * pts[:, 0])

    s = CoupledSolver(m, order=2, bottom_motion=motion)
    omega = np.sqrt(9.81 * k * np.tanh(k * h))
    t_end = T_rise + 2 * np.pi / omega
    x = s.gravity.points[:, :, 0]
    ts, amps = [], []
    while s.t < t_end:
        s.step()
        if s.t > T_rise:
            ts.append(s.t)
            amps.append(2 * np.mean(s.gravity.eta * np.cos(k * x)))
    ts, amps = np.array(ts), np.array(amps)
    basis = np.column_stack([np.cos(omega * ts), np.sin(omega * ts), np.ones_like(ts)])
    coef = np.linalg.lstsq(basis, amps, rcond=None)[0]
    return float(np.hypot(coef[0], coef[1])) / u0


def test_fig5_palu_vs_linked(benchmark):
    cfg = palu_config()
    solver, fault, lts, receivers = palu_coupled_run()
    eq, fault2, tracker, swe = palu_linked_run()

    def snapshots():
        xs = np.linspace(cfg.x_extent[0] + 300, cfg.x_extent[1] - 300, 33)
        ys = np.linspace(cfg.y_extent[0] + 300, cfg.y_extent[1] - 300, 45)
        X, Y, eta_c = sea_surface_grid(solver, xs, ys)
        pts = np.column_stack([X.ravel(), Y.ravel()])
        eta_l = swe.sample_eta(pts).reshape(X.shape)
        return X, Y, eta_c, eta_l

    X, Y, eta_c, eta_l = benchmark.pedantic(snapshots, rounds=1, iterations=1)

    from repro.scenarios.palu import palu_bathymetry

    bay = palu_bathymetry(cfg)(X, Y) < -0.5 * cfg.bay_depth
    corr = np.corrcoef(eta_c[bay], eta_l[bay])[0, 1]
    r_c = roughness(eta_c, bay)
    r_l = roughness(eta_l, bay)
    amp_c = float(np.abs(eta_c[bay]).max())
    amp_l = float(np.abs(eta_l[bay]).max())

    # the smoothing mechanism: measured transfer function vs Kajiura
    khs = (0.8, 2.5) if FAST else (0.8, 3.14)
    transfer = {kh: kajiura_transfer(kh) for kh in khs}

    rows = [
        f"Fig. 5 (Sec. 6.2): Palu vertical surface displacement at t = {palu_t_end():.1f} s",
        f"coupled: {solver.mesh.n_elements} elems | linked: "
        f"{eq.mesh.n_elements}-elem earthquake model + {swe.nx}x{swe.ny} SWE grid",
        "",
        f"{'comparison (within the bay)':46} {'paper':>14} {'measured':>10}",
        f"{'overall dynamics (field correlation)':46} {'similar':>14} {corr:>10.2f}",
        f"{'peak |eta| coupled [m]':46} {'similar':>14} {amp_c:>10.2f}",
        f"{'peak |eta| linked  [m]':46} {'similar':>14} {amp_l:>10.2f}",
        f"{'roughness coupled (RMS Laplacian)':46} {'(see below)':>14} {r_c:>10.4f}",
        f"{'roughness linked':46} {'sharper':>14} {r_l:>10.4f}",
        "",
        "(at tsunami-genesis times the coupled field still carries ocean",
        " acoustics, so raw roughness mixes two effects; the paper's",
        " smoothness claim concerns the seafloor->surface *transfer*, which",
        " is measured directly below)",
        "",
        "seafloor->surface transfer (the Kajiura mechanism, paper [22]):",
        f"{'kh':>8} {'hydrostatic/linked':>20} {'coupled measured':>17} {'1/cosh(kh)':>12}",
    ]
    for kh, tr in transfer.items():
        rows.append(f"{kh:>8.2f} {'1.00':>20} {tr:>17.3f} {1 / np.cosh(kh):>12.3f}")
    rows += [
        "",
        f"seafloor uplift driving the linked model: "
        f"[{tracker.uz.min():+.2f}, {tracker.uz.max():+.2f}] m "
        f"(paper: mean 1.5 m uplift under the bay)",
        "",
        "paper: 'While most wavefield features are quite similar, as are",
        "predicted wave heights ... The one-way linking approach produces a",
        "tsunami with much sharper wavefronts ... The wavefield is notably",
        "smoother in the fully coupled model.'",
    ]
    assert corr > 0.3, corr
    assert 0.2 < amp_c / max(amp_l, 1e-12) < 5.0
    # the mechanism: short wavelengths filtered per Kajiura, vs 1 hydrostatic
    for kh, tr in transfer.items():
        assert np.isclose(tr, 1.0 / np.cosh(kh), rtol=0.3), (kh, tr)
    khs_sorted = sorted(transfer)
    assert transfer[khs_sorted[1]] < 0.6 * transfer[khs_sorted[0]]
    report("fig5_palu_vs_linked", rows)
