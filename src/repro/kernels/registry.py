"""Kernel-variant registry: names, resolution, plan-cache kinds.

The variant is a *solver-level* choice (``CoupledSolver(...,
kernel_variant=...)`` or implied by ``--backend jit``) that every layer
below respects: the spatial operator dispatches its residual kernels on
it, the operator-plan cache keys plans by the variant's *plan kind* so a
batched plan is never served to a fused/jit operator, and the benchmark
battery records it so histories never diff across variants.
"""

from __future__ import annotations

import warnings

__all__ = [
    "KERNEL_VARIANTS",
    "DEFAULT_VARIANT",
    "have_numba",
    "resolve_kernel_variant",
    "plan_kind",
]

#: every recognized kernel variant, in preference order
KERNEL_VARIANTS = ("batched", "fused", "jit")

#: the variant used when the caller does not choose one
DEFAULT_VARIANT = "fused"

_HAVE_NUMBA: bool | None = None
_FALLBACK_WARNED = False


def have_numba() -> bool:
    """True when numba is importable (checked once per process)."""
    global _HAVE_NUMBA
    if _HAVE_NUMBA is None:
        try:
            import numba  # noqa: F401

            _HAVE_NUMBA = True
        except ImportError:
            _HAVE_NUMBA = False
    return _HAVE_NUMBA


def resolve_kernel_variant(variant: str | None) -> str:
    """Resolve a requested variant to the one that will actually run.

    ``None`` resolves to :data:`DEFAULT_VARIANT`.  ``"jit"`` degrades to
    ``"fused"`` (with a one-time warning) when numba is not installed —
    the graceful-fallback contract of the ``jit`` backend: same plan,
    same results, NumPy instead of compiled loops.
    """
    global _FALLBACK_WARNED
    if variant is None:
        return DEFAULT_VARIANT
    if variant not in KERNEL_VARIANTS:
        raise ValueError(
            f"unknown kernel variant {variant!r} "
            f"(available: {', '.join(KERNEL_VARIANTS)})"
        )
    if variant == "jit" and not have_numba():
        if not _FALLBACK_WARNED:
            warnings.warn(
                "numba is not installed; the jit kernel variant falls back "
                "to the fused-NumPy path (identical results, no compiled "
                "element loops)",
                RuntimeWarning,
                stacklevel=2,
            )
            _FALLBACK_WARNED = True
        return "fused"
    return variant


def plan_kind(variant: str) -> str:
    """The operator-plan flavor a variant executes.

    ``fused`` and ``jit`` share the compiled stacked-GEMM plan; only
    ``batched`` runs the original per-group einsum plan.  The plan cache
    keys on this, so a mesh fingerprint hit can never hand a batched
    plan to a fused/jit operator (or vice versa).
    """
    if variant not in KERNEL_VARIANTS:
        raise ValueError(f"unknown kernel variant {variant!r}")
    return "batched" if variant == "batched" else "fused"
