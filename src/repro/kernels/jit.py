"""Numba-compiled element loops over the fused kernel plan.

The ``jit`` variant shares the *plan* (degree-truncated operator stacks,
folded surface factors) with the fused-NumPy path and swaps only the
innermost execution strategy of the element-local predictor: one
compiled loop over elements with small in-register matmuls, instead of
batched BLAS dispatches.  The corrector kernels stay on the fused NumPy
path even under ``jit`` — they are large-GEMM dominated, where BLAS
already wins; the predictor's per-level truncated shapes are where a
compiled loop beats dispatch overhead.

This module imports numba lazily and only when it is installed; when it
is absent, :func:`repro.kernels.resolve_kernel_variant` degrades ``jit``
to ``fused`` before any operator ever dispatches here.  ``fastmath`` is
deliberately off: the jit results must stay roundoff-equivalent to the
fused path (the equivalence battery compares them directly).
"""

from __future__ import annotations

import numpy as np

from .fusion import element_plan
from .registry import have_numba

__all__ = ["jit_available", "jit_ck"]

_CK_KERNEL = None


def jit_available() -> bool:
    """True when the compiled predictor loop can be used."""
    return have_numba()


def _build_ck_kernel():
    """Compile the Cauchy-Kowalewski element loop (once per process)."""
    global _CK_KERNEL
    if _CK_KERNEL is not None:
        return _CK_KERNEL
    import numba

    @numba.njit(cache=True, fastmath=False)
    def ck_kernel(outp, starT, Dpad, sizes, order):  # pragma: no cover
        ne = outp.shape[0]
        for e in range(ne):
            X = outp[e, 0]
            for k in range(order):
                n_in = sizes[k]
                n_out = sizes[k + 1]
                acc = np.zeros((n_out, X.shape[1]))
                for d in range(3):
                    D = Dpad[k, d, :n_out, :n_in]
                    acc += (D @ X[:n_in]) @ starT[e, d]
                outp[e, k + 1, :n_out] = -acc
                X = outp[e, k + 1]

    _CK_KERNEL = ck_kernel
    return ck_kernel


def jit_ck(Q: np.ndarray, starT: np.ndarray, ref,
           out: np.ndarray | None = None) -> np.ndarray:
    """Compiled degree-truncated Cauchy-Kowalewski sweep.

    Same contract as :func:`repro.kernels.fusion.fused_ck` (including the
    ``out`` scratch-buffer reuse); requires numba (callers resolve the
    variant first, so this is never reached without it).
    """
    plan = element_plan(ref.order)
    ne, nb, nq = Q.shape
    shape = (ne, ref.order + 1, nb, nq)
    outp = np.zeros(shape)
    outp[:, 0] = Q[:, plan.perm, :]
    if ref.order > 0:
        kernel = _build_ck_kernel()
        kernel(outp, starT, plan.Dpad,
               np.asarray(plan.sizes, dtype=np.int64), ref.order)
    if out is None or out.shape != shape or out.dtype != np.float64:
        out = np.empty(shape)
    # full scatter (the compiled loop zero-fills truncated rows), so a
    # reused buffer needs no cleaning
    out[:, :, plan.perm, :] = outp
    return out
