"""Fused modal-state kernels: compiled contraction chains for ADER-DG.

This package closes the predictor/corrector roofline gap of the batched
NumPy kernels in :mod:`repro.core.kernels` the way Krenz et al. (SC 2021)
do with generated kernels: the per-element contraction chains are
*compiled* at plan time into a short sequence of stacked GEMMs over
contiguous modal-state arrays, with everything that does not depend on
the state (degree-truncated derivative stacks, quadrature-folded surface
projectors, scale-folded flux matrices) hoisted out of the step loop.

Three kernel variants exist:

``batched``
    The original per-group einsum path of :mod:`repro.core.kernels`,
    kept verbatim as the golden reference for the equivalence battery.
``fused``
    The compiled stacked-GEMM path of :mod:`repro.kernels.fusion`
    (default).  Results differ from ``batched`` only by floating-point
    reassociation (~1e-15 relative).
``jit``
    Numba-compiled element loops over the same fused plan
    (:mod:`repro.kernels.jit`).  Falls back to ``fused`` with a warning
    when numba is not installed.
"""

from .registry import (
    DEFAULT_VARIANT,
    KERNEL_VARIANTS,
    have_numba,
    plan_kind,
    resolve_kernel_variant,
)

__all__ = [
    "KERNEL_VARIANTS",
    "DEFAULT_VARIANT",
    "resolve_kernel_variant",
    "plan_kind",
    "have_numba",
]
