"""Compiled stacked-GEMM contraction chains for the ADER-DG hot kernels.

Everything here is *plan time vs step time* separation: whatever does not
depend on the modal state is computed once and folded into flat arrays,
so each step-loop call is a handful of large contiguous GEMMs.

Predictor (:func:`fused_ck`)
    The Dubiner basis is orthonormal, so the modal derivative operator
    ``deriv[d, l, m]`` vanishes whenever ``deg(l) >= deg(m)`` — each
    Cauchy-Kowalewski level loses one polynomial degree exactly.  A
    degree-sorted mode permutation turns that into a *prefix* structure:
    level ``k`` lives in the first ``basis_size(N - k)`` permuted modes.
    The three directional operators of each level are truncated to that
    prefix and stacked into one ``(3*B_out, B_in)`` GEMM per level
    (order 3: 20 -> 10 -> 4 -> 1 modes, a ~4.4x FLOP reduction).

Volume (:func:`fused_volume_residual`)
    ``sum_d deriv[d]^T (I A*_d)`` evaluated as one batched state-Jacobian
    product plus a single ``(B, 3B)`` stacked stiffness GEMM — same
    FLOPs, three GEMM dispatches instead of nine.

Surface (:func:`fused_interior_residual` / :func:`fused_boundary_residual`)
    The quadrature projection ``E^T diag(w) (E I F^T) * scale`` commutes
    into ``(E^T diag(w) E) I (scale * F^T)``: the basis-side factor
    collapses to a per-orientation-class ``(B, B)`` matrix computed at
    plan time, and the per-face scale folds into the transposed Godunov
    flux matrices (``G`` arrays).  The face-quadrature dimension
    (``nfq > B`` for our rules) disappears from the step loop entirely.

Local time-stepping repeatedly calls the surface kernels with the same
per-cluster activity masks; the per-group masked selections are content-
addressed (SHA-1 of the mask bytes) and cached on the operator, so the
selection work happens once per cluster, not once per micro-step.

All results match the batched reference kernels up to floating-point
reassociation (the equivalence battery in ``tests/test_kernels.py`` pins
this at ~1e-12 relative).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core.basis import _tet_mode_indices, basis_size, get_reference_element
from ..obs.metrics import get_metrics

_MET = get_metrics()

__all__ = [
    "ElementKernelPlan",
    "element_plan",
    "fused_ck",
    "attach_fused_groups",
    "fused_volume_residual",
    "fused_interior_residual",
    "fused_boundary_residual",
    "MASK_CACHE_MAX",
]

#: masked sub-plan cache entries kept per operator and residual kind
#: (LTS produces one mask per cluster; 64 covers deep hierarchies)
MASK_CACHE_MAX = 64


# ----------------------------------------------------------------------
# element-local plan: degree truncation + stacked operators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ElementKernelPlan:
    """Per-order compiled operators shared by every fused kernel call.

    Attributes
    ----------
    order, nbasis:
        Polynomial degree and modal basis size.
    perm:
        Degree-sorted mode permutation: ``perm[i]`` is the original index
        of the ``i``-th mode in non-decreasing-degree order.
    sizes:
        ``basis_size(order - k)`` for ``k = 0..order`` — the permuted
        prefix length holding Cauchy-Kowalewski level ``k``.
    Dstacks:
        Per level, the ``(3 * sizes[k+1], sizes[k])`` stack of the three
        truncated directional derivative operators in permuted modes.
    Dpad:
        The same operators zero-padded to ``(order, 3, B, B)`` for the
        numba element loop (:mod:`repro.kernels.jit`).
    DT:
        ``(B, 3B)`` stacked transposed stiffness operator of the volume
        kernel (original mode ordering).
    """

    order: int
    nbasis: int
    perm: np.ndarray
    sizes: tuple
    Dstacks: tuple
    Dpad: np.ndarray
    DT: np.ndarray


@lru_cache(maxsize=None)
def element_plan(order: int) -> ElementKernelPlan:
    """Build (and cache) the fused element-kernel plan for one order."""
    ref = get_reference_element(order)
    nb = ref.nbasis
    degs = np.array([i + j + k for i, j, k in _tet_mode_indices(order)])
    perm = np.argsort(degs, kind="stable").astype(np.int64)
    derivP = np.stack([ref.deriv[d][np.ix_(perm, perm)] for d in range(3)])

    sizes = tuple(basis_size(order - k) for k in range(order + 1))
    Dstacks = []
    Dpad = np.zeros((max(order, 1), 3, nb, nb))
    for k in range(order):
        n_in, n_out = sizes[k], sizes[k + 1]
        Dstacks.append(np.ascontiguousarray(
            np.vstack([derivP[d, :n_out, :n_in] for d in range(3)])
        ))
        Dpad[k, :, :n_out, :n_in] = derivP[:, :n_out, :n_in]

    DT = np.ascontiguousarray(np.hstack([ref.deriv[d].T for d in range(3)]))
    for arr in (perm, Dpad, DT, *Dstacks):
        arr.setflags(write=False)
    return ElementKernelPlan(
        order=order, nbasis=nb, perm=perm, sizes=sizes,
        Dstacks=tuple(Dstacks), Dpad=Dpad, DT=DT,
    )


def fused_ck(Q: np.ndarray, starT: np.ndarray, ref,
             out: np.ndarray | None = None) -> np.ndarray:
    """Degree-truncated Cauchy-Kowalewski sweep, ``(ne, N+1, B, 9)``.

    ``starT`` holds the *transposed* star Jacobians ``(ne, 3, 9, 9)``
    (contiguous — the operator plan precomputes this copy).  Levels are
    computed in permuted mode order and scattered back, so the output
    layout matches :func:`repro.core.ader.ck_derivatives` exactly; modes
    beyond each level's degree cutoff are exact zeros (the batched path
    carries ~1e-16 quadrature noise there instead).

    ``out`` is an optional scratch buffer: it MUST be an array previously
    returned by this function (or :func:`repro.kernels.jit.jit_ck`) for
    the same order — its truncated-mode rows are assumed to still be the
    zeros this sweep leaves there, which is what makes reuse free.  A
    ``None`` or shape-mismatched ``out`` falls back to a fresh
    allocation.  The step loop reuses its predictor buffer through this:
    the ~O(10 MB) per-call allocation would otherwise cost more in page
    faults than the truncated GEMMs themselves.
    """
    plan = element_plan(ref.order)
    ne, nb, nq = Q.shape
    shape = (ne, ref.order + 1, nb, nq)
    if out is None or out.shape != shape or out.dtype != np.float64:
        out = np.zeros(shape)
    out[:, 0] = Q
    if ref.order == 0:
        return out
    X = np.ascontiguousarray(Q[:, plan.perm, :])
    for k in range(ref.order):
        n_out = plan.sizes[k + 1]
        T = np.matmul(plan.Dstacks[k], X)
        U = np.matmul(T.reshape(ne, 3, n_out, nq), starT)
        X = -(U[:, 0] + U[:, 1] + U[:, 2])
        out[:, k + 1, plan.perm[:n_out]] = X
    return out


# ----------------------------------------------------------------------
# surface fusion: plan-time factor collapse
# ----------------------------------------------------------------------
def attach_fused_groups(plan, ref) -> None:
    """Fold quadrature projection and scale into the face groups of a
    freshly built :class:`~repro.exec.plan_cache.OperatorPlan`.

    For each interior orientation class with trace operators ``Em``/``Ep``
    and face weights ``w``, the minus-side contribution

        ``scale_m * Em^T diag(w) (Em I[em] Fmm^T + Ep I[ep] Fpm^T)``

    factorizes into ``Amm @ I[em] @ G1 + Amp @ I[ep] @ G2`` with the
    ``(B, B)`` basis factors ``Amm = Em^T diag(w) Em`` / ``Amp = Em^T
    diag(w) Ep`` shared by the whole class and the per-face ``(9, 9)``
    matrices ``G1 = scale_m * Fmm^T`` / ``G2 = scale_m * Fpm^T`` (and
    symmetrically ``App``/``Apm``/``G3``/``G4`` for the plus side).
    Called only inside the plan builder: cached plans are immutable.
    """
    w = ref.face_weights
    for grp in plan.interior_groups:
        Em = ref.E_minus[grp.minus_face]
        Ep = ref.E_plus[grp.plus_face, grp.perm]
        EmW = Em.T * w
        EpW = Ep.T * w
        grp.Amm = np.ascontiguousarray(EmW @ Em)
        grp.Amp = np.ascontiguousarray(EmW @ Ep)
        grp.App = np.ascontiguousarray(EpW @ Ep)
        grp.Apm = np.ascontiguousarray(grp.Amp.T)
        sm = grp.scale_m[:, None, None]
        sp = grp.scale_p[:, None, None]
        grp.G1 = np.ascontiguousarray(grp.Fmm.transpose(0, 2, 1)) * sm
        grp.G2 = np.ascontiguousarray(grp.Fpm.transpose(0, 2, 1)) * sm
        grp.G3 = np.ascontiguousarray(grp.Fmp.transpose(0, 2, 1)) * sp
        grp.G4 = np.ascontiguousarray(grp.Fpp.transpose(0, 2, 1)) * sp
    for grp in plan.boundary_groups:
        E = ref.E_minus[int(grp.face[0])]
        grp.A = np.ascontiguousarray((E.T * w) @ E)
        grp.G = np.ascontiguousarray(grp.F.transpose(0, 2, 1)) * \
            grp.scale[:, None, None]


def _mask_digest(active: np.ndarray) -> bytes:
    return hashlib.sha1(active.tobytes()).digest()


def _cache_put(cache: OrderedDict, key, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > MASK_CACHE_MAX:
        cache.popitem(last=False)


# ----------------------------------------------------------------------
# fused residual kernels
# ----------------------------------------------------------------------
def fused_volume_residual(op, I, out, active=None) -> None:
    """Stacked-stiffness volume kernel (see module docstring)."""
    plan = element_plan(op.order)
    if active is None:
        Ie, starT, tgt = I, op.starT, slice(None)
    else:
        key = _mask_digest(active)
        cache = op._mask_cache_volume
        hit = cache.get(key)
        if _MET.enabled:
            _MET.inc("cache/mask_hits" if hit is not None
                     else "cache/mask_misses")
        if hit is None:
            idx = np.flatnonzero(active)
            hit = (idx, np.ascontiguousarray(op.starT[idx]))
            _cache_put(cache, key, hit)
        idx, starT = hit
        Ie, tgt = np.ascontiguousarray(I[idx]), idx
    n = len(Ie)
    W = np.matmul(Ie[:, None], starT)
    out[tgt] += np.matmul(plan.DT, W.reshape(n, 3 * op.nbasis, 9))


def _interior_masked_entries(op, active):
    """Per-group masked selections for one activity mask (cached)."""
    key = _mask_digest(active)
    cache = op._mask_cache_interior
    entries = cache.get(key)
    if _MET.enabled:
        _MET.inc("cache/mask_hits" if entries is not None
                 else "cache/mask_misses")
    if entries is not None:
        return entries
    entries = []
    for grp in op.interior_groups:
        am = active[grp.em]
        ap = active[grp.ep]
        sel = am | ap
        if not np.any(sel):
            entries.append(None)
            continue
        upd_m, upd_p = am[sel], ap[sel]
        entries.append((
            grp.em[sel], grp.ep[sel],
            np.ascontiguousarray(grp.G1[sel]), np.ascontiguousarray(grp.G2[sel]),
            np.ascontiguousarray(grp.G3[sel]), np.ascontiguousarray(grp.G4[sel]),
            upd_m, upd_p, bool(np.any(upd_m)), bool(np.any(upd_p)),
        ))
    _cache_put(cache, key, entries)
    return entries


def fused_interior_residual(op, I, out, active=None) -> None:
    """Modal-factorized interior-face kernel (see module docstring)."""
    if active is None:
        groups = ((g, g.em, g.ep, g.G1, g.G2, g.G3, g.G4,
                   slice(None), slice(None), True, True)
                  for g in op.interior_groups)
    else:
        entries = _interior_masked_entries(op, active)
        groups = ((g, *e) for g, e in zip(op.interior_groups, entries)
                  if e is not None)
    for grp, em, ep, G1, G2, G3, G4, upd_m, upd_p, do_m, do_p in groups:
        Xm = I[em]
        Xp = I[ep]
        if do_m:
            contrib = np.matmul(np.matmul(grp.Amm, Xm), G1)
            contrib += np.matmul(np.matmul(grp.Amp, Xp), G2)
            # within one orientation class every element appears at most
            # once per side, so fancy += is exact (same as the batched path)
            if active is None:
                out[em] += contrib
            else:
                out[em[upd_m]] += contrib[upd_m]
        if do_p:
            contrib = np.matmul(np.matmul(grp.App, Xp), G3)
            contrib += np.matmul(np.matmul(grp.Apm, Xm), G4)
            if active is None:
                out[ep] += contrib
            else:
                out[ep[upd_p]] += contrib[upd_p]


def fused_boundary_residual(op, I, out, active=None) -> None:
    """Modal-factorized boundary-face kernel (see module docstring)."""
    if active is None:
        groups = ((g, g.elem, g.G) for g in op.boundary_groups)
    else:
        key = _mask_digest(active)
        cache = op._mask_cache_boundary
        entries = cache.get(key)
        if _MET.enabled:
            _MET.inc("cache/mask_hits" if entries is not None
                     else "cache/mask_misses")
        if entries is None:
            entries = []
            for grp in op.boundary_groups:
                sel = active[grp.elem]
                entries.append(
                    (grp.elem[sel], np.ascontiguousarray(grp.G[sel]))
                    if np.any(sel) else None
                )
            _cache_put(cache, key, entries)
        groups = ((g, *e) for g, e in zip(op.boundary_groups, entries)
                  if e is not None)
    for grp, elem, G in groups:
        contrib = np.matmul(np.matmul(grp.A, I[elem]), G)
        out[elem] += contrib  # unique per (kind, local face) group
