"""Compiled step plans: the clustered-LTS update cadence as static data.

The paper's rate-2 clustered LTS (Sec. 4.4) turns the ocean/solid timestep
contrast into a *predictable* update cadence: cluster ``c`` advances with
``rate**c * dt_min`` and the synchronization pattern repeats every macro
step.  Breuer & Heinecke's next-generation LTS work (PAPERS.md) makes the
observation this module is built on: because the cadence is static, it can
be **compiled once** into a schedule and replayed, instead of being
re-derived at runtime by scanning cluster clocks before every micro-step.

:func:`compile_step_plan` produces a :class:`StepPlan` — flat arrays with
one entry per cluster micro-step:

* which cluster steps and over which exact integer time window (in units
  of ``dt_min``, so termination is an integer comparison, immune to the
  float drift that forced per-driver epsilons before);
* which neighbor windows the corrector consumes — a *Taylor* consume
  reads a coarser neighbor's longer predictor over a sub-window at a
  precompiled integer offset, a *buffer* consume reads the accumulated
  window integrals a finer neighbor published (SeisSol's buffer
  mechanism) — and which finer buffers to clear after publishing;
* whether the cluster needs a fresh predictor afterwards, and whether a
  macro-step synchronization point completes.

The micro-step *order* is canonical: repeatedly advancing the eligible
cluster with the smallest ``(window end, window length, cluster id)``
reproduces the event-driven scheduler's order exactly (the eligibility
constraints never block the lexicographic minimum; the compiler asserts
this while simulating the plan, and a hypothesis test checks it against
an independent implementation of the dynamic ``eligible()`` scan).

Global time-stepping falls out as the trivial single-cluster plan: one
cluster, every micro-step a synchronization point, no consume actions.

Plans depend only on ``(n_clusters, rate, n_macro, adjacency)`` — not on
the mesh — and are memoized in a dedicated
:class:`~repro.exec.plan_cache.PlanCache` keyed by a fingerprint of those
four inputs, so segmented runs (checkpointing supervisors re-enter the
scheduler once per segment) compile each cadence once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..exec.plan_cache import PlanCache, register_cache

__all__ = [
    "StepPlan",
    "compile_step_plan",
    "step_plan_key",
    "get_step_plan",
    "get_step_plan_cache",
    "CONSUME_TAYLOR",
    "CONSUME_BUFFER",
]

#: consume modes baked into :attr:`StepPlan.consume_mode`
CONSUME_TAYLOR = 0  # integrate a coarser neighbor's predictor over a sub-window
CONSUME_BUFFER = 1  # read the window integrals a finer neighbor accumulated


@dataclass(frozen=True)
class StepPlan:
    """A compiled macro-step sequence of cluster micro-steps.

    All time quantities are exact integers in units of ``dt_min`` (the
    finest cluster step); the executing scheduler multiplies by the
    run's ``dt_min`` to recover physical windows.  Arrays with one entry
    per micro-step are indexed ``0 .. n_micro-1`` in execution order;
    the ragged consume/clear action lists use CSR-style ``*_ptr`` index
    arrays.
    """

    n_clusters: int
    rate: int
    n_macro: int
    #: (n_clusters,) window length of each cluster, ``rate**c``
    steps: np.ndarray
    #: run length in integer time, ``n_macro * rate**cmax``
    end_int: int
    #: (n_micro,) cluster id of each micro-step
    cluster: np.ndarray
    #: (n_micro,) integer window start of each micro-step
    t_int: np.ndarray
    #: (n_micro,) True when the cluster needs a fresh predictor afterwards
    update_pred: np.ndarray
    #: (n_micro,) integer sync time completed by this micro-step, or -1
    sync_after: np.ndarray
    #: (n_micro+1,) CSR pointer into the consume action arrays
    consume_ptr: np.ndarray
    #: neighbor cluster id of each consume action
    consume_cluster: np.ndarray
    #: CONSUME_TAYLOR or CONSUME_BUFFER
    consume_mode: np.ndarray
    #: integer offset of the sub-window into the coarser neighbor's
    #: predictor (CONSUME_TAYLOR only; 0 for buffer consumes)
    consume_off: np.ndarray
    #: (n_micro+1,) CSR pointer into the buffer-clear array
    clear_ptr: np.ndarray
    #: finer neighbor cluster ids whose buffers this micro-step consumed
    clear_cluster: np.ndarray

    @property
    def n_micro(self) -> int:
        return len(self.cluster)

    @property
    def n_sync(self) -> int:
        return int((self.sync_after >= 0).sum())

    def consumes(self, i: int):
        """The consume actions of micro-step ``i`` as ``(cluster, mode, off)``."""
        sl = slice(self.consume_ptr[i], self.consume_ptr[i + 1])
        return zip(self.consume_cluster[sl], self.consume_mode[sl],
                   self.consume_off[sl])

    def clears(self, i: int):
        """Finer neighbor clusters whose buffers micro-step ``i`` resets."""
        return self.clear_cluster[self.clear_ptr[i]:self.clear_ptr[i + 1]]


def _canonical_adjacency(n_clusters: int, adjacency) -> tuple:
    """Normalize adjacency to a hashable tuple of sorted neighbor tuples."""
    if adjacency is None:
        return tuple(() for _ in range(n_clusters))
    if len(adjacency) != n_clusters:
        raise ValueError(
            f"adjacency has {len(adjacency)} entries for {n_clusters} clusters"
        )
    out = []
    for c, neigh in enumerate(adjacency):
        ns = tuple(sorted(int(n) for n in neigh))
        for n in ns:
            if not 0 <= n < n_clusters:
                raise ValueError(f"cluster {c} adjacent to out-of-range {n}")
            if n == c:
                raise ValueError(f"cluster {c} listed as its own neighbor")
        out.append(ns)
    # adjacency must be symmetric: the flux exchange is mutual
    for c, ns in enumerate(out):
        for n in ns:
            if c not in out[n]:
                raise ValueError(f"adjacency is not symmetric ({c} -> {n})")
    return tuple(out)


def compile_step_plan(
    n_clusters: int, rate: int, n_macro: int, adjacency=None
) -> StepPlan:
    """Compile the full micro-step sequence of ``n_macro`` macro steps.

    Parameters
    ----------
    n_clusters:
        Number of LTS clusters (1 = global time-stepping).
    rate:
        Timestep ratio between consecutive clusters (paper: 2).
    n_macro:
        Number of macro steps (one macro step = ``rate**cmax`` units of
        ``dt_min``); every cluster synchronizes at each macro boundary.
    adjacency:
        Optional per-cluster neighbor sets (``adjacency[c]`` iterates the
        cluster ids that share a face with cluster ``c``); determines the
        consume/publish actions.  ``None`` compiles an action-free plan
        (sufficient for GTS or fully disconnected clusters).
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    if rate < 2 and n_clusters > 1:
        raise ValueError("rate must be >= 2 for a multi-cluster plan")
    if n_macro < 1:
        raise ValueError("n_macro must be >= 1")
    adjacency = _canonical_adjacency(n_clusters, adjacency)

    cmax = n_clusters - 1
    rate = int(rate)
    steps = np.array([rate**c for c in range(n_clusters)], dtype=np.int64)
    macro = int(steps[cmax])
    end_int = n_macro * macro

    # every micro-step of every cluster, sorted by the canonical key
    # (window end, window length, cluster id) — the event-driven order
    counts = np.array([end_int // int(s) for s in steps], dtype=np.int64)
    clus = np.repeat(np.arange(n_clusters, dtype=np.int64), counts)
    t_end = np.concatenate(
        [np.arange(1, counts[c] + 1, dtype=np.int64) * steps[c]
         for c in range(n_clusters)]
    )
    order = np.lexsort((clus, steps[clus], t_end))
    cluster = clus[order]
    t_int = t_end[order] - steps[cluster]
    n_micro = len(cluster)

    # simulate the integer clocks over the compiled order: derive the
    # consume offsets, predictor-refresh flags and sync points, and assert
    # the event-driven eligibility invariants hold at every micro-step
    t_cur = np.zeros(n_clusters, dtype=np.int64)
    pred = np.zeros(n_clusters, dtype=np.int64)
    update_pred = np.zeros(n_micro, dtype=bool)
    sync_after = np.full(n_micro, -1, dtype=np.int64)
    consume_ptr = np.zeros(n_micro + 1, dtype=np.int64)
    clear_ptr = np.zeros(n_micro + 1, dtype=np.int64)
    c_clusters: list[int] = []
    c_modes: list[int] = []
    c_offs: list[int] = []
    x_clusters: list[int] = []
    next_sync = macro

    for i in range(n_micro):
        c = int(cluster[i])
        t_a = int(t_int[i])
        t_b = t_a + int(steps[c])
        if t_cur[c] != t_a:  # pragma: no cover - canonical-order invariant
            raise AssertionError(
                f"plan compilation out of order: cluster {c} at {t_cur[c]}, "
                f"scheduled window starts at {t_a}"
            )
        for cn in adjacency[c]:
            if steps[cn] > steps[c]:
                # coarser neighbor: its longer predictor must cover the
                # window; consume it at a precompiled offset
                off = t_a - int(pred[cn])
                if off < 0 or int(pred[cn]) + int(steps[cn]) < t_b:
                    raise AssertionError(  # pragma: no cover - invariant
                        f"cluster {cn} predictor does not cover window "
                        f"[{t_a}, {t_b}] of cluster {c}"
                    )
                c_clusters.append(int(cn))
                c_modes.append(CONSUME_TAYLOR)
                c_offs.append(off)
            else:
                # finer neighbor: it must have completed (and published)
                # the whole window into its buffer
                if t_cur[cn] < t_b:  # pragma: no cover - invariant
                    raise AssertionError(
                        f"cluster {cn} buffer incomplete for window "
                        f"[{t_a}, {t_b}] of cluster {c}"
                    )
                c_clusters.append(int(cn))
                c_modes.append(CONSUME_BUFFER)
                c_offs.append(0)
                x_clusters.append(int(cn))
        consume_ptr[i + 1] = len(c_clusters)
        clear_ptr[i + 1] = len(x_clusters)
        t_cur[c] = t_b
        if t_b < end_int:
            update_pred[i] = True
            pred[c] = t_b
        if int(t_cur.min()) >= next_sync:
            sync_after[i] = next_sync
            next_sync += macro

    if next_sync != end_int + macro:  # pragma: no cover - invariant
        raise AssertionError("plan compilation missed a sync point")

    return StepPlan(
        n_clusters=n_clusters,
        rate=rate,
        n_macro=int(n_macro),
        steps=steps,
        end_int=int(end_int),
        cluster=cluster,
        t_int=t_int,
        update_pred=update_pred,
        sync_after=sync_after,
        consume_ptr=consume_ptr,
        consume_cluster=np.array(c_clusters, dtype=np.int64),
        consume_mode=np.array(c_modes, dtype=np.int64),
        consume_off=np.array(c_offs, dtype=np.int64),
        clear_ptr=clear_ptr,
        clear_cluster=np.array(x_clusters, dtype=np.int64),
    )


# ----------------------------------------------------------------------
def step_plan_key(n_clusters: int, rate: int, n_macro: int, adjacency=None) -> str:
    """SHA-256 fingerprint of everything a step plan depends on."""
    adjacency = _canonical_adjacency(n_clusters, adjacency)
    h = hashlib.sha256()
    h.update(
        f"sched-plan:v1;nc={int(n_clusters)};rate={int(rate)};"
        f"nmacro={int(n_macro)};adj={adjacency!r}".encode()
    )
    return h.hexdigest()


#: step plans get their own cache instance so a flood of distinct
#: ``n_macro`` values can never evict the (much more expensive) operator
#: plans from the shared LRU
_STEP_PLANS = PlanCache(max_entries=32)
register_cache(_STEP_PLANS)


def get_step_plan_cache() -> PlanCache:
    """The process-wide step-plan cache (cleared by ``clear_plan_cache``)."""
    return _STEP_PLANS


def get_step_plan(
    n_clusters: int, rate: int, n_macro: int, adjacency=None
) -> StepPlan:
    """Cached :func:`compile_step_plan` (honors ``REPRO_PLAN_CACHE=0``)."""
    return _STEP_PLANS.get_or_build_key(
        step_plan_key(n_clusters, rate, n_macro, adjacency),
        lambda: compile_step_plan(n_clusters, rate, n_macro, adjacency),
        phase="setup/step_plan",
    )
