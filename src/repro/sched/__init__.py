"""Compiled step-plan scheduling (paper Sec. 4.4).

The clustered local-time-stepping cadence is *static*: given the number
of clusters, the rate and the macro-step count, the full sequence of
cluster micro-steps — including every neighbor-window consume and buffer
publish — is known before the run starts.  This package compiles that
sequence once into a flat :class:`StepPlan` (cached by fingerprint, like
operator plans), and a single :class:`Scheduler` replays it through any
execution backend, firing :class:`HookBus` events that observability,
resilience and analysis subscribe to.  Global time stepping is simply the
one-cluster plan.
"""

from .hooks import HookBus, MicroStepEvent
from .plan import (
    CONSUME_BUFFER,
    CONSUME_TAYLOR,
    StepPlan,
    compile_step_plan,
    get_step_plan,
    get_step_plan_cache,
    step_plan_key,
)
from .scheduler import TERMINATION_TOL, Scheduler, plan_steps

__all__ = [
    "CONSUME_BUFFER",
    "CONSUME_TAYLOR",
    "StepPlan",
    "compile_step_plan",
    "get_step_plan",
    "get_step_plan_cache",
    "step_plan_key",
    "HookBus",
    "MicroStepEvent",
    "Scheduler",
    "plan_steps",
    "TERMINATION_TOL",
]
