"""The one time-integration engine: compiled plans in, hook events out.

:class:`Scheduler` replaces the four independent time loops the repo grew
(``CoupledSolver.run``, ``LocalTimeStepping.run``, ``ResilientRunner``'s
per-mode advance methods, and the backend orchestration glue) with a
single executor:

* it owns **dt derivation** (``solver.dt`` / the LTS ``dt_min``) and the
  uniform ``dt_scale`` backoff hook;
* it owns **termination**: the number of steps is fixed up front by the
  exact integer clock (:func:`plan_steps`), replacing the two subtly
  different float-epsilon end-time criteria the GTS and LTS loops used;
* it executes a compiled :class:`~repro.sched.plan.StepPlan` — under LTS
  the canonical clustered cadence is *replayed* from flat arrays with no
  per-micro-step eligibility scan; under GTS the plan is the trivial
  single-cluster cadence;
* it is the **single telemetry dispatch site**: the per-cluster trace
  span and update counters are emitted in exactly one place, with span
  recording guarded internally (the old driver duplicated its whole step
  body into traced/untraced branches);
* it fires the :class:`~repro.sched.hooks.HookBus` events every
  subscriber — watchdogs, heartbeats, receivers, checkpoints — now share.

Any :class:`~repro.exec.backend.ExecutionBackend` executes the kernels;
the scheduler never touches elements directly, so serial and partitioned
runs replay the identical plan.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.ader import taylor_integrate
from ..obs.metrics import get_metrics
from ..obs.telemetry import get_telemetry
from .hooks import HookBus, MicroStepEvent
from .plan import CONSUME_TAYLOR, StepPlan, get_step_plan

__all__ = ["Scheduler", "plan_steps", "TERMINATION_TOL"]

_TEL = get_telemetry()
_MET = get_metrics()


def _pulse_metrics(solver, steps_done: int, state: dict) -> None:
    """Fleet-metric emission at a synchronization point (guarded upstream).

    ``state`` carries ``{"wall", "steps"}`` across calls within one run so
    the wall-rate gauge reflects progress *since the previous sync*, not a
    run-lifetime average.
    """
    now = time.perf_counter()
    n = steps_done - state["steps"]
    if n > 0:
        _MET.inc("sched/steps_total", n)
    _MET.set_gauge("sched/sim_time", float(solver.t))
    d_wall = now - state["wall"]
    if d_wall > 0 and n > 0:
        _MET.set_gauge("sched/wall_rate", n / d_wall)
    state["wall"], state["steps"] = now, steps_done

#: the integer clock's quantization, in *step units*: spans within this
#: fraction of a whole number of steps round to it, so a ``t_end`` that is
#: a step multiple up to float error never produces a sliver step (the old
#: absolute-epsilon criteria could)
TERMINATION_TOL = 1e-9


def plan_steps(span: float, unit: float) -> int:
    """Exact integer number of ``unit``-sized steps covering ``span``.

    The single termination authority: every driver derives its step count
    from this and then counts integers, instead of comparing accumulated
    float times against an epsilon-padded end time.
    """
    if unit <= 0.0 or not np.isfinite(unit):
        raise ValueError(f"step unit must be positive and finite, got {unit!r}")
    return int(np.ceil(span / unit - TERMINATION_TOL))


class Scheduler:
    """Executes compiled step plans for one solver (GTS or clustered LTS).

    Parameters
    ----------
    solver:
        The :class:`~repro.core.solver.CoupledSolver` to advance.
    lts:
        Optional :class:`~repro.core.lts.LocalTimeStepping` wrapping the
        same solver; when given, runs replay the clustered plan, otherwise
        the trivial global-time-stepping plan.
    """

    def __init__(self, solver, lts=None):
        if lts is not None and lts.solver is not solver:
            raise ValueError("lts wraps a different solver instance")
        self.solver = solver
        self.lts = lts
        self.backend = solver.backend

    # ------------------------------------------------------------------
    def run(
        self,
        t_end: float,
        dt: float | None = None,
        dt_scale: float = 1.0,
        hooks: HookBus | None = None,
        dt_factor=None,
    ) -> None:
        """Advance the solver to ``t_end`` along the compiled plan.

        ``dt`` overrides the nominal step (GTS only; LTS derives its
        windows from the clustering).  ``dt_scale`` in (0, 1] uniformly
        shrinks every step — the supervisor's dt-backoff hook.
        ``dt_factor(solver) -> float`` is an optional per-step modulation
        (GTS only; deterministic fault injection) — a non-unit factor
        re-derives the remaining step count from the integer clock.
        """
        if not 0.0 < dt_scale <= 1.0:
            raise ValueError("dt_scale must be in (0, 1]")
        hooks = HookBus() if hooks is None else hooks
        if self.lts is not None:
            if dt is not None:
                raise ValueError("dt cannot override the LTS clustering windows")
            if dt_factor is not None:
                raise ValueError("dt_factor applies to GTS runs only")
            self._run_lts(t_end, dt_scale, hooks)
        else:
            self._run_gts(t_end, dt, dt_scale, hooks, dt_factor)

    # -- global time-stepping: the trivial single-cluster plan ----------
    def _run_gts(self, t_end, dt, dt_scale, hooks, dt_factor) -> None:
        solver = self.solver
        dt_eff = (solver.dt if dt is None else dt) * dt_scale
        n_steps = plan_steps(t_end - solver.t, dt_eff)
        if n_steps <= 0:
            return
        # the compiled cadence of GTS: one cluster, every step a sync
        plan = get_step_plan(1, 2, n_steps)
        met_state = {"wall": time.perf_counter(), "steps": 0}
        k = 0
        while k < plan.n_micro:
            factor = 1.0 if dt_factor is None else float(dt_factor(solver))
            dt_nominal = dt_eff * factor
            step_dt = min(dt_nominal, t_end - solver.t)
            solver.step(step_dt)
            k += 1
            if hooks.wants_micro:
                hooks.micro_step(solver, MicroStepEvent(
                    index=k - 1, cluster=0, t_int=k - 1,
                    dt=float(step_dt), dt_nominal=float(dt_nominal),
                ))
            if _MET.enabled:
                _pulse_metrics(solver, k, met_state)
            hooks.sync(solver)
            if factor != 1.0 and k < plan.n_micro:
                # the plan assumed uniform steps; a modulated step changes
                # the remaining span, so re-derive the count once
                remaining = plan_steps(t_end - solver.t, dt_eff)
                if remaining != plan.n_micro - k:
                    plan = get_step_plan(1, 2, k + max(remaining, 0))

    # -- clustered LTS: replay the compiled cadence ---------------------
    def _run_lts(self, t_end, dt_scale, hooks) -> None:
        lts = self.lts
        solver = self.solver
        backend = self.backend
        rate, cmax = lts.rate, lts.cmax
        dt_macro = lts.dt_min * dt_scale * rate**cmax
        span = t_end - solver.t
        if span <= 0:
            return
        # dt_min shrinks so the macro step divides the span exactly,
        # keeping the rate synchronization invariants intact
        n_macro = max(1, plan_steps(span, dt_macro))
        dt_min = span / (n_macro * rate**cmax)
        dts = np.array([dt_min * rate**c for c in range(lts.n_clusters)])
        t0 = solver.t
        plan = get_step_plan(lts.n_clusters, rate, n_macro,
                             adjacency=lts.adjacent)

        op = lts.op
        ne, nb = op.n_elements, op.nbasis
        derivs = backend.predict(solver.Q)
        Iown = np.zeros((ne, nb, 9))
        Ibuf = np.zeros((ne, nb, 9))
        for c in range(lts.n_clusters):
            idx = lts.idx[c]
            Iown[idx] = taylor_integrate(derivs[idx], 0.0, dts[c])

        # the window-assembly buffer is allocated once for the whole run:
        # each micro-step overwrites exactly the rows its corrector reads
        # (the active cluster plus every consumed neighbor — LTS adjacency
        # guarantees the consume list covers all faces with an active side),
        # so stale rows from earlier micro-steps are never observed
        I = np.zeros((ne, nb, 9))
        state = (plan, dt_min, dts, derivs, Iown, Ibuf, I, t0)
        met_state = {"wall": time.perf_counter(), "steps": 0}
        for i in range(plan.n_micro):
            c = int(plan.cluster[i])
            # single dispatch site: span emission guarded internally (the
            # Perfetto timeline colors these by cluster id, exposing the
            # clustered update cadence)
            if _TEL.enabled and _TEL.tracing:
                with _TEL.trace_span("lts/cluster", cluster=c,
                                     elems=int(lts.elem_count[c]),
                                     t_int=int(plan.t_int[i]),
                                     dt=float(dts[c])):
                    self._exec_micro(i, c, state)
            else:
                self._exec_micro(i, c, state)
            lts.updates[c] += 1
            if _TEL.enabled:
                _TEL.count(f"lts/updates/c{c}")
                _TEL.count(f"lts/elem_updates/c{c}", int(lts.elem_count[c]))
            if hooks.wants_micro:
                hooks.micro_step(solver, MicroStepEvent(
                    index=i, cluster=c, t_int=int(plan.t_int[i]),
                    dt=float(dts[c]), dt_nominal=float(dts[c]),
                ))
            sync_at = int(plan.sync_after[i])
            if sync_at >= 0:
                solver.t = t0 + sync_at * dt_min
                if _MET.enabled:
                    _pulse_metrics(solver, i + 1, met_state)
                    for cc in range(lts.n_clusters):
                        _MET.set_gauge(f"sched/cluster_updates/c{cc}",
                                       float(lts.updates[cc]))
                hooks.sync(solver)
        solver.t = t_end

    def _exec_micro(self, i: int, c: int, state) -> None:
        """One cluster micro-step: assemble windows, correct, publish."""
        plan, dt_min, dts, derivs, Iown, Ibuf, I, t0 = state
        lts = self.lts
        solver = self.solver
        mask = lts.masks[c]
        idx = lts.idx[c]
        t_a = int(plan.t_int[i]) * dt_min

        # assemble per-element time-integrated data for this window (into
        # the run-lifetime buffer; see _run_lts for why reuse is exact)
        I[idx] = Iown[idx]
        for cn, mode, off_int in plan.consumes(i):
            nidx = lts.idx[int(cn)]
            if mode == CONSUME_TAYLOR:
                # a coarser neighbor predicted earlier with a longer
                # window; integrate its Taylor expansion over ours
                off = int(off_int) * dt_min
                I[nidx] = taylor_integrate(derivs[nidx], off, off + dts[c])
            else:
                # a finer neighbor accumulated its completed windows
                I[nidx] = Ibuf[nidx]

        out = self.backend.corrector(
            I, derivs, dts[c], t0=t0 + t_a, active=mask,
            gravity_mask=lts.gravity_masks[c],
            motion_mask=None if lts.motion_masks is None else lts.motion_masks[c],
        )
        solver.Q[idx] += out[idx]

        # the just-completed window becomes available to coarser neighbors
        Ibuf[idx] += Iown[idx]
        # buffers of finer neighbors covering this window were consumed
        for cn in plan.clears(i):
            Ibuf[lts.idx[int(cn)]] = 0.0

        # next predictor for this cluster (compiled flag: skipped when the
        # run is over for it)
        if plan.update_pred[i]:
            self.backend.update_predictor(solver.Q, mask, dts[c], derivs, Iown)

    # ------------------------------------------------------------------
    def compiled_plan(self, t_end: float, dt_scale: float = 1.0) -> StepPlan:
        """The plan a ``run(t_end, dt_scale=...)`` call would replay
        (introspection; uses the same cache as :meth:`run`)."""
        solver = self.solver
        if self.lts is None:
            n = max(plan_steps(t_end - solver.t, solver.dt * dt_scale), 0)
            return get_step_plan(1, 2, max(n, 1))
        lts = self.lts
        dt_macro = lts.dt_min * dt_scale * lts.rate**lts.cmax
        n_macro = max(1, plan_steps(t_end - solver.t, dt_macro))
        return get_step_plan(lts.n_clusters, lts.rate, n_macro,
                             adjacency=lts.adjacent)
