"""The scheduler's single hook surface.

Everything that used to be hand-wired ``callback(solver)`` plumbing —
watchdog sweeps, heartbeat emission, receiver sampling, checkpoint writes,
example probes — subscribes to one ordered :class:`HookBus` instead.  The
:class:`~repro.sched.scheduler.Scheduler` is the only emitter, so every
time-marching driver fires the same events with the same semantics:

``on_micro_step(solver, event)``
    After every executed micro-step (one cluster window under LTS, one
    full step under GTS).  ``event`` is a :class:`MicroStepEvent` with
    the cluster id, exact integer window start, the physical ``dt``
    actually integrated and the nominal ``dt`` before end-of-run
    shortening (the value CFL monitoring must check).
``on_sync(solver)``
    At every synchronization point — each macro-step boundary under LTS,
    each step under GTS — with ``solver.t`` set to the sync time.  This
    is exactly the legacy per-step callback convention, so existing
    ``callback(solver)`` functions subscribe unchanged.
``on_segment_end(solver)``
    At supervised-segment boundaries (emitted by
    :class:`~repro.core.resilience.ResilientRunner` after a segment
    completes healthily); checkpoint writers live here.

Subscribers run in registration order; exceptions propagate to the
scheduler's caller (the watchdog uses this to abort a diverging segment).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import get_metrics

__all__ = ["MicroStepEvent", "HookBus"]

_MET = get_metrics()


@dataclass(frozen=True)
class MicroStepEvent:
    """What just happened, from a micro-step hook's point of view."""

    #: index of the micro-step within the current scheduler run
    index: int
    #: cluster that stepped (0 under GTS)
    cluster: int
    #: integer window start in units of the run's ``dt_min`` / ``dt``
    t_int: int
    #: physical window actually integrated (end-of-run steps may shorten)
    dt: float
    #: nominal window before shortening (what CFL checks must see)
    dt_nominal: float


class HookBus:
    """Ordered fan-out of scheduler events to subscribers."""

    __slots__ = ("_micro", "_sync", "_segment")

    def __init__(self):
        self._micro: list = []
        self._sync: list = []
        self._segment: list = []

    # -- subscription ---------------------------------------------------
    def on_micro_step(self, fn):
        """Subscribe ``fn(solver, event)`` to every micro-step."""
        self._micro.append(fn)
        return fn

    def on_sync(self, fn):
        """Subscribe ``fn(solver)`` to every synchronization point."""
        self._sync.append(fn)
        return fn

    def on_segment_end(self, fn):
        """Subscribe ``fn(solver)`` to supervised-segment boundaries."""
        self._segment.append(fn)
        return fn

    def extend(self, other: "HookBus | None") -> "HookBus":
        """Append every subscriber of ``other`` (keeping their order)."""
        if other is not None:
            self._micro.extend(other._micro)
            self._sync.extend(other._sync)
            self._segment.extend(other._segment)
        return self

    def __len__(self) -> int:
        return len(self._micro) + len(self._sync) + len(self._segment)

    # -- emission (scheduler-side) --------------------------------------
    @property
    def wants_micro(self) -> bool:
        return bool(self._micro)

    def micro_step(self, solver, event: MicroStepEvent) -> None:
        for fn in self._micro:
            fn(solver, event)

    def sync(self, solver) -> None:
        if _MET.enabled:
            _MET.inc("sched/sync_total")
        for fn in self._sync:
            fn(solver)

    def segment_end(self, solver) -> None:
        if _MET.enabled:
            _MET.inc("sched/segments_total")
        for fn in self._segment:
            fn(solver)
