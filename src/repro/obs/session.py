"""One-stop observability wiring for examples and the CLI.

:class:`ObsSession` bundles the observability features behind the shared
``--profile`` / ``--trace`` / ``--log-json`` / ``--heartbeat-every``
flags:

* ``profile=True`` enables the global :class:`~repro.obs.telemetry.Telemetry`
  registry for the run and prints the per-phase + roofline report at the
  end;
* ``trace=PATH`` enables the registry in span-tracing mode and exports a
  Chrome-trace / Perfetto JSON timeline to ``PATH`` at the end (open it
  at https://ui.perfetto.dev, or summarize with ``python -m repro
  obs-trace PATH``); composes freely with ``profile``;
* ``log_json=PATH`` opens a structured :class:`~repro.obs.runlog.RunLog`
  and writes the run manifest, periodic heartbeats and the final
  ``run_end`` record (resilience events are routed into the same log by
  passing ``session.runlog`` to ``ResilientRunner``);
* ``heartbeat_every=N`` controls the heartbeat period in steps (default
  10 when logging is on).  Without a run log, an explicit ``N`` prints
  one-line heartbeats to stdout instead of being silently ignored.

``finish()`` is exception-safe: the run log is closed and the registry
disabled even when the trace export, ``run_end`` emission or report
rendering raises.

Usage pattern (see ``examples/quickstart.py``)::

    obs = ObsSession(profile=args.profile, log_json=args.log_json,
                     heartbeat_every=args.heartbeat_every,
                     config={"command": "quickstart", "t_end": t_end})
    obs.start(solver, resumed=bool(resume))
    solver.run(t_end, callback=obs.chain(my_callback))
    obs.finish(solver)
"""

from __future__ import annotations

import time

from .metrics import get_metrics
from .runlog import RunLog, run_manifest
from .telemetry import get_telemetry

__all__ = ["ObsSession", "add_obs_args", "obs_kwargs"]


class ObsSession:
    """Run-scoped bundle of telemetry, run log and heartbeat emission.

    ``metrics=True`` additionally enables the typed fleet-metric registry
    (:mod:`repro.obs.metrics`) for the run: the scheduler, watchdog and
    caches populate it, heartbeats persist compact snapshots as
    ``metrics`` run-log records when logging is on, and ``finish()``
    disables the registry again.
    """

    def __init__(self, profile: bool = False, log_json: str | None = None,
                 heartbeat_every: int | None = None,
                 config: dict | None = None, node: str = "rome",
                 trace: str | None = None, metrics: bool = False):
        self.profile = bool(profile)
        self.trace = trace
        self.metrics = bool(metrics)
        self.config = dict(config or {})
        self.node = node
        self.runlog = RunLog(log_json) if log_json else None
        if heartbeat_every is None:
            heartbeat_every = 10 if self.runlog is not None else 0
        self.heartbeat_every = int(heartbeat_every)
        self.steps = 0
        self._t0 = None
        self._hb_t = None
        self._hb_step = 0
        self._owns_registry = self.profile or self.trace is not None
        if self._owns_registry:
            tel = get_telemetry()
            tel.reset()
            tel.enable(trace=self.trace is not None)
        if self.metrics:
            met = get_metrics()
            met.reset()
            met.enable()

    @property
    def active(self) -> bool:
        """Whether any observability feature is switched on."""
        return (self.profile or self.trace is not None or self.metrics
                or self.runlog is not None or self.heartbeat_every > 0)

    # ------------------------------------------------------------------
    def start(self, solver=None, resumed: bool = False) -> None:
        """Mark run start; writes the manifest when logging is enabled."""
        self._t0 = time.perf_counter()
        self._hb_t = self._t0
        self._hb_step = 0
        if self.runlog is not None:
            self.runlog.emit(
                "manifest",
                **run_manifest(solver, config=self.config, resumed=resumed),
            )

    def on_step(self, solver) -> None:
        """Per-step hook: counts steps, emits periodic heartbeats.

        Heartbeats go to the structured run log when one is open, and to
        stdout otherwise — an explicit ``--heartbeat-every`` without
        ``--log-json`` must not be silently ignored.
        """
        self.steps += 1
        if self.heartbeat_every > 0 and self.steps % self.heartbeat_every == 0:
            now = time.perf_counter()
            span = now - (self._hb_t if self._hb_t is not None else now)
            n = self.steps - self._hb_step
            rate = n / span if span > 0 else 0.0
            energy = float(solver.energy())
            if self.runlog is not None:
                if self.metrics:
                    self.runlog.emit(
                        "metrics", step=self.steps, sim_t=float(solver.t),
                        metrics=get_metrics().compact(),
                    )
                self.runlog.emit(
                    "heartbeat",
                    step=self.steps,
                    sim_t=float(solver.t),
                    dt=float(solver.dt),
                    energy=energy,
                    wall_rate=rate,
                )
            else:
                print(f"[heartbeat] step {self.steps} | sim t {solver.t:.6g} s"
                      f" | dt {solver.dt:.3g} s | energy {energy:.4g} J"
                      f" | {rate:.2f} steps/s", flush=True)
            self._hb_t, self._hb_step = now, self.steps

    def chain(self, callback=None):
        """Compose ``on_step`` with a caller's per-step callback."""
        if not self.active:
            return callback
        if callback is None:
            return self.on_step

        def combined(solver):
            callback(solver)
            self.on_step(solver)

        return combined

    def subscribe(self, bus):
        """Attach heartbeat/step accounting to a scheduler hook bus.

        Registers :meth:`on_step` on every synchronization point of a
        :class:`~repro.sched.HookBus` (no-op while inactive, like
        :meth:`chain`).  Returns ``bus`` for fluent wiring.
        """
        if self.active:
            bus.on_sync(self.on_step)
        return bus

    # ------------------------------------------------------------------
    def finish(self, solver=None) -> None:
        """Export the trace, emit ``run_end``, close the log, print the
        profile report.

        Wrapped in try/finally: whatever the export/emission/rendering
        steps raise, the run log is closed and a session-enabled registry
        is disabled — an exception mid-finish must not leak an open log
        file or leave telemetry globally on for unrelated code.
        """
        wall = (time.perf_counter() - self._t0) if self._t0 is not None else 0.0
        tel = get_telemetry()
        try:
            snap = (tel.snapshot() if self._owns_registry
                    else {"phases": {}, "counters": {}})
            if self.trace is not None:
                from .trace import export_chrome_trace

                doc = export_chrome_trace(
                    self.trace, tel.trace_snapshot(),
                    metadata={"config": self.config, "steps": self.steps,
                              "wall_s": wall},
                )
                print(f"trace: {self.trace} "
                      f"({doc['otherData']['spans']} spans; open at "
                      f"https://ui.perfetto.dev or run "
                      f"`python -m repro obs-trace {self.trace}`)")
            if self.runlog is not None:
                self.runlog.emit(
                    "run_end", steps=self.steps, wall_s=wall,
                    phases=snap["phases"], counters=snap["counters"],
                )
            if self.profile:
                from .report import profile_lines

                order = int(solver.order) if solver is not None else None
                print()
                print(f"== profile ({self.steps} steps, {wall:.2f} s wall) ==")
                for line in profile_lines(snap, order=order, wall_s=wall,
                                          node=self.node):
                    print(line)
        finally:
            if self.runlog is not None:
                self.runlog.close()
            if self._owns_registry:
                tel.disable()
            if self.metrics:
                get_metrics().disable()


# ----------------------------------------------------------------------
def add_obs_args(parser) -> None:
    """Attach the shared observability flags to an argparse parser."""
    parser.add_argument(
        "--profile", action="store_true",
        help="enable phase telemetry and print a roofline report at exit",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span timeline and export Chrome-trace/Perfetto JSON to PATH",
    )
    parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="append structured JSONL run records (manifest/heartbeat/...) to PATH",
    )
    parser.add_argument(
        "--heartbeat-every", type=int, default=None, metavar="N",
        help="heartbeat record period in steps (default 10 when logging)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable the typed fleet-metric registry (scheduler, watchdog "
             "and cache gauges/counters; persisted as 'metrics' run-log "
             "records when --log-json is on)",
    )


def obs_kwargs(args) -> dict:
    """Extract the observability kwargs from parsed CLI args."""
    return {
        "profile": getattr(args, "profile", False),
        "trace": getattr(args, "trace", None),
        "log_json": getattr(args, "log_json", None),
        "heartbeat_every": getattr(args, "heartbeat_every", None),
        "metrics": getattr(args, "metrics", False),
    }
