"""One-stop observability wiring for examples and the CLI.

:class:`ObsSession` bundles the three observability features behind the
shared ``--profile`` / ``--log-json`` / ``--heartbeat-every`` flags:

* ``profile=True`` enables the global :class:`~repro.obs.telemetry.Telemetry`
  registry for the run and prints the per-phase + roofline report at the
  end;
* ``log_json=PATH`` opens a structured :class:`~repro.obs.runlog.RunLog`
  and writes the run manifest, periodic heartbeats and the final
  ``run_end`` record (resilience events are routed into the same log by
  passing ``session.runlog`` to ``ResilientRunner``);
* ``heartbeat_every=N`` controls the heartbeat period in steps (default
  10 when logging is on).

Usage pattern (see ``examples/quickstart.py``)::

    obs = ObsSession(profile=args.profile, log_json=args.log_json,
                     heartbeat_every=args.heartbeat_every,
                     config={"command": "quickstart", "t_end": t_end})
    obs.start(solver, resumed=bool(resume))
    solver.run(t_end, callback=obs.chain(my_callback))
    obs.finish(solver)
"""

from __future__ import annotations

import time

from .runlog import RunLog, run_manifest
from .telemetry import get_telemetry

__all__ = ["ObsSession", "add_obs_args", "obs_kwargs"]


class ObsSession:
    """Run-scoped bundle of telemetry, run log and heartbeat emission."""

    def __init__(self, profile: bool = False, log_json: str | None = None,
                 heartbeat_every: int | None = None,
                 config: dict | None = None, node: str = "rome"):
        self.profile = bool(profile)
        self.config = dict(config or {})
        self.node = node
        self.runlog = RunLog(log_json) if log_json else None
        if heartbeat_every is None:
            heartbeat_every = 10 if self.runlog is not None else 0
        self.heartbeat_every = int(heartbeat_every)
        self.steps = 0
        self._t0 = None
        self._hb_t = None
        self._hb_step = 0
        if self.profile:
            tel = get_telemetry()
            tel.reset()
            tel.enable()

    @property
    def active(self) -> bool:
        """Whether any observability feature is switched on."""
        return self.profile or self.runlog is not None

    # ------------------------------------------------------------------
    def start(self, solver=None, resumed: bool = False) -> None:
        """Mark run start; writes the manifest when logging is enabled."""
        self._t0 = time.perf_counter()
        self._hb_t = self._t0
        self._hb_step = 0
        if self.runlog is not None:
            self.runlog.emit(
                "manifest",
                **run_manifest(solver, config=self.config, resumed=resumed),
            )

    def on_step(self, solver) -> None:
        """Per-step hook: counts steps, emits periodic heartbeats."""
        self.steps += 1
        if (self.runlog is not None and self.heartbeat_every > 0
                and self.steps % self.heartbeat_every == 0):
            now = time.perf_counter()
            span = now - (self._hb_t if self._hb_t is not None else now)
            n = self.steps - self._hb_step
            self.runlog.emit(
                "heartbeat",
                step=self.steps,
                sim_t=float(solver.t),
                dt=float(solver.dt),
                energy=float(solver.energy()),
                wall_rate=n / span if span > 0 else 0.0,
            )
            self._hb_t, self._hb_step = now, self.steps

    def chain(self, callback=None):
        """Compose ``on_step`` with a caller's per-step callback."""
        if not self.active:
            return callback
        if callback is None:
            return self.on_step

        def combined(solver):
            callback(solver)
            self.on_step(solver)

        return combined

    # ------------------------------------------------------------------
    def finish(self, solver=None) -> None:
        """Emit ``run_end``, close the log, print the profile report."""
        wall = (time.perf_counter() - self._t0) if self._t0 is not None else 0.0
        snap = get_telemetry().snapshot() if self.profile else {"phases": {}, "counters": {}}
        if self.runlog is not None:
            self.runlog.emit(
                "run_end", steps=self.steps, wall_s=wall,
                phases=snap["phases"], counters=snap["counters"],
            )
            self.runlog.close()
        if self.profile:
            from .report import profile_lines

            order = int(solver.order) if solver is not None else None
            print()
            print(f"== profile ({self.steps} steps, {wall:.2f} s wall) ==")
            for line in profile_lines(snap, order=order, wall_s=wall,
                                      node=self.node):
                print(line)
            get_telemetry().disable()


# ----------------------------------------------------------------------
def add_obs_args(parser) -> None:
    """Attach the shared observability flags to an argparse parser."""
    parser.add_argument(
        "--profile", action="store_true",
        help="enable phase telemetry and print a roofline report at exit",
    )
    parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="append structured JSONL run records (manifest/heartbeat/...) to PATH",
    )
    parser.add_argument(
        "--heartbeat-every", type=int, default=None, metavar="N",
        help="heartbeat record period in steps (default 10 when logging)",
    )


def obs_kwargs(args) -> dict:
    """Extract the observability kwargs from parsed CLI args."""
    return {
        "profile": getattr(args, "profile", False),
        "log_json": getattr(args, "log_json", None),
        "heartbeat_every": getattr(args, "heartbeat_every", None),
    }
