"""Fleet-level metric aggregation, exporters, and the live status view.

The supervisor of :mod:`repro.ensemble` sees every member's compact
metric snapshot ride in on the heartbeat queue; this module is where
those per-member views become *fleet* facts:

* :class:`FleetAggregator` — folds member snapshots (associatively, via
  :func:`repro.obs.metrics.merge_snapshots`) into one fleet snapshot,
  keeps per-member last-seen wall times (staleness — the first thing an
  operator checks when a lane goes quiet), and computes cross-member
  min/max/median/q90 statistics for every gauge (the fleet-spread view:
  is one member's energy drifting while the rest hold steady?).
* **Exporters** — :meth:`FleetAggregator.export` writes two artifacts
  next to the ensemble out-dir, both atomically (temp file +
  ``os.replace``, so a scrape or a tail never sees a torn file):
  ``fleet.prom`` in the Prometheus textfile-collector format (validated
  by :func:`repro.obs.metrics.validate_prometheus` in CI) and
  ``fleet.jsonl`` with the full JSON aggregate history (bounded).
* **Status view** — :func:`status_rows` / :func:`status_lines` read an
  ensemble run directory *from its artifacts alone* (supervisor log,
  member run logs, result files — no live process required) and render
  the table behind ``python -m repro obs-status RUN_DIR``: one row per
  member with state, step, simulated time, wall rate, energy drift,
  retries and heartbeat staleness.
"""

from __future__ import annotations

import json
import math
import os
import sys
import tempfile
import time

from .metrics import (
    METRICS_SCHEMA_VERSION,
    merge_snapshots,
    to_prometheus,
)

__all__ = [
    "FLEET_PROM",
    "FLEET_JSONL",
    "FleetAggregator",
    "read_jsonl_tolerant",
    "status_rows",
    "status_lines",
    "watch_status",
]

FLEET_PROM = "fleet.prom"
FLEET_JSONL = "fleet.jsonl"

#: aggregate-history records kept in ``fleet.jsonl``
_HISTORY_MAX = 512


def _quantile(sorted_vals: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list."""
    if not sorted_vals:
        return math.nan
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def _atomic_write(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via temp-file + rename (scrape-safe)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=f".{os.path.basename(path)}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class FleetAggregator:
    """Fold per-member metric snapshots into fleet-level series.

    The supervisor calls :meth:`update` from its heartbeat drain loop and
    :meth:`export` periodically plus once at the end; everything else is
    derived.  Thread-safety is not needed — the supervisor's event loop
    is single-threaded — but updates are cheap enough to call per
    message.
    """

    def __init__(self, out_dir: str | None = None):
        self.out_dir = out_dir
        #: member -> {"snapshot", "wall", "state"} (last view of each member)
        self.members: dict[str, dict] = {}
        self._history: list[dict] = []

    # -- folding -------------------------------------------------------
    def update(self, member_id: str, snapshot: dict | None,
               wall: float | None = None, state: str | None = None) -> None:
        """Record the latest view of ``member_id``.

        ``snapshot`` may be ``None`` (a heartbeat without a metrics
        payload still refreshes last-seen); ``state`` tracks the
        supervisor's view (``running``/``retrying``/``ok``/...).
        """
        cell = self.members.setdefault(
            member_id, {"snapshot": None, "wall": 0.0, "state": "unknown"})
        if snapshot is not None:
            if snapshot.get("schema", METRICS_SCHEMA_VERSION) \
                    != METRICS_SCHEMA_VERSION:
                return  # future wire format: ignore rather than misfold
            cell["snapshot"] = snapshot
        cell["wall"] = float(wall) if wall is not None else time.time()
        if state is not None:
            cell["state"] = state

    def member_snapshot(self, member_id: str) -> dict | None:
        cell = self.members.get(member_id)
        return None if cell is None else cell["snapshot"]

    def member_brief(self, member_id: str) -> dict:
        """Small ``{step, sim_t, energy_drift_ratio}`` digest of a member's
        last snapshot — what supervisor run-log events embed so quarantine
        diagnoses are self-contained."""
        snap = self.member_snapshot(member_id)
        if not snap:
            return {}
        gauges = snap.get("gauges", {})
        brief = {}
        for name, key in (("sched/steps_total", "step"),
                          ("sched/sim_time", "sim_t"),
                          ("health/energy_drift_ratio", "energy_drift")):
            g = gauges.get(name)
            if g is not None:
                brief[key] = g.get("value")
        if "step" not in brief:
            steps = snap.get("counters", {}).get("sched/steps_total")
            if steps is not None:
                brief["step"] = steps
        return brief

    def fleet_snapshot(self) -> dict:
        """The associative fold of every member's last snapshot."""
        out = None
        for member_id in sorted(self.members):
            snap = self.members[member_id]["snapshot"]
            if snap is not None:
                out = merge_snapshots(out, snap)
        return out if out is not None else merge_snapshots(None, None)

    def staleness(self, now: float | None = None) -> dict[str, float]:
        """Seconds since each member was last seen."""
        now = time.time() if now is None else now
        return {mid: max(0.0, now - cell["wall"])
                for mid, cell in self.members.items()}

    def gauge_stats(self) -> dict[str, dict]:
        """Cross-member min/max/median/q90 for every gauge name."""
        by_name: dict[str, list[float]] = {}
        for cell in self.members.values():
            snap = cell["snapshot"]
            if not snap:
                continue
            for name, g in snap.get("gauges", {}).items():
                by_name.setdefault(name, []).append(float(g["value"]))
        stats = {}
        for name, vals in by_name.items():
            vals.sort()
            stats[name] = {
                "min": vals[0],
                "max": vals[-1],
                "q50": _quantile(vals, 0.5),
                "q90": _quantile(vals, 0.9),
                "n": len(vals),
            }
        return stats

    def aggregate(self, now: float | None = None) -> dict:
        """One JSON-able fleet aggregate record."""
        now = time.time() if now is None else now
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "wall": now,
            "members": {
                mid: {
                    "state": cell["state"],
                    "last_seen_wall": cell["wall"],
                    "staleness_s": max(0.0, now - cell["wall"]),
                    "brief": self.member_brief(mid),
                }
                for mid, cell in sorted(self.members.items())
            },
            "fleet": self.fleet_snapshot(),
            "gauge_stats": self.gauge_stats(),
        }

    # -- exporters -----------------------------------------------------
    def to_prometheus(self, now: float | None = None) -> str:
        """The fleet snapshot in Prometheus text exposition format.

        The fold of member snapshots is rendered unlabelled (counters
        summed across the fleet, gauges last-write-wins); fleet spread
        and per-member liveness ride along as extra gauge families:
        ``repro_fleet_gauge_{min,max,q50,q90}`` labelled by metric name
        and ``repro_fleet_member_staleness_seconds`` labelled by member.
        """
        now = time.time() if now is None else now
        extra = {
            "fleet/members": [({}, float(len(self.members)))],
        }
        stats = self.gauge_stats()
        for stat in ("min", "max", "q50", "q90"):
            samples = [({"metric": name}, cells[stat])
                       for name, cells in sorted(stats.items())
                       if not math.isnan(cells[stat])]
            if samples:
                extra[f"fleet/gauge_{stat}"] = samples
        stale = self.staleness(now)
        if stale:
            extra["fleet/member_staleness_seconds"] = [
                ({"member": mid}, s) for mid, s in sorted(stale.items())]
        states = {}
        for cell in self.members.values():
            states[cell["state"]] = states.get(cell["state"], 0) + 1
        if states:
            extra["fleet/members_by_state"] = [
                ({"state": st}, float(n)) for st, n in sorted(states.items())]
        return to_prometheus(self.fleet_snapshot(), extra=extra)

    def export(self, out_dir: str | None = None,
               now: float | None = None) -> dict:
        """Write ``fleet.prom`` + ``fleet.jsonl`` atomically under
        ``out_dir`` (default: the constructor's); returns the aggregate.

        The JSONL file carries the full (bounded) aggregate history so a
        consumer can see trends; both files are replaced atomically so a
        concurrent scrape/tail never reads a torn document.
        """
        out_dir = out_dir if out_dir is not None else self.out_dir
        if out_dir is None:
            raise ValueError("FleetAggregator.export needs an out_dir")
        agg = self.aggregate(now)
        self._history.append(agg)
        del self._history[:-_HISTORY_MAX]
        _atomic_write(os.path.join(out_dir, FLEET_PROM),
                      self.to_prometheus(now))
        _atomic_write(
            os.path.join(out_dir, FLEET_JSONL),
            "".join(json.dumps(rec) + "\n" for rec in self._history),
        )
        return agg


# ----------------------------------------------------------------------
# offline status view: everything below reads artifacts, not processes
def read_jsonl_tolerant(path: str) -> list[dict]:
    """Best-effort JSONL reader: skips torn/garbled lines, returns dicts.

    The status view must render *while* workers are writing (or after
    they were SIGKILLed mid-record), so unreadable lines are data loss we
    tolerate, never an exception.
    """
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if isinstance(rec, dict):
                    records.append(rec)
    except OSError:
        pass
    return records


def _member_dirs(run_dir: str) -> list[str]:
    """Member ids under an ensemble out-dir (subdirs holding a run log)."""
    try:
        entries = sorted(os.listdir(run_dir))
    except OSError:
        return []
    return [e for e in entries
            if os.path.isfile(os.path.join(run_dir, e, "run.jsonl"))]


def _last(records: list[dict], event: str) -> dict | None:
    for rec in reversed(records):
        if rec.get("event") == event:
            return rec
    return None


def status_rows(run_dir: str, now: float | None = None) -> list[dict]:
    """One status dict per member of the ensemble under ``run_dir``.

    Sources, in increasing authority: the member's own ``run.jsonl``
    (heartbeats + metrics records), the supervisor's ``ensemble.jsonl``
    (starts/retries/quarantines), and the final ``ensemble.json`` result
    (terminal states).  Works mid-run and post-mortem alike.
    """
    now = time.time() if now is None else now
    sup = read_jsonl_tolerant(os.path.join(run_dir, "ensemble.jsonl"))
    final: dict[str, str] = {}
    try:
        with open(os.path.join(run_dir, "ensemble.json"),
                  encoding="utf-8") as fh:
            doc = json.load(fh)
        for mem in doc.get("members", []):
            if isinstance(mem, dict) and mem.get("member_id"):
                final[mem["member_id"]] = mem.get("status", "unknown")
    except (OSError, ValueError):
        pass

    member_ids = _member_dirs(run_dir)
    for rec in sup:  # members that never produced a run log still show up
        mid = rec.get("member")
        if isinstance(mid, str) and mid not in member_ids:
            member_ids.append(mid)

    rows = []
    for mid in member_ids:
        records = read_jsonl_tolerant(os.path.join(run_dir, mid, "run.jsonl"))
        beats = [r for r in records if r.get("event") == "heartbeat"]
        metrics = [r for r in records if r.get("event") == "metrics"]
        sup_mine = [r for r in sup if r.get("member") == mid]
        retries = sum(1 for r in sup_mine if r.get("event") == "member_retry")

        state = final.get(mid)
        if state is None:
            ended = _last(sup_mine, "member_end")
            if ended is not None:
                state = ended.get("status", "unknown")
            elif _last(sup_mine, "member_quarantined") is not None:
                state = "quarantined"
            elif _last(sup_mine, "member_start") is not None:
                state = "retrying" if (sup_mine and sup_mine[-1].get("event")
                                       == "member_retry") else "running"
            else:
                state = "running" if beats else "unknown"

        last_beat = beats[-1] if beats else None
        last_met = metrics[-1] if metrics else None
        gauges = ((last_met or {}).get("metrics") or {}).get("gauges", {})

        def gauge(name, default=None):
            cell = gauges.get(name)
            return cell.get("value") if isinstance(cell, dict) else default

        step = gauge("sched/steps_total")
        if step is None and last_beat is not None:
            step = last_beat.get("step")
        sim_t = gauge("sched/sim_time")
        if sim_t is None and last_beat is not None:
            sim_t = last_beat.get("sim_t")
        rate = gauge("sched/wall_rate")
        if rate is None and last_beat is not None:
            rate = last_beat.get("wall_rate")
        drift = gauge("health/energy_drift_ratio")

        walls = [r.get("wall") for r in (records + sup_mine)
                 if isinstance(r.get("wall"), (int, float))]
        stale = (now - max(walls)) if walls else None
        rows.append({
            "member": mid,
            "state": state,
            "step": step,
            "sim_t": sim_t,
            "wall_rate": rate,
            "energy_drift": drift,
            "retries": retries,
            "stale_s": stale,
            "heartbeats": len(beats),
            "metrics_records": len(metrics),
            "verdict": _member_verdict(run_dir, mid, sup_mine),
        })
    return rows


def _member_verdict(run_dir: str, mid: str, sup_mine: list) -> str | None:
    """Black-box classifier verdict of the member's newest bundle.

    The supervisor's quarantine event carries the authoritative verdict;
    otherwise (mid-run, or a supervisor log that predates schema v3) the
    newest ``*.blackbox.json`` in the member dir is classified directly.
    ``None`` when the member never dumped a bundle.
    """
    quarantined = _last(sup_mine, "member_quarantined")
    if quarantined is not None and isinstance(quarantined.get("verdict"),
                                              str):
        return quarantined["verdict"]
    from .blackbox import classify_bundle, load_bundle, newest_bundle

    path = newest_bundle(os.path.join(run_dir, mid))
    if path is None:
        return None
    try:
        return classify_bundle(load_bundle(path))["verdict"]
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _cell(value, fmt: str, missing: str = "-") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return missing
    try:
        return format(value, fmt)
    except (TypeError, ValueError):
        return str(value)


def status_lines(run_dir: str, now: float | None = None) -> list[str]:
    """Render the ``obs-status`` table for one ensemble run directory."""
    now = time.time() if now is None else now
    rows = status_rows(run_dir, now=now)
    header = (f"  {'member':16} {'state':12} {'step':>8} {'sim_t':>10} "
              f"{'steps/s':>8} {'e-drift':>9} {'retries':>7} {'stale':>7} "
              f"{'verdict':13}")
    lines = [f"== fleet status: {run_dir} ==", header,
             "  " + "-" * (len(header) - 2)]
    if not rows:
        lines.append("  (no members found — is this an ensemble out-dir?)")
        return lines
    for row in rows:
        lines.append(
            f"  {row['member'][:16]:16} {row['state'][:12]:12} "
            f"{_cell(row['step'], '>8.0f'):>8} "
            f"{_cell(row['sim_t'], '>10.4g'):>10} "
            f"{_cell(row['wall_rate'], '>8.2f'):>8} "
            f"{_cell(row['energy_drift'], '>9.2e'):>9} "
            f"{row['retries']:>7} "
            f"{_cell(row['stale_s'], '>6.1f') + 's' if row['stale_s'] is not None else '-':>7} "
            f"{(row.get('verdict') or '-')[:13]:13}"
        )
    states: dict[str, int] = {}
    for row in rows:
        states[row["state"]] = states.get(row["state"], 0) + 1
    summary = ", ".join(f"{n} {st}" for st, n in sorted(states.items()))
    lines.append(f"  {len(rows)} member(s): {summary}")
    prom = os.path.join(run_dir, FLEET_PROM)
    try:
        has_prom = os.path.isfile(prom)
    except OSError:
        has_prom = False
    if has_prom:
        lines.append(f"  exporters: {prom} "
                     f"+ {os.path.join(run_dir, FLEET_JSONL)}")
    return lines


def watch_status(run_dir: str, interval: float | None = None,
                 iterations: int | None = None, stream=None) -> int:
    """``obs-status`` driver: render once, or every ``interval`` seconds.

    Watch mode must behave like ``tail -f`` on a live run: Ctrl-C at any
    point (mid-render included) exits cleanly with status 0, and a run
    dir or exporter file disappearing between renders — members being
    cleaned up, an NFS blip — shows up as a placeholder row on the next
    render instead of a traceback.  ``iterations`` bounds the number of
    renders (for tests).
    """
    out = stream if stream is not None else sys.stdout
    n = 0
    try:
        while True:
            try:
                lines = status_lines(run_dir)
            except OSError as exc:  # defense in depth: stay watching
                lines = [f"== fleet status: {run_dir} ==",
                         f"  (status unavailable: {exc})"]
            for line in lines:
                print(line, file=out)
            n += 1
            if interval is None or (iterations is not None
                                    and n >= iterations):
                return 0
            time.sleep(max(interval, 0.1))
            print(file=out)
    except KeyboardInterrupt:
        print(file=out)
        return 0
