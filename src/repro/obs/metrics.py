"""Typed fleet metrics: counters, gauges, histograms, ring-buffer series.

The ensemble driver of :mod:`repro.ensemble` turns the repo into a
many-process service, and a service needs *service* metrics: not the
per-phase wall-time accounting of :mod:`repro.obs.telemetry` (which
answers "where did this run spend its time"), but the operator questions
— how far along is every member, how fast is the fleet advancing, is any
run drifting toward divergence.  This module is the measurement
substrate for that layer:

* :class:`MetricRegistry` — one process-wide registry of **typed**
  metrics, mutated through three guarded entry points:
  ``inc(name)`` (monotonic :class:`Counter`), ``set_gauge(name, v)``
  (:class:`Gauge`, last-write-wins with a wall timestamp), and
  ``observe(name, v)`` (:class:`Histogram` with fixed log-spaced
  buckets).  Every metric additionally keeps a bounded ring-buffer
  :class:`TimeSeries` of recent samples so a consumer can see the recent
  trend, not just the current value.
* **Guard discipline**: like ``Telemetry``, the registry is default-off
  and the disabled path is one attribute check and a return — the
  instrumented sites in the scheduler, watchdog and caches stay inside
  the existing <2% disabled-overhead budget (locked by the
  ``metrics_overhead`` bench kernel and a test-suite guard).
* :func:`merge_snapshots` — an **associative** fold of two snapshots
  (counters sum, gauges keep the newest sample, histograms add
  bucket-wise, series take the multiset union trimmed to capacity), so
  the supervisor's :class:`~repro.obs.fleet.FleetAggregator` can fold
  member snapshots in any grouping and get the same fleet totals
  (property-tested with hypothesis).
* Prometheus **text exposition**: :func:`to_prometheus` renders a
  snapshot in the textfile-collector format (``# TYPE`` headers,
  cumulative ``_bucket{le=...}`` histograms, optional constant labels)
  and :func:`validate_prometheus` is the strict line-format checker CI
  runs against every exported ``.prom`` file.

Metric *names* are free-form paths (``lts/updates/c0``); the exporter
sanitizes them to the Prometheus grammar.  The wire snapshot is
schema-versioned (:data:`METRICS_SCHEMA_VERSION`) because it crosses
process boundaries: ensemble workers piggyback :meth:`compact` snapshots
on heartbeat queue messages and append them to durable run logs as
``metrics`` records.
"""

from __future__ import annotations

import math
import re
import threading
import time

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "DEFAULT_SERIES_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricRegistry",
    "get_metrics",
    "default_log_buckets",
    "merge_snapshots",
    "to_prometheus",
    "validate_prometheus",
]

#: bumped whenever the snapshot layout changes (snapshots cross process
#: boundaries: heartbeat queues, durable run logs, fleet aggregates)
METRICS_SCHEMA_VERSION = 1

#: ring-buffer samples kept per metric (the recent trend, not the history)
DEFAULT_SERIES_CAPACITY = 256


def default_log_buckets(lo: float = 1e-6, hi: float = 1e6) -> tuple:
    """Fixed log-spaced histogram bucket upper bounds, one per decade.

    Spanning 1e-6..1e6 covers every quantity the producers observe —
    step wall times, checkpoint sizes in MB, wall rates — without
    per-metric tuning; values above ``hi`` land in the implicit +Inf
    overflow bucket.
    """
    n = int(round(math.log10(hi / lo)))
    return tuple(lo * 10.0**k for k in range(n + 1))


class TimeSeries:
    """Bounded ring buffer of ``(wall_time, value)`` samples.

    Appends past capacity overwrite the oldest sample (and are counted
    in ``dropped``) — a long-running member must never grow its metric
    memory without bound.  Not locked: the owning registry serializes
    access.
    """

    __slots__ = ("capacity", "dropped", "_t", "_v", "_head", "_n")

    def __init__(self, capacity: int = DEFAULT_SERIES_CAPACITY):
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        self.capacity = int(capacity)
        self.dropped = 0
        self._t: list[float] = []
        self._v: list[float] = []
        self._head = 0  # index of the oldest sample once the ring is full
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append(self, t: float, v: float) -> None:
        if self._n < self.capacity:
            self._t.append(t)
            self._v.append(v)
            self._n += 1
        else:
            self._t[self._head] = t
            self._v[self._head] = v
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def samples(self) -> tuple[list[float], list[float]]:
        """``(times, values)`` in append order, oldest first."""
        if self._n < self.capacity:
            return list(self._t), list(self._v)
        idx = list(range(self._head, self.capacity)) + list(range(self._head))
        return [self._t[i] for i in idx], [self._v[i] for i in idx]


class Counter:
    """Monotonic counter with a sample series of its cumulative value."""

    __slots__ = ("value", "series")
    kind = "counter"

    def __init__(self, series_capacity: int = DEFAULT_SERIES_CAPACITY):
        self.value = 0
        self.series = TimeSeries(series_capacity)

    def inc(self, n: int, t: float) -> None:
        if n < 0:
            raise ValueError("counters are monotonic; inc() needs n >= 0")
        self.value += n
        self.series.append(t, float(self.value))


class Gauge:
    """Last-write-wins sampled value with its wall timestamp."""

    __slots__ = ("value", "t", "series")
    kind = "gauge"

    def __init__(self, series_capacity: int = DEFAULT_SERIES_CAPACITY):
        self.value = 0.0
        self.t = 0.0
        self.series = TimeSeries(series_capacity)

    def set(self, v: float, t: float) -> None:
        self.value = float(v)
        self.t = t
        self.series.append(t, float(v))


class Histogram:
    """Fixed-bucket histogram (non-cumulative counts + sum + count).

    ``bounds`` are the upper edges of the finite buckets; one implicit
    overflow bucket catches everything above ``bounds[-1]`` (so
    ``len(counts) == len(bounds) + 1``).  The exporter renders the
    cumulative ``le=`` form Prometheus prescribes.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "series")
    kind = "histogram"

    def __init__(self, bounds=None,
                 series_capacity: int = DEFAULT_SERIES_CAPACITY):
        bounds = default_log_buckets() if bounds is None else tuple(bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be non-empty and increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.series = TimeSeries(series_capacity)

    def observe(self, v: float, t: float) -> None:
        v = float(v)
        i = 0
        for i, b in enumerate(self.bounds):  # noqa: B007 - i survives the loop
            if v <= b:
                break
        else:
            i = len(self.bounds)
        self.counts[i] += 1
        self.sum += v
        self.count += 1
        self.series.append(t, v)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricRegistry:
    """Process-wide typed metric registry (default off, thread-safe).

    The mutation entry points (:meth:`inc` / :meth:`set_gauge` /
    :meth:`observe`) create the metric on first use and pin its type —
    re-using a name with a different type is a programming error and
    raises.  All mutation is lock-protected; the disabled path touches
    no lock.
    """

    def __init__(self, series_capacity: int = DEFAULT_SERIES_CAPACITY):
        self.enabled = False
        self.series_capacity = int(series_capacity)
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric (the enabled flag is unchanged)."""
        with self._lock:
            self._metrics.clear()

    # -- recording ------------------------------------------------------
    def _get(self, name: str, kind: str, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = _KINDS[kind](series_capacity=self.series_capacity, **kwargs) \
                if kwargs else _KINDS[kind](series_capacity=self.series_capacity)
            self._metrics[name] = m
        elif m.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {m.kind}, not a {kind} "
                "(names pin their type on first use)"
            )
        return m

    def inc(self, name: str, n: int = 1) -> None:
        """Increment the monotonic counter ``name`` by ``n`` (>= 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._get(name, "counter").inc(int(n), time.time())

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (timestamped now)."""
        if not self.enabled:
            return
        with self._lock:
            self._get(name, "gauge").set(value, time.time())

    def observe(self, name: str, value: float, bounds=None) -> None:
        """Record ``value`` into the histogram ``name``.

        ``bounds`` fixes the bucket edges on first use (default: the
        log-spaced decades of :func:`default_log_buckets`).
        """
        if not self.enabled:
            return
        with self._lock:
            if bounds is not None and name not in self._metrics:
                self._metrics[name] = Histogram(
                    bounds, series_capacity=self.series_capacity)
            self._get(name, "histogram").observe(value, time.time())

    # -- reading --------------------------------------------------------
    def value(self, name: str):
        """Current value of a counter/gauge (``None`` if absent)."""
        with self._lock:
            m = self._metrics.get(name)
            return None if m is None or m.kind == "histogram" else m.value

    def snapshot(self, series: bool = True) -> dict:
        """Consistent, JSON-able copy of every metric.

        ``series=False`` omits the ring buffers — the compact wire form
        workers piggyback on heartbeat messages.
        """
        with self._lock:
            out: dict = {
                "schema": METRICS_SCHEMA_VERSION,
                "counters": {},
                "gauges": {},
                "histograms": {},
            }
            if series:
                out["series"] = {}
            for name in sorted(self._metrics):
                m = self._metrics[name]
                if m.kind == "counter":
                    out["counters"][name] = int(m.value)
                elif m.kind == "gauge":
                    out["gauges"][name] = {"value": m.value, "t": m.t}
                else:
                    out["histograms"][name] = {
                        "bounds": list(m.bounds),
                        "counts": list(m.counts),
                        "sum": m.sum,
                        "count": int(m.count),
                    }
                if series:
                    t, v = m.series.samples()
                    out["series"][name] = {
                        "kind": m.kind, "t": t, "v": v,
                        "dropped": int(m.series.dropped),
                        "capacity": int(m.series.capacity),
                    }
            return out

    def compact(self) -> dict:
        """Alias for ``snapshot(series=False)`` — the heartbeat payload."""
        return self.snapshot(series=False)


_METRICS = MetricRegistry()


def get_metrics() -> MetricRegistry:
    """The process-wide metric registry."""
    return _METRICS


# ----------------------------------------------------------------------
def merge_snapshots(a: dict | None, b: dict | None) -> dict:
    """Associative fold of two snapshots into one.

    * counters: sum;
    * gauges: the sample with the lexicographically larger ``(t, value)``
      wins (pure max, so any fold order agrees);
    * histograms: bucket-wise sum (bounds must match — they are fixed by
      :func:`default_log_buckets` or the producer, and folding disjoint
      bucketings has no meaning);
    * series: multiset union of samples sorted by ``(t, v)``, trimmed to
      the larger capacity keeping the newest — a function of the sample
      multiset only, hence associative.

    ``None`` operands act as the identity, so a fold over an empty
    member list yields the empty snapshot.
    """
    if a is None and b is None:
        return {"schema": METRICS_SCHEMA_VERSION, "counters": {},
                "gauges": {}, "histograms": {}}
    if a is None:
        a, b = b, None
    out = {
        "schema": METRICS_SCHEMA_VERSION,
        "counters": dict(a.get("counters", {})),
        "gauges": {k: dict(v) for k, v in a.get("gauges", {}).items()},
        "histograms": {k: dict(v) for k, v in a.get("histograms", {}).items()},
    }
    if "series" in a:
        out["series"] = {k: dict(v) for k, v in a["series"].items()}
    if b is None:
        return out
    for name, v in b.get("counters", {}).items():
        out["counters"][name] = out["counters"].get(name, 0) + int(v)
    for name, g in b.get("gauges", {}).items():
        cur = out["gauges"].get(name)
        if cur is None or (g.get("t", 0.0), g.get("value", 0.0)) > (
                cur.get("t", 0.0), cur.get("value", 0.0)):
            out["gauges"][name] = dict(g)
    for name, h in b.get("histograms", {}).items():
        cur = out["histograms"].get(name)
        if cur is None:
            out["histograms"][name] = dict(h)
            continue
        if list(cur["bounds"]) != list(h["bounds"]):
            raise ValueError(
                f"histogram {name!r}: cannot merge differing bucket bounds"
            )
        out["histograms"][name] = {
            "bounds": list(cur["bounds"]),
            "counts": [x + y for x, y in zip(cur["counts"], h["counts"])],
            "sum": cur["sum"] + h["sum"],
            "count": int(cur["count"]) + int(h["count"]),
        }
    if "series" in b:
        out.setdefault("series", {})
        for name, s in b["series"].items():
            cur = out["series"].get(name)
            if cur is None:
                out["series"][name] = dict(s)
                continue
            cap = max(int(cur.get("capacity", DEFAULT_SERIES_CAPACITY)),
                      int(s.get("capacity", DEFAULT_SERIES_CAPACITY)))
            merged = sorted(
                list(zip(cur["t"], cur["v"])) + list(zip(s["t"], s["v"]))
            )[-cap:]
            out["series"][name] = {
                "kind": s.get("kind", cur.get("kind")),
                "t": [t for t, _ in merged],
                "v": [v for _, v in merged],
                "dropped": int(cur.get("dropped", 0)) + int(s.get("dropped", 0)),
                "capacity": cap,
            }
    return out


# ----------------------------------------------------------------------
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a free-form metric path to the Prometheus name grammar."""
    name = _NAME_SANITIZE.sub("_", name)
    if prefix:
        name = f"{prefix}_{name}"
    if not re.match(r"[a-zA-Z_:]", name[0]):
        name = "_" + name
    return name


def _fmt(v: float) -> str:
    if isinstance(v, float) and math.isnan(v):
        return "NaN"
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    return repr(float(v)) if isinstance(v, float) else str(int(v))


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="' + str(v).replace("\\", r"\\").replace('"', r"\"")
        .replace("\n", r"\n") + '"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def to_prometheus(snapshot: dict, prefix: str = "repro",
                  labels: dict | None = None,
                  extra: dict | None = None) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    ``labels`` are constant labels stamped on every sample (the fleet
    exporter uses ``{member="..."}``); ``extra`` maps metric name ->
    ``{labelset_tuple: value}`` gauge samples appended verbatim by the
    aggregator (fleet min/max/quantile series).  Ends with a newline, as
    the textfile collector requires.
    """
    lines: list[str] = []

    def emit(name, kind, samples):
        lines.append(f"# TYPE {name} {kind}")
        for suffix, lab, value in samples:
            lines.append(f"{name}{suffix}{_labels(lab)} {_fmt(value)}")

    for name, value in snapshot.get("counters", {}).items():
        pname = prom_name(name, prefix)
        if not pname.endswith("_total"):
            pname += "_total"
        emit(pname, "counter", [("", labels, value)])
    for name, g in snapshot.get("gauges", {}).items():
        emit(prom_name(name, prefix), "gauge", [("", labels, g["value"])])
    for name, h in snapshot.get("histograms", {}).items():
        pname = prom_name(name, prefix)
        lines.append(f"# TYPE {pname} histogram")
        cum = 0
        for bound, count in zip(list(h["bounds"]) + [math.inf],
                                h["counts"]):
            cum += int(count)
            le = "+Inf" if bound == math.inf else _fmt(float(bound))
            lab = dict(labels or {})
            lab["le"] = le
            lines.append(f"{pname}_bucket{_labels(lab)} {cum}")
        lines.append(f"{pname}_sum{_labels(labels)} {_fmt(float(h['sum']))}")
        lines.append(f"{pname}_count{_labels(labels)} {int(h['count'])}")
    for name, series in (extra or {}).items():
        pname = prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        for lab, value in series:
            lines.append(f"{pname}{_labels(lab)} {_fmt(float(value))}")
    return "\n".join(lines) + "\n"


# -- strict text-format checker ----------------------------------------
_METRIC_NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_RE = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME_RE})"
    rf"(?:\{{({_LABEL_RE}(?:,{_LABEL_RE})*)?,?\}})?"
    r" (-?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|[-+]?Inf|NaN)"
    r"( [0-9]+)?$"
)
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME_RE}) (counter|gauge|histogram|summary|untyped)$"
)
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME_RE}) .*$")

_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _family(name: str, types: dict) -> str:
    """Strip histogram/summary suffixes down to the declared family name."""
    for suffix in _HIST_SUFFIXES:
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) in ("histogram", "summary"):
            return base
    return name


def validate_prometheus(text: str) -> list[str]:
    """Schema errors of a Prometheus text-format document (empty = valid).

    Strict about everything a textfile collector is strict about: line
    grammar, label syntax, one ``# TYPE`` per family declared before its
    samples, histogram families complete (``_bucket``/``_sum``/
    ``_count``) with cumulative bucket counts ending in an ``le="+Inf"``
    bucket equal to ``_count``, and a trailing newline.
    """
    errors: list[str] = []
    if text and not text.endswith("\n"):
        errors.append("document does not end with a newline")
    types: dict[str, str] = {}
    seen_samples: set[str] = set()
    hist: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _TYPE_RE.match(line)
            if m:
                name, kind = m.groups()
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if name in seen_samples:
                    errors.append(
                        f"line {lineno}: TYPE for {name} after its samples")
                types[name] = kind
                continue
            if _HELP_RE.match(line) or line.startswith("# "):
                continue
            errors.append(f"line {lineno}: malformed comment {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample line {line!r}")
            continue
        name, labelstr, value_s, _ts = m.groups()
        family = _family(name, types)
        seen_samples.add(family)
        if family not in types:
            errors.append(
                f"line {lineno}: sample {name} has no preceding # TYPE")
            continue
        if types[family] == "histogram":
            slot = hist.setdefault(family, {"buckets": [], "sum": None,
                                            "count": None, "line": lineno})
            labels = dict(
                part.split("=", 1) for part in (labelstr or "").split(",")
                if "=" in part
            )
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: _bucket sample without le=")
                else:
                    slot["buckets"].append((le.strip('"'), float(value_s)))
            elif name.endswith("_sum"):
                slot["sum"] = float(value_s)
            elif name.endswith("_count"):
                slot["count"] = float(value_s)
            else:
                errors.append(
                    f"line {lineno}: histogram family {family} sample {name} "
                    "is not _bucket/_sum/_count")
        elif types[family] == "counter":
            if float(value_s) < 0 and value_s not in ("-Inf",):
                errors.append(f"line {lineno}: counter {name} is negative")
    for family, slot in hist.items():
        buckets = slot["buckets"]
        if not buckets or buckets[-1][0] != "+Inf":
            errors.append(f"histogram {family}: buckets must end with le=\"+Inf\"")
        counts = [c for _, c in buckets]
        if any(b < a for a, b in zip(counts, counts[1:])):
            errors.append(f"histogram {family}: bucket counts not cumulative")
        if slot["count"] is None or slot["sum"] is None:
            errors.append(f"histogram {family}: missing _sum or _count")
        elif buckets and buckets[-1][1] != slot["count"]:
            errors.append(
                f"histogram {family}: le=\"+Inf\" bucket ({buckets[-1][1]:g}) "
                f"!= _count ({slot['count']:g})")
    return errors
