"""Standardized kernel benchmark battery + performance-trajectory records.

The continuous-regression half of the observability layer: a fixed
battery of micro-benchmarks over the solver's hot kernels —

* ``predictor`` — the Cauchy-Kowalewski sweep (``ck_derivatives``) over
  every element;
* ``corrector`` — the volume + interior-surface + boundary-surface
  residual kernels on a time-integrated predictor state;
* ``riemann_setup`` — the batched Godunov flux-matrix construction
  (:meth:`~repro.core.kernels.SpatialOperator.face_flux_matrices`) over
  all regular interior faces;
* ``gravity_ode`` — one gravitational free-surface ODE step over the
  tagged surface faces;
* ``halo_gather`` — the fancy-index halo exchange of a two-partition
  plan (the copy that would be the MPI message in a distributed run);
* ``sched_replay`` — the :mod:`repro.sched` step-plan machinery alone:
  replay-decode of a compiled 16-macro-step plan (the scheduler's
  per-micro-step overhead with the physics kernels removed), with the
  one-off plan compile cost recorded alongside;
* ``lts_macro`` — one full clustered-LTS macro step (every cluster
  advanced to the next synchronization point);
* ``metrics_overhead`` — the *disabled* fast path of the fleet-metric
  registry (:mod:`repro.obs.metrics`): per-call cost of guarded
  ``inc``/``set_gauge``/``observe`` with the registry off, which locks
  the <2% per-step instrumentation budget.

Each invocation appends one schema-versioned record to
``BENCH_<host-context>.json`` at the repo root — git revision, problem
fingerprint, per-kernel best-of-``repeats`` seconds and element-update
rates, and the :mod:`repro.hpc.perfmodel` roofline bounds for the two
modeled kernels.  ``tools/bench_compare.py`` diffs the newest record
against the history and the roofline and flags >25% regressions.

The battery problem is a scaled-down replica of the benchmark suite's
``_cache.scaling_mesh`` construction (bathymetry mesh with a refinement
window, so the LTS clustering is non-trivial); ``REPRO_FAST=1`` shrinks
it further for CI.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time

import numpy as np

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BATTERY_KERNELS",
    "host_context",
    "default_history_path",
    "battery_problem",
    "run_battery",
    "battery_lines",
    "load_history",
    "append_record",
]

BENCH_SCHEMA_VERSION = 1

#: the fixed battery, in execution order (``lts_macro`` mutates the
#: solver state and therefore always runs last among the solver kernels)
BATTERY_KERNELS = ("predictor", "corrector", "riemann_setup",
                   "gravity_ode", "halo_gather", "sched_replay", "lts_macro",
                   "metrics_overhead", "blackbox_overhead")


def host_context() -> str:
    """Stable host tag for the history filename (``linux-x86_64``).

    Deliberately *not* the hostname: CI runners are ephemeral and
    interchangeable, and a hostname in a committed filename would leak
    infrastructure details.  Records within one file are further keyed by
    ``cpu_count`` / ``fast`` / ``order`` for comparability.
    """
    return f"{platform.system().lower()}-{platform.machine().lower()}"


def default_history_path(root: str | None = None) -> str:
    """``BENCH_<host-context>.json`` at the repo root (or ``root``)."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))))
        if not os.path.isdir(root):  # pragma: no cover - installed layout
            root = os.getcwd()
    return os.path.join(root, f"BENCH_{host_context()}.json")


def _fast() -> bool:
    return os.environ.get("REPRO_FAST", "0") == "1"


# ----------------------------------------------------------------------
def battery_problem(order: int = 3, fast: bool | None = None,
                    kernel_variant: str | None = None):
    """Build the battery's coupled solver: a miniature of the benchmark
    suite's ``scaling_mesh`` (bathymetry trough + refinement window over a
    layered Earth, gravitational free surface tagged), sized so the full
    battery completes in seconds.  Returns the bound
    :class:`~repro.core.solver.CoupledSolver`.
    """
    from ..core.materials import acoustic, elastic
    from ..core.solver import CoupledSolver, ocean_surface_gravity_tagger
    from ..mesh.generators import bathymetry_mesh
    from ..mesh.refine import refined_spacing

    fast = _fast() if fast is None else fast
    earth = elastic(2700.0, 6000.0, 3464.0)
    ocean = acoustic(1000.0, 1500.0)

    def bathy(x, y):
        return -100.0 - 600.0 * np.exp(-(((x - 3e3) / 1e3) ** 2)) * (
            0.5 + 0.5 * np.tanh((y - 3e3) / 1.5e3)
        )

    h = 1500.0 if fast else 900.0
    xs = refined_spacing(0.0, 6e3, 3000.0, h, 1.5e3, 4.5e3)
    ys = refined_spacing(0.0, 9e3, 3000.0, h, 2e3, 7e3)
    zs = np.concatenate([
        np.linspace(-6e3, -2e3, 3),
        refined_spacing(-2e3, -700.0, 1500.0, h, -2e3, -700.0)[1:],
    ])
    mesh = bathymetry_mesh(xs, ys, bathy, 2, zs, earth, ocean)
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    return CoupledSolver(mesh, order=order, kernel_variant=kernel_variant)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
def run_battery(out: str | None = None, node: str = "local", order: int = 3,
                fast: bool | None = None, repeats: int = 3,
                append: bool = True, kernel_variant: str | None = None):
    """Run the battery and (by default) append the record to the history.

    Returns ``(record, path)``; ``path`` is ``None`` when ``append`` is
    false.  ``node`` names the :data:`~repro.obs.report.KNOWN_NODES`
    roofline model used for the predicted bounds (default ``local``: a
    nominal model of the executing host, so "efficiency" is honest about
    a pure-NumPy reproduction).  ``kernel_variant`` selects the kernel
    execution path (default: the library default); the resolved variant
    is stored in the record and keys comparability in
    ``tools/bench_compare.py`` — FLOP counts and roofline bounds are
    variant-aware, so rates across variants are never diffed.
    """
    from ..core.ader import taylor_integrate
    from ..core.lts import LocalTimeStepping
    from ..exec.partitioned import PartitionedBackend
    from ..hpc.perfmodel import NodePerformanceModel, kernel_counts
    from ..io.checkpoint import fingerprint
    from ..kernels import resolve_kernel_variant
    from .report import node_spec
    from .runlog import _git_rev

    fast = _fast() if fast is None else fast
    resolved = resolve_kernel_variant(kernel_variant)
    solver = battery_problem(order=order, fast=fast, kernel_variant=resolved)
    op = solver.op
    ne = op.n_elements
    dt = solver.dt

    spec = node_spec(node)
    model = NodePerformanceModel(spec, order=order, variant=resolved)
    kc = kernel_counts(order, variant=resolved)

    benches: dict[str, dict] = {}

    def add(name, seconds, elem_updates=None, flops=None, model_gflops=None):
        cell: dict = {"seconds": seconds, "repeats": repeats}
        if elem_updates is not None:
            cell["elem_updates"] = int(elem_updates)
            cell["elem_updates_per_s"] = elem_updates / seconds
        if flops is not None and model_gflops is not None:
            cell["gflops"] = flops / seconds / 1e9
            cell["model_gflops"] = model_gflops
            cell["model_seconds"] = flops / (model_gflops * 1e9)
            cell["efficiency"] = cell["gflops"] / model_gflops
        benches[name] = cell

    # predictor: the CK sweep over every element (variant-dispatched).
    # The derivative buffer is reused across calls exactly as the step
    # loop reuses it (the batched variant ignores the hint).
    derivs = op.predict(solver.Q)  # warm caches + output shape
    add("predictor",
        _best_of(lambda: op.predict(solver.Q, out=derivs), repeats),
        elem_updates=ne, flops=kc.flops_predictor * ne,
        model_gflops=model.predictor_gflops())

    # corrector: volume + surface kernels on a time-integrated state
    I = taylor_integrate(derivs, 0.0, dt)
    out_state = op.new_state()

    def corrector():
        out_state[:] = 0.0
        op.volume_residual(I, out_state)
        op.interior_residual(I, out_state)
        op.boundary_residual(I, out_state)

    add("corrector", _best_of(corrector, repeats),
        elem_updates=ne, flops=kc.flops_corrector * ne,
        model_gflops=model.corrector_gflops())

    # riemann_setup: Godunov flux matrices for all regular interior faces
    itf = solver.mesh.interior
    ids = np.flatnonzero(~itf.is_fault)
    mat_ids = solver.mesh.material_ids
    em_mat = mat_ids[itf.minus_elem[ids]]
    ep_mat = mat_ids[itf.plus_elem[ids]]
    normals = itf.normal[ids]
    add("riemann_setup",
        _best_of(lambda: op.face_flux_matrices(em_mat, ep_mat, normals),
                 repeats))
    benches["riemann_setup"]["faces"] = int(len(ids))

    # gravity_ode: one free-surface ODE step over the tagged faces
    grav_out = op.new_state()
    add("gravity_ode",
        _best_of(lambda: solver.gravity.step(derivs, dt, grav_out), repeats))
    benches["gravity_ode"]["faces"] = int(len(solver.gravity.elem))

    # halo_gather: the two-partition halo exchange (fancy-index gather of
    # owned + halo predictor rows — the would-be MPI message)
    pb = PartitionedBackend(workers=1, n_parts=2)
    pb.bind(solver)
    gathered = sum(len(p.cells) for p in pb.plans)

    def halo_gather():
        for plan in pb.plans:
            I[plan.cells]

    add("halo_gather", _best_of(halo_gather, repeats),
        elem_updates=gathered)
    benches["halo_gather"]["halo"] = int(sum(p.n_halo for p in pb.plans))
    pb.close()

    lts = LocalTimeStepping(solver)

    # sched_replay: the step-plan machinery alone — decode every
    # micro-step of a compiled 16-macro-step plan (consume/clear walks,
    # no physics kernels), with the one-off compile cost alongside
    from ..sched import compile_step_plan

    n_macro_plan = 16
    plan = compile_step_plan(lts.n_clusters, lts.rate, n_macro_plan,
                             adjacency=lts.adjacent)
    compile_seconds = _best_of(
        lambda: compile_step_plan(lts.n_clusters, lts.rate, n_macro_plan,
                                  adjacency=lts.adjacent), repeats)

    def sched_replay():
        for i in range(plan.n_micro):
            for _action in plan.consumes(i):
                pass
            plan.clears(i)

    add("sched_replay", _best_of(sched_replay, repeats))
    benches["sched_replay"]["compile_seconds"] = compile_seconds
    benches["sched_replay"]["n_micro"] = int(plan.n_micro)
    benches["sched_replay"]["n_sync"] = int(plan.n_sync)
    benches["sched_replay"]["micro_steps_per_s"] = (
        plan.n_micro / benches["sched_replay"]["seconds"]
    )

    # lts_macro: one clustered macro step — mutates solver state, so it
    # runs last and is timed once per repeat on a fresh time window
    rate_c = lts.rate ** lts.cmax
    macro_updates = int(sum(
        int(n) * lts.rate ** (lts.cmax - c) for c, n in enumerate(lts.elem_count)
    ))
    dt_macro = lts.dt_min * rate_c

    def lts_macro():
        lts.run(solver.t + dt_macro)

    add("lts_macro", _best_of(lts_macro, repeats), elem_updates=macro_updates)
    benches["lts_macro"]["clusters"] = int(lts.n_clusters)

    # metrics_overhead: the disabled fast path of the fleet-metric
    # registry — the cost every *un*-instrumented run pays at the guard
    # sites wired into the scheduler/watchdog/caches.  Timed on a private
    # registry so an outer --metrics session can't flip the result.
    from .metrics import MetricRegistry

    met = MetricRegistry()
    n_calls = 3000

    def metrics_overhead():
        for _ in range(n_calls):
            if met.enabled:
                met.inc("bench/c")
            if met.enabled:
                met.set_gauge("bench/g", 1.0)
            if met.enabled:
                met.observe("bench/h", 1.0)

    seconds = _best_of(metrics_overhead, repeats)
    add("metrics_overhead", seconds)
    benches["metrics_overhead"]["calls"] = 3 * n_calls
    benches["metrics_overhead"]["seconds_per_call"] = seconds / (3 * n_calls)
    # fraction of one (fast-path) lts_macro a realistic ~40 guarded call
    # sites per step would cost — tools/bench_compare.py re-derives this
    per_step = benches["lts_macro"]["seconds"] / max(
        1, round(macro_updates / max(1, ne)))
    benches["metrics_overhead"]["step_fraction"] = (
        40 * benches["metrics_overhead"]["seconds_per_call"] / per_step)

    # blackbox_overhead: the always-on flight recorder's hot path — one
    # tuple append into a bounded deque per micro window and per watchdog
    # pass.  Timed on a private recorder; the same <2%-of-a-step budget
    # that gates metrics_overhead applies (tools/bench_compare.py).
    from .blackbox import FlightRecorder

    rec_bb = FlightRecorder()
    n_rec = 3000

    def blackbox_overhead():
        for i in range(n_rec):
            rec_bb.record_micro(i, 0, i, 1.0e-3)
            rec_bb.record_step(i, 1.0e-3 * i, 1.0e-3, energy=1.0,
                               dt_scale=1.0)

    seconds_bb = _best_of(blackbox_overhead, repeats)
    add("blackbox_overhead", seconds_bb)
    benches["blackbox_overhead"]["calls"] = 2 * n_rec
    benches["blackbox_overhead"]["seconds_per_call"] = seconds_bb / (2 * n_rec)
    # the recorder fires ~2 sites per step (micro window + post-watchdog
    # step gauge) — far fewer than the ~40 metric guard sites
    benches["blackbox_overhead"]["step_fraction"] = (
        2 * benches["blackbox_overhead"]["seconds_per_call"] / per_step)

    record = {
        "schema": BENCH_SCHEMA_VERSION,
        "unix_time": time.time(),
        "git_rev": _git_rev(),
        "fingerprint": fingerprint(solver),
        "host": {
            "context": host_context(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "node": getattr(spec, "name", str(node)),
        "order": int(order),
        "fast": bool(fast),
        "kernel_variant": resolved,
        "n_elements": int(ne),
        "benches": benches,
    }

    path = None
    if append:
        path = out or default_history_path()
        append_record(path, record)
    return record, path


# ----------------------------------------------------------------------
def battery_lines(record: dict) -> list[str]:
    """Human-readable summary of one battery record."""
    lines = [
        f"bench battery: {record['n_elements']} elements, order "
        f"{record['order']}, kernels={record.get('kernel_variant', 'batched')}, "
        f"fast={record['fast']}, git {record['git_rev'][:12]}",
        f"  {'kernel':14} {'seconds':>10} {'Melem-up/s':>11} "
        f"{'GFLOP/s':>9} {'model':>9} {'eff':>7}",
    ]
    for name in BATTERY_KERNELS:
        cell = record["benches"].get(name)
        if cell is None:
            continue
        rate = cell.get("elem_updates_per_s")
        rate_s = f"{rate / 1e6:11.3f}" if rate else f"{'-':>11}"
        gf = cell.get("gflops")
        gf_s = f"{gf:9.3f}" if gf else f"{'-':>9}"
        mg = cell.get("model_gflops")
        mg_s = f"{mg:9.1f}" if mg else f"{'-':>9}"
        eff = cell.get("efficiency")
        eff_s = f"{100 * eff:6.2f}%" if eff is not None else f"{'-':>7}"
        lines.append(f"  {name:14} {cell['seconds']:10.5f} {rate_s} "
                     f"{gf_s} {mg_s} {eff_s}")
    return lines


# ----------------------------------------------------------------------
def load_history(path: str) -> dict:
    """Load a ``BENCH_*.json`` history (empty shape when absent)."""
    if not os.path.exists(path):
        return {"schema": BENCH_SCHEMA_VERSION, "records": []}
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "records" not in doc:
        raise ValueError(f"{path}: not a bench history file")
    return doc


def append_record(path: str, record: dict) -> None:
    """Append one record to the history file, atomically."""
    doc = load_history(path)
    doc["schema"] = BENCH_SCHEMA_VERSION
    doc["records"].append(record)
    out_dir = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=out_dir,
                               prefix=f".{os.path.basename(path)}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
