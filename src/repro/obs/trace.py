"""Chrome-trace / Perfetto export and analysis of recorded span timelines.

The paper's Sec. 5-6 claims are *timeline* claims — when each LTS cluster
stepped, how much of every worker's wall clock was halo exchange, whether
communication overlapped compute — and aggregate timers cannot answer
them.  This module turns the bounded span buffer of
:class:`repro.obs.telemetry.TraceBuffer` into the Chrome trace-event JSON
format (the ``traceEvents`` array of ``"ph": "X"`` complete events), which
`Perfetto <https://ui.perfetto.dev>`_ and ``chrome://tracing`` load
directly:

* spans tagged with a ``part`` arg (the partitioned backend's per-worker
  halo-gather / compute / predict slices) are laid out **one lane per
  partition**, labelled ``worker p<N>``;
* LTS cluster slices (``lts/cluster`` spans) are colored by cluster id via
  the trace-event ``cname`` palette, so the rate-2 cadence — cluster 0
  stepping twice per cluster-1 step — is visible at a glance;
* all remaining spans land on one lane per recording thread.

:func:`summarize_trace` answers the offline questions (``python -m repro
obs-trace RUN.trace.json``): per-lane busy/idle fractions, a critical-path
estimate (longest chain of non-overlapping top-level spans — a proxy, as
the recorder does not capture inter-span dependencies), and the fraction
of halo-gather time during which another worker was computing (the
communication/compute-overlap currency of the paper's Fig. 6 discussion).
"""

from __future__ import annotations

import json
import os
import time

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "chrome_trace",
    "export_chrome_trace",
    "load_trace",
    "validate_chrome_trace",
    "merge_chrome_traces",
    "summarize_trace",
    "trace_summary_lines",
    "summarize_trace_file",
]

#: bumped when the exported document layout changes
TRACE_SCHEMA_VERSION = 1

#: reserved Chrome-trace color names cycled over LTS cluster ids
_CLUSTER_COLORS = (
    "thread_state_running",
    "rail_response",
    "rail_animation",
    "thread_state_runnable",
    "rail_idle",
    "rail_load",
    "thread_state_iowait",
    "cq_build_running",
)

#: tid blocks: worker lanes sit above thread lanes in the Perfetto UI
_WORKER_TID_BASE = 10_000
_PID = 0


def chrome_trace(trace_snapshot: dict, metadata: dict | None = None) -> dict:
    """Build the Chrome-trace document for one span-buffer snapshot.

    ``trace_snapshot`` is :meth:`Telemetry.trace_snapshot` output.  The
    earliest span start maps to ``ts = 0``; timestamps are microseconds
    (the unit the format prescribes).
    """
    spans = trace_snapshot.get("spans", [])
    threads = trace_snapshot.get("threads", {})
    t_base = min((s[1] for s in spans), default=0.0)

    # thread lanes in order of first appearance; workers get fixed tids
    thread_tids: dict[int, int] = {}
    worker_tids: dict[int, int] = {}
    events: list[dict] = []
    for name, t0, t1, tid, args in spans:
        if args is not None and "part" in args:
            part = int(args["part"])
            lane = worker_tids.setdefault(part, _WORKER_TID_BASE + part)
        else:
            lane = thread_tids.setdefault(tid, len(thread_tids))
        ev = {
            "name": name,
            "cat": name.split("/", 1)[0],
            "ph": "X",
            "ts": (t0 - t_base) * 1e6,
            "dur": max(t1 - t0, 0.0) * 1e6,
            "pid": _PID,
            "tid": lane,
        }
        if args:
            ev["args"] = dict(args)
            if "cluster" in args:
                ev["cname"] = _CLUSTER_COLORS[int(args["cluster"]) % len(_CLUSTER_COLORS)]
        events.append(ev)

    def _meta(tid, key, value):
        return {"ph": "M", "pid": _PID, "tid": tid, "name": key,
                "args": {"name": value} if key.endswith("_name")
                else {"sort_index": value}}

    lanes = [_meta(0, "process_name", "repro")]
    for part, lane in sorted(worker_tids.items()):
        lanes.append(_meta(lane, "thread_name", f"worker p{part}"))
        lanes.append(_meta(lane, "thread_sort_index", 1 + part))
    for tid, lane in thread_tids.items():
        label = threads.get(tid, f"thread-{tid}")
        lanes.append(_meta(lane, "thread_name", label))
        lanes.append(_meta(lane, "thread_sort_index", 100 + lane))

    doc = {
        "traceEvents": lanes + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA_VERSION,
            "spans": len(spans),
            "dropped": int(trace_snapshot.get("dropped", 0)),
            "capacity": int(trace_snapshot.get("capacity", 0)),
            # unix wall time of ts=0 — span clocks are perf_counter, which
            # is process-local; anchoring to wall time is what lets
            # merge_chrome_traces align traces from different processes
            # (only meaningful when exported by the recording process)
            "t0_unix": time.time() - (time.perf_counter() - t_base),
        },
    }
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def export_chrome_trace(path: str, trace_snapshot: dict | None = None,
                        metadata: dict | None = None) -> dict:
    """Write the Perfetto-loadable JSON for ``trace_snapshot`` (default:
    the global registry's buffer) to ``path``; returns the document."""
    if trace_snapshot is None:
        from .telemetry import get_telemetry

        trace_snapshot = get_telemetry().trace_snapshot()
    doc = chrome_trace(trace_snapshot, metadata)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


def load_trace(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
#: per-member trace filename inside an ensemble member directory
MEMBER_TRACE_NAME = "trace.json"


def merge_chrome_traces(run_dir: str, out_path: str | None = None) -> dict:
    """Merge per-member worker traces of an ensemble run into one timeline.

    Scans ``<run_dir>/<member>/trace.json`` (exported by workers running
    with tracing enabled), gives each member its **own process lane**
    (``pid`` 1..N, labelled with the member id via ``process_name``
    metadata), and aligns them on wall time using the ``t0_unix`` anchor
    each export records — so the merged Perfetto view shows what the
    fleet was actually doing concurrently, not N timelines all starting
    at zero.  Supervisor events from ``ensemble.jsonl`` (member starts,
    retries, quarantines) become instant markers (``"ph": "i"``) on a
    dedicated ``pid 0`` supervisor lane.  Writes the merged document to
    ``out_path`` when given; returns it either way.
    """
    members = []
    try:
        entries = sorted(os.listdir(run_dir))
    except OSError as exc:
        raise FileNotFoundError(f"not an ensemble run dir: {run_dir}") from exc
    for entry in entries:
        path = os.path.join(run_dir, entry, MEMBER_TRACE_NAME)
        if os.path.isfile(path):
            members.append((entry, load_trace(path)))
    if not members:
        raise FileNotFoundError(
            f"no member traces ({MEMBER_TRACE_NAME}) under {run_dir} — "
            "run the ensemble with tracing enabled (--trace)"
        )

    anchors = {mid: float(doc.get("otherData", {}).get("t0_unix", 0.0))
               for mid, doc in members}
    # align on the earliest member; members without an anchor start at 0
    known = [a for a in anchors.values() if a > 0.0]
    t0_global = min(known) if known else 0.0

    events: list[dict] = []
    events.append({"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                   "args": {"name": "supervisor"}})
    events.append({"ph": "M", "pid": 0, "tid": 0, "name": "process_sort_index",
                   "args": {"sort_index": 0}})
    spans_total = dropped_total = 0
    for k, (mid, doc) in enumerate(members, start=1):
        anchor = anchors[mid]
        shift_us = (anchor - t0_global) * 1e6 if anchor > 0.0 else 0.0
        events.append({"ph": "M", "pid": k, "tid": 0, "name": "process_name",
                       "args": {"name": f"member {mid}"}})
        events.append({"ph": "M", "pid": k, "tid": 0,
                       "name": "process_sort_index",
                       "args": {"sort_index": k}})
        other = doc.get("otherData", {})
        spans_total += int(other.get("spans", 0))
        dropped_total += int(other.get("dropped", 0))
        for ev in doc.get("traceEvents", []):
            if not isinstance(ev, dict):
                continue
            ev = dict(ev)
            if ev.get("name") == "process_name" and ev.get("ph") == "M":
                continue  # replaced by the member lane label above
            ev["pid"] = k
            if ev.get("ph") != "M":
                ev["ts"] = float(ev.get("ts", 0.0)) + shift_us
            events.append(ev)

    # supervisor instant markers from the ensemble run log (wall-clock
    # stamped, so they land between the member spans they interleave with)
    sup_log = os.path.join(run_dir, "ensemble.jsonl")
    sup_events = 0
    if os.path.isfile(sup_log):
        from .fleet import read_jsonl_tolerant

        for rec in read_jsonl_tolerant(sup_log):
            wall = rec.get("wall")
            if not isinstance(wall, (int, float)):
                continue
            ts = max(0.0, (wall - t0_global) * 1e6) if t0_global else 0.0
            name = rec.get("event", "event")
            if rec.get("member"):
                name = f"{name}:{rec['member']}"
            ev = {"name": name, "ph": "i", "ts": ts, "pid": 0, "tid": 0,
                  "s": "p", "cat": "supervisor"}
            args = {key: rec[key] for key in
                    ("member", "attempt", "reason", "status", "pid")
                    if key in rec}
            if args:
                ev["args"] = args
            events.append(ev)
            sup_events += 1

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA_VERSION,
            "merged": True,
            "members": [mid for mid, _ in members],
            "spans": spans_total,
            "dropped": dropped_total,
            "supervisor_events": sup_events,
            "t0_unix": t0_global,
        },
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
            fh.write("\n")
    return doc


# ----------------------------------------------------------------------
def validate_chrome_trace(doc) -> list[str]:
    """Schema errors of a Chrome-trace document (empty list = valid).

    Checks the invariants the tests (and any timeline consumer) rely on:
    every complete (``X``) event carries ``name``/``ts``/``dur``/``pid``/
    ``tid`` with non-negative times, and duration (``B``/``E``) events —
    which this exporter never emits but the format allows — are properly
    nested per lane with monotone timestamps.
    """
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document is not an object with a traceEvents array"]
    open_stacks: dict[tuple, list] = {}
    last_ts: dict[tuple, float] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue
        lane = (ev.get("pid"), ev.get("tid"))
        if ph == "i":
            # instant marker (the merged-timeline supervisor events)
            if "name" not in ev:
                errors.append(f"event {i}: i event missing 'name'")
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                errors.append(f"event {i}: i event missing numeric ts")
            elif ts < 0:
                errors.append(f"event {i}: negative ts {ts}")
        elif ph == "X":
            for field in ("name", "ts", "dur", "pid", "tid"):
                if field not in ev:
                    errors.append(f"event {i}: X event missing {field!r}")
            ts, dur = ev.get("ts"), ev.get("dur")
            if isinstance(ts, (int, float)) and ts < 0:
                errors.append(f"event {i}: negative ts {ts}")
            if isinstance(dur, (int, float)) and dur < 0:
                errors.append(f"event {i}: negative dur {dur}")
        elif ph in ("B", "E"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                errors.append(f"event {i}: {ph} event missing numeric ts")
                continue
            if ts < last_ts.get(lane, float("-inf")):
                errors.append(f"event {i}: non-monotone ts on lane {lane}")
            last_ts[lane] = ts
            stack = open_stacks.setdefault(lane, [])
            if ph == "B":
                stack.append(ev.get("name"))
            elif not stack:
                errors.append(f"event {i}: E event without matching B on lane {lane}")
            else:
                stack.pop()
        else:
            errors.append(f"event {i}: unknown phase {ph!r}")
    for lane, stack in open_stacks.items():
        if stack:
            errors.append(f"lane {lane}: {len(stack)} unclosed B event(s)")
    return errors


# ----------------------------------------------------------------------
def _merge_intervals(ivals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    if not ivals:
        return []
    ivals = sorted(ivals)
    out = [list(ivals[0])]
    for a, b in ivals[1:]:
        if a <= out[-1][1]:
            out[-1][1] = max(out[-1][1], b)
        else:
            out.append([a, b])
    return [(a, b) for a, b in out]


def _covered(ivals: list[tuple[float, float]]) -> float:
    return sum(b - a for a, b in _merge_intervals(ivals))


def _top_level(spans: list[tuple[float, float, str]]) -> list[tuple[float, float, str]]:
    """Spans of one lane not nested inside an earlier span of that lane."""
    top, enclosing_end = [], float("-inf")
    for t0, t1, name in sorted(spans):
        if t1 <= enclosing_end:
            continue  # fully nested (phase hierarchy)
        top.append((t0, t1, name))
        enclosing_end = max(enclosing_end, t1)
    return top


def _longest_chain(spans: list[tuple[float, float, str]]) -> float:
    """Longest total duration of a chain of non-overlapping spans.

    A dependency-free critical-path proxy: the recorder keeps no edges, so
    any set of spans that could not have run concurrently (pairwise
    disjoint in time) bounds the makespan from below.  O(n log n) sweep.
    """
    import bisect

    by_end = sorted(spans, key=lambda s: s[1])
    ends: list[float] = []       # chain end times, ascending
    best_prefix: list[float] = []  # max chain duration ending at <= ends[i]
    best = 0.0
    for t0, t1, _ in by_end:
        i = bisect.bisect_right(ends, t0)
        prev = best_prefix[i - 1] if i else 0.0
        total = prev + (t1 - t0)
        ends.append(t1)
        best = max(best, total)
        best_prefix.append(max(total, best_prefix[-1] if best_prefix else 0.0))
    return best


def summarize_trace(doc: dict) -> dict:
    """Timeline metrics of an exported trace document.

    Returns a dict with ``wall_s``, per-lane ``lanes`` (busy/idle), phase
    ``totals`` by span name, ``critical_path_s`` + ``parallelism``, the
    exporter's ring-buffer ``dropped`` count with a ``truncated`` flag
    (a truncated trace under-reports every lane's busy time) and — when
    worker spans are present — the ``halo`` overlap block.
    """
    other = doc.get("otherData") or {}
    try:
        dropped = int(other.get("dropped") or 0)
    except (TypeError, ValueError):
        dropped = 0
    capacity = other.get("capacity")
    lane_names: dict[tuple, str] = {}
    lane_spans: dict[tuple, list] = {}
    for ev in doc.get("traceEvents", []):
        lane = (ev.get("pid"), ev.get("tid"))
        if ev.get("ph") == "M":
            if ev.get("name") == "thread_name":
                lane_names[lane] = ev["args"]["name"]
            continue
        if ev.get("ph") != "X":
            continue
        t0 = float(ev["ts"]) * 1e-6
        t1 = t0 + float(ev["dur"]) * 1e-6
        lane_spans.setdefault(lane, []).append((t0, t1, ev["name"]))

    all_spans = [s for spans in lane_spans.values() for s in spans]
    if not all_spans:
        return {"wall_s": 0.0, "lanes": {}, "totals": {},
                "critical_path_s": 0.0, "parallelism": 0.0, "halo": None,
                "dropped": dropped, "capacity": capacity,
                "truncated": dropped > 0}
    t_min = min(s[0] for s in all_spans)
    t_max = max(s[1] for s in all_spans)
    wall = t_max - t_min

    lanes = {}
    top_by_lane = {}
    for lane, spans in lane_spans.items():
        top = _top_level(spans)
        top_by_lane[lane] = top
        busy = _covered([(a, b) for a, b, _ in top])
        lanes[lane_names.get(lane, f"lane-{lane[1]}")] = {
            "spans": len(spans),
            "busy_s": busy,
            "idle_fraction": 1.0 - busy / wall if wall > 0 else 0.0,
        }

    totals: dict[str, dict] = {}
    for t0, t1, name in all_spans:
        cell = totals.setdefault(name, {"seconds": 0.0, "calls": 0})
        cell["seconds"] += t1 - t0
        cell["calls"] += 1

    all_top = [s for top in top_by_lane.values() for s in top]
    critical = _longest_chain(all_top)
    busy_total = sum(v["busy_s"] for v in lanes.values())
    parallelism = busy_total / critical if critical > 0 else 0.0

    # halo-gather vs compute overlap across worker lanes
    halo_spans = [(t0, t1, name) for t0, t1, name in all_spans
                  if name.endswith("halo_gather")]
    compute = _merge_intervals(
        [(t0, t1) for t0, t1, name in all_spans
         if name.endswith("compute") or name.endswith("predict")]
    )
    halo = None
    if halo_spans:
        halo_total = sum(t1 - t0 for t0, t1, _ in halo_spans)
        overlapped = 0.0
        for t0, t1, _ in halo_spans:
            overlapped += _covered(
                [(max(t0, a), min(t1, b)) for a, b in compute
                 if a < t1 and b > t0]
            )
        halo = {
            "halo_s": halo_total,
            "overlapped_s": overlapped,
            "overlap_fraction": overlapped / halo_total if halo_total > 0 else 0.0,
        }

    return {
        "wall_s": wall,
        "lanes": lanes,
        "totals": totals,
        "critical_path_s": critical,
        "parallelism": parallelism,
        "halo": halo,
        "dropped": dropped,
        "capacity": capacity,
        "truncated": dropped > 0,
    }


def trace_summary_lines(summary: dict, other: dict | None = None,
                        top: int = 15) -> list[str]:
    """Render :func:`summarize_trace` output as the CLI report."""
    lines = [f"trace span timeline: {summary['wall_s']:.4f} s wall"]
    if other:
        dropped = other.get("dropped", 0)
        lines.append(
            f"  {other.get('spans', '?')} spans"
            + (f" ({dropped} DROPPED past capacity "
               f"{other.get('capacity')})" if dropped else "")
        )
    if summary.get("truncated"):
        # the exporter's ring wrapped: every number below under-counts
        lines.append(
            f"  WARNING: trace truncated — {summary['dropped']} span(s) "
            f"dropped past capacity {summary.get('capacity')}; durations "
            f"and busy fractions under-count the run"
        )
    lines.append(
        f"  critical path (chain proxy): {summary['critical_path_s']:.4f} s"
        f" | achieved parallelism {summary['parallelism']:.2f}x"
    )
    if summary["lanes"]:
        lines.append("")
        lines.append("lanes (busy vs idle):")
        lines.append(f"  {'lane':24} {'spans':>7} {'busy s':>10} {'idle':>7}")
        for name in sorted(summary["lanes"]):
            lane = summary["lanes"][name]
            lines.append(
                f"  {name:24} {lane['spans']:>7} {lane['busy_s']:>10.4f} "
                f"{100.0 * lane['idle_fraction']:>6.1f}%"
            )
    if summary["halo"] is not None:
        h = summary["halo"]
        lines.append("")
        lines.append(
            f"halo gather: {h['halo_s']:.4f} s, of which "
            f"{100.0 * h['overlap_fraction']:.1f}% overlapped with "
            f"another worker's compute"
        )
    if summary["totals"]:
        lines.append("")
        lines.append(f"top spans (by total duration):")
        lines.append(f"  {'span':40} {'calls':>8} {'seconds':>10}")
        ranked = sorted(summary["totals"].items(),
                        key=lambda kv: -kv[1]["seconds"])
        for name, cell in ranked[:top]:
            lines.append(f"  {name:40} {cell['calls']:>8} {cell['seconds']:>10.4f}")
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more span names")
    return lines


def summarize_trace_file(path: str, check: bool = False) -> int:
    """CLI driver for ``python -m repro obs-trace``; returns an exit code."""
    doc = load_trace(path)
    errors = validate_chrome_trace(doc)
    if errors:
        for msg in errors:
            print(f"{path}: {msg}")
        print(f"{path}: INVALID ({len(errors)} schema error(s))")
        return 1
    if check:
        print(f"{path}: {len(doc.get('traceEvents', []))} events -> OK")
    print(f"== trace {path} ==")
    for line in trace_summary_lines(summarize_trace(doc), doc.get("otherData")):
        print(line)
    return 0
