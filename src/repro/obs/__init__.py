"""Observability: phase telemetry, structured run logs, roofline reports.

The measurement layer behind the paper's Sec. 5-6 performance story:

* :mod:`repro.obs.telemetry` — default-off hierarchical phase timers and
  monotonic counters instrumenting the solver's hot paths;
* :mod:`repro.obs.runlog` — JSONL event sink (manifest, heartbeats,
  resilience events) with an offline validator;
* :mod:`repro.obs.report` — measured-vs-modeled GFLOP/s accounting
  against :mod:`repro.hpc.perfmodel` (imported lazily: it pulls in the
  HPC models);
* :mod:`repro.obs.session` — :class:`ObsSession` wiring for the CLI's
  ``--profile`` / ``--log-json`` / ``--heartbeat-every`` flags.
"""

from .runlog import EVENT_FIELDS, SCHEMA_VERSION, RunLog, run_manifest, validate_jsonl, validate_record
from .session import ObsSession, add_obs_args, obs_kwargs
from .telemetry import Telemetry, get_telemetry, timed

__all__ = [
    "Telemetry",
    "get_telemetry",
    "timed",
    "RunLog",
    "run_manifest",
    "validate_record",
    "validate_jsonl",
    "EVENT_FIELDS",
    "SCHEMA_VERSION",
    "ObsSession",
    "add_obs_args",
    "obs_kwargs",
]
