"""Observability: phase telemetry, structured run logs, roofline reports.

The measurement layer behind the paper's Sec. 5-6 performance story:

* :mod:`repro.obs.telemetry` — default-off hierarchical phase timers and
  monotonic counters instrumenting the solver's hot paths;
* :mod:`repro.obs.runlog` — JSONL event sink (manifest, heartbeats,
  resilience events) with an offline validator;
* :mod:`repro.obs.report` — measured-vs-modeled GFLOP/s accounting
  against :mod:`repro.hpc.perfmodel` (imported lazily: it pulls in the
  HPC models);
* :mod:`repro.obs.trace` — bounded span recording exported as
  Chrome-trace/Perfetto JSON timelines (one lane per partitioned worker,
  LTS cluster slices colored by cluster id) plus the ``obs-trace``
  summarizer;
* :mod:`repro.obs.bench` — standardized kernel benchmark battery writing
  schema-versioned ``BENCH_<host-context>.json`` trajectory records
  (compared against history and the roofline by
  ``tools/bench_compare.py``);
* :mod:`repro.obs.metrics` — default-off typed metric registry
  (counters, gauges, log-bucketed histograms, ring-buffer series) with
  associative snapshot merging and a Prometheus text exporter — the
  fleet-observability substrate;
* :mod:`repro.obs.fleet` — supervisor-side :class:`FleetAggregator`
  folding member snapshots into fleet series (``fleet.prom`` /
  ``fleet.jsonl`` exporters) plus the offline ``obs-status`` view;
* :mod:`repro.obs.blackbox` — always-on bounded flight recorder
  (:class:`FlightRecorder`) whose ring of recent micro-step events is
  dumped, on any terminal fault, as an atomic fingerprinted
  ``*.blackbox.json`` diagnostic bundle (NaN-origin localization,
  per-field statistics, thread stacks, run manifest) classified by the
  ``obs-diagnose`` CLI;
* :mod:`repro.obs.session` — :class:`ObsSession` wiring for the CLI's
  ``--profile`` / ``--trace`` / ``--log-json`` / ``--heartbeat-every`` /
  ``--metrics`` flags.
"""

from .blackbox import (
    BUNDLE_SCHEMA_VERSION,
    FlightRecorder,
    build_bundle,
    classify_bundle,
    diagnose_bundle_file,
    dump_bundle,
    find_bundles,
    load_bundle,
    newest_bundle,
    validate_bundle,
    write_bundle,
)
from .fleet import FleetAggregator, status_lines, status_rows, watch_status
from .metrics import (
    METRICS_SCHEMA_VERSION,
    MetricRegistry,
    get_metrics,
    merge_snapshots,
    to_prometheus,
    validate_prometheus,
)
from .runlog import EVENT_FIELDS, SCHEMA_VERSION, RunLog, run_manifest, validate_jsonl, validate_record
from .session import ObsSession, add_obs_args, obs_kwargs
from .telemetry import Telemetry, TraceBuffer, get_telemetry, timed
from .trace import (
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    export_chrome_trace,
    load_trace,
    merge_chrome_traces,
    summarize_trace,
    validate_chrome_trace,
)

__all__ = [
    "Telemetry",
    "TraceBuffer",
    "get_telemetry",
    "timed",
    "TRACE_SCHEMA_VERSION",
    "chrome_trace",
    "export_chrome_trace",
    "load_trace",
    "merge_chrome_traces",
    "summarize_trace",
    "validate_chrome_trace",
    "RunLog",
    "run_manifest",
    "validate_record",
    "validate_jsonl",
    "EVENT_FIELDS",
    "SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "MetricRegistry",
    "get_metrics",
    "merge_snapshots",
    "to_prometheus",
    "validate_prometheus",
    "FleetAggregator",
    "status_rows",
    "status_lines",
    "watch_status",
    "BUNDLE_SCHEMA_VERSION",
    "FlightRecorder",
    "build_bundle",
    "write_bundle",
    "dump_bundle",
    "load_bundle",
    "validate_bundle",
    "classify_bundle",
    "find_bundles",
    "newest_bundle",
    "diagnose_bundle_file",
    "ObsSession",
    "add_obs_args",
    "obs_kwargs",
]
