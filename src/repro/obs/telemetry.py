"""Low-overhead hierarchical phase timers and monotonic counters.

The paper's performance story (Sec. 5-6) is told in per-kernel achieved
GFLOP/s, per-LTS-cluster update counts and communication/compute splits;
this module is the measurement substrate that makes the reproduction's
hot paths visible.  One process-wide :class:`Telemetry` registry collects

* **phase timers** — ``with tel.phase("kernels/volume"): ...`` accumulates
  wall time and call counts under a hierarchical path (nested phases
  concatenate, ``step/predict``); also usable as a decorator via
  :func:`timed`;
* **monotonic counters** — ``tel.count("elem_updates/predictor", ne)``
  for element-update accounting (the roofline denominator) and event
  counts (plan-cache hits, LTS cluster updates);
* **direct time accumulation** — ``tel.add_time(name, seconds)`` for
  spans measured by hand (the partitioned backend's per-worker
  compute-vs-halo split, where a context manager per worker would
  obscure the gather/compute boundary).

Telemetry is **default-off** and the disabled path is a guarded no-op:
``phase()`` returns a shared null context manager without touching any
lock, so instrumented hot loops pay one attribute check per call site
(the test suite holds this below 2% of step wall time).  All mutation is
lock-protected and per-thread phase stacks are thread-local, so the
partitioned backend's workers can time their kernels concurrently; phase
times recorded on worker threads accumulate per-thread *busy* time (their
sum can exceed elapsed wall time under parallel execution).
"""

from __future__ import annotations

import functools
import threading
import time

__all__ = ["Telemetry", "get_telemetry", "timed"]


class _NullPhase:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """Context manager recording one timed span under the current path."""

    __slots__ = ("_tel", "_name", "_t0")

    def __init__(self, tel: "Telemetry", name: str):
        self._tel = tel
        self._name = name

    def __enter__(self):
        stack = self._tel._stack()
        stack.append(self._name if not stack else f"{stack[-1]}/{self._name}")
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dt = time.perf_counter() - self._t0
        path = self._tel._stack().pop()
        self._tel._accumulate(path, dt)
        return False


class Telemetry:
    """Process-wide registry of phase timers and counters (default off)."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._phases: dict[str, list] = {}    # path -> [seconds, calls]
        self._counters: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded phases and counters (enabled flag unchanged)."""
        with self._lock:
            self._phases.clear()
            self._counters.clear()

    # -- recording ------------------------------------------------------
    def _stack(self) -> list:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def _accumulate(self, path: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            cell = self._phases.get(path)
            if cell is None:
                self._phases[path] = [seconds, calls]
            else:
                cell[0] += seconds
                cell[1] += calls

    def phase(self, name: str):
        """Timed context manager; a shared no-op when telemetry is off."""
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate an externally measured span under ``name``."""
        if self.enabled:
            self._accumulate(name, float(seconds))

    def count(self, name: str, n: int = 1) -> None:
        """Increment the monotonic counter ``name`` by ``n``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Consistent copy: ``{"phases": {path: {"seconds", "calls"}},
        "counters": {name: value}}``, keys sorted."""
        with self._lock:
            return {
                "phases": {
                    k: {"seconds": v[0], "calls": v[1]}
                    for k, v in sorted(self._phases.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }


_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide telemetry registry."""
    return _TELEMETRY


def timed(name: str):
    """Decorator form of :meth:`Telemetry.phase` on the global registry."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _TELEMETRY.phase(name):
                return fn(*args, **kwargs)

        return wrapper

    return deco
