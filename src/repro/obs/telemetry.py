"""Low-overhead hierarchical phase timers and monotonic counters.

The paper's performance story (Sec. 5-6) is told in per-kernel achieved
GFLOP/s, per-LTS-cluster update counts and communication/compute splits;
this module is the measurement substrate that makes the reproduction's
hot paths visible.  One process-wide :class:`Telemetry` registry collects

* **phase timers** — ``with tel.phase("kernels/volume"): ...`` accumulates
  wall time and call counts under a hierarchical path (nested phases
  concatenate, ``step/predict``); also usable as a decorator via
  :func:`timed`;
* **monotonic counters** — ``tel.count("elem_updates/predictor", ne)``
  for element-update accounting (the roofline denominator) and event
  counts (plan-cache hits, LTS cluster updates);
* **direct time accumulation** — ``tel.add_time(name, seconds)`` for
  spans measured by hand (the partitioned backend's per-worker
  compute-vs-halo split, where a context manager per worker would
  obscure the gather/compute boundary).

Telemetry is **default-off** and the disabled path is a guarded no-op:
``phase()`` returns a shared null context manager without touching any
lock, so instrumented hot loops pay one attribute check per call site
(the test suite holds this below 2% of step wall time).  All mutation is
lock-protected and per-thread phase stacks are thread-local, so the
partitioned backend's workers can time their kernels concurrently; phase
times recorded on worker threads accumulate per-thread *busy* time (their
sum can exceed elapsed wall time under parallel execution).

**Span tracing** (``enable(trace=True)``) additionally records every
completed phase as an individual timestamped span — begin/end
``perf_counter`` values plus the recording thread id — into a bounded
in-memory buffer (:class:`TraceBuffer`); when the buffer fills, further
spans are dropped and counted, never reallocated.  Two extra entry points
exist only for tracing: :meth:`Telemetry.trace_span` (a context manager
carrying structured args — LTS cluster ids, element counts) and
:meth:`Telemetry.add_span` (hand-measured spans with explicit timestamps —
the partitioned workers' halo-gather/compute splits, tagged with the
partition id so the exporter can lay them out one lane per worker).  Both
are no-ops unless tracing is on, and the trace machinery adds nothing to
the disabled ``phase()`` fast path (the same 2% guard covers it).  Export
to Chrome-trace/Perfetto JSON lives in :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import functools
import threading
import time

__all__ = ["Telemetry", "TraceBuffer", "get_telemetry", "timed"]

#: default span-buffer capacity: ~60 bytes/span -> tens of MB at worst
DEFAULT_TRACE_CAPACITY = 1_000_000


class _NullPhase:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """Context manager recording one timed span under the current path."""

    __slots__ = ("_tel", "_name", "_t0")

    def __init__(self, tel: "Telemetry", name: str):
        self._tel = tel
        self._name = name

    def __enter__(self):
        stack = self._tel._stack()
        stack.append(self._name if not stack else f"{stack[-1]}/{self._name}")
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        t1 = time.perf_counter()
        path = self._tel._stack().pop()
        self._tel._accumulate(path, t1 - self._t0)
        trace = self._tel._trace
        if trace is not None:
            trace.add(path, self._t0, t1, None)
        return False


class _TraceSpan:
    """Trace-only span (no phase aggregation) carrying structured args."""

    __slots__ = ("_trace", "_name", "_args", "_t0")

    def __init__(self, trace: "TraceBuffer", name: str, args: dict | None):
        self._trace = trace
        self._name = name
        self._args = args

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._trace.add(self._name, self._t0, time.perf_counter(), self._args)
        return False


class TraceBuffer:
    """Bounded, thread-safe buffer of completed spans.

    Each span is the tuple ``(name, t0, t1, thread_id, args)`` with
    ``perf_counter`` timestamps.  Appends past ``capacity`` are dropped
    (and counted in :attr:`dropped`) rather than growing without bound —
    a traced production run must never OOM the solver it observes.
    Thread names are collected as a side table so the exporter can label
    lanes without storing a string per span.
    """

    __slots__ = ("capacity", "dropped", "_spans", "_threads", "_lock")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = int(capacity)
        self.dropped = 0
        self._spans: list[tuple] = []
        self._threads: dict[int, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def add(self, name: str, t0: float, t1: float, args: dict | None) -> None:
        tid = threading.get_ident()
        with self._lock:
            if len(self._spans) >= self.capacity:
                self.dropped += 1
                return
            if tid not in self._threads:
                self._threads[tid] = threading.current_thread().name
            self._spans.append((name, t0, t1, tid, args))

    def snapshot(self) -> dict:
        """Copy: ``{"spans": [...], "threads": {tid: name}, "dropped": n,
        "capacity": n}`` — spans sorted by begin timestamp."""
        with self._lock:
            return {
                "spans": sorted(self._spans, key=lambda s: s[1]),
                "threads": dict(self._threads),
                "dropped": self.dropped,
                "capacity": self.capacity,
            }


class Telemetry:
    """Process-wide registry of phase timers and counters (default off)."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._phases: dict[str, list] = {}    # path -> [seconds, calls]
        self._counters: dict[str, int] = {}
        self._trace: TraceBuffer | None = None

    # -- lifecycle ------------------------------------------------------
    def enable(self, trace: bool = False,
               trace_capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        """Switch recording on; ``trace=True`` also records per-call spans
        into a fresh bounded :class:`TraceBuffer` (``trace=False`` drops
        any previous buffer — trace mode is decided per enable)."""
        self._trace = TraceBuffer(trace_capacity) if trace else None
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (an existing trace buffer stays readable)."""
        self.enabled = False

    @property
    def tracing(self) -> bool:
        return self._trace is not None

    def trace_snapshot(self) -> dict:
        """Span-buffer snapshot (see :meth:`TraceBuffer.snapshot`); empty
        buffers of a never-traced registry yield no spans."""
        if self._trace is None:
            return {"spans": [], "threads": {}, "dropped": 0, "capacity": 0}
        return self._trace.snapshot()

    def reset(self) -> None:
        """Drop all recorded phases, counters and spans (enabled flag and
        trace mode unchanged; a tracing registry gets an empty buffer)."""
        with self._lock:
            self._phases.clear()
            self._counters.clear()
            if self._trace is not None:
                self._trace = TraceBuffer(self._trace.capacity)

    # -- recording ------------------------------------------------------
    def _stack(self) -> list:
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def _accumulate(self, path: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            cell = self._phases.get(path)
            if cell is None:
                self._phases[path] = [seconds, calls]
            else:
                cell[0] += seconds
                cell[1] += calls

    def phase(self, name: str):
        """Timed context manager; a shared no-op when telemetry is off."""
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate an externally measured span under ``name``."""
        if self.enabled:
            self._accumulate(name, float(seconds))

    def trace_span(self, name: str, **args):
        """Trace-only context manager carrying structured ``args``.

        Records a span (no phase aggregation) when tracing is on; a shared
        no-op otherwise.  Use for coarse scheduler-level slices — one LTS
        cluster step, one worker's partition — where the span's identity
        (cluster id, element count) matters more than its aggregate time.
        """
        trace = self._trace
        if trace is None or not self.enabled:
            return _NULL_PHASE
        return _TraceSpan(trace, name, args or None)

    def add_span(self, name: str, t0: float, t1: float, **args) -> None:
        """Record a hand-measured trace span with explicit ``perf_counter``
        timestamps (no-op unless tracing)."""
        trace = self._trace
        if trace is not None and self.enabled:
            trace.add(name, float(t0), float(t1), args or None)

    def count(self, name: str, n: int = 1) -> None:
        """Increment the monotonic counter ``name`` by ``n``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of one counter (0 if never incremented).

        Takes the registry lock: concurrent :meth:`count` calls mutate the
        dict, and an unlocked read could observe state torn relative to
        :meth:`snapshot` under the partitioned backend's workers.
        """
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Consistent copy: ``{"phases": {path: {"seconds", "calls"}},
        "counters": {name: value}}``, keys sorted."""
        with self._lock:
            return {
                "phases": {
                    k: {"seconds": v[0], "calls": v[1]}
                    for k, v in sorted(self._phases.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }


_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide telemetry registry."""
    return _TELEMETRY


def timed(name: str):
    """Decorator form of :meth:`Telemetry.phase` on the global registry."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with _TELEMETRY.phase(name):
                return fn(*args, **kwargs)

        return wrapper

    return deco
