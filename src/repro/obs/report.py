"""Measured-vs-modeled performance accounting and run-log summaries.

Converts the telemetry collected during a profiled run (phase times +
element-update counters) into the paper's Sec. 5 currency — achieved
GFLOP/s per kernel against the analytical roofline of
:mod:`repro.hpc.perfmodel` — and renders human-readable summaries of
structured run logs (``python -m repro obs-report RUN.jsonl``).

Accounting conventions:

* the **predictor** row uses the wall time of the backend-level
  ``predict`` phase (the Cauchy-Kowalewski sweep is the only thing inside
  it);
* the **corrector** row uses the accumulated busy time of the
  volume/surface kernel phases only (``kernels/volume`` +
  ``kernels/surface_*``), excluding the gravity/fault/source modules the
  FLOP model does not count — under the partitioned backend this is
  summed across worker threads, so the reported rate is the aggregate
  compute rate;
* FLOPs are ``kernel_counts(order)`` x the ``elem_updates/*`` counters
  maintained by the execution backends, so LTS runs are credited for the
  updates they actually performed, not for GTS-equivalent sweeps.

The modeled roofline needs a node: by default the paper's Sec. 5.1 AMD
Rome test system (so "efficiency" reads as *fraction of what the paper's
calibrated machine model attains*, which for a NumPy reproduction is
honestly tiny), or ``--node local`` for a nominal model of the executing
host.
"""

from __future__ import annotations

import json
import os
import re

__all__ = [
    "KNOWN_NODES",
    "node_spec",
    "phase_total",
    "worker_split",
    "lts_cluster_updates",
    "roofline_rows",
    "profile_lines",
    "summarize_runlog",
]

#: leaf phases whose sum is the corrector-kernel busy time (the fused
#: kernel variants report under their own ``*_fused`` phase names so a
#: profile always shows which execution path ran)
_CORRECTOR_PHASES = ("kernels/volume", "kernels/surface_interior",
                     "kernels/surface_boundary",
                     "kernels/volume_fused", "kernels/surface_interior_fused",
                     "kernels/surface_boundary_fused")

_WORKER_RE = re.compile(r"(?:^|/)worker/p(\d+)/(halo_gather|compute)$")
_LTS_RE = re.compile(r"^lts/(updates|elem_updates)/c(\d+)$")


def _node_specs() -> dict:
    from ..hpc.machine import AMD_ROME_7H12, MAHTI, SHAHEEN2, SUPERMUC_NG, NodeSpec

    local = NodeSpec(
        name="local (nominal)",
        sockets=1,
        numa_per_socket=1,
        cores_per_numa=max(os.cpu_count() or 1, 1),
        freq_ghz=2.5,
        flops_per_cycle=16,
        mem_bw_gbs=40.0,
    )
    return {
        "rome": AMD_ROME_7H12,
        "mahti": MAHTI.node,
        "supermuc-ng": SUPERMUC_NG.node,
        "shaheen2": SHAHEEN2.node,
        "local": local,
    }


#: node names accepted by ``obs-report --node`` (resolved lazily)
KNOWN_NODES = ("rome", "mahti", "supermuc-ng", "shaheen2", "local")


def node_spec(node):
    """Resolve a :data:`KNOWN_NODES` name to its
    :class:`~repro.hpc.machine.NodeSpec` (instances pass through) — shared
    by the roofline report and the benchmark battery."""
    return _node_specs()[node] if isinstance(node, str) else node


# ----------------------------------------------------------------------
def phase_total(phases: dict, key: str) -> float:
    """Total seconds of every phase path ending in ``key``.

    Nested instrumentation records full paths (``step/predict``); this
    aggregates them regardless of the parent chain, so GTS, LTS and
    worker-thread call sites all contribute to the same kernel bucket.
    """
    total = 0.0
    suffix = "/" + key
    for path, cell in phases.items():
        if path == key or path.endswith(suffix):
            total += cell["seconds"] if isinstance(cell, dict) else cell[0]
    return total


def worker_split(phases: dict) -> dict:
    """Per-worker compute vs halo-gather split of a partitioned run.

    Returns ``{part_id: {"halo_s", "compute_s", "halo_fraction"}}``.
    """
    out: dict[int, dict] = {}
    for path, cell in phases.items():
        m = _WORKER_RE.search(path)
        if not m:
            continue
        part = int(m.group(1))
        seconds = cell["seconds"] if isinstance(cell, dict) else cell[0]
        slot = out.setdefault(part, {"halo_s": 0.0, "compute_s": 0.0})
        slot["halo_s" if m.group(2) == "halo_gather" else "compute_s"] += seconds
    for slot in out.values():
        busy = slot["halo_s"] + slot["compute_s"]
        slot["halo_fraction"] = slot["halo_s"] / busy if busy > 0 else 0.0
    return out


def lts_cluster_updates(counters: dict) -> dict:
    """``{cluster: {"updates", "elem_updates"}}`` from telemetry counters."""
    out: dict[int, dict] = {}
    for name, value in counters.items():
        m = _LTS_RE.match(name)
        if not m:
            continue
        slot = out.setdefault(int(m.group(2)), {"updates": 0, "elem_updates": 0})
        slot[m.group(1)] += int(value)
    return out


# ----------------------------------------------------------------------
def roofline_rows(phases: dict, counters: dict, order: int,
                  node: str | object = "rome",
                  variant: str = "batched") -> list[dict]:
    """Measured-vs-modeled roofline rows for the predictor and corrector.

    ``node`` is a name from :data:`KNOWN_NODES` or a
    :class:`~repro.hpc.machine.NodeSpec`; ``variant`` is the kernel
    variant the run executed (its FLOP counts differ — crediting a fused
    run with batched FLOPs would overstate measured GFLOP/s).  Rows
    contain ``kernel``, ``seconds``, ``elem_updates``, ``gflop``,
    ``measured_gflops``, ``model_gflops`` and ``efficiency``
    (measured/model); kernels with no recorded time or updates are
    omitted.
    """
    from ..hpc.perfmodel import NodePerformanceModel, kernel_counts

    spec = node_spec(node)
    model = NodePerformanceModel(spec, order=order, variant=variant)
    kc = kernel_counts(order, variant=variant)

    rows = []
    for kernel, seconds, updates, flops_per_update, model_gflops in (
        ("predictor", phase_total(phases, "predict"),
         counters.get("elem_updates/predictor", 0),
         kc.flops_predictor, model.predictor_gflops()),
        ("corrector", sum(phase_total(phases, k) for k in _CORRECTOR_PHASES),
         counters.get("elem_updates/corrector", 0),
         kc.flops_corrector, model.corrector_gflops()),
    ):
        if seconds <= 0.0 or updates <= 0:
            continue
        gflop = flops_per_update * updates / 1e9
        measured = gflop / seconds
        rows.append({
            "kernel": kernel,
            "seconds": seconds,
            "elem_updates": int(updates),
            "gflop": gflop,
            "measured_gflops": measured,
            "model_gflops": model_gflops,
            "efficiency": measured / model_gflops if model_gflops > 0 else 0.0,
        })
    return rows


# ----------------------------------------------------------------------
def profile_lines(snapshot: dict, order: int | None = None,
                  wall_s: float | None = None, node: str | object = "rome",
                  top: int = 20, variant: str = "batched") -> list[str]:
    """Render a telemetry snapshot as the per-phase + roofline report."""
    phases = snapshot.get("phases", {})
    counters = snapshot.get("counters", {})
    lines: list[str] = []

    def seconds_of(cell):
        return cell["seconds"] if isinstance(cell, dict) else cell[0]

    def calls_of(cell):
        return cell["calls"] if isinstance(cell, dict) else cell[1]

    if phases:
        lines.append("phase breakdown (busy seconds, accumulated across threads):")
        lines.append(f"  {'phase':40} {'calls':>9} {'seconds':>10} {'% wall':>7}")
        ranked = sorted(phases.items(), key=lambda kv: -seconds_of(kv[1]))
        for path, cell in ranked[:top]:
            sec = seconds_of(cell)
            pct = f"{100.0 * sec / wall_s:6.1f}%" if wall_s else "      -"
            lines.append(f"  {path:40} {calls_of(cell):>9} {sec:>10.4f} {pct:>7}")
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more phases")

    if order is not None:
        rows = roofline_rows(phases, counters, order, node, variant=variant)
        if rows:
            spec = node_spec(node)
            lines.append("")
            lines.append(f"roofline (measured vs modeled, node: {spec.name}):")
            lines.append(
                f"  {'kernel':12} {'elem-updates':>12} {'GFLOP':>10} "
                f"{'meas GFLOP/s':>13} {'model GFLOP/s':>14} {'efficiency':>11}"
            )
            for r in rows:
                lines.append(
                    f"  {r['kernel']:12} {r['elem_updates']:>12} "
                    f"{r['gflop']:>10.3f} {r['measured_gflops']:>13.3f} "
                    f"{r['model_gflops']:>14.1f} {r['efficiency']:>10.2e}"
                )

    split = worker_split(phases)
    if split:
        lines.append("")
        lines.append("partitioned workers (compute vs halo-gather):")
        lines.append(f"  {'worker':>8} {'compute s':>11} {'halo s':>9} {'halo wait':>10}")
        for part in sorted(split):
            s = split[part]
            lines.append(
                f"  {f'p{part}':>8} {s['compute_s']:>11.4f} "
                f"{s['halo_s']:>9.4f} {100.0 * s['halo_fraction']:>9.2f}%"
            )

    clusters = lts_cluster_updates(counters)
    if clusters:
        lines.append("")
        lines.append("LTS cluster updates:")
        lines.append(f"  {'cluster':>8} {'updates':>9} {'elem-updates':>13}")
        for c in sorted(clusters):
            lines.append(
                f"  {f'c{c}':>8} {clusters[c]['updates']:>9} "
                f"{clusters[c]['elem_updates']:>13}"
            )

    misc = {k: v for k, v in counters.items()
            if not _LTS_RE.match(k)}
    if misc:
        lines.append("")
        lines.append("counters:")
        for name in sorted(misc):
            lines.append(f"  {name:40} {misc[name]:>12}")
    return lines


# ----------------------------------------------------------------------
def _num(value, spec: str, missing: str = "?") -> str:
    """Format a maybe-missing numeric record field without crashing."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return missing
    try:
        return format(value, spec)
    except (TypeError, ValueError):
        return missing


def summarize_runlog(path: str, node: str = "rome", check: bool = False) -> int:
    """Print a summary of a JSONL run log; returns a process exit code.

    With ``check=True`` the log is validated against the schema first and
    a non-zero code is returned when any record is malformed.
    """
    from .runlog import validate_jsonl

    result = validate_jsonl(path)
    if check:
        for lineno, msg in result["errors"]:
            print(f"{path}:{lineno}: {msg}")
        status = "OK" if not result["errors"] else "INVALID"
        print(f"{path}: {result['records']} records, "
              f"{len(result['errors'])} schema error(s) -> {status}")
        if result["errors"]:
            return 1

    manifests, heartbeats, recoveries = [], [], []
    run_end = None
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            event = rec.get("event")
            if event == "manifest":
                manifests.append(rec)
            elif event == "heartbeat":
                heartbeats.append(rec)
            elif event in ("recovery", "diverged"):
                recoveries.append(rec)
            elif event == "run_end":
                run_end = rec

    print(f"== run log {path} ==")
    if manifests:
        m = manifests[0]
        print(f"run: {m.get('config', {}).get('command', '?')} | "
              f"backend {m.get('backend', '?')} (workers {m.get('workers', '?')}) | "
              f"order {m.get('order', '?')} | {m.get('n_elements', '?')} elements | "
              f"git {str(m.get('git_rev', '?'))[:12]}")
        if len(manifests) > 1:
            print(f"resumed {len(manifests) - 1} time(s) (append-continued log)")
    else:
        print("no manifest record found")

    if heartbeats:
        # every heartbeat field is optional here: ensemble workers (and
        # older schema versions) emit records without wall_rate/energy,
        # and a report must summarize what is there, not crash on what
        # is not
        last = heartbeats[-1]
        rates = [h.get("wall_rate") for h in heartbeats
                 if isinstance(h.get("wall_rate"), (int, float))]
        mean_rate = sum(rates) / len(rates) if rates else None
        print(f"heartbeats: {len(heartbeats)} | "
              f"last step {last.get('step', '?')} "
              f"at sim t = {_num(last.get('sim_t'), '.6g')} s | "
              f"mean rate {_num(mean_rate, '.2f')} steps/s | "
              f"last energy {_num(last.get('energy'), '.4g')} J")
    for rec in recoveries:
        if rec.get("event") == "recovery":
            print(f"recovery: rollback at step {rec.get('step')} "
                  f"(attempt {rec.get('attempt')}/{rec.get('max_retries')}, "
                  f"dt scale {rec.get('dt_scale')}, "
                  f"{_num(rec.get('wall_s'), '.2f', '?')} s wall): "
                  f"{rec.get('reason')}")
        else:
            print(f"DIVERGED at step {rec.get('step')} after "
                  f"{rec.get('attempts')} attempt(s), "
                  f"{_num(rec.get('wall_s'), '.2f', '?')} s wall")

    if run_end is not None:
        order = manifests[0].get("order") if manifests else None
        variant = (manifests[0].get("kernel_variant", "batched")
                   if manifests else "batched")
        snapshot = {"phases": run_end.get("phases", {}),
                    "counters": run_end.get("counters", {})}
        print(f"run end: {run_end.get('steps')} steps in "
              f"{_num(run_end.get('wall_s'), '.2f', '?')} s wall")
        for line in profile_lines(snapshot, order=order,
                                  wall_s=run_end.get("wall_s"), node=node,
                                  variant=variant):
            print(line)
    else:
        print("no run_end record (run still in progress or killed)")
    return 0
