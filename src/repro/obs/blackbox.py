"""Black-box flight recorder and automated crash forensics.

Long coupled runs die in stereotyped ways — a NaN born at the fault or
the gravity boundary, an energy-drift blowup, a CFL collapse after dt
backoff, a worker killed mid-write — and the live observability layers
(telemetry, traces, fleet metrics) only help while the process is still
alive.  This module is the *postmortem* half:

* :class:`FlightRecorder` — an always-on bounded ring buffer of the last
  K micro-step events (scheduler cluster/window ids, the watchdog's
  per-step physics gauges, checkpoint/recovery events).  Recording is a
  tuple append into a ``deque`` — the same <2 %-of-a-step budget the
  disabled metric-registry guard sites live under (enforced by the
  ``blackbox_overhead`` bench-battery entry and a dedicated test).
* :func:`build_bundle` / :func:`write_bundle` — on any terminal fault
  (watchdog trip, :class:`~repro.core.health.SimulationDiverged`,
  unhandled worker exception, process death seen by the supervisor) the
  ring is dumped as an atomic, fingerprinted ``*.blackbox.json``
  diagnostic bundle: ring contents, a NaN-origin localization
  (:func:`locate_nonfinite` — first non-finite field, element id,
  partition, LTS cluster and sim time, found by bisecting the state
  arrays the watchdog already scans), per-field state statistics,
  faulted-thread stacks via :func:`sys._current_frames`, and the run
  manifest.  An optional ``.npz`` state excerpt rides alongside.
* :func:`classify_bundle` — the automated verdict
  (:data:`VERDICTS`: ``nan_origin`` | ``energy_blowup`` |
  ``cfl_collapse`` | ``worker_death`` | ``unknown``) plus evidence
  lines, exposed as ``python -m repro obs-diagnose BUNDLE [--check]``.

The wiring spans four layers: :class:`~repro.core.resilience.
ResilientRunner` attaches a bundle path to every recovery/divergence
run-log event, the ensemble :class:`~repro.ensemble.supervisor.
Supervisor` collects (or synthesizes) bundles for dead and quarantined
members and replaces free-text diagnoses with the classifier verdict,
``obs-status`` shows the verdict column, and the chaos CI matrix asserts
every injected fault class classifies correctly.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
import traceback
from collections import deque

import numpy as np

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "BUNDLE_SUFFIX",
    "VERDICTS",
    "FlightRecorder",
    "locate_nonfinite",
    "field_statistics",
    "thread_stacks",
    "build_bundle",
    "write_bundle",
    "dump_bundle",
    "load_bundle",
    "validate_bundle",
    "classify_bundle",
    "find_bundles",
    "newest_bundle",
    "diagnose_bundle_file",
]

#: bumped whenever the bundle document layout changes
BUNDLE_SCHEMA_VERSION = 1

#: every diagnostic bundle ends with this suffix
BUNDLE_SUFFIX = ".blackbox.json"

#: the closed verdict vocabulary of :func:`classify_bundle`
VERDICTS = ("nan_origin", "energy_blowup", "cfl_collapse", "worker_death",
            "unknown")

#: default ring capacity (events, not steps: micro + sync + sparse events)
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring buffer of recent step events (always-on, cheap).

    The hot-path entry points (:meth:`record_micro`, :meth:`record_step`)
    append a plain tuple to a ``deque(maxlen=capacity)`` — no dict
    construction, no formatting, no clock reads beyond what the caller
    already holds.  Sparse events (checkpoints, recoveries) go through
    :meth:`record`, which may build a dict: they fire per segment, not
    per step.
    """

    __slots__ = ("capacity", "_ring", "recorded")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        #: total events ever recorded (ring length caps at ``capacity``)
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._ring)

    # -- hot paths -----------------------------------------------------
    def record_micro(self, index, cluster, t_int, dt) -> None:
        """One scheduler micro-step window (cluster id + window position)."""
        self._ring.append(("micro", index, cluster, t_int, dt))
        self.recorded += 1

    def record_step(self, step, t, dt, energy=None, dt_scale=None) -> None:
        """One supervised step/sync sweep with its physics gauges."""
        self._ring.append(("step", step, t, dt, energy, dt_scale))
        self.recorded += 1

    # -- sparse events -------------------------------------------------
    def record(self, kind: str, **fields) -> None:
        """A sparse named event (checkpoint, recovery, resume, ...)."""
        self._ring.append((kind, fields))
        self.recorded += 1

    def subscribe(self, bus) -> None:
        """Record every scheduler micro-step window off a
        :class:`~repro.sched.HookBus` (cluster/window ids in the ring)."""
        ring = self._ring

        def _on_micro(s, ev):
            ring.append(("micro", ev.index, ev.cluster, ev.t_int, ev.dt))
            self.recorded += 1

        bus.on_micro_step(_on_micro)

    # -- dump-side -----------------------------------------------------
    def events(self) -> list[dict]:
        """Ring contents normalized to JSON-ready dicts (oldest first)."""
        out = []
        for item in self._ring:
            kind = item[0]
            if kind == "micro":
                _, index, cluster, t_int, dt = item
                out.append({"kind": "micro", "index": int(index),
                            "cluster": int(cluster), "t_int": int(t_int),
                            "dt": float(dt)})
            elif kind == "step":
                _, step, t, dt, energy, dt_scale = item
                rec = {"kind": "step", "step": int(step), "t": float(t),
                       "dt": None if dt is None else float(dt)}
                if energy is not None:
                    rec["energy"] = float(energy)
                if dt_scale is not None:
                    rec["dt_scale"] = float(dt_scale)
                out.append(rec)
            else:
                fields = item[1] if len(item) > 1 else {}
                rec = {"kind": kind}
                rec.update(fields)
                out.append(rec)
        return out

    def snapshot(self) -> dict:
        return {"capacity": self.capacity, "recorded": self.recorded,
                "events": self.events()}


# ----------------------------------------------------------------------
# NaN-origin localization over the state arrays the watchdog scans
# ----------------------------------------------------------------------
def locate_nonfinite(solver, lts=None) -> dict | None:
    """First non-finite entry across the solver's time-marching arrays.

    Scans the same arrays :meth:`~repro.core.health.Watchdog.check`
    sweeps (:func:`repro.core.health.state_arrays`), finds the first bad
    entry of the first bad field by bisection
    (:func:`repro.core.health.first_nonfinite_index`), and maps the flat
    index back to an element id, the owning partition (when the solver
    runs on the partitioned backend) and the LTS cluster.  Returns
    ``None`` when every array is finite.
    """
    from ..core.health import first_nonfinite_index, state_arrays

    for name, arr in state_arrays(solver):
        flat = first_nonfinite_index(arr)
        if flat is None:
            continue
        a = np.asarray(arr)
        idx = tuple(int(i) for i in np.unravel_index(flat, a.shape)) \
            if a.ndim else (0,)
        finite = np.isfinite(a)
        n_nan = int(np.isnan(a).sum())
        loc = {
            "field": name,
            "flat_index": int(flat),
            "index": list(idx),
            "element": int(idx[0]) if idx else 0,
            "value": str(a.ravel()[flat]),
            "n_nan": n_nan,
            "n_inf": int(a.size - finite.sum()) - n_nan,
            "sim_t": float(getattr(solver, "t", 0.0)),
            "lts_cluster": None,
            "partition": None,
        }
        if name == "Q":
            elem = loc["element"]
            if lts is not None:
                try:
                    loc["lts_cluster"] = int(lts.cluster[elem])
                except (AttributeError, IndexError, TypeError):
                    pass
            plans = getattr(getattr(solver, "backend", None), "plans", None)
            if plans:
                for plan in plans:
                    try:
                        if plan.owned_mask[elem]:
                            loc["partition"] = int(plan.part_id)
                            break
                    except (AttributeError, IndexError, TypeError):
                        break
        return loc
    return None


def field_statistics(solver) -> dict:
    """Per-field summary statistics of every watchdog-scanned array."""
    from ..core.health import state_arrays

    stats = {}
    for name, arr in state_arrays(solver):
        a = np.asarray(arr, dtype=float)
        finite = np.isfinite(a)
        n_nan = int(np.isnan(a).sum())
        cell = {
            "shape": list(a.shape),
            "size": int(a.size),
            "n_nan": n_nan,
            "n_inf": int(a.size - finite.sum()) - n_nan,
        }
        if finite.any():
            vals = a[finite]
            cell.update(min=float(vals.min()), max=float(vals.max()),
                        abs_max=float(np.abs(vals).max()),
                        mean=float(vals.mean()))
        stats[name] = cell
    return stats


def thread_stacks() -> dict:
    """Formatted stacks of every live thread (``sys._current_frames``).

    The dump-time counterpart of the ``faulthandler`` safety net the
    ensemble worker arms at startup: ``faulthandler`` covers native
    crashes the interpreter cannot survive, this covers everything the
    bundle writer *can* still reach.
    """
    import threading

    names = {t.ident: t.name for t in threading.enumerate()}
    current = threading.get_ident()
    stacks = {}
    for tid, frame in sys._current_frames().items():
        stacks[str(tid)] = {
            "name": names.get(tid, f"thread-{tid}"),
            "current": tid == current,
            "frames": [ln.rstrip("\n")
                       for ln in traceback.format_stack(frame)][-20:],
        }
    return stacks


# ----------------------------------------------------------------------
# bundle build / write / load / validate
# ----------------------------------------------------------------------
def _fingerprint(doc: dict) -> str:
    """SHA-256 over the canonical JSON of ``doc`` sans its fingerprint."""
    body = {k: v for k, v in doc.items() if k != "fingerprint"}
    payload = json.dumps(body, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def build_bundle(
    *,
    kind: str,
    reason: str | None = None,
    ring: list | FlightRecorder | None = None,
    solver=None,
    lts=None,
    error: str | None = None,
    failures: list | None = None,
    manifest: dict | None = None,
    context: dict | None = None,
    spans: list | None = None,
    metrics: dict | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble one diagnostic-bundle document (pure, no I/O).

    ``kind`` names the terminal fault path that triggered the dump
    (``recovery`` | ``diverged`` | ``exception`` | ``supervisor``).
    When ``solver`` is given the NaN-origin localization and per-field
    statistics are computed from its live state — call *before* rolling
    the state back.
    """
    if isinstance(ring, FlightRecorder):
        ring_snap = ring.snapshot()
    else:
        ring_snap = {"capacity": None, "recorded": len(ring or []),
                     "events": list(ring or [])}
    doc = {
        "schema": BUNDLE_SCHEMA_VERSION,
        "kind": str(kind),
        "created_unix": time.time(),
        "reason": reason,
        "error": error,
        "failures": list(failures or []),
        "context": dict(context or {}),
        "ring": ring_snap,
        "nan_origin": None,
        "field_stats": {},
        "stacks": thread_stacks(),
        "manifest": manifest,
        "spans": list(spans or []),
        "metrics": metrics,
    }
    if solver is not None:
        try:
            doc["nan_origin"] = locate_nonfinite(solver, lts)
            doc["field_stats"] = field_statistics(solver)
        except Exception as exc:  # forensics must never mask the fault
            doc["forensics_error"] = f"{type(exc).__name__}: {exc}"
    if extra:
        doc.update(extra)
    doc["fingerprint"] = _fingerprint(doc)
    return doc


def write_bundle(path: str, doc: dict, *, state: dict | None = None) -> str:
    """Atomically publish ``doc`` at ``path`` (+ optional npz excerpt).

    ``state`` (a :func:`~repro.io.checkpoint.capture_state` dict) is
    saved next to the JSON as ``<path minus .json>.npz`` and referenced
    from the document *before* fingerprinting, so a bundle and its
    excerpt stay paired.
    """
    if not path.endswith(BUNDLE_SUFFIX):
        raise ValueError(f"bundle path must end with {BUNDLE_SUFFIX!r}")
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    if state is not None:
        npz = path[: -len(".json")] + ".npz"
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp",
                                   prefix=f".{os.path.basename(npz)}."
                                          f"{os.getpid()}.")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(
                    fh, **{k: np.asarray(v) for k, v in state.items()})
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, npz)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        doc["excerpt"] = os.path.basename(npz)
        doc["fingerprint"] = _fingerprint(doc)

    text = json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n"
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp",
                               prefix=f".{os.path.basename(path)}."
                                      f"{os.getpid()}.")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def dump_bundle(path: str, *, state: dict | None = None, **kwargs) -> str:
    """:func:`build_bundle` + :func:`write_bundle` in one call."""
    return write_bundle(path, build_bundle(**kwargs), state=state)


def load_bundle(path: str) -> dict:
    """Read one bundle document (raises ``OSError``/``ValueError``)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bundle is not a JSON object")
    return doc


def validate_bundle(doc) -> list[str]:
    """Structural errors in one bundle document (empty list = valid)."""
    if not isinstance(doc, dict):
        return ["bundle is not a JSON object"]
    errors = []
    if not isinstance(doc.get("schema"), int):
        errors.append("missing integer 'schema'")
    elif doc["schema"] > BUNDLE_SCHEMA_VERSION:
        errors.append(f"schema {doc['schema']} is newer than this tool "
                      f"({BUNDLE_SCHEMA_VERSION})")
    if not isinstance(doc.get("kind"), str):
        errors.append("missing string 'kind'")
    if not isinstance(doc.get("created_unix"), (int, float)):
        errors.append("missing numeric 'created_unix'")
    ring = doc.get("ring")
    if not isinstance(ring, dict) or not isinstance(ring.get("events"), list):
        errors.append("'ring' must be an object with an 'events' list")
    for key in ("failures", "spans"):
        if not isinstance(doc.get(key), list):
            errors.append(f"'{key}' must be a list")
    origin = doc.get("nan_origin")
    if origin is not None and (
            not isinstance(origin, dict)
            or not isinstance(origin.get("field"), str)
            or not isinstance(origin.get("element"), int)):
        errors.append("'nan_origin' must be null or carry field + element")
    fp = doc.get("fingerprint")
    if not isinstance(fp, str):
        errors.append("missing string 'fingerprint'")
    elif fp != _fingerprint(doc):
        errors.append("fingerprint mismatch — bundle was truncated or edited")
    return errors


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
#: substrings that mark a process-level death (supervisor-side strikes)
_DEATH_MARKERS = (
    "killed", "signal", "heartbeat_timeout", "exited with status",
    "corrupt_result", "hang", "worker death", "spawn",
)


def classify_bundle(doc: dict) -> dict:
    """Structured verdict for one bundle: ``{"verdict", "evidence"}``.

    The rules mirror the watchdog's fault taxonomy, most specific first:
    a located non-finite entry beats everything (the other symptoms are
    downstream of it), then the CFL bound, then the energy Lyapunov
    checks; supervisor-side bundles and death markers classify as
    ``worker_death``; anything else is ``unknown``.
    """
    evidence: list[str] = []
    texts: list[str] = []
    for key in ("reason", "error"):
        val = doc.get(key)
        if isinstance(val, str) and val:
            texts.append(val)
    for item in doc.get("failures") or []:
        if isinstance(item, str) and item:
            texts.append(item)

    def verdict(name: str) -> dict:
        return {"verdict": name, "kind": doc.get("kind"),
                "evidence": evidence or texts[:3]}

    origin = doc.get("nan_origin")
    if isinstance(origin, dict) and origin.get("field"):
        where = f"{origin['field']}[{origin.get('element')}]"
        if origin.get("lts_cluster") is not None:
            where += f" (LTS cluster {origin['lts_cluster']}"
            if origin.get("partition") is not None:
                where += f", partition {origin['partition']}"
            where += ")"
        elif origin.get("partition") is not None:
            where += f" (partition {origin['partition']})"
        evidence.append(
            f"first non-finite value {origin.get('value')} at {where}, "
            f"sim t={origin.get('sim_t')}"
        )
        evidence.append(f"{origin.get('n_nan')} NaN / "
                        f"{origin.get('n_inf')} Inf in {origin['field']}")
        return verdict("nan_origin")

    joined = " ".join(texts).lower()
    if "nan" in joined or "non-finite" in joined.replace("nonfinite",
                                                         "non-finite"):
        evidence.extend(t for t in texts if "nan" in t.lower()
                        or "finite" in t.lower())
        return verdict("nan_origin")
    if "cfl" in joined or "admissible" in joined:
        evidence.extend(t for t in texts
                        if "cfl" in t.lower() or "admissible" in t.lower())
        return verdict("cfl_collapse")
    if "energy" in joined:
        evidence.extend(t for t in texts if "energy" in t.lower())
        return verdict("energy_blowup")
    if doc.get("kind") == "supervisor" or any(
            marker in joined for marker in _DEATH_MARKERS):
        evidence.extend(texts[:3])
        return verdict("worker_death")
    if doc.get("kind") == "exception" and texts:
        # an unhandled exception killed the attempt from inside — to the
        # fleet that is a dead worker, with the traceback as evidence
        evidence.extend(texts[:3])
        return verdict("worker_death")
    evidence.extend(texts[:3])
    return verdict("unknown")


# ----------------------------------------------------------------------
# discovery + CLI
# ----------------------------------------------------------------------
def find_bundles(directory: str) -> list[str]:
    """All bundle paths under ``directory``, oldest first (mtime, name)."""
    try:
        names = [n for n in os.listdir(directory)
                 if n.endswith(BUNDLE_SUFFIX)]
    except OSError:
        return []
    paths = [os.path.join(directory, n) for n in names]

    def key(p):
        try:
            return (os.path.getmtime(p), p)
        except OSError:
            return (0.0, p)

    return sorted(paths, key=key)


def newest_bundle(directory: str) -> str | None:
    """Most recent bundle under ``directory`` (``None`` when absent)."""
    paths = find_bundles(directory)
    return paths[-1] if paths else None


def diagnose_bundle_file(path: str, check: bool = False) -> int:
    """CLI driver for ``python -m repro obs-diagnose``; returns exit code.

    Prints the verdict and evidence lines; with ``check`` the bundle is
    schema-validated first and a broken bundle exits non-zero.  A
    directory argument classifies the newest bundle inside it.
    """
    if os.path.isdir(path):
        newest = newest_bundle(path)
        if newest is None:
            print(f"obs-diagnose: {path}: no {BUNDLE_SUFFIX} bundle found",
                  file=sys.stderr)
            return 2
        path = newest
    try:
        doc = load_bundle(path)
    except (OSError, ValueError) as exc:
        print(f"obs-diagnose: {path}: {exc}", file=sys.stderr)
        return 2
    errors = validate_bundle(doc)
    for msg in errors:
        print(f"{path}: {msg}", file=sys.stderr)
    if errors and check:
        print(f"{path}: INVALID ({len(errors)} schema error(s))")
        return 1
    result = classify_bundle(doc)
    ctx = doc.get("context") or {}
    head = f"{path}: verdict {result['verdict']}"
    if ctx.get("member"):
        head += f" [member {ctx['member']}, attempt {ctx.get('attempt')}]"
    print(head)
    print(f"  kind: {doc.get('kind')}  schema: {doc.get('schema')}  "
          f"ring: {len((doc.get('ring') or {}).get('events', []))} event(s)")
    for line in result["evidence"]:
        print(f"  evidence: {line}")
    if not result["evidence"]:
        print("  evidence: (none recorded)")
    if check:
        print(f"{path}: OK")
    return 0
