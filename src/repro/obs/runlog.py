"""Structured JSONL run logs: manifest, heartbeats, recovery events.

A :class:`RunLog` appends one JSON object per line to a log file — the
machine-readable counterpart of a production job's stdout.  Records share
a tiny envelope (``event``, ``seq``, ``wall``, ``run_id``) and each event
type carries a fixed set of required fields (:data:`EVENT_FIELDS`), so a
log can be validated offline (:func:`validate_jsonl`, also exposed as
``tools/check_runlog.py`` and ``python -m repro obs-report --check``).

Events
------
``manifest``
    Written once at run start (and again on every resume — the file is
    opened in append mode, so a kill/resume cycle yields one well-formed
    log with multiple manifests): solver configuration, mesh/material
    fingerprint, execution backend, git revision and environment.
``heartbeat``
    Periodic liveness record: step, simulated time, nominal dt, discrete
    energy and the wall-clock step rate since the previous heartbeat.
``checkpoint`` / ``resume``
    Emitted by :class:`~repro.core.resilience.ResilientRunner` around its
    atomic checkpoint writes and restarts.
``recovery`` / ``diverged``
    The watchdog-trip/rollback events of the resilience supervisor,
    including wall-clock timing, retry counts and — schema v3 — the
    diagnostic-bundle path the black-box flight recorder dumped for the
    failure (``null`` when no bundle directory was configured).
``run_end``
    Final record: step totals, wall time, and the full telemetry
    snapshot (phases + counters) when profiling was enabled.
``metrics``
    Periodic typed-metric snapshot (:meth:`repro.obs.metrics.
    MetricRegistry.compact`): the durable twin of the compact snapshot a
    worker piggybacks on its heartbeat queue messages, so fleet totals
    can be audited against per-member logs after the fact.  Schema v2
    made ``step``/``sim_t``/``metrics`` required (v1 had no required
    fields; nothing emitted the event before v2).
``member_start`` / ``member_retry`` / ``member_quarantined`` /
``member_end`` / ``ensemble_summary``
    Supervisor-level events of the multi-process ensemble driver
    (:mod:`repro.ensemble`): worker launches with pid and attempt number,
    retry decisions (reason, backoff delay, resume/dt-scale escalation),
    quarantine with the full attempt history as a diagnosis, per-member
    completion status, and the final fleet summary.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import threading
import time
import uuid

import numpy as np

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_FIELDS",
    "RunLog",
    "run_manifest",
    "validate_record",
    "validate_jsonl",
]

#: Bumped whenever the record envelope or required fields change.
#: v2: the ``metrics`` event gained required fields (step, sim_t, metrics).
#: v3: ``recovery``/``diverged`` gained a required ``bundle`` field (the
#: diagnostic-bundle path the flight recorder dumped, or null) and
#: ``member_quarantined`` gained required ``bundle`` + ``verdict`` (the
#: black-box classifier's structured verdict replacing free text).
SCHEMA_VERSION = 3

#: Required payload fields per event type (beyond the envelope fields
#: ``event``/``seq``/``wall``/``run_id``, required on every record).
EVENT_FIELDS: dict[str, tuple] = {
    "manifest": ("schema", "config", "env", "git_rev", "resumed"),
    "heartbeat": ("step", "sim_t", "dt", "energy", "wall_rate"),
    "checkpoint": ("path", "step", "sim_t"),
    "resume": ("path", "step", "sim_t"),
    "recovery": ("step", "sim_t", "attempt", "max_retries", "dt_scale",
                 "wall_s", "reason", "bundle"),
    "diverged": ("step", "sim_t", "attempts", "dt_scale", "wall_s",
                 "bundle"),
    "run_end": ("steps", "wall_s", "phases", "counters"),
    "metrics": ("step", "sim_t", "metrics"),
    "member_start": ("member", "attempt", "scenario", "pid"),
    "member_retry": ("member", "attempt", "reason", "delay_s", "resume",
                     "dt_scale"),
    "member_quarantined": ("member", "attempts", "diagnosis", "verdict",
                           "bundle"),
    "member_end": ("member", "status", "attempts", "wall_s"),
    "ensemble_summary": ("members", "ok", "recovered", "quarantined",
                         "wall_s"),
}

_ENVELOPE = ("event", "seq", "wall", "run_id")


def _jsonable(obj):
    """Coerce numpy scalars/arrays (and anything else) to JSON types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


class RunLog:
    """Append-only, thread-safe JSONL event sink.

    The file is always opened in append mode so resumed runs continue the
    same log; every record is flushed on write so an abrupt kill loses at
    most the record being written (and never corrupts earlier lines).
    With ``durable=True`` every record is additionally ``fsync``'d to
    disk — the crash-safe mode ensemble workers use, where a ``SIGKILL``
    may arrive at any instruction and the supervisor reads the log of the
    dead process to diagnose it.
    """

    def __init__(self, path: str, run_id: str | None = None,
                 durable: bool = False):
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.path = path
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self.durable = bool(durable)
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0

    def emit(self, event: str, **fields) -> None:
        """Append one record; unknown event types are a programming error."""
        if event not in EVENT_FIELDS:
            raise ValueError(
                f"unknown run-log event {event!r} "
                f"(known: {', '.join(sorted(EVENT_FIELDS))})"
            )
        with self._lock:
            if self._fh.closed:
                return
            rec = {"event": event, "seq": self._seq, "wall": time.time(),
                   "run_id": self.run_id}
            rec.update(fields)
            self._fh.write(json.dumps(_jsonable(rec)) + "\n")
            self._fh.flush()
            if self.durable:
                os.fsync(self._fh.fileno())
            self._seq += 1

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


# ----------------------------------------------------------------------
def _git_rev() -> str:
    """Best-effort git revision of the source tree (``"unknown"`` off-repo)."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, capture_output=True,
            text=True, timeout=5,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def run_manifest(solver=None, config: dict | None = None,
                 argv=None, resumed: bool = False) -> dict:
    """Manifest payload: everything needed to identify a run after the fact.

    Covers the caller's config dict, the discrete-problem fingerprint (the
    same digest checkpoints are keyed by), backend/worker placement, git
    revision and the runtime environment.
    """
    man = {
        "schema": SCHEMA_VERSION,
        "config": dict(config or {}),
        "argv": list(sys.argv if argv is None else argv),
        "git_rev": _git_rev(),
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "resumed": bool(resumed),
    }
    if solver is not None:
        from ..io.checkpoint import fingerprint

        backend = getattr(solver, "backend", None)
        man.update(
            order=int(solver.order),
            n_elements=int(solver.mesh.n_elements),
            n_dof=int(solver.n_dof),
            dt=float(solver.dt),
            fingerprint=fingerprint(solver),
            backend=backend.describe() if backend is not None else "none",
            workers=int(getattr(backend, "workers", 1)),
            kernel_variant=getattr(solver.op, "kernel_variant", "batched"),
        )
    return man


# ----------------------------------------------------------------------
def validate_record(rec) -> list[str]:
    """Schema errors of one decoded record (empty list = valid)."""
    if not isinstance(rec, dict):
        return ["record is not a JSON object"]
    errors = []
    for key in _ENVELOPE:
        if key not in rec:
            errors.append(f"missing envelope field {key!r}")
    event = rec.get("event")
    if event is not None:
        if event not in EVENT_FIELDS:
            errors.append(f"unknown event type {event!r}")
        else:
            for field in EVENT_FIELDS[event]:
                if field not in rec:
                    errors.append(f"{event}: missing required field {field!r}")
    if "seq" in rec and not isinstance(rec["seq"], int):
        errors.append("seq is not an integer")
    if "wall" in rec and not isinstance(rec["wall"], (int, float)):
        errors.append("wall is not a number")
    return errors


def validate_jsonl(path: str) -> dict:
    """Validate a whole run log.

    Returns ``{"records": n, "events": {event: count}, "errors":
    [(lineno, message), ...], "truncated_tail": bool}``; a log is valid
    iff ``errors`` is empty.  A *torn final line* — the one partial record
    an abrupt kill can leave, recognizable because the file does not end
    in a newline — is an expected crash artifact, not corruption: it is
    reported as ``truncated_tail`` instead of failing the whole file.
    """
    events: dict[str, int] = {}
    errors: list[tuple[int, str]] = []
    n = 0
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    torn = bool(raw) and not raw.endswith("\n")
    truncated_tail = False
    lines = raw.splitlines()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        n += 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            if torn and lineno == len(lines):
                truncated_tail = True
                n -= 1
                continue
            errors.append((lineno, f"invalid JSON: {exc}"))
            continue
        for msg in validate_record(rec):
            errors.append((lineno, msg))
        if isinstance(rec, dict) and isinstance(rec.get("event"), str):
            events[rec["event"]] = events.get(rec["event"], 0) + 1
    return {"records": n, "events": events, "errors": errors,
            "truncated_tail": truncated_tail}
