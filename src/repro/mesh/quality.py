"""Mesh quality metrics and statistics.

Production meshes of the paper's kind (518M elements over real bathymetry)
live or die by element quality: sliver tets destroy the CFL timestep (they
end up dictating dt_min and the LTS cluster structure, cf. Fig. 4).  These
diagnostics quantify that before a run is attempted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MeshQuality", "assess", "timestep_report"]


@dataclass(frozen=True)
class MeshQuality:
    """Summary statistics of a tetrahedral mesh."""

    n_elements: int
    n_vertices: int
    volume_total: float
    volume_min: float
    edge_min: float
    edge_max: float
    #: radius-ratio quality 3 r_in / r_circ in (0, 1]; 1 = regular tet
    radius_ratio_min: float
    radius_ratio_mean: float
    insphere_min: float
    insphere_max: float

    @property
    def worst_is_sliver(self) -> bool:
        return self.radius_ratio_min < 0.05


def _circumradius(v: np.ndarray) -> np.ndarray:
    """Circumradius of tets given vertex array ``(ne, 4, 3)``."""
    a = v[:, 1] - v[:, 0]
    b = v[:, 2] - v[:, 0]
    c = v[:, 3] - v[:, 0]
    # circumcenter from |x - v0|^2 = |x - vi|^2
    A = np.stack([a, b, c], axis=1)  # (ne, 3, 3)
    rhs = 0.5 * np.stack(
        [(a * a).sum(1), (b * b).sum(1), (c * c).sum(1)], axis=1
    )
    x = np.linalg.solve(A, rhs[:, :, None])[:, :, 0]
    return np.linalg.norm(x, axis=1)


def assess(mesh) -> MeshQuality:
    """Compute quality statistics of a :class:`~repro.mesh.tetmesh.TetMesh`."""
    v = mesh.vertices[mesh.tets]
    pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    edges = np.stack([np.linalg.norm(v[:, i] - v[:, j], axis=1) for i, j in pairs], axis=1)
    r_in = mesh.insphere_diameter / 2.0
    r_circ = _circumradius(v)
    ratio = 3.0 * r_in / r_circ
    return MeshQuality(
        n_elements=mesh.n_elements,
        n_vertices=mesh.n_vertices,
        volume_total=float(mesh.volumes.sum()),
        volume_min=float(mesh.volumes.min()),
        edge_min=float(edges.min()),
        edge_max=float(edges.max()),
        radius_ratio_min=float(ratio.min()),
        radius_ratio_mean=float(ratio.mean()),
        insphere_min=float(mesh.insphere_diameter.min()),
        insphere_max=float(mesh.insphere_diameter.max()),
    )


def timestep_report(mesh, order: int, rate: int = 2) -> str:
    """Human-readable dt / LTS structure report for a mesh.

    Combines the CFL distribution with the would-be LTS clustering — the
    pre-flight check for the Fig. 4 structure.
    """
    from ..core.cfl import element_timesteps
    from ..core.lts import cluster_elements, lts_statistics

    dts = element_timesteps(mesh, order)
    cluster, dt_min = cluster_elements(mesh, order, rate=rate)
    st = lts_statistics(cluster, rate)
    lines = [
        f"elements: {mesh.n_elements}, order {order}",
        f"dt: min {dts.min():.3e}  median {np.median(dts):.3e}  max {dts.max():.3e}"
        f"  (span {dts.max() / dts.min():.1f}x)",
        f"LTS clusters ({rate}-rate): "
        + ", ".join(f"{f}dt x {n}" for f, n in zip(st["dt_factors"], st["counts"])),
        f"LTS update reduction vs GTS: {st['speedup']:.2f}x",
    ]
    return "\n".join(lines)
