"""Conforming unstructured tetrahedral meshes.

The mesh owns everything geometric the ADER-DG solver needs:

* affine reference maps (Jacobians, inverses, determinants),
* insphere diameters for the CFL condition (paper Eq. 27),
* a face table built by vectorized vertex-triple matching, with each
  interior face classified into one of the 4 x 4 x 6 (minus local face,
  plus local face, vertex permutation) orientation classes used to pick the
  precomputed neighbor trace operators,
* boundary faces with user-assigned :class:`~repro.core.riemann.FaceKind`
  tags, and interior faces optionally promoted to dynamic-rupture faults,
* per-element material assignment,
* the dual graph (element adjacency) consumed by the partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.basis import FACE_PERMUTATIONS, TET_FACES
from ..core.materials import Material
from ..core.riemann import FaceKind

__all__ = ["TetMesh", "InteriorFaces", "BoundaryFaces"]


@dataclass
class InteriorFaces:
    """Struct-of-arrays description of interior (two-sided) faces."""

    minus_elem: np.ndarray  # (nf,) element index on the minus side
    plus_elem: np.ndarray  # (nf,)
    minus_face: np.ndarray  # (nf,) local face id in the minus element
    plus_face: np.ndarray  # (nf,) local face id in the plus element
    perm: np.ndarray  # (nf,) index into FACE_PERMUTATIONS
    normal: np.ndarray  # (nf, 3) unit normal pointing from minus to plus
    area: np.ndarray  # (nf,)
    centroid: np.ndarray  # (nf, 3)
    is_fault: np.ndarray = None  # (nf,) bool

    def __post_init__(self):
        if self.is_fault is None:
            self.is_fault = np.zeros(len(self.minus_elem), dtype=bool)

    def __len__(self) -> int:
        return len(self.minus_elem)


@dataclass
class BoundaryFaces:
    """Struct-of-arrays description of boundary (one-sided) faces."""

    elem: np.ndarray  # (nf,)
    face: np.ndarray  # (nf,) local face id
    kind: np.ndarray  # (nf,) int-coded FaceKind
    normal: np.ndarray  # (nf, 3) outward unit normal
    area: np.ndarray  # (nf,)
    centroid: np.ndarray  # (nf, 3)

    def __len__(self) -> int:
        return len(self.elem)


@dataclass
class TetMesh:
    """An unstructured conforming tetrahedral mesh with materials.

    Parameters
    ----------
    vertices:
        ``(nv, 3)`` vertex coordinates.
    tets:
        ``(ne, 4)`` vertex indices.  Negative-orientation tets are repaired
        by swapping two vertices.
    materials:
        Material table.
    material_ids:
        ``(ne,)`` index into ``materials`` (default all 0).
    """

    vertices: np.ndarray
    tets: np.ndarray
    materials: list[Material] = field(default_factory=list)
    material_ids: np.ndarray = None

    # filled by __post_init__
    jac: np.ndarray = field(init=False, repr=False, default=None)
    inv_jac: np.ndarray = field(init=False, repr=False, default=None)
    det_jac: np.ndarray = field(init=False, repr=False, default=None)
    volumes: np.ndarray = field(init=False, repr=False, default=None)
    centroids: np.ndarray = field(init=False, repr=False, default=None)
    insphere_diameter: np.ndarray = field(init=False, repr=False, default=None)
    interior: InteriorFaces = field(init=False, repr=False, default=None)
    boundary: BoundaryFaces = field(init=False, repr=False, default=None)

    def __post_init__(self):
        self.vertices = np.asarray(self.vertices, dtype=float)
        self.tets = np.asarray(self.tets, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must be (nv, 3)")
        if self.tets.ndim != 2 or self.tets.shape[1] != 4:
            raise ValueError("tets must be (ne, 4)")
        if self.tets.size and (self.tets.min() < 0 or self.tets.max() >= len(self.vertices)):
            raise ValueError("tet vertex index out of range")
        if not self.materials:
            raise ValueError("at least one material is required")
        if self.material_ids is None:
            self.material_ids = np.zeros(len(self.tets), dtype=np.int64)
        else:
            self.material_ids = np.asarray(self.material_ids, dtype=np.int64)
            if self.material_ids.shape != (len(self.tets),):
                raise ValueError("material_ids must have one entry per tet")
            if self.material_ids.size and (
                self.material_ids.min() < 0 or self.material_ids.max() >= len(self.materials)
            ):
                raise ValueError("material id out of range")
        self._fix_orientation()
        self._compute_geometry()
        self._build_faces()

    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        return len(self.tets)

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    def element_material(self, e: int) -> Material:
        return self.materials[self.material_ids[e]]

    @property
    def is_acoustic_elem(self) -> np.ndarray:
        """Boolean mask of acoustic (ocean) elements."""
        acoustic = np.array([m.is_acoustic for m in self.materials])
        return acoustic[self.material_ids]

    # ------------------------------------------------------------------
    def _fix_orientation(self) -> None:
        v = self.vertices[self.tets]
        d = np.linalg.det(v[:, 1:] - v[:, :1])
        flipped = d < 0
        if flipped.any():
            self.tets[flipped, 2], self.tets[flipped, 3] = (
                self.tets[flipped, 3].copy(),
                self.tets[flipped, 2].copy(),
            )
        v = self.vertices[self.tets]
        d = np.linalg.det(v[:, 1:] - v[:, :1])
        if (np.abs(d) < 1e-300).any():
            raise ValueError("mesh contains degenerate (zero-volume) tetrahedra")

    def _compute_geometry(self) -> None:
        v = self.vertices[self.tets]  # (ne, 4, 3)
        # affine map x = v0 + J xi, J columns are edge vectors
        self.jac = np.stack([v[:, 1] - v[:, 0], v[:, 2] - v[:, 0], v[:, 3] - v[:, 0]], axis=2)
        self.det_jac = np.linalg.det(self.jac)
        self.inv_jac = np.linalg.inv(self.jac)
        self.volumes = self.det_jac / 6.0
        self.centroids = v.mean(axis=1)
        # insphere radius r = 3V / (total face area)
        areas = np.zeros(len(self.tets))
        for a, b, c in TET_FACES:
            e1 = v[:, b] - v[:, a]
            e2 = v[:, c] - v[:, a]
            areas += 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)
        self.insphere_diameter = 6.0 * self.volumes / areas

    def _build_faces(self) -> None:
        ne = self.n_elements
        # all (elem, local_face) pairs with their (ordered) global vertices
        elems = np.repeat(np.arange(ne), 4)
        local = np.tile(np.arange(4), ne)
        face_verts = np.empty((ne * 4, 3), dtype=np.int64)
        for f, idx in enumerate(TET_FACES):
            face_verts[f::4] = self.tets[:, list(idx)]
        key = np.sort(face_verts, axis=1)
        order = np.lexsort((key[:, 2], key[:, 1], key[:, 0]))
        key_sorted = key[order]
        same = np.all(key_sorted[:-1] == key_sorted[1:], axis=1)
        # sanity: no vertex triple may appear more than twice
        if same.size >= 2 and np.any(same[:-1] & same[1:]):
            raise ValueError("non-manifold mesh: a face is shared by >2 tets")

        pair_first = np.flatnonzero(same)
        is_paired = np.zeros(ne * 4, dtype=bool)
        is_paired[pair_first] = True
        is_paired[pair_first + 1] = True

        i_minus = order[pair_first]
        i_plus = order[pair_first + 1]
        self.interior = self._make_interior(elems, local, face_verts, i_minus, i_plus)

        i_bnd = order[np.flatnonzero(~is_paired)]
        self.boundary = self._make_boundary(elems, local, i_bnd)

    def _face_geometry(self, elem_idx, local_idx):
        """Outward normal, area and centroid of faces given by flat indices."""
        v = self.vertices[self.tets[elem_idx]]
        faces = np.array(TET_FACES)
        tri = faces[local_idx]  # (nf, 3) local vertex ids
        a = np.take_along_axis(v, tri[:, 0][:, None, None].repeat(3, 2), axis=1)[:, 0]
        b = np.take_along_axis(v, tri[:, 1][:, None, None].repeat(3, 2), axis=1)[:, 0]
        c = np.take_along_axis(v, tri[:, 2][:, None, None].repeat(3, 2), axis=1)[:, 0]
        cr = np.cross(b - a, c - a)
        nrm = np.linalg.norm(cr, axis=1)
        normal = cr / nrm[:, None]
        area = 0.5 * nrm
        centroid = (a + b + c) / 3.0
        return normal, area, centroid

    def _make_interior(self, elems, local, face_verts, i_minus, i_plus) -> InteriorFaces:
        minus_elem = elems[i_minus]
        plus_elem = elems[i_plus]
        minus_face = local[i_minus]
        plus_face = local[i_plus]
        g = face_verts[i_minus]  # minus canonical ordering
        h = face_verts[i_plus]  # plus canonical ordering
        # permutation p with h[perm[k]] == g[k]
        perm = np.full(len(i_minus), -1, dtype=np.int64)
        for p, pi in enumerate(FACE_PERMUTATIONS):
            match = (
                (h[:, pi[0]] == g[:, 0]) & (h[:, pi[1]] == g[:, 1]) & (h[:, pi[2]] == g[:, 2])
            )
            perm[match] = p
        if (perm < 0).any():
            raise ValueError("face matching failed (inconsistent mesh)")
        normal, area, centroid = self._face_geometry(minus_elem, minus_face)
        return InteriorFaces(
            minus_elem=minus_elem,
            plus_elem=plus_elem,
            minus_face=minus_face,
            plus_face=plus_face,
            perm=perm,
            normal=normal,
            area=area,
            centroid=centroid,
        )

    def _make_boundary(self, elems, local, i_bnd) -> BoundaryFaces:
        elem = elems[i_bnd]
        face = local[i_bnd]
        normal, area, centroid = self._face_geometry(elem, face)
        kind = np.full(len(i_bnd), FaceKind.FREE_SURFACE.value, dtype=np.int64)
        return BoundaryFaces(
            elem=elem, face=face, kind=kind, normal=normal, area=area, centroid=centroid
        )

    # ------------------------------------------------------------------
    def tag_boundary(self, tagger) -> None:
        """Assign boundary conditions.

        ``tagger(centroids, normals) -> array of FaceKind (or int codes)``
        evaluated on all boundary faces at once.
        """
        tags = tagger(self.boundary.centroid, self.boundary.normal)
        tags = np.asarray(
            [t.value if isinstance(t, FaceKind) else int(t) for t in np.atleast_1d(tags)]
        )
        if tags.shape != (len(self.boundary),):
            raise ValueError("tagger must return one tag per boundary face")
        self.boundary.kind = tags

    def mark_fault(self, predicate) -> int:
        """Promote interior faces to dynamic-rupture fault faces.

        ``predicate(centroids, normals) -> bool mask`` over interior faces.
        Returns the number of fault faces marked.
        """
        mask = np.asarray(predicate(self.interior.centroid, self.interior.normal), dtype=bool)
        if mask.shape != (len(self.interior),):
            raise ValueError("predicate must return one flag per interior face")
        self.interior.is_fault = self.interior.is_fault | mask
        return int(mask.sum())

    # ------------------------------------------------------------------
    def glue_periodic(self, translation: np.ndarray, tol: float = 1e-8) -> int:
        """Glue boundary faces across a periodic translation vector.

        Every boundary face whose translate by ``translation`` coincides with
        another boundary face is converted into an interior face (the pair is
        removed from the boundary table).  Used by verification setups that
        need exact plane-wave solutions.  Returns the number of glued pairs.
        """
        t = np.asarray(translation, dtype=float)
        bnd = self.boundary
        scale = max(np.abs(self.vertices).max(), 1.0)
        key_of = {}
        faces = np.array(TET_FACES)

        def face_positions(e, f):
            tri = faces[f]
            return self.vertices[self.tets[e][tri]]

        # minus side: outward normal along +t
        tn = t / np.linalg.norm(t)
        along = bnd.normal @ tn
        minus_ids = np.flatnonzero(along > 0.99)
        plus_ids = np.flatnonzero(along < -0.99)
        for bi in plus_ids:
            pos = face_positions(bnd.elem[bi], bnd.face[bi])
            key = tuple(sorted(tuple(np.round(p / (tol * scale)).astype(np.int64)) for p in pos))
            key_of[key] = bi

        pairs = []
        for bi in minus_ids:
            pos = face_positions(bnd.elem[bi], bnd.face[bi]) - t
            key = tuple(sorted(tuple(np.round(p / (tol * scale)).astype(np.int64)) for p in pos))
            bj = key_of.get(key)
            if bj is not None:
                pairs.append((bi, bj))

        if not pairs:
            return 0

        new_rows = {k: [] for k in ("minus_elem", "plus_elem", "minus_face", "plus_face", "perm")}
        drop = np.zeros(len(bnd), dtype=bool)
        geom_n, geom_a, geom_c = [], [], []
        for bi, bj in pairs:
            em, fm = int(bnd.elem[bi]), int(bnd.face[bi])
            ep, fp = int(bnd.elem[bj]), int(bnd.face[bj])
            g = face_positions(em, fm) - t  # minus canonical positions, shifted
            h = face_positions(ep, fp)
            perm = -1
            for p, pi in enumerate(FACE_PERMUTATIONS):
                if all(np.allclose(h[pi[k]], g[k], atol=tol * scale) for k in range(3)):
                    perm = p
                    break
            if perm < 0:
                raise ValueError("periodic face matching failed (non-matching grids)")
            new_rows["minus_elem"].append(em)
            new_rows["plus_elem"].append(ep)
            new_rows["minus_face"].append(fm)
            new_rows["plus_face"].append(fp)
            new_rows["perm"].append(perm)
            geom_n.append(bnd.normal[bi])
            geom_a.append(bnd.area[bi])
            geom_c.append(bnd.centroid[bi])
            drop[bi] = True
            drop[bj] = True

        itf = self.interior
        self.interior = InteriorFaces(
            minus_elem=np.concatenate([itf.minus_elem, new_rows["minus_elem"]]).astype(np.int64),
            plus_elem=np.concatenate([itf.plus_elem, new_rows["plus_elem"]]).astype(np.int64),
            minus_face=np.concatenate([itf.minus_face, new_rows["minus_face"]]).astype(np.int64),
            plus_face=np.concatenate([itf.plus_face, new_rows["plus_face"]]).astype(np.int64),
            perm=np.concatenate([itf.perm, new_rows["perm"]]).astype(np.int64),
            normal=np.vstack([itf.normal, geom_n]),
            area=np.concatenate([itf.area, geom_a]),
            centroid=np.vstack([itf.centroid, geom_c]),
            is_fault=np.concatenate([itf.is_fault, np.zeros(len(pairs), dtype=bool)]),
        )
        keep = ~drop
        self.boundary = BoundaryFaces(
            elem=bnd.elem[keep],
            face=bnd.face[keep],
            kind=bnd.kind[keep],
            normal=bnd.normal[keep],
            area=bnd.area[keep],
            centroid=bnd.centroid[keep],
        )
        return len(pairs)

    # ------------------------------------------------------------------
    def dual_graph_edges(self) -> np.ndarray:
        """``(nf, 2)`` element index pairs sharing a face (the dual graph)."""
        return np.column_stack([self.interior.minus_elem, self.interior.plus_elem])

    def map_points(self, elem: np.ndarray, ref_points: np.ndarray) -> np.ndarray:
        """Map reference-tet points to physical space for elements ``elem``.

        Returns ``(len(elem), npts, 3)``.
        """
        v0 = self.vertices[self.tets[elem, 0]]
        return v0[:, None, :] + np.einsum("eij,pj->epi", self.jac[elem], ref_points)

    def locate(self, points: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Find the element containing each point (brute force; small meshes).

        Returns element indices, ``-1`` where a point is outside the mesh.
        """
        points = np.atleast_2d(points)
        out = np.full(len(points), -1, dtype=np.int64)
        for i, x in enumerate(points):
            xi = np.einsum("eij,ej->ei", self.inv_jac, x[None] - self.vertices[self.tets[:, 0]])
            inside = (
                (xi[:, 0] >= -tol)
                & (xi[:, 1] >= -tol)
                & (xi[:, 2] >= -tol)
                & (xi.sum(axis=1) <= 1 + tol)
            )
            hits = np.flatnonzero(inside)
            if hits.size:
                out[i] = hits[0]
        return out

    def reference_coords(self, elem: int, x: np.ndarray) -> np.ndarray:
        """Reference coordinates of physical point(s) ``x`` in element ``elem``."""
        x = np.atleast_2d(x)
        return (self.inv_jac[elem] @ (x - self.vertices[self.tets[elem, 0]]).T).T
