"""Tetrahedral mesh generators.

All generators triangulate a (possibly graded / vertically warped)
structured hexahedral lattice with the six-tet Kuhn subdivision, which is
conforming across cells by construction.  Vertical warping of vertex
columns ("terrain-following" coordinates) lets the element layer interface
conform exactly to a piecewise-linear seafloor, which is how we substitute
the paper's boundary-conforming unstructured meshes over BATNAS bathymetry.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..core.materials import Material
from .tetmesh import TetMesh

__all__ = [
    "box_mesh",
    "layered_ocean_mesh",
    "bathymetry_mesh",
    "KUHN_TETS",
]

# Kuhn (Freudenthal) subdivision of the unit cube into 6 tets sharing the
# main diagonal (0,0,0)-(1,1,1).  Corners are indexed by binary (ix, iy, iz)
# -> ix*4 + iy*2 + iz.  Each tet walks the diagonal one axis at a time; the
# 6 axis orders give the 6 tets.
_AXIS_BIT = (4, 2, 1)  # x, y, z
KUHN_TETS = []
for order in ((0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0)):
    corner = 0
    tet = [corner]
    for ax in order:
        corner += _AXIS_BIT[ax]
        tet.append(corner)
    KUHN_TETS.append(tuple(tet))
KUHN_TETS = tuple(KUHN_TETS)


def _as_coords(spec, lo=None, hi=None) -> np.ndarray:
    if isinstance(spec, (int, np.integer)):
        if lo is None or hi is None:
            raise ValueError("bounds required when passing cell counts")
        return np.linspace(lo, hi, int(spec) + 1)
    arr = np.asarray(spec, dtype=float)
    if arr.ndim != 1 or len(arr) < 2 or np.any(np.diff(arr) <= 0):
        raise ValueError("coordinate arrays must be strictly increasing with >= 2 entries")
    return arr


def _lattice(xs, ys, zs):
    nx, ny, nz = len(xs) - 1, len(ys) - 1, len(zs) - 1
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")
    verts = np.column_stack([X.ravel(), Y.ravel(), Z.ravel()])

    def vid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    return nx, ny, nz, verts, vid


def _cells_to_tets(nx, ny, nz, vid):
    I, J, K = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    I, J, K = I.ravel(), J.ravel(), K.ravel()
    corner_ids = np.empty((len(I), 8), dtype=np.int64)
    for c in range(8):
        di, dj, dk = (c >> 2) & 1, (c >> 1) & 1, c & 1
        corner_ids[:, c] = vid(I + di, J + dj, K + dk)
    tets = np.concatenate([corner_ids[:, list(t)] for t in KUHN_TETS], axis=0)
    # cell index of each tet (6 blocks of ncells)
    cell_of_tet = np.tile(np.arange(len(I)), len(KUHN_TETS))
    return tets, cell_of_tet


def box_mesh(
    xs,
    ys,
    zs,
    materials: Sequence[Material],
    material_id: Callable[[np.ndarray], np.ndarray] | None = None,
    warp: Callable[[np.ndarray], np.ndarray] | None = None,
) -> TetMesh:
    """Kuhn-subdivided box mesh.

    Parameters
    ----------
    xs, ys, zs:
        Strictly increasing coordinate arrays (cell boundaries).
    materials:
        Material table of the mesh.
    material_id:
        ``f(centroids) -> (ntets,) int`` assigning material per element
        (default: all 0).
    warp:
        Optional vertex transform ``f(vertices) -> vertices`` applied before
        triangulation bookkeeping (e.g. terrain following).  Must preserve
        cell topology (no folding).
    """
    xs, ys, zs = _as_coords(xs), _as_coords(ys), _as_coords(zs)
    nx, ny, nz, verts, vid = _lattice(xs, ys, zs)
    if warp is not None:
        verts = np.asarray(warp(verts), dtype=float)
        if verts.shape != ((nx + 1) * (ny + 1) * (nz + 1), 3):
            raise ValueError("warp must preserve the vertex array shape")
    tets, _ = _cells_to_tets(nx, ny, nz, vid)
    if material_id is None:
        ids = np.zeros(len(tets), dtype=np.int64)
    else:
        centroids = verts[tets].mean(axis=1)
        ids = np.asarray(material_id(centroids), dtype=np.int64)
    return TetMesh(vertices=verts, tets=tets, materials=list(materials), material_ids=ids)


def layered_ocean_mesh(
    xs,
    ys,
    zs_earth,
    zs_ocean,
    earth: Material,
    ocean: Material,
) -> TetMesh:
    """Flat-layered ocean-over-Earth mesh (paper Sec. 6.1 geometry).

    The Earth occupies ``[zs_earth[0], 0]`` discretized by ``zs_earth``
    (which must end at the seafloor ``zs_ocean[0]``), the ocean occupies
    ``[zs_ocean[0], zs_ocean[-1]]`` with the sea surface at ``zs_ocean[-1]``
    (conventionally z = 0).
    """
    zs_earth = _as_coords(zs_earth)
    zs_ocean = _as_coords(zs_ocean)
    if abs(zs_earth[-1] - zs_ocean[0]) > 1e-9 * max(1.0, abs(zs_ocean[0])):
        raise ValueError("earth column must end exactly at the seafloor")
    zs = np.concatenate([zs_earth, zs_ocean[1:]])
    seafloor = zs_ocean[0]

    def material_id(centroids):
        return (centroids[:, 2] > seafloor).astype(np.int64)

    return box_mesh(xs, ys, zs, materials=[earth, ocean], material_id=material_id)


def bathymetry_mesh(
    xs,
    ys,
    bathymetry: Callable[[np.ndarray, np.ndarray], np.ndarray],
    n_ocean_layers: int,
    zs_earth,
    earth: Material,
    ocean: Material,
    min_depth: float = 1.0,
    sea_level: float = 0.0,
) -> TetMesh:
    """Terrain-following mesh over variable bathymetry (Palu-like setups).

    The water column between the seafloor ``z = b(x, y) < 0`` and the sea
    surface ``z = sea_level`` is discretized with ``n_ocean_layers`` layers
    that follow the seafloor; the Earth below is discretized by the
    (unwarped at the bottom, fully warped at the seafloor) column ``zs_earth``
    whose last entry is the *nominal* seafloor level.  ``min_depth`` clips
    the water depth so columns never degenerate near the coastline — the
    same role the wetting threshold plays in the paper's shallow bay.
    """
    xs, ys = _as_coords(xs), _as_coords(ys)
    zs_earth = _as_coords(zs_earth)
    z_floor_nominal = zs_earth[-1]
    z_bottom = zs_earth[0]
    if z_floor_nominal >= sea_level:
        raise ValueError("nominal seafloor must be below sea level")
    n_e = len(zs_earth) - 1
    zs_ocean_nominal = np.linspace(z_floor_nominal, sea_level, n_ocean_layers + 1)
    zs = np.concatenate([zs_earth, zs_ocean_nominal[1:]])

    def warp(verts):
        v = verts.copy()
        b = np.minimum(bathymetry(v[:, 0], v[:, 1]), sea_level - min_depth)
        z = v[:, 2]
        in_ocean = z >= z_floor_nominal - 1e-12
        # ocean part: linearly squash [z_floor_nominal, sea_level] -> [b, sea_level]
        frac_o = (z - z_floor_nominal) / (sea_level - z_floor_nominal)
        z_new_o = b + frac_o * (sea_level - b)
        # earth part: stretch [z_bottom, z_floor_nominal] -> [z_bottom, b]
        frac_e = (z - z_bottom) / (z_floor_nominal - z_bottom)
        z_new_e = z_bottom + frac_e * (b - z_bottom)
        v[:, 2] = np.where(in_ocean, z_new_o, z_new_e)
        return v

    seafloor_index = n_e  # layer index of the seafloor in the z column

    nx, ny, nz, verts, vid = _lattice(xs, ys, zs)
    verts = warp(verts)
    tets, cell_of_tet = _cells_to_tets(nx, ny, nz, vid)
    # material by structured layer index (robust even for warped cells);
    # cells are enumerated with k (the z index) varying fastest
    k_of_cell = np.arange(nx * ny * nz) % nz
    ids = (k_of_cell[cell_of_tet] >= seafloor_index).astype(np.int64)
    return TetMesh(vertices=verts, tets=tets, materials=[earth, ocean], material_ids=ids)
