"""1D grading / spacing utilities for statically adapted meshes.

The paper's meshes are unstructured with strong static adaptivity (200 m at
the faults, 50 m in the water layer, 5000 m far field).  We reproduce the
*sizing* behaviour with graded structured-to-tet meshes: these helpers build
monotone coordinate arrays whose local spacing follows a target size field,
which is what drives the wide LTS timestep distribution of Fig. 4.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform_spacing", "geometric_spacing", "refined_spacing"]


def uniform_spacing(lo: float, hi: float, n: int) -> np.ndarray:
    """``n`` cells between ``lo`` and ``hi`` (n+1 coordinates)."""
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    if n < 1:
        raise ValueError("need at least one cell")
    return np.linspace(lo, hi, n + 1)


def geometric_spacing(lo: float, hi: float, h0: float, ratio: float) -> np.ndarray:
    """Cells growing geometrically from size ``h0`` at ``lo`` by ``ratio``.

    The last cell is stretched to land exactly on ``hi``.
    """
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    if h0 <= 0 or ratio < 1.0:
        raise ValueError("h0 must be positive and ratio >= 1")
    xs = [lo]
    h = h0
    while xs[-1] + h < hi - 1e-12 * (hi - lo):
        xs.append(xs[-1] + h)
        h *= ratio
    xs.append(hi)
    # avoid a final sliver shorter than half the previous cell
    if len(xs) >= 3 and (xs[-1] - xs[-2]) < 0.5 * (xs[-2] - xs[-3]):
        xs.pop(-2)
    return np.asarray(xs)


def refined_spacing(
    lo: float,
    hi: float,
    h_coarse: float,
    h_fine: float,
    fine_lo: float,
    fine_hi: float,
    ratio: float = 1.5,
) -> np.ndarray:
    """Coordinates refined to ``h_fine`` inside ``[fine_lo, fine_hi]``.

    Outside the refinement window, spacing grows geometrically by ``ratio``
    up to ``h_coarse`` — the 1D analogue of the paper's refinement cuboid
    (Sec. 6.2: 'a maximum global element size of 5000 m and refine the
    resolution in the water layer and in our region of interest').
    """
    if not (lo <= fine_lo < fine_hi <= hi):
        raise ValueError("refinement window must lie inside the domain")
    if h_fine <= 0 or h_coarse < h_fine:
        raise ValueError("need 0 < h_fine <= h_coarse")

    # fine region: uniform at h_fine
    n_fine = max(1, int(round((fine_hi - fine_lo) / h_fine)))
    mid = np.linspace(fine_lo, fine_hi, n_fine + 1)

    def grade(outer: float, inner: float, left: bool) -> np.ndarray:
        span = abs(inner - outer)
        if span < 1e-12 * max(abs(hi - lo), 1.0):
            return np.empty(0)
        sizes = []
        h = h_fine
        total = 0.0
        while total < span:
            h = min(h * ratio, h_coarse)
            sizes.append(h)
            total += h
        # rescale to fit exactly
        sizes = np.asarray(sizes) * span / total
        offs = np.cumsum(sizes)[:-1]
        pts = inner - offs if left else inner + offs
        return pts[::-1] if left else pts

    left = grade(lo, fine_lo, left=True)
    right = grade(hi, fine_hi, left=False)
    xs = np.concatenate([[lo], left, mid, right, [hi]]) if (lo < fine_lo or fine_hi < hi) else mid
    xs = np.unique(np.clip(xs, lo, hi))
    # merge near-duplicate coordinates (they would create sliver cells)
    keep = np.concatenate([[True], np.diff(xs) > 1e-6 * (hi - lo)])
    xs = xs[keep]
    xs[-1] = hi
    return xs
