"""Machine models of the paper's three petascale systems (Sec. 6).

The reproduction cannot run on Shaheen-II, SuperMUC-NG or Mahti; instead
these dataclasses capture the published hardware characteristics (node
architecture, NUMA layout, peak FLOP/s, memory bandwidth, interconnect) and
the *measured* node-performance heterogeneity the paper reports in Sec. 6.2
(node weights 4.54 +- 0.087 with a 2.74 minimum on SuperMUC-NG, i.e. the
slowest node at 60.4% of average).  The strong-scaling simulator drives
real mesh partitions against these models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NodeSpec", "Network", "Machine", "AMD_ROME_7H12", "SHAHEEN2", "SUPERMUC_NG", "MAHTI"]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    name: str
    sockets: int
    numa_per_socket: int
    cores_per_numa: int
    freq_ghz: float
    flops_per_cycle: int  # double-precision FLOP per cycle per core
    mem_bw_gbs: float  # aggregate node memory bandwidth [GB/s]
    smt: int = 2

    @property
    def n_numa(self) -> int:
        return self.sockets * self.numa_per_socket

    @property
    def cores(self) -> int:
        return self.sockets * self.numa_per_socket * self.cores_per_numa

    @property
    def peak_gflops(self) -> float:
        return self.cores * self.freq_ghz * self.flops_per_cycle

    @property
    def numa_bw_gbs(self) -> float:
        return self.mem_bw_gbs / self.n_numa


@dataclass(frozen=True)
class Network:
    """Interconnect model: alpha-beta with a mild topology penalty."""

    name: str
    latency_us: float
    bandwidth_gbs: float  # injection bandwidth per node
    #: extra latency/cut factor when the job spans many nodes (pruned fat
    #: tree / dragonfly group crossings); 0 = flat network
    topology_exponent: float = 0.06

    def penalty(self, n_nodes: int) -> float:
        return float(max(1.0, n_nodes) ** self.topology_exponent)


@dataclass(frozen=True)
class Machine:
    name: str
    node: NodeSpec
    network: Network
    n_nodes: int
    #: relative std-dev of node performance and the slowest observed node
    #: (fraction of the mean) — Sec. 6.2 measurements
    perf_sigma: float = 0.02
    perf_min: float = 0.9
    straggler_fraction: float = 0.003

    def sample_node_speeds(
        self,
        n: int,
        rng: np.random.Generator | None = None,
        force_straggler: bool = False,
    ) -> np.ndarray:
        """Per-node relative speeds (mean ~1), with a straggler tail.

        Mirrors the paper's micro-benchmark node weights: narrow Gaussian
        bulk plus a few substantially slower nodes.  ``force_straggler``
        guarantees one node at the machine's observed minimum (the paper's
        Sec. 6.2 allocations each contained such a node).
        """
        rng = np.random.default_rng(0) if rng is None else rng
        speeds = rng.normal(1.0, self.perf_sigma, size=n)
        n_slow = rng.binomial(n, self.straggler_fraction)
        if n_slow > 0:
            idx = rng.choice(n, size=n_slow, replace=False)
            speeds[idx] = rng.uniform(self.perf_min, min(0.9, self.perf_min + 0.05), size=n_slow)
        if force_straggler and n > 1:
            speeds[int(rng.integers(n))] = self.perf_min
        return np.clip(speeds, self.perf_min, None)


# ----------------------------------------------------------------------
# the paper's systems

#: Sec. 5.1 test system: dual-socket AMD Rome 7H12 (64 cores, 4 NUMA each).
#: 128 cores x 2.6 GHz x 16 DP flop/cycle = 5324.8 GFLOPS — the paper's
#: "peak performance of 5325 GFLOPS per node".
AMD_ROME_7H12 = NodeSpec(
    name="AMD Rome 7H12",
    sockets=2,
    numa_per_socket=4,
    cores_per_numa=16,
    freq_ghz=2.6,
    flops_per_cycle=16,
    mem_bw_gbs=380.0,
)

_SHAHEEN_NODE = NodeSpec(
    name="Intel Haswell E5-2698v3",
    sockets=2,
    numa_per_socket=1,
    cores_per_numa=16,
    freq_ghz=2.3,
    flops_per_cycle=16,
    mem_bw_gbs=120.0,
)

_NG_NODE = NodeSpec(
    name="Intel Skylake 8174",
    sockets=2,
    numa_per_socket=1,
    cores_per_numa=24,
    freq_ghz=2.3,  # AVX-512 heavy frequency
    flops_per_cycle=32,
    mem_bw_gbs=205.0,
)

SHAHEEN2 = Machine(
    name="Shaheen-II",
    node=_SHAHEEN_NODE,
    network=Network("Aries dragonfly", latency_us=1.3, bandwidth_gbs=8.0, topology_exponent=0.04),
    n_nodes=6174,
    perf_sigma=0.007,  # 3.34 +- 0.023
    perf_min=3.19 / 3.34,
)

SUPERMUC_NG = Machine(
    name="SuperMUC-NG",
    node=_NG_NODE,
    network=Network("OmniPath fat tree (1:4 pruned)", latency_us=1.5, bandwidth_gbs=10.0, topology_exponent=0.07),
    n_nodes=6336,
    perf_sigma=0.087 / 4.54,
    perf_min=2.74 / 4.54,  # slowest node at 60.4% of average (Sec. 6.2)
)

MAHTI = Machine(
    name="Mahti",
    node=AMD_ROME_7H12,
    network=Network("HDR InfiniBand dragonfly+", latency_us=1.0, bandwidth_gbs=23.0, topology_exponent=0.05),
    n_nodes=1404,
    perf_sigma=0.02,
    perf_min=0.72,
)
