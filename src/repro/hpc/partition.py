"""Graph partitioning for static load balancing (paper Sec. 5.3).

SeisSol builds the dual graph of the tetrahedral mesh (vertex = element,
edge = shared face), assigns vertex weights that encode each element's
update cost under LTS plus dynamic-rupture and gravity-face surcharges
(paper Eq. 28), and feeds the weighted graph plus per-partition target
weights (``tpwgts``, from measured node speeds) to ParMETIS.

This module reproduces the same pipeline: Eq. 28 vertex weights, a
geometric recursive-bisection partitioner with weighted splits honoring
``tpwgts`` (the role ParMETIS plays), a boundary Kernighan-Lin-style
refinement pass to reduce the edge cut, and the quality metrics (imbalance,
edge cut, communication volume) the scaling model consumes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "eq28_vertex_weights",
    "partition_geometric",
    "refine_partition",
    "partition_mesh",
    "imbalance",
    "edge_cut",
    "comm_volume",
]


def eq28_vertex_weights(
    mesh,
    cluster: np.ndarray,
    w_base: int = 100,
    w_dr: int = 200,
    w_g: int = 300,
    rate: int = 2,
) -> np.ndarray:
    """Integer vertex weights of paper Eq. (28):

    ``2^(c_max - c_v) * (w_base + w_DR * n_DR + w_G * n_G)``

    with ``n_DR``/``n_G`` the element's number of dynamic-rupture and
    gravitational-boundary faces.  The defaults are the paper's production
    choice (Sec. 5.3).
    """
    ne = mesh.n_elements
    n_dr = np.zeros(ne, dtype=np.int64)
    itf = mesh.interior
    fault = itf.is_fault
    np.add.at(n_dr, itf.minus_elem[fault], 1)
    np.add.at(n_dr, itf.plus_elem[fault], 1)

    from ..core.riemann import FaceKind

    n_g = np.zeros(ne, dtype=np.int64)
    bnd = mesh.boundary
    grav = bnd.kind == FaceKind.GRAVITY_FREE_SURFACE.value
    np.add.at(n_g, bnd.elem[grav], 1)

    cmax = int(cluster.max())
    rate_factor = rate ** (cmax - cluster)
    return rate_factor * (w_base + w_dr * n_dr + w_g * n_g)


def partition_geometric(
    centroids: np.ndarray,
    weights: np.ndarray,
    n_parts: int,
    tpwgts: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted recursive coordinate bisection.

    Splits always along the longest extent; the split position honors the
    (possibly non-uniform) target weights ``tpwgts``.  Deterministic.
    """
    n = len(centroids)
    if n_parts < 1:
        raise ValueError("need at least one partition")
    if tpwgts is None:
        tpwgts = np.full(n_parts, 1.0 / n_parts)
    else:
        tpwgts = np.asarray(tpwgts, dtype=float)
        if len(tpwgts) != n_parts or not np.isclose(tpwgts.sum(), 1.0, atol=1e-6):
            raise ValueError("tpwgts must have n_parts entries summing to 1")
    parts = np.zeros(n, dtype=np.int64)

    def bisect(idx, part_lo, part_hi):
        if part_hi - part_lo == 1:
            parts[idx] = part_lo
            return
        mid = (part_lo + part_hi) // 2
        frac_lo = tpwgts[part_lo:mid].sum() / tpwgts[part_lo:part_hi].sum()
        c = centroids[idx]
        spans = c.max(axis=0) - c.min(axis=0)
        ax = int(np.argmax(spans))
        order = np.argsort(c[:, ax], kind="stable")
        w = weights[idx][order]
        csum = np.cumsum(w)
        target = frac_lo * csum[-1]
        k = int(np.searchsorted(csum, target))
        k = min(max(k, 1), len(idx) - 1)
        left = idx[order[:k]]
        right = idx[order[k:]]
        bisect(left, part_lo, mid)
        bisect(right, mid, part_hi)

    bisect(np.arange(n), 0, n_parts)
    return parts


def refine_partition(
    parts: np.ndarray,
    edges: np.ndarray,
    weights: np.ndarray,
    tpwgts: np.ndarray,
    n_sweeps: int = 3,
    tol: float = 0.02,
) -> np.ndarray:
    """Boundary refinement: greedily move boundary elements to the neighbor
    partition when it reduces the edge cut without hurting balance.

    A light-weight stand-in for ParMETIS's KL/FM refinement.
    """
    parts = parts.copy()
    n_parts = len(tpwgts)
    total_w = weights.sum()
    target = tpwgts * total_w
    part_w = np.bincount(parts, weights=weights, minlength=n_parts)

    # adjacency lists built once
    adj: dict[int, list[int]] = {}
    for e0, e1 in edges:
        adj.setdefault(int(e0), []).append(int(e1))
        adj.setdefault(int(e1), []).append(int(e0))

    for _ in range(n_sweeps):
        moved = 0
        for e0, e1 in _boundary_edges(parts, edges):
            for v, other in ((int(e0), int(parts[e1])), (int(e1), int(parts[e0]))):
                p = int(parts[v])
                if p == other:
                    continue
                nb = np.asarray(adj[v])
                gain = int(np.sum(parts[nb] == other)) - int(np.sum(parts[nb] == p))
                if gain <= 0:
                    continue
                w = weights[v]
                if part_w[other] + w > target[other] * (1 + tol) or part_w[p] - w < 0:
                    continue
                parts[v] = other
                part_w[p] -= w
                part_w[other] += w
                moved += 1
        if moved == 0:
            break
    return parts


def _boundary_edges(parts, edges):
    cut = parts[edges[:, 0]] != parts[edges[:, 1]]
    return edges[cut]


def partition_mesh(
    mesh,
    n_parts: int,
    weights: np.ndarray | None = None,
    tpwgts: np.ndarray | None = None,
    refine: bool = False,
) -> np.ndarray:
    """End-to-end partition of a mesh (the ParMETIS call site equivalent)."""
    if weights is None:
        weights = np.ones(mesh.n_elements)
    if tpwgts is None:
        tpwgts = np.full(n_parts, 1.0 / n_parts)
    parts = partition_geometric(mesh.centroids, weights, n_parts, tpwgts)
    if refine and n_parts > 1:
        parts = refine_partition(parts, mesh.dual_graph_edges(), weights, np.asarray(tpwgts))
    return parts


# ----------------------------------------------------------------------
def imbalance(parts: np.ndarray, weights: np.ndarray, tpwgts: np.ndarray | None = None) -> float:
    """Max over partitions of (actual load / target load); 1.0 is perfect."""
    n_parts = int(parts.max()) + 1
    if tpwgts is None:
        tpwgts = np.full(n_parts, 1.0 / n_parts)
    part_w = np.bincount(parts, weights=weights, minlength=n_parts)
    target = np.asarray(tpwgts) * weights.sum()
    return float((part_w / np.maximum(target, 1e-300)).max())


def edge_cut(parts: np.ndarray, edges: np.ndarray, edge_weights: np.ndarray | None = None) -> float:
    """Total weight of edges crossing partition boundaries."""
    cut = parts[edges[:, 0]] != parts[edges[:, 1]]
    if edge_weights is None:
        return float(cut.sum())
    return float(edge_weights[cut].sum())


def comm_volume(parts: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Per-partition number of cut faces (proxy for halo exchange volume)."""
    n_parts = int(parts.max()) + 1
    out = np.zeros(n_parts)
    cut = parts[edges[:, 0]] != parts[edges[:, 1]]
    np.add.at(out, parts[edges[cut, 0]], 1)
    np.add.at(out, parts[edges[cut, 1]], 1)
    return out
