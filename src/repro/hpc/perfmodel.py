"""Kernel FLOP/byte model and node-level performance model (paper Sec. 5.1).

The FLOP and traffic counts are derived from the *actual shapes of this
library's kernels* (which match SeisSol's: batched small GEMMs over modal
coefficient matrices of size ``B_N x 9``).  Node performance is then a
roofline evaluation with a NUMA term:

* the **predictor** (Cauchy-Kowalewski) touches only element-local data —
  first-touch allocation makes it NUMA-local, so its performance is the
  GEMM-efficiency-limited compute roof regardless of rank placement;
* the **corrector** gathers neighbor data through the unstructured face
  graph; with one rank spanning several NUMA domains a fraction of those
  gathers crosses NUMA boundaries at remote-access bandwidth, which is the
  strong NUMA effect the paper measures on AMD Rome (Sec. 5.1) and the
  reason multiple MPI ranks per node win (Sec. 6.3).

Calibration: three dimensionless constants (small-GEMM efficiency, gather
traffic inflation, remote NUMA bandwidth ratio) are fitted to the paper's
five measured numbers on the Rome node (~8% rms residual); other rank
placements, NUMA-extrapolated limits and other orders are *predicted*.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.basis import basis_size
from .machine import NodeSpec

__all__ = ["KernelCounts", "kernel_counts", "NodePerformanceModel", "dof_count"]

_DP = 8  # bytes per double


def dof_count(n_elements: int, order: int) -> int:
    """Degrees of freedom: B_N basis functions x 9 quantities per element."""
    return n_elements * basis_size(order) * 9


@dataclass(frozen=True)
class KernelCounts:
    """FLOPs and memory traffic per element update, split by kernel."""

    order: int
    flops_predictor: float
    flops_volume: float
    flops_surface: float
    bytes_predictor: float
    bytes_volume: float
    bytes_surface: float
    #: fraction of corrector (volume+surface) traffic that is neighbor data
    neighbor_traffic_fraction: float

    @property
    def flops_corrector(self) -> float:
        return self.flops_volume + self.flops_surface

    @property
    def flops_total(self) -> float:
        return self.flops_predictor + self.flops_corrector

    @property
    def ai_predictor(self) -> float:
        return self.flops_predictor / self.bytes_predictor

    @property
    def ai_corrector(self) -> float:
        return self.flops_corrector / (self.bytes_volume + self.bytes_surface)


def kernel_counts(order: int, n_quantities: int = 9,
                  variant: str = "batched") -> KernelCounts:
    """Count FLOPs/bytes of one full element update at degree ``order``.

    Shapes mirror :mod:`repro.core.kernels` for ``variant="batched"``:

    * predictor: N Cauchy-Kowalewski levels, each 3 x [(B x B) @ (B x Q) +
      (B x Q) @ (Q x Q)] plus the Taylor time integration;
    * volume: 3 stiffness GEMMs of the same shapes;
    * surface: per face, trace extraction (nq x B) @ (B x Q) for both
      sides, two (Q x Q) flux applications at nq points, and the
      back-projection (B x nq) @ (nq x Q).

    ``variant="fused"`` (and ``"jit"``, which shares the fused plan)
    counts the compiled contraction chains of :mod:`repro.kernels.fusion`
    instead: degree-truncated Cauchy-Kowalewski levels (level ``k`` maps
    ``basis_size(N-k)`` modes to ``basis_size(N-k-1)``) and the
    quadrature-free surface form ``A @ I @ G`` (two ``(B, B) @ (B, Q)``
    + two ``(B, Q) @ (Q, Q)`` GEMMs per face-side).  Memory traffic is
    unchanged — fusion removes work, not state.
    """
    N = order
    B = basis_size(order)
    Q = n_quantities
    nq = (order + 2) ** 2  # face quadrature points

    level = 3 * (2.0 * B * B * Q + 2.0 * B * Q * Q)
    if variant == "batched":
        fl_pred = N * level + (N + 1) * 2.0 * B * Q  # + time integration
        per_face = 2 * (2.0 * nq * B * Q) + 2 * (2.0 * nq * Q * Q) + 2.0 * nq * B * Q
        fl_surf = 4 * per_face
    elif variant in ("fused", "jit"):
        # truncated CK: level k reads sizes[k] modes, writes sizes[k+1]
        sizes = [basis_size(N - k) for k in range(N + 1)]
        fl_pred = sum(
            3 * (2.0 * sizes[k + 1] * sizes[k] * Q + 2.0 * sizes[k + 1] * Q * Q)
            for k in range(N)
        ) + (N + 1) * 2.0 * B * Q
        # per face-side: A @ I (B x B x Q) twice + (.) @ G (B x Q x Q) twice
        per_side = 2 * (2.0 * B * B * Q) + 2 * (2.0 * B * Q * Q)
        fl_surf = 4 * per_side
    else:
        raise ValueError(f"unknown kernel variant {variant!r}")
    fl_vol = level

    by_pred = _DP * (B * Q + (N + 1) * B * Q + 3 * Q * Q)  # read Q + write derivs + star
    by_vol = _DP * (2 * B * Q + 3 * Q * Q)  # read I, accumulate, star
    # surface: own I + 4 neighbor I + 4 faces x 2 flux matrices + update
    by_surf_own = _DP * (B * Q + B * Q)
    by_surf_neigh = _DP * (4 * B * Q + 4 * 2 * Q * Q)
    by_surf = by_surf_own + by_surf_neigh
    neigh_frac = by_surf_neigh / (by_vol + by_surf)

    return KernelCounts(
        order=order,
        flops_predictor=fl_pred,
        flops_volume=fl_vol,
        flops_surface=fl_surf,
        bytes_predictor=float(by_pred),
        bytes_volume=float(by_vol),
        bytes_surface=float(by_surf),
        neighbor_traffic_fraction=float(neigh_frac),
    )


@dataclass
class NodePerformanceModel:
    """Roofline + NUMA node model calibrated on the Sec. 5.1 measurements.

    Parameters
    ----------
    node:
        Hardware description.
    order:
        Polynomial degree (paper: 5).
    gemm_efficiency:
        Fraction of peak reachable by the small-GEMM kernels (compute roof).
    gather_inefficiency:
        Traffic inflation of the unstructured neighbor gathers (cache-line
        waste, per-face flux-matrix streams, latency-limited access).
    remote_bw_ratio:
        Remote-to-local NUMA bandwidth ratio for cross-domain gathers.

    The three constants are calibrated against the paper's five measured
    Rome numbers (Sec. 5.1) with ~8% rms residual; see
    ``benchmarks/bench_t1_numa_nodelevel.py``.
    """

    node: NodeSpec
    order: int = 5
    gemm_efficiency: float = 0.61
    gather_inefficiency: float = 3.0
    remote_bw_ratio: float = 0.15
    #: kernel variant whose FLOP counts the model evaluates ("batched",
    #: "fused" or "jit"); must match the benchmarked execution path, or
    #: measured GFLOP/s and the roofline disagree by the fusion factor
    variant: str = "batched"

    def __post_init__(self):
        self.counts = kernel_counts(self.order, variant=self.variant)
        c = self.counts
        own_proj = 2 * _DP * basis_size(self.order) * 9
        self._neigh_bytes = (c.bytes_surface - own_proj) * self.gather_inefficiency
        self._own_bytes = c.bytes_volume + own_proj
        self._corr_bytes = self._own_bytes + self._neigh_bytes
        self._gather_share = self._neigh_bytes / self._corr_bytes

    # ------------------------------------------------------------------
    def _kernel_perf(self, flops, bytes_, peak, bw) -> float:
        """Roofline: attainable GFLOP/s for one kernel."""
        ai = flops / bytes_
        return min(self.gemm_efficiency * peak, ai * bw)

    def predictor_gflops(self, n_numa_used: int | None = None) -> float:
        """Predictor-only rate (GFLOP/s) on ``n_numa_used`` NUMA domains."""
        n = self.node.n_numa if n_numa_used is None else n_numa_used
        peak = self.node.peak_gflops * n / self.node.n_numa
        bw = self.node.numa_bw_gbs * n
        c = self.counts
        return self._kernel_perf(c.flops_predictor, c.bytes_predictor, peak, bw)

    def corrector_gflops(self, n_numa_used: int | None = None, ranks_per_node: int = 1) -> float:
        """Corrector-only rate (GFLOP/s) with the NUMA gather penalty."""
        n = self.node.n_numa if n_numa_used is None else n_numa_used
        peak = self.node.peak_gflops * n / self.node.n_numa
        bw = self.node.numa_bw_gbs * n

        domains_per_rank = max(n / ranks_per_node, 1.0)
        cross_frac = self._gather_share * (1.0 - 1.0 / domains_per_rank)
        bw_corr = bw * (1.0 - cross_frac + cross_frac * self.remote_bw_ratio)
        return self._kernel_perf(
            self.counts.flops_corrector, self._corr_bytes, peak, bw_corr
        )

    def full_gflops(self, n_numa_used: int | None = None, ranks_per_node: int = 1) -> float:
        """Predictor+corrector rate with the NUMA gather penalty.

        With ``ranks_per_node`` ranks, each rank's working set spans
        ``n_numa / ranks`` domains; the fraction of neighbor gathers that
        crosses a NUMA boundary shrinks accordingly.
        """
        n = self.node.n_numa if n_numa_used is None else n_numa_used
        peak = self.node.peak_gflops * n / self.node.n_numa
        bw = self.node.numa_bw_gbs * n
        c = self.counts

        domains_per_rank = max(n / ranks_per_node, 1.0)
        cross_frac = self._gather_share * (1.0 - 1.0 / domains_per_rank)
        bw_corr = bw * (1.0 - cross_frac + cross_frac * self.remote_bw_ratio)

        t_pred = c.flops_predictor / self._kernel_perf(
            c.flops_predictor, c.bytes_predictor, peak, bw
        )
        t_corr = c.flops_corrector / self._kernel_perf(
            c.flops_corrector, self._corr_bytes, peak, bw_corr
        )
        return c.flops_total / (t_pred + t_corr)

    def numa_extrapolated_limit(self, measured_single_numa: float | None = None, full: bool = False) -> float:
        """The paper's 'extrapolate single-NUMA result x n_numa' number."""
        if measured_single_numa is None:
            measured_single_numa = (
                self.full_gflops(n_numa_used=1, ranks_per_node=1)
                if full
                else self.predictor_gflops(n_numa_used=1)
            )
        return measured_single_numa * self.node.n_numa

    def efficiency(self, gflops: float) -> float:
        return gflops / self.node.peak_gflops
