"""Strong-scaling simulator (paper Secs. 6.2/6.3, Fig. 6).

This is the substitution for the petascale measurements: the simulator
partitions a *real* (scaled-down) mesh — with the real LTS clustering and
the real Eq. 28 weights — across ``n_nodes x ranks_per_node`` parts, and
evaluates per-macro-step wall time from

* per-part compute: LTS-weighted element updates x kernel FLOPs, executed
  at the NUMA-aware node rate of :class:`~repro.hpc.perfmodel.NodePerformanceModel`
  and the node's sampled speed;
* per-part communication: cut faces weighted by their update rate, through
  an alpha-beta network model with a topology penalty, partially hidden by
  the dedicated communication thread.

Efficiency loss with node count then *emerges* from partition imbalance
(the mesh is fixed while parts multiply) and the rising communication to
computation ratio, exactly the mechanisms behind Fig. 6; the effect of
ranks-per-node emerges from the NUMA model vs. the extra partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.basis import basis_size
from .machine import Machine
from .partition import eq28_vertex_weights, imbalance, partition_geometric
from .perfmodel import NodePerformanceModel

__all__ = ["ScalingResult", "StrongScalingModel"]

_DP = 8


@dataclass
class ScalingResult:
    n_nodes: int
    ranks_per_node: int
    time_per_macro_step: float
    gflops_per_node: float
    total_pflops: float
    parallel_efficiency: float  # vs the smallest node count of a series
    imbalance: float
    comm_fraction: float


class StrongScalingModel:
    """Drive one mesh across node counts on one machine."""

    def __init__(
        self,
        mesh,
        cluster: np.ndarray,
        order: int,
        machine: Machine,
        rate: int = 2,
        w_dr: int = 200,
        w_g: int = 300,
        comm_overlap: float = 0.7,
        sync_slack: float = 0.6,
        seed: int = 1234,
    ):
        """``sync_slack`` interpolates each cluster substep between the
        mean part time (0: fully asynchronous, dependencies never bind) and
        the slowest part (1: global barrier).  SeisSol's clustered LTS has
        only *neighbor* dependencies, so load imbalance propagates with
        slack rather than gating every substep globally."""
        self.mesh = mesh
        self.cluster = cluster
        self.order = order
        self.machine = machine
        self.rate = rate
        self.comm_overlap = comm_overlap
        self.sync_slack = sync_slack
        self.rng = np.random.default_rng(seed)
        self.perf = NodePerformanceModel(machine.node, order=order)

        self.weights = eq28_vertex_weights(mesh, cluster, w_dr=w_dr, w_g=w_g, rate=rate)
        cmax = int(cluster.max())
        #: element updates per macro step (the LTS update rate)
        self.updates = rate ** (cmax - cluster).astype(float)
        self.flops_per_update = self.perf.counts.flops_total
        self.edges = mesh.dual_graph_edges()
        # per-face message rate: a face is exchanged at the faster side's
        # cadence
        cm = cluster[self.edges[:, 0]]
        cp = cluster[self.edges[:, 1]]
        self.edge_updates = rate ** (cmax - np.minimum(cm, cp)).astype(float)
        #: time-integrated face payload: B x 9 doubles
        self.face_bytes = basis_size(order) * 9 * _DP
        self.total_flops_per_macro = float((self.updates * self.flops_per_update).sum())

    # ------------------------------------------------------------------
    def simulate(
        self,
        n_nodes: int,
        ranks_per_node: int = 1,
        use_node_weights: bool = True,
        baseline_time: float | None = None,
        force_straggler: bool = False,
    ) -> ScalingResult:
        mesh = self.mesh
        n_parts = n_nodes * ranks_per_node
        if n_parts > mesh.n_elements:
            raise ValueError("more partitions than elements")

        speeds = self.machine.sample_node_speeds(n_nodes, self.rng, force_straggler)
        rank_speeds = np.repeat(speeds, ranks_per_node)
        if use_node_weights:
            tpwgts = rank_speeds / rank_speeds.sum()
        else:
            tpwgts = np.full(n_parts, 1.0 / n_parts)

        parts = partition_geometric(mesh.centroids, self.weights.astype(float), n_parts, tpwgts)

        # LTS time marching is bulk-synchronous *per cluster*: cluster c
        # executes 2^(cmax - c) substeps per macro step, and each substep is
        # gated by the slowest part for that cluster — the partitioner only
        # balances the aggregate weight, so per-cluster imbalance (plus the
        # per-substep neighbor exchange of that cluster) is where efficiency
        # goes to die at scale (paper Sec. 6.3).
        cmax = int(self.cluster.max())
        n_cl = cmax + 1
        node_rate = self.perf.full_gflops(ranks_per_node=ranks_per_node) * 1e9
        rank_rate = node_rate / ranks_per_node * rank_speeds

        flops_pc = np.zeros((n_parts, n_cl))
        np.add.at(
            flops_pc,
            (parts, self.cluster),
            np.full(mesh.n_elements, self.flops_per_update),
        )

        net = self.machine.network
        bw = net.bandwidth_gbs * 1e9 / ranks_per_node
        penalty = net.penalty(n_nodes)
        # per-cluster cut volume: a face participates in the substeps of the
        # finer of its two clusters
        cut = parts[self.edges[:, 0]] != parts[self.edges[:, 1]]
        edge_cl = np.minimum(self.cluster[self.edges[:, 0]], self.cluster[self.edges[:, 1]])
        vol_pc = np.zeros((n_parts, n_cl))
        np.add.at(vol_pc, (parts[self.edges[cut, 0]], edge_cl[cut]), self.face_bytes)
        np.add.at(vol_pc, (parts[self.edges[cut, 1]], edge_cl[cut]), self.face_bytes)

        t_macro = 0.0
        t_comm_total = 0.0
        for c in range(n_cl):
            substeps = self.rate ** (cmax - c)
            t_comp_c = flops_pc[:, c] / rank_rate
            has_comm = vol_pc[:, c] > 0
            t_comm_raw = (vol_pc[:, c] / bw + net.latency_us * 1e-6 * has_comm) * penalty
            t_comm_c = np.maximum(t_comm_raw - self.comm_overlap * t_comp_c, 0.0)
            tot = t_comp_c + t_comm_c
            step_t = float(tot.mean() + self.sync_slack * (tot.max() - tot.mean()))
            t_macro += substeps * step_t
            t_comm_total += substeps * float(t_comm_c.mean() + self.sync_slack * (t_comm_c.max() - t_comm_c.mean()))

        gflops_node = self.total_flops_per_macro / t_macro / n_nodes / 1e9
        eff = 1.0 if baseline_time is None else baseline_time / (t_macro * n_nodes)
        return ScalingResult(
            n_nodes=n_nodes,
            ranks_per_node=ranks_per_node,
            time_per_macro_step=t_macro,
            gflops_per_node=gflops_node,
            total_pflops=gflops_node * n_nodes / 1e6,
            parallel_efficiency=eff,
            imbalance=imbalance(parts, self.updates * self.flops_per_update, tpwgts),
            comm_fraction=t_comm_total / max(t_macro, 1e-300),
        )

    def sweep(self, node_counts, ranks_per_node: int = 1, use_node_weights: bool = True):
        """Strong-scaling series; efficiency is relative to the first entry."""
        results = []
        base = None
        for n in node_counts:
            r = self.simulate(n, ranks_per_node, use_node_weights)
            if base is None:
                base = r.time_per_macro_step * r.n_nodes
            r.parallel_efficiency = base / (r.time_per_macro_step * r.n_nodes)
            results.append(r)
        return results
