"""Thread-pinning algorithm for hybrid MPI+OpenMP+pthreads (paper Sec. 5.2).

SeisSol dedicates a POSIX communication thread per rank (for MPI
progression) plus asynchronous-I/O threads; these must not share cores with
OpenMP workers.  The paper's algorithm, reproduced here against an explicit
node-topology model:

1. worker threads are placed with ``OMP_PLACES=cores`` / close binding,
   leaving one physical core per rank unused;
2. each rank records the CPU mask of its workers; the masks are reduced
   (union) across the node (``MPI_COMM_TYPE_SHARED`` split);
3. free cores are the node's cores minus the union;
4. via libnuma, the NUMA domains covered by each rank's workers are
   computed, and the communication (and I/O) threads are pinned to free
   *logical* cores inside those domains — NUMA-aware and disjoint from all
   workers.  SMT is enabled (two hardware threads per core, Sec. 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NodeTopology", "PinPlan", "pin_node"]


@dataclass(frozen=True)
class NodeTopology:
    """Logical CPU layout of one node (linux-style numbering).

    Physical cores are numbered ``0 .. n_cores-1`` contiguously by NUMA
    domain; SMT siblings are ``n_cores .. 2*n_cores - 1``.
    """

    sockets: int = 2
    numa_per_socket: int = 4
    cores_per_numa: int = 16
    smt: int = 2

    @property
    def n_numa(self) -> int:
        return self.sockets * self.numa_per_socket

    @property
    def n_cores(self) -> int:
        return self.n_numa * self.cores_per_numa

    @property
    def n_cpus(self) -> int:
        return self.n_cores * self.smt

    def numa_of_cpu(self, cpu: int) -> int:
        return (cpu % self.n_cores) // self.cores_per_numa

    def siblings(self, core: int) -> list[int]:
        return [core + i * self.n_cores for i in range(self.smt)]


@dataclass
class PinPlan:
    """Result of the pinning algorithm for one node."""

    topology: NodeTopology
    worker_cpus: list[np.ndarray]  # per rank, logical CPU ids
    comm_cpu: list[int]  # per rank
    io_cpu: list[int] = field(default_factory=list)

    @property
    def n_ranks(self) -> int:
        return len(self.worker_cpus)

    def all_worker_cpus(self) -> np.ndarray:
        return np.concatenate(self.worker_cpus) if self.worker_cpus else np.empty(0, int)


def pin_node(
    topology: NodeTopology,
    ranks_per_node: int,
    pin_io: bool = False,
) -> PinPlan:
    """Execute the Sec. 5.2 pinning algorithm on a simulated node.

    Raises if the requested rank count does not divide the core count or
    leaves no room for the free core per rank.
    """
    topo = topology
    if ranks_per_node < 1:
        raise ValueError("need at least one rank per node")
    if topo.n_cores % ranks_per_node != 0:
        raise ValueError(
            f"{ranks_per_node} ranks do not evenly divide {topo.n_cores} cores"
        )
    cores_per_rank = topo.n_cores // ranks_per_node
    if cores_per_rank < 2:
        raise ValueError("need >= 2 cores per rank (workers + free core)")

    # step 1: workers with close binding, one physical core left free per
    # rank (the paper: "set the number of OpenMP threads to leave one
    # physical core per MPI rank unused"); SMT on -> both hyperthreads work
    worker_cpus = []
    used_mask = np.zeros(topo.n_cpus, dtype=bool)
    for r in range(ranks_per_node):
        first = r * cores_per_rank
        cores = np.arange(first, first + cores_per_rank - 1)  # last core free
        cpus = np.concatenate([cores + i * topo.n_cores for i in range(topo.smt)])
        worker_cpus.append(np.sort(cpus))
        used_mask[cpus] = True

    # step 2+3: node-wide union (the MPI_COMM_TYPE_SHARED reduction) and
    # free-core computation
    free_cpus = np.flatnonzero(~used_mask)

    # step 4: per rank, NUMA domains covered by its workers; pin the comm
    # thread to a free logical CPU within those domains
    comm_cpu = []
    io_cpu = []
    taken = set()
    for r in range(ranks_per_node):
        domains = {topo.numa_of_cpu(c) for c in worker_cpus[r]}
        candidates = [c for c in free_cpus if topo.numa_of_cpu(c) in domains and c not in taken]
        if not candidates:
            raise RuntimeError(f"no free NUMA-local CPU for the comm thread of rank {r}")
        comm_cpu.append(int(candidates[0]))
        taken.add(candidates[0])
        if pin_io:
            io_candidates = [c for c in candidates[1:] if c not in taken]
            if not io_candidates:
                raise RuntimeError(f"no free NUMA-local CPU for the I/O thread of rank {r}")
            io_cpu.append(int(io_candidates[0]))
            taken.add(io_candidates[0])

    return PinPlan(topology=topo, worker_cpus=worker_cpus, comm_cpu=comm_cpu, io_cpu=io_cpu)
