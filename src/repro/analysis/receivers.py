"""Receivers: efficient point time-series sampling.

The paper's production runs write receivers every 0.01 s; here a receiver
pre-locates its element and basis-evaluation vector once, so each sample is
a single dot product.
"""

from __future__ import annotations

import numpy as np

from ..core.basis import tet_basis

__all__ = ["ReceiverArray"]

QUANTITY_NAMES = ("sxx", "syy", "szz", "sxy", "syz", "sxz", "vx", "vy", "vz")


class ReceiverArray:
    """A set of receivers recording the full 9-variable state.

    Use as a solver callback (records every ``every``-th call) or call
    :meth:`record` manually.
    """

    def __init__(self, solver, positions: np.ndarray, every: int = 1):
        self.solver = solver
        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        mesh = solver.mesh
        elems = mesh.locate(positions)
        if (elems < 0).any():
            bad = positions[elems < 0]
            raise ValueError(f"receiver(s) outside mesh: {bad}")
        self.positions = positions
        self.elems = elems
        phi = np.empty((len(positions), solver.op.nbasis))
        for i, (e, x) in enumerate(zip(elems, positions)):
            xi = mesh.reference_coords(int(e), x[None])
            phi[i] = tet_basis(xi, solver.order)[0]
        self.phi = phi
        self.every = every
        self._count = 0
        self.times: list[float] = []
        self.samples: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self.positions)

    def record(self) -> None:
        vals = np.einsum("rb,rbn->rn", self.phi, self.solver.Q[self.elems])
        self.times.append(self.solver.t)
        self.samples.append(vals)

    def __call__(self, solver) -> None:
        self._count += 1
        if self._count % self.every == 0:
            self.record()

    def subscribe(self, bus) -> "ReceiverArray":
        """Sample at every scheduler synchronization point.

        Registers on a :class:`~repro.sched.HookBus`; equivalent to
        passing the array as a run callback.
        """
        bus.on_sync(self)
        return self

    # ------------------------------------------------------------------
    @property
    def t(self) -> np.ndarray:
        return np.asarray(self.times)

    def data(self, quantity: str | int) -> np.ndarray:
        """Time series array ``(nt, nreceivers)`` of one quantity."""
        if isinstance(quantity, str):
            quantity = QUANTITY_NAMES.index(quantity)
        return np.asarray(self.samples)[:, :, quantity]

    def pressure(self) -> np.ndarray:
        """Acoustic pressure ``-(sxx + syy + szz)/3``, ``(nt, nrec)``."""
        s = np.asarray(self.samples)
        return -(s[:, :, 0] + s[:, :, 1] + s[:, :, 2]) / 3.0
