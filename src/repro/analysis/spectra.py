"""Fourier analysis of receiver time series.

Used to reproduce the paper's frequency-content claims: the acoustic wave
field resolved to >= 15 Hz (mesh L) and the measured "wave excitation of up
to 30 Hz in the Fourier spectra of the recorded acoustic velocity time
series" (Sec. 6.2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["amplitude_spectrum", "dominant_frequency", "max_excited_frequency", "resolved_frequency"]


def amplitude_spectrum(t: np.ndarray, x: np.ndarray):
    """One-sided amplitude spectrum of a (possibly non-uniform) series.

    Returns ``(freqs, amplitude)``.  Non-uniform sampling is resampled onto
    a uniform grid first.
    """
    t = np.asarray(t, dtype=float)
    x = np.asarray(x, dtype=float)
    if len(t) != len(x) or len(t) < 4:
        raise ValueError("need matching series with at least 4 samples")
    dt = np.diff(t)
    if not np.allclose(dt, dt[0], rtol=1e-6):
        tu = np.linspace(t[0], t[-1], len(t))
        x = np.interp(tu, t, x)
        t = tu
        dt = np.diff(t)
    spec = np.fft.rfft(x - x.mean())
    freqs = np.fft.rfftfreq(len(x), d=float(dt[0]))
    return freqs, np.abs(spec) * 2.0 / len(x)


def dominant_frequency(t: np.ndarray, x: np.ndarray) -> float:
    """Frequency of the spectral peak."""
    f, a = amplitude_spectrum(t, x)
    if len(f) < 2:
        return 0.0
    return float(f[1:][np.argmax(a[1:])])


def max_excited_frequency(t: np.ndarray, x: np.ndarray, threshold: float = 0.05) -> float:
    """Highest frequency whose amplitude exceeds ``threshold * max``.

    This is the quantity behind the paper's "wave excitation of up to
    30 Hz" statement.
    """
    f, a = amplitude_spectrum(t, x)
    peak = a[1:].max() if len(a) > 1 else 0.0
    if peak == 0.0:
        return 0.0
    above = np.flatnonzero(a >= threshold * peak)
    return float(f[above[-1]]) if above.size else 0.0


def resolved_frequency(edge_length: float, wave_speed: float, order: int, elements_per_wavelength: float = 2.0) -> float:
    """Resolvable frequency of a DG discretization (paper Sec. 6.2 rule:
    'ensuring that 2 elements of polynomial order 5 ... sample one
    wavelength')."""
    wavelength = elements_per_wavelength * edge_length
    return wave_speed / wavelength
