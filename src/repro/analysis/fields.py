"""Field sampling utilities: sea-surface grids and cross-sections.

These produce the arrays behind the paper's map-view and cross-section
figures (Figs. 1, 3, 5): gridded sea-surface height / vertical velocity
from the gravity boundary, and 1D transects.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sea_surface_grid",
    "sea_surface_velocity_grid",
    "cross_section",
    "surface_eta_transect",
    "seafloor_vertical_velocity_grid",
]


def _grid_from_scatter(xy: np.ndarray, values: np.ndarray, xs: np.ndarray, ys: np.ndarray):
    from scipy.interpolate import griddata

    xc = 0.5 * (xs[:-1] + xs[1:])
    yc = 0.5 * (ys[:-1] + ys[1:])
    X, Y = np.meshgrid(xc, yc, indexing="ij")
    lin = griddata(xy, values, (X, Y), method="linear")
    near = griddata(xy, values, (X, Y), method="nearest")
    return X, Y, np.where(np.isnan(lin), near, lin)


def sea_surface_grid(solver, xs: np.ndarray, ys: np.ndarray):
    """Gridded sea-surface height eta from the gravity boundary faces.

    Returns ``(X, Y, eta)`` at the cell centers of ``xs`` x ``ys``.
    """
    g = solver.gravity
    if len(g) == 0:
        raise ValueError("solver has no gravity free-surface faces")
    xy = g.points[:, :, :2].reshape(-1, 2)
    vals = g.eta.reshape(-1)
    return _grid_from_scatter(xy, vals, xs, ys)


def sea_surface_velocity_grid(solver, xs: np.ndarray, ys: np.ndarray):
    """Gridded vertical sea-surface velocity (Fig. 1a quantity)."""
    g = solver.gravity
    ref = solver.op.ref
    vz = np.empty_like(g.eta)
    for f in range(4):
        sel = g.local_face == f
        if np.any(sel):
            tr = ref.E_minus[f] @ solver.Q[g.elem[sel]]
            vz[sel] = tr[:, :, 8]
    xy = g.points[:, :, :2].reshape(-1, 2)
    return _grid_from_scatter(xy, vz.reshape(-1), xs, ys)


def cross_section(solver, start, end, n: int, quantity: int = 8):
    """Sample a volume quantity along a straight 3D line.

    Returns ``(s, values)`` where ``s`` is the arc-length coordinate.
    """
    start = np.asarray(start, dtype=float)
    end = np.asarray(end, dtype=float)
    pts = start[None, :] + np.linspace(0, 1, n)[:, None] * (end - start)[None, :]
    vals = solver.evaluate(pts)[:, quantity]
    s = np.linspace(0, np.linalg.norm(end - start), n)
    return s, vals


def surface_eta_transect(solver, start_xy, end_xy, n: int):
    """Sea-surface height along a horizontal line (Fig. 3b quantity)."""
    g = solver.gravity
    start = np.asarray(start_xy, dtype=float)
    end = np.asarray(end_xy, dtype=float)
    pts = start[None, :] + np.linspace(0, 1, n)[:, None] * (end - start)[None, :]
    vals = g.sample(pts)
    s = np.linspace(0, np.linalg.norm(end - start), n)
    return s, vals


def seafloor_vertical_velocity_grid(tracker, xs: np.ndarray, ys: np.ndarray):
    """Gridded current vertical surface displacement of a tracker."""
    xy = tracker.points[:, :, :2].reshape(-1, 2)
    vals = tracker.uz.reshape(-1)
    return _grid_from_scatter(xy, vals, xs, ys)
