"""ADER predictor: the discrete Cauchy-Kowalewski procedure (paper Eq. 12).

Given the modal solution ``Q`` on a batch of elements, the predictor
computes all time derivatives ``d^k Q / dt^k`` by recursively substituting
time derivatives with spatial derivatives through the PDE:

    ``dQ/dt = - sum_k Astar_k (dQ/dxi_k)``

where ``Astar_k = sum_d invJ[k, d] A_d`` are the per-element "star"
Jacobians in reference coordinates.  The resulting element-local Taylor
expansion in time is the workhorse of the scheme: it supplies

* the time-integrated face data of the corrector step,
* point-in-time traces for the gravity free-surface ODE stages (Sec. 4.3),
* point-in-time traces for the dynamic-rupture time quadrature, and
* sub-interval integrals for local time-stepping (Sec. 4.4).
"""

from __future__ import annotations

import numpy as np

from .basis import ReferenceElement
from .materials import jacobians

__all__ = ["star_matrices", "ck_derivatives", "taylor_integrate", "taylor_evaluate"]


def star_matrices(mesh) -> np.ndarray:
    """Per-element reference-coordinate Jacobians, shape ``(ne, 3, 9, 9)``.

    ``star[e, k] = sum_d inv_jac[e, k, d] * (A, B, C)[d]`` of the element's
    material.
    """
    mats = [jacobians(m) for m in mesh.materials]
    ABC = np.stack([np.stack(j) for j in mats])  # (nmat, 3, 9, 9)
    per_elem = ABC[mesh.material_ids]  # (ne, 3, 9, 9)
    return np.einsum("ekd,edij->ekij", mesh.inv_jac, per_elem)


def ck_derivatives(Q: np.ndarray, star: np.ndarray, ref: ReferenceElement) -> np.ndarray:
    """All time derivatives of the modal solution: ``(ne, N+1, B, 9)``.

    ``out[:, 0]`` is ``Q`` itself; ``out[:, k]`` holds ``d^k Q/dt^k``.
    Each Cauchy-Kowalewski level loses one polynomial degree, so the modal
    derivative operators could be truncated per level; we keep full size for
    simplicity (the batched GEMM is bandwidth-bound anyway).
    """
    ne, nb, nq = Q.shape
    order = ref.order
    out = np.empty((ne, order + 1, nb, nq))
    out[:, 0] = Q
    starT = star.transpose(0, 1, 3, 2)  # (ne, 3, 9, 9) transposed blocks
    for k in range(order):
        acc = np.zeros((ne, nb, nq))
        for d in range(3):
            # (B,B) @ (ne,B,9) -> (ne,B,9), then contract quantity index
            acc += np.matmul(ref.deriv[d] @ out[:, k], starT[:, d])
        out[:, k + 1] = -acc
    return out


def taylor_integrate(derivs: np.ndarray, t0: float, t1: float) -> np.ndarray:
    """Integral of the Taylor expansion over ``[t0, t1]`` (relative times).

    ``t0``/``t1`` are measured from the expansion point.  Returns modal
    coefficients of ``int_t0^t1 q(t) dt``, shape ``(ne, B, 9)``.
    """
    nk = derivs.shape[1]
    out = np.zeros_like(derivs[:, 0])
    fact = 1.0
    for k in range(nk):
        fact *= k + 1  # (k+1)!
        out += (t1 ** (k + 1) - t0 ** (k + 1)) / fact * derivs[:, k]
    return out


def taylor_evaluate(derivs: np.ndarray, tau) -> np.ndarray:
    """Evaluate the Taylor expansion at relative time(s) ``tau``.

    For scalar ``tau`` returns ``(ne, B, 9)``; for an array of ``nt`` times
    returns ``(nt, ne, B, 9)``.
    """
    taus = np.atleast_1d(np.asarray(tau, dtype=float))
    nk = derivs.shape[1]
    out = np.zeros((len(taus),) + derivs[:, 0].shape)
    fact = 1.0
    for k in range(nk):
        if k > 0:
            fact *= k
        out += (taus ** k / fact)[:, None, None, None] * derivs[:, k]
    return out if np.ndim(tau) else out[0]
