"""CFL timestep computation (paper Eq. 27).

``dt <= C(N) * h / lambda_max`` with ``h`` the insphere diameter of the
tetrahedron and ``lambda_max = cp`` the maximum wave speed of the element's
material.  The paper uses ``C(N) = 0.35 / (2N + 1)`` (Sec. 6).
"""

from __future__ import annotations

import numpy as np

__all__ = ["cfl_factor", "element_timesteps"]


def cfl_factor(order: int, safety: float = 0.35) -> float:
    """``C(N) = safety / (2N + 1)``."""
    if order < 0:
        raise ValueError("order must be >= 0")
    if not 0 < safety <= 1:
        raise ValueError("safety factor must be in (0, 1]")
    return safety / (2.0 * order + 1.0)


def element_timesteps(mesh, order: int, safety: float = 0.35) -> np.ndarray:
    """Admissible timestep of every element of ``mesh`` at degree ``order``."""
    cp = np.array([m.cp for m in mesh.materials])[mesh.material_ids]
    return cfl_factor(order, safety) * mesh.insphere_diameter / cp
