"""Rotational-invariance machinery: the similarity transform T(n) (Eq. 15).

Both the elastic and the acoustic wave equations are rotationally invariant,
so the face-normal Jacobian satisfies ``n_x A + n_y B + n_z C =
T(n) A T(n)^{-1}`` (paper Eq. 15), where ``A`` is the x-direction Jacobian.
``T`` rotates the 9-variable state from a face-aligned frame (local x along
the face normal) to the global frame; it is block diagonal with the 6x6 Bond
(Voigt stress) transformation and the 3x3 vector rotation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normal_basis",
    "bond_matrix",
    "state_rotation",
    "state_rotation_inverse",
    "batched_normal_basis",
    "batched_state_rotation",
]

# Voigt ordering used throughout: (xx, yy, zz, xy, yz, xz)
_VOIGT = ((0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (0, 2))


def normal_basis(n: np.ndarray) -> np.ndarray:
    """Right-handed orthonormal triad with first column ``n``.

    Returns a 3x3 rotation matrix ``R = [n | s | t]`` (columns) mapping
    face-aligned coordinates to global coordinates.  The tangents are chosen
    deterministically (stable under small perturbations of ``n``) so that
    precomputed per-face operators are reproducible.
    """
    n = np.asarray(n, dtype=float)
    nrm = np.linalg.norm(n)
    if not np.isfinite(nrm) or nrm < 1e-14:
        raise ValueError(f"degenerate normal vector {n}")
    n = n / nrm
    # pick the global axis least aligned with n as helper
    helper = np.zeros(3)
    helper[np.argmin(np.abs(n))] = 1.0
    s = np.cross(helper, n)
    s /= np.linalg.norm(s)
    t = np.cross(n, s)
    R = np.column_stack([n, s, t])
    return R


def bond_matrix(R: np.ndarray) -> np.ndarray:
    """6x6 Voigt transformation of the stress tensor under rotation ``R``.

    If ``sigma_glob = R sigma_loc R^T`` then
    ``voigt(sigma_glob) = bond_matrix(R) @ voigt(sigma_loc)``.

    Built column-by-column from unit stress states; this is cheap (runs once
    per face during setup) and immune to sign-convention slips.
    """
    R = np.asarray(R, dtype=float)
    M = np.empty((6, 6))
    for col, (i, j) in enumerate(_VOIGT):
        sig = np.zeros((3, 3))
        sig[i, j] = 1.0
        sig[j, i] = 1.0
        rot = R @ sig @ R.T
        for row, (a, b) in enumerate(_VOIGT):
            M[row, col] = rot[a, b]
    return M


def state_rotation(n: np.ndarray) -> np.ndarray:
    """The 9x9 similarity transform ``T(n)`` of paper Eq. (15)."""
    R = normal_basis(n)
    T = np.zeros((9, 9))
    T[:6, :6] = bond_matrix(R)
    T[6:, 6:] = R
    return T


def batched_normal_basis(normals: np.ndarray) -> np.ndarray:
    """Vectorized :func:`normal_basis`: ``(nf, 3) -> (nf, 3, 3)``."""
    n = np.asarray(normals, dtype=float)
    n = n / np.linalg.norm(n, axis=1, keepdims=True)
    helper = np.zeros_like(n)
    idx = np.argmin(np.abs(n), axis=1)
    helper[np.arange(len(n)), idx] = 1.0
    s = np.cross(helper, n)
    s /= np.linalg.norm(s, axis=1, keepdims=True)
    t = np.cross(n, s)
    return np.stack([n, s, t], axis=2)


def _batched_bond(R: np.ndarray) -> np.ndarray:
    """Vectorized Bond matrix: ``(nf, 3, 3) -> (nf, 6, 6)``."""
    out = np.empty((R.shape[0], 6, 6))
    for row, (a, b) in enumerate(_VOIGT):
        for col, (i, j) in enumerate(_VOIGT):
            if i == j:
                out[:, row, col] = R[:, a, i] * R[:, b, i]
            else:
                out[:, row, col] = R[:, a, i] * R[:, b, j] + R[:, a, j] * R[:, b, i]
    return out


def batched_state_rotation(normals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(T(n), T(n)^{-1})`` for a batch of face normals.

    Returns two ``(nf, 9, 9)`` arrays.
    """
    R = batched_normal_basis(normals)
    nf = R.shape[0]
    T = np.zeros((nf, 9, 9))
    Tinv = np.zeros((nf, 9, 9))
    T[:, :6, :6] = _batched_bond(R)
    T[:, 6:, 6:] = R
    Rt = R.transpose(0, 2, 1)
    Tinv[:, :6, :6] = _batched_bond(Rt)
    Tinv[:, 6:, 6:] = Rt
    return T, Tinv


def state_rotation_inverse(n: np.ndarray) -> np.ndarray:
    """``T(n)^{-1}``, computed from the transposed triad (exact inverse)."""
    R = normal_basis(n)
    Tinv = np.zeros((9, 9))
    Tinv[:6, :6] = bond_matrix(R.T)
    Tinv[6:, 6:] = R.T
    return Tinv
