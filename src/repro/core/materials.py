"""Material models and PDE Jacobians for the coupled elastic-acoustic system.

The solver works on the 9-variable velocity-stress system (paper Eq. 1)

``q = (sigma_xx, sigma_yy, sigma_zz, sigma_xy, sigma_yz, sigma_xz, vx, vy, vz)``

written in non-conservative form ``dq/dt + A dq/dx + B dq/dy + C dq/dz = 0``
(paper Eq. 8).  An acoustic medium (the ocean) is embedded as the special
case ``mu = 0, lambda = K, sigma_ij = -p delta_ij`` (paper Sec. 4.1) —
identical data layout, which is exactly how SeisSol incorporates the ocean
without touching its data structures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Material", "elastic", "acoustic", "jacobians", "jacobian_normal"]

NQ = 9  # number of conserved quantities

# indices into q
SXX, SYY, SZZ, SXY, SYZ, SXZ, VX, VY, VZ = range(9)


@dataclass(frozen=True)
class Material:
    """Linear isotropic material (elastic, or acoustic when ``mu == 0``).

    Parameters
    ----------
    rho:
        Density [kg/m^3].
    lam:
        First Lamé parameter [Pa].  For an acoustic medium this is the bulk
        modulus ``K``.
    mu:
        Shear modulus [Pa]; ``0`` marks an acoustic (inviscid fluid) medium.
    """

    rho: float
    lam: float
    mu: float = 0.0

    def __post_init__(self):
        if self.rho <= 0:
            raise ValueError(f"density must be positive, got {self.rho}")
        if self.lam + 2 * self.mu <= 0:
            raise ValueError("lam + 2*mu must be positive")
        if self.mu < 0:
            raise ValueError(f"shear modulus must be non-negative, got {self.mu}")

    @property
    def is_acoustic(self) -> bool:
        return self.mu == 0.0

    @property
    def cp(self) -> float:
        """P-wave speed (speed of sound in an acoustic medium)."""
        return float(np.sqrt((self.lam + 2.0 * self.mu) / self.rho))

    @property
    def cs(self) -> float:
        """S-wave speed (0 in an acoustic medium)."""
        return float(np.sqrt(self.mu / self.rho))

    @property
    def Zp(self) -> float:
        """P impedance ``rho * cp``."""
        return self.rho * self.cp

    @property
    def Zs(self) -> float:
        """S impedance ``rho * cs`` (0 in an acoustic medium)."""
        return self.rho * self.cs

    @property
    def max_wave_speed(self) -> float:
        return self.cp


def elastic(rho: float, cp: float, cs: float) -> Material:
    """Construct an elastic material from density and wave speeds."""
    mu = rho * cs**2
    lam = rho * cp**2 - 2.0 * mu
    return Material(rho=rho, lam=lam, mu=mu)


def acoustic(rho: float, cp: float) -> Material:
    """Construct an acoustic material (ocean) from density and sound speed."""
    return Material(rho=rho, lam=rho * cp**2, mu=0.0)


def jacobians(mat: Material) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The space Jacobians (A, B, C) of the 9-variable system for ``mat``.

    Sign convention follows paper Eq. (8): ``q_t + A q_x + B q_y + C q_z = 0``.
    """
    lam, mu, rho = mat.lam, mat.mu, mat.rho
    lp2m = lam + 2.0 * mu
    irho = 1.0 / rho
    A = np.zeros((NQ, NQ))
    B = np.zeros((NQ, NQ))
    C = np.zeros((NQ, NQ))

    # stress rows: d(sigma)/dt = stiffness * velocity gradients
    A[SXX, VX] = -lp2m
    A[SYY, VX] = -lam
    A[SZZ, VX] = -lam
    A[SXY, VY] = -mu
    A[SXZ, VZ] = -mu
    A[VX, SXX] = -irho
    A[VY, SXY] = -irho
    A[VZ, SXZ] = -irho

    B[SXX, VY] = -lam
    B[SYY, VY] = -lp2m
    B[SZZ, VY] = -lam
    B[SXY, VX] = -mu
    B[SYZ, VZ] = -mu
    B[VX, SXY] = -irho
    B[VY, SYY] = -irho
    B[VZ, SYZ] = -irho

    C[SXX, VZ] = -lam
    C[SYY, VZ] = -lam
    C[SZZ, VZ] = -lp2m
    C[SYZ, VY] = -mu
    C[SXZ, VX] = -mu
    C[VX, SXZ] = -irho
    C[VY, SYZ] = -irho
    C[VZ, SZZ] = -irho
    return A, B, C


def jacobian_normal(mat: Material, n: np.ndarray) -> np.ndarray:
    """``A_hat = nx*A + ny*B + nz*C`` for a unit normal ``n``."""
    A, B, C = jacobians(mat)
    n = np.asarray(n, dtype=float)
    return n[0] * A + n[1] * B + n[2] * C
