"""Clustered rate-2 local time-stepping (paper Sec. 4.4).

Elements are grouped into clusters with timestep ``2^c * dt_min``; the
cluster assignment is *normalized* so neighboring elements differ by at most
one level (SeisSol's constraint, which keeps the flux exchange simple and
the loops batched).  Fault faces and their two adjacent elements are forced
into a common cluster.

Flux exchange across cluster boundaries exploits the polynomial-in-time
ADER predictor (the property the paper highlights as making LTS "easy and
efficient" with ADER):

* a neighbor in a *coarser* cluster predicted earlier with a longer window;
  its Taylor expansion is simply integrated over the fine element's
  sub-window;
* a neighbor in a *finer* cluster accumulates its completed window integrals
  into a buffer which the coarse element consumes at its next corrector —
  SeisSol's buffer mechanism.

The scheduler is event-driven: a cluster may step when (i) every coarser
neighboring cluster's Taylor expansion covers the step window and (ii)
every finer neighboring cluster has completed the window (buffer full).
With rate-2 clustering this reproduces the canonical recursive ordering.
"""

from __future__ import annotations

import numpy as np

from ..obs.telemetry import get_telemetry
from .ader import taylor_integrate
from .cfl import element_timesteps

__all__ = ["cluster_elements", "lts_statistics", "LocalTimeStepping"]

_TEL = get_telemetry()


def cluster_elements(
    mesh, order: int, rate: int = 2, safety: float = 0.35, max_cluster: int | None = None
):
    """Assign every element to an LTS cluster.

    Returns ``(cluster_id, dt_min)`` where cluster ``c`` advances with
    ``rate^c * dt_min``.  Normalization enforces (a) neighbor clusters
    differing by at most one level and (b) both sides of a dynamic-rupture
    fault face sharing a cluster.
    """
    dts = element_timesteps(mesh, order, safety)
    dt_min = float(dts.min())
    cluster = np.floor(np.log(dts / dt_min) / np.log(rate) + 1e-12).astype(np.int64)
    if max_cluster is not None:
        cluster = np.minimum(cluster, max_cluster)

    em = mesh.interior.minus_elem
    ep = mesh.interior.plus_elem
    fault = mesh.interior.is_fault
    # iterate to the fixed point: cluster ids only decrease and are bounded
    # below by 0, so this terminates; the number of sweeps needed can reach
    # the graph diameter (e.g. equality constraints chained along a fault)
    for _ in range(mesh.n_elements + 1):
        before = cluster.copy()
        if fault.any():
            lo = np.minimum(cluster[em[fault]], cluster[ep[fault]])
            np.minimum.at(cluster, em[fault], lo)
            np.minimum.at(cluster, ep[fault], lo)
        np.minimum.at(cluster, em, cluster[ep] + 1)
        np.minimum.at(cluster, ep, cluster[em] + 1)
        if (cluster == before).all():
            break
    else:
        raise RuntimeError("LTS cluster normalization failed to converge")
    return cluster, dt_min


def lts_statistics(cluster: np.ndarray, rate: int = 2) -> dict:
    """Histogram and update-reduction factor of a clustering (cf. Fig. 4).

    The speedup factor compares the number of element updates needed to
    advance one macro step with LTS against global time-stepping at
    ``dt_min``.
    """
    cmax = int(cluster.max())
    counts = np.bincount(cluster, minlength=cmax + 1)
    updates_lts = sum(int(n) * rate ** (cmax - c) for c, n in enumerate(counts))
    updates_gts = int(cluster.size) * rate**cmax
    return {
        "counts": counts,
        "dt_factors": [rate**c for c in range(cmax + 1)],
        "updates_lts": updates_lts,
        "updates_gts": updates_gts,
        "speedup": updates_gts / max(updates_lts, 1),
    }


class LocalTimeStepping:
    """LTS driver wrapping a :class:`~repro.core.solver.CoupledSolver`.

    Reuses the solver's spatial operator, gravity boundary, fault solver and
    sources; only the time-marching differs.
    """

    def __init__(self, solver, rate: int = 2, max_cluster: int | None = None):
        self.solver = solver
        self.op = solver.op
        self.backend = solver.backend
        mesh = solver.mesh
        self.rate = rate
        self.cluster, self.dt_min = cluster_elements(
            mesh, solver.order, rate, solver.cfl_safety, max_cluster
        )
        self.cmax = int(self.cluster.max())
        self.n_clusters = self.cmax + 1
        self.masks = [self.cluster == c for c in range(self.n_clusters)]
        self.elem_count = np.array([int(m.sum()) for m in self.masks])

        em, ep = mesh.interior.minus_elem, mesh.interior.plus_elem
        cm, cp = self.cluster[em], self.cluster[ep]
        self.adjacent = [set() for _ in range(self.n_clusters)]
        for a, b in zip(cm, cp):
            if a != b:
                self.adjacent[int(a)].add(int(b))
                self.adjacent[int(b)].add(int(a))

        g = solver.gravity
        self.gravity_masks = [self.cluster[g.elem] == c for c in range(self.n_clusters)]
        if solver.motion is not None:
            me = solver.motion.elem
            self.motion_masks = [self.cluster[me] == c for c in range(self.n_clusters)]
        else:
            self.motion_masks = None
        self.updates = np.zeros(self.n_clusters, dtype=np.int64)

    def statistics(self) -> dict:
        return lts_statistics(self.cluster, self.rate)

    # ------------------------------------------------------------------
    def run(self, t_end: float, callback=None, dt_scale: float = 1.0) -> None:
        """Advance all clusters to exactly ``t_end``.

        ``dt_min`` is shrunk slightly so that the macro timestep divides the
        remaining time (keeps the rate-2 synchronization invariants intact).
        ``callback(solver)`` fires at every macro-step synchronization point
        (all clusters aligned), with ``solver.t`` set to that time.
        ``dt_scale`` (in (0, 1]) uniformly shrinks every cluster timestep —
        the hook :class:`~repro.core.resilience.ResilientRunner` uses for
        dt-backoff recovery.
        """
        if not 0.0 < dt_scale <= 1.0:
            raise ValueError("dt_scale must be in (0, 1]")
        solver = self.solver
        rate, cmax = self.rate, self.cmax
        dt_macro = self.dt_min * dt_scale * rate**cmax
        span = t_end - solver.t
        if span <= 0:
            return
        n_macro = max(1, int(np.ceil(span / dt_macro - 1e-12)))
        dt_min = span / (n_macro * rate**cmax)
        dts = np.array([dt_min * rate**c for c in range(self.n_clusters)])
        self._t0 = solver.t

        op = self.op
        ne, nb = op.n_elements, op.nbasis
        # exact integer time in units of dt_min: with many clusters the
        # floating-point drift of accumulated times would otherwise exceed
        # any fixed epsilon and deadlock the scheduler
        steps_int = np.array([rate**c for c in range(self.n_clusters)], dtype=np.int64)
        t_int = np.zeros(self.n_clusters, dtype=np.int64)
        pred_int = np.zeros(self.n_clusters, dtype=np.int64)
        end_int = n_macro * rate**cmax

        derivs = self.backend.predict(solver.Q)
        Iown = np.zeros((ne, nb, 9))
        Ibuf = np.zeros((ne, nb, 9))
        for c in range(self.n_clusters):
            mask = self.masks[c]
            Iown[mask] = taylor_integrate(derivs[mask], 0.0, dts[c])

        def eligible(c):
            if t_int[c] >= end_int:
                return False
            t_new = t_int[c] + steps_int[c]
            for cn in self.adjacent[c]:
                if steps_int[cn] > steps_int[c]:
                    if pred_int[cn] > t_int[c] or pred_int[cn] + steps_int[cn] < t_new:
                        return False
                else:
                    if t_int[cn] < t_new:
                        return False
            return True

        macro = self.rate**cmax
        next_sync = macro
        while t_int.min() < end_int:
            candidates = [
                (t_int[ci] + steps_int[ci], steps_int[ci], ci)
                for ci in range(self.n_clusters)
                if eligible(ci)
            ]
            if not candidates:
                raise RuntimeError("LTS scheduler deadlock (inconsistent clustering)")
            _, _, c = min(candidates)
            # trace slice per cluster step: the Perfetto timeline colors
            # these by cluster id, exposing the rate-2 update cadence
            if _TEL.enabled and _TEL.tracing:
                with _TEL.trace_span("lts/cluster", cluster=int(c),
                                     elems=int(self.elem_count[c]),
                                     t_int=int(t_int[c]),
                                     dt=float(dts[c])):
                    self._step_cluster(
                        c, t_int, pred_int, steps_int, dt_min, dts, derivs,
                        Iown, Ibuf, end_int
                    )
            else:
                self._step_cluster(
                    c, t_int, pred_int, steps_int, dt_min, dts, derivs, Iown,
                    Ibuf, end_int
                )
            t_int[c] += steps_int[c]
            self.updates[c] += 1
            if _TEL.enabled:
                _TEL.count(f"lts/updates/c{c}")
                _TEL.count(f"lts/elem_updates/c{c}", int(self.elem_count[c]))
            if callback is not None and t_int.min() >= next_sync:
                solver.t = self._t0 + next_sync * dt_min
                callback(solver)
                next_sync += macro

        solver.t = t_end

    # ------------------------------------------------------------------
    def _step_cluster(
        self, c, t_int, pred_int, steps_int, dt_min, dts, derivs, Iown, Ibuf, end_int
    ) -> None:
        solver = self.solver
        op = self.op
        mask = self.masks[c]
        t_a = t_int[c] * dt_min
        t_b = t_a + dts[c]

        # assemble per-element time-integrated data for this window
        I = np.zeros((op.n_elements, op.nbasis, 9))
        I[mask] = Iown[mask]
        for cn in self.adjacent[c]:
            mn = self.masks[cn]
            if steps_int[cn] > steps_int[c]:
                off = (t_int[c] - pred_int[cn]) * dt_min
                I[mn] = taylor_integrate(derivs[mn], off, off + dts[c])
            else:
                I[mn] = Ibuf[mn]

        out = self.backend.corrector(
            I, derivs, dts[c], t0=self._t0 + t_a, active=mask,
            gravity_mask=self.gravity_masks[c],
            motion_mask=None if self.motion_masks is None else self.motion_masks[c],
        )
        solver.Q[mask] += out[mask]

        # the just-completed window becomes available to coarser neighbors
        Ibuf[mask] += Iown[mask]
        # buffers of finer neighbors covering [t_a, t_b] were consumed above
        for cn in self.adjacent[c]:
            if steps_int[cn] < steps_int[c]:
                Ibuf[self.masks[cn]] = 0.0

        # next predictor for this cluster (skip if the run is over for it)
        if t_int[c] + steps_int[c] < end_int:
            self.backend.update_predictor(solver.Q, mask, dts[c], derivs, Iown)
            pred_int[c] = t_int[c] + steps_int[c]
