"""Clustered rate-2 local time-stepping (paper Sec. 4.4).

Elements are grouped into clusters with timestep ``2^c * dt_min``; the
cluster assignment is *normalized* so neighboring elements differ by at most
one level (SeisSol's constraint, which keeps the flux exchange simple and
the loops batched).  Fault faces and their two adjacent elements are forced
into a common cluster.

Flux exchange across cluster boundaries exploits the polynomial-in-time
ADER predictor (the property the paper highlights as making LTS "easy and
efficient" with ADER):

* a neighbor in a *coarser* cluster predicted earlier with a longer window;
  its Taylor expansion is simply integrated over the fine element's
  sub-window;
* a neighbor in a *finer* cluster accumulates its completed window integrals
  into a buffer which the coarse element consumes at its next corrector —
  SeisSol's buffer mechanism.

The update order is the canonical event-driven one: a cluster may step
when (i) every coarser neighboring cluster's Taylor expansion covers the
step window and (ii) every finer neighboring cluster has completed the
window (buffer full).  Because that cadence is static, it is compiled
once into a :class:`~repro.sched.StepPlan` and replayed by the shared
:class:`~repro.sched.Scheduler`; this module only owns the *clustering*
(assignment, normalization, statistics) and the driver facade.
"""

from __future__ import annotations

import numpy as np

from ..sched import HookBus, Scheduler
from .cfl import element_timesteps

__all__ = ["cluster_elements", "lts_statistics", "LocalTimeStepping"]


def cluster_elements(
    mesh, order: int, rate: int = 2, safety: float = 0.35, max_cluster: int | None = None
):
    """Assign every element to an LTS cluster.

    Returns ``(cluster_id, dt_min)`` where cluster ``c`` advances with
    ``rate^c * dt_min``.  Normalization enforces (a) neighbor clusters
    differing by at most one level and (b) both sides of a dynamic-rupture
    fault face sharing a cluster.
    """
    dts = element_timesteps(mesh, order, safety)
    dt_min = float(dts.min())
    cluster = np.floor(np.log(dts / dt_min) / np.log(rate) + 1e-12).astype(np.int64)
    if max_cluster is not None:
        cluster = np.minimum(cluster, max_cluster)

    em = mesh.interior.minus_elem
    ep = mesh.interior.plus_elem
    fault = mesh.interior.is_fault
    # iterate to the fixed point: cluster ids only decrease and are bounded
    # below by 0, so this terminates; the number of sweeps needed can reach
    # the graph diameter (e.g. equality constraints chained along a fault)
    for _ in range(mesh.n_elements + 1):
        before = cluster.copy()
        if fault.any():
            lo = np.minimum(cluster[em[fault]], cluster[ep[fault]])
            np.minimum.at(cluster, em[fault], lo)
            np.minimum.at(cluster, ep[fault], lo)
        np.minimum.at(cluster, em, cluster[ep] + 1)
        np.minimum.at(cluster, ep, cluster[em] + 1)
        if (cluster == before).all():
            break
    else:
        raise RuntimeError("LTS cluster normalization failed to converge")
    return cluster, dt_min


def lts_statistics(cluster: np.ndarray, rate: int = 2) -> dict:
    """Histogram and update-reduction factor of a clustering (cf. Fig. 4).

    The speedup factor compares the number of element updates needed to
    advance one macro step with LTS against global time-stepping at
    ``dt_min``.
    """
    cmax = int(cluster.max())
    counts = np.bincount(cluster, minlength=cmax + 1)
    updates_lts = sum(int(n) * rate ** (cmax - c) for c, n in enumerate(counts))
    updates_gts = int(cluster.size) * rate**cmax
    return {
        "counts": counts,
        "dt_factors": [rate**c for c in range(cmax + 1)],
        "updates_lts": updates_lts,
        "updates_gts": updates_gts,
        "speedup": updates_gts / max(updates_lts, 1),
    }


class LocalTimeStepping:
    """LTS driver wrapping a :class:`~repro.core.solver.CoupledSolver`.

    Reuses the solver's spatial operator, gravity boundary, fault solver and
    sources; only the time-marching differs.
    """

    def __init__(self, solver, rate: int = 2, max_cluster: int | None = None):
        self.solver = solver
        self.op = solver.op
        self.backend = solver.backend
        mesh = solver.mesh
        self.rate = rate
        self.cluster, self.dt_min = cluster_elements(
            mesh, solver.order, rate, solver.cfl_safety, max_cluster
        )
        self.cmax = int(self.cluster.max())
        self.n_clusters = self.cmax + 1
        self.masks = [self.cluster == c for c in range(self.n_clusters)]
        # per-cluster element index arrays, hoisted once: the scheduler's
        # micro-step loop gathers/scatters with these instead of re-running
        # boolean-mask selection every step
        self.idx = [np.flatnonzero(m) for m in self.masks]
        self.elem_count = np.array([int(m.sum()) for m in self.masks])

        em, ep = mesh.interior.minus_elem, mesh.interior.plus_elem
        cm, cp = self.cluster[em], self.cluster[ep]
        self.adjacent = [set() for _ in range(self.n_clusters)]
        for a, b in zip(cm, cp):
            if a != b:
                self.adjacent[int(a)].add(int(b))
                self.adjacent[int(b)].add(int(a))

        g = solver.gravity
        self.gravity_masks = [self.cluster[g.elem] == c for c in range(self.n_clusters)]
        if solver.motion is not None:
            me = solver.motion.elem
            self.motion_masks = [self.cluster[me] == c for c in range(self.n_clusters)]
        else:
            self.motion_masks = None
        self.updates = np.zeros(self.n_clusters, dtype=np.int64)

    def statistics(self) -> dict:
        return lts_statistics(self.cluster, self.rate)

    # ------------------------------------------------------------------
    def run(
        self,
        t_end: float,
        callback=None,
        dt_scale: float = 1.0,
        hooks=None,
    ) -> None:
        """Advance all clusters to exactly ``t_end``.

        Thin adapter over the compiled step-plan scheduler
        (:mod:`repro.sched`): the full micro-step cadence is compiled once
        from ``(n_clusters, rate, n_macro)`` (cached by fingerprint) and
        replayed — no per-micro-step eligibility scan.  ``dt_min`` is
        shrunk slightly so that the macro timestep divides the remaining
        time (keeps the rate synchronization invariants intact).
        ``callback(solver)`` fires at every macro-step synchronization
        point (all clusters aligned), with ``solver.t`` set to that time;
        a :class:`~repro.sched.HookBus` passed as ``hooks`` subscribes to
        the full event stream.  ``dt_scale`` (in (0, 1]) uniformly shrinks
        every cluster timestep — the hook
        :class:`~repro.core.resilience.ResilientRunner` uses for
        dt-backoff recovery.
        """
        bus = HookBus()
        if callback is not None:
            bus.on_sync(callback)
        bus.extend(hooks)
        Scheduler(self.solver, lts=self).run(t_end, dt_scale=dt_scale, hooks=bus)
