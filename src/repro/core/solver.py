"""The fully coupled ADER-DG solver: public entry point of the core library.

:class:`CoupledSolver` assembles the discrete operator for a mesh, owns the
modal state, boundary-condition modules (gravitational free surface) and
optional dynamic-rupture fault solver, and advances the solution with global
time-stepping.  Local time-stepping (paper Sec. 4.4) is provided by
:class:`repro.core.lts.LocalTimeStepping`, which drives the same kernels.

Typical use::

    mesh = layered_ocean_mesh(...)
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=3)
    solver.set_initial_condition(my_function)   # or add sources / faults
    solver.run(t_end=10.0, callback=my_probe)
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..exec.backend import make_backend
from ..obs.telemetry import get_telemetry
from .ader import taylor_integrate
from .basis import tet_basis
from .cfl import element_timesteps
from .gravity import GravityBoundary
from .kernels import SpatialOperator
from .riemann import FaceKind

__all__ = ["CoupledSolver", "PointSource", "ocean_surface_gravity_tagger"]

_TEL = get_telemetry()


def ocean_surface_gravity_tagger(
    mesh, sea_level: float = 0.0, lateral: FaceKind = FaceKind.ABSORBING
):
    """Standard boundary tagging for earthquake-tsunami domains.

    Top faces of acoustic elements at ``z = sea_level`` become gravitational
    free surfaces; top faces of elastic elements (onshore topography) become
    traction-free; all other boundary faces get ``lateral`` (default:
    absorbing, as in the paper's production setups).
    """
    acoustic = mesh.is_acoustic_elem

    def tagger(centroids, normals):
        bnd = mesh.boundary
        tags = np.full(len(centroids), lateral.value)
        up = normals[:, 2] > 0.99
        at_top = np.abs(centroids[:, 2] - sea_level) < 1e-6 * max(
            1.0, abs(sea_level) + float(np.ptp(mesh.vertices[:, 2]))
        )
        top = up & at_top
        is_ac = acoustic[bnd.elem]
        tags[top & is_ac] = FaceKind.GRAVITY_FREE_SURFACE.value
        tags[top & ~is_ac] = FaceKind.FREE_SURFACE.value
        return tags

    return tagger


class PointSource:
    """Kinematic point source with a prescribed moment-rate time function.

    Adds ``s(t) * M * delta(x - x0)`` to the stress equations (a moment
    tensor source) and/or ``s(t) * f * delta(x - x0)`` to the momentum
    equations (a body force), the standard verification source.

    Parameters
    ----------
    position:
        Source location (must lie inside the mesh).
    stf:
        Source-time function ``s(t)`` (e.g. a Ricker wavelet); it is
        integrated by Gauss quadrature over each timestep.
    moment:
        Length-6 Voigt moment-rate amplitude applied to the stress rows.
    force:
        Length-3 body-force amplitude applied to the velocity rows.
    """

    def __init__(self, position, stf: Callable[[float], float], moment=None, force=None):
        self.position = np.asarray(position, dtype=float)
        self.stf = stf
        self.amplitude = np.zeros(9)
        if moment is not None:
            self.amplitude[:6] = np.asarray(moment, dtype=float)
        if force is not None:
            self.amplitude[6:] = np.asarray(force, dtype=float)
        if not self.amplitude.any():
            raise ValueError("point source needs a moment or force amplitude")
        self._elem = None
        self._phi = None

    def bind(self, solver: "CoupledSolver") -> None:
        from .quadrature import gauss_legendre_01

        mesh = solver.mesh
        elem = mesh.locate(self.position[None])[0]
        if elem < 0:
            raise ValueError(f"point source at {self.position} lies outside the mesh")
        xi = mesh.reference_coords(int(elem), self.position[None])[0]
        self._elem = int(elem)
        self._phi = tet_basis(xi[None], solver.order)[0] / mesh.det_jac[elem]
        # divide by rho for body-force components (momentum eq. has rho dv/dt)
        rho = mesh.element_material(self._elem).rho
        self._amp = self.amplitude.copy()
        self._amp[6:] /= rho
        # the time-quadrature rule is fixed: resolve it once, not per step
        self._tq, self._wq = gauss_legendre_01(6)
        self._phi_amp = np.outer(self._phi, self._amp)

    def add(self, out: np.ndarray, t0: float, dt: float) -> None:
        """Accumulate the time-integrated source into the residual."""
        s_int = dt * sum(w * self.stf(t0 + dt * t) for t, w in zip(self._tq, self._wq))
        out[self._elem] += s_int * self._phi_amp


#: face kinds a *boundary* face may legally carry (INTERIOR and FAULT are
#: interior-face concepts; anything else is a tagger bug)
_VALID_BOUNDARY_KINDS = frozenset(
    k.value
    for k in (
        FaceKind.FREE_SURFACE,
        FaceKind.GRAVITY_FREE_SURFACE,
        FaceKind.ABSORBING,
        FaceKind.WALL,
        FaceKind.PRESCRIBED_MOTION,
    )
)


def _validate_mesh_inputs(mesh) -> None:
    """Fail fast on inputs that would otherwise surface as downstream NaNs."""
    for i, mat in enumerate(mesh.materials):
        vals = (mat.rho, mat.lam, mat.mu)
        if not all(np.isfinite(v) for v in vals):
            raise ValueError(
                f"material {i} has non-finite parameters "
                f"(rho={mat.rho!r}, lam={mat.lam!r}, mu={mat.mu!r}); every "
                "material must have finite rho/lam/mu"
            )
    kinds = np.asarray(mesh.boundary.kind)
    bad = ~np.isin(kinds, list(_VALID_BOUNDARY_KINDS))
    if bad.any():
        offending = sorted(int(k) for k in np.unique(kinds[bad]))
        raise ValueError(
            f"{int(bad.sum())} boundary faces carry invalid or untagged face "
            f"kinds {offending} (valid: "
            f"{sorted(_VALID_BOUNDARY_KINDS)}); call mesh.tag_boundary(...) "
            "with a tagger returning a boundary FaceKind for every face "
            "before constructing the solver"
        )


class CoupledSolver:
    """Fully coupled elastic-acoustic ADER-DG solver with gravity.

    Parameters
    ----------
    mesh:
        A :class:`~repro.mesh.tetmesh.TetMesh` with boundary tags assigned.
    order:
        Polynomial degree N (paper production runs use N = 5).
    gravity_g:
        Gravitational acceleration for the free-surface condition.
    cfl_safety:
        Safety factor in Eq. 27; the paper uses 0.35.
    gravity_integrator:
        ``"exact"`` (default) or ``"rk4"`` for the face ODE.
    backend:
        Execution backend: ``"serial"`` (default), ``"partitioned"``,
        ``"jit"``, or a pre-built
        :class:`~repro.exec.backend.ExecutionBackend` instance.
    workers:
        Thread-pool size for the partitioned backend.
    kernel_variant:
        Kernel execution variant for the spatial operator: ``"batched"``
        (the original per-group einsum kernels), ``"fused"`` (stacked-GEMM
        contraction chains, the default) or ``"jit"`` (numba element
        loops; falls back to ``"fused"`` without numba).  ``None`` defers
        to the backend's implied variant (``--backend jit`` implies
        ``"jit"``), then to the library default.
    """

    def __init__(
        self,
        mesh,
        order: int,
        gravity_g: float = 9.81,
        cfl_safety: float = 0.35,
        fault=None,
        gravity_integrator: str = "exact",
        bottom_motion=None,
        flux_variant: str = "exact",
        gravity_eta_velocity: str = "middle",
        backend="serial",
        workers: int | None = None,
        kernel_variant: str | None = None,
    ):
        _validate_mesh_inputs(mesh)
        self.mesh = mesh
        self.order = order
        # the backend is resolved first so it can imply a kernel variant
        # (JitBackend -> "jit"); it still *binds* last, see below
        self.backend = make_backend(backend, workers=workers)
        if kernel_variant is None:
            kernel_variant = getattr(self.backend, "kernel_variant", None)
        self.op = SpatialOperator(mesh, order, gravity_g,
                                  flux_variant=flux_variant,
                                  kernel_variant=kernel_variant)
        self.Q = self.op.new_state()
        self.t = 0.0
        self.cfl_safety = cfl_safety
        self.dt_elem = element_timesteps(mesh, order, cfl_safety)
        if not np.isfinite(self.dt_elem).all() or self.dt_elem.min() <= 0:
            worst = int(np.argmin(np.where(np.isfinite(self.dt_elem), self.dt_elem, -np.inf)))
            raise ValueError(
                f"mesh yields a non-positive or non-finite CFL timestep "
                f"(dt_elem.min() = {self.dt_elem.min()!r}, e.g. element {worst} with "
                f"insphere diameter {mesh.insphere_diameter[worst]!r}); the mesh "
                "contains degenerate (sliver) elements — repair it before solving"
            )
        self.dt = float(self.dt_elem.min())
        self.gravity = GravityBoundary(
            self.op, gravity_g, integrator=gravity_integrator, eta_velocity=gravity_eta_velocity
        )
        self.fault = fault
        if fault is not None:
            fault.bind(self.op)
        self.motion = None
        has_motion_faces = bool(
            (mesh.boundary.kind == FaceKind.PRESCRIBED_MOTION.value).any()
        )
        if bottom_motion is not None:
            from .motion import PrescribedMotionBoundary

            self.motion = PrescribedMotionBoundary(self.op, bottom_motion)
            if len(self.motion) == 0:
                raise ValueError("bottom_motion given but no PRESCRIBED_MOTION faces tagged")
        elif has_motion_faces:
            raise ValueError("PRESCRIBED_MOTION faces tagged but no bottom_motion given")
        self.sources: list[PointSource] = []
        # the backend binds last: partitioning needs gravity/fault/motion set
        self.backend.bind(self)

    # ------------------------------------------------------------------
    @property
    def n_dof(self) -> int:
        return self.Q.size

    def add_source(self, source: PointSource) -> None:
        source.bind(self)
        self.sources.append(source)

    def set_initial_condition(self, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """L2-project ``fn(points) -> (npts, 9)`` onto the modal basis."""
        ref = self.op.ref
        pts = self.mesh.map_points(np.arange(self.mesh.n_elements), ref.vol_points)
        vals = fn(pts.reshape(-1, 3)).reshape(pts.shape[0], pts.shape[1], 9)
        # orthonormal reference basis: Q_l = sum_q w_q phi_l(xi_q) f(x_q) * 6
        # (reference weights sum to the tet volume 1/6; basis is orthonormal
        # w.r.t. the *unweighted* reference measure, so no detJ appears)
        self.Q = np.einsum("qb,q,eqn->ebn", ref.V, ref.vol_weights, vals)

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Point values of the current solution, ``(npts, 9)``."""
        points = np.atleast_2d(points)
        elems = self.mesh.locate(points)
        if (elems < 0).any():
            raise ValueError("evaluation point outside mesh")
        out = np.empty((len(points), 9))
        for i, (e, x) in enumerate(zip(elems, points)):
            xi = self.mesh.reference_coords(int(e), x[None])
            out[i] = tet_basis(xi, self.order)[0] @ self.Q[e]
        return out

    # ------------------------------------------------------------------
    def step(self, dt: float | None = None) -> None:
        """One global ADER-DG timestep (predictor + corrector)."""
        dt = self.dt if dt is None else dt
        with _TEL.phase("step"):
            derivs = self.backend.predict(self.Q)
            I = taylor_integrate(derivs, 0.0, dt)
            R = self.backend.corrector(I, derivs, dt, t0=self.t)
            self.Q += R
            self.t += dt

    def run(
        self,
        t_end: float,
        dt: float | None = None,
        callback: Callable[["CoupledSolver"], None] | None = None,
        hooks=None,
    ) -> None:
        """Advance to ``t_end`` with uniform steps (last step shortened).

        Thin adapter over the compiled step-plan scheduler
        (:mod:`repro.sched`): the step count is fixed up front by the
        integer clock, so a ``t_end`` that is a whole number of steps up
        to float error never produces a sliver step.  ``callback(solver)``
        fires after every step; a :class:`~repro.sched.HookBus` passed as
        ``hooks`` subscribes to the full event stream.
        """
        from ..sched import HookBus, Scheduler

        bus = HookBus()
        if callback is not None:
            bus.on_sync(callback)
        bus.extend(hooks)
        Scheduler(self).run(t_end, dt=dt, hooks=bus)

    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Total (elastic + kinetic) discrete energy — a Godunov-flux
        Lyapunov function: non-increasing in time for closed domains.

        The stress/velocity ordering matches the state layout of
        :func:`repro.core.materials.jacobians`.
        """
        mesh = self.mesh
        e_tot = 0.0
        for mid, mat in enumerate(mesh.materials):
            sel = mesh.material_ids == mid
            if not sel.any():
                continue
            Q = self.Q[sel]
            detJ = mesh.det_jac[sel]
            # modal Parseval: int_K f^2 dV = detJ * sum_l coeff_l^2
            sq = np.einsum("ebn,ebn->en", Q, Q)
            lam, mu, rho = mat.lam, mat.mu, mat.rho
            kinetic = 0.5 * rho * sq[:, 6:9].sum(axis=1)
            if mat.is_acoustic:
                # p = -sigma_kk/3; acoustic energy p^2 / (2K): use mean stress
                trace_sq = np.einsum("eb,eb->e", Q[:, :, :3].sum(axis=2), Q[:, :, :3].sum(axis=2))
                elastic_e = trace_sq / (9.0 * 2.0 * lam)
            else:
                # isotropic compliance: eps = S sigma;  e = 1/2 sigma:S:sigma
                E_mod = mu * (3 * lam + 2 * mu) / (lam + mu)
                nu = lam / (2 * (lam + mu))
                s = Q[:, :, :6]
                sxx, syy, szz = s[:, :, 0], s[:, :, 1], s[:, :, 2]
                sxy, syz, sxz = s[:, :, 3], s[:, :, 4], s[:, :, 5]
                e_dens = (
                    (sxx**2 + syy**2 + szz**2).sum(axis=1)
                    - 2 * nu * (sxx * syy + syy * szz + sxx * szz).sum(axis=1)
                    + 2 * (1 + nu) * (sxy**2 + syz**2 + sxz**2).sum(axis=1)
                ) / (2 * E_mod)
                elastic_e = e_dens
            e_tot += float(np.sum(detJ * (kinetic + elastic_e)))
        return e_tot
