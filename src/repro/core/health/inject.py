"""Deterministic fault injection: test the recovery path, not just write it.

A :class:`FaultInjector` is handed to
:class:`~repro.core.resilience.ResilientRunner` and fires scripted faults
at exact step numbers of the supervised run:

* :meth:`corrupt_state` — poison a chosen entry of the modal state ``Q``,
  the sea-surface ``eta``, or the fault state ``psi`` (NaN by default);
* :meth:`inflate_dt` — multiply the timestep about to be taken, driving it
  past the CFL bound;
* :meth:`fail_io` — make the next ``count`` checkpoint writes raise
  :class:`InjectedIOError`, exercising the atomic-write / keep-previous
  guarantees.

Actions are *one-shot by default*: after a rollback replays the same step
numbers, a consumed action does not re-fire, so the run recovers.  Pass
``persistent=True`` to re-fire on every attempt and drive the supervisor
into retry exhaustion (:class:`~repro.core.health.SimulationDiverged`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FaultInjector", "InjectedIOError"]


class InjectedIOError(OSError):
    """I/O failure raised by an armed :meth:`FaultInjector.fail_io` action."""


@dataclass
class _Action:
    at_step: int
    kind: str  # "state" | "dt" | "io"
    target: str = "Q"
    value: float = math.nan
    index: int = 0
    factor: float = 64.0
    count: int = 1
    persistent: bool = False
    fired: int = 0


class FaultInjector:
    """Scripted, step-exact fault injection for the resilience supervisor."""

    def __init__(self):
        self._actions: list[_Action] = []
        #: chronological record of fired actions: ``(step, kind, target)``
        self.log: list[tuple] = []

    # -- scripting -------------------------------------------------------
    def corrupt_state(self, at_step: int, target: str = "Q",
                      value: float = math.nan, index: int = 0,
                      persistent: bool = False) -> "FaultInjector":
        """Overwrite one entry of ``target`` (``"Q"``/``"eta"``/``"psi"``)
        just before step ``at_step`` executes."""
        if target not in ("Q", "eta", "psi"):
            raise ValueError(f"unknown corruption target {target!r}")
        self._actions.append(_Action(at_step, "state", target=target,
                                     value=value, index=index,
                                     persistent=persistent))
        return self

    def inflate_dt(self, at_step: int, factor: float = 64.0,
                   persistent: bool = False) -> "FaultInjector":
        """Multiply the timestep of step ``at_step`` by ``factor``."""
        self._actions.append(_Action(at_step, "dt", factor=factor,
                                     persistent=persistent))
        return self

    def fail_io(self, at_step: int, count: int = 1) -> "FaultInjector":
        """Raise :class:`InjectedIOError` on the next ``count`` checkpoint
        writes attempted at or after step ``at_step``."""
        self._actions.append(_Action(at_step, "io", count=count))
        return self

    # -- hooks called by the supervisor ---------------------------------
    def _due(self, a: _Action, step: int) -> bool:
        if a.kind == "io":
            return step >= a.at_step and a.fired < a.count
        return step == a.at_step and (a.persistent or a.fired == 0)

    def on_step(self, solver, step: int) -> float:
        """Apply state corruptions due at ``step``; return the dt factor."""
        dt_factor = 1.0
        for a in self._actions:
            if a.kind == "state" and self._due(a, step):
                if a.target == "Q":
                    solver.Q.flat[a.index] = a.value
                elif a.target == "eta":
                    if not len(solver.gravity):
                        raise ValueError("cannot corrupt eta: no gravity faces")
                    solver.gravity.eta.flat[a.index] = a.value
                else:  # psi
                    if solver.fault is None:
                        raise ValueError("cannot corrupt psi: no fault attached")
                    solver.fault.psi.flat[a.index] = a.value
                a.fired += 1
                self.log.append((step, "state", a.target))
            elif a.kind == "dt" and self._due(a, step):
                dt_factor *= a.factor
                a.fired += 1
                self.log.append((step, "dt", f"x{a.factor:g}"))
        return dt_factor

    def io_gate(self, step: int) -> None:
        """Called before a checkpoint write; raises if an io fault is armed."""
        for a in self._actions:
            if a.kind == "io" and self._due(a, step):
                a.fired += 1
                self.log.append((step, "io", "checkpoint write failed"))
                raise InjectedIOError(
                    f"injected checkpoint I/O failure at step {step}"
                )
