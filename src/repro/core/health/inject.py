"""Deterministic fault injection: test the recovery path, not just write it.

A :class:`FaultInjector` is handed to
:class:`~repro.core.resilience.ResilientRunner` and fires scripted faults
at exact step numbers of the supervised run:

* :meth:`corrupt_state` — poison a chosen entry of the modal state ``Q``,
  the sea-surface ``eta``, or the fault state ``psi`` (NaN by default);
* :meth:`inflate_dt` — multiply the timestep about to be taken, driving it
  past the CFL bound;
* :meth:`fail_io` — make the next ``count`` checkpoint writes raise
  :class:`InjectedIOError`, exercising the atomic-write / keep-previous
  guarantees.

Actions are *one-shot by default*: after a rollback replays the same step
numbers, a consumed action does not re-fire, so the run recovers.  Pass
``persistent=True`` to re-fire on every attempt and drive the supervisor
into retry exhaustion (:class:`~repro.core.health.SimulationDiverged`).

Process-level faults drive the *multi-process* supervision tree of
:mod:`repro.ensemble` — these fire inside an ensemble worker process and
are scoped to a specific *attempt* (process incarnation), because a
respawned worker receives a fresh copy of the injector and per-process
``fired`` counters cannot carry over:

* :meth:`kill_process` — ``SIGKILL`` the worker at step K (an OOM-killer /
  node-failure stand-in; no cleanup, no exit handler);
* :meth:`hang` — stop making progress at step K (sleep), exercising the
  supervisor's heartbeat-timeout detection;
* :meth:`corrupt_result` — truncate/garble the member result file the
  worker publishes, exercising result validation on the parent side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FaultInjector", "InjectedIOError", "InjectedHang",
           "InjectedWorkerDeath"]


class InjectedIOError(OSError):
    """I/O failure raised by an armed :meth:`FaultInjector.fail_io` action."""


class InjectedHang(RuntimeError):
    """Raised by :meth:`FaultInjector.process_gate` in ``simulate`` mode
    instead of actually sleeping (for in-process tests of hang handling)."""


class InjectedWorkerDeath(RuntimeError):
    """Raised by :meth:`FaultInjector.process_gate` in ``simulate`` mode
    instead of an actual ``SIGKILL`` — the ensemble supervisor's degraded
    in-process mode must not kill the driver it degraded into."""


@dataclass
class _Action:
    at_step: int
    kind: str  # "state" | "dt" | "io" | "kill" | "hang" | "corrupt_result"
    target: str = "Q"
    value: float = math.nan
    index: int = 0
    factor: float = 64.0
    count: int = 1
    persistent: bool = False
    fired: int = 0
    #: process-level faults only: the worker attempt (1-based process
    #: incarnation) the action fires on; ``persistent=True`` fires on every
    #: attempt and drives the supervisor into quarantine
    on_attempt: int = 1
    seconds: float = 3600.0


class FaultInjector:
    """Scripted, step-exact fault injection for the resilience supervisor."""

    def __init__(self):
        self._actions: list[_Action] = []
        #: chronological record of fired actions: ``(step, kind, target)``
        self.log: list[tuple] = []

    # -- scripting -------------------------------------------------------
    def corrupt_state(self, at_step: int, target: str = "Q",
                      value: float = math.nan, index: int = 0,
                      persistent: bool = False) -> "FaultInjector":
        """Overwrite one entry of ``target`` (``"Q"``/``"eta"``/``"psi"``)
        just before step ``at_step`` executes."""
        if target not in ("Q", "eta", "psi"):
            raise ValueError(f"unknown corruption target {target!r}")
        self._actions.append(_Action(at_step, "state", target=target,
                                     value=value, index=index,
                                     persistent=persistent))
        return self

    def inflate_dt(self, at_step: int, factor: float = 64.0,
                   persistent: bool = False) -> "FaultInjector":
        """Multiply the timestep of step ``at_step`` by ``factor``."""
        self._actions.append(_Action(at_step, "dt", factor=factor,
                                     persistent=persistent))
        return self

    def fail_io(self, at_step: int, count: int = 1) -> "FaultInjector":
        """Raise :class:`InjectedIOError` on the next ``count`` checkpoint
        writes attempted at or after step ``at_step``."""
        self._actions.append(_Action(at_step, "io", count=count))
        return self

    # -- process-level faults (ensemble worker incarnations) -------------
    def kill_process(self, at_step: int, on_attempt: int = 1,
                     persistent: bool = False) -> "FaultInjector":
        """``SIGKILL`` the current process just before step ``at_step`` of
        worker attempt ``on_attempt`` (every attempt with ``persistent``)."""
        self._actions.append(_Action(at_step, "kill", on_attempt=on_attempt,
                                     persistent=persistent))
        return self

    def hang(self, at_step: int, seconds: float = 3600.0, on_attempt: int = 1,
             persistent: bool = False) -> "FaultInjector":
        """Stop making progress at step ``at_step`` of attempt
        ``on_attempt``: sleep ``seconds`` so heartbeats cease and the
        ensemble supervisor's member timeout fires."""
        self._actions.append(_Action(at_step, "hang", seconds=seconds,
                                     on_attempt=on_attempt,
                                     persistent=persistent))
        return self

    def corrupt_result(self, on_attempt: int = 1,
                       persistent: bool = False) -> "FaultInjector":
        """Garble the member result file written at the end of attempt
        ``on_attempt`` (every attempt with ``persistent``)."""
        self._actions.append(_Action(0, "corrupt_result",
                                     on_attempt=on_attempt,
                                     persistent=persistent))
        return self

    # -- hooks called by the supervisor ---------------------------------
    def _due(self, a: _Action, step: int) -> bool:
        if a.kind == "io":
            return step >= a.at_step and a.fired < a.count
        return step == a.at_step and (a.persistent or a.fired == 0)

    def on_step(self, solver, step: int) -> float:
        """Apply state corruptions due at ``step``; return the dt factor."""
        dt_factor = 1.0
        for a in self._actions:
            if a.kind == "state" and self._due(a, step):
                if a.target == "Q":
                    solver.Q.flat[a.index] = a.value
                elif a.target == "eta":
                    if not len(solver.gravity):
                        raise ValueError("cannot corrupt eta: no gravity faces")
                    solver.gravity.eta.flat[a.index] = a.value
                else:  # psi
                    if solver.fault is None:
                        raise ValueError("cannot corrupt psi: no fault attached")
                    solver.fault.psi.flat[a.index] = a.value
                a.fired += 1
                self.log.append((step, "state", a.target))
            elif a.kind == "dt" and self._due(a, step):
                dt_factor *= a.factor
                a.fired += 1
                self.log.append((step, "dt", f"x{a.factor:g}"))
        return dt_factor

    def io_gate(self, step: int) -> None:
        """Called before a checkpoint write; raises if an io fault is armed."""
        for a in self._actions:
            if a.kind == "io" and self._due(a, step):
                a.fired += 1
                self.log.append((step, "io", "checkpoint write failed"))
                raise InjectedIOError(
                    f"injected checkpoint I/O failure at step {step}"
                )

    # -- hooks called inside an ensemble worker process ------------------
    def _due_process(self, a: _Action, attempt: int) -> bool:
        return (a.persistent or attempt == a.on_attempt) and a.fired == 0

    def process_gate(self, step: int, attempt: int = 1,
                     simulate: bool = False) -> None:
        """Fire kill/hang faults due at ``step`` of worker ``attempt``.

        A kill is an abrupt ``SIGKILL`` of the calling process — the worker
        gets no chance to flush, publish a result, or report back; a hang
        sleeps so the process stays alive but silent.  With ``simulate``
        the hang raises :class:`InjectedHang` instead of sleeping (for
        in-process tests of the supervision logic).
        """
        import os
        import signal
        import time

        for a in self._actions:
            if a.at_step != step or not self._due_process(a, attempt):
                continue
            if a.kind == "kill":
                a.fired += 1
                self.log.append((step, "kill", f"attempt {attempt}"))
                if simulate:
                    raise InjectedWorkerDeath(
                        f"injected kill at step {step} (attempt {attempt})"
                    )
                os.kill(os.getpid(), signal.SIGKILL)
            elif a.kind == "hang":
                a.fired += 1
                self.log.append((step, "hang", f"attempt {attempt}"))
                if simulate:
                    raise InjectedHang(
                        f"injected hang at step {step} (attempt {attempt})"
                    )
                deadline = time.monotonic() + a.seconds
                while time.monotonic() < deadline:
                    time.sleep(min(0.5, a.seconds))

    def result_gate(self, attempt: int = 1) -> bool:
        """``True`` when the member result file written by worker
        ``attempt`` should be corrupted (consumes the action)."""
        for a in self._actions:
            if a.kind == "corrupt_result" and self._due_process(a, attempt):
                a.fired += 1
                self.log.append((-1, "corrupt_result", f"attempt {attempt}"))
                return True
        return False
