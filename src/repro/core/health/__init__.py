"""Per-step solver health monitoring (the instability watchdog).

Long coupled runs fail in a handful of stereotyped ways: a NaN appears in
the modal state and silently spreads, the discrete energy blows up
exponentially (the unstable ``eta``-velocity variant the paper warns about
below Eq. 23 does exactly this), or an externally modified timestep
violates the CFL bound of Eq. 27.  :class:`Watchdog` checks for all three
after every step so a divergence is caught within one step of its onset —
the prerequisite for the rollback/dt-backoff recovery of
:class:`~repro.core.resilience.ResilientRunner`.

Checks
------
``state``
    Every time-marching array (``Q``, sea-surface ``eta``, fault state,
    prescribed-motion uplift) must be finite.
``energy``
    :func:`total_energy` — elastic + kinetic energy plus the gravitational
    potential energy ``1/2 rho g eta^2`` stored in the sea surface — is the
    Godunov-flux Lyapunov function of the semi-discrete scheme (paper
    Sec. 4.2): non-increasing on closed domains.  In ``strict`` mode any
    growth beyond a relative tolerance fails; in ``growth`` mode (domains
    with sources, faults or prescribed motion, which legitimately inject
    energy) only a runaway — energy exceeding the historical maximum by a
    large factor — fails.  ``auto`` picks between the two.
``cfl``
    The timestep in use must not exceed the mesh's admissible CFL step.

The deterministic fault-injection harness used to test the recovery path
lives in :mod:`repro.core.health.inject`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...obs.metrics import get_metrics

__all__ = [
    "HealthReport",
    "HealthError",
    "SimulationDiverged",
    "Watchdog",
    "total_energy",
    "state_arrays",
    "first_nonfinite_index",
]


def state_arrays(solver) -> list[tuple]:
    """The time-marching arrays a health sweep must scan, as
    ``(name, array)`` pairs — shared by :meth:`Watchdog.check` and the
    black-box NaN-origin localization
    (:func:`repro.obs.blackbox.locate_nonfinite`)."""
    arrays = [("Q", solver.Q)]
    if len(solver.gravity):
        arrays.append(("gravity.eta", solver.gravity.eta))
    if solver.motion is not None:
        arrays.append(("motion.uplift", solver.motion.uplift))
    if solver.fault is not None:
        arrays.append(("fault.psi", solver.fault.psi))
        arrays.append(("fault.slip_rate", solver.fault.slip_rate))
        arrays.append(("fault.slip", solver.fault.slip))
    return arrays


def first_nonfinite_index(arr) -> int | None:
    """Flat index of the first non-finite entry, found by bisection.

    ``None`` when the array is entirely finite.  The bisection keeps the
    localization pass O(log n) vectorized ``isfinite`` sweeps over
    shrinking halves instead of materializing a full boolean mask plus
    ``argmin`` — the dump path runs on states that can be large.
    """
    a = np.asarray(arr).ravel()
    if a.size == 0 or np.isfinite(a).all():
        return None
    lo, hi = 0, a.size
    while hi - lo > 1024:
        mid = (lo + hi) // 2
        if not np.isfinite(a[lo:mid]).all():
            hi = mid
        else:
            lo = mid
    return lo + int(np.argmin(np.isfinite(a[lo:hi])))


def total_energy(solver) -> float:
    """Discrete Lyapunov energy: volume energy + sea-surface potential.

    Extends :meth:`CoupledSolver.energy` (elastic + kinetic) with the
    gravitational potential ``1/2 rho g integral eta^2 dA`` of the free
    surface, so the budget is closed under the gravity boundary condition.
    """
    e = solver.energy()
    g = solver.gravity
    if len(g):
        w = solver.op.ref.face_weights
        # reference face area is 1/2, so the physical surface element is
        # 2 * area * w_q
        face_int = 2.0 * g.area * np.einsum("fq,q->f", g.eta**2, w)
        e += float(0.5 * solver.gravity.g * np.sum(g.rho * face_int))
    return e


@dataclass
class HealthReport:
    """Outcome of one watchdog sweep: per-check failure details."""

    t: float
    step: int
    #: check name -> failure description; empty string means the check passed
    checks: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(self.checks.values())

    def __bool__(self) -> bool:
        return self.ok

    @property
    def failures(self) -> list:
        return [f"{k}: {v}" for k, v in self.checks.items() if v]

    def describe(self) -> str:
        if self.ok:
            return f"healthy at t={self.t:.6g} (step {self.step})"
        return (
            f"unhealthy at t={self.t:.6g} (step {self.step}): "
            + "; ".join(self.failures)
        )


class HealthError(RuntimeError):
    """A watchdog check failed; carries the failing :class:`HealthReport`."""

    def __init__(self, report: HealthReport):
        super().__init__(report.describe())
        self.report = report


class SimulationDiverged(RuntimeError):
    """Recovery exhausted: rollback + dt-backoff could not stabilize the run.

    Structured diagnostic for job-level tooling: the failing time/step, how
    many recovery attempts were made, the final dt scale, the wall-clock
    time spent on the failing segment (when known), and the watchdog
    reports of every failed attempt.
    """

    def __init__(self, *, t: float, step: int, attempts: int, dt_scale: float,
                 reports: list, wall_s: float | None = None,
                 bundle: str | None = None):
        self.t = t
        self.step = step
        self.attempts = attempts
        self.dt_scale = dt_scale
        self.wall_s = wall_s
        #: diagnostic-bundle path dumped by the flight recorder (if any)
        self.bundle = bundle
        self.reports = list(reports)
        head = (
            f"simulation diverged at t={t:.6g} (step {step}) after "
            f"{attempts} recovery attempt(s); final dt scale {dt_scale:.3g}"
        )
        if wall_s is not None:
            head += f"; {wall_s:.2f} s wall spent on the failing segment"
        lines = [head]
        for r in self.reports[-3:]:
            lines.append("  " + (r.describe() if isinstance(r, HealthReport) else str(r)))
        super().__init__("\n".join(lines))

    def diagnostics(self) -> dict:
        return {
            "t": self.t,
            "step": self.step,
            "attempts": self.attempts,
            "dt_scale": self.dt_scale,
            "wall_s": self.wall_s,
            "bundle": self.bundle,
            "failures": [
                r.describe() if isinstance(r, HealthReport) else str(r)
                for r in self.reports
            ],
        }


class Watchdog:
    """Scans a :class:`~repro.core.solver.CoupledSolver` for divergence.

    Parameters
    ----------
    solver:
        The solver to monitor.
    energy_mode:
        ``"strict"`` (non-increasing up to ``energy_rtol``), ``"growth"``
        (fail only on runaway beyond ``growth_factor`` times the historical
        maximum), ``"off"``, or ``"auto"`` (default): strict when the
        domain is passive (no sources, fault, or prescribed motion),
        growth otherwise.
    energy_rtol:
        Allowed relative energy increase per check in strict mode.
    growth_factor:
        Runaway threshold in growth mode.
    """

    def __init__(
        self,
        solver,
        energy_mode: str = "auto",
        energy_rtol: float = 1e-8,
        growth_factor: float = 1e4,
        check_state: bool = True,
        check_cfl: bool = True,
    ):
        if energy_mode not in ("auto", "strict", "growth", "off"):
            raise ValueError(f"unknown energy_mode {energy_mode!r}")
        if energy_mode == "auto":
            passive = (
                not solver.sources
                and solver.fault is None
                and solver.motion is None
            )
            energy_mode = "strict" if passive else "growth"
        self.solver = solver
        self.energy_mode = energy_mode
        self.energy_rtol = energy_rtol
        self.growth_factor = growth_factor
        self.check_state = check_state
        self.check_cfl = check_cfl
        self._e_prev: float | None = None
        self._e_max = 0.0

    # -- rollback support ------------------------------------------------
    def snapshot(self) -> dict:
        """Energy-tracking state; pair with :meth:`restore` on rollback."""
        return {"e_prev": self._e_prev, "e_max": self._e_max}

    def restore(self, snap: dict) -> None:
        self._e_prev = snap["e_prev"]
        self._e_max = snap["e_max"]

    def reset(self) -> None:
        self._e_prev = None
        self._e_max = 0.0

    # -- checks ----------------------------------------------------------
    def _check_state(self) -> str:
        bad = []
        for name, arr in state_arrays(self.solver):
            finite = np.isfinite(arr)
            if not finite.all():
                n_nan = int(np.isnan(arr).sum())
                n_inf = int(arr.size - finite.sum()) - n_nan
                # name the first offending entry: the element (leading
                # axis) where the corruption was born, not just counts
                flat = first_nonfinite_index(arr)
                a = np.asarray(arr)
                idx = np.unravel_index(flat, a.shape) if a.ndim else (0,)
                bad.append(
                    f"{name} has {n_nan} NaN / {n_inf} Inf values "
                    f"(first at element {int(idx[0])}, "
                    f"{name}[{', '.join(str(int(i)) for i in idx)}])"
                )
        return "; ".join(bad)

    def _check_energy(self) -> str:
        e = total_energy(self.solver)
        if not np.isfinite(e):
            return f"total energy is non-finite ({e})"
        msg = ""
        if self.energy_mode == "strict":
            if self._e_prev is not None:
                allowed = self._e_prev * (1.0 + self.energy_rtol) + 1e-300
                if e > allowed:
                    msg = (
                        f"energy grew {self._e_prev:.6e} -> {e:.6e} on a closed "
                        "domain (Lyapunov invariant violated, Sec. 4.2)"
                    )
        else:  # growth
            if self._e_max > 0.0 and e > self.growth_factor * self._e_max:
                msg = (
                    f"energy runaway: {e:.6e} exceeds {self.growth_factor:g} x "
                    f"historical max {self._e_max:.6e}"
                )
        if not msg:
            self._e_prev = e
            self._e_max = max(self._e_max, e)
        return msg

    def _check_cfl(self, dt: float | None) -> str:
        if dt is None:
            return ""
        admissible = float(self.solver.dt_elem.min())
        if dt > admissible * (1.0 + 1e-9):
            return (
                f"timestep {dt:.6e} exceeds the admissible CFL step "
                f"{admissible:.6e} (Eq. 27); refusing to integrate"
            )
        return ""

    def check(self, dt: float | None = None, step: int = 0) -> HealthReport:
        """Run all enabled checks; returns a :class:`HealthReport`."""
        report = HealthReport(t=self.solver.t, step=step)
        if self.check_state:
            report.checks["state"] = self._check_state()
        if self.check_cfl:
            report.checks["cfl"] = self._check_cfl(dt)
        if self.energy_mode != "off":
            # skip the energy scan when the state is already known-bad:
            # its message would only duplicate the state failure
            if report.ok:
                report.checks["energy"] = self._check_energy()
        met = get_metrics()
        if met.enabled:
            self._emit_metrics(met, dt, report)
        return report

    def _emit_metrics(self, met, dt: float | None,
                      report: HealthReport) -> None:
        """Physics gauges of this sweep — the watchdog invariants as
        observable quantities (Lyapunov energy budget, CFL margin of
        Eq. 27, peak on-fault slip rate)."""
        if self._e_prev is not None:
            met.set_gauge("health/energy_total", float(self._e_prev))
            if self._e_max > 0.0:
                met.set_gauge("health/energy_drift_ratio",
                              float(self._e_prev / self._e_max) - 1.0)
        if dt is not None and self.check_cfl:
            admissible = float(self.solver.dt_elem.min())
            if admissible > 0.0:
                met.set_gauge("health/cfl_margin", 1.0 - dt / admissible)
        fault = self.solver.fault
        if fault is not None:
            rate = np.asarray(fault.slip_rate)
            if rate.size and np.isfinite(rate).all():
                met.set_gauge("health/max_slip_rate", float(np.abs(rate).max()))
        if not report.ok:
            met.inc("health/check_failures")

    def ensure(self, dt: float | None = None, step: int = 0) -> HealthReport:
        """Like :meth:`check` but raises :class:`HealthError` on failure."""
        report = self.check(dt=dt, step=step)
        if not report.ok:
            raise HealthError(report)
        return report
