"""Prescribed-motion boundary: kinematic seafloor/bottom forcing.

A boundary face whose *normal velocity* is prescribed as a function of
space and time, ``v_n(x, t)`` — the kinematic-source mechanism of coupled
earthquake-tsunami models with prescribed seafloor uplift (e.g. Maeda et
al. 2013, discussed in the paper's Sec. 2), and the tool used by the
Fig. 5 benchmark to measure the non-hydrostatic (Kajiura) transfer
function between seafloor and sea surface.

The inverse Riemann construction mirrors the gravity boundary: the middle
state takes the prescribed normal velocity, the normal traction follows
from the left-going characteristic

    ``sigma_nn^b = sigma_nn^- + Zp (v_pre - v_n^-)``

and shear tractions vanish (free slip).  The ADER corrector needs the
*time-integrated* middle state, assembled from the element's Taylor
predictor (for the interior traces) and Gauss quadrature of the prescribed
function.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .basis import face_points_to_tet
from .materials import SXX, VX, jacobians
from .quadrature import gauss_legendre_01
from .riemann import FaceKind
from .rotation import batched_state_rotation

__all__ = ["PrescribedMotionBoundary"]


class PrescribedMotionBoundary:
    """Drives boundary faces tagged ``FaceKind.PRESCRIBED_MOTION``.

    Parameters
    ----------
    op:
        The solver's :class:`~repro.core.kernels.SpatialOperator`.
    motion:
        ``motion(points, t) -> v`` with ``points`` of shape ``(npts, 3)``;
        positive along the face's *inward* normal, i.e. pushing into the
        domain.  For a seafloor (bottom face) positive means uplift.
    n_time_nodes:
        Gauss nodes for the time integration of the prescribed velocity.
    """

    def __init__(self, op, motion: Callable, n_time_nodes: int | None = None):
        self.op = op
        self.motion = motion
        mesh = op.mesh
        bnd = mesh.boundary
        self.face_ids = np.flatnonzero(bnd.kind == FaceKind.PRESCRIBED_MOTION.value)
        self.elem = bnd.elem[self.face_ids]
        self.local_face = bnd.face[self.face_ids]
        self.area = bnd.area[self.face_ids]
        self.normal = bnd.normal[self.face_ids]
        mats = mesh.materials
        mid = mesh.material_ids[self.elem]
        self.Zp = np.array([mats[m].Zp for m in mid])

        T, _ = batched_state_rotation(self.normal)
        Aloc = np.stack([jacobians(mats[int(m)])[0] for m in mid])
        # shear columns must not contribute: prescribed motion is free-slip
        Aloc[:, :, 3] = 0.0
        Aloc[:, :, 5] = 0.0
        Aloc[:, :, 7] = 0.0
        Aloc[:, :, 8] = 0.0
        self.TA = np.einsum("fij,fjk->fik", T, Aloc)

        nq = op.ref.n_face_points
        self.points = np.empty((len(self.face_ids), nq, 3))
        for f in range(4):
            sel = self.local_face == f
            if np.any(sel):
                pts = face_points_to_tet(f, op.ref.face_points)
                self.points[sel] = mesh.map_points(self.elem[sel], pts)
        self.n_time_nodes = n_time_nodes or (op.order + 2)
        self._tq, self._wq = gauss_legendre_01(self.n_time_nodes)
        self.uplift = np.zeros((len(self.face_ids), nq))  # integral of v_pre

    def __len__(self) -> int:
        return len(self.face_ids)

    def step(self, derivs, dt: float, out: np.ndarray, t0: float = 0.0, face_mask=None) -> None:
        """Add the time-integrated prescribed-motion flux over ``[t0, t0+dt]``."""
        if len(self.face_ids) == 0:
            return
        idx = np.arange(len(self.face_ids)) if face_mask is None else np.flatnonzero(face_mask)
        if idx.size == 0:
            return
        ref = self.op.ref
        nq = ref.n_face_points
        nf = len(idx)

        # interior traces, time-integrated via the Taylor predictor
        el = self.elem[idx]
        lf = self.local_face[idx]
        # integrate traces of sigma_nn^- and v_n^- over the window
        from .ader import taylor_integrate

        I_elem = taylor_integrate(derivs[el], 0.0, dt)  # (nf, B, 9)
        tr = np.empty((nf, nq, 9))
        for f in range(4):
            sel = lf == f
            if np.any(sel):
                tr[sel] = ref.E_minus[f] @ I_elem[sel]
        n = self.normal[idx]
        # rotate the needed components to the face frame: sigma_nn, v_n
        # (sigma_nn = n.sigma.n; v_n = n.v)
        sxx, syy, szz = tr[:, :, 0], tr[:, :, 1], tr[:, :, 2]
        sxy, syz, sxz = tr[:, :, 3], tr[:, :, 4], tr[:, :, 5]
        nx, ny, nz = n[:, 0:1], n[:, 1:2], n[:, 2:3]
        int_snn = (
            sxx * nx**2 + syy * ny**2 + szz * nz**2
            + 2 * (sxy * nx * ny + syz * ny * nz + sxz * nx * nz)
        )
        int_vn = tr[:, :, 6] * nx + tr[:, :, 7] * ny + tr[:, :, 8] * nz

        # time-integrated prescribed velocity (Gauss quadrature); the user
        # convention is inward-positive, the Riemann frame outward-positive
        pts = self.points[idx].reshape(-1, 3)
        int_motion = np.zeros(nf * nq)
        for tau, w in zip(self._tq, self._wq):
            int_motion += dt * w * np.asarray(self.motion(pts, t0 + tau * dt))
        int_motion = int_motion.reshape(nf, nq)
        self.uplift[idx] += int_motion
        int_vpre = -int_motion

        Zp = self.Zp[idx][:, None]
        w_hat = np.zeros((nf, nq, 9))
        w_hat[:, :, SXX] = int_snn + Zp * (int_vpre - int_vn)
        w_hat[:, :, VX] = int_vpre
        flux = np.einsum("fij,fqj->fqi", self.TA[idx], w_hat, optimize=True)
        self.op.project_face_flux(self.elem[idx], self.local_face[idx], self.area[idx], flux, out)
