"""Supervised time integration: rollback + dt-backoff + checkpointing.

:class:`ResilientRunner` wraps :meth:`CoupledSolver.run` (global
time-stepping) or :class:`~repro.core.lts.LocalTimeStepping` (clustered
LTS) with the production-run survival loop the paper's SeisSol setups get
from their HPC stack:

1. the run is split into *segments* of ``checkpoint_every`` simulated
   seconds (or a single segment when not set);
2. an in-memory snapshot is taken at every segment boundary, and — when a
   checkpoint directory is configured — an atomic on-disk checkpoint is
   written (:mod:`repro.io.checkpoint`);
3. a :class:`~repro.core.health.Watchdog` scans the state after every step
   (GTS) or LTS macro-step synchronization point;
4. on a watchdog trip the segment is rolled back to its snapshot and
   retried with the timestep halved (bounded backoff); once a segment
   completes cleanly the scale relaxes back toward 1;
5. when ``max_retries`` rollbacks cannot stabilize a segment, a structured
   :class:`~repro.core.health.SimulationDiverged` is raised with the full
   failure history instead of silently writing NaNs to disk.

With the default scale of 1 and no failures, the runner reproduces the
plain ``run`` trajectories bit for bit — and a run resumed from a segment
checkpoint matches the uninterrupted run exactly (asserted by the tests).
"""

from __future__ import annotations

import os
import time
import traceback
import warnings

from ..io.checkpoint import (
    CheckpointError,
    CheckpointManager,
    capture_state,
    latest_checkpoint,
    restore_checkpoint,
    restore_state,
)
from ..obs.blackbox import BUNDLE_SUFFIX, FlightRecorder, dump_bundle
from ..sched import HookBus, Scheduler
from .health import HealthError, SimulationDiverged, Watchdog

__all__ = ["ResilientRunner"]


class ResilientRunner:
    """Supervisor for long :class:`CoupledSolver` / LTS runs.

    Parameters
    ----------
    solver:
        The coupled solver to supervise.
    lts:
        Optional :class:`~repro.core.lts.LocalTimeStepping` wrapping the
        same solver; when given, segments advance with LTS and health is
        checked at macro-step synchronization points.
    watchdog:
        A preconfigured :class:`Watchdog`; by default one is created with
        ``energy_mode="auto"``.
    checkpoint_every:
        Segment length in *simulated* seconds.  ``None`` runs each
        ``run()`` call as a single segment (still with rollback).
    checkpoint_dir:
        Directory for rotating on-disk checkpoints; ``None`` keeps
        snapshots in memory only.
    max_retries:
        Rollback attempts per segment before giving up.
    backoff:
        Timestep multiplier applied on each rollback (0 < backoff < 1).
    injector:
        Optional :class:`~repro.core.health.inject.FaultInjector` for
        deterministic failure testing.
    runlog:
        Optional :class:`~repro.obs.runlog.RunLog`; checkpoint, resume,
        recovery and divergence events are appended to it as structured
        records alongside whatever the caller logs.
    blackbox:
        Keep the always-on flight recorder (default).  The ring records
        every scheduler micro-step window plus the watchdog's per-step
        gauges; on a watchdog trip or divergence a fingerprinted
        diagnostic bundle (``*.blackbox.json``) is dumped into
        ``blackbox_dir`` and its path attached to the matching
        recovery/diverged run-log event (``None`` when no directory is
        configured — the ring still records).
    blackbox_dir:
        Where bundles land; defaults to ``checkpoint_dir``.
    """

    def __init__(
        self,
        solver,
        lts=None,
        watchdog: Watchdog | None = None,
        checkpoint_every: float | None = None,
        checkpoint_dir: str | None = None,
        keep: int = 3,
        max_retries: int = 4,
        backoff: float = 0.5,
        injector=None,
        verbose: bool = True,
        runlog=None,
        blackbox: bool = True,
        blackbox_dir: str | None = None,
        blackbox_capacity: int = 256,
    ):
        if lts is not None and lts.solver is not solver:
            raise ValueError("lts wraps a different solver instance")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive (seconds)")
        if not 0.0 < backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")
        self.solver = solver
        self.lts = lts
        self.watchdog = watchdog if watchdog is not None else Watchdog(solver)
        self.checkpoint_every = checkpoint_every
        self.max_retries = max_retries
        self.backoff = backoff
        self.injector = injector
        self.verbose = verbose
        self.runlog = runlog
        self.manager = (
            CheckpointManager(checkpoint_dir, solver, lts, keep=keep)
            if checkpoint_dir
            else None
        )
        #: completed fine steps (GTS) or macro synchronizations (LTS)
        self.step_count = 0
        #: current timestep multiplier, halved on rollback, relaxed on success
        self.dt_scale = 1.0
        #: total rollbacks performed over the runner's lifetime
        self.rollbacks = 0
        #: checkpoint paths written, in order
        self.checkpoints_written: list = []
        #: the always-on flight recorder (``None`` only when opted out)
        self.recorder = (
            FlightRecorder(blackbox_capacity) if blackbox else None
        )
        self.blackbox_dir = blackbox_dir or checkpoint_dir
        #: diagnostic bundles dumped over the runner's lifetime, in order
        self.bundles_written: list = []
        #: newest bundle of the *current* run (``None`` on a clean run —
        #: a recovered attempt must never carry a stale bundle path)
        self.last_bundle: str | None = None
        #: identity fields (member id, attempt) merged into every bundle
        self.bundle_context: dict = {}
        #: execution backend the supervised solver runs on (serial or
        #: partitioned — the runner itself is backend-agnostic: backends
        #: hold no time-marching state, so rollback/resume never touch them)
        self.backend = getattr(solver, "backend", None)

    # ------------------------------------------------------------------
    def resume(self, path: str | None = None, strict: bool = True) -> dict:
        """Restore the solver from a checkpoint file or directory.

        ``path`` may be a checkpoint file, a directory to scan for the
        newest checkpoint, or ``None`` to use the configured checkpoint
        directory.  Returns the checkpoint metadata.
        """
        if path is None:
            if self.manager is None:
                raise CheckpointError(
                    "no checkpoint path given and no checkpoint_dir configured"
                )
            path = self.manager.latest()
            if path is None:
                raise CheckpointError(
                    f"no checkpoints found in {self.manager.directory!r}"
                )
        elif os.path.isdir(path):
            found = latest_checkpoint(path)
            if found is None:
                raise CheckpointError(f"no checkpoints found in {path!r}")
            path = found
        meta = restore_checkpoint(path, self.solver, self.lts, strict=strict)
        try:
            self.step_count = int(float(meta.get("step", 0)))
        except (TypeError, ValueError):
            self.step_count = 0
        self.watchdog.reset()
        if self.recorder is not None:
            self.recorder.record("resume", path=path, step=self.step_count)
        if self.runlog is not None:
            self.runlog.emit(
                "resume", path=path, step=self.step_count, sim_t=self.solver.t
            )
        if self.verbose:
            print(
                f"[resilience] resumed from {path} at t={self.solver.t:.6g} "
                f"(step {self.step_count})"
            )
        return meta

    # ------------------------------------------------------------------
    def run(self, t_end: float, callback=None, hooks=None) -> None:
        """Advance to ``t_end`` under supervision (see class docstring).

        The supervision itself rides the scheduler's
        :class:`~repro.sched.HookBus`: the watchdog subscribes to the step
        stream, ``callback`` keeps the legacy per-sync convention, an
        optional caller-provided ``hooks`` bus is merged in, and checkpoint
        writes fire on the segment-end event.
        """
        solver = self.solver
        bus = HookBus()
        self._subscribe_supervision(bus)
        if callback is not None:
            bus.on_sync(callback)
        bus.extend(hooks)
        bus.on_segment_end(self._checkpoint_hook)
        eps = 1e-12 * max(abs(t_end), 1.0)
        snap = self._snapshot()
        while solver.t < t_end - eps:
            if self.checkpoint_every is not None:
                target = min(solver.t + self.checkpoint_every, t_end)
                if t_end - target < eps:
                    target = t_end
            else:
                target = t_end
            attempts = 0
            reports = []
            seg_wall0 = time.perf_counter()
            while True:
                try:
                    self._advance(target, bus)
                    break
                except HealthError as err:
                    attempts += 1
                    self.rollbacks += 1
                    reports.append(err.report)
                    seg_wall = time.perf_counter() - seg_wall0
                    if attempts > self.max_retries:
                        # dump before anything else: the state still holds
                        # the corruption the localization must bisect
                        bundle = self._dump(
                            kind="diverged", report=err.report,
                            reports=reports, attempts=attempts,
                            excerpt=True,
                        )
                        if self.runlog is not None:
                            self.runlog.emit(
                                "diverged", step=err.report.step,
                                sim_t=err.report.t, attempts=attempts,
                                dt_scale=self.dt_scale, wall_s=seg_wall,
                                bundle=bundle,
                            )
                        raise SimulationDiverged(
                            t=err.report.t,
                            step=err.report.step,
                            attempts=attempts,
                            dt_scale=self.dt_scale,
                            reports=reports,
                            wall_s=seg_wall,
                            bundle=bundle,
                        ) from err
                    bundle = self._dump(kind="recovery", report=err.report,
                                        reports=reports, attempts=attempts)
                    self._rollback(snap)
                    self.dt_scale = (
                        min(self.dt_scale, snap["dt_scale"]) * self.backoff
                    )
                    if self.recorder is not None:
                        self.recorder.record(
                            "recovery", step=err.report.step,
                            t=err.report.t, attempt=attempts,
                            dt_scale=self.dt_scale,
                        )
                    if self.runlog is not None:
                        self.runlog.emit(
                            "recovery", step=err.report.step, sim_t=err.report.t,
                            attempt=attempts, max_retries=self.max_retries,
                            dt_scale=self.dt_scale, wall_s=seg_wall,
                            reason=err.report.describe(), bundle=bundle,
                        )
                    if self.verbose:
                        print(
                            f"[resilience] {err.report.describe()} — rolled "
                            f"back to t={solver.t:.6g}, retry {attempts}/"
                            f"{self.max_retries} with dt scale "
                            f"{self.dt_scale:.3g} "
                            f"({seg_wall:.2f} s wall on this segment)"
                        )
            # healthy segment: relax the backoff and persist
            self.dt_scale = min(1.0, self.dt_scale / self.backoff)
            snap = self._snapshot()
            bus.segment_end(solver)

    # ------------------------------------------------------------------
    def _subscribe_supervision(self, bus: HookBus) -> None:
        """Attach step counting + watchdog sweeps to the scheduler's bus.

        Registered first so health is checked before any user callback
        sees the state.  Under GTS every micro-step is swept (the event
        carries the nominal dt the CFL monitor must see); under LTS the
        sweep runs at macro-step synchronization points.
        """
        rec = self.recorder
        if self.lts is not None:
            if rec is not None:
                # cluster/window ids of every LTS micro-step window
                rec.subscribe(bus)

            def watch_sync(s):
                factor = (
                    self.injector.on_step(s, self.step_count)
                    if self.injector is not None
                    else 1.0
                )
                self.step_count += 1
                dt = self.lts.dt_min * self.dt_scale * factor
                self.watchdog.ensure(dt=dt, step=self.step_count)
                if rec is not None:
                    rec.record_step(self.step_count, s.t, dt,
                                    energy=self.watchdog._e_prev,
                                    dt_scale=self.dt_scale)

            bus.on_sync(watch_sync)
        else:

            def watch_micro(s, event):
                self.step_count += 1
                self.watchdog.ensure(dt=event.dt_nominal, step=self.step_count)
                if rec is not None:
                    rec.record_step(self.step_count, s.t, event.dt,
                                    energy=self.watchdog._e_prev,
                                    dt_scale=self.dt_scale)

            bus.on_micro_step(watch_micro)

    def _advance(self, target: float, bus: HookBus) -> None:
        dt_factor = None
        if self.lts is None and self.injector is not None:

            def dt_factor(s):
                return self.injector.on_step(s, self.step_count)

        Scheduler(self.solver, lts=self.lts).run(
            target, dt_scale=self.dt_scale, hooks=bus, dt_factor=dt_factor
        )

    def _checkpoint_hook(self, solver) -> None:
        self._write_checkpoint()

    # -- black-box forensics -------------------------------------------
    def _dump(self, *, kind: str, report=None, reports=None,
              attempts: int = 0, error: str | None = None,
              excerpt: bool = False) -> str | None:
        """Dump one diagnostic bundle from the live (still-corrupt) state.

        Returns the bundle path, or ``None`` when the recorder is off, no
        directory is configured, or the write itself fails — forensics
        must never turn a diagnosable fault into a crash.
        """
        if self.recorder is None or self.blackbox_dir is None:
            return None
        from ..obs.runlog import run_manifest

        name = (f"step{self.step_count:08d}-"
                f"{len(self.bundles_written):02d}-{kind}{BUNDLE_SUFFIX}")
        path = os.path.join(self.blackbox_dir, name)
        failures = [
            r.describe() if hasattr(r, "describe") else str(r)
            for r in (reports or ([report] if report is not None else []))
        ]
        spans = self._recent_spans()
        try:
            state = (capture_state(self.solver, self.lts)
                     if excerpt else None)
            dump_bundle(
                path,
                kind=kind,
                reason=report.describe() if report is not None else None,
                ring=self.recorder,
                solver=self.solver,
                lts=self.lts,
                error=error,
                failures=failures,
                manifest=run_manifest(self.solver, config={
                    "supervised": True,
                    "max_retries": self.max_retries,
                    "checkpoint_every": self.checkpoint_every,
                }),
                context=dict(self.bundle_context),
                spans=spans,
                extra={"attempts": attempts, "dt_scale": self.dt_scale,
                       "step": self.step_count},
                state=state,
            )
        except Exception as exc:
            warnings.warn(
                f"diagnostic-bundle dump failed at step {self.step_count}: "
                f"{exc}; continuing — the fault itself is still reported",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self.bundles_written.append(path)
        self.last_bundle = path
        return path

    @staticmethod
    def _recent_spans(limit: int = 32) -> list:
        """Tail of the telemetry span buffer (empty unless tracing)."""
        from ..obs.telemetry import get_telemetry

        tel = get_telemetry()
        if not tel.enabled:
            return []
        try:
            spans = tel.trace_snapshot().get("spans", [])
        except Exception:
            return []
        return [list(s[:4]) for s in spans[-limit:]]

    def dump_exception(self, exc: BaseException) -> str | None:
        """Dump a bundle for an unhandled exception (worker crash path)."""
        error = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        return self._dump(kind="exception", error=error, excerpt=True)

    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        return {
            "state": capture_state(self.solver, self.lts),
            "watchdog": self.watchdog.snapshot(),
            "step": self.step_count,
            "dt_scale": self.dt_scale,
        }

    def _rollback(self, snap: dict) -> None:
        restore_state(self.solver, snap["state"], self.lts)
        self.watchdog.restore(snap["watchdog"])
        self.step_count = snap["step"]

    def _write_checkpoint(self) -> None:
        if self.manager is None:
            return
        try:
            if self.injector is not None:
                self.injector.io_gate(self.step_count)
            meta = {"dt_scale": self.dt_scale}
            if self.backend is not None:
                # informational only: states are backend-portable, a run may
                # resume under a different backend / worker count
                meta["backend"] = self.backend.describe()
            path = self.manager.save(self.step_count, metadata=meta)
        except OSError as exc:
            # a failed write must never kill a healthy run: the previous
            # checkpoint is still intact (atomic publish), so just warn
            warnings.warn(
                f"checkpoint write failed at step {self.step_count}: {exc}; "
                "continuing — the previous checkpoint remains valid",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            self.checkpoints_written.append(path)
            if self.recorder is not None:
                self.recorder.record("checkpoint", step=self.step_count,
                                     t=self.solver.t, path=path)
            if self.runlog is not None:
                self.runlog.emit(
                    "checkpoint", path=path, step=self.step_count,
                    sim_t=self.solver.t,
                )
