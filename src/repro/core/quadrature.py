"""Quadrature rules on reference simplices.

The reference elements used throughout the library are the *unit* simplices

* unit triangle  ``T2 = {(r, s)    : r, s >= 0, r + s <= 1}``      (area 1/2)
* unit tetrahedron ``T3 = {(u, v, w): u, v, w >= 0, u + v + w <= 1}`` (volume 1/6)

Rules are conical-product (collapsed-coordinate) Gauss-Jacobi rules: a rule
with ``n`` points per direction integrates polynomials of total degree
``2n - 1`` exactly on the simplex.  This is the classical construction used
by modal DG codes (Karniadakis & Sherwin); it is fully symmetric in the
collapsed direction and has strictly positive weights.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.special import roots_jacobi


def gauss_jacobi_01(n: int, alpha: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Jacobi rule on [0, 1] with weight function ``(1 - x)**alpha``.

    Returns nodes ``x`` and weights ``w`` such that
    ``sum(w * f(x)) == integral_0^1 f(x) (1-x)^alpha dx`` for polynomials
    ``f`` of degree up to ``2n - 1``.
    """
    if n < 1:
        raise ValueError(f"need at least one point, got n={n}")
    # scipy uses the weight (1-x)^alpha (1+x)^beta on [-1, 1]
    x, w = roots_jacobi(n, alpha, 0.0)
    # x in [-1,1] -> q in [0,1]:  q = (x+1)/2,  (1-q)^alpha = ((1-x)/2)^alpha
    q = 0.5 * (x + 1.0)
    wq = w / 2.0 ** (alpha + 1)
    return q, wq


@lru_cache(maxsize=None)
def _triangle_rule_cached(n: int) -> tuple[np.ndarray, np.ndarray]:
    p, wp = gauss_jacobi_01(n, 0)
    q, wq = gauss_jacobi_01(n, 1)
    # Duffy map from the unit square: r = p*(1-q), s = q, jacobian (1-q)
    P, Q = np.meshgrid(p, q, indexing="ij")
    WP, WQ = np.meshgrid(wp, wq, indexing="ij")
    r = (P * (1.0 - Q)).ravel()
    s = Q.ravel()
    w = (WP * WQ).ravel()
    pts = np.column_stack([r, s])
    pts.setflags(write=False)
    w.setflags(write=False)
    return pts, w


def triangle_rule(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Conical-product rule on the unit triangle.

    Parameters
    ----------
    n:
        Points per direction; the rule has ``n**2`` points and is exact for
        total degree ``2n - 1``.

    Returns
    -------
    points : (n**2, 2) array, weights : (n**2,) array summing to 1/2.
    """
    return _triangle_rule_cached(n)


@lru_cache(maxsize=None)
def _tet_rule_cached(n: int) -> tuple[np.ndarray, np.ndarray]:
    p, wp = gauss_jacobi_01(n, 0)
    q, wq = gauss_jacobi_01(n, 1)
    r, wr = gauss_jacobi_01(n, 2)
    # Duffy map from the unit cube:
    #   u = p*(1-q)*(1-r), v = q*(1-r), w = r;  jacobian (1-q)*(1-r)^2
    P, Q, R = np.meshgrid(p, q, r, indexing="ij")
    WP, WQ, WR = np.meshgrid(wp, wq, wr, indexing="ij")
    u = (P * (1.0 - Q) * (1.0 - R)).ravel()
    v = (Q * (1.0 - R)).ravel()
    w3 = R.ravel()
    w = (WP * WQ * WR).ravel()
    pts = np.column_stack([u, v, w3])
    pts.setflags(write=False)
    w.setflags(write=False)
    return pts, w


def tetrahedron_rule(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Conical-product rule on the unit tetrahedron.

    The rule has ``n**3`` points, strictly positive weights summing to 1/6,
    and is exact for polynomials of total degree ``2n - 1``.
    """
    return _tet_rule_cached(n)


def gauss_legendre_01(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre rule on [0, 1] (used for time quadrature)."""
    x, w = np.polynomial.legendre.leggauss(n)
    return 0.5 * (x + 1.0), 0.5 * w
