"""Batched element and face kernels: the discrete spatial operator.

This module is the Python analogue of SeisSol's generated kernels: all
per-element and per-face operators are precomputed at setup (star Jacobians,
per-face Godunov flux matrices F-/F+ of paper Eq. 20 for *both* sides of
every interior face, boundary flux matrices per kind) and applied as batched
GEMMs grouped by face orientation class, so the hot loop is a short sequence
of ``einsum``/``matmul`` calls over contiguous arrays — the vectorization
idiom the HPC-Python guides prescribe.

The corrector update implemented here is the time-integrated weak form:

    ``Q_new = Q + volume(I) - surface(I^-, I^+)``

with ``I`` the time-integrated predictor.  Gravity faces (Sec. 4.3) and
dynamic-rupture fault faces are *excluded* from the generic surface kernel
and handled by :mod:`repro.core.gravity` and :mod:`repro.rupture.fault`,
which add their own flux contributions through :meth:`SpatialOperator.project_face_flux`.
"""

from __future__ import annotations

import numpy as np

from ..core.riemann import FaceKind
from ..exec.plan_cache import OperatorPlan, get_plan_cache
from ..kernels import plan_kind as _plan_kind
from ..kernels import resolve_kernel_variant
from ..kernels.fusion import (
    attach_fused_groups,
    fused_boundary_residual,
    fused_ck,
    fused_interior_residual,
    fused_volume_residual,
)
from ..obs.telemetry import get_telemetry
from .ader import ck_derivatives, star_matrices
from .basis import get_reference_element
from .materials import jacobians
from .riemann import (
    free_surface_matrix,
    jacobian_positive_part,
    middle_state_matrices,
    wall_matrix,
)
from .rotation import batched_state_rotation

__all__ = ["SpatialOperator"]

_TEL = get_telemetry()


class _InteriorGroup:
    """Faces sharing one (minus face, plus face, permutation) class.

    Fused plans additionally carry the folded surface factors of
    :func:`repro.kernels.fusion.attach_fused_groups`: the per-class
    ``(B, B)`` basis projectors ``Amm``/``Amp``/``App``/``Apm`` and the
    per-face scale-folded transposed flux matrices ``G1``-``G4``.
    """

    __slots__ = ("face_ids", "em", "ep", "minus_face", "plus_face", "perm",
                 "scale_m", "scale_p", "Fmm", "Fpm", "Fmp", "Fpp",
                 "Amm", "Amp", "App", "Apm", "G1", "G2", "G3", "G4")


class _BoundaryGroup:
    __slots__ = ("face_ids", "elem", "face", "scale", "F", "A", "G")


class SpatialOperator:
    """Precomputed discrete operator for one mesh at one polynomial order.

    ``flux_variant="one_sided"`` builds interface fluxes using only the
    minus-side material parameters — the inconsistent flux the paper warns
    "may lead to a non-converging scheme when coupling elastics and
    acoustics" (Sec. 4.2, citing Wilcox et al.).  Provided solely for the
    ablation benchmark; never use it for production.
    """

    def __init__(self, mesh, order: int, gravity_g: float = 9.81,
                 flux_variant: str = "exact", kernel_variant: str | None = None):
        if flux_variant not in ("exact", "one_sided"):
            raise ValueError(f"unknown flux variant {flux_variant!r}")
        self.flux_variant = flux_variant
        self.kernel_variant = resolve_kernel_variant(kernel_variant)
        self.plan_kind = _plan_kind(self.kernel_variant)
        self.mesh = mesh
        self.order = order
        self.ref = get_reference_element(order)
        self.g = gravity_g
        self._n_elements = mesh.n_elements
        # the expensive setup (star Jacobians + per-face flux matrices) is
        # memoized per problem fingerprint *and plan kind*; plans are
        # immutable and shared
        plan = get_plan_cache().get_or_build(
            mesh, order, flux_variant, self._build_plan, kind=self.plan_kind)
        self.star = plan.star
        self.starT = plan.starT
        self.interior_groups = plan.interior_groups
        self.boundary_groups = plan.boundary_groups
        self._init_variant_state()

    def _init_variant_state(self) -> None:
        """Per-instance dispatch state (never part of the shared plan)."""
        fused = self.kernel_variant != "batched"
        suffix = "_fused" if fused else ""
        self._phase_volume = "kernels/volume" + suffix
        self._phase_interior = "kernels/surface_interior" + suffix
        self._phase_boundary = "kernels/surface_boundary" + suffix
        # content-addressed masked sub-plan caches of the fused kernels
        # (one mask per LTS cluster; see repro.kernels.fusion)
        from collections import OrderedDict

        self._mask_cache_volume = OrderedDict()
        self._mask_cache_interior = OrderedDict()
        self._mask_cache_boundary = OrderedDict()

    def _build_plan(self) -> OperatorPlan:
        star = star_matrices(self.mesh)
        plan = OperatorPlan(
            star=star,
            starT=star.transpose(0, 1, 3, 2).copy(),
            interior_groups=self._build_interior(),
            boundary_groups=self._build_boundary(),
            kind=self.plan_kind,
        )
        if self.plan_kind == "fused":
            attach_fused_groups(plan, self.ref)
        return plan

    # ------------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        return self._n_elements

    @property
    def nbasis(self) -> int:
        return self.ref.nbasis

    def new_state(self) -> np.ndarray:
        """Zero-initialized modal state array ``(ne, B, 9)``."""
        return np.zeros((self.n_elements, self.nbasis, 9))

    # ------------------------------------------------------------------
    def face_flux_matrices(self, mat_m_ids, mat_p_ids, normals):
        """Vectorized Godunov flux matrices for a batch of faces.

        Returns ``(F_minus, F_plus)`` with shapes ``(nf, 9, 9)``:
        the flux seen by the element owning ``normals`` (its outward side)
        is ``F_minus @ q_own + F_plus @ q_neigh``.

        Public (besides the internal plan build) because the benchmark
        battery (:mod:`repro.obs.bench`) times the Riemann-flux setup path
        in isolation.
        """
        with _TEL.phase("riemann_flux"):
            return self._face_flux_matrices_impl(mat_m_ids, mat_p_ids, normals)

    def _face_flux_matrices_impl(self, mat_m_ids, mat_p_ids, normals):
        nf = len(mat_m_ids)
        T, Tinv = batched_state_rotation(normals)
        Fm = np.empty((nf, 9, 9))
        Fp = np.empty((nf, 9, 9))
        mats = self.mesh.materials
        pair_key = mat_m_ids * len(mats) + mat_p_ids
        for key in np.unique(pair_key):
            sel = pair_key == key
            mm = mats[int(key) // len(mats)]
            mp = mats[int(key) % len(mats)]
            if self.flux_variant == "one_sided":
                Gm, Gp = middle_state_matrices(mm, mm)  # ignores the + side
            else:
                Gm, Gp = middle_state_matrices(mm, mp)
            Aloc = jacobians(mm)[0]
            AGm = Aloc @ Gm
            AGp = Aloc @ Gp
            Fm[sel] = np.einsum("fij,jk,fkl->fil", T[sel], AGm, Tinv[sel], optimize=True)
            Fp[sel] = np.einsum("fij,jk,fkl->fil", T[sel], AGp, Tinv[sel], optimize=True)
        return Fm, Fp

    def _build_interior(self) -> list[_InteriorGroup]:
        itf = self.mesh.interior
        regular = ~itf.is_fault
        ids = np.flatnonzero(regular)
        mat_ids = self.mesh.material_ids
        em_mat = mat_ids[itf.minus_elem[ids]]
        ep_mat = mat_ids[itf.plus_elem[ids]]
        Fmm, Fpm = self.face_flux_matrices(em_mat, ep_mat, itf.normal[ids])
        Fmp, Fpp = self.face_flux_matrices(ep_mat, em_mat, -itf.normal[ids])

        # per-face corrector scale: -(2 * area) / det_jac  (reference face
        # weights sum to 1/2, mass matrix on the reference tet is |J| * I)
        scale_m = -2.0 * itf.area[ids] / self.mesh.det_jac[itf.minus_elem[ids]]
        scale_p = -2.0 * itf.area[ids] / self.mesh.det_jac[itf.plus_elem[ids]]

        cls = (itf.minus_face[ids] * 4 + itf.plus_face[ids]) * 6 + itf.perm[ids]
        groups: list[_InteriorGroup] = []
        for c in np.unique(cls):
            sel = cls == c
            grp = _InteriorGroup()
            grp.face_ids = ids[sel]
            grp.em = itf.minus_elem[grp.face_ids]
            grp.ep = itf.plus_elem[grp.face_ids]
            grp.minus_face = int(itf.minus_face[grp.face_ids[0]])
            grp.plus_face = int(itf.plus_face[grp.face_ids[0]])
            grp.perm = int(itf.perm[grp.face_ids[0]])
            grp.scale_m = scale_m[sel]
            grp.scale_p = scale_p[sel]
            grp.Fmm = Fmm[sel]
            grp.Fpm = Fpm[sel]
            grp.Fmp = Fmp[sel]
            grp.Fpp = Fpp[sel]
            groups.append(grp)
        return groups

    def _build_boundary(self) -> list[_BoundaryGroup]:
        bnd = self.mesh.boundary
        mats = self.mesh.materials
        mat_ids = self.mesh.material_ids
        groups: list[_BoundaryGroup] = []
        handled = (
            FaceKind.FREE_SURFACE.value,
            FaceKind.ABSORBING.value,
            FaceKind.WALL.value,
        )
        for kind in handled:
            for f in range(4):
                sel = np.flatnonzero((bnd.kind == kind) & (bnd.face == f))
                if not sel.size:
                    continue
                T, Tinv = batched_state_rotation(bnd.normal[sel])
                F = np.empty((len(sel), 9, 9))
                emat = mat_ids[bnd.elem[sel]]
                for mid in np.unique(emat):
                    msel = emat == mid
                    mat = mats[int(mid)]
                    if kind == FaceKind.FREE_SURFACE.value:
                        AG = jacobians(mat)[0] @ free_surface_matrix(mat)
                    elif kind == FaceKind.WALL.value:
                        AG = jacobians(mat)[0] @ wall_matrix(mat)
                    else:
                        AG = jacobian_positive_part(mat)
                    F[msel] = np.einsum(
                        "fij,jk,fkl->fil", T[msel], AG, Tinv[msel], optimize=True
                    )
                grp = _BoundaryGroup()
                grp.face_ids = sel
                grp.elem = bnd.elem[sel]
                grp.face = np.full(len(sel), f)
                grp.scale = -2.0 * bnd.area[sel] / self.mesh.det_jac[bnd.elem[sel]]
                grp.F = F
                groups.append(grp)
        return groups

    # ------------------------------------------------------------------
    def restricted(self, cells: np.ndarray, n_owned: int) -> "SpatialOperator":
        """Sub-operator over ``cells`` (owned elements first, then the halo).

        Element indices in the returned operator are *local* (positions in
        ``cells``), so its residual kernels act on gathered arrays
        ``X[cells]``.  It keeps every interior face with at least one owned
        side — the halo layer must therefore contain the far side of every
        cut face (raises otherwise) — and every boundary face of an owned
        element.  Restricted operators share the parent's (cached,
        immutable) flux matrices via slicing; they support the residual
        kernels and :meth:`predict` only, not face-flux projection.
        """
        cells = np.asarray(cells)
        sub = object.__new__(SpatialOperator)
        sub.flux_variant = self.flux_variant
        sub.kernel_variant = self.kernel_variant
        sub.plan_kind = self.plan_kind
        sub.mesh = self.mesh
        sub.order = self.order
        sub.ref = self.ref
        sub.g = self.g
        sub._n_elements = len(cells)
        sub.star = self.star[cells]
        sub.starT = self.starT[cells]
        sub._init_variant_state()
        fused = self.plan_kind == "fused"
        g2l = np.full(self.n_elements, -1, dtype=np.int64)
        g2l[cells] = np.arange(len(cells))
        owned = np.zeros(self.n_elements, dtype=bool)
        owned[cells[:n_owned]] = True

        sub.interior_groups = []
        for grp in self.interior_groups:
            sel = owned[grp.em] | owned[grp.ep]
            if not sel.any():
                continue
            g = _InteriorGroup()
            g.face_ids = grp.face_ids[sel]
            g.em = g2l[grp.em[sel]]
            g.ep = g2l[grp.ep[sel]]
            if (g.em < 0).any() or (g.ep < 0).any():
                raise ValueError(
                    "restricted(): an owned face's neighbor element is outside "
                    "`cells`; the halo layer does not cover all cut faces"
                )
            g.minus_face = grp.minus_face
            g.plus_face = grp.plus_face
            g.perm = grp.perm
            g.scale_m = grp.scale_m[sel]
            g.scale_p = grp.scale_p[sel]
            g.Fmm = grp.Fmm[sel]
            g.Fpm = grp.Fpm[sel]
            g.Fmp = grp.Fmp[sel]
            g.Fpp = grp.Fpp[sel]
            if fused:
                g.Amm, g.Amp = grp.Amm, grp.Amp
                g.App, g.Apm = grp.App, grp.Apm
                g.G1, g.G2 = grp.G1[sel], grp.G2[sel]
                g.G3, g.G4 = grp.G3[sel], grp.G4[sel]
            sub.interior_groups.append(g)

        sub.boundary_groups = []
        for grp in self.boundary_groups:
            sel = owned[grp.elem]
            if not sel.any():
                continue
            b = _BoundaryGroup()
            b.face_ids = grp.face_ids[sel]
            b.elem = g2l[grp.elem[sel]]
            b.face = grp.face[sel]
            b.scale = grp.scale[sel]
            b.F = grp.F[sel]
            if fused:
                b.A = grp.A
                b.G = grp.G[sel]
            sub.boundary_groups.append(b)
        return sub

    # ------------------------------------------------------------------
    def predict(self, Q: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
        """Cauchy-Kowalewski derivatives ``(ne, N+1, B, 9)``."""
        return self.predict_states(Q, self.star, self.starT, out=out)

    def predict_states(self, Q: np.ndarray, star: np.ndarray,
                       starT: np.ndarray | None = None,
                       out: np.ndarray | None = None) -> np.ndarray:
        """Variant-dispatched Cauchy-Kowalewski sweep over arbitrary
        state/Jacobian batches (element subsets of LTS cluster updates and
        partitioned workers included).

        ``out`` is a scratch-buffer *hint*: it must be an array this
        method previously returned for the same variant and batch shape
        (backends keep last step's derivatives around for this).  The
        result is whatever array is returned — the batched variant
        ignores the hint.
        """
        if self.kernel_variant == "batched":
            return ck_derivatives(Q, star, self.ref)
        if starT is None:
            starT = np.ascontiguousarray(star.transpose(0, 1, 3, 2))
        if self.kernel_variant == "jit":
            from ..kernels.jit import jit_ck

            return jit_ck(Q, starT, self.ref, out=out)
        return fused_ck(Q, starT, self.ref, out=out)

    def volume_residual(self, I: np.ndarray, out: np.ndarray, active=None) -> None:
        """Add the stiffness (volume) term of the corrector to ``out``."""
        with _TEL.phase(self._phase_volume):
            if self.kernel_variant == "batched":
                self._volume_residual(I, out, active)
            else:
                fused_volume_residual(self, I, out, active)

    def _volume_residual(self, I, out, active=None) -> None:
        if active is None:
            Ie, starT, tgt = I, self.starT, slice(None)
        else:
            Ie, starT, tgt = I[active], self.starT[active], active
        acc = np.zeros_like(Ie)
        for d in range(3):
            acc += np.matmul(self.ref.deriv[d].T @ Ie, starT[:, d])
        out[tgt] += acc

    def interior_residual(self, I: np.ndarray, out: np.ndarray, active=None) -> None:
        """Add interior-face flux terms to ``out``.

        ``active`` (bool mask over elements) restricts which side(s) of each
        face receive contributions — needed by local time-stepping, where a
        face between clusters is visited by each side at its own cadence.
        """
        with _TEL.phase(self._phase_interior):
            if self.kernel_variant == "batched":
                self._interior_residual(I, out, active)
            else:
                fused_interior_residual(self, I, out, active)

    def _interior_residual(self, I, out, active=None) -> None:
        ref = self.ref
        w = ref.face_weights
        for grp in self.interior_groups:
            Em = ref.E_minus[grp.minus_face]
            Ep = ref.E_plus[grp.plus_face, grp.perm]
            if active is None:
                em, ep = grp.em, grp.ep
                Fmm, Fpm, Fmp, Fpp = grp.Fmm, grp.Fpm, grp.Fmp, grp.Fpp
                scale_m, scale_p = grp.scale_m, grp.scale_p
                upd_m = upd_p = slice(None)
                do_m = do_p = True
            else:
                # restrict to faces with at least one active side *before*
                # any trace computation (critical for LTS cluster steps)
                am = active[grp.em]
                ap = active[grp.ep]
                sel = am | ap
                if not np.any(sel):
                    continue
                em, ep = grp.em[sel], grp.ep[sel]
                Fmm, Fpm = grp.Fmm[sel], grp.Fpm[sel]
                Fmp, Fpp = grp.Fmp[sel], grp.Fpp[sel]
                scale_m, scale_p = grp.scale_m[sel], grp.scale_p[sel]
                upd_m, upd_p = am[sel], ap[sel]
                do_m = bool(np.any(upd_m))
                do_p = bool(np.any(upd_p))
            trace_m = Em @ I[em]  # (nf, nq, 9)
            trace_p = Ep @ I[ep]
            if do_m:
                flux = np.einsum("fij,fqj->fqi", Fmm, trace_m, optimize=True)
                flux += np.einsum("fij,fqj->fqi", Fpm, trace_p, optimize=True)
                contrib = np.einsum("qb,q,fqi->fbi", Em, w, flux, optimize=True)
                contrib *= scale_m[:, None, None]
                # within one orientation class every element appears at most
                # once on the minus side, so fancy += is exact (and much
                # faster than np.add.at)
                if active is None:
                    out[em] += contrib
                else:
                    out[em[upd_m]] += contrib[upd_m]
            if do_p:
                flux = np.einsum("fij,fqj->fqi", Fmp, trace_p, optimize=True)
                flux += np.einsum("fij,fqj->fqi", Fpp, trace_m, optimize=True)
                contrib = np.einsum("qb,q,fqi->fbi", Ep, w, flux, optimize=True)
                contrib *= scale_p[:, None, None]
                if active is None:
                    out[ep] += contrib
                else:
                    out[ep[upd_p]] += contrib[upd_p]

    def boundary_residual(self, I: np.ndarray, out: np.ndarray, active=None) -> None:
        """Add free-surface / absorbing boundary fluxes to ``out``."""
        with _TEL.phase(self._phase_boundary):
            if self.kernel_variant == "batched":
                self._boundary_residual(I, out, active)
            else:
                fused_boundary_residual(self, I, out, active)

    def _boundary_residual(self, I, out, active=None) -> None:
        ref = self.ref
        w = ref.face_weights
        for grp in self.boundary_groups:
            if active is None:
                elem, F, scale = grp.elem, grp.F, grp.scale
            else:
                sel = active[grp.elem]
                if not np.any(sel):
                    continue
                elem, F, scale = grp.elem[sel], grp.F[sel], grp.scale[sel]
            f = int(grp.face[0])
            E = ref.E_minus[f]
            trace = E @ I[elem]
            flux = np.einsum("fij,fqj->fqi", F, trace, optimize=True)
            contrib = np.einsum("qb,q,fqi->fbi", E, w, flux, optimize=True)
            contrib *= scale[:, None, None]
            out[elem] += contrib  # unique per (kind, local face) group

    def project_face_flux(
        self,
        elem: np.ndarray,
        local_face: np.ndarray,
        area: np.ndarray,
        flux_at_points: np.ndarray,
        out: np.ndarray,
        plus_side: tuple[int, int] | None = None,
    ) -> None:
        """Project pointwise face fluxes back to modal residuals.

        Used by the gravity boundary condition and the fault solver, which
        compute time-integrated fluxes at face quadrature points themselves.

        Parameters
        ----------
        elem, local_face, area:
            Per-face target element, its local face id, face area.
        flux_at_points:
            ``(nf, nq, 9)`` time-integrated flux (in the element's outward
            normal orientation).
        plus_side:
            If given ``(plus_face, perm)``, project with the neighbor trace
            operator instead (all faces in the call share the class).
        """
        ref = self.ref
        if plus_side is None:
            # group by local face id
            for f in range(4):
                sel = local_face == f
                if not np.any(sel):
                    continue
                E = ref.E_minus[f]
                contrib = np.einsum(
                    "qb,q,fqi->fbi", E, ref.face_weights, flux_at_points[sel], optimize=True
                )
                contrib *= (-2.0 * area[sel] / self.mesh.det_jac[elem[sel]])[:, None, None]
                out[elem[sel]] += contrib  # unique per local-face group
        else:
            E = ref.E_plus[plus_side[0], plus_side[1]]
            contrib = np.einsum(
                "qb,q,fqi->fbi", E, ref.face_weights, flux_at_points, optimize=True
            )
            contrib *= (-2.0 * area / self.mesh.det_jac[elem])[:, None, None]
            out[elem] += contrib  # unique per (plus face, perm) class

    # ------------------------------------------------------------------
    def trace_minus(self, face_ids: np.ndarray, X: np.ndarray, boundary: bool = True) -> np.ndarray:
        """Trace of element data ``X`` (``(ne, B, 9)``) on given faces.

        For ``boundary=True`` the faces index :attr:`mesh.boundary`,
        otherwise the minus side of :attr:`mesh.interior`.
        Returns ``(nfaces, nq, 9)``.
        """
        src = self.mesh.boundary if boundary else self.mesh.interior
        elem = src.elem[face_ids] if boundary else src.minus_elem[face_ids]
        face = src.face[face_ids] if boundary else src.minus_face[face_ids]
        out = np.empty((len(face_ids), self.ref.n_face_points, 9))
        for f in range(4):
            sel = face == f
            if np.any(sel):
                out[sel] = self.ref.E_minus[f] @ X[elem[sel]]
        return out

    def apply(self, I: np.ndarray, active=None) -> np.ndarray:
        """Full (gravity/fault-free) residual for time-integrated data ``I``."""
        out = self.new_state()
        self.volume_residual(I, out, active)
        self.interior_residual(I, out, active)
        self.boundary_residual(I, out, active)
        return out
