"""Orthonormal Dubiner (modal) bases on the reference simplices.

The implementation follows the classical Koornwinder-Dubiner construction in
collapsed coordinates (Hesthaven & Warburton, *Nodal Discontinuous Galerkin
Methods*), re-scaled so that the basis is orthonormal on the **unit**
simplices used throughout this library:

* unit triangle  ``{(r, s): r, s >= 0, r + s <= 1}``
* unit tetrahedron ``{(u, v, w): u, v, w >= 0, u + v + w <= 1}``

These are the bases used by SeisSol-style ADER-DG (Dumbser & Käser 2006);
with an orthonormal basis the reference mass matrix is the identity, which
is what makes the quadrature-free update cheap.

:class:`ReferenceElement` bundles every precomputed reference-element
operator needed by the solver: volume quadrature, Vandermonde and gradient
matrices, modal derivative operators, and face-trace evaluation matrices for
all 4 local faces and all 24 neighbor orientation classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .quadrature import tetrahedron_rule, triangle_rule

__all__ = [
    "basis_size",
    "jacobi_p",
    "grad_jacobi_p",
    "tet_basis",
    "tet_basis_grad",
    "tri_basis",
    "tri_basis_grad",
    "TET_FACES",
    "face_points_to_tet",
    "ReferenceElement",
    "get_reference_element",
]

# Canonical vertex indices of the 4 faces of the unit tetrahedron with
# vertices v0=(0,0,0), v1=(1,0,0), v2=(0,1,0), v3=(0,0,1).  The ordering is
# chosen such that (B-A) x (C-A) points outward.
TET_FACES = ((0, 2, 1), (0, 1, 3), (0, 3, 2), (1, 2, 3))

_TET_VERTS = np.array(
    [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
)

# The six permutations of three face vertices; index into this tuple is the
# "orientation" part of a face-neighbor class.
FACE_PERMUTATIONS = ((0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0))


def basis_size(order: int, dim: int = 3) -> int:
    """Number of modal basis functions of maximum total degree ``order``."""
    if dim == 3:
        return (order + 1) * (order + 2) * (order + 3) // 6
    if dim == 2:
        return (order + 1) * (order + 2) // 2
    raise ValueError(f"unsupported dimension {dim}")


def jacobi_p(x: np.ndarray, alpha: float, beta: float, n: int) -> np.ndarray:
    """Jacobi polynomial of degree ``n`` normalized to unit L2 norm.

    Normalized such that ``int_-1^1 (1-x)^alpha (1+x)^beta P_n(x)^2 dx = 1``.
    Standard three-term recurrence (Hesthaven & Warburton, JacobiP).
    """
    x = np.asarray(x, dtype=float)
    from scipy.special import gammaln

    apb = alpha + beta
    gamma0 = np.exp(
        (apb + 1) * np.log(2.0)
        + gammaln(alpha + 1)
        + gammaln(beta + 1)
        - gammaln(apb + 2)
    )
    p0 = np.full_like(x, 1.0 / np.sqrt(gamma0))
    if n == 0:
        return p0
    gamma1 = (alpha + 1) * (beta + 1) / (apb + 3) * gamma0
    p1 = ((apb + 2) * x / 2 + (alpha - beta) / 2) / np.sqrt(gamma1)
    if n == 1:
        return p1
    aold = 2.0 / (2.0 + apb) * np.sqrt((alpha + 1) * (beta + 1) / (apb + 3))
    pm1, p = p0, p1
    for i in range(1, n):
        h1 = 2 * i + apb
        anew = (
            2.0
            / (h1 + 2)
            * np.sqrt(
                (i + 1)
                * (i + 1 + apb)
                * (i + 1 + alpha)
                * (i + 1 + beta)
                / ((h1 + 1) * (h1 + 3))
            )
        )
        bnew = -(alpha**2 - beta**2) / (h1 * (h1 + 2))
        pnew = (-aold * pm1 + (x - bnew) * p) / anew
        pm1, p = p, pnew
        aold = anew
    return p


def grad_jacobi_p(x: np.ndarray, alpha: float, beta: float, n: int) -> np.ndarray:
    """Derivative of the normalized Jacobi polynomial."""
    x = np.asarray(x, dtype=float)
    if n == 0:
        return np.zeros_like(x)
    return np.sqrt(n * (n + alpha + beta + 1)) * jacobi_p(x, alpha + 1, beta + 1, n - 1)


def _tet_mode_indices(order: int) -> list[tuple[int, int, int]]:
    return [
        (i, j, k)
        for i in range(order + 1)
        for j in range(order + 1 - i)
        for k in range(order + 1 - i - j)
    ]


def _tri_mode_indices(order: int) -> list[tuple[int, int]]:
    return [(i, j) for i in range(order + 1) for j in range(order + 1 - i)]


def _uvw_to_abc(u, v, w):
    """Collapsed coordinates on the unit tetrahedron (H&W rst scaled)."""
    r = 2.0 * u - 1.0
    s = 2.0 * v - 1.0
    t = 2.0 * w - 1.0
    denom_a = -s - t
    a = np.where(np.abs(denom_a) > 1e-13, 2.0 * (1.0 + r) / np.where(denom_a == 0, 1, denom_a) - 1.0, -1.0)
    denom_b = 1.0 - t
    b = np.where(np.abs(denom_b) > 1e-13, 2.0 * (1.0 + s) / np.where(denom_b == 0, 1, denom_b) - 1.0, -1.0)
    c = t
    return a, b, c


def _simplex3dp(a, b, c, i: int, j: int, k: int) -> np.ndarray:
    fa = jacobi_p(a, 0, 0, i)
    gb = jacobi_p(b, 2 * i + 1, 0, j)
    hc = jacobi_p(c, 2 * (i + j) + 2, 0, k)
    return (
        2.0 ** (2 * i + j + 1.5)
        * fa
        * gb
        * (0.5 * (1.0 - b)) ** i
        * hc
        * (0.5 * (1.0 - c)) ** (i + j)
    )


def _grad_simplex3dp(a, b, c, i: int, j: int, k: int):
    """Gradient of the H&W mode w.r.t. the (-1,1)-simplex coords (r, s, t)."""
    fa = jacobi_p(a, 0, 0, i)
    dfa = grad_jacobi_p(a, 0, 0, i)
    gb = jacobi_p(b, 2 * i + 1, 0, j)
    dgb = grad_jacobi_p(b, 2 * i + 1, 0, j)
    hc = jacobi_p(c, 2 * (i + j) + 2, 0, k)
    dhc = grad_jacobi_p(c, 2 * (i + j) + 2, 0, k)

    half1mb = 0.5 * (1.0 - b)
    half1mc = 0.5 * (1.0 - c)

    dr = dfa * gb * hc
    if i > 0:
        dr = dr * half1mb ** (i - 1)
    if i + j > 0:
        dr = dr * half1mc ** (i + j - 1)

    ds = 0.5 * (1.0 + a) * dr
    tmp = dgb * half1mb**i
    if i > 0:
        tmp = tmp + (-0.5 * i) * (gb * half1mb ** (i - 1))
    if i + j > 0:
        tmp = tmp * half1mc ** (i + j - 1)
    tmp = fa * (tmp * hc)
    ds = ds + tmp

    dt = 0.5 * (1.0 + a) * dr + 0.5 * (1.0 + b) * tmp
    tmp2 = dhc * half1mc ** (i + j)
    if i + j > 0:
        tmp2 = tmp2 - 0.5 * (i + j) * (hc * half1mc ** (i + j - 1))
    tmp2 = fa * (gb * tmp2)
    tmp2 = tmp2 * half1mb**i
    dt = dt + tmp2

    scale = 2.0 ** (2 * i + j + 1.5)
    return dr * scale, ds * scale, dt * scale


def tet_basis(points: np.ndarray, order: int) -> np.ndarray:
    """Evaluate all modal basis functions at points in the unit tetrahedron.

    Parameters
    ----------
    points:
        ``(npts, 3)`` array of (u, v, w) coordinates.
    order:
        Maximum polynomial degree N.

    Returns
    -------
    ``(npts, B_N)`` Vandermonde matrix; the basis is orthonormal on the unit
    tetrahedron (``int phi_l phi_m dV = delta_lm``).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    a, b, c = _uvw_to_abc(points[:, 0], points[:, 1], points[:, 2])
    modes = _tet_mode_indices(order)
    V = np.empty((points.shape[0], len(modes)))
    # sqrt(8): the H&W basis is orthonormal on the volume-4/3 simplex;
    # mapping to the unit tet divides measures by 8.
    scale = np.sqrt(8.0)
    for m, (i, j, k) in enumerate(modes):
        V[:, m] = scale * _simplex3dp(a, b, c, i, j, k)
    return V


def tet_basis_grad(points: np.ndarray, order: int) -> np.ndarray:
    """Gradients of the unit-tet basis: returns ``(3, npts, B_N)``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    a, b, c = _uvw_to_abc(points[:, 0], points[:, 1], points[:, 2])
    modes = _tet_mode_indices(order)
    G = np.empty((3, points.shape[0], len(modes)))
    # chain rule for (r,s,t) = 2*(u,v,w) - 1 plus the sqrt(8) orthonormal
    # rescaling of the basis itself.
    scale = 2.0 * np.sqrt(8.0)
    for m, (i, j, k) in enumerate(modes):
        dr, ds, dt = _grad_simplex3dp(a, b, c, i, j, k)
        G[0, :, m] = scale * dr
        G[1, :, m] = scale * ds
        G[2, :, m] = scale * dt
    return G


def _rs_to_ab(r, s):
    rr = 2.0 * r - 1.0
    ss = 2.0 * s - 1.0
    denom = 1.0 - ss
    a = np.where(np.abs(denom) > 1e-13, 2.0 * (1.0 + rr) / np.where(denom == 0, 1, denom) - 1.0, -1.0)
    return a, ss


def tri_basis(points: np.ndarray, order: int) -> np.ndarray:
    """Orthonormal modal basis on the unit triangle: ``(npts, B)``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    a, b = _rs_to_ab(points[:, 0], points[:, 1])
    modes = _tri_mode_indices(order)
    V = np.empty((points.shape[0], len(modes)))
    scale = 2.0  # H&W triangle has area 2; unit triangle has area 1/2
    for m, (i, j) in enumerate(modes):
        fa = jacobi_p(a, 0, 0, i)
        gb = jacobi_p(b, 2 * i + 1, 0, j)
        V[:, m] = scale * np.sqrt(2.0) * fa * gb * (1.0 - b) ** i
    return V


def tri_basis_grad(points: np.ndarray, order: int) -> np.ndarray:
    """Gradients of the unit-triangle basis: ``(2, npts, B)``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    a, b = _rs_to_ab(points[:, 0], points[:, 1])
    modes = _tri_mode_indices(order)
    G = np.empty((2, points.shape[0], len(modes)))
    scale = 2.0 * 2.0  # orthonormal rescale x chain rule d(rr)/dr = 2
    for m, (i, j) in enumerate(modes):
        fa = jacobi_p(a, 0, 0, i)
        dfa = grad_jacobi_p(a, 0, 0, i)
        gb = jacobi_p(b, 2 * i + 1, 0, j)
        dgb = grad_jacobi_p(b, 2 * i + 1, 0, j)
        half1mb = 0.5 * (1.0 - b)
        dr = dfa * gb
        if i > 0:
            dr = dr * half1mb ** (i - 1)
        ds = dr * (0.5 * (1.0 + a))
        tmp = dgb * half1mb**i
        if i > 0:
            tmp = tmp - 0.5 * i * gb * half1mb ** (i - 1)
        ds = ds + fa * tmp
        norm = 2.0 ** (i + 0.5)
        G[0, :, m] = scale * norm * dr
        G[1, :, m] = scale * norm * ds
    return G


def face_points_to_tet(face: int, rs: np.ndarray, perm: tuple[int, int, int] = (0, 1, 2)) -> np.ndarray:
    """Map unit-triangle points onto local face ``face`` of the unit tet.

    ``perm`` re-labels the canonical face vertices before the affine map;
    it expresses which corner of the neighbor's face matches the (r, s)
    parametrization origin.  With barycentric coordinates
    ``lam = (1 - r - s, r, s)``, the mapped point is
    ``sum_k lam[k] * V[perm[k]]`` with ``V`` the canonical face vertices.
    """
    rs = np.atleast_2d(np.asarray(rs, dtype=float))
    verts = _TET_VERTS[list(TET_FACES[face])][list(perm)]
    lam = np.column_stack([1.0 - rs[:, 0] - rs[:, 1], rs[:, 0], rs[:, 1]])
    return lam @ verts


@dataclass(frozen=True)
class ReferenceElement:
    """All precomputed reference-tetrahedron operators for a given order.

    Attributes
    ----------
    order:
        Polynomial degree N.
    nbasis:
        Number of modal basis functions B_N.
    vol_points, vol_weights:
        Volume quadrature (exact to degree >= 2N).
    V, gradV:
        Vandermonde ``(nq, B)`` and gradient ``(3, nq, B)`` at volume points.
    deriv:
        ``(3, B, B)`` modal derivative operators:
        ``deriv[d, l, m] = int phi_l d(phi_m)/d(xi_d) dV``.  Applying
        ``deriv[d] @ Q`` yields the modal coefficients of the xi_d
        derivative (used in the Cauchy-Kowalewski predictor); the transpose
        is the stiffness operator of the corrector step.
    face_points, face_weights:
        Quadrature on the unit triangle (exact to degree >= 2N + 1).
    E_minus:
        ``(4, nfq, B)``: trace of the element basis on each local face.
    E_plus:
        ``(4, 6, nfq, B)``: trace of a *neighbor's* basis at the matching
        physical points, indexed by the neighbor's local face id and the
        vertex permutation class.
    """

    order: int
    nbasis: int
    vol_points: np.ndarray
    vol_weights: np.ndarray
    V: np.ndarray
    gradV: np.ndarray
    deriv: np.ndarray
    face_points: np.ndarray
    face_weights: np.ndarray
    E_minus: np.ndarray
    E_plus: np.ndarray
    tri_V: np.ndarray = field(repr=False, default=None)

    @property
    def n_face_points(self) -> int:
        return self.face_points.shape[0]


@lru_cache(maxsize=None)
def get_reference_element(order: int) -> ReferenceElement:
    """Build (and cache) the :class:`ReferenceElement` for degree ``order``."""
    if order < 0:
        raise ValueError("polynomial order must be >= 0")
    nb = basis_size(order)
    # volume rule exact to 2N (mass/stiffness integrands); one extra point
    # direction for safety with the collapsed construction
    vol_pts, vol_w = tetrahedron_rule(order + 2)
    V = tet_basis(vol_pts, order)
    gradV = tet_basis_grad(vol_pts, order)

    WV = vol_w[:, None] * V
    deriv = np.empty((3, nb, nb))
    for d in range(3):
        deriv[d] = WV.T @ gradV[d]

    face_pts, face_w = triangle_rule(order + 2)
    nfq = face_pts.shape[0]
    E_minus = np.empty((4, nfq, nb))
    for f in range(4):
        E_minus[f] = tet_basis(face_points_to_tet(f, face_pts), order)
    E_plus = np.empty((4, 6, nfq, nb))
    for f in range(4):
        for p, perm in enumerate(FACE_PERMUTATIONS):
            E_plus[f, p] = tet_basis(face_points_to_tet(f, face_pts, perm), order)

    tri_V = tri_basis(face_pts, order)

    for arr in (vol_pts, vol_w, V, gradV, deriv, face_pts, face_w, E_minus, E_plus, tri_V):
        arr.setflags(write=False)

    return ReferenceElement(
        order=order,
        nbasis=nb,
        vol_points=vol_pts,
        vol_weights=vol_w,
        V=V,
        gradV=gradV,
        deriv=deriv,
        face_points=face_pts,
        face_weights=face_w,
        E_minus=E_minus,
        E_plus=E_plus,
        tri_V=tri_V,
    )
