"""Gravitational free-surface boundary condition (paper Sec. 4.3).

Gravity enters the fully coupled model purely through a modified free
surface condition on the *equilibrium* sea surface z = 0 (Eqs. 6-7), which
avoids a moving mesh: the sea-surface displacement ``eta`` lives at the face
quadrature points of the tagged boundary faces and evolves by the face-local
ODE system (Eq. 24)

    ``d(eta)/dt = v_n^b = v_n^- - (rho g eta - p^-)/Z``,   ``dH/dt = eta``

with ``v_n^-(t), p^-(t)`` evaluated from the element's space-time Taylor
predictor (exactly the scheme of the paper: predict in the volume,
extrapolate to the boundary, integrate the face ODE with a high-order ODE
solver).  The auxiliary variable ``H`` yields the *time-integrated* boundary
state needed by the ADER corrector without nested quadrature (Eq. 26):

    ``int v_n^b dt = eta(t+dt) - eta(t)``, ``int p^b dt = rho g H(t+dt)``.

The ODE is linear with polynomial forcing, so the default integrator is the
exact exponential propagator of :mod:`repro.core.rk` (substituting the
paper's Verner RK7 — see DESIGN.md); a stepped RK4 driver is available for
cross-checking.
"""

from __future__ import annotations

import numpy as np

from ..obs.telemetry import get_telemetry
from .materials import SXX, VX
from .riemann import FaceKind
from .rk import RK4, ExactPropagator, rk_solve
from .rotation import batched_state_rotation

__all__ = ["GravityBoundary"]

_TEL = get_telemetry()


class GravityBoundary:
    """State and flux assembly for all gravitational free-surface faces."""

    def __init__(
        self,
        op,
        g: float = 9.81,
        integrator: str = "exact",
        rk_steps: int = 4,
        eta_velocity: str = "middle",
    ):
        """``eta_velocity="interior"`` evolves eta with the one-sided trace
        ``v_n^-`` instead of the Riemann middle state ``v_n^b`` — the
        unstable variant the paper warns about below Eq. 23 ("It is critical
        to use the velocity v_n^b here ... as only then we have a stable
        scheme").  Exposed for the ablation benchmark only."""
        self.op = op
        self.g = g
        if integrator not in ("exact", "rk4"):
            raise ValueError(f"unknown integrator {integrator!r}")
        if eta_velocity not in ("middle", "interior"):
            raise ValueError(f"unknown eta_velocity {eta_velocity!r}")
        self.eta_velocity = eta_velocity
        self.integrator = integrator
        self.rk_steps = rk_steps
        mesh = op.mesh
        bnd = mesh.boundary
        self.face_ids = np.flatnonzero(bnd.kind == FaceKind.GRAVITY_FREE_SURFACE.value)
        self.elem = bnd.elem[self.face_ids]
        self.local_face = bnd.face[self.face_ids]
        self.area = bnd.area[self.face_ids]
        self.normal = bnd.normal[self.face_ids]
        self.mat_id = mesh.material_ids[self.elem]
        mats = mesh.materials
        for mid in np.unique(self.mat_id):
            if not mats[int(mid)].is_acoustic:
                raise ValueError(
                    "gravity free-surface faces must border acoustic (ocean) elements"
                )
        self.rho = np.array([mats[m].rho for m in self.mat_id])
        self.Z = np.array([mats[m].Zp for m in self.mat_id])

        # rotation to apply the local middle state as a global flux:
        # flux = T @ A_loc @ w_hat; A_loc columns touched are SXX and VX only.
        T, _ = batched_state_rotation(self.normal)
        Aloc = np.zeros((len(self.face_ids), 9, 9))
        lam = np.array([mats[m].lam for m in self.mat_id])
        rho = self.rho
        # acoustic local Jacobian: stress rows react to v_n, v_n row to s_nn
        for row in (0, 1, 2):
            Aloc[:, row, VX] = -lam
        Aloc[:, VX, SXX] = -1.0 / rho
        self.TA = np.einsum("fij,fjk->fik", T, Aloc)

        nq = op.ref.n_face_points
        self.eta = np.zeros((len(self.face_ids), nq))
        self._propagators: dict = {}
        # physical positions of the quadrature points (for output/analysis)
        self.points = np.empty((len(self.face_ids), nq, 3))
        for f in range(4):
            sel = self.local_face == f
            if np.any(sel):
                from .basis import face_points_to_tet

                ref_pts = face_points_to_tet(f, op.ref.face_points)
                self.points[sel] = mesh.map_points(self.elem[sel], ref_pts)

    def __len__(self) -> int:
        return len(self.face_ids)

    # ------------------------------------------------------------------
    def _trace_taylor(self, derivs: np.ndarray, sel: np.ndarray) -> np.ndarray:
        """Taylor coefficients of the boundary trace: ``(nf, K, nq, 9)``."""
        ref = self.op.ref
        nf = int(sel.sum()) if sel.dtype == bool else len(sel)
        idx = np.flatnonzero(sel) if sel.dtype == bool else sel
        K = derivs.shape[1]
        out = np.empty((nf, K, ref.n_face_points, 9))
        lf = self.local_face[idx]
        el = self.elem[idx]
        for f in range(4):
            fsel = lf == f
            if np.any(fsel):
                E = ref.E_minus[f]
                # (K*B basis contraction) for each derivative level
                out[fsel] = np.einsum("qb,ekbn->ekqn", E, derivs[el[fsel]], optimize=True)
        return out

    def _propagator(self, mat_id: int, dt: float, K: int) -> ExactPropagator:
        key = (int(mat_id), float(dt), K)
        prop = self._propagators.get(key)
        if prop is None:
            mat = self.op.mesh.materials[int(mat_id)]
            # with the (unstable) interior-velocity variant the damping term
            # -(rho g / Z) eta of Eq. 23 is absent from d(eta)/dt
            a = -mat.rho * self.g / mat.Zp if self.eta_velocity == "middle" else 0.0
            A = np.array([[a, 0.0], [1.0, 0.0]])
            prop = ExactPropagator(A, n_forcing=K, dt=dt)
            self._propagators[key] = prop
        return prop

    def step(self, derivs: np.ndarray, dt: float, out: np.ndarray, face_mask=None) -> None:
        """Advance eta over ``dt`` and add the time-integrated flux to ``out``.

        ``derivs`` is the CK predictor of (at least) the adjacent elements,
        with expansion point at the beginning of the step.
        """
        with _TEL.phase("gravity/ode"):
            self._step(derivs, dt, out, face_mask)

    def _step(self, derivs, dt, out, face_mask=None) -> None:
        if len(self.face_ids) == 0:
            return
        if face_mask is None:
            idx = np.arange(len(self.face_ids))
        else:
            idx = np.flatnonzero(face_mask)
            if idx.size == 0:
                return
        K = derivs.shape[1]
        tr = self._trace_taylor(derivs, idx)  # (nf, K, nq, 9)
        # forcing f(t) = v_n(t) + p(t)/Z at each quadrature point; monomial
        # coefficients b_k = f^(k) / k!
        n = self.normal[idx]  # (nf, 3)
        v_n = np.einsum("fkqd,fd->fkq", tr[:, :, :, 6:9], n)
        p = -(tr[:, :, :, 0] + tr[:, :, :, 1] + tr[:, :, :, 2]) / 3.0
        if self.eta_velocity == "middle":
            f_deriv = v_n + p / self.Z[idx][:, None, None]
        else:
            # d(eta)/dt = v_n^- only: no pressure feedback, no damping
            f_deriv = v_n
        fact = 1.0
        b = np.empty_like(f_deriv)
        for k in range(K):
            if k > 0:
                fact *= k
            b[:, k] = f_deriv[:, k] / fact

        eta0 = self.eta[idx]
        if self.integrator == "exact":
            eta1 = np.empty_like(eta0)
            H1 = np.empty_like(eta0)
            for mid in np.unique(self.mat_id[idx]):
                msel = self.mat_id[idx] == mid
                prop = self._propagator(mid, dt, K)
                y0 = np.stack([eta0[msel], np.zeros_like(eta0[msel])], axis=-1)
                bb = np.zeros(y0.shape + (K,))
                bb[..., 0, :] = np.moveaxis(b[msel], 1, -1)
                y1 = prop.apply(y0, bb)
                eta1[msel] = y1[..., 0]
                H1[msel] = y1[..., 1]
        else:
            a = -(self.rho[idx] * self.g / self.Z[idx])[:, None]
            powers = np.arange(K)

            def rhs(t, y):
                # y[..., 0] = eta, y[..., 1] = H
                f_t = np.einsum("fkq,k->fq", b, t**powers)
                d = np.empty_like(y)
                d[..., 0] = a * y[..., 0] + f_t
                d[..., 1] = y[..., 0]
                return d

            y0 = np.stack([eta0, np.zeros_like(eta0)], axis=-1)
            y1 = rk_solve(rhs, y0, dt, RK4, n_steps=self.rk_steps)
            eta1, H1 = y1[..., 0], y1[..., 1]

        d_eta = eta1 - eta0
        self.eta[idx] = eta1

        # time-integrated local middle state (Eq. 26):
        #   int sigma_nn^b dt = -rho g H(t+dt),  int v_n^b dt = d_eta
        nq = eta0.shape[1]
        w_hat = np.zeros((len(idx), nq, 9))
        w_hat[:, :, SXX] = -self.rho[idx][:, None] * self.g * H1
        w_hat[:, :, VX] = d_eta
        flux = np.einsum("fij,fqj->fqi", self.TA[idx], w_hat, optimize=True)
        self.op.project_face_flux(
            self.elem[idx], self.local_face[idx], self.area[idx], flux, out
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Time-marching state for checkpointing (:mod:`repro.io.checkpoint`)."""
        return {"eta": self.eta.copy()}

    def load_state(self, state: dict) -> None:
        eta = np.asarray(state["eta"])
        if eta.shape != self.eta.shape:
            raise ValueError(
                f"gravity state has shape {eta.shape}, expected {self.eta.shape}"
            )
        self.eta = eta.astype(self.eta.dtype, copy=True)

    # ------------------------------------------------------------------
    def surface_height(self) -> tuple[np.ndarray, np.ndarray]:
        """Mean sea-surface height per gravity face.

        Returns ``(xy, eta)`` with ``xy`` the face centroid horizontal
        coordinates and ``eta`` the quadrature-weighted face average.
        """
        w = self.op.ref.face_weights
        avg = (self.eta * w) @ np.ones(len(w)) / w.sum()
        xy = np.einsum("fqd,q->fd", self.points[:, :, :2], w) / w.sum()
        return xy, avg

    def sample(self, xy: np.ndarray) -> np.ndarray:
        """Nearest-quad-point sample of eta at horizontal locations ``xy``."""
        pts = self.points[:, :, :2].reshape(-1, 2)
        flat = self.eta.reshape(-1)
        xy = np.atleast_2d(xy)
        out = np.empty(len(xy))
        for i, p in enumerate(xy):
            d2 = ((pts - p) ** 2).sum(axis=1)
            out[i] = flat[np.argmin(d2)]
        return out
