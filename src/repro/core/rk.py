"""ODE integrators for the gravitational free-surface face ODE (Eq. 24).

The face ODE system is linear with polynomial forcing:

    ``d(eta)/dt = -(rho g / Z) eta + f(t)``,    ``dH/dt = eta``

where ``f(t) = v_n^-(t) + p^-(t)/Z`` comes from the element's space-time
Taylor predictor and is therefore a polynomial of degree <= N.

Two integrators are provided:

* :class:`ExactPropagator` — the exact exponential (phi-function)
  propagator for linear systems with monomial forcing, built once per
  ``(a, dt)`` via Van Loan block matrix exponentials and applied as a dense
  linear combination of the forcing coefficients.  Exact to round-off; this
  substitutes the paper's Verner RK7 (whose role is "integrate the face ODE
  much more accurately than the surrounding scheme"), see DESIGN.md.
* :func:`rk_solve` — a generic explicit Runge-Kutta driver (classical RK4
  tableau supplied) matching the paper's approach of evaluating the
  predictor polynomial at the RK stage times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

__all__ = ["ExactPropagator", "RK4", "ButcherTableau", "rk_solve"]


class ExactPropagator:
    """Exact propagator for ``y' = A y + sum_k b_k t^k`` over ``[0, dt]``.

    ``A`` is a small (here 2x2) constant matrix.  The propagator is the pair
    of linear maps ``(E, W)`` with

        ``y(dt) = E @ y(0) + sum_k W[:, :, k] @ b_k``

    computed via the Van Loan augmented-exponential construction: for each
    monomial slot ``k`` the augmented system

        ``z' = [[A, C_k], [0, S]] z``,  ``S`` the shift on (1, t, t^2/2, ...)

    is propagated exactly with one ``expm``.
    """

    def __init__(self, A: np.ndarray, n_forcing: int, dt: float):
        A = np.atleast_2d(np.asarray(A, dtype=float))
        m = A.shape[0]
        if A.shape != (m, m):
            raise ValueError("A must be square")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        self.E = expm(A * dt)
        # monomial chain: u = (1, t, t^2, ..., t^{K-1}); u' = S u with
        # S[j, j-1] = j  (d/dt t^j = j t^{j-1})
        K = n_forcing
        self.W = np.zeros((m, m, K))
        if K == 0:
            return
        S = np.zeros((K, K))
        for j in range(1, K):
            S[j, j - 1] = j
        for k in range(K):
            # forcing b_k t^k enters component rows through C with C[:, k] = I col
            # handled per target row by injecting into each y-component; since
            # the forcing vector b_k is arbitrary in R^m, build the map for
            # unit vectors.
            for comp in range(m):
                M = np.zeros((m + K, m + K))
                M[:m, :m] = A
                M[m:, m:] = S
                M[comp, m + k] = 1.0
                Z = expm(M * dt)
                # z0 = [y0; u(0)] with u(0) = e_0 (monomial values at t=0)
                self.W[:, comp, k] = Z[:m, m]  # response of y(dt) to u_0=1, y0=0

    def apply(self, y0: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Propagate.

        Parameters
        ----------
        y0:
            ``(..., m)`` initial states.
        b:
            ``(..., m, K)`` monomial forcing coefficients.

        Returns ``y(dt)`` with the same leading shape.
        """
        out = np.einsum("ij,...j->...i", self.E, y0)
        if b.shape[-1]:
            out = out + np.einsum("ijk,...jk->...i", self.W, b)
        return out


@dataclass(frozen=True)
class ButcherTableau:
    """Coefficients of an explicit Runge-Kutta method."""

    a: np.ndarray  # (s, s) strictly lower triangular
    b: np.ndarray  # (s,)
    c: np.ndarray  # (s,)
    order: int

    def __post_init__(self):
        s = len(self.b)
        if self.a.shape != (s, s) or self.c.shape != (s,):
            raise ValueError("inconsistent tableau shapes")
        if np.any(np.triu(self.a) != 0):
            raise ValueError("tableau must be explicit (strictly lower triangular a)")
        if not np.isclose(self.b.sum(), 1.0):
            raise ValueError("weights must sum to 1")


RK4 = ButcherTableau(
    a=np.array(
        [
            [0.0, 0.0, 0.0, 0.0],
            [0.5, 0.0, 0.0, 0.0],
            [0.0, 0.5, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
    ),
    b=np.array([1.0 / 6, 1.0 / 3, 1.0 / 3, 1.0 / 6]),
    c=np.array([0.0, 0.5, 0.5, 1.0]),
    order=4,
)


def rk_solve(f, y0: np.ndarray, dt: float, tableau: ButcherTableau = RK4, n_steps: int = 1):
    """Integrate ``y' = f(t, y)`` from 0 to ``dt`` with ``n_steps`` RK steps.

    ``y0`` may have any shape; ``f`` must be vectorized over it.
    """
    y = np.array(y0, dtype=float, copy=True)
    h = dt / n_steps
    s = len(tableau.b)
    t = 0.0
    for _ in range(n_steps):
        ks = []
        for i in range(s):
            yi = y
            for j in range(i):
                if tableau.a[i, j] != 0.0:
                    yi = yi + h * tableau.a[i, j] * ks[j]
            ks.append(f(t + tableau.c[i] * h, yi))
        for i in range(s):
            y = y + h * tableau.b[i] * ks[i]
        t += h
    return y
