"""Exact (Godunov) Riemann solvers and per-face flux matrices.

Implements paper Sec. 4.2/4.3.  The Riemann problem at a face is solved in a
face-aligned frame (local x axis along the outward normal of the "minus"
element); the middle ("boundary") state ``w^b`` is a *linear* function of
the rotated traces ``w^- = T^{-1} q^-`` and ``w^+ = T^{-1} q^+``:

    ``w^b = G^- w^- + G^+ w^+``

so the numerical flux (paper Eqs. 19-20) becomes

    ``A_hat^- q* = F^- q^- + F^+ q^+``,
    ``F^{-/+} = T A^-_loc G^{-/+} T^{-1}``

with one pair of 9x9 matrices precomputed per face — the exact Riemann
solver at the cost of two small GEMMs, as in SeisSol.

Middle states implemented:

* welded contact (elastic-elastic, possibly different materials):
  continuity of traction and velocity;
* elastic-acoustic interface: continuity of normal traction and normal
  velocity, zero shear traction (Eqs. 17-18) — both sides use material
  parameters of *both* sides, which is what makes the coupled scheme
  consistent and convergent (Sec. 4.2);
* traction-free surface;
* gravitational free surface (linear part; the eta-dependent affine part of
  Eq. 22 is applied by :mod:`repro.core.gravity`);
* absorbing (outflow) boundary: positive flux part only.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .materials import NQ, SXX, SXY, SXZ, VX, VY, VZ, Material, jacobians
from .rotation import state_rotation, state_rotation_inverse

__all__ = [
    "FaceKind",
    "middle_state_matrices",
    "free_surface_matrix",
    "gravity_affine_vector",
    "jacobian_positive_part",
    "interior_flux_matrices",
    "boundary_flux_matrix",
]


class FaceKind(Enum):
    """Classification of mesh faces for flux purposes."""

    INTERIOR = 0
    FREE_SURFACE = 1
    GRAVITY_FREE_SURFACE = 2
    ABSORBING = 3
    FAULT = 4
    WALL = 5
    PRESCRIBED_MOTION = 6


def _couple_pair(Gm, Gp, i_sig, i_vel, Zm, Zp_):
    """Fill the welded-contact middle state for one (stress, velocity) pair.

    Solves the two-wave Riemann problem

        ``sig^b = sig^- + Z^- a``, ``v^b = v^- + a`` (left-going wave)
        ``sig^b = sig^+ + Z^+ b``, ``v^b = v^+ - b`` (right-going wave)

    giving ``a = (sig^+ - sig^- + Z^+ (v^+ - v^-)) / (Z^- + Z^+)``.
    """
    den = Zm + Zp_
    Gm[i_sig, i_sig] = Zp_ / den
    Gp[i_sig, i_sig] = Zm / den
    Gm[i_sig, i_vel] = -Zm * Zp_ / den
    Gp[i_sig, i_vel] = Zm * Zp_ / den
    Gm[i_vel, i_vel] = Zm / den
    Gp[i_vel, i_vel] = Zp_ / den
    Gm[i_vel, i_sig] = -1.0 / den
    Gp[i_vel, i_sig] = 1.0 / den


def middle_state_matrices(matm: Material, matp: Material) -> tuple[np.ndarray, np.ndarray]:
    """Middle-state matrices (G^-, G^+) in the face-aligned frame.

    Dispatches on the acoustic flags of the two sides.  Rows for components
    that do not enter the flux (sigma_yy, sigma_zz, sigma_yz) simply copy the
    minus trace — they are annihilated by ``A^-_loc`` anyway (cf. the remark
    below paper Eq. 18).
    """
    Gm = np.eye(NQ)
    Gp = np.zeros((NQ, NQ))

    # normal (P) pair couples for every interface type
    _couple_pair(Gm, Gp, SXX, VX, matm.Zp, matp.Zp)

    shear_pairs = ((SXY, VY), (SXZ, VZ))
    if not matm.is_acoustic and not matp.is_acoustic:
        for i_sig, i_vel in shear_pairs:
            _couple_pair(Gm, Gp, i_sig, i_vel, matm.Zs, matp.Zs)
    elif not matm.is_acoustic and matp.is_acoustic:
        # elastic side of an elastic-acoustic interface (paper Eq. 17):
        # shear traction of the middle state vanishes; the tangential
        # velocities are penalized by the tangential tractions.
        Zs = matm.Zs
        for i_sig, i_vel in shear_pairs:
            Gm[i_sig, :] = 0.0
            Gm[i_vel, i_sig] = -1.0 / Zs
    else:
        # acoustic minus side: A^-_loc has no shear columns, so only ensure
        # the shear-traction rows of w^b vanish; tangential velocities are
        # irrelevant to the flux.
        for i_sig, _ in shear_pairs:
            Gm[i_sig, :] = 0.0
    return Gm, Gp


def free_surface_matrix(mat: Material) -> np.ndarray:
    """Middle state for a traction-free surface: ``w^b = G w^-``.

    Traction components vanish; velocities take the one-sided characteristic
    value (e.g. ``v_n^b = v_n^- - sigma_nn^- / Zp``).
    """
    G = np.eye(NQ)
    G[SXX, :] = 0.0
    G[VX, SXX] = -1.0 / mat.Zp
    for i_sig, i_vel in ((SXY, VY), (SXZ, VZ)):
        G[i_sig, :] = 0.0
        if not mat.is_acoustic:
            G[i_vel, i_sig] = -1.0 / mat.Zs
    return G


def wall_matrix(mat: Material) -> np.ndarray:
    """Middle state for a free-slip rigid wall (mirror/symmetry plane).

    Normal velocity vanishes (``v_n^b = 0``) with the normal traction taking
    the characteristic value ``sigma_nn^b = sigma_nn^- - Zp v_n^-``; shear
    tractions vanish (free slip).  Equivalent to a mirror-image ghost state.
    Used for rigid seabeds in ocean-only tests and for symmetry planes.
    """
    G = np.eye(NQ)
    G[VX, :] = 0.0
    G[SXX, VX] = -mat.Zp
    for i_sig, i_vel in ((SXY, VY), (SXZ, VZ)):
        G[i_sig, :] = 0.0
        if not mat.is_acoustic:
            G[i_vel, i_sig] = -1.0 / mat.Zs
    return G


def gravity_affine_vector(mat: Material, g: float = 9.81) -> np.ndarray:
    """Affine (eta-proportional) part of the gravity middle state (Eq. 22).

    The full gravitational free-surface middle state is
    ``w^b = G_fs w^- + c * eta`` with ``G_fs`` the traction-free matrix and
    ``c`` this vector: ``sigma_nn^b`` gains ``-rho g eta`` (i.e.
    ``p^b = rho g eta``) and ``v_n^b`` gains ``-(rho g / Zp) eta``.
    """
    c = np.zeros(NQ)
    c[SXX] = -mat.rho * g
    c[VX] = -mat.rho * g / mat.Zp
    return c


def jacobian_positive_part(mat: Material) -> np.ndarray:
    """Positive part ``A^+_loc`` of the face-aligned Jacobian.

    Built analytically from the outgoing (right-going) eigenpairs; used for
    absorbing boundaries: the absorbing flux is ``T A^+_loc T^{-1} q^-``
    (only outgoing characteristics leave, nothing comes back in).
    """
    lam, mu = mat.lam, mat.mu
    lp2m = lam + 2.0 * mu
    cp = mat.cp
    Apos = np.zeros((NQ, NQ))
    # P mode: right eigenvector and matching left eigenvector, speed +cp
    r = np.zeros(NQ)
    r[SXX], r[1], r[2], r[VX] = lp2m, lam, lam, -cp
    left = np.zeros(NQ)
    left[SXX], left[VX] = 1.0 / (2.0 * lp2m), -1.0 / (2.0 * cp)
    Apos += cp * np.outer(r, left)
    if mu > 0.0:
        cs = mat.cs
        for i_sig, i_vel in ((SXY, VY), (SXZ, VZ)):
            r = np.zeros(NQ)
            r[i_sig], r[i_vel] = mu, -cs
            left = np.zeros(NQ)
            left[i_sig], left[i_vel] = 1.0 / (2.0 * mu), -1.0 / (2.0 * cs)
            Apos += cs * np.outer(r, left)
    return Apos


def interior_flux_matrices(
    matm: Material, matp: Material, n: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-face Godunov flux matrices (F^-, F^+) of paper Eq. (20).

    ``n`` is the outward unit normal of the minus element.  The returned
    matrices act on *global-frame* states:
    ``A_hat^- q* = F^- q^- + F^+ q^+``.
    """
    T = state_rotation(n)
    Tinv = state_rotation_inverse(n)
    Aloc = jacobians(matm)[0]
    Gm, Gp = middle_state_matrices(matm, matp)
    Fm = T @ (Aloc @ Gm) @ Tinv
    Fp = T @ (Aloc @ Gp) @ Tinv
    return Fm, Fp


def boundary_flux_matrix(mat: Material, n: np.ndarray, kind: FaceKind) -> np.ndarray:
    """Flux matrix ``F^-`` for a boundary face (no plus-side state).

    For ``GRAVITY_FREE_SURFACE`` this is only the linear-in-``w^-`` part;
    the eta-dependent contribution is added by the gravity module.
    """
    T = state_rotation(n)
    Tinv = state_rotation_inverse(n)
    Aloc = jacobians(mat)[0]
    if kind in (FaceKind.FREE_SURFACE, FaceKind.GRAVITY_FREE_SURFACE):
        G = free_surface_matrix(mat)
        return T @ (Aloc @ G) @ Tinv
    if kind is FaceKind.WALL:
        return T @ (Aloc @ wall_matrix(mat)) @ Tinv
    if kind is FaceKind.ABSORBING:
        return T @ jacobian_positive_part(mat) @ Tinv
    raise ValueError(f"not a boundary kind: {kind}")
