"""Output and persistence: VTK files, receiver archives, solver checkpoints."""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    latest_checkpoint,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from .receivers import load_receivers, save_receivers
from .vtk import write_vtk_surface, write_vtk_unstructured

__all__ = [
    "write_vtk_unstructured",
    "write_vtk_surface",
    "save_receivers",
    "load_receivers",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
    "latest_checkpoint",
    "CheckpointManager",
    "CheckpointError",
]
