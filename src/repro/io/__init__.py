"""Lightweight output: VTK meshes/fields for ParaView, receiver archives."""

from .vtk import write_vtk_surface, write_vtk_unstructured
from .receivers import load_receivers, save_receivers

__all__ = [
    "write_vtk_unstructured",
    "write_vtk_surface",
    "save_receivers",
    "load_receivers",
]
