"""Legacy-VTK writers (ASCII, ParaView-compatible, dependency-free).

SeisSol writes XDMF/HDF5 wavefield and free-surface output (Sec. 5.2
mentions the asynchronous-I/O threads that feed it); this module provides
the equivalent capability at reproduction scale: tetrahedral volume fields
and sea-surface point clouds as legacy ``.vtk`` files.
"""

from __future__ import annotations

import numpy as np

__all__ = ["write_vtk_unstructured", "write_vtk_surface"]

_TET_CELL_TYPE = 10  # VTK_TETRA
_VERTEX_CELL_TYPE = 1  # VTK_VERTEX


def _write_header(f, title: str):
    f.write("# vtk DataFile Version 3.0\n")
    f.write(title[:255] + "\n")
    f.write("ASCII\n")
    f.write("DATASET UNSTRUCTURED_GRID\n")


def _write_array(f, arr):
    np.savetxt(f, np.atleast_2d(arr), fmt="%.9g")


def write_vtk_unstructured(
    path: str,
    mesh,
    cell_data: dict[str, np.ndarray] | None = None,
    point_data: dict[str, np.ndarray] | None = None,
    title: str = "repro tetrahedral mesh",
) -> None:
    """Write a :class:`~repro.mesh.tetmesh.TetMesh` with per-cell fields.

    ``cell_data`` values must have shape ``(n_elements,)`` or
    ``(n_elements, 3)``; ``point_data`` analogously per vertex.
    """
    cell_data = cell_data or {}
    point_data = point_data or {}
    ne = mesh.n_elements
    nv = mesh.n_vertices
    for name, arr in cell_data.items():
        if len(arr) != ne:
            raise ValueError(f"cell field {name!r} has wrong length")
    for name, arr in point_data.items():
        if len(arr) != nv:
            raise ValueError(f"point field {name!r} has wrong length")

    with open(path, "w") as f:
        _write_header(f, title)
        f.write(f"POINTS {nv} double\n")
        _write_array(f, mesh.vertices)
        f.write(f"CELLS {ne} {ne * 5}\n")
        cells = np.column_stack([np.full(ne, 4, dtype=np.int64), mesh.tets])
        np.savetxt(f, cells, fmt="%d")
        f.write(f"CELL_TYPES {ne}\n")
        np.savetxt(f, np.full(ne, _TET_CELL_TYPE, dtype=np.int64), fmt="%d")

        if cell_data:
            f.write(f"CELL_DATA {ne}\n")
            for name, arr in cell_data.items():
                arr = np.asarray(arr, dtype=float)
                if arr.ndim == 1:
                    f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
                    _write_array(f, arr[:, None])
                elif arr.ndim == 2 and arr.shape[1] == 3:
                    f.write(f"VECTORS {name} double\n")
                    _write_array(f, arr)
                else:
                    raise ValueError(f"cell field {name!r}: unsupported shape {arr.shape}")
        if point_data:
            f.write(f"POINT_DATA {nv}\n")
            for name, arr in point_data.items():
                arr = np.asarray(arr, dtype=float)
                if arr.ndim == 1:
                    f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
                    _write_array(f, arr[:, None])
                elif arr.ndim == 2 and arr.shape[1] == 3:
                    f.write(f"VECTORS {name} double\n")
                    _write_array(f, arr)
                else:
                    raise ValueError(f"point field {name!r}: unsupported shape {arr.shape}")


def write_vtk_surface(
    path: str,
    points: np.ndarray,
    fields: dict[str, np.ndarray] | None = None,
    title: str = "repro sea surface",
) -> None:
    """Write a point cloud (e.g. gravity-face quadrature points + eta).

    Typical use::

        g = solver.gravity
        write_vtk_surface("surface.vtk", g.points.reshape(-1, 3),
                          {"eta": g.eta.reshape(-1)})
    """
    points = np.asarray(points, dtype=float).reshape(-1, 3)
    fields = fields or {}
    n = len(points)
    for name, arr in fields.items():
        if len(np.asarray(arr).reshape(n, -1)) != n:
            raise ValueError(f"field {name!r} has wrong length")

    with open(path, "w") as f:
        _write_header(f, title)
        f.write(f"POINTS {n} double\n")
        _write_array(f, points)
        f.write(f"CELLS {n} {n * 2}\n")
        cells = np.column_stack([np.ones(n, dtype=np.int64), np.arange(n, dtype=np.int64)])
        np.savetxt(f, cells, fmt="%d")
        f.write(f"CELL_TYPES {n}\n")
        np.savetxt(f, np.full(n, _VERTEX_CELL_TYPE, dtype=np.int64), fmt="%d")
        if fields:
            f.write(f"POINT_DATA {n}\n")
            for name, arr in fields.items():
                arr = np.asarray(arr, dtype=float).reshape(n, -1)
                if arr.shape[1] == 1:
                    f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
                    _write_array(f, arr)
                elif arr.shape[1] == 3:
                    f.write(f"VECTORS {name} double\n")
                    _write_array(f, arr)
                else:
                    raise ValueError(f"field {name!r}: unsupported shape {arr.shape}")
