"""Receiver archive I/O: save/load recorded seismograms as ``.npz``.

The paper's production runs write receivers every 0.01 s (Sec. 6.2); this
is the reproduction's archival format for the same data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_receivers", "load_receivers"]


def save_receivers(path: str, receivers, metadata: dict | None = None) -> None:
    """Persist a :class:`~repro.analysis.receivers.ReceiverArray`."""
    if len(receivers.times) == 0:
        raise ValueError("no samples recorded")
    meta_keys = []
    meta_vals = []
    for k, v in (metadata or {}).items():
        meta_keys.append(str(k))
        meta_vals.append(str(v))
    np.savez_compressed(
        path,
        times=np.asarray(receivers.times),
        samples=np.asarray(receivers.samples),
        positions=receivers.positions,
        meta_keys=np.asarray(meta_keys),
        meta_vals=np.asarray(meta_vals),
    )


def load_receivers(path: str):
    """Load an archive: returns ``(times, samples, positions, metadata)``.

    ``samples`` has shape ``(nt, nreceivers, 9)`` in the standard quantity
    ordering (sxx, syy, szz, sxy, syz, sxz, vx, vy, vz).
    """
    with np.load(path, allow_pickle=False) as d:
        meta = dict(zip(d["meta_keys"].tolist(), d["meta_vals"].tolist()))
        return d["times"], d["samples"], d["positions"], meta
