"""Versioned, atomic solver checkpoints for long-running simulations.

The paper's production runs (SeisSol on SuperMUC-NG / Frontera, Sec. 5-6)
survive multi-hour executions only because the surrounding HPC stack
provides restart files; this module is the reproduction's equivalent.  A
checkpoint captures the *complete* time-marching state of a
:class:`~repro.core.solver.CoupledSolver` (modal coefficients ``Q``,
simulation time, gravitational sea-surface state, dynamic-rupture fault
state, LTS bookkeeping) as a single ``.npz`` archive:

* **atomic** — written to a temporary file in the target directory and
  published with :func:`os.replace`, so a crash mid-write never leaves a
  truncated archive that a later resume would trip over;
* **versioned** — a format version is embedded and checked on load;
* **fingerprinted** — a SHA-256 digest of everything that defines the
  discrete problem (mesh geometry and topology, material table, boundary
  tags, fault faces, polynomial order, CFL safety, gravity constant) is
  stored alongside the state.  Restoring into a solver whose fingerprint
  differs raises :class:`CheckpointError` instead of silently loading a
  stale or foreign state.

Checkpoints taken at LTS macro-step synchronization points (where all
cluster clocks align) are exact: resuming reproduces the uninterrupted
run bit for bit, which the test suite asserts.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
import warnings
import zipfile
import zlib

import numpy as np

from ..obs.metrics import get_metrics
from ..obs.telemetry import get_telemetry

__all__ = [
    "CheckpointError",
    "CHECKPOINT_VERSION",
    "fingerprint",
    "capture_state",
    "restore_state",
    "save_checkpoint",
    "load_checkpoint",
    "restore_checkpoint",
    "checkpoint_candidates",
    "latest_checkpoint",
    "CheckpointManager",
]

#: On-disk format version; bumped whenever the key layout changes.
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied to a solver."""


# ----------------------------------------------------------------------
def fingerprint(solver) -> str:
    """SHA-256 digest of the discrete problem a solver state belongs to.

    Builds on :func:`repro.exec.plan_cache.mesh_fingerprint` (the digest
    the operator-plan cache is keyed by), which covers mesh geometry and
    topology, the material table, boundary tags and fault-face marks, and
    adds the solver-level scalars: polynomial order, CFL safety and the
    gravitational constant.  Deliberately excludes run-time knobs
    (integrator choice, flux variant, execution backend) that do not
    change the meaning of ``Q``.
    """
    from ..exec.plan_cache import mesh_fingerprint

    h = hashlib.sha256()
    h.update(mesh_fingerprint(solver.mesh).encode())
    scalars = np.array([float(solver.order), solver.cfl_safety, solver.gravity.g])
    h.update(scalars.tobytes())
    h.update(b"fault" if solver.fault is not None else b"no-fault")
    return h.hexdigest()


# ----------------------------------------------------------------------
def capture_state(solver, lts=None) -> dict:
    """Deep-copy every time-marching array of ``solver`` into a flat dict.

    The returned mapping is ``np.savez``-ready; it is also what
    :class:`~repro.core.resilience.ResilientRunner` keeps in memory as its
    rollback snapshot.
    """
    state = {
        "t": np.float64(solver.t),
        "Q": solver.Q.copy(),
    }
    if len(solver.gravity):
        for name, arr in solver.gravity.state_dict().items():
            state[f"gravity_{name}"] = arr
    if solver.motion is not None:
        state["motion_uplift"] = solver.motion.uplift.copy()
    if solver.fault is not None:
        for name, arr in solver.fault.state_dict().items():
            state[f"fault_{name}"] = arr
    if lts is not None:
        state["lts_updates"] = lts.updates.copy()
    return state


def restore_state(solver, state: dict, lts=None) -> None:
    """Apply a state dict produced by :func:`capture_state` to ``solver``.

    Shape mismatches and missing components raise :class:`CheckpointError`
    with an explanation rather than corrupting the solver.
    """

    def take(key: str, like: np.ndarray) -> np.ndarray:
        if key not in state:
            raise CheckpointError(
                f"checkpoint lacks required field {key!r}; it was saved from a "
                "solver with a different configuration"
            )
        arr = np.asarray(state[key])
        if arr.shape != like.shape:
            raise CheckpointError(
                f"checkpoint field {key!r} has shape {arr.shape}, solver expects "
                f"{like.shape}; the mesh or order does not match"
            )
        return arr.astype(like.dtype, copy=True)

    def component_state(prefix: str, fields) -> dict:
        sub = {}
        for name in fields:
            key = f"{prefix}_{name}"
            if key not in state:
                raise CheckpointError(
                    f"checkpoint lacks required field {key!r}; it was saved "
                    "from a solver with a different configuration"
                )
            sub[name] = np.asarray(state[key])
        return sub

    Q = take("Q", solver.Q)
    t = float(np.asarray(state.get("t", np.nan)))
    if not np.isfinite(t):
        raise CheckpointError("checkpoint lacks a finite simulation time 't'")

    eta = None
    if len(solver.gravity):
        eta = component_state("gravity", ("eta",))
    uplift = None
    if solver.motion is not None:
        uplift = take("motion_uplift", solver.motion.uplift)
    fault_state = None
    if solver.fault is not None:
        fault_state = component_state("fault", solver.fault.STATE_FIELDS)
    elif any(k.startswith("fault_") for k in state):
        raise CheckpointError(
            "checkpoint contains dynamic-rupture fault state but the solver has "
            "no fault attached"
        )

    try:
        if eta is not None:
            solver.gravity.load_state(eta)
        if fault_state is not None:
            solver.fault.load_state(fault_state)
    except ValueError as exc:
        raise CheckpointError(str(exc)) from exc
    solver.Q = Q
    solver.t = t
    if uplift is not None:
        solver.motion.uplift = uplift
    if lts is not None and "lts_updates" in state:
        upd = np.asarray(state["lts_updates"])
        if upd.shape == lts.updates.shape:
            lts.updates = upd.astype(lts.updates.dtype, copy=True)


# ----------------------------------------------------------------------
def save_checkpoint(path: str, solver, lts=None, metadata: dict | None = None) -> str:
    """Atomically write a checkpoint of ``solver`` (and optional ``lts``).

    The archive is first written to a temporary file in the destination
    directory and then published with :func:`os.replace`, so readers only
    ever see complete checkpoints.  Returns the final path.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    with get_telemetry().phase("io/checkpoint_save"):
        return _save_checkpoint(path, solver, lts, metadata)


def _save_checkpoint(path, solver, lts, metadata) -> str:
    arrays = capture_state(solver, lts)
    arrays["version"] = np.int64(CHECKPOINT_VERSION)
    arrays["fingerprint"] = np.array(fingerprint(solver))
    meta_keys, meta_vals = [], []
    for k, v in (metadata or {}).items():
        meta_keys.append(str(k))
        meta_vals.append(str(v))
    arrays["meta_keys"] = np.asarray(meta_keys)
    arrays["meta_vals"] = np.asarray(meta_vals)

    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    # pid-keyed unique temp name: concurrent ensemble workers checkpointing
    # into sibling paths of one directory must never collide mid-publish
    fd, tmp = tempfile.mkstemp(
        dir=directory,
        prefix=f".{os.path.basename(path)}.{os.getpid()}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez_compressed(f, **arrays)
            f.flush()
            os.fsync(f.fileno())
            n_bytes = f.tell()
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    met = get_metrics()
    if met.enabled:
        met.inc("io/checkpoint_writes")
        met.inc("io/checkpoint_bytes", int(n_bytes))
    return path


def load_checkpoint(path: str) -> dict:
    """Read a checkpoint archive.

    Returns ``{"version", "fingerprint", "state", "metadata"}`` where
    ``state`` is the dict :func:`restore_state` accepts.
    """
    try:
        with get_telemetry().phase("io/checkpoint_load"), \
                np.load(path, allow_pickle=False) as d:
            data = {k: d[k] for k in d.files}
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile, zlib.error) as exc:
        # OSError/ValueError: unreadable or not an archive; BadZipFile /
        # zlib.error / EOFError: an archive truncated mid-write (kill -9
        # through a non-atomic path); KeyError: a member list torn apart
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    met = get_metrics()
    if met.enabled:
        met.inc("io/checkpoint_loads")
    version = int(data.pop("version", -1))
    if version < 1 or version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version}; this build "
            f"supports versions 1..{CHECKPOINT_VERSION}"
        )
    fp = str(data.pop("fingerprint", ""))
    meta = dict(
        zip(data.pop("meta_keys", np.array([])).tolist(),
            data.pop("meta_vals", np.array([])).tolist())
    )
    return {"version": version, "fingerprint": fp, "state": data, "metadata": meta}


def restore_checkpoint(path: str, solver, lts=None, strict: bool = True) -> dict:
    """Load ``path`` and apply it to ``solver`` after a fingerprint check.

    With ``strict=True`` (default) a fingerprint mismatch — a checkpoint
    saved from a different mesh, material table, order, or boundary tagging
    — raises :class:`CheckpointError` instead of silently restoring a
    stale state.  Returns the checkpoint's metadata dict.
    """
    data = load_checkpoint(path)
    if strict:
        want = fingerprint(solver)
        if data["fingerprint"] != want:
            raise CheckpointError(
                f"checkpoint {path!r} was saved from a different problem "
                f"(fingerprint {data['fingerprint'][:12]}… != solver "
                f"{want[:12]}…); refusing to restore. Rebuild the identical "
                "mesh/config, or pass strict=False to override."
            )
    restore_state(solver, data["state"], lts)
    return data["metadata"]


# ----------------------------------------------------------------------
_CKPT_RE = re.compile(r"^(?P<prefix>.+)_(?P<step>\d+)\.npz$")


def checkpoint_candidates(directory: str, prefix: str = "ckpt") -> list[str]:
    """All ``<prefix>_<step>.npz`` paths in ``directory``, newest first."""
    if not os.path.isdir(directory):
        return []
    found = []
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    for name in names:
        m = _CKPT_RE.match(name)
        if m and m.group("prefix") == prefix:
            found.append((int(m.group("step")), name))
    return [os.path.join(directory, name)
            for _, name in sorted(found, reverse=True)]


def latest_checkpoint(directory: str, prefix: str = "ckpt",
                      validate: bool = False) -> str | None:
    """Path of the highest-step ``<prefix>_<step>.npz`` in ``directory``.

    With ``validate=True`` each candidate is opened (newest first) and the
    first one that actually loads is returned — a worker killed mid-write
    or a torn filesystem must never poison its own resume, so corrupt or
    truncated archives are warned about and skipped in favor of the
    next-newest rotation.
    """
    candidates = checkpoint_candidates(directory, prefix)
    if not validate:
        return candidates[0] if candidates else None
    for path in candidates:
        try:
            load_checkpoint(path)
        except CheckpointError as exc:
            warnings.warn(
                f"skipping unreadable checkpoint {path!r} ({exc}); "
                "falling back to the next-newest rotation",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        return path
    return None


class CheckpointManager:
    """Rotating on-disk checkpoints: ``<dir>/<prefix>_<step>.npz``.

    Keeps the ``keep`` most recent archives; older ones are pruned after a
    successful write (never before, so an interrupted save cannot reduce
    the number of usable restart points).
    """

    def __init__(self, directory: str, solver, lts=None, keep: int = 3,
                 prefix: str = "ckpt"):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = directory
        self.solver = solver
        self.lts = lts
        self.keep = keep
        self.prefix = prefix

    def path_for(self, step: int) -> str:
        return os.path.join(self.directory, f"{self.prefix}_{step:010d}.npz")

    def save(self, step: int, metadata: dict | None = None) -> str:
        meta = {"step": step, "t": self.solver.t}
        meta.update(metadata or {})
        path = save_checkpoint(self.path_for(step), self.solver, self.lts, meta)
        self._prune()
        return path

    def latest(self) -> str | None:
        return latest_checkpoint(self.directory, self.prefix)

    def restore_latest(self, strict: bool = True) -> dict | None:
        """Restore the newest *readable* checkpoint; metadata or ``None``.

        Corrupt or truncated rotations (a killed worker's last write, a
        torn disk) are warned about and skipped, falling back to the
        next-newest archive; a fingerprint mismatch under ``strict`` still
        raises — that is a different problem, not a damaged file.
        """
        for path in checkpoint_candidates(self.directory, self.prefix):
            try:
                data = load_checkpoint(path)
            except CheckpointError as exc:
                warnings.warn(
                    f"skipping unreadable checkpoint {path!r} ({exc}); "
                    "falling back to the next-newest rotation",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if strict:
                want = fingerprint(self.solver)
                if data["fingerprint"] != want:
                    raise CheckpointError(
                        f"checkpoint {path!r} was saved from a different "
                        f"problem (fingerprint {data['fingerprint'][:12]}… != "
                        f"solver {want[:12]}…); refusing to restore"
                    )
            restore_state(self.solver, data["state"], self.lts)
            return data["metadata"]
        return None

    def _prune(self) -> None:
        # tolerate concurrent writers/pruners in sibling processes: every
        # unlink (and the listing itself) may race with another worker
        for path in checkpoint_candidates(self.directory, self.prefix)[self.keep:]:
            try:
                os.unlink(path)
            except OSError:
                pass
