"""Scenario A: megathrust earthquake-tsunami benchmark (paper Sec. 6.1).

A scaled 3D realization of the "Scenario A" benchmark of Madden et al.: a
planar thrust fault dipping under a flat-bathymetry ocean, spontaneous
linear-slip-weakening rupture, fully coupled ocean response with gravity,
compared against the one-way-linked shallow-water workflow.

Scaling substitutions (see DESIGN.md): the fault is O(km) instead of
200 km, the dip is 30 degrees (a Kuhn-mesh-exact diagonal plane: vertical
spacing ``dz = dx tan(dip)`` makes the dipping plane a union of mesh
faces), wave speeds are reduced 5x to keep integration affordable in
Python, and the ocean is a few hundred meters deep.  All *mechanisms* of
the benchmark are retained: dip-slip uplift of the seafloor, gravity-wave
generation, ocean acoustic reverberation (periods ``4 h / c``, the paper's
"high frequency oscillations trailing the leading seismic wavefronts"),
and the hydrostatic/incompressible approximations of the linked baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.materials import acoustic, elastic
from ..core.riemann import FaceKind
from ..core.solver import CoupledSolver, ocean_surface_gravity_tagger
from ..mesh.generators import box_mesh, layered_ocean_mesh
from ..rupture.fault import FaultSolver, Prestress
from ..rupture.friction import LinearSlipWeakening
from ..tsunami.linking import BedMotionInterpolator, SurfaceDisplacementTracker
from ..tsunami.swe import ShallowWaterSolver

__all__ = ["ScenarioAConfig", "build_coupled", "build_earthquake_only", "run_linked_tsunami"]


@dataclass
class ScenarioAConfig:
    """Geometry/material/friction configuration (mini defaults)."""

    dip_deg: float = 30.0
    dx: float = 500.0  # horizontal spacing (x; dz is tied to the dip)
    dy: float = 600.0
    x_extent: tuple = (-2500.0, 2500.0)
    y_extent: tuple = (-2400.0, 2400.0)
    n_ocean_layers: int = 2
    n_earth_layers: int = 9
    # materials: paper's Scenario-A oceanic crust with speeds scaled 1/5
    rho_earth: float = 3775.0
    cp_earth: float = 7639.9 / 5.0
    cs_earth: float = 4229.4 / 5.0
    rho_ocean: float = 1000.0
    c_ocean: float = 1500.0 / 5.0
    # fault (up-dip direction +x, along-strike y); top edge below seafloor
    fault_top_z: float | None = None  # default: one dz below the seafloor
    fault_length_y: float = 1800.0
    fault_width_z: float | None = None  # vertical extent; default 5 dz
    # friction / stress
    mu_s: float = 0.55
    mu_d: float = 0.25
    d_c: float = 0.15
    sigma_n0: float = -50e6
    tau0: float = 24e6
    nucleation_tau: float = 6e6
    nucleation_radius: float = 600.0
    order: int = 2

    @property
    def dz(self) -> float:
        return self.dx * np.tan(np.deg2rad(self.dip_deg))

    @property
    def ocean_depth(self) -> float:
        return self.n_ocean_layers * self.dz

    @property
    def seafloor_z(self) -> float:
        return -self.ocean_depth

    @property
    def fault_normal(self) -> np.ndarray:
        d = np.deg2rad(self.dip_deg)
        n = np.array([-np.sin(d), 0.0, np.cos(d)])
        return n

    @property
    def updip(self) -> np.ndarray:
        d = np.deg2rad(self.dip_deg)
        return np.array([np.cos(d), 0.0, np.sin(d)])


def _grids(cfg: ScenarioAConfig):
    nx = int(round((cfg.x_extent[1] - cfg.x_extent[0]) / cfg.dx))
    ny = int(round((cfg.y_extent[1] - cfg.y_extent[0]) / cfg.dy))
    xs = np.linspace(cfg.x_extent[0], cfg.x_extent[1], nx + 1)
    ys = np.linspace(cfg.y_extent[0], cfg.y_extent[1], ny + 1)
    z_bot = cfg.seafloor_z - cfg.n_earth_layers * cfg.dz
    zs_earth = np.linspace(z_bot, cfg.seafloor_z, cfg.n_earth_layers + 1)
    zs_ocean = np.linspace(cfg.seafloor_z, 0.0, cfg.n_ocean_layers + 1)
    return xs, ys, zs_earth, zs_ocean


def _fault_plane_marker(cfg: ScenarioAConfig):
    """Predicate selecting the dipping fault plane through the origin."""
    n_f = cfg.fault_normal
    dz = cfg.dz
    top = cfg.fault_top_z if cfg.fault_top_z is not None else cfg.seafloor_z - dz
    width = cfg.fault_width_z if cfg.fault_width_z is not None else 5 * dz
    z_lo = top - width
    # the plane passes through (0, 0, z_mid); pick the mesh diagonal plane
    # closest to mid-depth: planes satisfy z - x tan(dip) = k dz
    tan_d = np.tan(np.deg2rad(cfg.dip_deg))

    def predicate(centroids, normals):
        aligned = np.abs(normals @ n_f) > 0.999
        # mesh diagonal planes satisfy z - x tan(dip) = k dz; pick the one
        # whose trace passes mid-depth below the nucleation region
        level = centroids[:, 2] - centroids[:, 0] * tan_d
        target_k = np.round((top - width / 2) / dz)
        on_plane = np.abs(level - target_k * dz) < 1e-6 * dz
        in_z = (centroids[:, 2] > z_lo - 1e-6) & (centroids[:, 2] < top + 1e-6)
        in_y = np.abs(centroids[:, 1]) < cfg.fault_length_y / 2 + 1e-6
        return aligned & on_plane & in_z & in_y

    return predicate


def _prestress(cfg: ScenarioAConfig) -> Prestress:
    updip = cfg.updip

    def shear(points):
        # reverse (thrust) loading: traction on the foot wall from the
        # hanging wall acts up-dip
        return np.tile(cfg.tau0 * updip, (len(points), 1))

    def nucleation(points):
        r2 = points[:, 1] ** 2 + (points[:, 2] - (cfg.seafloor_z - 3.5 * cfg.dz)) ** 2
        amp = np.where(np.sqrt(r2) < cfg.nucleation_radius, cfg.nucleation_tau, 0.0)
        return amp[:, None] * updip[None, :]

    return Prestress(
        sigma_n=cfg.sigma_n0,
        shear_vector=shear,
        nucleation_vector=nucleation,
    )


def _friction(cfg: ScenarioAConfig, fault_points: np.ndarray | None = None):
    """LSW with strengthening towards the seafloor (stops the rupture)."""
    return LinearSlipWeakening(mu_s=cfg.mu_s, mu_d=cfg.mu_d, d_c=cfg.d_c)


def build_coupled(cfg: ScenarioAConfig | None = None, backend="serial",
                  workers: int | None = None):
    """Fully coupled Earth+ocean solver with the dynamic-rupture source.

    ``backend``/``workers`` select the execution backend (see
    :mod:`repro.exec`).  Returns ``(solver, fault)``.
    """
    cfg = cfg or ScenarioAConfig()
    xs, ys, zs_earth, zs_ocean = _grids(cfg)
    earth = elastic(cfg.rho_earth, cfg.cp_earth, cfg.cs_earth)
    ocean = acoustic(cfg.rho_ocean, cfg.c_ocean)
    mesh = layered_ocean_mesh(xs, ys, zs_earth, zs_ocean, earth, ocean)
    n = mesh.mark_fault(_fault_plane_marker(cfg))
    if n == 0:
        raise RuntimeError("Scenario A fault marking failed (no faces on plane)")
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    fault = FaultSolver(_friction(cfg), _prestress(cfg))
    solver = CoupledSolver(mesh, order=cfg.order, fault=fault,
                           backend=backend, workers=workers)
    _strengthen_near_seafloor(cfg, fault)
    return solver, fault


def build_earthquake_only(cfg: ScenarioAConfig | None = None, backend="serial",
                          workers: int | None = None):
    """Earth-only model for the one-way-linked workflow.

    Same fault and stress, no water layer; the top surface (the seafloor)
    is traction-free — the standard linked-modeling approximation
    (Sec. 6.1).  Returns ``(solver, fault, tracker)``.
    """
    cfg = cfg or ScenarioAConfig()
    xs, ys, zs_earth, _ = _grids(cfg)
    earth = elastic(cfg.rho_earth, cfg.cp_earth, cfg.cs_earth)
    mesh = box_mesh(xs, ys, zs_earth, [earth])
    n = mesh.mark_fault(_fault_plane_marker(cfg))
    if n == 0:
        raise RuntimeError("fault marking failed")

    seafloor = cfg.seafloor_z

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.ABSORBING.value)
        top = (nrm[:, 2] > 0.99) & (np.abs(cent[:, 2] - seafloor) < 1e-6 * abs(seafloor))
        tags[top] = FaceKind.FREE_SURFACE.value
        return tags

    mesh.tag_boundary(tagger)
    fault = FaultSolver(_friction(cfg), _prestress(cfg))
    solver = CoupledSolver(mesh, order=cfg.order, fault=fault,
                           backend=backend, workers=workers)
    _strengthen_near_seafloor(cfg, fault)
    tracker = SurfaceDisplacementTracker(solver)
    return solver, fault, tracker


def _strengthen_near_seafloor(cfg: ScenarioAConfig, fault: FaultSolver) -> None:
    """Raise mu_s towards the seafloor so the rupture stops smoothly (the
    paper: 'higher fault strength near the seafloor smoothly stops the
    rupture')."""
    z = fault.points[:, :, 2]
    top = cfg.seafloor_z
    ramp = np.clip((z - (top - 2.5 * cfg.dz)) / (2.5 * cfg.dz), 0.0, 1.0)
    mu_s = cfg.mu_s + (1.5 - cfg.mu_s) * ramp
    fault.friction.mu_s = mu_s


def run_linked_tsunami(
    cfg: ScenarioAConfig,
    tracker: SurfaceDisplacementTracker,
    snapshots: list[tuple[float, np.ndarray]],
    t_end: float,
    grid_dx: float = 250.0,
):
    """One-way linking step: gridded time-dependent uplift -> SWE run.

    ``snapshots`` are (t, uz) pairs recorded from the earthquake-only run.
    Returns the shallow-water solver at ``t_end``.
    """
    xs = np.arange(cfg.x_extent[0], cfg.x_extent[1] + grid_dx / 2, grid_dx)
    ys = np.arange(cfg.y_extent[0], cfg.y_extent[1] + grid_dx / 2, grid_dx)
    swe = ShallowWaterSolver(
        xs, ys, lambda X, Y: np.full_like(X, cfg.seafloor_z), boundary="outflow"
    )
    times = np.array([t for t, _ in snapshots])
    grids = np.stack([tracker.snapshot_grid(xs, ys, uz) for _, uz in snapshots])
    b0 = np.full((len(xs) - 1, len(ys) - 1), cfg.seafloor_z)
    swe.set_bed_motion(BedMotionInterpolator(b0, times, grids))
    swe.run(t_end)
    return swe
