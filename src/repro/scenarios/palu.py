"""The 2018 Palu, Sulawesi earthquake-tsunami scenario (paper Sec. 6.2).

A scaled, fully synthetic stand-in for the paper's flagship run: a narrow,
deep, "bathtub-like" bay (the BATNAS bathymetry substitute) crossed by a
vertical strike-slip fault hosting a supershear rupture with a small
normal-faulting (transtensional) component — the mechanism that makes the
Palu event tsunamigenic despite being strike-slip (static vertical
deformation modulated by the steep bay bathymetry, paper Fig. 1d/5).

Scaled-down by design (see DESIGN.md): the bay is O(km) instead of 30 km,
wave speeds are 1/4 of crustal values, and the resolution target is
O(10^4) elements.  Every mechanism of the paper's run is retained:

* rate-and-state fast-velocity-weakening friction (the Palu source model),
* sustained supershear rupture (Mach cone in the sea-surface response),
* uplift/subsidence quadrants from the rake's dip-slip component,
* trapped gravity waves in the bay, ocean acoustics over variable depth,
* the shallow-coast LTS cluster structure (Fig. 4),
* a one-way-linked shallow-water twin for the Fig. 5 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.materials import acoustic, elastic
from ..core.riemann import FaceKind
from ..core.solver import CoupledSolver, ocean_surface_gravity_tagger
from ..mesh.generators import bathymetry_mesh, box_mesh
from ..mesh.refine import refined_spacing
from ..rupture.fault import FaultSolver, Prestress
from ..rupture.friction import RateStateFastVelocityWeakening
from ..tsunami.linking import BedMotionInterpolator, SurfaceDisplacementTracker
from ..tsunami.swe import ShallowWaterSolver

__all__ = ["PaluConfig", "palu_bathymetry", "build_coupled", "build_earthquake_only", "run_linked_tsunami"]


@dataclass
class PaluConfig:
    """Scaled Palu-like setup (mini defaults)."""

    # domain [m]
    x_extent: tuple = (-3500.0, 3500.0)
    y_extent: tuple = (-4500.0, 4500.0)
    # bay geometry: elongated in y, centered at x = bay_x
    bay_x: float = 500.0
    bay_half_width: float = 800.0
    bay_length: float = 3200.0  # bay mouth at +y, head at -y
    bay_depth: float = 120.0
    shelf_depth: float = 30.0
    # discretization
    dx_fine: float = 400.0
    dx_coarse: float = 900.0
    n_ocean_layers: int = 2
    earth_depth: float = 2800.0
    n_earth_layers: int = 6
    # materials (1/4 crustal speeds)
    rho_earth: float = 2700.0
    cp_earth: float = 6000.0 / 4.0
    cs_earth: float = 3464.0 / 4.0
    rho_ocean: float = 1000.0
    c_ocean: float = 1500.0 / 4.0
    # fault: vertical plane x = fault_x, strike along y
    fault_x: float = 0.0
    fault_y_extent: tuple = (-3800.0, 3800.0)
    fault_top_margin: float = 150.0  # below the local seafloor
    fault_depth: float = 2000.0
    # stress / friction: transtensional left-lateral loading; the rake's
    # dip-slip part creates the vertical deformation that sources the
    # tsunami (paper: mean 1.5 m uplift under the bay)
    sigma_n0: float = -30e6
    tau_strike: float = 14e6
    rake_deg: float = -20.0  # strike-slip with a normal-faulting component
    nucleation_tau: float = 14e6
    nucleation_y: float = 2400.0  # unilateral southward rupture (paper)
    nucleation_radius: float = 800.0
    # rate-and-state FVW (Palu-like, Ulrich et al. 2019 flavor)
    rs_a: float = 0.01
    rs_b: float = 0.014
    rs_L: float = 0.1
    rs_Vw: float = 0.1
    rs_fw: float = 0.10
    order: int = 2

    @property
    def earth_material(self):
        return elastic(self.rho_earth, self.cp_earth, self.cs_earth)

    @property
    def ocean_material(self):
        return acoustic(self.rho_ocean, self.c_ocean)


def palu_bathymetry(cfg: PaluConfig | None = None):
    """Synthetic BATNAS substitute: a steep, narrow bay plus shallow shelf.

    Returns ``bathy(x, y) -> seafloor z (< 0)``.
    """
    cfg = cfg or PaluConfig()

    def bathy(x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        across = np.exp(-(((x - cfg.bay_x) / cfg.bay_half_width) ** 2))
        # open at the +y mouth, closing toward the -y head (bathtub profile)
        along = 0.5 * (1.0 + np.tanh((y + cfg.bay_length / 2) / (0.35 * cfg.bay_length)))
        along *= 0.5 * (1.0 + np.tanh((cfg.bay_length - y) / (0.8 * cfg.bay_length)))
        return -(cfg.shelf_depth + (cfg.bay_depth - cfg.shelf_depth) * across * along)

    return bathy


def _grids(cfg: PaluConfig):
    def window(lo, hi, w_lo, w_hi):
        # clip the refinement window into the domain (endpoints allowed)
        return max(lo, w_lo), min(hi, w_hi)

    x_lo, x_hi = window(
        *cfg.x_extent,
        cfg.bay_x - 2.5 * cfg.bay_half_width,
        cfg.bay_x + 2.5 * cfg.bay_half_width,
    )
    xs = refined_spacing(cfg.x_extent[0], cfg.x_extent[1], cfg.dx_coarse, cfg.dx_fine, x_lo, x_hi)
    # keep the fault plane exactly on grid lines
    xs = np.unique(np.round(np.concatenate([xs, [cfg.fault_x]]), 9))
    y_lo, y_hi = window(*cfg.y_extent, -cfg.bay_length, cfg.bay_length)
    ys = refined_spacing(cfg.y_extent[0], cfg.y_extent[1], cfg.dx_coarse, cfg.dx_fine, y_lo, y_hi)
    zs_earth = np.linspace(-cfg.earth_depth, -cfg.shelf_depth, cfg.n_earth_layers + 1)
    return xs, ys, zs_earth


def _fault_marker(cfg: PaluConfig, bathy):
    def predicate(centroids, normals):
        aligned = np.abs(normals[:, 0]) > 0.999
        on_plane = np.abs(centroids[:, 0] - cfg.fault_x) < 1e-6 * max(abs(cfg.fault_x), 1.0) + 1e-6
        top = bathy(np.full(len(centroids), cfg.fault_x), centroids[:, 1]) - cfg.fault_top_margin
        in_z = (centroids[:, 2] < top) & (centroids[:, 2] > -cfg.fault_depth)
        in_y = (centroids[:, 1] > cfg.fault_y_extent[0]) & (centroids[:, 1] < cfg.fault_y_extent[1])
        return aligned & on_plane & in_z & in_y

    return predicate


def _prestress(cfg: PaluConfig) -> Prestress:
    rake = np.deg2rad(cfg.rake_deg)
    # strike direction +y; dip direction -z (down); left-lateral shear with
    # a normal-slip component
    shear_dir = np.array([0.0, np.cos(rake), np.sin(rake)])

    def shear(points):
        return np.tile(cfg.tau_strike * shear_dir, (len(points), 1))

    def nucleation(points):
        r2 = (points[:, 1] - cfg.nucleation_y) ** 2 + (points[:, 2] + 900.0) ** 2
        amp = np.where(np.sqrt(r2) < cfg.nucleation_radius, cfg.nucleation_tau, 0.0)
        return amp[:, None] * shear_dir[None, :]

    return Prestress(sigma_n=cfg.sigma_n0, shear_vector=shear, nucleation_vector=nucleation)


def _friction(cfg: PaluConfig):
    return RateStateFastVelocityWeakening(
        a=cfg.rs_a, b=cfg.rs_b, L=cfg.rs_L, Vw=cfg.rs_Vw, fw=cfg.rs_fw
    )


def build_coupled(cfg: PaluConfig | None = None, backend="serial",
                  workers: int | None = None):
    """Fully coupled Palu model: returns ``(solver, fault)``.

    ``backend``/``workers`` select the execution backend (see
    :mod:`repro.exec`).
    """
    cfg = cfg or PaluConfig()
    bathy = palu_bathymetry(cfg)
    xs, ys, zs_earth = _grids(cfg)
    mesh = bathymetry_mesh(
        xs,
        ys,
        bathy,
        cfg.n_ocean_layers,
        zs_earth,
        cfg.earth_material,
        cfg.ocean_material,
        min_depth=0.5 * cfg.shelf_depth,
    )
    n = mesh.mark_fault(_fault_marker(cfg, bathy))
    if n == 0:
        raise RuntimeError("Palu fault marking failed")
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    fault = FaultSolver(_friction(cfg), _prestress(cfg))
    solver = CoupledSolver(mesh, order=cfg.order, fault=fault,
                           backend=backend, workers=workers)
    return solver, fault


def build_earthquake_only(cfg: PaluConfig | None = None, backend="serial",
                          workers: int | None = None):
    """Earth-only Palu model for one-way linking: ``(solver, fault, tracker)``.

    The free surface follows the bathymetry (no water layer), exactly the
    "earthquake model conducted without a water layer" of Sec. 1/6.2.
    """
    cfg = cfg or PaluConfig()
    bathy = palu_bathymetry(cfg)
    xs, ys, zs_earth = _grids(cfg)
    z_bot, z_top_nominal = zs_earth[0], zs_earth[-1]

    def warp(verts):
        v = verts.copy()
        b = bathy(v[:, 0], v[:, 1])
        frac = (v[:, 2] - z_bot) / (z_top_nominal - z_bot)
        v[:, 2] = z_bot + frac * (b - z_bot)
        return v

    mesh = box_mesh(xs, ys, zs_earth, [cfg.earth_material], warp=warp)
    n = mesh.mark_fault(_fault_marker(cfg, bathy))
    if n == 0:
        raise RuntimeError("Palu fault marking failed")

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.ABSORBING.value)
        tags[nrm[:, 2] > 0.3] = FaceKind.FREE_SURFACE.value
        return tags

    mesh.tag_boundary(tagger)
    fault = FaultSolver(_friction(cfg), _prestress(cfg))
    solver = CoupledSolver(mesh, order=cfg.order, fault=fault,
                           backend=backend, workers=workers)
    tracker = SurfaceDisplacementTracker(solver, upward_only=True)
    return solver, fault, tracker


def run_linked_tsunami(
    cfg: PaluConfig,
    tracker: SurfaceDisplacementTracker,
    snapshots,
    t_end: float,
    grid_dx: float = 150.0,
):
    """One-way-linked SWE run over the bay bathymetry (Fig. 5 lower row)."""
    bathy = palu_bathymetry(cfg)
    xs = np.arange(cfg.x_extent[0], cfg.x_extent[1] + grid_dx / 2, grid_dx)
    ys = np.arange(cfg.y_extent[0], cfg.y_extent[1] + grid_dx / 2, grid_dx)
    swe = ShallowWaterSolver(xs, ys, lambda X, Y: bathy(X, Y), boundary="outflow")
    times = np.array([t for t, _ in snapshots])
    grids = np.stack([tracker.snapshot_grid(xs, ys, uz) for _, uz in snapshots])
    b0 = bathy(*np.meshgrid(0.5 * (xs[:-1] + xs[1:]), 0.5 * (ys[:-1] + ys[1:]), indexing="ij"))
    swe.set_bed_motion(BedMotionInterpolator(b0, times, grids))
    swe.run(t_end)
    return swe
