"""Verification setups: analytic solutions for convergence studies (V1).

The paper verifies the coupled scheme against analytic solutions
("preliminary convergence analyses with respect to analytic solutions",
Sec. 6.1).  Provided here:

* periodic elastic / acoustic plane waves (exact eigenmode transport),
* a closed-box *coupled* elastic-acoustic standing mode whose frequency
  solves the exact two-layer dispersion relation — exercising the coupled
  interface flux, whose one-sided approximation would not converge
  (Sec. 4.2).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq

from ..core.materials import Material, acoustic, elastic
from ..core.solver import CoupledSolver
from ..mesh.generators import box_mesh, layered_ocean_mesh

__all__ = [
    "plane_wave",
    "periodic_box_solver",
    "l2_error",
    "coupled_mode_frequency",
    "CoupledModeSetup",
    "CoupledSHModeSetup",
]


def plane_wave(mat: Material, wave: str = "P", L: float = 1.0, direction: int = 0):
    """Exact plane-wave solution ``q(x, t)`` for a periodic box of size L.

    Returns ``(exact(x, t), wave_speed)``.
    """
    k = 2 * np.pi / L
    if wave == "P":
        c = mat.cp
        r = np.array([mat.lam + 2 * mat.mu, mat.lam, mat.lam, 0, 0, 0, -c, 0, 0])
    elif wave == "S":
        if mat.is_acoustic:
            raise ValueError("acoustic media carry no S waves")
        c = mat.cs
        r = np.array([0, 0, 0, mat.mu, 0, 0, 0, -c, 0])
    else:
        raise ValueError(f"unknown wave type {wave!r}")

    def exact(x, t):
        return r[None, :] * np.sin(k * (x[:, direction] - c * t))[:, None]

    return exact, c


def periodic_box_solver(mat: Material, n_cells: int, order: int, L: float = 1.0) -> CoupledSolver:
    xs = np.linspace(0, L, n_cells + 1)
    m = box_mesh(xs, xs, xs, [mat])
    for vec in np.eye(3):
        m.glue_periodic(vec * L)
    return CoupledSolver(m, order=order)


def l2_error(solver: CoupledSolver, exact, t: float) -> float:
    """Global L2 error of the solver state against ``exact(x, t)``."""
    ref = solver.op.ref
    mesh = solver.mesh
    pts = mesh.map_points(np.arange(mesh.n_elements), ref.vol_points)
    num = np.einsum("qb,ebn->eqn", ref.V, solver.Q)
    ex = exact(pts.reshape(-1, 3), t).reshape(num.shape)
    return float(np.sqrt(np.einsum("e,q,eqn->", mesh.det_jac, ref.vol_weights, (num - ex) ** 2)))


# ----------------------------------------------------------------------
def coupled_mode_frequency(h_e: float, h_o: float, earth: Material, ocean: Material) -> float:
    """Lowest 1D standing P mode of an elastic slab under an acoustic layer.

    Geometry: rigid wall at z = -h_e - h_o ... wait — we use: elastic slab
    on ``[-(h_e + h_o), -h_o]`` over a *wall* bottom, acoustic layer on
    ``[-h_o, 0]`` with a pressure-free top.  Vertical-propagation modes
    satisfy (u = vertical displacement):

    * elastic: ``u_e = A sin(k_e (z + h_e + h_o))`` (u = 0 at the wall),
    * acoustic: ``p = -K du_o/dz`` with ``p = 0`` at z = 0,
    * continuity of u and of normal traction at the interface,

    giving the transcendental equation (from ``Z_e cot(w h_e / c_e) =
    Z_o tan(w h_o / c_o)``):

    ``Z_o tan(w h_o / c_o) * tan(w h_e / c_e) = Z_e``,

    solved for the lowest root.
    """
    c_e, c_o = earth.cp, ocean.cp
    Z_e, Z_o = earth.Zp, ocean.Zp

    def f(w):
        return Z_o * np.tan(w * h_o / c_o) * np.tan(w * h_e / c_e) - Z_e

    # the lowest root lies below the first pole of either tangent
    w_max = 0.999 * min(np.pi / 2 / (h_o / c_o), np.pi / 2 / (h_e / c_e))
    lo = 1e-6 * w_max
    # f(lo) < 0 (both tangents ~ 0), f(w_max-) -> large
    return float(brentq(f, lo, w_max))


class CoupledModeSetup:
    """Closed-box coupled standing mode: builder + exact fields.

    Thin periodic column: wall at the bottom of the elastic slab, free
    (p = 0) surface at the ocean top, vertical 1D mode.
    """

    def __init__(self, earth=None, ocean=None, h_e: float = 2.0, h_o: float = 1.0, amp: float = 1e-3):
        self.earth = earth or elastic(2.5, 4.0, 2.0)
        self.ocean = ocean or acoustic(1.0, 1.5)
        self.h_e, self.h_o = h_e, h_o
        self.amp = amp
        self.omega = coupled_mode_frequency(h_e, h_o, self.earth, self.ocean)
        self.k_e = self.omega / self.earth.cp
        self.k_o = self.omega / self.ocean.cp
        # displacement amplitudes: u_e = A sin(k_e (z + h_e + h_o));
        # u_o = B sin(k_o z) + C cos(k_o z) with p(0) = 0 -> p ~ du/dz = 0
        # at z = 0 -> B cos(0) k_o ... p = -K du/dz; p(0)=0 => du/dz(0)=0
        # => u_o = D cos(k_o z)... but then u continuity at z=-h_o:
        self.A = amp
        z_i = -h_o
        u_i = self.A * np.sin(self.k_e * (z_i + h_e + h_o))
        self.D = u_i / np.cos(self.k_o * z_i)

    def exact(self, x: np.ndarray, t: float) -> np.ndarray:
        """Exact 9-variable state of the standing mode at time ``t``.

        Time convention: ``u(z, t) = u(z) cos(w t)`` so velocities vanish
        at t = 0 while stresses are extremal.
        """
        z = x[:, 2]
        w = self.omega
        out = np.zeros((len(x), 9))
        in_ocean = z > -self.h_o - 1e-12
        u_e = self.A * np.sin(self.k_e * (z + self.h_e + self.h_o))
        dudz_e = self.A * self.k_e * np.cos(self.k_e * (z + self.h_e + self.h_o))
        u_o = self.D * np.cos(self.k_o * z)
        dudz_o = -self.D * self.k_o * np.sin(self.k_o * z)
        # stresses: szz = (lam + 2 mu) du/dz (elastic), -p = K du/dz (ocean)
        lam_e, mu_e = self.earth.lam, self.earth.mu
        szz = np.where(
            in_ocean,
            self.ocean.lam * dudz_o,
            (lam_e + 2 * mu_e) * dudz_e,
        )
        sxx = np.where(in_ocean, self.ocean.lam * dudz_o, lam_e * dudz_e)
        vz = np.where(in_ocean, u_o, u_e) * (-w) * np.sin(w * t)
        out[:, 0] = sxx * np.cos(w * t)
        out[:, 1] = sxx * np.cos(w * t)
        out[:, 2] = szz * np.cos(w * t)
        out[:, 8] = vz
        return out

    def build_solver(self, n_z_per_layer: int, order: int, width: float = 1.0) -> CoupledSolver:
        from ..core.riemann import FaceKind

        xs = np.linspace(0, width, 2)
        zs_e = np.linspace(-(self.h_e + self.h_o), -self.h_o, n_z_per_layer * 2 + 1)
        zs_o = np.linspace(-self.h_o, 0.0, n_z_per_layer + 1)
        m = layered_ocean_mesh(xs, xs, zs_e, zs_o, self.earth, self.ocean)
        m.glue_periodic(np.array([width, 0, 0]))
        m.glue_periodic(np.array([0, width, 0]))

        def tagger(cent, nrm):
            tags = np.full(len(cent), FaceKind.WALL.value)
            tags[nrm[:, 2] > 0.99] = FaceKind.FREE_SURFACE.value
            return tags

        m.tag_boundary(tagger)
        s = CoupledSolver(m, order=order)
        s.set_initial_condition(lambda x: self.exact(x, 0.0))
        return s


class CoupledSHModeSetup:
    """SH standing mode in the elastic slab under a quiescent ocean.

    The exact solution has *shear traction at the elastic-acoustic
    interface* weakly forced to zero (the ocean cannot carry shear), while
    the ocean stays exactly at rest:

    ``u_y = A cos(k_s (z + h_e + h_o)) cos(w t)`` in the slab, 0 above,
    with ``k_s = pi / h_e`` (free-slip wall at the bottom: zero shear
    traction there and at the interface) and ``w = c_s k_s``.  The mode
    *slips* tangentially along the elastic-acoustic interface.

    This is the verification case that *requires* the coupled interface
    flux: a one-sided (welded) flux transmits shear into the ocean and does
    not converge to this solution (paper Sec. 4.2).
    """

    def __init__(self, earth=None, ocean=None, h_e: float = 2.0, h_o: float = 1.0, amp: float = 1e-3):
        self.earth = earth or elastic(2.5, 4.0, 2.0)
        self.ocean = ocean or acoustic(1.0, 1.5)
        self.h_e, self.h_o = h_e, h_o
        self.amp = amp
        self.k_s = np.pi / h_e
        self.omega = self.earth.cs * self.k_s

    def exact(self, x: np.ndarray, t: float) -> np.ndarray:
        z = x[:, 2]
        in_ocean = z > -self.h_o - 1e-12
        out = np.zeros((len(x), 9))
        phase_u = np.cos(self.omega * t)
        arg = self.k_s * (z + self.h_e + self.h_o)
        vy = -self.omega * self.amp * np.cos(arg) * np.sin(self.omega * t)
        syz = -self.earth.mu * self.amp * self.k_s * np.sin(arg) * phase_u
        out[:, 4] = np.where(in_ocean, 0.0, syz)
        out[:, 7] = np.where(in_ocean, 0.0, vy)
        return out

    def build_solver(self, n_z_per_layer: int, order: int, width: float = 1.0, flux_variant: str = "exact") -> CoupledSolver:
        from ..core.riemann import FaceKind

        xs = np.linspace(0, width, 2)
        zs_e = np.linspace(-(self.h_e + self.h_o), -self.h_o, n_z_per_layer * 2 + 1)
        zs_o = np.linspace(-self.h_o, 0.0, n_z_per_layer + 1)
        m = layered_ocean_mesh(xs, xs, zs_e, zs_o, self.earth, self.ocean)
        m.glue_periodic(np.array([width, 0, 0]))
        m.glue_periodic(np.array([0, width, 0]))

        def tagger(cent, nrm):
            tags = np.full(len(cent), FaceKind.WALL.value)
            tags[nrm[:, 2] > 0.99] = FaceKind.FREE_SURFACE.value
            return tags

        m.tag_boundary(tagger)
        s = CoupledSolver(m, order=order, flux_variant=flux_variant)
        s.set_initial_condition(lambda x: self.exact(x, 0.0))
        return s
