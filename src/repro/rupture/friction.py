"""Fault friction laws (paper Eq. 2).

Two laws are implemented, matching the paper's two applications:

* :class:`LinearSlipWeakening` — Andrews (1976); used in the Scenario-A
  megathrust benchmark (Sec. 6.1) because it is "computationally less
  demanding";
* :class:`RateStateFastVelocityWeakening` — the strongly velocity-weakening
  rate-and-state law (Dunham et al. flavor, as in SeisSol and the Palu
  source model of Ulrich et al. 2019) used for the Palu scenario
  (Sec. 6.2).  Solving its traction-balance needs a Newton iteration per
  fault quadrature point with a data-dependent iteration count — the
  dynamic-load property Sec. 5.3 blames for the load-balancing challenge.

The friction solve enforces, per quadrature point, the traction balance of
the fault Riemann problem:

    ``|tau_stick| - eta_s * V = tau_S(V, psi)``,

where ``eta_s = Zs- Zs+ / (Zs- + Zs+)`` is the radiation-damping impedance
and ``tau_stick`` the traction that would lock the interface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearSlipWeakening", "RateStateFastVelocityWeakening"]


@dataclass
class LinearSlipWeakening:
    """Linear slip-weakening friction.

    ``mu_f = mu_s - (mu_s - mu_d) * min(slip / d_c, 1)``.

    The state variable ``psi`` is the accumulated slip magnitude.
    Parameters may be scalars or per-point arrays (e.g. to strengthen the
    fault near the seafloor, as Scenario A does to stop the rupture).
    """

    mu_s: float | np.ndarray
    mu_d: float | np.ndarray
    d_c: float | np.ndarray
    cohesion: float | np.ndarray = 0.0

    def initial_state(self, n: int) -> np.ndarray:
        return np.zeros(n)

    def coefficient(self, psi: np.ndarray) -> np.ndarray:
        frac = np.minimum(psi / self.d_c, 1.0)
        return self.mu_s - (self.mu_s - self.mu_d) * frac

    def solve(self, tau_stick: np.ndarray, sigma_bar: np.ndarray, psi: np.ndarray, eta_s: np.ndarray):
        """Return (V, tau) magnitudes.

        For slip-weakening the strength does not depend on V, so the balance
        is closed-form: ``V = max(|tau_stick| - tau_S, 0) / eta_s``.
        """
        tau_strength = self.cohesion + self.coefficient(psi) * sigma_bar
        V = np.maximum(np.abs(tau_stick) - tau_strength, 0.0) / eta_s
        tau = np.minimum(np.abs(tau_stick), tau_strength)
        return V, tau

    def evolve_state(self, psi: np.ndarray, V: np.ndarray, dt) -> np.ndarray:
        """State = slip: d psi / dt = V."""
        return psi + V * dt


@dataclass
class RateStateFastVelocityWeakening:
    """Rate-and-state friction with fast (strong) velocity weakening.

    ``f(V, psi) = a * asinh( V / (2 V0) * exp(psi / a) )`` with the slip-law
    state evolution towards

    ``psi_ss(V) = a * ln( 2 V0 / V * sinh(f_ss(V) / a) )``,
    ``f_ss(V) = f_w + (f_lv(V) - f_w) / (1 + (V / Vw)^8)^(1/8)``,
    ``f_lv(V) = f0 - (b - a) * ln(V / V0)``.

    Parameters may be per-point arrays, which is how velocity-strengthening
    barriers at fault edges are expressed.
    """

    a: float | np.ndarray = 0.01
    b: float | np.ndarray = 0.014
    L: float | np.ndarray = 0.2
    f0: float = 0.6
    V0: float = 1e-6
    Vw: float | np.ndarray = 0.1
    fw: float | np.ndarray = 0.1
    Vini: float = 1e-16
    newton_tol: float = 1e-10
    newton_maxit: int = 50

    def initial_state(self, n: int) -> np.ndarray:
        """Steady-state psi at the (tiny) initial creep velocity."""
        return np.broadcast_to(self.psi_ss(np.full(n, self.Vini)), (n,)).copy()

    def initial_state_from_stress(self, tau0: np.ndarray, sigma_bar: np.ndarray) -> np.ndarray:
        """State consistent with creeping at ``Vini`` under the prestress.

        ``psi0 = a ln( (2 V0 / Vini) sinh( tau0 / (sigma_bar a) ) )`` — the
        standard initialization for strongly-velocity-weakening setups (the
        fault is exactly in frictional equilibrium with the background
        stress, so a stress asperity above it nucleates spontaneously).
        """
        ratio = tau0 / (np.maximum(sigma_bar, 1e-300) * self.a)
        log_sinh = np.where(
            ratio > 20.0, ratio - np.log(2.0), np.log(np.sinh(np.minimum(ratio, 20.0)) + 1e-300)
        )
        return self.a * (np.log(2.0 * self.V0 / self.Vini) + log_sinh)

    # -- law ingredients -------------------------------------------------
    def f(self, V: np.ndarray, psi: np.ndarray) -> np.ndarray:
        return self.a * np.arcsinh(np.maximum(V, 0.0) / (2 * self.V0) * np.exp(psi / self.a))

    def dfdV(self, V: np.ndarray, psi: np.ndarray) -> np.ndarray:
        e = np.exp(psi / self.a) / (2 * self.V0)
        x = np.maximum(V, 0.0) * e
        return self.a * e / np.sqrt(1.0 + x**2)

    def f_ss(self, V: np.ndarray) -> np.ndarray:
        V = np.maximum(V, 1e-30)
        flv = self.f0 - (self.b - self.a) * np.log(V / self.V0)
        return self.fw + (flv - self.fw) / (1.0 + (V / self.Vw) ** 8) ** 0.125

    def psi_ss(self, V: np.ndarray) -> np.ndarray:
        V = np.maximum(V, 1e-30)
        fss = self.f_ss(V)
        # a * ln(2 V0/V * sinh(fss/a)); sinh overflow-safe via logaddexp
        x = fss / self.a
        log_sinh = np.where(x > 20.0, x - np.log(2.0), np.log(np.sinh(np.minimum(x, 20.0)) + 1e-300))
        return self.a * (np.log(2.0 * self.V0 / V) + log_sinh)

    # -- solver ----------------------------------------------------------
    def solve(self, tau_stick: np.ndarray, sigma_bar: np.ndarray, psi: np.ndarray, eta_s: np.ndarray):
        """Newton solve of ``|tau_stick| - eta_s V - sigma_bar f(V, psi) = 0``.

        Returns ``(V, tau)``.  The iteration count of the last call is kept
        in :attr:`last_iterations` because the data-dependent Newton cost is
        exactly the dynamic-load imbalance studied in Sec. 5.3.
        """
        ts = np.abs(tau_stick)
        eta = np.broadcast_to(eta_s, ts.shape)
        sig = np.broadcast_to(sigma_bar, ts.shape)
        psi_b = np.broadcast_to(psi, ts.shape)

        # g(V) = ts - eta V - sigma f(V, psi) is strictly decreasing with
        # g(0) = ts >= 0, so the root is unique in [0, ts/eta].  Newton on a
        # linear V scale overshoots badly (f has enormous curvature near
        # V = 0), so iterate in u = ln(V), seeded by the large-V asymptote
        # f ~ psi + a ln(V / (2 V0)).
        Vmax = ts / eta
        with np.errstate(over="ignore"):
            seed = 2.0 * self.V0 * np.exp((ts / np.maximum(sig, 1e-300) - psi_b) / self.a)
        V = np.clip(np.where(sig > 0, seed, Vmax), 1e-25, np.maximum(Vmax, 1e-25))
        u = np.log(np.maximum(V, 1e-300))

        it_used = 0
        for it in range(self.newton_maxit):
            V = np.exp(u)
            g = ts - eta * V - sig * self.f(V, psi_b)
            dgdu = -(eta + sig * self.dfdV(V, psi_b)) * V
            du = np.where(np.abs(dgdu) > 0, g / dgdu, 0.0)
            du = np.clip(du, -2.0, 2.0)  # damping
            u = u - du
            it_used = it + 1
            if np.max(np.abs(du)) < self.newton_tol:
                break
        V = np.exp(u)

        # bisection fallback for any stragglers (ill-conditioned points)
        bad = np.abs(ts - eta * V - sig * self.f(V, psi_b)) > 1e-6 * np.maximum(ts, 1.0)
        if np.any(bad):
            lo = np.full_like(ts, -80.0)  # ln-space bracket [e^-80, Vmax]
            hi = np.log(np.maximum(Vmax, 1e-30))
            for _ in range(80):
                mid = 0.5 * (lo + hi)
                gm = ts - eta * np.exp(mid) - sig * self.f(np.exp(mid), psi_b)
                lo = np.where(gm > 0, mid, lo)
                hi = np.where(gm > 0, hi, mid)
            V = np.where(bad, np.exp(0.5 * (lo + hi)), V)
            it_used += 80

        tau = np.maximum(ts - eta * V, 0.0)
        self.last_iterations = it_used
        return V, tau

    def evolve_state(self, psi: np.ndarray, V: np.ndarray, dt) -> np.ndarray:
        """Exponential (exact for frozen V) slip-law update:

        ``psi -> psi_ss + (psi - psi_ss) exp(-V dt / L)``.
        """
        Vc = np.maximum(V, 1e-30)
        pss = self.psi_ss(Vc)
        return pss + (psi - pss) * np.exp(-Vc * dt / self.L)
