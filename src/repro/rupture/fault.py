"""Dynamic-rupture fault solver: the non-linear interface condition (Eq. 2).

Fault faces are interior faces excluded from the generic Godunov flux; at
every face quadrature point the fault Riemann problem is solved at each
*time* quadrature node of the ADER window (the traces come from the
space-time Taylor predictors of the two adjacent elements, exactly as in
SeisSol/Pelties et al. 2014):

1. rotate both traces into the fault frame (normal + two tangents),
2. compute the "stick" (welded) traction and normal middle state,
3. add the background (pre-)stress, evaluate the friction law and solve the
   traction balance for slip rate ``V`` and fault traction,
4. build per-side middle states (shared tractions and normal velocity,
   side-specific tangential velocities) and accumulate the time-integrated
   flux with Gauss weights,
5. evolve slip and the state variable ``psi`` between time nodes.

Everything is vectorized over (fault faces x quadrature points); the only
sequential loop is over the handful of time nodes.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..core.ader import taylor_evaluate
from ..core.basis import face_points_to_tet
from ..core.materials import jacobians
from ..core.quadrature import gauss_legendre_01
from ..core.rotation import batched_state_rotation
from ..obs.telemetry import get_telemetry

__all__ = ["Prestress", "FaultSolver"]

_TEL = get_telemetry()


@dataclass
class Prestress:
    """Background traction on the fault, in the fault frame (n, s, t).

    ``sigma_n`` is the normal traction (negative in compression), ``tau_s``
    and ``tau_t`` the shear tractions along the two tangent directions.
    Each may be a scalar or a callable ``f(points) -> array`` evaluated at
    the fault quadrature points (``points`` has shape ``(npts, 3)``).
    """

    sigma_n: float | Callable = -120e6
    tau_s: float | Callable = 70e6
    tau_t: float | Callable = 0.0
    #: extra shear added on top of the background (the nucleation asperity).
    #: Kept separate so that rate-and-state initialization equilibrates the
    #: *background* stress only — the asperity then overstresses the fault.
    nucleation_s: float | Callable = 0.0
    nucleation_t: float | Callable = 0.0
    #: alternatively, give the shear traction as a *global 3D vector field*
    #: ``f(points) -> (npts, 3)``; it is projected onto the solver's fault
    #: tangents at bind time (overrides tau_s/tau_t when set).  Convenient
    #: for dipping faults where "up-dip" is hard to express frame-locally.
    shear_vector: Callable | None = None
    nucleation_vector: Callable | None = None

    def evaluate(self, points: np.ndarray):
        """Background tractions ``(sigma_n, tau_s, tau_t)`` at ``points``."""
        flat = points.reshape(-1, 3)

        def ev(v):
            return np.broadcast_to(v(flat) if callable(v) else v, (len(flat),)).astype(float)

        shape = points.shape[:-1]
        return (
            ev(self.sigma_n).reshape(shape),
            ev(self.tau_s).reshape(shape),
            ev(self.tau_t).reshape(shape),
        )

    def evaluate_nucleation(self, points: np.ndarray):
        flat = points.reshape(-1, 3)

        def ev(v):
            return np.broadcast_to(v(flat) if callable(v) else v, (len(flat),)).astype(float)

        shape = points.shape[:-1]
        return ev(self.nucleation_s).reshape(shape), ev(self.nucleation_t).reshape(shape)


class FaultSolver:
    """Owner of all dynamic-rupture state and the fault flux kernel.

    Parameters
    ----------
    friction:
        A friction law from :mod:`repro.rupture.friction`.
    prestress:
        Background fault tractions (the nucleation asperity lives here).
    n_time_nodes:
        Gauss-Legendre nodes per ADER window (default: order + 1).
    rupture_threshold:
        Slip-rate threshold [m/s] defining the rupture front arrival time.
    """

    def __init__(
        self,
        friction,
        prestress: Prestress,
        n_time_nodes: int | None = None,
        rupture_threshold: float = 1e-3,
    ):
        self.friction = friction
        self.prestress = prestress
        self.n_time_nodes = n_time_nodes
        self.rupture_threshold = rupture_threshold
        self._bound = False

    # ------------------------------------------------------------------
    def bind(self, op) -> None:
        """Collect fault faces from the operator's mesh and precompute
        rotations, impedances and prestress."""
        mesh = op.mesh
        self.op = op
        ids = np.flatnonzero(mesh.interior.is_fault)
        if ids.size == 0:
            raise ValueError("mesh has no fault faces; call mesh.mark_fault first")
        itf = mesh.interior
        self.face_ids = ids
        self.em = itf.minus_elem[ids]
        self.ep = itf.plus_elem[ids]
        self.minus_face = itf.minus_face[ids]
        self.plus_face = itf.plus_face[ids]
        self.perm = itf.perm[ids]
        self.normal = itf.normal[ids]
        self.area = itf.area[ids]

        if self.n_time_nodes is None:
            self.n_time_nodes = op.order + 1
        self.t_nodes, self.t_weights = gauss_legendre_01(self.n_time_nodes)

        mats = mesh.materials
        mid_m = mesh.material_ids[self.em]
        mid_p = mesh.material_ids[self.ep]
        for mid in np.unique(np.concatenate([mid_m, mid_p])):
            if mats[int(mid)].is_acoustic:
                raise ValueError("dynamic rupture requires elastic material on both sides")
        self.Zs_m = np.array([mats[m].Zs for m in mid_m])
        self.Zs_p = np.array([mats[m].Zs for m in mid_p])
        self.Zp_m = np.array([mats[m].Zp for m in mid_m])
        self.Zp_p = np.array([mats[m].Zp for m in mid_p])
        self.eta_s = self.Zs_m * self.Zs_p / (self.Zs_m + self.Zs_p)

        # rotations: one shared (minus-normal) fault frame per face
        self.T, self.Tinv = batched_state_rotation(self.normal)
        # per-side flux prefactors: minus: +T A_loc^-, plus: -T A_loc^+
        Am = np.stack([jacobians(mats[int(m)])[0] for m in mid_m])
        Ap = np.stack([jacobians(mats[int(m)])[0] for m in mid_p])
        self.TA_m = np.einsum("fij,fjk->fik", self.T, Am)
        self.TA_p = -np.einsum("fij,fjk->fik", self.T, Ap)

        # physical quadrature points (minus-side parametrization)
        nq = op.ref.n_face_points
        nf = len(ids)
        self.points = np.empty((nf, nq, 3))
        for f in range(4):
            sel = self.minus_face == f
            if np.any(sel):
                ref_pts = face_points_to_tet(f, op.ref.face_points)
                self.points[sel] = mesh.map_points(self.em[sel], ref_pts)

        from ..core.rotation import batched_normal_basis

        self.frame = batched_normal_basis(self.normal)  # columns (n, s, t)

        s0, ts0, tt0 = self.prestress.evaluate(self.points)
        nuc_s, nuc_t = self.prestress.evaluate_nucleation(self.points)
        if self.prestress.shear_vector is not None:
            vec = np.asarray(self.prestress.shear_vector(self.points.reshape(-1, 3)))
            vec = vec.reshape(nf, nq, 3)
            ts0 = np.einsum("fqd,fd->fq", vec, self.frame[:, :, 1])
            tt0 = np.einsum("fqd,fd->fq", vec, self.frame[:, :, 2])
        if self.prestress.nucleation_vector is not None:
            vec = np.asarray(self.prestress.nucleation_vector(self.points.reshape(-1, 3)))
            vec = vec.reshape(nf, nq, 3)
            nuc_s = np.einsum("fqd,fd->fq", vec, self.frame[:, :, 1])
            nuc_t = np.einsum("fqd,fd->fq", vec, self.frame[:, :, 2])
        self.sigma_n0 = s0
        self.tau_s0 = ts0 + nuc_s
        self.tau_t0 = tt0 + nuc_t

        # dynamic state per quadrature point; rate-and-state laws start in
        # frictional equilibrium with the *background* stress (the
        # nucleation overstress is excluded so it actually nucleates)
        if hasattr(self.friction, "initial_state_from_stress"):
            tau0 = np.sqrt(ts0**2 + tt0**2)
            sigma_bar0 = np.maximum(-s0, 0.0)
            self.psi = self.friction.initial_state_from_stress(tau0, sigma_bar0)
        else:
            self.psi = self.friction.initial_state(nf * nq).reshape(nf, nq)
        self.slip = np.zeros((nf, nq))
        self.slip_s = np.zeros((nf, nq))
        self.slip_t = np.zeros((nf, nq))
        self.slip_rate = np.zeros((nf, nq))
        self.peak_slip_rate = np.zeros((nf, nq))
        self.rupture_time = np.full((nf, nq), np.inf)
        self.newton_iterations: list[int] = []
        self._bound = True

    def __len__(self) -> int:
        return len(self.face_ids)

    # ------------------------------------------------------------------
    def _traces(self, derivs, idx, tau):
        """Fault-frame traces of both sides at relative time ``tau``.

        Returns ``(w_minus, w_plus)`` with shape ``(len(idx), nq, 9)``.
        """
        ref = self.op.ref
        em, ep = self.em[idx], self.ep[idx]
        q_m = taylor_evaluate(derivs[em], tau)
        q_p = taylor_evaluate(derivs[ep], tau)
        nq = ref.n_face_points
        tm = np.empty((len(em), nq, 9))
        tp = np.empty((len(em), nq, 9))
        mf, pf, pm = self.minus_face[idx], self.plus_face[idx], self.perm[idx]
        for f in range(4):
            fsel = mf == f
            if np.any(fsel):
                tm[fsel] = ref.E_minus[f] @ q_m[fsel]
        cls = pf * 6 + pm
        for c in np.unique(cls):
            csel = cls == c
            tp[csel] = ref.E_plus[c // 6, c % 6] @ q_p[csel]
        Tinv = self.Tinv[idx]
        wm = np.einsum("fij,fqj->fqi", Tinv, tm, optimize=True)
        wp = np.einsum("fij,fqj->fqi", Tinv, tp, optimize=True)
        return wm, wp

    def step(self, derivs, dt: float, out: np.ndarray, active=None, t0: float = 0.0) -> None:
        """Solve the fault over one ADER window; add time-integrated fluxes.

        ``t0`` is the absolute start time of the window (for rupture-front
        arrival bookkeeping); ``active`` restricts to elements of the
        stepping LTS cluster (fault faces always have both sides in one
        cluster).
        """
        if not self._bound:
            raise RuntimeError("FaultSolver.step called before bind()")
        with _TEL.phase("fault/friction"):
            self._step(derivs, dt, out, active, t0)

    def _step(self, derivs, dt, out, active=None, t0: float = 0.0) -> None:
        if active is None:
            idx = np.arange(len(self.face_ids))
        else:
            idx = np.flatnonzero(active[self.em])
            if idx.size == 0:
                return

        Zs_m = self.Zs_m[idx][:, None]
        Zs_p = self.Zs_p[idx][:, None]
        Zp_m = self.Zp_m[idx][:, None]
        Zp_p = self.Zp_p[idx][:, None]
        eta_s = self.eta_s[idx][:, None]
        s_n0 = self.sigma_n0[idx]
        t_s0 = self.tau_s0[idx]
        t_t0 = self.tau_t0[idx]

        psi = self.psi[idx]
        slip = self.slip[idx]
        slip_s = self.slip_s[idx]
        slip_t = self.slip_t[idx]
        peak = self.peak_slip_rate[idx]
        rupt = self.rupture_time[idx]

        nf = len(idx)
        nq = self.op.ref.n_face_points
        Iwb_m = np.zeros((nf, nq, 9))
        Iwb_p = np.zeros((nf, nq, 9))

        t_prev = 0.0
        V_prev = None
        for tau, w in zip(self.t_nodes * dt, self.t_weights * dt):
            if V_prev is not None:
                psi = self.friction.evolve_state(psi, V_prev, tau - t_prev)
            wm, wp = self._traces(derivs, idx, tau)

            dZp = Zp_m + Zp_p
            s_n = (
                wm[:, :, 0] * Zp_p + wp[:, :, 0] * Zp_m
                + Zp_m * Zp_p * (wp[:, :, 6] - wm[:, :, 6])
            ) / dZp
            v_n = (Zp_m * wm[:, :, 6] + Zp_p * wp[:, :, 6] + (wp[:, :, 0] - wm[:, :, 0])) / dZp
            dZs = Zs_m + Zs_p
            th_s = (
                wm[:, :, 3] * Zs_p + wp[:, :, 3] * Zs_m
                + Zs_m * Zs_p * (wp[:, :, 7] - wm[:, :, 7])
            ) / dZs
            th_t = (
                wm[:, :, 5] * Zs_p + wp[:, :, 5] * Zs_m
                + Zs_m * Zs_p * (wp[:, :, 8] - wm[:, :, 8])
            ) / dZs
            stick_s = th_s + t_s0
            stick_t = th_t + t_t0
            stick_mag = np.sqrt(stick_s**2 + stick_t**2)
            sigma_bar = np.maximum(-(s_n + s_n0), 0.0)

            V, tau_mag = self.friction.solve(stick_mag, sigma_bar, psi, eta_s)
            if hasattr(self.friction, "last_iterations"):
                self.newton_iterations.append(self.friction.last_iterations)

            safe = np.maximum(stick_mag, 1e-300)
            dir_s = stick_s / safe
            dir_t = stick_t / safe
            tp_s = tau_mag * dir_s - t_s0  # perturbation traction
            tp_t = tau_mag * dir_t - t_t0

            for arr, wside, Zs, sgn in ((Iwb_m, wm, Zs_m, +1.0), (Iwb_p, wp, Zs_p, -1.0)):
                arr[:, :, 0] += w * s_n
                arr[:, :, 3] += w * tp_s
                arr[:, :, 5] += w * tp_t
                arr[:, :, 6] += w * v_n
                arr[:, :, 7] += w * (wside[:, :, 7] + sgn * (tp_s - wside[:, :, 3]) / Zs)
                arr[:, :, 8] += w * (wside[:, :, 8] + sgn * (tp_t - wside[:, :, 5]) / Zs)

            slip = slip + w * V
            slip_s = slip_s + w * V * dir_s
            slip_t = slip_t + w * V * dir_t
            peak = np.maximum(peak, V)
            newly = (V > self.rupture_threshold) & ~np.isfinite(rupt)
            rupt = np.where(newly, t0 + tau, rupt)
            V_prev = V
            t_prev = tau

        psi = self.friction.evolve_state(psi, V_prev, dt - t_prev)

        self.psi[idx] = psi
        self.slip[idx] = slip
        self.slip_s[idx] = slip_s
        self.slip_t[idx] = slip_t
        self.peak_slip_rate[idx] = peak
        self.rupture_time[idx] = rupt
        self.slip_rate[idx] = V_prev

        flux_m = np.einsum("fij,fqj->fqi", self.TA_m[idx], Iwb_m, optimize=True)
        flux_p = np.einsum("fij,fqj->fqi", self.TA_p[idx], Iwb_p, optimize=True)
        self.op.project_face_flux(
            self.em[idx], self.minus_face[idx], self.area[idx], flux_m, out
        )
        pf, pm = self.plus_face[idx], self.perm[idx]
        cls = pf * 6 + pm
        ep = self.ep[idx]
        area = self.area[idx]
        for c in np.unique(cls):
            csel = cls == c
            self.op.project_face_flux(
                ep[csel], None, area[csel], flux_p[csel], out,
                plus_side=(int(c) // 6, int(c) % 6),
            )

    # ------------------------------------------------------------------
    #: the arrays that evolve during a run (everything else is set by bind)
    STATE_FIELDS = (
        "psi",
        "slip",
        "slip_s",
        "slip_t",
        "slip_rate",
        "peak_slip_rate",
        "rupture_time",
    )

    def state_dict(self) -> dict:
        """Time-marching state for checkpointing (:mod:`repro.io.checkpoint`)."""
        if not self._bound:
            raise RuntimeError("FaultSolver.state_dict called before bind()")
        return {name: getattr(self, name).copy() for name in self.STATE_FIELDS}

    def load_state(self, state: dict) -> None:
        if not self._bound:
            raise RuntimeError("FaultSolver.load_state called before bind()")
        staged = {}
        for name in self.STATE_FIELDS:
            arr = np.asarray(state[name])
            cur = getattr(self, name)
            if arr.shape != cur.shape:
                raise ValueError(
                    f"fault state {name!r} has shape {arr.shape}, expected "
                    f"{cur.shape}"
                )
            staged[name] = arr.astype(cur.dtype, copy=True)
        for name, arr in staged.items():
            setattr(self, name, arr)
        self.newton_iterations = []

    # ------------------------------------------------------------------
    def moment(self) -> float:
        """Scalar seismic moment ``M0 = mu * integral(slip) dA``."""
        mats = self.op.mesh.materials
        mu = np.array([mats[m].mu for m in self.op.mesh.material_ids[self.em]])
        w = self.op.ref.face_weights
        mean_slip = (self.slip * w).sum(axis=1) / w.sum()
        return float(np.sum(mu * mean_slip * self.area))

    def moment_magnitude(self) -> float:
        """Moment magnitude ``Mw = 2/3 (log10 M0 - 9.1)``."""
        m0 = max(self.moment(), 1e-300)
        return 2.0 / 3.0 * (np.log10(m0) - 9.1)

    def ruptured_fraction(self) -> float:
        """Fraction of fault quadrature points that have ruptured."""
        return float(np.isfinite(self.rupture_time).mean())
