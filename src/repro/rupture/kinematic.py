"""Kinematic finite-fault sources (the classical alternative to dynamic
rupture).

The paper contrasts its physics-based *dynamic* rupture with the kinematic
sources used by earlier coupled models ("utilizing 3D kinematic earthquake
sources", Maeda et al., Sec. 2).  This module provides that alternative: a
rectangular fault discretized into subfault point sources, each emitting a
double-couple moment-rate with a prescribed slip-rate function, rupture
front delay and rise time (a Haskell-type source).

Each subfault becomes a :class:`~repro.core.solver.PointSource` with the
moment tensor of shear slip on the given plane:

    ``M = mu * A * s * (d n^T + n d^T)``

(``n`` fault normal, ``d`` slip direction, ``A`` subfault area, ``s`` slip).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solver import PointSource

__all__ = ["smoothed_ramp_rate", "KinematicFault"]


def smoothed_ramp_rate(rise_time: float):
    """Normalized slip-rate function: smooth ramp over ``rise_time``.

    ``int s(t) dt = 1`` with ``s(t) = (1 - cos(2 pi t / T)) / T`` on [0, T]
    — the classic smoothed Haskell ramp.
    """
    if rise_time <= 0:
        raise ValueError("rise time must be positive")

    def rate(t):
        t = np.asarray(t, dtype=float)
        inside = (t >= 0) & (t <= rise_time)
        out = np.where(inside, (1.0 - np.cos(2.0 * np.pi * t / rise_time)) / rise_time, 0.0)
        return out if out.ndim else float(out)

    return rate


@dataclass
class KinematicFault:
    """A Haskell-type rectangular kinematic rupture.

    Parameters
    ----------
    center:
        Fault-plane center [m].
    strike_dir, dip_dir:
        Orthonormal in-plane directions (along strike / up dip).
    length, width:
        Fault extent along the two directions [m].
    slip:
        Final slip [m] (uniform, in direction ``rake_dir``).
    rake_dir:
        Unit slip direction within the plane (defaults to ``strike_dir``).
    rupture_velocity:
        Rupture-front speed [m/s], radiating from ``hypocenter`` (defaults
        to the fault center).
    rise_time:
        Local slip duration [s].
    n_along, n_down:
        Subfault grid.
    """

    center: np.ndarray
    strike_dir: np.ndarray
    dip_dir: np.ndarray
    length: float
    width: float
    slip: float
    rupture_velocity: float
    rise_time: float
    rake_dir: np.ndarray | None = None
    hypocenter: np.ndarray | None = None
    n_along: int = 8
    n_down: int = 4

    def __post_init__(self):
        self.center = np.asarray(self.center, dtype=float)
        self.strike_dir = np.asarray(self.strike_dir, dtype=float)
        self.strike_dir /= np.linalg.norm(self.strike_dir)
        self.dip_dir = np.asarray(self.dip_dir, dtype=float)
        self.dip_dir /= np.linalg.norm(self.dip_dir)
        if abs(self.strike_dir @ self.dip_dir) > 1e-9:
            raise ValueError("strike and dip directions must be orthogonal")
        self.normal = np.cross(self.strike_dir, self.dip_dir)
        if self.rake_dir is None:
            self.rake_dir = self.strike_dir.copy()
        else:
            self.rake_dir = np.asarray(self.rake_dir, dtype=float)
            self.rake_dir /= np.linalg.norm(self.rake_dir)
            if abs(self.rake_dir @ self.normal) > 1e-9:
                raise ValueError("slip (rake) direction must lie in the fault plane")
        if self.hypocenter is None:
            self.hypocenter = self.center.copy()
        else:
            self.hypocenter = np.asarray(self.hypocenter, dtype=float)
        if self.rupture_velocity <= 0:
            raise ValueError("rupture velocity must be positive")

    # ------------------------------------------------------------------
    def subfaults(self):
        """Yield ``(position, area, delay)`` of every subfault."""
        du = self.length / self.n_along
        dv = self.width / self.n_down
        area = du * dv
        for i in range(self.n_along):
            for j in range(self.n_down):
                u = (i + 0.5 - self.n_along / 2) * du
                v = (j + 0.5 - self.n_down / 2) * dv
                pos = self.center + u * self.strike_dir + v * self.dip_dir
                delay = np.linalg.norm(pos - self.hypocenter) / self.rupture_velocity
                yield pos, area, delay

    def moment_tensor(self, mu: float, area: float) -> np.ndarray:
        """Voigt moment tensor of unit slip on this plane."""
        n, d = self.normal, self.rake_dir
        M = mu * area * self.slip * (np.outer(n, d) + np.outer(d, n))
        return np.array([M[0, 0], M[1, 1], M[2, 2], M[0, 1], M[1, 2], M[0, 2]])

    def moment(self, mu: float) -> float:
        """Total scalar seismic moment ``mu A s``."""
        return mu * self.length * self.width * self.slip

    def moment_magnitude(self, mu: float) -> float:
        return 2.0 / 3.0 * (np.log10(max(self.moment(mu), 1e-300)) - 9.1)

    # ------------------------------------------------------------------
    def attach(self, solver) -> list[PointSource]:
        """Create and register the subfault point sources on ``solver``."""
        mu = None
        sources = []
        base_rate = smoothed_ramp_rate(self.rise_time)
        for pos, area, delay in self.subfaults():
            elem = solver.mesh.locate(pos[None])[0]
            if elem < 0:
                raise ValueError(f"subfault at {pos} lies outside the mesh")
            mu = solver.mesh.element_material(int(elem)).mu
            if mu == 0.0:
                raise ValueError("kinematic fault subfault landed in the ocean")
            mvec = self.moment_tensor(mu, area)

            def stf(t, d=delay):
                return base_rate(t - d)

            src = PointSource(pos, stf, moment=mvec)
            solver.add_source(src)
            sources.append(src)
        return sources
