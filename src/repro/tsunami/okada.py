"""Okada (1985) surface displacements of a rectangular dislocation.

The classical half-space solution used by standard one-way-linked tsunami
workflows (paper Sec. 2: "the seafloor uplift is commonly simplified by
using analytical solutions ... within a homogeneous elastic half-space
(Okada)").  Only the free-surface displacement field is implemented (that
is what initializes a tsunami); strike-slip and dip-slip components are
supported, composed by Chinnery's four-corner substitution.

Conventions (Okada 1985, Fig. 1): the fault is a rectangle of length ``L``
along strike (x-axis) and width ``W`` up-dip, dipping ``delta`` from
horizontal; ``depth`` is the depth of the *bottom* edge reference origin.
``slip_strike > 0`` is left-lateral, ``slip_dip > 0`` is reverse (thrust).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OkadaFault", "okada_displacement"]

_EPS = 1e-12


def _chinnery(f, x, p, L, W, const):
    return f(x, p, const) - f(x, p - W, const) - f(x - L, p, const) + f(x - L, p - W, const)


def _safe_atan(num, den):
    """Principal-value arctan(num / den) (NOT atan2 — the Chinnery
    differences require the principal branch, as in Okada's original
    checkpoint tables)."""
    good = np.abs(den) >= _EPS
    out = np.where(good, np.arctan(num / np.where(good, den, 1.0)), 0.5 * np.pi * np.sign(num))
    return np.where(np.abs(num) < _EPS, 0.0, out)


def _I5(xi, eta, q, delta, R, d_b, mu_bar):
    X = np.sqrt(xi**2 + q**2)
    cd, sd = np.cos(delta), np.sin(delta)
    if abs(cd) < 1e-6:
        return -mu_bar * xi * sd / (R + d_b)
    num = eta * (X + q * cd) + X * (R + X) * sd
    den = xi * (R + X) * cd
    return mu_bar * 2.0 / cd * _safe_atan(num, den)


def _I4(xi, eta, q, delta, R, d_b, mu_bar):
    cd, sd = np.cos(delta), np.sin(delta)
    if abs(cd) < 1e-6:
        return -mu_bar * q / (R + d_b)
    return mu_bar / cd * (np.log(R + d_b) - sd * np.log(R + eta))


def _I3(xi, eta, q, delta, R, d_b, mu_bar):
    cd, sd = np.cos(delta), np.sin(delta)
    y_b = eta * cd + q * sd
    if abs(cd) < 1e-6:
        return mu_bar / 2.0 * (eta / (R + d_b) + y_b * q / (R + d_b) ** 2 - np.log(R + eta))
    return (
        mu_bar * (y_b / (cd * (R + d_b)) - np.log(R + eta))
        + sd / cd * _I4(xi, eta, q, delta, R, d_b, mu_bar)
    )


def _I2(xi, eta, q, delta, R, d_b, mu_bar):
    return mu_bar * (-np.log(R + eta)) - _I3(xi, eta, q, delta, R, d_b, mu_bar)


def _I1(xi, eta, q, delta, R, d_b, mu_bar):
    cd, sd = np.cos(delta), np.sin(delta)
    if abs(cd) < 1e-6:
        return -mu_bar / 2.0 * xi * q / (R + d_b) ** 2
    return (
        mu_bar * (-xi / (cd * (R + d_b)))
        - sd / cd * _I5(xi, eta, q, delta, R, d_b, mu_bar)
    )


def _strike_slip(x, p, const):
    q, delta, mu_bar = const
    xi, eta = x, p
    R = np.sqrt(xi**2 + eta**2 + q**2)
    d_b = eta * np.sin(delta) - q * np.cos(delta)
    y_b = eta * np.cos(delta) + q * np.sin(delta)
    Reta = R + eta
    with np.errstate(divide="ignore", invalid="ignore"):
        ux = xi * q / (R * Reta) + _safe_atan(xi * eta, q * R) + _I1(
            xi, eta, q, delta, R, d_b, mu_bar
        ) * np.sin(delta)
        uy = y_b * q / (R * Reta) + q * np.cos(delta) / Reta + _I2(
            xi, eta, q, delta, R, d_b, mu_bar
        ) * np.sin(delta)
        uz = d_b * q / (R * Reta) + q * np.sin(delta) / Reta + _I4(
            xi, eta, q, delta, R, d_b, mu_bar
        ) * np.sin(delta)
    return np.stack([ux, uy, uz])


def _dip_slip(x, p, const):
    q, delta, mu_bar = const
    xi, eta = x, p
    R = np.sqrt(xi**2 + eta**2 + q**2)
    d_b = eta * np.sin(delta) - q * np.cos(delta)
    y_b = eta * np.cos(delta) + q * np.sin(delta)
    sd, cd = np.sin(delta), np.cos(delta)
    with np.errstate(divide="ignore", invalid="ignore"):
        ux = q / R - _I3(xi, eta, q, delta, R, d_b, mu_bar) * sd * cd
        uy = y_b * q / (R * (R + xi)) + cd * _safe_atan(xi * eta, q * R) - _I1(
            xi, eta, q, delta, R, d_b, mu_bar
        ) * sd * cd
        uz = d_b * q / (R * (R + xi)) + sd * _safe_atan(xi * eta, q * R) - _I5(
            xi, eta, q, delta, R, d_b, mu_bar
        ) * sd * cd
    return np.stack([ux, uy, uz])


@dataclass
class OkadaFault:
    """A rectangular dislocation source.

    Parameters
    ----------
    length, width:
        Along-strike length and down-dip width [m].
    depth:
        Depth of the fault *top* edge [m, positive down].
    dip:
        Dip angle [degrees].
    strike:
        Strike angle [degrees, clockwise from the +y (north) axis].
    slip_strike, slip_dip:
        Slip components [m].
    x0, y0:
        Horizontal position of the center of the fault's top edge.
    poisson:
        Poisson ratio (mu_bar = mu / (lambda + mu) = 1 - 2 nu over 2 - 2 nu).
    """

    length: float
    width: float
    depth: float
    dip: float
    strike: float = 0.0
    slip_strike: float = 0.0
    slip_dip: float = 0.0
    x0: float = 0.0
    y0: float = 0.0
    poisson: float = 0.25

    def displacement(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return okada_displacement(self, x, y)


def okada_displacement(fault: OkadaFault, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Surface displacement ``(3, ...)`` (east, north, up in fault frame
    rotated by strike) at points ``(x, y)``.

    ``x, y`` are absolute coordinates; broadcasting shapes are preserved.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    delta = np.deg2rad(fault.dip)
    mu_bar = (1.0 - 2.0 * fault.poisson) / (2.0 * (1.0 - fault.poisson))

    # rotate observation points into the fault-aligned frame: x' along strike
    phi = np.deg2rad(90.0 - fault.strike)  # strike measured from +y
    dx = x - fault.x0
    dy = y - fault.y0
    xf = dx * np.cos(phi) + dy * np.sin(phi)
    yf = -dx * np.sin(phi) + dy * np.cos(phi)

    # Okada origin: bottom-left corner of the fault plane
    d_bottom = fault.depth + fault.width * np.sin(delta)
    xr = xf + fault.length / 2.0
    yr = yf + fault.width * np.cos(delta)
    p = yr * np.cos(delta) + d_bottom * np.sin(delta)
    q = yr * np.sin(delta) - d_bottom * np.cos(delta)

    u = np.zeros((3,) + x.shape)
    if fault.slip_strike != 0.0:
        const = (q, delta, mu_bar)
        u += (
            -fault.slip_strike
            / (2.0 * np.pi)
            * _chinnery(_strike_slip, xr, p, fault.length, fault.width, const)
        )
    if fault.slip_dip != 0.0:
        const = (q, delta, mu_bar)
        u += (
            -fault.slip_dip
            / (2.0 * np.pi)
            * _chinnery(_dip_slip, xr, p, fault.length, fault.width, const)
        )

    # rotate horizontal components back to absolute coordinates
    ux = u[0] * np.cos(phi) - u[1] * np.sin(phi)
    uy = u[0] * np.sin(phi) + u[1] * np.cos(phi)
    return np.stack([ux, uy, u[2]])
