"""Nonlinear shallow-water solver (the one-way-linking baseline).

This is the substitute for sam(oa)^2-flash used in the paper's Sec. 6.1/6.2
comparisons: a hydrostatic nonlinear shallow-water model on a uniform
Cartesian grid, driven by a (possibly time-dependent) bed elevation.

Discretization: finite-volume with Rusanov (local Lax-Friedrichs) fluxes,
hydrostatic reconstruction (Audusse et al. 2004) for well-balancedness over
arbitrary bathymetry, a simple thin-layer wetting/drying treatment, and
Heun (RK2) time stepping — matching the baseline's "second-order
Runge-Kutta" time integration.  The difference from the paper's baseline
(FV instead of DG, structured instead of dynamically adaptive) is recorded
in DESIGN.md; it does not affect the role the model plays: a hydrostatic,
incompressible benchmark for the fully coupled solver.

The tsunami is sourced through the *bed motion*: the momentum equation
feels ``-g h grad(b)``, so a time-dependent uplift of ``b`` pushes the sea
surface up self-consistently (volume is conserved exactly).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["ShallowWaterSolver"]


class ShallowWaterSolver:
    """2D nonlinear shallow-water equations over evolving bathymetry.

    Parameters
    ----------
    xs, ys:
        Cell-edge coordinates (uniform spacing required).
    bed:
        Initial bed elevation ``b(x, y)`` (array of cell-center values or a
        callable); sea level is z = 0, so water depth at rest is ``-b``
        where ``b < 0``.
    g:
        Gravitational acceleration.
    h_dry:
        Depth threshold below which a cell is treated as dry.
    boundary:
        ``"outflow"`` (zero-gradient) or ``"wall"`` (reflective).
    """

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        bed,
        g: float = 9.81,
        h_dry: float = 1e-3,
        boundary: str = "outflow",
    ):
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        dx = np.diff(xs)
        dy = np.diff(ys)
        if not (np.allclose(dx, dx[0]) and np.allclose(dy, dy[0])):
            raise ValueError("shallow-water grid must be uniform")
        if boundary not in ("outflow", "wall"):
            raise ValueError(f"unknown boundary {boundary!r}")
        self.xs, self.ys = xs, ys
        self.dx, self.dy = float(dx[0]), float(dy[0])
        self.xc = 0.5 * (xs[:-1] + xs[1:])
        self.yc = 0.5 * (ys[:-1] + ys[1:])
        self.nx, self.ny = len(self.xc), len(self.yc)
        self.g = g
        self.h_dry = h_dry
        self.boundary = boundary

        X, Y = np.meshgrid(self.xc, self.yc, indexing="ij")
        self.X, self.Y = X, Y
        b0 = bed(X, Y) if callable(bed) else np.asarray(bed, dtype=float)
        if b0.shape != (self.nx, self.ny):
            raise ValueError("bed array must have shape (nx, ny)")
        self.b = b0.copy()
        self.h = np.maximum(-self.b, 0.0)
        self.hu = np.zeros_like(self.h)
        self.hv = np.zeros_like(self.h)
        self.t = 0.0
        self.bed_motion: Callable[[float], np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def eta(self) -> np.ndarray:
        """Sea-surface elevation ``h + b`` (NaN-free; equals b where dry)."""
        return self.h + self.b

    def set_bed_motion(self, fn: Callable[[float], np.ndarray]) -> None:
        """Register ``fn(t) -> bed elevation array`` (time-dependent source)."""
        self.bed_motion = fn

    def set_surface(self, eta) -> None:
        """Impose an initial sea surface (e.g. a static Okada uplift)."""
        e = eta(self.X, self.Y) if callable(eta) else np.asarray(eta, dtype=float)
        self.h = np.maximum(e - self.b, 0.0)

    def max_wave_speed(self) -> float:
        wet = self.h > self.h_dry
        if not wet.any():
            return np.sqrt(self.g * 1.0)
        c = np.sqrt(self.g * self.h[wet])
        u = np.abs(self.hu[wet] / self.h[wet])
        v = np.abs(self.hv[wet] / self.h[wet])
        return float((np.maximum(u, v) + c).max())

    def stable_dt(self, cfl: float = 0.45) -> float:
        return cfl * min(self.dx, self.dy) / self.max_wave_speed()

    # ------------------------------------------------------------------
    def _velocities(self, h, hu, hv):
        wet = h > self.h_dry
        u = np.where(wet, hu / np.maximum(h, self.h_dry), 0.0)
        v = np.where(wet, hv / np.maximum(h, self.h_dry), 0.0)
        return u, v

    def _pad(self, arr):
        if self.boundary == "outflow":
            return np.pad(arr, 1, mode="edge")
        return np.pad(arr, 1, mode="edge")  # wall handled via velocity flip

    def _rhs(self, h, hu, hv, b):
        """Flux divergence + bed-slope source (hydrostatic reconstruction)."""
        g = self.g
        hp = self._pad(h)
        hup = self._pad(hu)
        hvp = self._pad(hv)
        bp = self._pad(b)
        if self.boundary == "wall":
            # mirror normal momentum at the physical boundary
            hup[0, :] = -hup[1, :]
            hup[-1, :] = -hup[-2, :]
            hvp[:, 0] = -hvp[:, 1]
            hvp[:, -1] = -hvp[:, -2]

        up, vp = self._velocities(hp, hup, hvp)

        def face_flux(hL, hR, uL, uR, vL, vR, bL, bR):
            """Rusanov flux with hydrostatic reconstruction, x-oriented."""
            bmax = np.maximum(bL, bR)
            hLs = np.maximum(hL + bL - bmax, 0.0)
            hRs = np.maximum(hR + bR - bmax, 0.0)
            cL = np.sqrt(g * hLs)
            cR = np.sqrt(g * hRs)
            s = np.maximum(np.abs(uL) + cL, np.abs(uR) + cR)
            fL_h = hLs * uL
            fR_h = hRs * uR
            fL_hu = hLs * uL**2 + 0.5 * g * hLs**2
            fR_hu = hRs * uR**2 + 0.5 * g * hRs**2
            fL_hv = hLs * uL * vL
            fR_hv = hRs * uR * vR
            F_h = 0.5 * (fL_h + fR_h) - 0.5 * s * (hRs - hLs)
            F_hu = 0.5 * (fL_hu + fR_hu) - 0.5 * s * (hRs * uR - hLs * uL)
            F_hv = 0.5 * (fL_hv + fR_hv) - 0.5 * s * (hRs * vR - hLs * vL)
            return F_h, F_hu, F_hv, hLs, hRs

        # x faces: (nx+1, ny)
        hL = hp[:-1, 1:-1]
        hR = hp[1:, 1:-1]
        uL = up[:-1, 1:-1]
        uR = up[1:, 1:-1]
        vL = vp[:-1, 1:-1]
        vR = vp[1:, 1:-1]
        bL = bp[:-1, 1:-1]
        bR = bp[1:, 1:-1]
        Fx_h, Fx_hu, Fx_hv, hLs_x, hRs_x = face_flux(hL, hR, uL, uR, vL, vR, bL, bR)

        # y faces: swap roles of (u, v)
        hB = hp[1:-1, :-1]
        hT = hp[1:-1, 1:]
        uB = up[1:-1, :-1]
        uT = up[1:-1, 1:]
        vB = vp[1:-1, :-1]
        vT = vp[1:-1, 1:]
        bB = bp[1:-1, :-1]
        bT = bp[1:-1, 1:]
        Fy_h, Fy_hv2, Fy_hu2, hBs, hTs = face_flux(hB, hT, vB, vT, uB, uT, bB, bT)
        # note: face_flux's 2nd momentum output is the *normal* momentum flux
        Fy_hv = Fy_hv2
        Fy_hu = Fy_hu2

        dhdt = -(Fx_h[1:, :] - Fx_h[:-1, :]) / self.dx - (Fy_h[:, 1:] - Fy_h[:, :-1]) / self.dy
        # hydrostatic-reconstruction well-balanced pressure correction:
        # the cell sees reconstructed depths h*_{i+1/2,L} etc.
        hs_e = hLs_x[1:, :]  # reconstructed own-state at east face
        hs_w = hRs_x[:-1, :]  # at west face
        hs_n = hBs[:, 1:]
        hs_s = hTs[:, :-1]
        dhudt = (
            -(Fx_hu[1:, :] - Fx_hu[:-1, :]) / self.dx
            - (Fy_hu[:, 1:] - Fy_hu[:, :-1]) / self.dy
            + 0.5 * g * (hs_e**2 - hs_w**2) / self.dx
        )
        dhvdt = (
            -(Fx_hv[1:, :] - Fx_hv[:-1, :]) / self.dx
            - (Fy_hv[:, 1:] - Fy_hv[:, :-1]) / self.dy
            + 0.5 * g * (hs_n**2 - hs_s**2) / self.dy
        )
        return dhdt, dhudt, dhvdt

    # ------------------------------------------------------------------
    def step(self, dt: float) -> None:
        """One Heun (RK2) step, including bed motion over the step."""
        if self.bed_motion is not None:
            b_new = np.asarray(self.bed_motion(self.t + dt), dtype=float)
        else:
            b_new = self.b

        # stage 1 with current bed
        d1 = self._rhs(self.h, self.hu, self.hv, self.b)
        h1 = np.maximum(self.h + dt * d1[0], 0.0)
        hu1 = self.hu + dt * d1[1]
        hv1 = self.hv + dt * d1[2]
        # stage 2 with the new bed
        d2 = self._rhs(h1, hu1, hv1, b_new)
        h_new = np.maximum(0.5 * (self.h + h1 + dt * d2[0]), 0.0)
        hu_new = 0.5 * (self.hu + hu1 + dt * d2[1])
        hv_new = 0.5 * (self.hv + hv1 + dt * d2[2])

        # bed uplift raises the column: eta rides along, h unchanged
        # (b enters the momentum balance; mass is untouched by bed motion)
        dry = h_new <= self.h_dry
        hu_new[dry] = 0.0
        hv_new[dry] = 0.0
        self.h, self.hu, self.hv = h_new, hu_new, hv_new
        self.b = b_new
        self.t += dt

    def run(self, t_end: float, cfl: float = 0.45, callback=None) -> None:
        while self.t < t_end - 1e-12 * max(t_end, 1.0):
            dt = min(self.stable_dt(cfl), t_end - self.t)
            self.step(dt)
            if callback is not None:
                callback(self)

    # ------------------------------------------------------------------
    def volume(self) -> float:
        return float(self.h.sum() * self.dx * self.dy)

    def sample_eta(self, points: np.ndarray) -> np.ndarray:
        """Bilinear sample of the sea surface at ``(n, 2)`` points."""
        from scipy.interpolate import RegularGridInterpolator

        itp = RegularGridInterpolator(
            (self.xc, self.yc), self.eta, bounds_error=False, fill_value=None
        )
        return itp(np.atleast_2d(points))
