"""One-way linking: 3D earthquake model -> 2D shallow-water tsunami model.

Implements the workflow the paper compares against (Secs. 2, 6.1, 6.2):

1. record the time-dependent vertical seafloor/surface displacement of a 3D
   SeisSol-style earthquake simulation on its unstructured mesh
   (:class:`SurfaceDisplacementTracker` integrates the surface velocity
   trace in time at the boundary-face quadrature points),
2. interpolate it (bilinearly) onto an intermediate uniform Cartesian grid,
3. feed it as a time-dependent bed motion into the nonlinear shallow-water
   solver (or, in the classical static variant, apply the final Okada /
   final-uplift field as an instantaneous initial sea-surface displacement).
"""

from __future__ import annotations

import numpy as np

from ..core.basis import face_points_to_tet
from ..core.riemann import FaceKind

__all__ = ["SurfaceDisplacementTracker", "BedMotionInterpolator", "link_static_uplift"]


class SurfaceDisplacementTracker:
    """Accumulates vertical displacement on selected boundary faces.

    Attach to a :class:`~repro.core.solver.CoupledSolver` run via the
    ``callback`` hook; after (or during) the run, :meth:`snapshot_grid`
    interpolates the current displacement onto a Cartesian grid.

    Parameters
    ----------
    solver:
        The 3D solver (typically an earthquake-only model whose top surface
        is a traction-free boundary).
    kinds:
        Which boundary kinds to monitor (default: free surface).
    upward_only:
        Keep only faces whose outward normal points up (the surface).
    """

    def __init__(self, solver, kinds=(FaceKind.FREE_SURFACE,), upward_only=True):
        self.solver = solver
        bnd = solver.mesh.boundary
        mask = np.isin(bnd.kind, [k.value for k in kinds])
        if upward_only:
            mask &= bnd.normal[:, 2] > 0.5
        self.face_ids = np.flatnonzero(mask)
        if self.face_ids.size == 0:
            raise ValueError("no boundary faces matched the tracker selection")
        self.elem = bnd.elem[self.face_ids]
        self.local_face = bnd.face[self.face_ids]
        ref = solver.op.ref
        nq = ref.n_face_points
        self.points = np.empty((len(self.face_ids), nq, 3))
        for f in range(4):
            sel = self.local_face == f
            if np.any(sel):
                pts = face_points_to_tet(f, ref.face_points)
                self.points[sel] = solver.mesh.map_points(self.elem[sel], pts)
        self.uz = np.zeros((len(self.face_ids), nq))
        self._t_last = solver.t
        self._vz_last = self._surface_vz()
        self.history: list[tuple[float, np.ndarray]] = []

    def __call__(self, solver) -> None:
        """Callback: trapezoidal time integration of the surface v_z."""
        dt = solver.t - self._t_last
        if dt <= 0:
            return
        vz = self._surface_vz()
        self.uz += 0.5 * dt * (vz + self._vz_last)
        self._vz_last = vz
        self._t_last = solver.t

    def _surface_vz(self) -> np.ndarray:
        ref = self.solver.op.ref
        out = np.empty_like(self.uz)
        for f in range(4):
            sel = self.local_face == f
            if np.any(sel):
                tr = ref.E_minus[f] @ self.solver.Q[self.elem[sel]]
                out[sel] = tr[:, :, 8]
        return out

    def record_snapshot(self) -> None:
        """Store (t, uz) for later time-dependent bed reconstruction."""
        self.history.append((self.solver.t, self.uz.copy()))

    def snapshot_grid(self, xs: np.ndarray, ys: np.ndarray, uz=None) -> np.ndarray:
        """Bilinear interpolation of uz onto cell centers of a uniform grid.

        This is the paper's 'intermediate uniform Cartesian mesh' step.
        Returns an ``(nx, ny)`` array at the cell centers of ``xs``/``ys``.
        """
        from scipy.interpolate import griddata

        pts = self.points[:, :, :2].reshape(-1, 2)
        vals = (self.uz if uz is None else uz).reshape(-1)
        xc = 0.5 * (xs[:-1] + xs[1:])
        yc = 0.5 * (ys[:-1] + ys[1:])
        X, Y = np.meshgrid(xc, yc, indexing="ij")
        out = griddata(pts, vals, (X, Y), method="linear")
        nearest = griddata(pts, vals, (X, Y), method="nearest")
        return np.where(np.isnan(out), nearest, out)


class BedMotionInterpolator:
    """Time-dependent bed for the SWE solver from displacement snapshots.

    Linearly interpolates between gridded snapshots; constant extrapolation
    after the last one (the earthquake is over, the uplift is static).
    """

    def __init__(self, b0: np.ndarray, times: np.ndarray, snapshots: np.ndarray):
        self.b0 = np.asarray(b0, dtype=float)
        self.times = np.asarray(times, dtype=float)
        self.snapshots = np.asarray(snapshots, dtype=float)
        if len(self.times) != len(self.snapshots):
            raise ValueError("one snapshot per time required")
        if len(self.times) < 1:
            raise ValueError("need at least one snapshot")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("snapshot times must increase")

    def __call__(self, t: float) -> np.ndarray:
        times, snaps = self.times, self.snapshots
        if t <= times[0]:
            frac = t / max(times[0], 1e-300)
            return self.b0 + max(frac, 0.0) * snaps[0]
        if t >= times[-1]:
            return self.b0 + snaps[-1]
        i = int(np.searchsorted(times, t)) - 1
        w = (t - times[i]) / (times[i + 1] - times[i])
        return self.b0 + (1 - w) * snaps[i] + w * snaps[i + 1]


def link_static_uplift(swe, uplift: np.ndarray) -> None:
    """Classical static linking: add the final uplift to the sea surface.

    The long-wavelength seafloor uplift is assumed to instantaneously lift
    the water column (paper Sec. 2).
    """
    swe.set_surface(swe.eta + uplift)
