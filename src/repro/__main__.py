"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print version and a summary of the available subsystems.
``quickstart``
    Run the coupled Earth-ocean quickstart simulation.
``scenario-a [--t-end T]``
    Scaled Scenario-A benchmark: fully coupled vs one-way linked (Fig. 3).
``palu [--t-end T]``
    Scaled Palu supershear earthquake-tsunami scenario (Fig. 1).
``scaling``
    Strong-scaling study on the simulated machines (Fig. 6).
``acoustics``
    Acoustic + gravity wave dispersion demonstration.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro", description="3D acoustic-elastic coupling with gravity (SC'21 reproduction)"
    )
    sub = ap.add_subparsers(dest="command")
    sub.add_parser("info", help="version and subsystem summary")
    sub.add_parser("quickstart", help="coupled Earth-ocean quickstart")
    p_a = sub.add_parser("scenario-a", help="Scenario-A coupled vs linked (Fig. 3)")
    p_a.add_argument("--t-end", type=float, default=6.0)
    p_p = sub.add_parser("palu", help="Palu supershear scenario (Fig. 1)")
    p_p.add_argument("--t-end", type=float, default=4.0)
    sub.add_parser("scaling", help="strong scaling on simulated machines (Fig. 6)")
    sub.add_parser("acoustics", help="acoustic/gravity dispersion demo")
    args = ap.parse_args(argv)

    if args.command is None:
        ap.print_help()
        return 1
    if args.command == "info":
        import repro

        print(f"repro {repro.__version__} — SC'21 Palu earthquake-tsunami reproduction")
        print(__doc__)
        return 0

    # the runnable demos live in <repo>/examples (editable install layout)
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    examples_dir = os.path.join(repo_root, "examples")
    if not os.path.isdir(examples_dir):
        print("examples/ directory not found (CLI demos need the source checkout)")
        return 2
    sys.path.insert(0, examples_dir)

    if args.command == "quickstart":
        from quickstart import main as run

        run()
    elif args.command == "scenario-a":
        from scenario_a_benchmark import main as run

        run(args.t_end)
    elif args.command == "palu":
        from palu_bay import main as run

        run(args.t_end)
    elif args.command == "scaling":
        from scaling_study import main as run

        run()
    elif args.command == "acoustics":
        from ocean_acoustics import main as run

        run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
