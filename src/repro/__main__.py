"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print version and a summary of the available subsystems.
``quickstart``
    Run the coupled Earth-ocean quickstart simulation.
``scenario-a [--t-end T]``
    Scaled Scenario-A benchmark: fully coupled vs one-way linked (Fig. 3).
``palu [--t-end T]``
    Scaled Palu supershear earthquake-tsunami scenario (Fig. 1).
``scaling``
    Strong-scaling study on the simulated machines (Fig. 6).
``acoustics``
    Acoustic + gravity wave dispersion demonstration.

The simulation commands (``quickstart``, ``scenario-a``, ``palu``) accept
the resilience options ``--checkpoint-every S`` (simulated seconds between
atomic on-disk checkpoints), ``--checkpoint-dir DIR``, and ``--resume
[PATH]`` (restart from a checkpoint file, or the newest checkpoint in a
directory).  Checkpointed runs are supervised: a NaN/energy/CFL watchdog
triggers rollback to the last snapshot with timestep backoff instead of
silently corrupting the run.

They also accept the execution-backend options ``--backend
serial|partitioned`` and ``--workers N`` (thread-pool size for the
partitioned backend; see README "Parallel execution"), and the
observability options ``--profile`` (phase telemetry + roofline report at
exit), ``--trace PATH`` (span timeline exported as Chrome-trace/Perfetto
JSON), ``--log-json PATH`` (structured JSONL run records) and
``--heartbeat-every N`` (heartbeat period in steps; see README
"Observability").

``obs-report RUN.jsonl [--node NAME] [--check]``
    Summarize a structured run log: manifest, heartbeats, resilience
    events, and — for profiled runs — the per-phase breakdown with
    measured-vs-modeled GFLOP/s.  ``--check`` validates every record
    against the schema first and exits non-zero on errors.
``obs-trace RUN.trace.json [--check]``
    Summarize a ``--trace`` export: wall span, per-lane busy/idle,
    hottest span names, critical-path estimate and halo-gather vs
    compute overlap.  ``--check`` validates the Chrome-trace schema
    first and exits non-zero on errors.  With ``--merge ENSEMBLE_DIR``
    the per-member worker traces of an ensemble run are stitched into
    one wall-clock-aligned Perfetto timeline (one process lane per
    member, supervisor events as instant markers) written to ``--out``.
``obs-status RUN_DIR [--watch N]``
    Render the fleet status table of an ensemble run directory (member,
    state, step, simulated time, wall rate, energy drift, retries,
    heartbeat staleness, classifier verdict) from its on-disk artifacts;
    ``--watch N`` re-renders every N seconds until Ctrl-C (clean exit,
    tolerant of the run dir disappearing mid-watch).
``obs-diagnose BUNDLE [--check]``
    Classify a ``*.blackbox.json`` diagnostic bundle dumped by the
    flight recorder on a terminal fault: validates the bundle schema and
    fingerprint, then prints a structured verdict (``nan_origin`` |
    ``energy_blowup`` | ``cfl_collapse`` | ``worker_death`` |
    ``unknown``) with its evidence lines.  ``--check`` exits non-zero on
    a schema-invalid bundle (see README "Postmortem debugging").
``bench [--out PATH] [--node NAME]``
    Run the standardized kernel benchmark battery and append a
    schema-versioned record to ``BENCH_<host-context>.json`` (compare
    records with ``tools/bench_compare.py``).
``sched-plan N [--rate R] [--n-macro M] [--full]``
    Compile the clustered step plan for ``N`` LTS clusters (chain
    adjacency) and print its cadence — micro-step counts per cluster,
    sync points and, with ``--full``, every window with its
    consume/publish actions (see README "Scheduler").
``ensemble --members N [--workers W] [--scenario S] ...``
    Run a supervised multi-process ensemble of perturbed scenario
    members (see README "Ensemble runs").  Worker processes heartbeat to
    the supervisor; hangs (``--member-timeout``), deaths, and corrupt
    results are retried with backoff, checkpoint-resume, and timestep
    backoff (``--max-retries`` strikes) before a member is quarantined.
    The driver always terminates with a complete per-member summary and
    an ``ensemble.json``/``ensemble.jsonl`` artifact pair in ``--out``.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro", description="3D acoustic-elastic coupling with gravity (SC'21 reproduction)"
    )
    sub = ap.add_subparsers(dest="command")

    def add_resilience_args(p):
        p.add_argument(
            "--checkpoint-every", type=float, default=None, metavar="S",
            help="write an atomic checkpoint every S simulated seconds",
        )
        p.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="directory for rotating checkpoints (enables the watchdog)",
        )
        p.add_argument(
            "--resume", default=None, metavar="PATH",
            help="resume from a checkpoint file or the newest one in a directory",
        )

    def add_backend_args(p):
        from repro.exec import available_backends

        p.add_argument(
            "--backend", default="serial", choices=available_backends(),
            help="execution backend (default: serial)",
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="thread-pool size for the partitioned backend",
        )

    from repro.obs import add_obs_args

    sub.add_parser("info", help="version and subsystem summary")
    p_q = sub.add_parser("quickstart", help="coupled Earth-ocean quickstart")
    p_q.add_argument("--t-end", type=float, default=2.5)
    add_resilience_args(p_q)
    add_backend_args(p_q)
    add_obs_args(p_q)
    p_a = sub.add_parser("scenario-a", help="Scenario-A coupled vs linked (Fig. 3)")
    p_a.add_argument("--t-end", type=float, default=6.0)
    add_resilience_args(p_a)
    add_backend_args(p_a)
    add_obs_args(p_a)
    p_p = sub.add_parser("palu", help="Palu supershear scenario (Fig. 1)")
    p_p.add_argument("--t-end", type=float, default=4.0)
    add_resilience_args(p_p)
    add_backend_args(p_p)
    add_obs_args(p_p)
    sub.add_parser("scaling", help="strong scaling on simulated machines (Fig. 6)")
    sub.add_parser("acoustics", help="acoustic/gravity dispersion demo")
    p_r = sub.add_parser("obs-report", help="summarize a JSONL run log")
    p_r.add_argument("runlog", help="path to a --log-json run log")
    p_r.add_argument("--node", default="rome",
                     help="roofline node model (default: rome)")
    p_r.add_argument("--check", action="store_true",
                     help="validate every record against the schema first")
    p_t = sub.add_parser("obs-trace", help="summarize a Chrome-trace/Perfetto export")
    p_t.add_argument("trace", help="path to a --trace JSON export, or an "
                     "ensemble run dir with --merge")
    p_t.add_argument("--check", action="store_true",
                     help="validate the Chrome-trace schema first")
    p_t.add_argument("--merge", action="store_true",
                     help="treat the positional as an ensemble run dir and "
                     "merge per-member traces into one timeline")
    p_t.add_argument("--out", default=None, metavar="PATH",
                     help="merged trace output path "
                     "(default: <dir>/ensemble.trace.json)")
    p_st = sub.add_parser("obs-status",
                          help="fleet status table of an ensemble run dir")
    p_st.add_argument("run_dir", help="ensemble out-dir "
                      "(holds ensemble.jsonl and per-member dirs)")
    p_st.add_argument("--watch", type=float, default=None, metavar="N",
                      help="re-render every N seconds until interrupted")
    p_d = sub.add_parser("obs-diagnose",
                         help="classify a *.blackbox.json diagnostic bundle")
    p_d.add_argument("bundle", help="path to a diagnostic bundle, or a "
                     "directory (classifies the newest bundle in it)")
    p_d.add_argument("--check", action="store_true",
                     help="exit non-zero when the bundle fails schema or "
                     "fingerprint validation")
    p_b = sub.add_parser("bench", help="run the kernel benchmark battery")
    p_b.add_argument("--out", default=None, metavar="PATH",
                     help="history file (default: BENCH_<host-context>.json at repo root)")
    p_b.add_argument("--node", default="local",
                     help="roofline node model for predicted bounds (default: local)")
    p_b.add_argument("--kernel-variant", default=None,
                     choices=("batched", "fused", "jit"),
                     help="kernel execution variant to benchmark "
                     "(default: the library default; recorded per record "
                     "so histories never diff across variants)")
    p_e = sub.add_parser("ensemble",
                         help="supervised multi-process scenario ensemble")
    p_e.add_argument("--members", type=int, default=4, metavar="N",
                     help="number of perturbed ensemble members (default 4)")
    p_e.add_argument("--workers", type=int, default=2, metavar="W",
                     help="concurrent worker processes; 0 = degraded "
                     "in-process mode (default 2)")
    p_e.add_argument("--scenario", default="quickstart",
                     help="registered scenario builder "
                     "(quickstart | scenario_a | palu; default quickstart)")
    p_e.add_argument("--t-end", type=float, default=0.5,
                     help="simulated seconds per member (default 0.5)")
    p_e.add_argument("--seed", type=int, default=0,
                     help="base seed; member k runs with seed+k (default 0)")
    p_e.add_argument("--max-retries", type=int, default=3, metavar="R",
                     help="process-level strikes before quarantine (default 3)")
    p_e.add_argument("--member-timeout", type=float, default=120.0,
                     metavar="S",
                     help="seconds without a heartbeat before a member is "
                     "declared hung and killed (default 120)")
    p_e.add_argument("--checkpoint-every", type=float, default=None,
                     metavar="S",
                     help="per-member checkpoint cadence in simulated "
                     "seconds (enables mid-run resume after a death)")
    p_e.add_argument("--out", default="out/ensemble", metavar="DIR",
                     help="artifact root (default out/ensemble)")
    p_e.add_argument("--backend", default="serial",
                     help="execution backend inside each member "
                     "(default serial)")
    p_e.add_argument("--no-metrics", action="store_true",
                     help="disable the per-member metric registry (on by "
                     "default: heartbeats carry snapshots, the supervisor "
                     "exports fleet.prom/fleet.jsonl)")
    p_e.add_argument("--trace", action="store_true",
                     help="record a span timeline per member "
                     "(<member>/trace.json; merge with "
                     "`obs-trace --merge DIR`)")
    p_s = sub.add_parser("sched-plan",
                         help="compile and print a clustered step plan")
    p_s.add_argument("n_clusters", type=int, help="number of LTS clusters")
    p_s.add_argument("--rate", type=int, default=2,
                     help="timestep ratio between clusters (default: 2)")
    p_s.add_argument("--n-macro", type=int, default=1,
                     help="macro steps to compile (default: 1)")
    p_s.add_argument("--full", action="store_true",
                     help="print every micro-step with its actions")
    args = ap.parse_args(argv)

    if args.command is None:
        ap.print_help()
        return 1
    if args.command == "info":
        import repro

        print(f"repro {repro.__version__} — SC'21 Palu earthquake-tsunami reproduction")
        print(__doc__)
        return 0
    if args.command == "obs-report":
        from repro.obs.report import KNOWN_NODES, summarize_runlog

        if args.node not in KNOWN_NODES:
            print(f"unknown node {args.node!r} (known: {', '.join(KNOWN_NODES)})")
            return 2
        return summarize_runlog(args.runlog, node=args.node, check=args.check)
    if args.command == "obs-trace":
        from repro.obs.trace import merge_chrome_traces, summarize_trace_file

        path = args.trace
        if args.merge:
            import os

            out = args.out or os.path.join(path, "ensemble.trace.json")
            try:
                doc = merge_chrome_traces(path, out_path=out)
            except FileNotFoundError as exc:
                print(f"obs-trace: {exc}")
                return 2
            meta = doc["otherData"]
            print(f"merged {len(meta['members'])} member trace(s), "
                  f"{meta['spans']} span(s), "
                  f"{meta['supervisor_events']} supervisor event(s) "
                  f"-> {out}")
            path = out
        return summarize_trace_file(path, check=args.check)
    if args.command == "obs-status":
        from repro.obs.fleet import watch_status

        return watch_status(args.run_dir, interval=args.watch)
    if args.command == "obs-diagnose":
        from repro.obs.blackbox import diagnose_bundle_file

        return diagnose_bundle_file(args.bundle, check=args.check)
    if args.command == "bench":
        from repro.obs.bench import battery_lines, run_battery

        record, path = run_battery(out=args.out, node=args.node,
                                   kernel_variant=args.kernel_variant)
        for line in battery_lines(record):
            print(line)
        print(f"bench: appended record to {path} "
              "(compare with tools/bench_compare.py)")
        return 0
    if args.command == "ensemble":
        from repro.ensemble import (
            MemberSpec,
            RetryPolicy,
            Supervisor,
            available_builders,
        )

        if args.scenario not in available_builders():
            print(f"unknown scenario {args.scenario!r} "
                  f"(registered: {', '.join(available_builders())})")
            return 2
        if args.members < 1:
            print("--members must be >= 1")
            return 2
        specs = [
            MemberSpec(
                member_id=f"member_{k:04d}",
                builder=args.scenario,
                seed=args.seed + k,
                t_end=args.t_end,
                checkpoint_every=args.checkpoint_every,
                backend=args.backend,
                metrics=not args.no_metrics,
                trace=args.trace,
            )
            for k in range(args.members)
        ]
        supervisor = Supervisor(
            specs,
            workers=args.workers,
            retry=RetryPolicy(max_retries=args.max_retries),
            member_timeout=args.member_timeout,
            out_dir=args.out,
            verbose=True,
        )
        result = supervisor.run()
        for line in result.lines():
            print(line)
        print(f"artifacts: {args.out}/ensemble.json, "
              f"{args.out}/ensemble.jsonl, per-member dirs")
        if not args.no_metrics:
            print(f"fleet metrics: {args.out}/fleet.prom, "
                  f"{args.out}/fleet.jsonl "
                  f"(live view: python -m repro obs-status {args.out})")
        # graceful degradation is still a degraded run: signal it
        return 3 if result.degraded else 0
    if args.command == "sched-plan":
        from repro.sched import CONSUME_TAYLOR, compile_step_plan, step_plan_key

        nc = args.n_clusters
        # the normalized clustering guarantees neighbor levels differ by at
        # most one, so the chain is the canonical adjacency to preview
        adjacency = [
            [n for n in (c - 1, c + 1) if 0 <= n < nc] for c in range(nc)
        ]
        plan = compile_step_plan(nc, args.rate, args.n_macro, adjacency)
        key = step_plan_key(nc, args.rate, args.n_macro, adjacency)
        print(f"step plan: {nc} cluster(s), rate {plan.rate}, "
              f"{plan.n_macro} macro step(s)  [key {key[:12]}]")
        print(f"  micro-steps: {plan.n_micro}  syncs: {plan.n_sync}  "
              f"span: {plan.end_int} x dt_min")
        counts = [int((plan.cluster == c).sum()) for c in range(nc)]
        for c in range(nc):
            print(f"  cluster {c}: window {int(plan.steps[c])} x dt_min, "
                  f"{counts[c]} update(s)")
        if args.full:
            for i in range(plan.n_micro):
                acts = ", ".join(
                    f"{'taylor' if m == CONSUME_TAYLOR else 'buffer'}(c{int(cn)}"
                    + (f"@+{int(off)}" if m == CONSUME_TAYLOR else "") + ")"
                    for cn, m, off in plan.consumes(i)
                )
                sync = int(plan.sync_after[i])
                print(f"  [{i:3d}] c{int(plan.cluster[i])} "
                      f"t=[{int(plan.t_int[i])},"
                      f"{int(plan.t_int[i] + plan.steps[plan.cluster[i]])})"
                      + (f"  consume: {acts}" if acts else "")
                      + (f"  sync@{sync}" if sync >= 0 else ""))
        return 0

    # the runnable demos live in <repo>/examples (editable install layout)
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    examples_dir = os.path.join(repo_root, "examples")
    if not os.path.isdir(examples_dir):
        print("examples/ directory not found (CLI demos need the source checkout)")
        return 2
    sys.path.insert(0, examples_dir)

    from repro.obs import obs_kwargs

    if args.command == "quickstart":
        from quickstart import main as run

        run(args.t_end, args.checkpoint_every, args.checkpoint_dir, args.resume,
            backend=args.backend, workers=args.workers, **obs_kwargs(args))
    elif args.command == "scenario-a":
        from scenario_a_benchmark import main as run

        run(args.t_end, checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            backend=args.backend, workers=args.workers, **obs_kwargs(args))
    elif args.command == "palu":
        from palu_bay import main as run

        run(args.t_end, args.checkpoint_every, args.checkpoint_dir, args.resume,
            backend=args.backend, workers=args.workers, **obs_kwargs(args))
    elif args.command == "scaling":
        from scaling_study import main as run

        run()
    elif args.command == "acoustics":
        from ocean_acoustics import main as run

        run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
