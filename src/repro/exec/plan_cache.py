"""Operator-plan cache: skip flux-matrix setup for a problem seen before.

Building a :class:`~repro.core.kernels.SpatialOperator` is dominated by the
per-face Godunov flux matrices (Eq. 20 for both sides of every interior
face, plus boundary kinds).  Benchmarks, convergence sweeps and
checkpoint/resume workflows rebuild the operator for the *same* discrete
problem over and over; this module memoizes the finished plan (star
Jacobians + interior/boundary face groups) keyed by a SHA-256 fingerprint
of everything the plan depends on:

* mesh geometry and topology (vertices, tets),
* the material table and per-element material assignment,
* boundary tags and fault-face marks (they decide which faces the generic
  kernels own),
* polynomial order and flux variant.

The same mesh-level digest feeds :func:`repro.io.checkpoint.fingerprint`,
so "plan cache hit" and "checkpoint restorable" agree on what *identical
problem* means.  Invalidation is automatic: any change to the mesh,
materials or order changes the fingerprint and misses the cache (the stale
entry ages out of the LRU).  Plans are treated as immutable — the kernels
only ever read from them — so sharing one plan between many operators
(serial + partitioned backends, resumed runs) is safe.

Set ``REPRO_PLAN_CACHE=0`` to disable caching entirely (every operator
builds its own plan, the pre-cache behavior).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_metrics
from ..obs.telemetry import get_telemetry

__all__ = [
    "mesh_fingerprint",
    "plan_key",
    "OperatorPlan",
    "PlanCache",
    "get_plan_cache",
    "clear_plan_cache",
    "register_cache",
]


def _hash_arrays(h, items) -> None:
    for label, arr in items:
        a = np.ascontiguousarray(arr)
        h.update(label.encode())
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())


def mesh_fingerprint(mesh) -> str:
    """SHA-256 digest of the discrete *spatial* problem a mesh defines.

    Covers geometry, topology, the material table and assignment, boundary
    tags and fault marks — everything the spatial operator (and a saved
    solver state) depends on.  Tagging or fault-marking a mesh changes the
    digest, so fingerprints must be taken *after* mesh setup is complete.
    """
    h = hashlib.sha256()
    _hash_arrays(h, [
        ("vertices", mesh.vertices),
        ("tets", mesh.tets),
        ("material_ids", mesh.material_ids),
        ("materials", np.array([[m.rho, m.lam, m.mu] for m in mesh.materials])),
        ("boundary_kind", mesh.boundary.kind),
        ("fault_faces", mesh.interior.is_fault),
    ])
    return h.hexdigest()


def plan_key(mesh, order: int, flux_variant: str, kind: str = "batched") -> str:
    """Cache key of an operator plan: mesh digest + order + flux variant +
    plan kind.

    ``kind`` is the kernel-variant plan flavor
    (:func:`repro.kernels.plan_kind`): ``fused``/``jit`` operators carry
    folded surface factors a ``batched`` plan lacks, so the two must
    never share a cache slot even for an identical discrete problem.
    """
    h = hashlib.sha256()
    h.update(mesh_fingerprint(mesh).encode())
    h.update(f"order={int(order)};flux={flux_variant};kind={kind}".encode())
    return h.hexdigest()


@dataclass
class OperatorPlan:
    """The precomputed, immutable part of a :class:`SpatialOperator`."""

    star: np.ndarray            # (ne, 3, 9, 9) reference-coordinate Jacobians
    starT: np.ndarray           # transposed copy used by the volume kernel
    interior_groups: list = field(default_factory=list)
    boundary_groups: list = field(default_factory=list)
    #: plan flavor: "batched" (einsum groups only) or "fused" (groups
    #: additionally carry the folded A/G surface factors)
    kind: str = "batched"


class PlanCache:
    """Thread-safe LRU cache of :class:`OperatorPlan` objects."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._plans: OrderedDict[str, OperatorPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def enabled(self) -> bool:
        return os.environ.get("REPRO_PLAN_CACHE", "1") != "0"

    def get(self, key: str) -> OperatorPlan | None:
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
            return plan

    def put(self, key: str, plan: OperatorPlan) -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)

    def get_or_build_key(self, key: str, builder, phase: str = "setup/plan_build"):
        """Return the cached value under ``key`` or build (and cache) a
        fresh one with ``builder()``.

        The generic entry point shared by the operator-plan cache and the
        step-plan cache of :mod:`repro.sched.plan`: hit/miss counters and
        the ``REPRO_PLAN_CACHE=0`` kill switch behave identically for
        every kind of fingerprint-keyed plan.
        """
        tel = get_telemetry()
        if not self.enabled:
            with tel.phase(phase):
                return builder()
        met = get_metrics()
        plan = self.get(key)
        if plan is not None:
            self.hits += 1
            tel.count("plan_cache/hits")
            if met.enabled:
                met.inc("cache/plan_hits")
            return plan
        self.misses += 1
        tel.count("plan_cache/misses")
        if met.enabled:
            met.inc("cache/plan_misses")
        with tel.phase(phase):
            plan = builder()
        self.put(key, plan)
        return plan

    def get_or_build(self, mesh, order: int, flux_variant: str, builder,
                     kind: str = "batched") -> OperatorPlan:
        """Return the cached plan for ``(mesh, order, flux_variant, kind)``
        or build (and cache) a fresh one with ``builder()``."""
        if not self.enabled:
            return self.get_or_build_key("", builder)
        return self.get_or_build_key(
            plan_key(mesh, order, flux_variant, kind), builder)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {"entries": len(self._plans), "hits": self.hits, "misses": self.misses}


_GLOBAL_CACHE = PlanCache()

#: every PlanCache instance that :func:`clear_plan_cache` must also clear
#: (e.g. the step-plan cache of :mod:`repro.sched.plan`)
_REGISTERED_CACHES: list[PlanCache] = []


def register_cache(cache: PlanCache) -> PlanCache:
    """Register an auxiliary cache to be cleared by :func:`clear_plan_cache`."""
    _REGISTERED_CACHES.append(cache)
    return cache


def get_plan_cache() -> PlanCache:
    """The process-wide operator-plan cache."""
    return _GLOBAL_CACHE


def clear_plan_cache() -> None:
    """Drop all cached plans (operator + registered auxiliary caches) and
    reset hit/miss counters."""
    _GLOBAL_CACHE.clear()
    for cache in _REGISTERED_CACHES:
        cache.clear()
