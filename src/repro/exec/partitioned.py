"""Partition-parallel execution of the ADER-DG kernels (paper Sec. 5).

The mesh is split with the existing graph partitioner
(:mod:`repro.hpc.partition`) under the LTS/rupture/gravity vertex weights
of paper Eq. 28, exactly the pipeline SeisSol feeds to ParMETIS.  Each
partition gets

* the **owned** elements it updates,
* a one-element **halo** layer (the neighbors across cut faces whose
  time-integrated predictor its face kernels read), and
* a per-partition :class:`~repro.core.kernels.SpatialOperator` restricted
  to its owned faces, with element indices remapped to the local
  owned-first layout (:meth:`SpatialOperator.restricted`).

A step then runs in two phases with a barrier between them:

1. **predict** — every partition computes the Cauchy-Kowalewski predictor
   of its owned elements (disjoint writes into the global array);
2. **correct** — every partition *gathers* the time-integrated predictor
   of its owned + halo elements (this copy is the halo exchange: in a
   distributed run it would be the MPI message), runs its restricted
   volume/face kernels, scatters the owned residual rows back, and applies
   the gravity / prescribed-motion / fault modules of its owned faces.

All writes target disjoint global rows, so the result is independent of
thread scheduling; the workers run concurrently because NumPy releases
the GIL inside the batched GEMMs.  The dynamic-rupture fault is kept
whole-fault atomic (every fault-adjacent element in one partition, a
stronger form of the LTS cluster-equalization constraint) because the
fault solver writes flux into both sides of each face at once and its
friction laws may carry per-face parameter arrays.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

from ..core.ader import taylor_integrate
from ..core.lts import cluster_elements
from ..hpc.partition import edge_cut, eq28_vertex_weights, imbalance, partition_mesh
from ..obs.telemetry import get_telemetry
from .backend import ExecutionBackend

__all__ = ["PartitionPlan", "PartitionedBackend", "fault_atomic_partition"]

_TEL = get_telemetry()


def fault_atomic_partition(mesh, parts: np.ndarray) -> np.ndarray:
    """Move every fault-adjacent element into one common partition.

    The fault solver writes flux into *both* sides of every fault face in
    one call, and friction laws may carry per-face parameter arrays (e.g.
    the Scenario-A near-seafloor strengthening) that are only consistent
    when the whole fault steps together.  So the entire fault — not just
    each face pair — is pulled into the smallest touching partition id:
    exactly one worker then calls ``fault.step``, with the same full-fault
    view the serial backend has.  The cost is some load imbalance around
    the rupture, which the Eq. 28 weights already bias against.
    """
    fault = mesh.interior.is_fault
    if not fault.any():
        return parts
    parts = parts.copy()
    ids = np.unique(np.concatenate([
        mesh.interior.minus_elem[fault], mesh.interior.plus_elem[fault]
    ]))
    parts[ids] = parts[ids].min()
    return parts


@dataclass
class PartitionPlan:
    """Everything one worker needs to advance its partition."""

    part_id: int
    owned: np.ndarray        # global element ids, owned by this partition
    halo: np.ndarray         # global element ids read but not updated
    cells: np.ndarray        # owned followed by halo (the local index space)
    owned_local: np.ndarray  # bool over cells: True for the owned prefix
    owned_mask: np.ndarray   # bool over all mesh elements
    lop: object              # restricted SpatialOperator (local indices)
    gravity_mask: np.ndarray # bool over the solver's gravity faces
    motion_mask: np.ndarray | None
    has_fault: bool
    #: per-partition predictor scratch (only ever a prior predict_states
    #: result for this partition — one worker task per plan, no sharing)
    ck_scratch: np.ndarray | None = None

    @property
    def n_owned(self) -> int:
        return len(self.owned)

    @property
    def n_halo(self) -> int:
        return len(self.halo)


class PartitionedBackend(ExecutionBackend):
    """Thread-pool execution over Eq. 28-weighted mesh partitions.

    Parameters
    ----------
    workers:
        Thread-pool size; also the default partition count.
    n_parts:
        Number of partitions (defaults to ``workers``).  More partitions
        than workers is legal (they are processed in turn).
    refine:
        Run the boundary refinement pass of the partitioner (smaller edge
        cut, slightly slower setup).
    """

    name = "partitioned"

    def __init__(self, workers: int = 2, n_parts: int | None = None, refine: bool = True):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.n_parts = self.workers if n_parts is None else int(n_parts)
        if self.n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        self.refine = refine
        self._pool = None
        self._derivs_scratch = None
        self.plans: list[PartitionPlan] = []
        self.halo_exchanges = 0

    # ------------------------------------------------------------------
    def bind(self, solver) -> None:
        self.solver = solver
        mesh = solver.mesh
        n_parts = min(self.n_parts, mesh.n_elements)
        cluster, _ = cluster_elements(mesh, solver.order, safety=solver.cfl_safety)
        weights = eq28_vertex_weights(mesh, cluster)
        parts = partition_mesh(mesh, n_parts, weights, refine=self.refine)
        parts = fault_atomic_partition(mesh, parts)
        self.parts = parts
        self._imbalance = imbalance(parts, weights) if n_parts > 1 else 1.0
        self._edge_cut = edge_cut(parts, mesh.dual_graph_edges())
        self._build_plans(parts)

    def _build_plans(self, parts: np.ndarray) -> None:
        solver = self.solver
        mesh = solver.mesh
        ne = mesh.n_elements
        em, ep = mesh.interior.minus_elem, mesh.interior.plus_elem
        g_elem = solver.gravity.elem
        m_elem = solver.motion.elem if solver.motion is not None else None
        fault_em = mesh.interior.minus_elem[mesh.interior.is_fault]

        self.plans = []
        for p in range(int(parts.max()) + 1):
            owned_mask = parts == p
            if not owned_mask.any():
                continue
            # halo = the far side of every cut face touching this partition
            halo_mask = np.zeros(ne, dtype=bool)
            out_m = owned_mask[em] & ~owned_mask[ep]
            out_p = owned_mask[ep] & ~owned_mask[em]
            halo_mask[ep[out_m]] = True
            halo_mask[em[out_p]] = True
            owned = np.flatnonzero(owned_mask)
            halo = np.flatnonzero(halo_mask)
            cells = np.concatenate([owned, halo])
            owned_local = np.zeros(len(cells), dtype=bool)
            owned_local[: len(owned)] = True
            self.plans.append(PartitionPlan(
                part_id=p,
                owned=owned,
                halo=halo,
                cells=cells,
                owned_local=owned_local,
                owned_mask=owned_mask,
                lop=solver.op.restricted(cells, len(owned)),
                gravity_mask=owned_mask[g_elem],
                motion_mask=None if m_elem is None else owned_mask[m_elem],
                has_fault=bool(owned_mask[fault_em].any()),
            ))

    # ------------------------------------------------------------------
    def _run(self, fn) -> None:
        plans = self.plans
        if self.workers <= 1 or len(plans) <= 1:
            for plan in plans:
                fn(plan)
            return
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        # list() propagates the first worker exception to the caller
        list(self._pool.map(fn, plans))

    # ------------------------------------------------------------------
    def predict(self, Q: np.ndarray) -> np.ndarray:
        op = self.solver.op
        # every row is owned by exactly one partition, so the buffer is
        # fully overwritten each call and can be reused across steps
        derivs = self._derivs_scratch
        shape = (len(Q), op.order + 1, op.nbasis, 9)
        if derivs is None or derivs.shape != shape:
            derivs = self._derivs_scratch = np.empty(shape)
        tracing = _TEL.enabled and _TEL.tracing

        def work(plan):
            t0 = _time.perf_counter() if tracing else 0.0
            plan.ck_scratch = op.predict_states(
                Q[plan.owned], op.star[plan.owned], op.starT[plan.owned],
                out=plan.ck_scratch)
            derivs[plan.owned] = plan.ck_scratch
            if tracing:
                _TEL.add_span("worker/predict", t0, _time.perf_counter(),
                              part=plan.part_id, owned=plan.n_owned)

        with _TEL.phase("predict"):
            if _TEL.enabled:
                _TEL.count("elem_updates/predictor", len(Q))
            self._run(work)
        return derivs

    def update_predictor(self, Q, mask, dt, derivs, Iown) -> None:
        op = self.solver.op
        tracing = _TEL.enabled and _TEL.tracing

        def work(plan):
            ids = plan.owned_mask & mask
            if not ids.any():
                return
            t0 = _time.perf_counter() if tracing else 0.0
            new_derivs = op.predict_states(Q[ids], op.star[ids], op.starT[ids])
            derivs[ids] = new_derivs
            Iown[ids] = taylor_integrate(new_derivs, 0.0, dt)
            if tracing:
                _TEL.add_span("worker/predict", t0, _time.perf_counter(),
                              part=plan.part_id, owned=int(ids.sum()))

        with _TEL.phase("predict"):
            if _TEL.enabled:
                _TEL.count("elem_updates/predictor", int(mask.sum()))
            self._run(work)

    def corrector(self, I, derivs, dt, t0, active=None,
                  gravity_mask=None, motion_mask=None) -> np.ndarray:
        solver = self.solver
        R = solver.op.new_state()

        tracing = _TEL.enabled and _TEL.tracing

        def work(plan):
            profiled = _TEL.enabled
            if active is None:
                act = plan.owned_local
            else:
                act = plan.owned_local & active[plan.cells]
            if act.any():
                # halo exchange: gather the time-integrated predictor of the
                # owned elements plus the one-element halo layer
                t_gather = _time.perf_counter() if profiled else 0.0
                Iloc = I[plan.cells]
                if profiled:
                    t_compute = _time.perf_counter()
                    _TEL.add_time(f"worker/p{plan.part_id}/halo_gather",
                                  t_compute - t_gather)
                    if tracing:
                        _TEL.add_span("worker/halo_gather", t_gather, t_compute,
                                      part=plan.part_id, halo=plan.n_halo)
                outloc = np.zeros_like(Iloc)
                plan.lop.volume_residual(Iloc, outloc, active=act)
                plan.lop.interior_residual(Iloc, outloc, active=act)
                plan.lop.boundary_residual(Iloc, outloc, active=act)
                R[plan.cells[act]] = outloc[act]
            elif profiled:
                t_compute = _time.perf_counter()
            gm = plan.gravity_mask if gravity_mask is None \
                else plan.gravity_mask & gravity_mask
            if gm.any():
                solver.gravity.step(derivs, dt, R, face_mask=gm)
            if solver.motion is not None:
                mm = plan.motion_mask if motion_mask is None \
                    else plan.motion_mask & motion_mask
                if mm.any():
                    solver.motion.step(derivs, dt, R, t0=t0, face_mask=mm)
            if solver.fault is not None and plan.has_fault:
                act_g = plan.owned_mask if active is None else plan.owned_mask & active
                solver.fault.step(derivs, dt, R, active=act_g, t0=t0)
            if profiled:
                t_end = _time.perf_counter()
                _TEL.add_time(f"worker/p{plan.part_id}/compute",
                              t_end - t_compute)
                if tracing:
                    _TEL.add_span("worker/compute", t_compute, t_end,
                                  part=plan.part_id,
                                  owned=int(act.sum()) if active is not None
                                  else plan.n_owned)

        with _TEL.phase("corrector"):
            if _TEL.enabled:
                _TEL.count("elem_updates/corrector",
                           len(I) if active is None else int(active.sum()))
            self._run(work)
        self.halo_exchanges += 1
        # point sources are few and cheap: applied once, after the barrier
        for s in solver.sources:
            if active is None or active[s._elem]:
                s.add(R, t0, dt)
        return R

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter teardown path
        try:
            self.close()
        except Exception:
            pass

    def stats(self) -> dict:
        return {
            "backend": self.name,
            "workers": self.workers,
            "n_parts": len(self.plans),
            "owned": [p.n_owned for p in self.plans],
            "halo": [p.n_halo for p in self.plans],
            "imbalance": self._imbalance,
            "edge_cut": self._edge_cut,
            "halo_exchanges": self.halo_exchanges,
        }

    def describe(self) -> str:
        return f"partitioned(workers={self.workers}, parts={len(self.plans)})"
