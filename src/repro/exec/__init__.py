"""Execution backends: serial and partition-parallel kernel drivers.

See :mod:`repro.exec.backend` for the backend interface and
:mod:`repro.exec.partitioned` for the Eq. 28-partitioned thread-pool
implementation.  Exports are resolved lazily (PEP 562) so that
:mod:`repro.core.kernels` can import :mod:`repro.exec.plan_cache` without
creating an import cycle through the backend modules.
"""

from __future__ import annotations

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "JitBackend",
    "PartitionedBackend",
    "make_backend",
    "available_backends",
    "OperatorPlan",
    "PlanCache",
    "get_plan_cache",
    "clear_plan_cache",
    "mesh_fingerprint",
    "plan_key",
]

_BACKEND_NAMES = {"ExecutionBackend", "SerialBackend", "JitBackend",
                  "make_backend", "available_backends"}
_CACHE_NAMES = {
    "OperatorPlan", "PlanCache", "get_plan_cache", "clear_plan_cache",
    "mesh_fingerprint", "plan_key",
}


def __getattr__(name: str):
    if name in _BACKEND_NAMES:
        from . import backend

        return getattr(backend, name)
    if name == "PartitionedBackend":
        from .partitioned import PartitionedBackend

        return PartitionedBackend
    if name in _CACHE_NAMES:
        from . import plan_cache

        return getattr(plan_cache, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
