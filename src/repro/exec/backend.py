"""Execution backends: who runs the ADER-DG kernels, and how.

The time-marching drivers (:class:`~repro.core.solver.CoupledSolver` for
global time-stepping, :class:`~repro.core.lts.LocalTimeStepping` for
clustered LTS, :class:`~repro.core.resilience.ResilientRunner` on top of
either) are *schedulers*: they decide which elements advance over which
window.  A backend executes the three phases of one window:

1. ``predict``/``update_predictor`` — the element-local Cauchy-Kowalewski
   predictor (embarrassingly parallel over elements);
2. ``corrector`` — volume + face kernels plus the gravity / prescribed-
   motion / fault / source modules, for the elements selected by the
   scheduler's ``active`` mask;
3. the halo exchange between the two (a no-op in shared memory for the
   serial backend; an explicit owned+halo gather for the partitioned one).

:class:`SerialBackend` reproduces the original single-sweep execution
path call for call — bit for bit — and is the default.
:class:`~repro.exec.partitioned.PartitionedBackend` splits the mesh with
the Eq. 28-weighted graph partitioner and runs the same phases
concurrently over the partitions.
"""

from __future__ import annotations

import numpy as np

from ..core.ader import taylor_integrate
from ..obs.telemetry import get_telemetry

__all__ = ["ExecutionBackend", "SerialBackend", "JitBackend", "make_backend",
           "available_backends"]

_TEL = get_telemetry()


class ExecutionBackend:
    """Interface shared by all execution backends.

    A backend is bound to exactly one solver (:meth:`bind` is called at the
    end of ``CoupledSolver.__init__``) and holds **no time-marching state**:
    checkpoint/restore and rollback never need to touch it.
    """

    name = "abstract"

    #: kernel variant the backend implies when the solver does not choose
    #: one explicitly (None = use the solver/operator default)
    kernel_variant: str | None = None

    def bind(self, solver) -> None:
        self.solver = solver

    # -- predictor ------------------------------------------------------
    def predict(self, Q: np.ndarray) -> np.ndarray:
        """Cauchy-Kowalewski derivatives of all elements, ``(ne, N+1, B, 9)``."""
        raise NotImplementedError

    def update_predictor(
        self, Q: np.ndarray, mask: np.ndarray, dt: float,
        derivs: np.ndarray, Iown: np.ndarray,
    ) -> None:
        """Refresh ``derivs[mask]`` from ``Q[mask]`` and store the Taylor
        window integral over ``[0, dt]`` into ``Iown[mask]`` (LTS)."""
        raise NotImplementedError

    # -- corrector ------------------------------------------------------
    def corrector(
        self, I: np.ndarray, derivs: np.ndarray, dt: float, t0: float,
        active: np.ndarray | None = None,
        gravity_mask: np.ndarray | None = None,
        motion_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Full residual of one window: kernels + boundary modules + sources.

        ``I`` is the time-integrated predictor of every element whose trace
        the active elements read (for LTS the scheduler assembles the
        neighbor windows); ``active`` restricts updates to the stepping
        elements (``None`` = all), ``gravity_mask``/``motion_mask``
        restrict the face modules the same way.  Returns the residual ``R``
        to be accumulated into ``Q`` by the scheduler.
        """
        raise NotImplementedError

    # -- housekeeping ---------------------------------------------------
    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def stats(self) -> dict:
        return {"backend": self.name}

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """The original whole-mesh execution path, unchanged call for call."""

    name = "serial"

    #: last full-mesh derivative buffer, handed back to the fused/jit
    #: predictor as scratch — only ever an array `op.predict` itself
    #: returned, so its truncated-mode zeros are intact (see fused_ck)
    _ck_scratch = None

    def predict(self, Q: np.ndarray) -> np.ndarray:
        with _TEL.phase("predict"):
            if _TEL.enabled:
                _TEL.count("elem_updates/predictor", len(Q))
            self._ck_scratch = self.solver.op.predict(
                Q, out=self._ck_scratch)
            return self._ck_scratch

    def update_predictor(self, Q, mask, dt, derivs, Iown) -> None:
        op = self.solver.op
        with _TEL.phase("predict"):
            if _TEL.enabled:
                _TEL.count("elem_updates/predictor", int(mask.sum()))
            new_derivs = op.predict_states(Q[mask], op.star[mask], op.starT[mask])
            derivs[mask] = new_derivs
            Iown[mask] = taylor_integrate(new_derivs, 0.0, dt)

    def corrector(self, I, derivs, dt, t0, active=None,
                  gravity_mask=None, motion_mask=None) -> np.ndarray:
        if _TEL.enabled:
            _TEL.count("elem_updates/corrector",
                       len(I) if active is None else int(active.sum()))
        with _TEL.phase("corrector"):
            return self._corrector(I, derivs, dt, t0, active,
                                   gravity_mask, motion_mask)

    def _corrector(self, I, derivs, dt, t0, active,
                   gravity_mask, motion_mask) -> np.ndarray:
        solver = self.solver
        out = solver.op.apply(I, active)
        solver.gravity.step(derivs, dt, out, face_mask=gravity_mask)
        if solver.motion is not None and (motion_mask is None or motion_mask.any()):
            solver.motion.step(derivs, dt, out, t0=t0, face_mask=motion_mask)
        if solver.fault is not None:
            solver.fault.step(derivs, dt, out, active=active, t0=t0)
        for s in solver.sources:
            if active is None or active[s._elem]:
                s.add(out, t0, dt)
        return out


class JitBackend(SerialBackend):
    """Serial execution with numba-compiled element loops.

    Requests the ``jit`` kernel variant from the spatial operator; when
    numba is not installed the variant resolves to ``fused`` (a one-time
    :class:`RuntimeWarning` is emitted) and the backend runs the fused
    NumPy path — identical results, no compiled loops.
    """

    name = "jit"
    kernel_variant = "jit"

    def describe(self) -> str:
        op = getattr(getattr(self, "solver", None), "op", None)
        if op is not None and op.kernel_variant != "jit":
            return f"jit (fallback: {op.kernel_variant})"
        return self.name


def available_backends() -> tuple[str, ...]:
    return ("serial", "partitioned", "jit")


def make_backend(backend="serial", workers: int | None = None) -> ExecutionBackend:
    """Resolve a backend spec (name or instance) to a backend object.

    ``backend`` may be an :class:`ExecutionBackend` instance (returned
    as-is; ``workers`` must then be ``None``), ``"serial"``,
    ``"partitioned"`` or ``"jit"``.  ``workers`` only applies to the
    partitioned backend (default: 2).
    """
    if isinstance(backend, ExecutionBackend):
        if workers is not None:
            raise ValueError("workers= only applies when backend is given by name")
        return backend
    if backend is None or backend == "serial":
        if workers not in (None, 1):
            raise ValueError("the serial backend runs with exactly one worker")
        return SerialBackend()
    if backend == "jit":
        if workers not in (None, 1):
            raise ValueError("the jit backend runs with exactly one worker")
        return JitBackend()
    if backend == "partitioned":
        from .partitioned import PartitionedBackend

        return PartitionedBackend(workers=2 if workers is None else workers)
    raise ValueError(
        f"unknown backend {backend!r} (available: {', '.join(available_backends())})"
    )
