"""Ensemble worker: execute one member attempt in a child process.

The spawn target (:func:`child_main`) is a plain module-level function —
``multiprocessing`` spawn pickles the :class:`MemberSpec` by value and
resolves this function by qualified name in a fresh interpreter.  Inside
the child, the member runs under the *in-process* supervision PR 1 built
(:class:`~repro.core.resilience.ResilientRunner`: watchdog, rollback,
dt backoff, rotating checkpoints), while the parent supervises the
*process*: every scheduler sync point emits a heartbeat over the queue,
and the terminal state is published as an atomic ``result.json`` whose
SHA-256 state digest lets the chaos tests compare a recovered member
bitwise against its uninterrupted twin.

A worker can die at any instruction (that is the point), so everything it
persists is crash-safe: the per-member run log is ``durable`` (fsync per
record), checkpoints publish atomically, and the result file is written
to a pid-keyed temp name and ``os.replace``'d into place.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
import traceback

import numpy as np

from ..core.health import SimulationDiverged
from ..core.resilience import ResilientRunner
from ..io.checkpoint import capture_state
from ..obs.metrics import get_metrics
from ..obs.runlog import RunLog
from ..sched import HookBus
from .spec import MemberSpec

__all__ = [
    "RESULT_NAME",
    "RUNLOG_NAME",
    "CKPT_DIRNAME",
    "TRACE_NAME",
    "member_paths",
    "state_digest",
    "run_member",
    "load_result",
    "child_main",
]

RESULT_NAME = "result.json"
RUNLOG_NAME = "run.jsonl"
CKPT_DIRNAME = "ckpt"
TRACE_NAME = "trace.json"
#: diagnostic bundles (``*.blackbox.json``) land in the member dir root

#: keys a result file must carry to count as a valid attempt outcome
REQUIRED_RESULT_KEYS = (
    "member_id", "attempt", "status", "digest", "sim_t", "steps", "wall_s",
)


def member_paths(out_dir: str, member_id: str) -> dict:
    """Canonical artifact layout of one member under ``out_dir``."""
    mdir = os.path.join(out_dir, member_id)
    return {
        "dir": mdir,
        "result": os.path.join(mdir, RESULT_NAME),
        "runlog": os.path.join(mdir, RUNLOG_NAME),
        "ckpt_dir": os.path.join(mdir, CKPT_DIRNAME),
        "trace": os.path.join(mdir, TRACE_NAME),
        "blackbox_dir": mdir,
    }


def state_digest(solver, lts=None) -> str:
    """SHA-256 over every time-marching array of the solver state.

    Built from :func:`~repro.io.checkpoint.capture_state` (modal state,
    simulation time, sea surface, fault state, LTS bookkeeping) so two
    runs agree on the digest iff they agree bitwise.
    """
    state = capture_state(solver, lts)
    h = hashlib.sha256()
    for key in sorted(state):
        h.update(key.encode())
        h.update(np.ascontiguousarray(state[key]).tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
def run_member(
    spec: MemberSpec,
    member_dir: str,
    queue=None,
    attempt: int = 1,
    resume: bool = False,
    dt_scale: float = 1.0,
    in_process: bool = False,
) -> dict:
    """Execute one attempt of ``spec``; returns the result dict.

    Runs in a spawned child (via :func:`child_main`) or directly in the
    parent when the supervisor operates in degraded in-process mode.
    ``resume`` restores the newest *readable* checkpoint rotation;
    ``dt_scale`` applies the supervisor's escalated timestep scale.
    ``in_process`` makes injected kill/hang faults raise
    (:class:`~repro.core.health.inject.InjectedWorkerDeath` /
    :class:`~repro.core.health.inject.InjectedHang`) instead of killing
    or stalling the driver itself.

    With ``spec.metrics`` (the default) the member enables the typed
    metric registry for the attempt: compact snapshots ride on every
    heartbeat queue message, land as durable ``metrics`` run-log records,
    and the final snapshot is stored in the result file.  With
    ``spec.trace`` the member records a span timeline and exports
    ``trace.json`` (wall-clock anchored, so ``obs-trace --merge`` can
    align it with its siblings).  Both registries are process-global, so
    they are reset per attempt and disabled on the way out — degraded
    in-process mode runs members sequentially in one interpreter and must
    not leak one member's metrics into the next.
    """
    met = get_metrics()
    tel = None
    if spec.metrics:
        met.reset()
        met.enable()
    if spec.trace:
        from ..obs.telemetry import get_telemetry

        tel = get_telemetry()
        tel.reset()
        tel.enable(trace=True)
    try:
        return _run_member_attempt(
            spec, member_dir, queue, attempt, resume, dt_scale, in_process,
            met if spec.metrics else None, tel,
        )
    finally:
        if spec.metrics:
            met.disable()
        if tel is not None:
            tel.disable()


def _run_member_attempt(spec, member_dir, queue, attempt, resume, dt_scale,
                        in_process, met, tel) -> dict:
    os.makedirs(member_dir, exist_ok=True)
    paths = {
        "dir": member_dir,
        "result": os.path.join(member_dir, RESULT_NAME),
        "runlog": os.path.join(member_dir, RUNLOG_NAME),
        "ckpt_dir": os.path.join(member_dir, CKPT_DIRNAME),
        "trace": os.path.join(member_dir, TRACE_NAME),
        "blackbox_dir": member_dir,
    }
    wall0 = time.perf_counter()
    pid = os.getpid()

    def tell(kind: str, **fields):
        if queue is not None:
            fields.update(kind=kind, member=spec.member_id, attempt=attempt,
                          pid=pid, wall=time.time())
            try:
                queue.put_nowait(fields)
            except Exception:
                pass  # a full/broken queue must not kill the member

    runlog = RunLog(paths["runlog"], durable=True)
    handle = spec.build()
    solver, lts = handle.solver, handle.lts

    runner = ResilientRunner(
        solver,
        lts=lts,
        checkpoint_every=spec.checkpoint_every,
        checkpoint_dir=paths["ckpt_dir"],
        keep=spec.keep_checkpoints,
        max_retries=spec.max_retries,
        injector=spec.injector,
        verbose=False,
        runlog=runlog,
        blackbox_dir=member_dir,
    )
    runner.dt_scale = float(dt_scale)
    # every bundle this attempt dumps is attributable to it: the
    # supervisor only trusts a bundle whose context names the attempt
    runner.bundle_context = {"member": spec.member_id, "attempt": attempt}

    resumed_from = None
    if resume:
        # fall back past corrupt rotations: a killed worker must never
        # poison its own resume (CheckpointManager.restore_latest skips
        # unreadable archives with a warning)
        meta = runner.manager.restore_latest()
        if meta is not None:
            resumed_from = runner.manager.latest()
            try:
                runner.step_count = int(float(meta.get("step", 0)))
            except (TypeError, ValueError):
                runner.step_count = 0
            runner.watchdog.reset()
            runlog.emit("resume", path=resumed_from, step=runner.step_count,
                        sim_t=solver.t)

    runlog.emit("manifest", **_member_manifest(spec, solver, attempt,
                                               resumed_from))
    tell("started", sim_t=solver.t, resumed=resumed_from is not None)

    hooks = HookBus()
    beat_state = {"n": 0, "wall": time.perf_counter(), "step": 0}

    @hooks.on_sync
    def heartbeat(s):
        # process-level faults fire before the heartbeat goes out: a hung
        # worker must look hung, not healthy
        if spec.injector is not None:
            spec.injector.process_gate(runner.step_count, attempt,
                                       simulate=in_process)
        beat_state["n"] += 1
        if beat_state["n"] % spec.heartbeat_every:
            return
        now = time.perf_counter()
        d_wall = max(now - beat_state["wall"], 1e-9)
        rate = (runner.step_count - beat_state["step"]) / d_wall
        beat_state["wall"], beat_state["step"] = now, runner.step_count
        if met is not None:
            snap = met.compact()
            tell("heartbeat", step=runner.step_count, sim_t=s.t,
                 metrics=snap)
            runlog.emit("metrics", step=runner.step_count, sim_t=float(s.t),
                        metrics=snap)
        else:
            tell("heartbeat", step=runner.step_count, sim_t=s.t)
        runlog.emit("heartbeat", step=runner.step_count, sim_t=s.t,
                    dt=solver.dt * runner.dt_scale,
                    energy=float(solver.energy()), wall_rate=rate)

    status = "completed"
    diverged = None
    bundle = None
    try:
        runner.run(spec.t_end, hooks=hooks)
    except SimulationDiverged as exc:
        # in-process retries exhausted: report, don't crash — the
        # supervisor decides whether to escalate or quarantine
        status = "diverged"
        diverged = str(exc)
        bundle = exc.bundle if exc.bundle is not None else runner.last_bundle
    except BaseException as exc:
        # anything else kills the attempt: dump a crash bundle best
        # effort (the supervisor collects it from the member dir), then
        # let the failure propagate — exit code 3 / simulated-fault path
        try:
            runner.dump_exception(exc)
        except Exception:
            pass
        raise
    wall_s = time.perf_counter() - wall0
    result = {
        "member_id": spec.member_id,
        "attempt": attempt,
        "status": status,
        "digest": state_digest(solver, lts),
        "sim_t": float(solver.t),
        "steps": int(runner.step_count),
        "wall_s": wall_s,
        "dt_scale": float(runner.dt_scale),
        "rollbacks": int(runner.rollbacks),
        "resumed_from": resumed_from,
        "diverged": diverged,
        # only a diverged attempt carries its bundle: a clean (or
        # recovered-on-retry) attempt must not point at a stale dump
        "bundle": bundle,
        "summary": handle.summarize(solver) if handle.summarize else {},
        "metrics": met.compact() if met is not None else None,
        "paths": paths,
    }
    if tel is not None:
        from ..obs.trace import export_chrome_trace

        try:
            export_chrome_trace(
                paths["trace"], tel.trace_snapshot(),
                metadata={"member": spec.member_id, "attempt": attempt},
            )
        except OSError:
            pass  # a failed trace export must not fail the member
    _publish_result(paths["result"], result, spec, attempt)
    if met is not None:
        # final snapshot into the durable log: the last on-disk metrics
        # record agrees exactly with what the supervisor aggregates
        runlog.emit("metrics", step=runner.step_count, sim_t=float(solver.t),
                    metrics=result["metrics"])
    runlog.emit("run_end", steps=runner.step_count, wall_s=wall_s,
                phases={}, counters={})
    runlog.close()
    if met is not None:
        tell("done", status=status, sim_t=solver.t, metrics=result["metrics"])
    else:
        tell("done", status=status, sim_t=solver.t)
    return result


def _member_manifest(spec, solver, attempt, resumed_from) -> dict:
    from ..obs.runlog import run_manifest

    return run_manifest(
        solver,
        config={
            "member_id": spec.member_id,
            "builder": spec.builder,
            "perturb": spec.perturb,
            "seed": spec.seed,
            "t_end": spec.t_end,
            "attempt": attempt,
        },
        resumed=resumed_from is not None,
    )


def _publish_result(path: str, result: dict, spec, attempt: int) -> None:
    """Atomically publish the result file (or corrupt it, under injection)."""
    text = json.dumps(result, indent=2, sort_keys=True) + "\n"
    if spec.injector is not None and spec.injector.result_gate(attempt):
        # injected torn write: garbage prefix, no atomic publish — exactly
        # what a worker dying mid-write through a non-atomic path leaves
        with open(path, "w", encoding="utf-8") as f:
            f.write(text[: max(8, len(text) // 3)].rstrip("}\n") + "\x00garbage")
        return
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path),
        prefix=f".{RESULT_NAME}.{os.getpid()}.", suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_result(path: str) -> dict | None:
    """Read and validate a member result file; ``None`` when unusable.

    A missing, torn, or garbled file (the corrupt-result fault, a death
    mid-write) yields ``None`` — the supervisor treats that attempt as
    failed and retries.
    """
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    if any(k not in data for k in REQUIRED_RESULT_KEYS):
        return None
    return data


# ----------------------------------------------------------------------
def child_main(spec: MemberSpec, member_dir: str, queue, attempt: int,
               resume: bool, dt_scale: float) -> None:
    """Spawn entry point: run the attempt, exit 0 on success.

    Any unhandled exception is reported over the queue (best effort) and
    exits with status 3; a watchdog-diagnosed divergence still exits 0 —
    it published a valid result file carrying ``status="diverged"`` and
    the supervisor escalates from there.  ``faulthandler`` is armed so a
    native crash (segfault, abort) still prints every thread's stack to
    stderr — the last-resort complement to the diagnostic bundles the
    Python-level paths dump.
    """
    try:
        import faulthandler

        faulthandler.enable()
    except Exception:
        pass
    try:
        run_member(spec, member_dir, queue=queue, attempt=attempt,
                   resume=resume, dt_scale=dt_scale)
    except BaseException as exc:  # noqa: B036 - report then re-raise/exit
        try:
            if queue is not None:
                queue.put_nowait({
                    "kind": "error", "member": spec.member_id,
                    "attempt": attempt, "pid": os.getpid(),
                    "wall": time.time(),
                    "error": f"{type(exc).__name__}: {exc}",
                })
        except Exception:
            pass
        traceback.print_exc(file=sys.stderr)
        os._exit(3)
