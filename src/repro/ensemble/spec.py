"""Ensemble member specifications and the scenario-builder registry.

A :class:`MemberSpec` is the *complete, picklable* description of one
ensemble member: which registered scenario builder to instantiate, the
perturbation applied to it (source location, slip, friction, bathymetry —
the axes of the paper's Palu hazard ensembles), the member's seed, and the
run/supervision knobs.  Specs cross the ``multiprocessing`` spawn boundary
by value, so they reference builders *by name* through a module-level
registry rather than carrying closures; a freshly spawned interpreter
resolves the name again after importing :mod:`repro.ensemble`.

Builders follow Devito's memoized build-once/replay-per-member operator
idiom (SNIPPETS.md §1): the expensive, member-invariant machinery (basis
tables, operator plan compilation) is shared through the existing
fingerprint-keyed plan cache, so instantiating member ``k+1`` of the same
mesh family is much cheaper than member ``0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "MemberSpec",
    "ScenarioHandle",
    "register_builder",
    "get_builder",
    "available_builders",
]


@dataclass
class ScenarioHandle:
    """What a scenario builder returns: the solver plus optional extras.

    ``lts`` is a :class:`~repro.core.lts.LocalTimeStepping` wrapping the
    same solver (clustered marching) and ``summarize`` an optional
    ``solver -> dict`` of scenario-level result metrics (peak sea-surface
    height, receiver extrema, ...) stored in the member result file.
    """

    solver: object
    lts: object | None = None
    summarize: object | None = None


#: name -> builder(perturb, seed, backend=..., workers=...) -> ScenarioHandle
_BUILDERS: dict = {}


def register_builder(name: str, fn=None):
    """Register ``fn`` as a scenario builder (also usable as a decorator).

    Builders must be *importable* module-level callables: the registry is
    re-populated inside spawned worker processes by importing this module,
    not by pickling the callable itself.
    """
    if fn is None:
        def deco(f):
            _BUILDERS[name] = f
            return f
        return deco
    _BUILDERS[name] = fn
    return fn


def get_builder(name: str):
    if name not in _BUILDERS:
        # safety net for direct `repro.ensemble.spec` imports: the
        # built-ins register on package import
        from . import builders  # noqa: F401
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown scenario builder {name!r} "
            f"(registered: {', '.join(sorted(_BUILDERS)) or 'none'})"
        )
    return _BUILDERS[name]


def available_builders() -> list[str]:
    return sorted(_BUILDERS)


@dataclass
class MemberSpec:
    """One ensemble member: scenario builder name + perturbation + seed.

    Everything a worker process needs to execute the member is in here
    (the spec is pickled to the child on spawn); everything the
    *supervisor* needs to retry it deterministically is here too —
    re-running the same spec produces a bitwise-identical trajectory,
    which is what lets the chaos tests compare recovered members against
    their uninterrupted twins.
    """

    member_id: str
    builder: str = "quickstart"
    #: builder-specific perturbation (config-field overrides)
    perturb: dict = field(default_factory=dict)
    seed: int = 0
    t_end: float = 0.5
    #: simulated seconds between on-disk checkpoints (enables mid-run
    #: resume after a worker death); ``None`` checkpoints only at the end
    checkpoint_every: float | None = None
    backend: str = "serial"
    workers: int | None = None
    #: rotating checkpoints kept per member
    keep_checkpoints: int = 3
    #: in-process watchdog retries (rollback + dt backoff) per segment;
    #: distinct from the *supervisor's* process-level RetryPolicy
    max_retries: int = 2
    #: emit a heartbeat to the supervisor every N scheduler sync points
    heartbeat_every: int = 1
    #: enable the typed metric registry for this member: compact snapshots
    #: piggyback on heartbeat queue messages and land as durable
    #: ``metrics`` run-log records (the fleet aggregator's feed)
    metrics: bool = True
    #: record a span timeline and export ``trace.json`` into the member
    #: dir — the per-member lane ``obs-trace --merge`` stitches together
    trace: bool = False
    #: optional FaultInjector (state/dt/io faults run through the
    #: in-process ResilientRunner; kill/hang/corrupt-result faults are
    #: process-level and handled by the worker/supervisor pair)
    injector: object | None = None

    def __post_init__(self):
        if not self.member_id:
            raise ValueError("member_id must be a non-empty string")
        if self.t_end <= 0:
            raise ValueError("t_end must be positive")
        if self.heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1")

    def build(self) -> ScenarioHandle:
        """Instantiate the member's scenario (resolves the builder name)."""
        handle = get_builder(self.builder)(
            dict(self.perturb), int(self.seed),
            backend=self.backend, workers=self.workers,
        )
        if not isinstance(handle, ScenarioHandle):
            raise TypeError(
                f"builder {self.builder!r} returned {type(handle).__name__}, "
                "expected ScenarioHandle"
            )
        return handle

    def without_injector(self) -> "MemberSpec":
        """A copy of this spec with fault injection disabled — the
        uninterrupted twin a recovered member is compared against."""
        return replace(self, injector=None)
