"""Fault-tolerant multi-process ensemble execution.

The paper's Palu use case becomes an early-warning capability only when
thousands of perturbed scenarios (source location, slip, friction,
bathymetry) run unattended and survive worker failures.  This package is
that driver:

* :mod:`repro.ensemble.spec` — picklable :class:`MemberSpec` (scenario
  builder name + perturbation + seed) and the builder registry;
* :mod:`repro.ensemble.builders` — built-in quickstart / Scenario-A /
  Palu member builders;
* :mod:`repro.ensemble.worker` — the spawn entry point: one attempt per
  process incarnation, heartbeats over a queue, durable per-member run
  logs, atomic digested result files;
* :mod:`repro.ensemble.retry` — the escalation ladder (exponential
  backoff with deterministic jitter → checkpoint-resume → dt-scale
  reduction → quarantine);
* :mod:`repro.ensemble.supervisor` — the parent-side supervision tree:
  heartbeat-timeout hang detection, exit-code death detection, result
  validation, graceful degradation to in-process execution;
* :mod:`repro.ensemble.result` — per-member status records and the
  always-complete :class:`EnsembleResult`.

See README "Ensemble runs" and ``python -m repro ensemble --help``.
"""

from . import builders  # noqa: F401  (registers the built-in scenarios)
from .result import STATUSES, EnsembleResult, MemberResult
from .retry import RetryDecision, RetryPolicy
from .spec import (
    MemberSpec,
    ScenarioHandle,
    available_builders,
    get_builder,
    register_builder,
)
from .supervisor import Supervisor
from .worker import load_result, member_paths, run_member, state_digest

__all__ = [
    "MemberSpec",
    "ScenarioHandle",
    "register_builder",
    "get_builder",
    "available_builders",
    "RetryPolicy",
    "RetryDecision",
    "Supervisor",
    "MemberResult",
    "EnsembleResult",
    "STATUSES",
    "run_member",
    "member_paths",
    "state_digest",
    "load_result",
]
