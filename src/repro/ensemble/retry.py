"""Retry policy for failed ensemble members: backoff, escalation, strikes.

A worker death (kill -9, OOM), hang (heartbeat timeout) or corrupt result
is not a reason to lose the member — it is a reason to try again, more
carefully each time.  :class:`RetryPolicy` encodes the escalation ladder
the ISSUE specifies:

1. **exponential backoff with jitter** — retry delays grow
   ``base * factor**(strike-1)``, each multiplied by a *deterministic*
   jitter drawn from the member's seed (no wall-clock entropy: replaying
   an ensemble replays its schedule), so simultaneous failures do not
   restampede the machine;
2. **checkpoint-resume** — from the first retry on, the member resumes
   from its newest *readable* checkpoint rotation instead of restarting
   from t=0 (:meth:`CheckpointManager.restore_latest` skips corrupt
   archives);
3. **dt_scale reduction** — from strike ``dt_scale_after`` on, the
   member's timestep is scaled down by ``dt_backoff`` per further strike,
   the same bounded backoff :class:`ResilientRunner` applies in-process;
4. **quarantine** — after ``max_retries`` strikes the member is retired
   with its full attempt history as a diagnosis, and the rest of the
   fleet keeps running.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "RetryDecision"]


@dataclass(frozen=True)
class RetryDecision:
    """What the supervisor does about one failed attempt."""

    #: relaunch the member (False = quarantine)
    retry: bool
    #: seconds to wait before the relaunch
    delay_s: float = 0.0
    #: resume from the member's newest readable checkpoint
    resume: bool = False
    #: timestep multiplier for the relaunch (1.0 = nominal)
    dt_scale: float = 1.0


@dataclass
class RetryPolicy:
    """Configurable escalation ladder (see module docstring)."""

    #: retries allowed after the first attempt; strike N+1 quarantines
    max_retries: int = 3
    #: base backoff delay in seconds (strike 1)
    backoff_base: float = 0.25
    #: growth factor per strike
    backoff_factor: float = 2.0
    #: relative jitter amplitude: delay *= 1 + jitter * u,  u ~ U[0, 1)
    jitter: float = 0.25
    #: hard ceiling on any single delay
    max_delay_s: float = 30.0
    #: strike from which dt is scaled down (1-based)
    dt_scale_after: int = 2
    #: per-strike timestep multiplier once escalated
    dt_backoff: float = 0.5
    #: floor for the escalated timestep scale
    min_dt_scale: float = 0.125

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < self.dt_backoff < 1.0:
            raise ValueError("dt_backoff must be in (0, 1)")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def decide(self, strikes: int, seed: int = 0) -> RetryDecision:
        """Decision after the ``strikes``-th failure (1-based) of a member.

        ``seed`` (the member's seed) keeps the jitter deterministic per
        (member, strike) pair.
        """
        if strikes < 1:
            raise ValueError("strikes is 1-based")
        if strikes > self.max_retries:
            return RetryDecision(retry=False)
        u = random.Random((int(seed) << 16) ^ strikes).random()
        delay = self.backoff_base * self.backoff_factor ** (strikes - 1)
        delay = min(delay * (1.0 + self.jitter * u), self.max_delay_s)
        n_scaled = max(0, strikes - self.dt_scale_after + 1)
        dt_scale = max(self.min_dt_scale, self.dt_backoff ** n_scaled)
        return RetryDecision(retry=True, delay_s=delay, resume=True,
                             dt_scale=dt_scale)
