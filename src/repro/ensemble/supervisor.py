"""The ensemble supervisor: spawn, watch, retry, quarantine — never crash.

:class:`Supervisor` shards :class:`~repro.ensemble.spec.MemberSpec`\\ s
across OS worker processes (``multiprocessing`` spawn) and keeps the
fleet healthy under real failures:

* **heartbeats** — every worker reports per-sync-point liveness over a
  shared queue; a member that stops beating for ``member_timeout``
  seconds is declared hung, SIGKILLed, and retried;
* **deaths** — a nonzero or signal exit code (kill -9, OOM, segfault) is
  a strike; the member retries under the
  :class:`~repro.ensemble.retry.RetryPolicy` escalation ladder
  (backoff-with-jitter → checkpoint-resume → dt-scale reduction);
* **corrupt results** — a worker that exits 0 without publishing a valid
  result file (torn write, stale attempt) is treated exactly like a
  death;
* **quarantine** — a member that exhausts its strikes is retired with its
  full attempt history as a diagnosis; the rest of the fleet keeps
  running and the driver still terminates with a complete
  :class:`~repro.ensemble.result.EnsembleResult`.

Graceful degradation goes one level further: when process spawning
itself is unavailable (restricted containers, ``workers=0``), the
supervisor falls back to in-process execution of every member — no
parallelism and no true kill/hang isolation, but the same retry ladder
and the same complete result contract.

Supervisor-level events (``member_start`` / ``member_retry`` /
``member_quarantined`` / ``member_end`` / ``ensemble_summary``) stream
through :class:`~repro.obs.runlog.RunLog` alongside each member's own
durable per-member log.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import queue as queue_mod
import time

from ..core.health.inject import InjectedHang, InjectedWorkerDeath
from ..obs.blackbox import (
    BUNDLE_SUFFIX,
    build_bundle,
    classify_bundle,
    find_bundles,
    load_bundle,
    write_bundle,
)
from ..obs.fleet import FleetAggregator, read_jsonl_tolerant
from ..obs.runlog import RunLog
from .result import EnsembleResult, MemberResult
from .retry import RetryPolicy
from .spec import MemberSpec
from .worker import child_main, load_result, member_paths, run_member

__all__ = ["Supervisor"]

ENSEMBLE_LOG = "ensemble.jsonl"
ENSEMBLE_RESULT = "ensemble.json"

#: seconds between periodic fleet.prom/fleet.jsonl exports mid-run
METRICS_EXPORT_EVERY = 2.0


class _Member:
    """Supervision bookkeeping for one member (parent-side only)."""

    __slots__ = (
        "spec", "paths", "proc", "attempts", "strikes", "history",
        "next_start", "resume", "dt_scale", "last_beat", "first_wall",
        "last_error", "result", "last_metrics",
    )

    def __init__(self, spec: MemberSpec, out_dir: str):
        self.spec = spec
        self.paths = member_paths(out_dir, spec.member_id)
        self.proc = None
        self.attempts = 0
        self.strikes = 0
        self.history: list[dict] = []
        self.next_start = 0.0  # monotonic gate for backoff delays
        self.resume = False
        self.dt_scale = 1.0
        self.last_beat = 0.0
        self.first_wall = None
        self.last_error = None
        self.result: MemberResult | None = None
        self.last_metrics: dict | None = None  # compact snapshot off the wire

    @property
    def done(self) -> bool:
        return self.result is not None


class Supervisor:
    """Fault-tolerant multi-process driver for an ensemble of members.

    Parameters
    ----------
    specs:
        The ensemble members.  Member ids must be unique.
    workers:
        Concurrent worker processes; ``0`` forces degraded in-process
        execution (no spawn).
    retry:
        The process-level :class:`RetryPolicy` (strikes, backoff,
        escalation).
    member_timeout:
        Seconds without a heartbeat before a running member is declared
        hung and killed.
    out_dir:
        Root for all artifacts: ``<out_dir>/<member_id>/`` per member,
        plus the ensemble run log and result JSON.
    runlog:
        Optional shared :class:`RunLog`; by default the supervisor opens
        ``<out_dir>/ensemble.jsonl`` itself.
    start_method:
        ``multiprocessing`` start method (default ``spawn``: a clean
        interpreter per attempt, no inherited solver state).
    """

    def __init__(
        self,
        specs,
        workers: int = 2,
        retry: RetryPolicy | None = None,
        member_timeout: float = 120.0,
        out_dir: str = "out/ensemble",
        runlog: RunLog | None = None,
        start_method: str = "spawn",
        poll_interval: float = 0.05,
        verbose: bool = False,
    ):
        specs = list(specs)
        ids = [s.member_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("member ids must be unique")
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if member_timeout <= 0:
            raise ValueError("member_timeout must be positive (seconds)")
        self.specs = specs
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.member_timeout = member_timeout
        self.out_dir = out_dir
        self.start_method = start_method
        self.poll_interval = poll_interval
        self.verbose = verbose
        self._runlog = runlog
        self._owns_runlog = runlog is None
        #: fleet-level metric aggregation (fed by heartbeat snapshots and
        #: result files; exports fleet.prom + fleet.jsonl under out_dir)
        self.aggregator = FleetAggregator(out_dir=out_dir)
        self._metrics_on = any(getattr(s, "metrics", False) for s in specs)
        self._last_export = 0.0

    # ------------------------------------------------------------------
    def run(self) -> EnsembleResult:
        """Run the whole ensemble to a terminal state; never raises for
        member failures (only for driver-level misconfiguration)."""
        os.makedirs(self.out_dir, exist_ok=True)
        log = self._runlog
        if log is None:
            log = RunLog(os.path.join(self.out_dir, ENSEMBLE_LOG))
        wall0 = time.perf_counter()
        members = [_Member(s, self.out_dir) for s in self.specs]
        try:
            if self.workers == 0:
                self._run_in_process(members, log)
            else:
                self._run_multiprocess(members, log)
        finally:
            wall_s = time.perf_counter() - wall0
            result = EnsembleResult(
                members=[m.result for m in members],
                wall_s=wall_s,
                workers=max(self.workers, 1),
                runlog_path=log.path,
            )
            c = result.counts
            log.emit("ensemble_summary", members=len(members), ok=c["ok"],
                     recovered=c["recovered"], quarantined=c["quarantined"],
                     wall_s=wall_s)
            self._export_metrics(force=True)
            if self._owns_runlog:
                log.close()
        result.save(os.path.join(self.out_dir, ENSEMBLE_RESULT))
        if self.verbose:
            for line in result.lines():
                print(f"[ensemble] {line}")
        return result

    # -- multi-process mode --------------------------------------------
    def _run_multiprocess(self, members, log) -> None:
        _ensure_child_import_path()
        ctx = multiprocessing.get_context(self.start_method)
        beats = ctx.Queue()
        active: list[_Member] = []
        pending = list(members)
        try:
            while pending or active:
                now = time.monotonic()
                # launch members whose backoff gate has passed
                while pending and len(active) < self.workers:
                    due = [m for m in pending if m.next_start <= now]
                    if not due:
                        break
                    m = due[0]
                    pending.remove(m)
                    if self._launch(m, ctx, beats, log):
                        active.append(m)
                    elif not m.done:
                        # spawn unavailable: degrade this member in-process
                        self._attempt_in_process(m, log)
                        if not m.done:
                            pending.append(m)
                self._drain(beats, members)
                now = time.monotonic()
                for m in list(active):
                    if m.proc.exitcode is not None:
                        active.remove(m)
                        m.proc.join()
                        self._classify_exit(m, log)
                    elif now - m.last_beat > self.member_timeout:
                        m.proc.kill()
                        m.proc.join()
                        active.remove(m)
                        self._strike(
                            m, log,
                            f"heartbeat_timeout after {self.member_timeout:g}s",
                        )
                    else:
                        continue
                    if not m.done:  # retry scheduled: back into the pool
                        pending.append(m)
                self._export_metrics()
                if pending and not active:
                    # everyone is backing off; sleep until the next gate
                    gate = min(m.next_start for m in pending)
                    time.sleep(max(0.0, min(gate - time.monotonic(), 0.5)))
                else:
                    time.sleep(self.poll_interval)
        finally:
            for m in members:
                if m.proc is not None and m.proc.exitcode is None:
                    m.proc.kill()
                    m.proc.join()
            beats.close()
            beats.join_thread()

    def _launch(self, m: _Member, ctx, beats, log) -> bool:
        m.attempts += 1
        if m.first_wall is None:
            m.first_wall = time.perf_counter()
        try:
            proc = ctx.Process(
                target=child_main,
                args=(m.spec, m.paths["dir"], beats, m.attempts, m.resume,
                      m.dt_scale),
                daemon=True,
            )
            proc.start()
        except (OSError, ValueError) as exc:
            m.attempts -= 1
            if self.verbose:
                print(f"[ensemble] spawn failed ({exc}); degrading "
                      f"{m.spec.member_id} to in-process execution")
            return False
        m.proc = proc
        m.last_beat = time.monotonic()
        self.aggregator.update(m.spec.member_id, None, state="running")
        log.emit("member_start", member=m.spec.member_id, attempt=m.attempts,
                 scenario=m.spec.builder, pid=proc.pid,
                 metrics=self._brief(m))
        if self.verbose:
            print(f"[ensemble] {m.spec.member_id}: attempt {m.attempts} "
                  f"(pid {proc.pid}, resume={m.resume}, "
                  f"dt_scale={m.dt_scale:g})")
        return True

    def _drain(self, beats, members) -> None:
        by_id = {m.spec.member_id: m for m in members}
        while True:
            try:
                msg = beats.get_nowait()
            except (queue_mod.Empty, OSError, EOFError):
                return
            m = by_id.get(msg.get("member"))
            if m is None:
                continue
            m.last_beat = time.monotonic()
            snap = msg.get("metrics")
            if isinstance(snap, dict):
                m.last_metrics = snap
            self.aggregator.update(m.spec.member_id, snap
                                   if isinstance(snap, dict) else None,
                                   wall=msg.get("wall"))
            if msg.get("kind") == "error":
                m.last_error = msg.get("error")

    def _classify_exit(self, m: _Member, log) -> None:
        code = m.proc.exitcode
        if code == 0:
            result = load_result(m.paths["result"])
            if result is None or result.get("attempt") != m.attempts:
                # exit 0 but no usable result for THIS attempt: a torn or
                # stale publish — strike it like a death
                self._strike(m, log, "corrupt_result")
            elif result.get("status") == "diverged":
                self._strike(m, log, f"diverged: {result.get('diverged')}")
            else:
                self._succeed(m, log, result)
        elif code < 0:
            self._strike(m, log, f"killed by signal {-code}")
        else:
            reason = f"exited with status {code}"
            if m.last_error:
                reason += f" ({m.last_error})"
            self._strike(m, log, reason)

    # -- fleet metrics -------------------------------------------------
    def _brief(self, m: _Member) -> dict:
        """The member's last metrics digest (step/sim_t/energy drift) for
        embedding in supervisor run-log events — a quarantine record must
        be diagnosable from the JSONL log alone."""
        return self.aggregator.member_brief(m.spec.member_id)

    def _export_metrics(self, force: bool = False) -> None:
        """Write fleet.prom + fleet.jsonl (rate-limited unless forced)."""
        if not self._metrics_on or not self.aggregator.members:
            return
        now = time.monotonic()
        if not force and now - self._last_export < METRICS_EXPORT_EVERY:
            return
        self._last_export = now
        try:
            self.aggregator.export()
        except OSError:
            pass  # an unwritable exporter must never take down the fleet

    # -- degraded in-process mode --------------------------------------
    class _InProcessBeats:
        """Queue shim for degraded mode: the worker's ``tell()`` messages
        feed the aggregator directly, so supervisor events carry metric
        briefs and ``fleet.prom`` stays live without a process boundary."""

        def __init__(self, supervisor, member):
            self._sup = supervisor
            self._m = member

        def put_nowait(self, msg: dict) -> None:
            snap = msg.get("metrics")
            if isinstance(snap, dict):
                self._m.last_metrics = snap
            self._sup.aggregator.update(
                self._m.spec.member_id,
                snap if isinstance(snap, dict) else None,
                wall=msg.get("wall"))

    def _run_in_process(self, members, log) -> None:
        for m in members:
            while not m.done:
                gate = m.next_start - time.monotonic()
                if gate > 0:
                    time.sleep(gate)
                self._attempt_in_process(m, log)
                self._export_metrics()

    def _attempt_in_process(self, m: _Member, log) -> None:
        m.attempts += 1
        if m.first_wall is None:
            m.first_wall = time.perf_counter()
        self.aggregator.update(m.spec.member_id, None, state="running")
        log.emit("member_start", member=m.spec.member_id, attempt=m.attempts,
                 scenario=m.spec.builder, pid=os.getpid(),
                 metrics=self._brief(m))
        # each attempt gets a fresh spec copy, exactly as a spawned child
        # would: the injector's per-process `fired` counters must not leak
        # across incarnations (a persistent fault re-fires every attempt)
        spec = copy.deepcopy(m.spec)
        try:
            result = run_member(
                spec, m.paths["dir"], queue=self._InProcessBeats(self, m),
                attempt=m.attempts, resume=m.resume, dt_scale=m.dt_scale,
                in_process=True,
            )
        except InjectedWorkerDeath as exc:
            self._strike(m, log, f"killed (simulated): {exc}")
            return
        except InjectedHang as exc:
            self._strike(m, log, f"heartbeat_timeout (simulated): {exc}")
            return
        except Exception as exc:  # graceful degradation: never crash
            self._strike(m, log, f"{type(exc).__name__}: {exc}")
            return
        if result.get("status") == "diverged":
            self._strike(m, log, f"diverged: {result.get('diverged')}")
        else:
            self._succeed(m, log, result)

    # -- black-box forensics -------------------------------------------
    def _collect_bundle(self, m: _Member, reason: str):
        """Bundle path + document diagnosing this attempt's failure.

        Prefers a bundle the worker itself dumped *for this attempt*
        (divergence / unhandled exception); a process-level death leaves
        none, so the supervisor synthesizes one from what it can still
        see: the strike reason, the last heartbeat metrics and the tail
        of the member's durable run log as the ring.  Returns
        ``(path, doc)`` with ``path`` possibly ``None`` when even the
        synthesized dump cannot be written.
        """
        mdir = m.paths["dir"]
        for path in reversed(find_bundles(mdir)):
            try:
                doc = load_bundle(path)
            except (OSError, ValueError):
                continue
            if (doc.get("context") or {}).get("attempt") == m.attempts:
                return path, doc
        # no worker-side bundle for this attempt: synthesize one
        ring = [dict(rec, kind=rec.get("event", "record"))
                for rec in read_jsonl_tolerant(m.paths["runlog"])[-40:]]
        doc = build_bundle(
            kind="supervisor",
            reason=reason,
            ring=ring,
            context={"member": m.spec.member_id, "attempt": m.attempts},
            metrics=m.last_metrics,
            extra={"exit": reason, "last_error": m.last_error},
        )
        path = os.path.join(
            mdir, f"supervisor-a{m.attempts:02d}{BUNDLE_SUFFIX}")
        try:
            os.makedirs(mdir, exist_ok=True)
            write_bundle(path, doc)
        except OSError:
            path = None  # classification still works off the document
        return path, doc

    # -- strike / succeed / quarantine ----------------------------------
    def _strike(self, m: _Member, log, reason: str) -> None:
        m.strikes += 1
        bundle, bundle_doc = self._collect_bundle(m, reason)
        verdict = classify_bundle(bundle_doc)
        decision = self.retry.decide(m.strikes, seed=m.spec.seed)
        entry = {
            "attempt": m.attempts,
            "reason": reason,
            "delay_s": decision.delay_s,
            "resume": decision.resume,
            "dt_scale": decision.dt_scale,
            "bundle": bundle,
            "verdict": verdict["verdict"],
        }
        m.history.append(entry)
        if decision.retry:
            m.resume = decision.resume
            m.dt_scale = decision.dt_scale
            m.next_start = time.monotonic() + decision.delay_s
            self.aggregator.update(m.spec.member_id, None, state="retrying")
            log.emit("member_retry", member=m.spec.member_id,
                     attempt=m.attempts, reason=reason,
                     delay_s=decision.delay_s, resume=decision.resume,
                     dt_scale=decision.dt_scale, bundle=bundle,
                     verdict=verdict["verdict"], metrics=self._brief(m))
            if self.verbose:
                print(f"[ensemble] {m.spec.member_id}: {reason} — retry "
                      f"{m.strikes}/{self.retry.max_retries} in "
                      f"{decision.delay_s:.2f}s")
        else:
            # the classifier verdict replaces the free-text diagnosis:
            # a quarantine record must answer *what class of fault* this
            # was, not just replay the last strike string
            evidence = verdict["evidence"][0] if verdict["evidence"] else reason
            diagnosis = (
                f"{verdict['verdict']} after {m.attempts} attempt(s): "
                f"{evidence}"
            )
            wall = time.perf_counter() - m.first_wall
            m.result = MemberResult(
                member_id=m.spec.member_id, status="quarantined",
                attempts=m.attempts, wall_s=wall, dt_scale=m.dt_scale,
                history=m.history, diagnosis=diagnosis,
                verdict=verdict["verdict"], bundle=bundle, paths=m.paths,
            )
            self.aggregator.update(m.spec.member_id, None,
                                   state="quarantined")
            log.emit("member_quarantined", member=m.spec.member_id,
                     attempts=m.attempts, diagnosis=diagnosis,
                     verdict=verdict["verdict"], bundle=bundle,
                     history=m.history, metrics=self._brief(m))
            log.emit("member_end", member=m.spec.member_id,
                     status="quarantined", attempts=m.attempts, wall_s=wall,
                     metrics=self._brief(m))
            if self.verbose:
                print(f"[ensemble] {m.spec.member_id}: {diagnosis}")

    def _succeed(self, m: _Member, log, result: dict) -> None:
        wall = time.perf_counter() - m.first_wall
        status = "ok" if m.strikes == 0 else "recovered"
        # verdict/bundle stay None even after earlier failed attempts: a
        # member that recovered on retry must not carry a stale bundle
        # path (the per-attempt dumps remain in its history entries)
        m.result = MemberResult(
            member_id=m.spec.member_id, status=status, attempts=m.attempts,
            wall_s=wall, dt_scale=float(result.get("dt_scale", m.dt_scale)),
            digest=result.get("digest"), summary=result.get("summary", {}),
            history=m.history, verdict=None, bundle=None, paths=m.paths,
        )
        # the result file carries the member's final compact snapshot —
        # authoritative over whatever heartbeat arrived last
        snap = result.get("metrics")
        if isinstance(snap, dict):
            m.last_metrics = snap
        self.aggregator.update(m.spec.member_id,
                               snap if isinstance(snap, dict) else None,
                               state=status)
        log.emit("member_end", member=m.spec.member_id, status=status,
                 attempts=m.attempts, wall_s=wall, metrics=self._brief(m))
        if self.verbose:
            print(f"[ensemble] {m.spec.member_id}: {status} after "
                  f"{m.attempts} attempt(s) in {wall:.2f}s")


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawned children even when the parent
    found it via ``sys.path`` manipulation rather than ``PYTHONPATH``."""
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    parts = [p for p in existing.split(os.pathsep) if p]
    if src_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_root] + parts)
