"""Ensemble result records: per-member status and the fleet summary.

The driver's contract is *graceful degradation, never a crashed driver*:
whatever the workers did — finished cleanly, died and recovered, or got
quarantined after exhausting their strikes — :meth:`Supervisor.run`
always terminates with a complete :class:`EnsembleResult` accounting for
every member.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field

__all__ = ["MemberResult", "EnsembleResult", "STATUSES"]

#: terminal member states
STATUSES = ("ok", "recovered", "quarantined")


@dataclass
class MemberResult:
    """Terminal record of one ensemble member."""

    member_id: str
    #: ``ok`` (clean first attempt) | ``recovered`` (succeeded after >= 1
    #: process-level retry) | ``quarantined`` (strikes exhausted)
    status: str
    #: total process launches (1 = clean)
    attempts: int = 1
    #: wall-clock seconds from first launch to terminal state
    wall_s: float = 0.0
    #: timestep scale of the successful attempt (1.0 = nominal; < 1 means
    #: the trajectory is *not* comparable bitwise to the unscaled twin)
    dt_scale: float = 1.0
    #: SHA-256 digest of the final solver state (bitwise identity check)
    digest: str | None = None
    #: scenario-level summary metrics from the builder's ``summarize``
    summary: dict = field(default_factory=dict)
    #: chronological failure history: one dict per failed attempt
    #: ({"attempt", "reason", "delay_s", "resume", "dt_scale", "bundle",
    #: "verdict"})
    history: list = field(default_factory=list)
    #: why the member was quarantined (``None`` unless quarantined) — the
    #: black-box classifier verdict plus its leading evidence line
    diagnosis: str | None = None
    #: classifier verdict of the terminal failure (``nan_origin`` |
    #: ``energy_blowup`` | ``cfl_collapse`` | ``worker_death`` |
    #: ``unknown``); ``None`` unless quarantined
    verdict: str | None = None
    #: diagnostic-bundle path of the terminal failure (``None`` unless
    #: quarantined — a recovered member never carries a stale bundle)
    bundle: str | None = None
    #: artifact paths: member dir, per-member run log, result file,
    #: checkpoint dir
    paths: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, got {self.status!r}"
            )


@dataclass
class EnsembleResult:
    """Terminal record of a whole supervised ensemble run."""

    members: list  # of MemberResult
    wall_s: float = 0.0
    workers: int = 1
    #: ensemble-level run-log path (supervisor events)
    runlog_path: str | None = None

    # ------------------------------------------------------------------
    def by_status(self, status: str) -> list:
        return [m for m in self.members if m.status == status]

    @property
    def counts(self) -> dict:
        return {s: len(self.by_status(s)) for s in STATUSES}

    @property
    def degraded(self) -> bool:
        """True when at least one member had to be quarantined."""
        return bool(self.by_status("quarantined"))

    def member(self, member_id: str) -> MemberResult:
        for m in self.members:
            if m.member_id == member_id:
                return m
        raise KeyError(f"no member {member_id!r} in ensemble result")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "members": [asdict(m) for m in self.members],
            "counts": self.counts,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "runlog_path": self.runlog_path,
        }

    def save(self, path: str) -> str:
        """Atomically write the result as JSON; returns the path."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory,
            prefix=f".{os.path.basename(path)}.{os.getpid()}.",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(self.to_dict(), f, indent=2, sort_keys=True)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str) -> "EnsembleResult":
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        members = [MemberResult(**m) for m in data["members"]]
        return cls(members=members, wall_s=data.get("wall_s", 0.0),
                   workers=data.get("workers", 1),
                   runlog_path=data.get("runlog_path"))

    def lines(self) -> list[str]:
        """Human-readable summary for CLI output."""
        c = self.counts
        out = [
            f"ensemble: {len(self.members)} member(s) in {self.wall_s:.2f} s "
            f"wall on {self.workers} worker(s) — "
            f"{c['ok']} ok, {c['recovered']} recovered, "
            f"{c['quarantined']} quarantined"
        ]
        for m in self.members:
            line = (f"  {m.member_id}: {m.status} "
                    f"({m.attempts} attempt(s), {m.wall_s:.2f} s")
            if m.dt_scale != 1.0:
                line += f", dt_scale {m.dt_scale:g}"
            line += ")"
            if m.diagnosis:
                line += f" — {m.diagnosis}"
            if m.bundle:
                line += f" [bundle: {m.bundle}]"
            out.append(line)
        return out
