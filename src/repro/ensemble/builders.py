"""Built-in ensemble scenario builders: quickstart, Scenario A, Palu.

Each builder maps ``(perturb, seed)`` onto a fully configured coupled
solver.  Perturbation keys are the *config dataclass fields* of the
underlying scenario (``PaluConfig`` / ``ScenarioAConfig``), so an
ensemble sweep is written in the vocabulary of the paper: perturb
``nucleation_y`` for hypocenter location, ``tau_strike`` for loading,
``rs_a``/``rs_b`` for friction, ``bay_depth`` for bathymetry.  The seed
adds a small deterministic jitter on top (hypocenter position for the
fault scenarios, source position for the quickstart point source), so a
members-only sweep with default perturbations still explores the space.

Unknown perturbation keys raise ``ValueError`` up front — a typo in a
thousand-member production sweep must fail at submission, not after the
fleet has burned its allocation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .spec import ScenarioHandle, register_builder

__all__ = ["quickstart_builder", "scenario_a_builder", "palu_builder"]


def _apply_config(cfg, perturb: dict, scenario: str):
    """Override dataclass config fields with ``perturb``; reject typos."""
    valid = {f.name for f in dataclasses.fields(cfg)}
    unknown = sorted(set(perturb) - valid)
    if unknown:
        raise ValueError(
            f"unknown {scenario} perturbation key(s) {unknown}; valid fields: "
            f"{', '.join(sorted(valid))}"
        )
    return dataclasses.replace(cfg, **perturb) if perturb else cfg


def _eta_summary(solver) -> dict:
    """Scenario-level sea-surface metrics shared by all builders."""
    if not len(solver.gravity):
        return {}
    eta = solver.gravity.eta
    return {
        "eta_max": float(np.max(eta)),
        "eta_min": float(np.min(eta)),
        "eta_abs_max": float(np.max(np.abs(eta))),
    }


@register_builder("quickstart")
def quickstart_builder(perturb: dict, seed: int, backend: str = "serial",
                       workers: int | None = None) -> ScenarioHandle:
    """Small layered Earth-ocean box with an explosive point source.

    Cheap enough for chaos tests and overhead benchmarks; perturbation
    keys: ``n_x`` (horizontal grid points), ``extent``, ``order``, ``f0``
    (source frequency), ``moment``, ``source_depth``, ``amp_jitter``
    (relative moment jitter scale driven by the seed).
    """
    from ..core.materials import acoustic, elastic
    from ..core.solver import (
        CoupledSolver,
        PointSource,
        ocean_surface_gravity_tagger,
    )
    from ..mesh.generators import layered_ocean_mesh

    p = {"n_x": 5, "extent": 2500.0, "order": 2, "f0": 2.0, "moment": 5e12,
         "source_depth": -900.0, "amp_jitter": 0.1}
    unknown = sorted(set(perturb) - set(p))
    if unknown:
        raise ValueError(
            f"unknown quickstart perturbation key(s) {unknown}; valid: "
            f"{', '.join(sorted(p))}"
        )
    p.update(perturb)

    rng = np.random.default_rng(seed)
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, p["extent"], int(p["n_x"]))
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-1500.0, -500.0, 3),
        zs_ocean=np.linspace(-500.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=int(p["order"]), backend=backend,
                           workers=workers)

    # seed-driven member identity: source position inside the middle of the
    # box plus a relative moment jitter
    mid, half = 0.5 * p["extent"], 0.2 * p["extent"]
    sx, sy = mid + half * (2 * rng.random(2) - 1)
    moment = p["moment"] * (1.0 + p["amp_jitter"] * (2 * rng.random() - 1))
    f0 = float(p["f0"])

    def ricker(t):
        a = (np.pi * f0 * (t - 0.3)) ** 2
        return (1.0 - 2.0 * a) * np.exp(-a)

    solver.add_source(PointSource(
        [sx, sy, p["source_depth"]], ricker, moment=[moment] * 3 + [0, 0, 0]
    ))
    return ScenarioHandle(solver=solver, summarize=_eta_summary)


@register_builder("scenario_a")
def scenario_a_builder(perturb: dict, seed: int, backend: str = "serial",
                       workers: int | None = None) -> ScenarioHandle:
    """Scaled Scenario-A dynamic-rupture member (paper Fig. 3 family).

    Perturbation keys are ``ScenarioAConfig`` fields; the seed jitters the
    nucleation overstress by ±5% when ``nucleation_tau`` is not pinned.
    """
    from ..scenarios.scenario_a import ScenarioAConfig, build_coupled

    cfg = _apply_config(ScenarioAConfig(), perturb, "scenario_a")
    if "nucleation_tau" not in perturb:
        rng = np.random.default_rng(seed)
        cfg = dataclasses.replace(
            cfg, nucleation_tau=cfg.nucleation_tau * (1 + 0.05 * (2 * rng.random() - 1))
        )
    solver, _fault = build_coupled(cfg, backend=backend, workers=workers)
    return ScenarioHandle(solver=solver, summarize=_eta_summary)


@register_builder("palu")
def palu_builder(perturb: dict, seed: int, backend: str = "serial",
                 workers: int | None = None) -> ScenarioHandle:
    """Scaled Palu supershear member (paper Sec. 6.2 / Fig. 1 family).

    Perturbation keys are ``PaluConfig`` fields — hypocenter
    (``nucleation_y``), loading (``tau_strike``, ``rake_deg``), friction
    (``rs_a``/``rs_b``/``rs_Vw``) and bathymetry (``bay_depth``,
    ``bay_half_width``).  The seed jitters the hypocenter along strike by
    ±200 m when ``nucleation_y`` is not pinned.
    """
    from ..scenarios.palu import PaluConfig, build_coupled

    cfg = _apply_config(PaluConfig(), perturb, "palu")
    if "nucleation_y" not in perturb:
        rng = np.random.default_rng(seed)
        cfg = dataclasses.replace(
            cfg, nucleation_y=cfg.nucleation_y + 200.0 * (2 * rng.random() - 1)
        )
    solver, fault = build_coupled(cfg, backend=backend, workers=workers)

    def summarize(s):
        out = _eta_summary(s)
        out["peak_slip_rate"] = float(np.max(np.abs(fault.slip_rate)))
        return out

    return ScenarioHandle(solver=solver, summarize=summarize)
