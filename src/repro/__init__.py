"""repro — 3D acoustic-elastic coupling with gravity.

An open-source Python reproduction of

    Krenz, Uphoff, Ulrich, Gabriel, Abrahams, Dunham, Bader:
    "3D Acoustic-Elastic Coupling with Gravity: The Dynamics of the 2018
    Palu, Sulawesi Earthquake and Tsunami", SC'21.

The package implements, from scratch:

* an ADER-DG solver for the coupled elastic-acoustic wave equations on
  unstructured tetrahedral meshes, with the exact elastic-acoustic Godunov
  flux, the gravitational free-surface boundary condition, rate-2 clustered
  local time-stepping, and dynamic earthquake rupture (linear slip
  weakening and fast-velocity-weakening rate-and-state friction)
  (:mod:`repro.core`, :mod:`repro.rupture`);
* mesh generation substrates: Kuhn-subdivided structured-to-tetrahedral
  meshes, graded refinement, terrain-following bathymetry meshes, and
  periodic gluing for verification (:mod:`repro.mesh`);
* the one-way-linked baseline: a well-balanced nonlinear shallow-water
  solver, Okada half-space dislocations, and the 3D-to-2D linking pipeline
  (:mod:`repro.tsunami`);
* the HPC layer: Eq. 28 graph partitioning, machine models of Shaheen-II /
  SuperMUC-NG / Mahti, a calibrated roofline+NUMA node performance model,
  the Sec. 5.2 thread-pinning algorithm, and a strong-scaling simulator
  (:mod:`repro.hpc`);
* analysis tooling: receivers, spectra, field sampling
  (:mod:`repro.analysis`) and ready-made scenario builders for the paper's
  experiments (:mod:`repro.scenarios`).

Quick start::

    from repro import CoupledSolver, elastic, acoustic
    from repro.mesh.generators import layered_ocean_mesh
    from repro.core.solver import ocean_surface_gravity_tagger

    mesh = layered_ocean_mesh(...)
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=3)
    solver.run(t_end=10.0)
"""

from .core.lts import LocalTimeStepping
from .core.materials import Material, acoustic, elastic
from .core.riemann import FaceKind
from .core.solver import CoupledSolver, PointSource, ocean_surface_gravity_tagger
from .mesh.tetmesh import TetMesh
from .rupture.fault import FaultSolver, Prestress
from .rupture.friction import LinearSlipWeakening, RateStateFastVelocityWeakening
from .tsunami.okada import OkadaFault
from .tsunami.swe import ShallowWaterSolver

__version__ = "1.0.0"

__all__ = [
    "CoupledSolver",
    "LocalTimeStepping",
    "Material",
    "TetMesh",
    "FaceKind",
    "PointSource",
    "FaultSolver",
    "Prestress",
    "LinearSlipWeakening",
    "RateStateFastVelocityWeakening",
    "OkadaFault",
    "ShallowWaterSolver",
    "acoustic",
    "elastic",
    "ocean_surface_gravity_tagger",
    "__version__",
]
