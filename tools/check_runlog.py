#!/usr/bin/env python3
"""Validate a structured run log (JSONL) produced with ``--log-json``.

Checks every line against the repro.obs schema and optionally enforces
minimum content requirements (used by CI to assert that a kill/resume
pair actually produced two manifests and a stream of heartbeats).

Exit status: 0 when the log is valid and all requirements hold,
1 otherwise.

Run:  python tools/check_runlog.py RUN.jsonl [--min-manifests 2] [--require-heartbeat]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import validate_jsonl  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("runlog", help="path to the JSONL run log")
    ap.add_argument("--min-manifests", type=int, default=1,
                    help="minimum number of manifest events (default 1; "
                    "a kill/resume pair should have 2)")
    ap.add_argument("--require-heartbeat", action="store_true",
                    help="fail unless at least one heartbeat event is present")
    args = ap.parse_args(argv)

    if not os.path.exists(args.runlog):
        print(f"check_runlog: {args.runlog}: no such file", file=sys.stderr)
        return 1

    result = validate_jsonl(args.runlog)
    ok = True
    for lineno, msg in result["errors"]:
        print(f"{args.runlog}:{lineno}: {msg}", file=sys.stderr)
        ok = False

    events = result["events"]
    n_manifests = events.get("manifest", 0)
    if n_manifests < args.min_manifests:
        print(f"check_runlog: {n_manifests} manifest event(s), "
              f"need >= {args.min_manifests}", file=sys.stderr)
        ok = False
    if args.require_heartbeat and events.get("heartbeat", 0) < 1:
        print("check_runlog: no heartbeat events", file=sys.stderr)
        ok = False

    summary = ", ".join(f"{k}={v}" for k, v in sorted(events.items()))
    if result.get("truncated_tail"):
        summary += ", truncated_tail"
    status = "OK" if ok else "FAIL"
    print(f"check_runlog: {args.runlog}: {result['records']} record(s) "
          f"[{summary}] -> {status}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
