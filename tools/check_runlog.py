#!/usr/bin/env python3
"""Validate a structured run log (JSONL) produced with ``--log-json``.

Checks every line against the repro.obs schema and optionally enforces
minimum content requirements (used by CI to assert that a kill/resume
pair actually produced two manifests and a stream of heartbeats).
``metrics`` records additionally have their snapshot payload checked
against the :mod:`repro.obs.metrics` compact-snapshot shape (schema
version, counter/gauge/histogram structure), and ``recovery`` /
``diverged`` / ``member_quarantined`` records have their schema-v3
diagnostic-bundle fields type-checked (``bundle`` null-or-string,
``verdict`` a known classifier verdict).

Pointing the tool at an **ensemble out-dir** instead of a file validates
``ensemble.jsonl`` plus every member's ``run.jsonl``, reports each
member's metric staleness — how far behind the fleet's newest record the
member's last metrics snapshot is — and checks that every referenced
diagnostic bundle actually exists on disk.

Exit status: 0 when the log is valid and all requirements hold,
1 otherwise.

Run:  python tools/check_runlog.py RUN.jsonl [--min-manifests 2] [--require-heartbeat]
      python tools/check_runlog.py ENSEMBLE_DIR [--require-metrics]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import validate_jsonl  # noqa: E402
from repro.obs.blackbox import VERDICTS  # noqa: E402
from repro.obs.metrics import METRICS_SCHEMA_VERSION  # noqa: E402

#: events whose schema-v3 payload carries a diagnostic-bundle path
_BUNDLE_EVENTS = ("recovery", "diverged", "member_quarantined", "member_retry")


def check_bundle_fields(rec) -> list[str]:
    """Type errors in a record's bundle/verdict fields (empty = ok)."""
    errors = []
    event = rec.get("event")
    if "bundle" in rec and rec["bundle"] is not None \
            and not isinstance(rec["bundle"], str):
        errors.append(f"{event}: 'bundle' must be null or a path string")
    if "verdict" in rec and rec["verdict"] is not None:
        if rec["verdict"] not in VERDICTS:
            errors.append(f"{event}: verdict {rec['verdict']!r} is not one "
                          f"of {', '.join(VERDICTS)}")
    return errors


def check_metrics_payload(snap) -> list[str]:
    """Structural errors in one compact metrics snapshot (empty = ok)."""
    errors = []
    if not isinstance(snap, dict):
        return [f"metrics payload is {type(snap).__name__}, expected object"]
    schema = snap.get("schema")
    if not isinstance(schema, int):
        errors.append("metrics payload missing integer 'schema'")
    elif schema > METRICS_SCHEMA_VERSION:
        # future schema: tolerated (forward compatibility), worth a note
        errors.append(f"metrics schema {schema} is newer than this tool "
                      f"({METRICS_SCHEMA_VERSION})")
    counters = snap.get("counters", {})
    if not isinstance(counters, dict) or any(
            not isinstance(v, (int, float)) or isinstance(v, bool)
            for v in counters.values()):
        errors.append("metrics 'counters' must map names to numbers")
    gauges = snap.get("gauges", {})
    if not isinstance(gauges, dict):
        errors.append("metrics 'gauges' must be an object")
    else:
        for name, cell in gauges.items():
            if (not isinstance(cell, dict)
                    or not isinstance(cell.get("value"), (int, float))
                    or isinstance(cell.get("value"), bool)):
                errors.append(f"gauge {name!r}: expected {{'value': number}}")
    hists = snap.get("histograms", {})
    if not isinstance(hists, dict):
        errors.append("metrics 'histograms' must be an object")
    else:
        for name, cell in hists.items():
            if not isinstance(cell, dict):
                errors.append(f"histogram {name!r}: expected object")
                continue
            bounds = cell.get("bounds")
            counts = cell.get("counts")
            if (not isinstance(bounds, list) or not isinstance(counts, list)
                    or len(counts) != len(bounds) + 1):
                errors.append(f"histogram {name!r}: need len(counts) == "
                              "len(bounds) + 1")
    return errors


def check_file(path, min_manifests=0, require_heartbeat=False,
               label=None) -> tuple[bool, dict]:
    """Validate one run log; returns (ok, info) and prints errors.

    ``info`` carries the event counts plus the wall stamps of the last
    metrics record and the last record overall (for staleness).
    """
    label = label or path
    result = validate_jsonl(path)
    ok = True
    for lineno, msg in result["errors"]:
        print(f"{label}:{lineno}: {msg}", file=sys.stderr)
        ok = False

    # second pass: metrics payload structure, bundle-field types, and
    # wall stamps for staleness
    last_wall = None
    last_metrics_wall = None
    n_metrics = 0
    bundles = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # already reported by validate_jsonl
            if not isinstance(rec, dict):
                continue
            wall = rec.get("wall")
            if isinstance(wall, (int, float)) and not isinstance(wall, bool):
                last_wall = max(last_wall or wall, wall)
            if rec.get("event") == "metrics":
                n_metrics += 1
                if isinstance(wall, (int, float)):
                    last_metrics_wall = wall
                for msg in check_metrics_payload(rec.get("metrics")):
                    print(f"{label}:{lineno}: {msg}", file=sys.stderr)
                    ok = False
            if rec.get("event") in _BUNDLE_EVENTS:
                for msg in check_bundle_fields(rec):
                    print(f"{label}:{lineno}: {msg}", file=sys.stderr)
                    ok = False
                if isinstance(rec.get("bundle"), str):
                    bundles.append(rec["bundle"])

    events = result["events"]
    n_manifests = events.get("manifest", 0)
    if n_manifests < min_manifests:
        print(f"check_runlog: {label}: {n_manifests} manifest event(s), "
              f"need >= {min_manifests}", file=sys.stderr)
        ok = False
    if require_heartbeat and events.get("heartbeat", 0) < 1:
        print(f"check_runlog: {label}: no heartbeat events", file=sys.stderr)
        ok = False

    summary = ", ".join(f"{k}={v}" for k, v in sorted(events.items()))
    if result.get("truncated_tail"):
        summary += ", truncated_tail"
    status = "OK" if ok else "FAIL"
    print(f"check_runlog: {label}: {result['records']} record(s) "
          f"[{summary}] -> {status}")
    return ok, {"events": events, "last_wall": last_wall,
                "last_metrics_wall": last_metrics_wall,
                "n_metrics": n_metrics, "bundles": bundles}


def check_ensemble_dir(run_dir, require_metrics=False) -> bool:
    """Validate an ensemble out-dir: supervisor log + member logs +
    per-member metric staleness."""
    ok = True
    referenced = []  # (source label, bundle path, dirs to resolve against)
    sup = os.path.join(run_dir, "ensemble.jsonl")
    if os.path.exists(sup):
        sup_ok, sup_info = check_file(sup, label=sup)
        ok = ok and sup_ok
        referenced += [(sup, b, None) for b in sup_info["bundles"]]
    else:
        print(f"check_runlog: {sup}: no supervisor log", file=sys.stderr)
        ok = False

    members = {}
    for name in sorted(os.listdir(run_dir)):
        mdir = os.path.join(run_dir, name)
        log = os.path.join(mdir, "run.jsonl")
        if os.path.isfile(log):
            m_ok, info = check_file(log, label=log)
            ok = ok and m_ok
            members[name] = info
            referenced += [(log, b, mdir) for b in info["bundles"]]

    if not members:
        print(f"check_runlog: {run_dir}: no member run logs", file=sys.stderr)
        return False

    # staleness is offline-relative: against the newest wall stamp seen
    # anywhere in the run, not against the clock of whoever runs the tool
    newest = max((i["last_wall"] for i in members.values()
                  if i["last_wall"] is not None), default=None)
    print(f"\nper-member metrics ({len(members)} member(s)):")
    for name, info in sorted(members.items()):
        n = info["n_metrics"]
        if n == 0:
            line = f"  {name:14} no metrics records"
            if require_metrics:
                ok = False
                line += "  [FAIL: --require-metrics]"
        else:
            stale = ""
            if newest is not None and info["last_metrics_wall"] is not None:
                stale = (f", {newest - info['last_metrics_wall']:.1f}s behind "
                         "the fleet's newest record")
            line = f"  {name:14} {n} metrics record(s){stale}"
        print(line)

    # every bundle path a log references must exist; tolerate run dirs
    # that were relocated by also trying the basename in each member dir
    # (worker logs record the path as seen inside the worker)
    if referenced:
        missing = 0
        member_dirs = [os.path.join(run_dir, n) for n in sorted(members)]
        for src, bundle, mdir in referenced:
            candidates = [bundle, os.path.join(run_dir, bundle)]
            base = os.path.basename(bundle)
            for d in ([mdir] if mdir else member_dirs):
                candidates.append(os.path.join(d, base))
            if not any(os.path.isfile(c) for c in candidates):
                print(f"check_runlog: {src}: referenced bundle "
                      f"{bundle!r} not found", file=sys.stderr)
                missing += 1
                ok = False
        print(f"\ndiagnostic bundles: {len(referenced)} referenced, "
              f"{missing} missing")
    return ok


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("runlog", help="path to a JSONL run log, or an ensemble "
                    "out-dir (validates ensemble.jsonl + member logs)")
    ap.add_argument("--min-manifests", type=int, default=1,
                    help="minimum number of manifest events (default 1; "
                    "a kill/resume pair should have 2)")
    ap.add_argument("--require-heartbeat", action="store_true",
                    help="fail unless at least one heartbeat event is present")
    ap.add_argument("--require-metrics", action="store_true",
                    help="directory mode: fail for members without any "
                    "metrics records")
    args = ap.parse_args(argv)

    if os.path.isdir(args.runlog):
        return 0 if check_ensemble_dir(
            args.runlog, require_metrics=args.require_metrics) else 1
    if not os.path.exists(args.runlog):
        print(f"check_runlog: {args.runlog}: no such file", file=sys.stderr)
        return 1
    ok, _ = check_file(args.runlog, min_manifests=args.min_manifests,
                       require_heartbeat=args.require_heartbeat)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
