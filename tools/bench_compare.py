#!/usr/bin/env python3
"""Compare the newest ``BENCH_*.json`` record against history + roofline.

Reads a benchmark-battery history file written by ``python -m repro
bench`` (see :mod:`repro.obs.bench`), takes the newest record, and

* diffs each kernel's best-of-repeats seconds against the **median of
  the comparable history** (same host context, cpu count, order, mesh
  size and ``fast`` flag), flagging slowdowns beyond ``--threshold``
  (default 25%);
* sanity-checks the two roofline-modeled kernels (predictor, corrector)
  against :mod:`repro.hpc.perfmodel`: a measured GFLOP/s rate *above*
  the modeled bound means the timing or FLOP accounting is broken, and
  is always an error.

Exit status: 0 normally.  With ``--check`` (the CI soft gate) the exit
code is 1 only when a roofline violation is found, or when regressions
are found **and** at least ``--min-history`` (default 3) comparable
baseline records exist — before that the comparison warns but does not
gate, so a young trajectory cannot block CI.

Run:  python tools/bench_compare.py [BENCH_linux-x86_64.json] [--check]
"""

import argparse
import json
import os
import statistics
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.bench import (  # noqa: E402
    BATTERY_KERNELS,
    BENCH_SCHEMA_VERSION,
    default_history_path,
    load_history,
)

#: modeled kernels whose measured GFLOP/s must stay below the roofline
_MODELED = ("predictor", "corrector")

#: tolerance on the roofline bound (timer jitter on sub-ms kernels)
_ROOFLINE_SLACK = 1.05

#: disabled-path instrumentation budget: the metric-registry guard sites
#: wired into the scheduler/watchdog/caches must cost less than 2% of a
#: step when the registry is off (repro.obs.metrics guard discipline)
_METRICS_BUDGET = 0.02


def comparable_key(record: dict) -> tuple:
    """Records compare only within identical problem + host shape.

    The kernel variant is part of the key: fused/jit records time a
    different contraction chain with different FLOP accounting, so a
    variant switch starts a fresh trajectory instead of reading as a
    speedup/regression against the other variant's history.  Records
    written before the field existed ran the then-only batched path.
    """
    host = record.get("host", {})
    return (host.get("context"), host.get("cpu_count"), record.get("order"),
            record.get("n_elements"), record.get("fast"),
            record.get("kernel_variant", "batched"))


def compare(doc: dict, threshold: float = 0.25, min_history: int = 3):
    """Return ``(lines, regressions, errors, n_baseline)`` for a history."""
    records = doc.get("records", [])
    if not records:
        return ["bench_compare: history is empty"], [], [], 0

    newest = records[-1]
    lines = []
    errors = []
    if newest.get("schema") != BENCH_SCHEMA_VERSION:
        errors.append(f"newest record has schema {newest.get('schema')!r}, "
                      f"this tool understands {BENCH_SCHEMA_VERSION}")

    key = comparable_key(newest)
    baseline = [r for r in records[:-1] if comparable_key(r) == key]
    lines.append(
        f"newest: git {newest.get('git_rev', 'unknown')[:12]} | "
        f"{newest.get('n_elements')} elements, order {newest.get('order')}, "
        f"kernels={newest.get('kernel_variant', 'batched')}, "
        f"fast={newest.get('fast')} | {len(baseline)} comparable baseline "
        f"record(s)"
    )

    regressions = []
    lines.append(f"  {'kernel':14} {'seconds':>10} {'baseline':>10} "
                 f"{'delta':>8}  status")
    for name in BATTERY_KERNELS:
        cell = newest.get("benches", {}).get(name)
        if cell is None:
            lines.append(f"  {name:14} {'-':>10} — missing from newest record")
            errors.append(f"kernel {name} missing from newest record")
            continue
        sec = cell["seconds"]
        base_secs = [r["benches"][name]["seconds"] for r in baseline
                     if name in r.get("benches", {})]
        if base_secs:
            base = statistics.median(base_secs)
            delta = (sec - base) / base
            if delta > threshold:
                status = f"REGRESSION (>{threshold:.0%})"
                regressions.append((name, delta))
            elif delta < -threshold:
                status = "improved"
            else:
                status = "ok"
            lines.append(f"  {name:14} {sec:10.5f} {base:10.5f} "
                         f"{delta:+7.1%}  {status}")
        else:
            lines.append(f"  {name:14} {sec:10.5f} {'-':>10} {'-':>8}  "
                         "no baseline")

    # roofline sanity: measured rate above the modeled bound is impossible
    for name in _MODELED:
        cell = newest.get("benches", {}).get(name)
        if not cell or "gflops" not in cell or "model_gflops" not in cell:
            continue
        if cell["gflops"] > cell["model_gflops"] * _ROOFLINE_SLACK:
            errors.append(
                f"{name}: measured {cell['gflops']:.2f} GFLOP/s exceeds the "
                f"{cell['model_gflops']:.2f} GFLOP/s roofline bound — timing "
                "or FLOP accounting is broken"
            )
        else:
            lines.append(f"  roofline {name}: {cell['gflops']:.2f} / "
                         f"{cell['model_gflops']:.2f} GFLOP/s "
                         f"({100 * cell.get('efficiency', 0):.1f}% of model)")

    # instrumentation budget: the disabled metric-registry fast path and
    # the always-on flight-recorder hot path must both stay inside the
    # guard-discipline budget relative to a real step
    for name, what in (("metrics_overhead", "disabled guard sites"),
                       ("blackbox_overhead", "flight-recorder sites")):
        cell = newest.get("benches", {}).get(name)
        if not cell or "step_fraction" not in cell:
            continue
        frac = cell["step_fraction"]
        if frac > _METRICS_BUDGET:
            errors.append(
                f"{name}: {what} cost {frac:.2%} of a step "
                f"(> {_METRICS_BUDGET:.0%} budget) — the hot path regressed"
            )
        else:
            lines.append(f"  instrumentation budget: {what} = "
                         f"{frac:.3%} of a step (< {_METRICS_BUDGET:.0%} ok)")

    return lines, regressions, errors, len(baseline)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("history", nargs="?", default=None,
                    help="BENCH_*.json history file "
                    "(default: this host's file at the repo root)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative slowdown that counts as a regression "
                    "(default 0.25)")
    ap.add_argument("--min-history", type=int, default=3,
                    help="baseline records required before --check hard-fails "
                    "on regressions (default 3)")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero on roofline violations, or on "
                    "regressions once enough history exists")
    args = ap.parse_args(argv)

    path = args.history or default_history_path()
    if not os.path.exists(path):
        print(f"bench_compare: {path}: no such file", file=sys.stderr)
        return 1 if args.check else 0
    try:
        doc = load_history(path)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"bench_compare: {path}: {exc}", file=sys.stderr)
        return 1

    lines, regressions, errors, n_baseline = compare(
        doc, threshold=args.threshold, min_history=args.min_history)
    print(f"== bench_compare {path} ==")
    for line in lines:
        print(line)
    for err in errors:
        print(f"ERROR: {err}", file=sys.stderr)

    gate = bool(errors)
    if regressions:
        names = ", ".join(f"{n} ({d:+.1%})" for n, d in regressions)
        if n_baseline >= args.min_history:
            print(f"regressions: {names}", file=sys.stderr)
            gate = True
        else:
            print(f"warning: regressions ({names}) but only {n_baseline} "
                  f"baseline record(s) (< {args.min_history}): soft gate, "
                  "not failing", file=sys.stderr)
    if args.check and gate:
        return 1
    if not args.check and errors:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
