"""Compiled step-plan scheduler (repro.sched): plan correctness, bitwise
golden equivalence against the retired dynamic loops, termination, hooks.

The plan property test checks :func:`compile_step_plan` against an
independent reimplementation of the event-driven ``eligible()`` scheduler
the LTS driver used before compilation (kept here verbatim as the
reference semantics).  The golden tests re-run that dynamic loop — and the
old float-epsilon GTS loop — against the scheduler on a coupled
gravity-topped mesh and require *bitwise* identical trajectories.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ader import taylor_integrate
from repro.core.lts import LocalTimeStepping
from repro.core.materials import acoustic, elastic
from repro.core.resilience import ResilientRunner
from repro.core.solver import CoupledSolver, PointSource, ocean_surface_gravity_tagger
from repro.exec import clear_plan_cache
from repro.mesh.generators import layered_ocean_mesh
from repro.sched import (
    CONSUME_BUFFER,
    CONSUME_TAYLOR,
    HookBus,
    MicroStepEvent,
    Scheduler,
    compile_step_plan,
    get_step_plan,
    get_step_plan_cache,
    plan_steps,
    step_plan_key,
)


# ---------------------------------------------------------------------------
# the reference semantics: the retired event-driven scheduler
# ---------------------------------------------------------------------------
def dynamic_reference(n_clusters, rate, n_macro, adjacency):
    """The event-driven loop the LTS driver ran before plan compilation.

    Returns the executed sequence of
    ``(cluster, t_int, consume_actions, update_pred)`` tuples, or ``None``
    on deadlock.  Consume actions are ``(neighbor, mode, offset)`` in
    sorted neighbor order.
    """
    steps_int = np.array([rate**c for c in range(n_clusters)], dtype=np.int64)
    t_int = np.zeros(n_clusters, dtype=np.int64)
    pred_int = np.zeros(n_clusters, dtype=np.int64)
    end_int = n_macro * rate ** (n_clusters - 1)

    def eligible(c):
        if t_int[c] >= end_int:
            return False
        t_new = t_int[c] + steps_int[c]
        for cn in adjacency[c]:
            if steps_int[cn] > steps_int[c]:
                if pred_int[cn] > t_int[c] or pred_int[cn] + steps_int[cn] < t_new:
                    return False
            else:
                if t_int[cn] < t_new:
                    return False
        return True

    out = []
    while t_int.min() < end_int:
        cands = [
            (t_int[ci] + steps_int[ci], steps_int[ci], ci)
            for ci in range(n_clusters)
            if eligible(ci)
        ]
        if not cands:
            return None
        _, _, c = min(cands)
        acts = []
        for cn in sorted(adjacency[c]):
            if steps_int[cn] > steps_int[c]:
                acts.append((int(cn), CONSUME_TAYLOR, int(t_int[c] - pred_int[cn])))
            else:
                acts.append((int(cn), CONSUME_BUFFER, 0))
        upd = bool(t_int[c] + steps_int[c] < end_int)
        out.append((int(c), int(t_int[c]), tuple(acts), upd))
        t_int[c] += steps_int[c]
        if upd:
            pred_int[c] = t_int[c]
    return out


@st.composite
def plan_cases(draw):
    """Random (n_clusters, rate, n_macro, symmetric adjacency)."""
    n_clusters = draw(st.integers(1, 5))
    rate = draw(st.sampled_from([2, 3]))
    n_macro = draw(st.integers(1, 4))
    pairs = [(a, b) for a in range(n_clusters) for b in range(a + 1, n_clusters)]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    adjacency = [set() for _ in range(n_clusters)]
    for a, b in chosen:
        adjacency[a].add(b)
        adjacency[b].add(a)
    return n_clusters, rate, n_macro, adjacency


class TestStepPlan:
    @settings(max_examples=200)
    @given(plan_cases())
    def test_plan_matches_dynamic_scheduler(self, case):
        """The compiled order + actions reproduce the event-driven loop."""
        n_clusters, rate, n_macro, adjacency = case
        ref = dynamic_reference(n_clusters, rate, n_macro, adjacency)
        assert ref is not None, "dynamic reference deadlocked"
        plan = compile_step_plan(n_clusters, rate, n_macro, adjacency)
        got = [
            (
                int(plan.cluster[i]),
                int(plan.t_int[i]),
                tuple((int(a), int(m), int(o)) for a, m, o in plan.consumes(i)),
                bool(plan.update_pred[i]),
            )
            for i in range(plan.n_micro)
        ]
        assert got == ref

    @settings(max_examples=50)
    @given(plan_cases())
    def test_plan_invariants(self, case):
        n_clusters, rate, n_macro, adjacency = case
        plan = compile_step_plan(n_clusters, rate, n_macro, adjacency)
        # every cluster takes exactly end_int / rate**c micro-steps
        for c in range(n_clusters):
            assert int((plan.cluster == c).sum()) * int(plan.steps[c]) == plan.end_int
        # one sync per macro step, the last at end_int, in increasing order
        syncs = plan.sync_after[plan.sync_after >= 0]
        assert list(syncs) == [
            (k + 1) * plan.end_int // n_macro for k in range(n_macro)
        ]
        assert plan.n_sync == n_macro
        # buffer consumes and clears pair up
        n_buf = int((plan.consume_mode == CONSUME_BUFFER).sum())
        assert len(plan.clear_cluster) == n_buf

    def test_gts_plan_is_trivial(self):
        plan = compile_step_plan(1, 2, 5)
        assert plan.n_micro == 5
        assert plan.n_sync == 5
        assert (plan.cluster == 0).all()
        assert len(plan.consume_cluster) == 0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            compile_step_plan(0, 2, 1)
        with pytest.raises(ValueError):
            compile_step_plan(2, 2, 0)
        with pytest.raises(ValueError):
            compile_step_plan(2, 1, 1)
        with pytest.raises(ValueError):  # asymmetric adjacency
            compile_step_plan(2, 2, 1, [{1}, set()])
        with pytest.raises(ValueError):  # self-adjacency
            compile_step_plan(2, 2, 1, [{0}, set()])


class TestStepPlanCache:
    def test_cached_and_fingerprinted(self):
        clear_plan_cache()
        cache = get_step_plan_cache()
        p1 = get_step_plan(3, 2, 2, [{1}, {0, 2}, {1}])
        p2 = get_step_plan(3, 2, 2, [{1}, {0, 2}, {1}])
        assert p1 is p2
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1
        # different n_macro -> different fingerprint -> fresh compile
        p3 = get_step_plan(3, 2, 3, [{1}, {0, 2}, {1}])
        assert p3 is not p1
        assert cache.stats()["misses"] == 2
        clear_plan_cache()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_key_depends_on_all_inputs(self):
        k = step_plan_key(3, 2, 2, [{1}, {0, 2}, {1}])
        assert step_plan_key(3, 2, 2, [{1}, {0, 2}, {1}]) == k
        assert step_plan_key(3, 2, 3, [{1}, {0, 2}, {1}]) != k
        assert step_plan_key(3, 3, 2, [{1}, {0, 2}, {1}]) != k
        assert step_plan_key(3, 2, 2, [{1}, {0}, set()]) != k

    def test_env_kill_switch(self, monkeypatch):
        clear_plan_cache()
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        p1 = get_step_plan(2, 2, 1, [{1}, {0}])
        p2 = get_step_plan(2, 2, 1, [{1}, {0}])
        assert p1 is not p2
        assert len(get_step_plan_cache()) == 0


# ---------------------------------------------------------------------------
# golden bitwise equivalence against the retired drivers
# ---------------------------------------------------------------------------
def build_coupled(order=2, backend="serial", workers=None, lts=False):
    """Quickstart-style coupled Earth-ocean problem (gravity + source)."""
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, 2000.0, 4)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-1500.0, -500.0, 3),
        zs_ocean=np.linspace(-500.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=order, backend=backend, workers=workers)

    def ricker(t):
        a = (np.pi * 2.0 * (t - 0.3)) ** 2
        return (1.0 - 2.0 * a) * np.exp(-a)

    solver.add_source(
        PointSource([1000.0, 1000.0, -900.0], ricker, moment=[5e12] * 3 + [0, 0, 0])
    )
    if lts:
        # force two clusters on this uniform-speed-per-layer mesh
        return solver, LocalTimeStepping(solver)
    return solver


def old_gts_run(solver, t_end, dt=None):
    """The retired float-epsilon GTS loop, verbatim."""
    dt = solver.dt if dt is None else dt
    while solver.t < t_end - 1e-12 * max(t_end, 1.0):
        step_dt = min(dt, t_end - solver.t)
        solver.step(step_dt)


def old_lts_run(lts, t_end, dt_scale=1.0):
    """The retired event-driven LTS loop, verbatim (scan + float window
    arithmetic exactly as ``LocalTimeStepping.run`` executed it)."""
    solver = lts.solver
    rate, cmax = lts.rate, lts.cmax
    dt_macro = lts.dt_min * dt_scale * rate**cmax
    span = t_end - solver.t
    if span <= 0:
        return
    n_macro = max(1, int(np.ceil(span / dt_macro - 1e-12)))
    dt_min = span / (n_macro * rate**cmax)
    dts = np.array([dt_min * rate**c for c in range(lts.n_clusters)])
    t0 = solver.t

    op = lts.op
    ne, nb = op.n_elements, op.nbasis
    steps_int = np.array([rate**c for c in range(lts.n_clusters)], dtype=np.int64)
    t_int = np.zeros(lts.n_clusters, dtype=np.int64)
    pred_int = np.zeros(lts.n_clusters, dtype=np.int64)
    end_int = n_macro * rate**cmax

    derivs = lts.backend.predict(solver.Q)
    Iown = np.zeros((ne, nb, 9))
    Ibuf = np.zeros((ne, nb, 9))
    for c in range(lts.n_clusters):
        mask = lts.masks[c]
        Iown[mask] = taylor_integrate(derivs[mask], 0.0, dts[c])

    def eligible(c):
        if t_int[c] >= end_int:
            return False
        t_new = t_int[c] + steps_int[c]
        for cn in lts.adjacent[c]:
            if steps_int[cn] > steps_int[c]:
                if pred_int[cn] > t_int[c] or pred_int[cn] + steps_int[cn] < t_new:
                    return False
            else:
                if t_int[cn] < t_new:
                    return False
        return True

    while t_int.min() < end_int:
        cands = [
            (t_int[ci] + steps_int[ci], steps_int[ci], ci)
            for ci in range(lts.n_clusters)
            if eligible(ci)
        ]
        assert cands, "reference loop deadlocked"
        _, _, c = min(cands)
        mask = lts.masks[c]
        t_a = t_int[c] * dt_min
        I = np.zeros((ne, nb, 9))
        I[mask] = Iown[mask]
        for cn in lts.adjacent[c]:
            mn = lts.masks[cn]
            if steps_int[cn] > steps_int[c]:
                off = (t_int[c] - pred_int[cn]) * dt_min
                I[mn] = taylor_integrate(derivs[mn], off, off + dts[c])
            else:
                I[mn] = Ibuf[mn]
        out = lts.backend.corrector(
            I, derivs, dts[c], t0=t0 + t_a, active=mask,
            gravity_mask=lts.gravity_masks[c],
            motion_mask=None if lts.motion_masks is None else lts.motion_masks[c],
        )
        solver.Q[mask] += out[mask]
        Ibuf[mask] += Iown[mask]
        for cn in lts.adjacent[c]:
            if steps_int[cn] < steps_int[c]:
                Ibuf[lts.masks[cn]] = 0.0
        if t_int[c] + steps_int[c] < end_int:
            lts.backend.update_predictor(solver.Q, mask, dts[c], derivs, Iown)
            pred_int[c] = t_int[c] + steps_int[c]
        t_int[c] += steps_int[c]
    solver.t = t_end


def assert_bitwise(ref, new):
    assert np.array_equal(ref.Q, new.Q), "wavefield not bitwise identical"
    assert np.array_equal(ref.gravity.eta, new.gravity.eta)
    assert ref.t == new.t


class TestGoldenEquivalence:
    T = 0.2

    def test_gts_bitwise_serial(self):
        ref = build_coupled()
        old_gts_run(ref, self.T)
        new = build_coupled()
        new.run(self.T)
        assert np.abs(ref.Q).max() > 0
        assert_bitwise(ref, new)

    def test_lts_bitwise_serial(self):
        s_ref, l_ref = build_coupled(lts=True)
        old_lts_run(l_ref, self.T)
        s_new, l_new = build_coupled(lts=True)
        l_new.run(self.T)
        assert np.abs(s_ref.Q).max() > 0
        assert_bitwise(s_ref, s_new)

    def test_lts_bitwise_partitioned(self):
        s_ref, l_ref = build_coupled(backend="partitioned", workers=2, lts=True)
        old_lts_run(l_ref, self.T)
        s_new, l_new = build_coupled(backend="partitioned", workers=2, lts=True)
        l_new.run(self.T)
        assert_bitwise(s_ref, s_new)
        s_ref.backend.close()
        s_new.backend.close()

    def test_gts_bitwise_partitioned(self):
        ref = build_coupled(backend="partitioned", workers=2)
        old_gts_run(ref, self.T)
        new = build_coupled(backend="partitioned", workers=2)
        new.run(self.T)
        assert_bitwise(ref, new)
        ref.backend.close()
        new.backend.close()

    def test_lts_update_counts_preserved(self):
        s, lts = build_coupled(lts=True)
        lts.run(self.T)
        counts = lts.updates.copy()
        assert counts.sum() > 0
        # cluster c must take rate**(cmax-c) times the coarsest's steps
        for c in range(lts.n_clusters):
            assert counts[c] == counts[-1] * lts.rate ** (lts.cmax - c)


# ---------------------------------------------------------------------------
# unified termination: the integer clock is the only authority
# ---------------------------------------------------------------------------
class TestTermination:
    def test_no_sliver_step_near_multiple(self):
        """A t_end that is a whole number of steps up to float error takes
        exactly that many steps; the retired epsilon loop took one more."""
        solver = build_coupled(order=1)
        dt = solver.dt
        t_end = 10 * dt + 5e-10 * dt  # beyond the old 1e-12 slack

        # the retired criterion really did schedule an 11th sliver step
        old_steps = 0
        t = 0.0
        while t < t_end - 1e-12 * max(t_end, 1.0):
            t += min(dt, t_end - t)
            old_steps += 1
        assert old_steps == 11

        steps = []
        solver.run(t_end, callback=lambda s: steps.append(s.t))
        assert len(steps) == 10
        assert abs(solver.t - t_end) < 1e-8 * dt

    def test_genuine_partial_step_still_taken(self):
        solver = build_coupled(order=1)
        dt = solver.dt
        steps = []
        solver.run(10.5 * dt, callback=lambda s: steps.append(s.t))
        assert len(steps) == 11
        assert solver.t == pytest.approx(10.5 * dt, rel=1e-12)

    def test_plan_steps_authority(self):
        assert plan_steps(1.0, 0.1) == 10
        assert plan_steps(1.0 + 5e-11, 0.1) == 10  # inside the tolerance
        assert plan_steps(1.05, 0.1) == 11
        assert plan_steps(0.0, 0.1) == 0
        assert plan_steps(-1.0, 0.1) <= 0
        with pytest.raises(ValueError):
            plan_steps(1.0, 0.0)

    def test_lts_and_gts_agree_on_step_count(self):
        """Both drivers derive termination from the same integer clock."""
        s, lts = build_coupled(lts=True)
        t_end = 16 * lts.dt_min * lts.rate**lts.cmax + 1e-10 * lts.dt_min
        syncs = []
        lts.run(t_end, callback=lambda x: syncs.append(x.t))
        assert len(syncs) == 16
        assert s.t == t_end


# ---------------------------------------------------------------------------
# hook bus semantics
# ---------------------------------------------------------------------------
class TestHookBus:
    def test_ordering_and_events_gts(self):
        solver = build_coupled(order=1)
        log = []
        bus = HookBus()
        bus.on_micro_step(lambda s, e: log.append(("micro", e)))
        bus.on_sync(lambda s: log.append(("sync", None)))
        bus.on_sync(lambda s: log.append(("sync2", None)))
        Scheduler(solver).run(4.5 * solver.dt, hooks=bus)
        kinds = [k for k, _ in log]
        # per GTS step: micro then the syncs, in registration order
        assert kinds == ["micro", "sync", "sync2"] * 5
        events = [e for k, e in log if k == "micro"]
        assert [e.index for e in events] == list(range(5))
        assert all(isinstance(e, MicroStepEvent) and e.cluster == 0 for e in events)
        # the final step is shortened; its nominal dt is not
        assert events[-1].dt < events[-1].dt_nominal
        assert events[0].dt == events[0].dt_nominal

    def test_lts_micro_events_follow_plan(self):
        s, lts = build_coupled(order=1, lts=True)
        events = []
        bus = HookBus()
        bus.on_micro_step(lambda _, e: events.append(e))
        syncs = []
        bus.on_sync(lambda x: syncs.append(x.t))
        t_end = 2 * lts.dt_min * lts.rate**lts.cmax
        Scheduler(s, lts=lts).run(t_end, hooks=bus)
        plan = get_step_plan(lts.n_clusters, lts.rate, 2, lts.adjacent)
        assert [e.cluster for e in events] == [int(c) for c in plan.cluster]
        assert [e.t_int for e in events] == [int(t) for t in plan.t_int]
        assert len(syncs) == 2

    def test_extend_merges_in_order(self):
        log = []
        a = HookBus()
        a.on_sync(lambda s: log.append("a"))
        b = HookBus()
        b.on_sync(lambda s: log.append("b"))
        a.extend(b)
        a.extend(None)  # no-op
        a.sync(None)
        assert log == ["a", "b"]
        assert len(a) == 2

    def test_legacy_callback_equivalent_to_on_sync(self):
        s1 = build_coupled(order=1)
        s2 = build_coupled(order=1)
        t1, t2 = [], []
        s1.run(3 * s1.dt, callback=lambda s: t1.append(s.t))
        bus = HookBus()
        bus.on_sync(lambda s: t2.append(s.t))
        s2.run(3 * s2.dt, hooks=bus)
        assert t1 == t2


# ---------------------------------------------------------------------------
# supervision through the bus
# ---------------------------------------------------------------------------
class TestResilientRunnerHooks:
    def test_segment_end_hook_fires(self, tmp_path):
        solver = build_coupled(order=1)
        ends = []
        bus = HookBus()
        bus.on_segment_end(lambda s: ends.append(s.t))
        runner = ResilientRunner(
            solver, checkpoint_every=5 * solver.dt,
            checkpoint_dir=str(tmp_path), verbose=False,
        )
        runner.run(10 * solver.dt, hooks=bus)
        assert len(ends) == 2
        assert len(runner.checkpoints_written) == 2
        assert runner.step_count == 10

    def test_supervised_matches_plain_bitwise(self):
        ref = build_coupled(order=1)
        ref.run(0.2)
        sup = build_coupled(order=1)
        ResilientRunner(sup, verbose=False).run(0.2)
        assert_bitwise(ref, sup)

    def test_supervised_lts_matches_plain_bitwise(self):
        s_ref, l_ref = build_coupled(order=1, lts=True)
        l_ref.run(0.2)
        s_sup, l_sup = build_coupled(order=1, lts=True)
        ResilientRunner(s_sup, lts=l_sup, verbose=False).run(0.2)
        assert_bitwise(s_ref, s_sup)
