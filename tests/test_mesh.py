"""Tests for the tetrahedral mesh substrate and generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import FACE_PERMUTATIONS, face_points_to_tet
from repro.core.materials import acoustic, elastic
from repro.core.quadrature import triangle_rule
from repro.core.riemann import FaceKind
from repro.mesh.generators import bathymetry_mesh, box_mesh, layered_ocean_mesh
from repro.mesh.refine import geometric_spacing, refined_spacing, uniform_spacing
from repro.mesh.tetmesh import TetMesh

ROCK = elastic(2700.0, 6000.0, 3464.0)
WATER = acoustic(1000.0, 1500.0)


def small_box(nc=3, L=1.0):
    xs = np.linspace(0, L, nc + 1)
    return box_mesh(xs, xs, xs, [ROCK])


class TestBoxMesh:
    def test_element_count_and_volume(self):
        m = small_box(3)
        assert m.n_elements == 27 * 6
        assert np.isclose(m.volumes.sum(), 1.0)
        assert (m.volumes > 0).all()

    def test_face_count_identity(self):
        m = small_box(3)
        assert 4 * m.n_elements == 2 * len(m.interior) + len(m.boundary)

    def test_normals_orientation(self):
        m = small_box(2)
        d = m.centroids[m.interior.plus_elem] - m.centroids[m.interior.minus_elem]
        assert (np.einsum("ij,ij->i", d, m.interior.normal) > 0).all()
        db = m.boundary.centroid - m.centroids[m.boundary.elem]
        assert (np.einsum("ij,ij->i", db, m.boundary.normal) > 0).all()

    def test_face_point_matching(self):
        """Minus/plus trace quadrature points must coincide physically for
        every orientation class present in the mesh."""
        m = bathymetry_mesh(
            np.linspace(0, 10, 4),
            np.linspace(0, 10, 4),
            lambda x, y: -2 - 0.4 * np.sin(x / 2) - 0.3 * np.cos(y / 2),
            2,
            np.linspace(-8, -2, 3),
            ROCK,
            WATER,
        )
        rs, _ = triangle_rule(3)
        itf = m.interior
        for f in range(len(itf)):
            pm = face_points_to_tet(itf.minus_face[f], rs)
            pp = face_points_to_tet(itf.plus_face[f], rs, FACE_PERMUTATIONS[itf.perm[f]])
            xm = m.map_points(np.array([itf.minus_elem[f]]), pm)[0]
            xp = m.map_points(np.array([itf.plus_elem[f]]), pp)[0]
            assert np.abs(xm - xp).max() < 1e-9

    def test_insphere_diameter(self):
        m = small_box(2)
        # regular Kuhn tet of a cube with edge h: d_in = known positive value < h
        h = 0.5
        assert (m.insphere_diameter < h).all()
        assert (m.insphere_diameter > 0.1 * h).all()

    def test_orientation_fix(self):
        """Deliberately inverted tets are repaired."""
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])
        tets = np.array([[0, 1, 3, 2]])  # negative orientation
        m = TetMesh(verts, tets, [ROCK])
        assert m.volumes[0] > 0

    def test_rejects_degenerate(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0.5, 0.5, 0.0]])
        with pytest.raises(ValueError):
            TetMesh(verts, np.array([[0, 1, 2, 3]]), [ROCK])

    def test_rejects_bad_material_ids(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])
        with pytest.raises(ValueError):
            TetMesh(verts, np.array([[0, 1, 2, 3]]), [ROCK], material_ids=np.array([5]))

    def test_locate_and_reference_coords(self):
        m = small_box(2)
        pts = np.array([[0.1, 0.2, 0.3], [0.9, 0.9, 0.1]])
        elems = m.locate(pts)
        assert (elems >= 0).all()
        for e, x in zip(elems, pts):
            xi = m.reference_coords(int(e), x[None])[0]
            assert (xi > -1e-9).all() and xi.sum() < 1 + 1e-9

    def test_locate_outside(self):
        m = small_box(2)
        assert m.locate(np.array([[5.0, 5.0, 5.0]]))[0] == -1


class TestPeriodic:
    def test_glue_all_axes(self):
        m = small_box(3)
        n_glued = 0
        for vec in np.eye(3):
            n_glued += m.glue_periodic(vec * 1.0)
        assert len(m.boundary) == 0
        assert n_glued * 2 == 6 * 9 * 2  # 2 triangles per cell face, 9 cells per side

    def test_glued_points_match_modulo_translation(self):
        m = small_box(2)
        m.glue_periodic(np.array([1.0, 0, 0]))
        rs, _ = triangle_rule(2)
        itf = m.interior
        # glued faces are the ones whose centroid x == 1.0
        glued = np.flatnonzero(np.abs(itf.centroid[:, 0] - 1.0) < 1e-12)
        assert glued.size > 0
        for f in glued:
            pm = face_points_to_tet(itf.minus_face[f], rs)
            pp = face_points_to_tet(itf.plus_face[f], rs, FACE_PERMUTATIONS[itf.perm[f]])
            xm = m.map_points(np.array([itf.minus_elem[f]]), pm)[0]
            xp = m.map_points(np.array([itf.plus_elem[f]]), pp)[0]
            assert np.abs(xm - np.array([1.0, 0, 0]) - xp).max() < 1e-9


class TestLayeredAndBathymetry:
    def test_layered_material_split(self):
        m = layered_ocean_mesh(
            np.linspace(0, 4, 3),
            np.linspace(0, 4, 3),
            np.linspace(-4, -1, 4),
            np.linspace(-1, 0, 2),
            ROCK,
            WATER,
        )
        z = m.centroids[:, 2]
        assert (m.is_acoustic_elem == (z > -1)).all()

    def test_layered_requires_matching_seafloor(self):
        with pytest.raises(ValueError):
            layered_ocean_mesh(
                np.linspace(0, 4, 3),
                np.linspace(0, 4, 3),
                np.linspace(-4, -1.5, 4),
                np.linspace(-1, 0, 2),
                ROCK,
                WATER,
            )

    def test_bathymetry_interface_follows_floor(self):
        def bathy(x, y):
            return -2.0 - 0.5 * np.sin(x)

        m = bathymetry_mesh(
            np.linspace(0, 6, 7),
            np.linspace(0, 2, 3),
            bathy,
            2,
            np.linspace(-6, -2, 3),
            ROCK,
            WATER,
        )
        # every acoustic element must lie above the local seafloor
        ac = m.is_acoustic_elem
        c = m.centroids
        assert (c[ac, 2] >= bathy(c[ac, 0], c[ac, 1]) - 1e-9).all()
        assert (c[~ac, 2] <= bathy(c[~ac, 0], c[~ac, 1]) + 1e-9).all()
        assert (m.volumes > 0).all()

    def test_tag_boundary(self):
        m = small_box(2)

        def tagger(cent, nrm):
            tags = np.full(len(cent), FaceKind.ABSORBING.value)
            tags[nrm[:, 2] > 0.99] = FaceKind.FREE_SURFACE.value
            return tags

        m.tag_boundary(tagger)
        top = m.boundary.normal[:, 2] > 0.99
        assert (m.boundary.kind[top] == FaceKind.FREE_SURFACE.value).all()
        assert (m.boundary.kind[~top] == FaceKind.ABSORBING.value).all()

    def test_mark_fault(self):
        m = small_box(2)
        n = m.mark_fault(lambda c, nrm: (np.abs(c[:, 0] - 0.5) < 1e-9) & (np.abs(nrm[:, 0]) > 0.99))
        assert n > 0
        assert m.interior.is_fault.sum() == n

    def test_dual_graph(self):
        m = small_box(2)
        edges = m.dual_graph_edges()
        assert edges.shape == (len(m.interior), 2)
        assert (edges[:, 0] != edges[:, 1]).all()


class TestSpacings:
    def test_uniform(self):
        xs = uniform_spacing(0, 10, 5)
        assert len(xs) == 6
        assert np.allclose(np.diff(xs), 2.0)

    def test_geometric_monotone(self):
        xs = geometric_spacing(0, 100, 1.0, 1.3)
        d = np.diff(xs)
        assert (d > 0).all()
        assert xs[0] == 0 and xs[-1] == 100

    def test_refined_window(self):
        xs = refined_spacing(0, 100, 10.0, 1.0, 40, 60)
        d = np.diff(xs)
        inside = (xs[:-1] >= 40) & (xs[1:] <= 60)
        assert d[inside].max() < 1.5
        assert d.max() > 3.0
        assert xs[0] == 0 and xs[-1] == 100
        assert (d > 0).all()

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_uniform_props(self, n):
        xs = uniform_spacing(-1, 1, n)
        assert len(xs) == n + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_spacing(1, 0, 3)
        with pytest.raises(ValueError):
            geometric_spacing(0, 1, -1.0, 1.2)
        with pytest.raises(ValueError):
            refined_spacing(0, 10, 1.0, 2.0, 2, 4)
