"""Kernel-equivalence battery: the fused/jit variants against the batched
golden path.

The batched kernels (``kernel_variant="batched"``) are the seed
implementation this repo's physics tests validated; they stay in the tree
as the golden reference.  This battery locks the fused stacked-GEMM
variant (and the numba jit variant, when numba is installed) to it:

* **golden trajectories** — full coupled runs (GTS gravity + source, and
  clustered LTS with a rupturing fault under a gravity ocean) compared
  state-for-state across variants and worker counts;
* **per-kernel unit comparisons** on random modal states, masked and
  unmasked;
* **property tests** (hypothesis): element-permutation invariance,
  stride/contiguity independence, dtype stability, and idempotence of
  the hoisted plan across replays;
* **plan-cache hygiene** — a batched plan is never served to a fused
  operator (and vice versa), including under ``REPRO_PLAN_CACHE=0``;
* **graceful degradation** — ``jit`` without numba falls back to fused
  with a one-time warning and identical results.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import SpatialOperator
from repro.core.solver import CoupledSolver
from repro.exec import clear_plan_cache, get_plan_cache, plan_key
from repro.exec.backend import JitBackend, make_backend
from repro.kernels import (
    DEFAULT_VARIANT,
    KERNEL_VARIANTS,
    have_numba,
    plan_kind,
    resolve_kernel_variant,
)
from repro.kernels.fusion import MASK_CACHE_MAX, element_plan, fused_ck

from tests.test_exec_equivalence import (
    assert_states_match,
    build_gts,
    build_lts_fault_gravity,
)

#: variants that actually execute in this environment ("jit" resolves to
#: "fused" without numba, making it a duplicate run — test it explicitly
#: in TestJitFallback instead)
_RUNNABLE = ("fused", "jit") if have_numba() else ("fused",)


def _variant_solver(build, variant, **kwargs):
    """Build a rig with an explicit kernel variant on a cold plan cache."""
    clear_plan_cache()

    class _KV(CoupledSolver):
        def __init__(self, *a, **k):
            k.setdefault("kernel_variant", variant)
            super().__init__(*a, **k)

    import tests.test_exec_equivalence as rigs

    orig = rigs.CoupledSolver
    rigs.CoupledSolver = _KV
    try:
        return build(**kwargs)
    finally:
        rigs.CoupledSolver = orig


# ----------------------------------------------------------------------
# golden trajectories: full runs, state-for-state
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_gts():
    """Batched-path GTS trajectory (gravity surface + explosive source)."""
    solver = _variant_solver(build_gts, "batched", order=2)
    solver.run(0.25)
    return solver


@pytest.fixture(scope="module")
def golden_lts():
    """Batched-path clustered-LTS trajectory with a rupturing fault."""
    solver, fault, lts = _variant_solver(build_lts_fault_gravity, "batched")
    lts.run(0.3)
    assert (fault.slip > 0).any(), "golden fixture must actually rupture"
    return solver


class TestGoldenTrajectories:
    @pytest.mark.parametrize("variant", _RUNNABLE)
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("partitioned", 1), ("partitioned", 2),
        ("partitioned", 4),
    ])
    def test_gts(self, golden_gts, variant, backend, workers):
        solver = _variant_solver(build_gts, variant, order=2,
                                 backend=backend, workers=workers)
        solver.run(0.25)
        assert_states_match(golden_gts, solver,
                            f"({variant}/{backend}/w={workers} vs batched)")

    @pytest.mark.parametrize("variant", _RUNNABLE)
    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("partitioned", 2), ("partitioned", 4),
    ])
    def test_lts_fault_gravity(self, golden_lts, variant, backend, workers):
        solver, fault, lts = _variant_solver(
            build_lts_fault_gravity, variant, backend=backend, workers=workers)
        lts.run(0.3)
        assert_states_match(golden_lts, solver,
                            f"({variant}/{backend}/w={workers} vs batched)")

    def test_jit_backend_runs_gts(self, golden_gts):
        """--backend jit end to end (compiled loops with numba, fused
        fallback without — either way the trajectory must match)."""
        clear_plan_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = build_gts(order=2, backend="jit")
        solver.run(0.25)
        assert_states_match(golden_gts, solver, "(jit backend vs batched)")


# ----------------------------------------------------------------------
# per-kernel unit comparisons
# ----------------------------------------------------------------------
def _operator_pair(variant, order=2):
    """(batched op, variant op) over the same GTS mesh."""
    clear_plan_cache()
    solver = build_gts(order=order)
    mesh = solver.mesh
    clear_plan_cache()
    ref_op = SpatialOperator(mesh, order, kernel_variant="batched")
    clear_plan_cache()
    var_op = SpatialOperator(mesh, order, kernel_variant=variant)
    return ref_op, var_op


def _assert_close(a, b, label, rtol=1e-12):
    scale = max(float(np.abs(a).max()), 1e-300)
    np.testing.assert_allclose(b, a, rtol=rtol, atol=rtol * scale,
                               err_msg=label)


class TestKernelUnits:
    @pytest.mark.parametrize("variant", _RUNNABLE)
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_predictor(self, variant, order):
        ref_op, var_op = _operator_pair(variant, order=order)
        rng = np.random.default_rng(order)
        Q = rng.normal(size=(ref_op.n_elements, ref_op.nbasis, 9))
        _assert_close(ref_op.predict(Q), var_op.predict(Q),
                      f"predictor ({variant}, order {order})")

    @pytest.mark.parametrize("variant", _RUNNABLE)
    @pytest.mark.parametrize("kernel", ["volume_residual",
                                        "interior_residual",
                                        "boundary_residual"])
    @pytest.mark.parametrize("masked", [False, True])
    def test_residuals(self, variant, kernel, masked):
        ref_op, var_op = _operator_pair(variant)
        rng = np.random.default_rng(42)
        I = rng.normal(size=(ref_op.n_elements, ref_op.nbasis, 9))
        active = (rng.random(ref_op.n_elements) < 0.4) if masked else None
        out_ref = np.zeros_like(I)
        out_var = np.zeros_like(I)
        getattr(ref_op, kernel)(I, out_ref, active=active)
        getattr(var_op, kernel)(I, out_var, active=active)
        _assert_close(out_ref, out_var,
                      f"{kernel} ({variant}, masked={masked})")

    @pytest.mark.parametrize("variant", _RUNNABLE)
    def test_predictor_out_buffer_reuse(self, variant):
        """The `out` scratch hint: reusing a prior result buffer returns
        that same buffer with values identical to a fresh allocation, and
        a shape-mismatched hint is ignored."""
        _, var_op = _operator_pair(variant)
        rng = np.random.default_rng(11)
        shape = (var_op.n_elements, var_op.nbasis, 9)
        Q1 = rng.normal(size=shape)
        Q2 = rng.normal(size=shape)
        buf = var_op.predict(Q1)
        fresh = var_op.predict(Q2)
        reused = var_op.predict(Q2, out=buf)
        assert reused is buf
        np.testing.assert_array_equal(reused, fresh)
        # mismatched hint: fall back to a fresh, correct allocation
        n = 5
        small = var_op.predict_states(Q2[:n], var_op.star[:n],
                                      var_op.starT[:n], out=buf)
        assert small is not buf
        np.testing.assert_array_equal(small, fresh[:n])

    def test_serial_backend_reuses_predictor_buffer(self):
        """Steady state: the serial backend hands last step's derivative
        buffer back as scratch (page-fault churn was the dominant
        predictor cost before this)."""
        solver = _variant_solver(build_gts, "fused", order=2)
        d1 = solver.backend.predict(solver.Q)
        d2 = solver.backend.predict(solver.Q)
        assert d2 is d1
        # batched golden path keeps its allocate-fresh semantics
        solver_b = _variant_solver(build_gts, "batched", order=1)
        b1 = solver_b.backend.predict(solver_b.Q)
        b2 = solver_b.backend.predict(solver_b.Q)
        assert b2 is not b1

    @pytest.mark.parametrize("variant", _RUNNABLE)
    def test_truncated_levels_are_exact_zero(self, variant):
        """Degree truncation: fused CK levels carry exact zeros where the
        batched path accumulates ~1e-16 quadrature noise."""
        ref_op, var_op = _operator_pair(variant, order=2)
        rng = np.random.default_rng(7)
        Q = rng.normal(size=(var_op.n_elements, var_op.nbasis, 9))
        derivs = var_op.predict(Q)
        plan = element_plan(var_op.order)
        for k in range(1, var_op.order + 1):
            dead = plan.perm[plan.sizes[k]:]
            assert (derivs[:, k, dead, :] == 0.0).all()


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def prop_op():
    clear_plan_cache()
    solver = build_gts(order=2)
    clear_plan_cache()
    return SpatialOperator(solver.mesh, 2, kernel_variant="fused")


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_element_permutation_invariance(self, prop_op, seed):
        """Permuting the element batch permutes the predictor output: no
        hidden cross-element coupling in the stacked GEMMs."""
        op = prop_op
        rng = np.random.default_rng(seed)
        Q = rng.normal(size=(op.n_elements, op.nbasis, 9))
        perm = rng.permutation(op.n_elements)
        base = op.predict_states(Q, op.star, op.starT)
        permuted = op.predict_states(Q[perm], op.star[perm], op.starT[perm])
        np.testing.assert_array_equal(permuted, base[perm])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_stride_independence(self, prop_op, seed):
        """Non-contiguous views (transposed copies, sliced supersets) give
        bitwise-identical results to contiguous inputs."""
        op = prop_op
        rng = np.random.default_rng(seed)
        Q = rng.normal(size=(op.n_elements, op.nbasis, 9))
        contiguous = op.predict(Q)

        # a transposed-then-transposed view: same values, exotic strides
        Qt = np.ascontiguousarray(Q.transpose(2, 1, 0)).transpose(2, 1, 0)
        assert not Qt.flags.c_contiguous
        np.testing.assert_array_equal(op.predict(Qt), contiguous)

        # every other row of a doubled array: sliced, non-contiguous
        doubled = np.repeat(Q, 2, axis=0)[::2]
        assert not doubled.flags.c_contiguous
        np.testing.assert_array_equal(op.predict(doubled), contiguous)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_dtype_stability(self, prop_op, seed):
        """float64 in, float64 out at every stage — no silent float32
        downcast anywhere in the fused chains."""
        op = prop_op
        rng = np.random.default_rng(seed)
        Q = rng.normal(size=(op.n_elements, op.nbasis, 9))
        derivs = op.predict(Q)
        assert derivs.dtype == np.float64
        out = np.zeros_like(Q)
        active = rng.random(op.n_elements) < 0.5
        op.volume_residual(Q, out, active=active)
        op.interior_residual(Q, out, active=active)
        op.boundary_residual(Q, out, active=active)
        assert out.dtype == np.float64
        plan = element_plan(op.order)
        assert plan.DT.dtype == np.float64
        assert all(D.dtype == np.float64 for D in plan.Dstacks)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_masked_replay_idempotent(self, prop_op, seed):
        """Replaying the same activity mask (the LTS cadence) through the
        cached masked sub-plans is bitwise-stable across repetitions."""
        op = prop_op
        rng = np.random.default_rng(seed)
        I = rng.normal(size=(op.n_elements, op.nbasis, 9))
        active = rng.random(op.n_elements) < 0.3
        first = np.zeros_like(I)
        op.interior_residual(I, first, active=active)
        for _ in range(3):
            again = np.zeros_like(I)
            op.interior_residual(I, again, active=active)
            np.testing.assert_array_equal(again, first)

    def test_mask_cache_is_bounded(self, prop_op):
        """Distinct masks beyond MASK_CACHE_MAX evict LRU-style instead of
        growing without bound."""
        op = prop_op
        rng = np.random.default_rng(0)
        I = rng.normal(size=(op.n_elements, op.nbasis, 9))
        out = np.zeros_like(I)
        for _ in range(MASK_CACHE_MAX + 10):
            active = rng.random(op.n_elements) < 0.3
            op.volume_residual(I, out, active=active)
        assert len(op._mask_cache_volume) <= MASK_CACHE_MAX


# ----------------------------------------------------------------------
# plan-cache hygiene across variants
# ----------------------------------------------------------------------
class TestPlanCacheInvalidation:
    def test_plan_kinds_get_distinct_keys(self):
        clear_plan_cache()
        solver = build_gts(order=2)
        mesh = solver.mesh
        k_batched = plan_key(mesh, 2, "exact", kind="batched")
        k_fused = plan_key(mesh, 2, "exact", kind="fused")
        assert k_batched != k_fused
        # the default kind matches the pre-variant call signature
        assert plan_key(mesh, 2, "exact") == k_batched

    def test_no_stale_batched_plan_served_to_fused(self):
        """Building batched first must not hand its (factor-less) plan to
        a fused operator on the same mesh fingerprint."""
        clear_plan_cache()
        solver = build_gts(order=2)
        mesh = solver.mesh
        clear_plan_cache()
        op_b = SpatialOperator(mesh, 2, kernel_variant="batched")
        op_f = SpatialOperator(mesh, 2, kernel_variant="fused")
        assert op_f.interior_groups is not op_b.interior_groups
        for grp in op_f.interior_groups:
            assert hasattr(grp, "Amm") and hasattr(grp, "G1")
        # and a second fused operator *does* share the fused plan
        op_f2 = SpatialOperator(mesh, 2, kernel_variant="fused")
        assert op_f2.interior_groups is op_f.interior_groups
        # jit shares the fused plan kind (same folded factors)
        if have_numba():
            op_j = SpatialOperator(mesh, 2, kernel_variant="jit")
            assert op_j.interior_groups is op_f.interior_groups

    def test_kill_switch_disables_sharing(self, monkeypatch):
        """REPRO_PLAN_CACHE=0: every operator builds its own plan, and the
        variants remain correct (nothing depends on cache hits)."""
        clear_plan_cache()
        solver = build_gts(order=2)
        mesh = solver.mesh
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        clear_plan_cache()
        cache = get_plan_cache()
        assert not cache.enabled
        op_f1 = SpatialOperator(mesh, 2, kernel_variant="fused")
        op_f2 = SpatialOperator(mesh, 2, kernel_variant="fused")
        assert op_f1.interior_groups is not op_f2.interior_groups
        assert len(cache) == 0
        rng = np.random.default_rng(3)
        I = rng.normal(size=(op_f1.n_elements, op_f1.nbasis, 9))
        o1 = np.zeros_like(I)
        o2 = np.zeros_like(I)
        op_f1.interior_residual(I, o1)
        op_f2.interior_residual(I, o2)
        np.testing.assert_array_equal(o1, o2)

    def test_restricted_operators_inherit_variant(self):
        clear_plan_cache()
        solver = build_gts(order=2, backend="partitioned", workers=2)
        for plan in solver.backend.plans:
            assert plan.lop.kernel_variant == solver.op.kernel_variant
            assert plan.lop.plan_kind == solver.op.plan_kind


# ----------------------------------------------------------------------
# variant registry + graceful degradation
# ----------------------------------------------------------------------
class TestVariantRegistry:
    def test_registry_surface(self):
        assert KERNEL_VARIANTS == ("batched", "fused", "jit")
        assert DEFAULT_VARIANT in KERNEL_VARIANTS
        assert resolve_kernel_variant(None) == DEFAULT_VARIANT
        assert resolve_kernel_variant("batched") == "batched"
        assert plan_kind("batched") == "batched"
        assert plan_kind("fused") == "fused"
        assert plan_kind("jit") == "fused"
        with pytest.raises(ValueError, match="unknown kernel variant"):
            resolve_kernel_variant("simd")
        with pytest.raises(ValueError, match="unknown kernel variant"):
            plan_kind("simd")

    def test_jit_resolution_matches_environment(self):
        resolved = resolve_kernel_variant("jit")
        if have_numba():
            assert resolved == "jit"
        else:
            assert resolved == "fused"

    def test_jit_fallback_warns_once(self):
        """Without numba, requesting jit warns (once per process) and runs
        the fused path; with numba it must not warn at all."""
        import repro.kernels.registry as registry

        if have_numba():
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_kernel_variant("jit") == "jit"
            return
        old = registry._FALLBACK_WARNED
        registry._FALLBACK_WARNED = False
        try:
            with pytest.warns(RuntimeWarning, match="numba is not installed"):
                assert resolve_kernel_variant("jit") == "fused"
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_kernel_variant("jit") == "fused"
        finally:
            registry._FALLBACK_WARNED = old

    def test_jit_backend_describe_shows_fallback(self):
        clear_plan_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = build_gts(order=1, backend="jit")
        assert isinstance(solver.backend, JitBackend)
        if have_numba():
            assert solver.op.kernel_variant == "jit"
            assert solver.backend.describe() == "jit"
        else:
            assert solver.op.kernel_variant == "fused"
            assert solver.backend.describe() == "jit (fallback: fused)"

    def test_jit_backend_rejects_workers(self):
        with pytest.raises(ValueError, match="one worker"):
            make_backend("jit", workers=2)

    def test_explicit_variant_overrides_backend(self):
        """kernel_variant= beats the backend's implied variant."""
        clear_plan_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            solver = build_gts(order=1, backend="jit")
            clear_plan_cache()

            import tests.test_exec_equivalence as rigs

            class _KV(CoupledSolver):
                def __init__(self, *a, **k):
                    k.setdefault("kernel_variant", "batched")
                    super().__init__(*a, **k)

            orig = rigs.CoupledSolver
            rigs.CoupledSolver = _KV
            try:
                forced = rigs.build_gts(order=1, backend="jit")
            finally:
                rigs.CoupledSolver = orig
        assert forced.op.kernel_variant == "batched"
        assert solver.op.kernel_variant in ("jit", "fused")


# ----------------------------------------------------------------------
# fused kernels report under their own phase names
# ----------------------------------------------------------------------
class TestPhaseNames:
    def test_variant_phase_suffix(self):
        clear_plan_cache()
        solver = build_gts(order=1)
        mesh = solver.mesh
        clear_plan_cache()
        op_b = SpatialOperator(mesh, 1, kernel_variant="batched")
        op_f = SpatialOperator(mesh, 1, kernel_variant="fused")
        assert op_b._phase_volume == "kernels/volume"
        assert op_f._phase_volume == "kernels/volume_fused"
        assert op_f._phase_interior == "kernels/surface_interior_fused"
        assert op_f._phase_boundary == "kernels/surface_boundary_fused"

    def test_report_sums_fused_phases(self):
        from repro.obs.report import _CORRECTOR_PHASES

        for name in ("kernels/volume_fused", "kernels/surface_interior_fused",
                     "kernels/surface_boundary_fused"):
            assert name in _CORRECTOR_PHASES


def test_fused_flop_counts_stay_under_batched():
    """The fused variant must never be credited with more FLOPs than the
    batched chain it replaces (the roofline gate in bench_compare relies
    on honest accounting)."""
    from repro.hpc.perfmodel import kernel_counts

    for order in (1, 2, 3, 4, 5):
        kb = kernel_counts(order, variant="batched")
        kf = kernel_counts(order, variant="fused")
        assert kf.flops_predictor < kb.flops_predictor
        assert kf.flops_surface <= kb.flops_surface
        assert kf.flops_volume == kb.flops_volume
        # traffic is unchanged: fusion removes work, not state
        assert kf.bytes_predictor == kb.bytes_predictor
        assert kf.bytes_surface == kb.bytes_surface
        assert kernel_counts(order, variant="jit").flops_predictor == \
            kf.flops_predictor
    with pytest.raises(ValueError, match="unknown kernel variant"):
        kernel_counts(3, variant="simd")
