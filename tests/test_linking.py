"""Tests for the one-way-linking pipeline (3D -> Cartesian grid -> SWE)."""

import numpy as np
import pytest

from repro.core.materials import elastic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh
from repro.tsunami.linking import (
    BedMotionInterpolator,
    SurfaceDisplacementTracker,
    link_static_uplift,
)
from repro.tsunami.swe import ShallowWaterSolver

ROCK1 = elastic(1.0, 2.0, 1.0)


def surface_solver():
    xs = np.linspace(0, 2, 5)
    m = box_mesh(xs, xs, np.linspace(-1, 0, 3), [ROCK1])

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.ABSORBING.value)
        tags[nrm[:, 2] > 0.99] = FaceKind.FREE_SURFACE.value
        return tags

    m.tag_boundary(tagger)
    return CoupledSolver(m, order=2)


class TestTracker:
    def test_integrates_constant_velocity(self):
        s = surface_solver()

        def ic(x):
            out = np.zeros((len(x), 9))
            out[:, 8] = 0.5
            return out

        s.set_initial_condition(ic)
        tr = SurfaceDisplacementTracker(s)
        n = 5
        for _ in range(n):
            s.step(0.01)
            tr(s)
        # uz ~ v_z * t at early times (waves already redistribute the
        # motion, so only the mean and order of magnitude are checked)
        assert np.isclose(tr.uz.mean(), 0.5 * s.t, rtol=0.2)
        assert tr.uz.min() > 0

    def test_snapshot_grid_interpolation(self):
        s = surface_solver()
        tr = SurfaceDisplacementTracker(s)
        # impose an analytic displacement field and grid it
        tr.uz[:] = tr.points[:, :, 0] + 2.0 * tr.points[:, :, 1]
        xs = np.linspace(0.2, 1.8, 9)
        grid = tr.snapshot_grid(xs, xs)
        xc = 0.5 * (xs[:-1] + xs[1:])
        X, Y = np.meshgrid(xc, xc, indexing="ij")
        assert np.allclose(grid, X + 2 * Y, atol=1e-6)

    def test_requires_matching_faces(self):
        s = surface_solver()
        with pytest.raises(ValueError):
            SurfaceDisplacementTracker(s, kinds=(FaceKind.GRAVITY_FREE_SURFACE,))

    def test_record_snapshot_history(self):
        s = surface_solver()
        tr = SurfaceDisplacementTracker(s)
        tr.record_snapshot()
        s.step(0.01)
        tr(s)
        tr.record_snapshot()
        assert len(tr.history) == 2
        assert tr.history[0][0] == 0.0


class TestBedMotion:
    def test_interpolates_linearly(self):
        b0 = np.zeros((4, 4))
        times = np.array([1.0, 2.0])
        snaps = np.stack([np.ones((4, 4)), 3 * np.ones((4, 4))])
        bm = BedMotionInterpolator(b0, times, snaps)
        assert np.allclose(bm(1.5), 2.0)
        assert np.allclose(bm(0.5), 0.5)  # ramp from zero before first snap
        assert np.allclose(bm(10.0), 3.0)  # static after the last

    def test_validation(self):
        with pytest.raises(ValueError):
            BedMotionInterpolator(np.zeros((2, 2)), np.array([1.0]), np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            BedMotionInterpolator(np.zeros((2, 2)), np.array([]), np.zeros((0, 2, 2)))
        with pytest.raises(ValueError):
            BedMotionInterpolator(
                np.zeros((2, 2)), np.array([2.0, 1.0]), np.zeros((2, 2, 2))
            )


class TestStaticLink:
    def test_okada_uplift_initializes_surface(self):
        xs = np.linspace(0, 100, 51)
        swe = ShallowWaterSolver(xs, xs, lambda X, Y: np.full_like(X, -5.0), boundary="wall")
        uplift = 0.4 * np.exp(-((swe.X - 50) ** 2 + (swe.Y - 50) ** 2) / 100.0)
        link_static_uplift(swe, uplift)
        assert np.isclose(swe.eta.max(), uplift.max(), rtol=1e-9)
        v0 = swe.volume()
        swe.run(1.0)
        assert abs(swe.volume() - v0) < 1e-9 * v0


class TestEndToEnd:
    def test_pulse_to_tsunami_pipeline(self):
        """A rising seafloor in the 3D model drives the SWE through the full
        tracker -> grid -> bed-motion pipeline."""
        s = surface_solver()

        def ic(x):
            out = np.zeros((len(x), 9))
            out[:, 8] = 0.2 * np.exp(-(((x[:, 0] - 1) ** 2 + (x[:, 1] - 1) ** 2) / 0.3))
            return out

        s.set_initial_condition(ic)
        tr = SurfaceDisplacementTracker(s)
        snapshots = [(0.0, tr.uz.copy())]
        for _ in range(6):
            s.step(0.02)
            tr(s)
            snapshots.append((s.t, tr.uz.copy()))
        assert tr.uz.max() > 0.001

        xs = np.linspace(0, 2, 21)
        swe = ShallowWaterSolver(xs, xs, lambda X, Y: np.full_like(X, -0.5), boundary="wall")
        times = np.array([t for t, _ in snapshots])
        grids = np.stack([tr.snapshot_grid(xs, xs, uz) for _, uz in snapshots])
        b0 = np.full((20, 20), -0.5)
        swe.set_bed_motion(BedMotionInterpolator(b0, times, grids))
        swe.run(times[-1])
        assert swe.eta.max() > 0.0005
