"""Tests for the Okada (1985) half-space dislocation solution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsunami.okada import OkadaFault


class TestScrewDislocationLimit:
    def test_matches_2d_antiplane_solution(self):
        """Infinitely long, surface-breaking vertical strike-slip fault:
        the along-strike displacement is the classical screw dislocation
        ``u = (U / pi) arctan(D / y)`` — an *exact* closed-form check."""
        D, U = 1.0, 1.0
        f = OkadaFault(length=10000.0, width=D, depth=0.0, dip=90.0, slip_strike=U, strike=90.0)
        y = np.array([0.05, 0.1, 0.3, 1.0, 3.0])
        u = f.displacement(np.zeros_like(y), y)
        exact = (U / np.pi) * np.arctan(D / y)
        assert np.allclose(np.abs(u[0]), exact, rtol=1e-5)
        assert np.abs(u[2]).max() < 1e-10

    def test_slip_discontinuity_across_trace(self):
        f = OkadaFault(length=10000.0, width=2.0, depth=0.0, dip=90.0, slip_strike=1.0, strike=90.0)
        up = f.displacement(np.array([0.0]), np.array([1e-4]))[0, 0]
        dn = f.displacement(np.array([0.0]), np.array([-1e-4]))[0, 0]
        assert np.isclose(abs(up - dn), 1.0, rtol=1e-3)


class TestThrustPattern:
    def test_uplift_dominates_subsidence(self):
        """Shallow-dip thrust: strong uplift above the hanging wall, weaker
        subsidence trough — the textbook megathrust pattern."""
        f = OkadaFault(length=100e3, width=50e3, depth=5e3, dip=16.0, slip_dip=5.0)
        x = np.linspace(-150e3, 150e3, 151)
        X, Y = np.meshgrid(x, x, indexing="ij")
        uz = f.displacement(X, Y)[2]
        assert 0.2 * 5.0 < uz.max() < 0.8 * 5.0
        assert uz.min() < -0.02 * 5.0
        assert abs(uz.min()) < uz.max()

    def test_uplift_efficiency_peaks_at_moderate_dip(self):
        """Vertical uplift efficiency of a buried thrust is maximal at
        moderate dip and decays toward both horizontal and vertical dip."""
        x = np.linspace(-100e3, 100e3, 101)
        X, Y = np.meshgrid(x, x, indexing="ij")
        peaks = {}
        for dip in (2.0, 10.0, 30.0, 89.0):
            f = OkadaFault(length=50e3, width=20e3, depth=10e3, dip=dip, slip_dip=2.0)
            peaks[dip] = f.displacement(X, Y)[2].max()
        assert peaks[2.0] < peaks[10.0] < peaks[30.0]
        assert peaks[89.0] < peaks[30.0]


class TestSymmetries:
    def test_strike_slip_quadrant_antisymmetry(self):
        f = OkadaFault(length=60e3, width=20e3, depth=1e3, dip=89.99, slip_strike=3.0)
        x = np.linspace(-100e3, 100e3, 81)
        X, Y = np.meshgrid(x, x, indexing="ij")
        uz = f.displacement(X, Y)[2]
        scale = np.abs(uz).max()
        assert np.abs(uz + uz[::-1, :]).max() < 1e-3 * scale
        assert np.abs(uz + uz[:, ::-1]).max() < 1e-3 * scale

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=10, deadline=None)
    def test_linearity_in_slip(self, slip):
        f1 = OkadaFault(length=40e3, width=20e3, depth=5e3, dip=30.0, slip_dip=1.0)
        fs = OkadaFault(length=40e3, width=20e3, depth=5e3, dip=30.0, slip_dip=slip)
        pts = np.array([10e3, -5e3]), np.array([7e3, 12e3])
        u1 = f1.displacement(*pts)
        us = fs.displacement(*pts)
        assert np.allclose(us, slip * u1, rtol=1e-10)

    def test_far_field_decay(self):
        f = OkadaFault(length=40e3, width=20e3, depth=5e3, dip=30.0, slip_dip=2.0)
        near = np.abs(f.displacement(np.array([0.0]), np.array([10e3]))).max()
        far = np.abs(f.displacement(np.array([0.0]), np.array([1000e3]))).max()
        assert far < 1e-3 * near

    def test_strike_rotation_consistency(self):
        """Rotating the fault and the observation points together leaves the
        (co-rotated) displacement invariant."""
        f0 = OkadaFault(length=40e3, width=20e3, depth=5e3, dip=30.0, slip_dip=2.0, strike=0.0)
        f90 = OkadaFault(length=40e3, width=20e3, depth=5e3, dip=30.0, slip_dip=2.0, strike=90.0)
        p = np.array([7e3, 12e3])
        u0 = f0.displacement(np.array([p[0]]), np.array([p[1]]))
        # strike=0 frame point (x, y) corresponds to strike=90 point (y, -x)
        u90 = f90.displacement(np.array([p[1]]), np.array([-p[0]]))
        assert np.isclose(u0[2, 0], u90[2, 0], rtol=1e-9)
        # horizontal components co-rotate (90 deg clockwise)
        assert np.isclose(u0[0, 0], -u90[1, 0], rtol=1e-9, atol=1e-15)
        assert np.isclose(u0[1, 0], u90[0, 0], rtol=1e-9, atol=1e-15)
