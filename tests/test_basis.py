"""Tests for the orthonormal Dubiner bases and reference-element operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basis import (
    FACE_PERMUTATIONS,
    TET_FACES,
    basis_size,
    face_points_to_tet,
    get_reference_element,
    grad_jacobi_p,
    jacobi_p,
    tet_basis,
    tet_basis_grad,
    tri_basis,
    tri_basis_grad,
)
from repro.core.quadrature import tetrahedron_rule, triangle_rule


class TestJacobi:
    @pytest.mark.parametrize("alpha,beta", [(0, 0), (1, 0), (3, 0), (2, 1)])
    def test_orthonormality(self, alpha, beta):
        from scipy.special import roots_jacobi

        x, w = roots_jacobi(12, alpha, beta)
        for n in range(5):
            for m in range(5):
                val = np.sum(w * jacobi_p(x, alpha, beta, n) * jacobi_p(x, alpha, beta, m))
                assert np.isclose(val, 1.0 if n == m else 0.0, atol=1e-12)

    def test_gradient_fd(self):
        x = np.linspace(-0.9, 0.9, 7)
        h = 1e-6
        for n in range(5):
            fd = (jacobi_p(x + h, 2, 0, n) - jacobi_p(x - h, 2, 0, n)) / (2 * h)
            assert np.allclose(grad_jacobi_p(x, 2, 0, n), fd, atol=1e-6)


class TestBasisSize:
    def test_known_values(self):
        assert basis_size(0) == 1
        assert basis_size(1) == 4
        assert basis_size(2) == 10
        assert basis_size(5) == 56
        assert basis_size(2, dim=2) == 6

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            basis_size(2, dim=4)


class TestTetBasis:
    @pytest.mark.parametrize("order", [0, 1, 2, 3, 4, 5])
    def test_orthonormal(self, order):
        pts, w = tetrahedron_rule(order + 2)
        V = tet_basis(pts, order)
        M = V.T @ (w[:, None] * V)
        assert np.abs(M - np.eye(V.shape[1])).max() < 1e-12

    def test_first_mode_constant(self):
        pts = np.random.default_rng(0).random((5, 3)) * 0.3
        V = tet_basis(pts, 3)
        # orthonormal constant mode = sqrt(6) on the unit tet (volume 1/6)
        assert np.allclose(V[:, 0], np.sqrt(6.0))

    def test_gradient_matches_fd(self):
        pts = np.array([[0.2, 0.3, 0.1], [0.1, 0.1, 0.6], [0.25, 0.25, 0.25]])
        G = tet_basis_grad(pts, 4)
        h = 1e-6
        for d in range(3):
            e = np.zeros(3)
            e[d] = h
            fd = (tet_basis(pts + e, 4) - tet_basis(pts - e, 4)) / (2 * h)
            assert np.abs(fd - G[d]).max() < 1e-5

    def test_completeness_linear(self):
        """P1 functions must be exactly representable."""
        pts, w = tetrahedron_rule(4)
        V = tet_basis(pts, 1)
        f = 1.0 + 2 * pts[:, 0] - 3 * pts[:, 1] + 0.5 * pts[:, 2]
        coeff = V.T @ (w * f)
        assert np.allclose(V @ coeff, f, atol=1e-13)

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=5, deadline=None)
    def test_face_eval_consistency(self, face):
        """Basis traces evaluated through face maps match direct evaluation."""
        face = face % 4
        rs, _ = triangle_rule(3)
        pts = face_points_to_tet(face, rs)
        assert np.allclose(tet_basis(pts, 2), tet_basis(pts.copy(), 2))


class TestTriBasis:
    @pytest.mark.parametrize("order", [0, 1, 2, 3, 4])
    def test_orthonormal(self, order):
        pts, w = triangle_rule(order + 2)
        V = tri_basis(pts, order)
        M = V.T @ (w[:, None] * V)
        assert np.abs(M - np.eye(V.shape[1])).max() < 1e-12

    def test_gradient_fd(self):
        pts = np.array([[0.2, 0.3], [0.4, 0.1]])
        G = tri_basis_grad(pts, 3)
        h = 1e-6
        for d in range(2):
            e = np.zeros(2)
            e[d] = h
            fd = (tri_basis(pts + e, 3) - tri_basis(pts - e, 3)) / (2 * h)
            assert np.abs(fd - G[d]).max() < 1e-5


class TestFaceGeometry:
    def test_face_points_on_faces(self):
        rs, _ = triangle_rule(3)
        for f in range(4):
            pts = face_points_to_tet(f, rs)
            if f == 0:
                assert np.allclose(pts[:, 2], 0)
            elif f == 1:
                assert np.allclose(pts[:, 1], 0)
            elif f == 2:
                assert np.allclose(pts[:, 0], 0)
            else:
                assert np.allclose(pts.sum(axis=1), 1)

    def test_permutations_cover_same_points(self):
        rs, _ = triangle_rule(2)
        for perm in FACE_PERMUTATIONS:
            pts = face_points_to_tet(2, rs, perm)
            # same physical face, possibly reordered points
            assert np.allclose(pts[:, 0], 0)

    def test_face_vertex_tuples_outward(self):
        verts = np.array(
            [[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]]
        )
        centroid = verts.mean(axis=0)
        for f, (a, b, c) in enumerate(TET_FACES):
            n = np.cross(verts[b] - verts[a], verts[c] - verts[a])
            assert n @ (verts[a] - centroid) > 0, f


class TestReferenceElement:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_integration_by_parts(self, order):
        """deriv[d] + deriv[d]^T must equal the boundary bilinear form."""
        ref = get_reference_element(order)
        for d in range(3):
            lhs = ref.deriv[d] + ref.deriv[d].T
            # boundary term: sum_f int_f phi_l phi_m n_d dS
            rhs = np.zeros_like(lhs)
            normals = {
                0: np.array([0.0, 0, -1]),
                1: np.array([0.0, -1, 0]),
                2: np.array([-1.0, 0, 0]),
                3: np.array([1.0, 1, 1]) / np.sqrt(3),
            }
            scales = {0: 1.0, 1: 1.0, 2: 1.0, 3: np.sqrt(3)}  # 2*area factors
            for f in range(4):
                E = ref.E_minus[f]
                rhs += normals[f][d] * scales[f] * (E.T @ (ref.face_weights[:, None] * E))
            assert np.abs(lhs - rhs).max() < 1e-11

    def test_cached(self):
        assert get_reference_element(2) is get_reference_element(2)

    def test_rejects_negative_order(self):
        with pytest.raises(ValueError):
            get_reference_element(-1)

    def test_shapes(self):
        ref = get_reference_element(3)
        B = basis_size(3)
        assert ref.nbasis == B
        assert ref.deriv.shape == (3, B, B)
        assert ref.E_minus.shape[0] == 4
        assert ref.E_plus.shape[:2] == (4, 6)
