"""Tests for the I/O writers and the kinematic finite-fault source."""

import numpy as np
import pytest

from repro.analysis.receivers import ReceiverArray
from repro.core.materials import elastic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.io import load_receivers, save_receivers, write_vtk_surface, write_vtk_unstructured
from repro.mesh.generators import box_mesh
from repro.rupture.kinematic import KinematicFault, smoothed_ramp_rate

ROCK = elastic(2700.0, 6000.0, 3464.0)


def small_solver():
    m = box_mesh(*(np.linspace(0, 2000.0, 5),) * 3, [ROCK])
    m.tag_boundary(lambda c, n: np.full(len(c), FaceKind.ABSORBING.value))
    return CoupledSolver(m, order=2)


class TestVTK:
    def test_volume_writer_roundtrip_structure(self, tmp_path):
        m = box_mesh(*(np.linspace(0, 1, 3),) * 3, [ROCK])
        path = tmp_path / "mesh.vtk"
        write_vtk_unstructured(
            str(path),
            m,
            cell_data={"volume": m.volumes, "centroid": m.centroids},
            point_data={"z": m.vertices[:, 2]},
        )
        text = path.read_text()
        assert f"POINTS {m.n_vertices} double" in text
        assert f"CELLS {m.n_elements} {m.n_elements * 5}" in text
        assert "SCALARS volume double 1" in text
        assert "VECTORS centroid double" in text
        assert "SCALARS z double 1" in text
        # every cell line starts with '4' and indices are in range
        lines = text.splitlines()
        i = lines.index(f"CELLS {m.n_elements} {m.n_elements * 5}")
        for row in lines[i + 1 : i + 1 + m.n_elements]:
            vals = row.split()
            assert vals[0] == "4"
            assert all(0 <= int(v) < m.n_vertices for v in vals[1:])

    def test_volume_writer_validates_lengths(self, tmp_path):
        m = box_mesh(*(np.linspace(0, 1, 3),) * 3, [ROCK])
        with pytest.raises(ValueError):
            write_vtk_unstructured(str(tmp_path / "x.vtk"), m, cell_data={"bad": np.ones(3)})

    def test_surface_writer(self, tmp_path):
        pts = np.random.default_rng(0).random((20, 3))
        path = tmp_path / "surf.vtk"
        write_vtk_surface(str(path), pts, {"eta": np.arange(20.0)})
        text = path.read_text()
        assert "POINTS 20 double" in text
        assert "SCALARS eta double 1" in text


class TestReceiverIO:
    def test_roundtrip(self, tmp_path):
        s = small_solver()
        rec = ReceiverArray(s, np.array([[1000.0, 1000.0, 1000.0]]))
        rec.record()
        s.step()
        rec.record()
        path = tmp_path / "rec.npz"
        save_receivers(str(path), rec, metadata={"scenario": "test", "order": 2})
        t, samples, pos, meta = load_receivers(str(path))
        assert len(t) == 2
        assert samples.shape == (2, 1, 9)
        assert np.allclose(pos, [[1000.0, 1000.0, 1000.0]])
        assert meta["scenario"] == "test"

    def test_rejects_empty(self, tmp_path):
        s = small_solver()
        rec = ReceiverArray(s, np.array([[1000.0, 1000.0, 1000.0]]))
        with pytest.raises(ValueError):
            save_receivers(str(tmp_path / "x.npz"), rec)


class TestSlipRate:
    def test_unit_integral(self):
        rate = smoothed_ramp_rate(0.7)
        t = np.linspace(0, 0.7, 20001)
        assert np.isclose(np.trapezoid(rate(t), t), 1.0, rtol=1e-6)

    def test_zero_outside(self):
        rate = smoothed_ramp_rate(0.5)
        assert rate(-0.1) == 0.0
        assert rate(0.6) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            smoothed_ramp_rate(0.0)


class TestKinematicFault:
    def make(self, **kw):
        args = dict(
            center=np.array([1000.0, 1000.0, 1000.0]),
            strike_dir=np.array([0.0, 1.0, 0.0]),
            dip_dir=np.array([0.0, 0.0, 1.0]),
            length=800.0,
            width=400.0,
            slip=1.0,
            rupture_velocity=3000.0,
            rise_time=0.2,
            n_along=4,
            n_down=2,
        )
        args.update(kw)
        return KinematicFault(**args)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            self.make(dip_dir=np.array([0.0, 1.0, 0.0]))
        with pytest.raises(ValueError):
            self.make(rake_dir=np.array([1.0, 0.0, 0.0]))  # = normal
        with pytest.raises(ValueError):
            self.make(rupture_velocity=-1.0)

    def test_subfault_count_and_delays(self):
        kf = self.make(hypocenter=np.array([1000.0, 600.0, 800.0]))
        subs = list(kf.subfaults())
        assert len(subs) == 8
        delays = np.array([d for _, _, d in subs])
        assert (delays >= 0).all()
        # farthest subfault breaks last
        dists = np.array([np.linalg.norm(p - kf.hypocenter) for p, _, _ in subs])
        assert np.argmax(delays) == np.argmax(dists)

    def test_moment_magnitude(self):
        kf = self.make()
        m0 = kf.moment(ROCK.mu)
        assert np.isclose(m0, ROCK.mu * 800.0 * 400.0 * 1.0)
        assert 3.0 < kf.moment_magnitude(ROCK.mu) < 6.0

    def test_moment_tensor_is_double_couple(self):
        kf = self.make()
        mvec = kf.moment_tensor(ROCK.mu, 1.0)
        M = np.array(
            [
                [mvec[0], mvec[3], mvec[5]],
                [mvec[3], mvec[1], mvec[4]],
                [mvec[5], mvec[4], mvec[2]],
            ]
        )
        assert abs(np.trace(M)) < 1e-6 * np.abs(M).max()  # no volume change
        ev = np.sort(np.linalg.eigvalsh(M))
        assert abs(ev[1]) < 1e-6 * abs(ev[2])  # (-1, 0, 1) pattern

    def test_attach_and_radiate(self):
        s = small_solver()
        kf = self.make()
        sources = kf.attach(s)
        assert len(sources) == 8
        for _ in range(40):
            s.step()
        assert s.energy() > 0
        v = s.evaluate(np.array([[400.0, 1000.0, 1000.0]]))[0]
        assert np.abs(v[6:9]).max() > 0

    def test_attach_rejects_outside(self):
        s = small_solver()
        kf = self.make(center=np.array([10_000.0, 0.0, 0.0]))
        with pytest.raises(ValueError):
            kf.attach(s)
