"""Integration tests for the coupled ADER-DG solver (GTS driver)."""

import numpy as np
import pytest

from repro.core.materials import acoustic, elastic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver, PointSource, ocean_surface_gravity_tagger
from repro.mesh.generators import box_mesh, layered_ocean_mesh

from .conftest import l2_error

ROCK1 = elastic(1.0, 2.0, 1.0)


def periodic_box(nc, L=1.0, mat=ROCK1):
    xs = np.linspace(0, L, nc + 1)
    m = box_mesh(xs, xs, xs, [mat])
    for vec in np.eye(3):
        m.glue_periodic(vec * L)
    return m


def plane_p_wave(mat, L=1.0):
    k = 2 * np.pi / L
    cp = mat.cp
    r = np.array([mat.lam + 2 * mat.mu, mat.lam, mat.lam, 0, 0, 0, -cp, 0, 0])

    def exact(x, t):
        return r[None, :] * np.sin(k * (x[:, 0] - cp * t))[:, None]

    return exact


def plane_s_wave(mat, L=1.0):
    k = 2 * np.pi / L
    cs = mat.cs
    r = np.array([0, 0, 0, mat.mu, 0, 0, 0, -cs, 0])

    def exact(x, t):
        return r[None, :] * np.sin(k * (x[:, 0] - cs * t))[:, None]

    return exact


class TestConvergence:
    @pytest.mark.parametrize("order,expected", [(1, 2.0), (2, 3.0)])
    def test_p_wave_order_of_accuracy(self, order, expected):
        exact = plane_p_wave(ROCK1)
        errs = []
        for nc in (4, 8):
            m = periodic_box(nc)
            s = CoupledSolver(m, order=order)
            s.set_initial_condition(lambda x: exact(x, 0.0))
            T = 0.15 / ROCK1.cp
            n = int(np.ceil(T / s.dt))
            for _ in range(n):
                s.step(T / n)
            errs.append(l2_error(s, exact, s.t))
        rate = np.log2(errs[0] / errs[1])
        assert rate > expected - 0.45, (errs, rate)

    def test_s_wave_transport(self):
        exact = plane_s_wave(ROCK1)
        m = periodic_box(6)
        s = CoupledSolver(m, order=2)
        s.set_initial_condition(lambda x: exact(x, 0.0))
        T = 0.2 / ROCK1.cs
        n = int(np.ceil(T / s.dt))
        for _ in range(n):
            s.step(T / n)
        ref_norm = l2_error(s, lambda x, t: np.zeros((len(x), 9)), 0.0)
        assert l2_error(s, exact, s.t) < 0.08 * ref_norm

    def test_acoustic_plane_wave(self):
        wat = acoustic(1.0, 1.0)
        k = 2 * np.pi
        r = np.array([wat.lam, wat.lam, wat.lam, 0, 0, 0, -wat.cp, 0, 0])

        def exact(x, t):
            return r[None, :] * np.sin(k * (x[:, 0] - wat.cp * t))[:, None]

        m = periodic_box(6, mat=wat)
        s = CoupledSolver(m, order=2)
        s.set_initial_condition(lambda x: exact(x, 0.0))
        T = 0.2
        n = int(np.ceil(T / s.dt))
        for _ in range(n):
            s.step(T / n)
        ref_norm = l2_error(s, lambda x, t: np.zeros((len(x), 9)), 0.0)
        assert l2_error(s, exact, s.t) < 0.05 * ref_norm


class TestEnergy:
    def test_energy_non_increasing_closed_box(self):
        """Godunov fluxes dissipate: energy must never grow (free surface)."""
        m = box_mesh(*(np.linspace(0, 1000.0, 5),) * 3, [elastic(2700, 6000, 3464)])
        s = CoupledSolver(m, order=2)

        def ic(x):
            out = np.zeros((len(x), 9))
            r2 = ((x - 500.0) ** 2).sum(axis=1)
            out[:, 6:9] = np.exp(-r2 / (2 * 150.0**2))[:, None]
            return out

        s.set_initial_condition(ic)
        energies = [s.energy()]
        for _ in range(15):
            s.step()
            energies.append(s.energy())
        e = np.array(energies)
        assert (np.diff(e) <= 1e-10 * e[0]).all()
        assert e[-1] > 0.5 * e[0]  # but not wildly dissipative either

    def test_absorbing_boundary_drains_energy(self):
        m = box_mesh(*(np.linspace(0, 1000.0, 5),) * 3, [elastic(2700, 6000, 3464)])
        m.tag_boundary(lambda c, n: np.full(len(c), FaceKind.ABSORBING.value))
        s = CoupledSolver(m, order=2)

        def ic(x):
            out = np.zeros((len(x), 9))
            r2 = ((x - 500.0) ** 2).sum(axis=1)
            out[:, 8] = np.exp(-r2 / (2 * 120.0**2))
            return out

        s.set_initial_condition(ic)
        e0 = s.energy()
        # run long enough for the P wave to cross the box
        t_cross = 1500.0 / 6000.0
        n = int(np.ceil(t_cross / s.dt))
        for _ in range(n):
            s.step()
        assert s.energy() < 0.05 * e0

    def test_wall_keeps_energy_better_than_absorbing(self):
        def ic(x):
            out = np.zeros((len(x), 9))
            r2 = ((x - 500.0) ** 2).sum(axis=1)
            out[:, 8] = np.exp(-r2 / (2 * 120.0**2))
            return out

        energies = {}
        for kind in (FaceKind.WALL, FaceKind.ABSORBING):
            m = box_mesh(*(np.linspace(0, 1000.0, 5),) * 3, [elastic(2700, 6000, 3464)])
            m.tag_boundary(lambda c, n, k=kind: np.full(len(c), k.value))
            s = CoupledSolver(m, order=2)
            s.set_initial_condition(ic)
            e0 = s.energy()
            for _ in range(150):
                s.step()
            energies[kind] = s.energy() / e0
        assert energies[FaceKind.WALL] > 3 * energies[FaceKind.ABSORBING]
        assert energies[FaceKind.WALL] > 0.5


class TestCoupledInterface:
    def test_acoustic_elastic_transmission(self):
        """A plane P pulse hitting the seafloor splits with the analytic
        normal-incidence reflection/transmission coefficients."""
        water = acoustic(1000.0, 1500.0)
        rock = elastic(2700.0, 6000.0, 3464.0)
        # 1D-like column: thin in x, y
        zs_e = np.linspace(-4000.0, -2000.0, 5)
        zs_o = np.linspace(-2000.0, 0.0, 5)
        xs = np.linspace(0, 500.0, 2)
        m = layered_ocean_mesh(xs, xs, zs_e, zs_o, rock, water)
        m.glue_periodic(np.array([500.0, 0, 0]))
        m.glue_periodic(np.array([0, 500.0, 0]))
        s = CoupledSolver(m, order=3)

        # downward-travelling acoustic pulse centred in the ocean
        z0, width = -800.0, 250.0
        amp = 1.0

        def ic(x):
            out = np.zeros((len(x), 9))
            pulse = amp * np.exp(-((x[:, 2] - z0) ** 2) / (2 * width**2))
            in_ocean = x[:, 2] > -2000.0
            p = np.where(in_ocean, pulse, 0.0)
            out[:, 0] = out[:, 1] = out[:, 2] = -p
            # downgoing wave: v_z = -p / Z_water
            out[:, 8] = np.where(in_ocean, -pulse / water.Zp, 0.0)
            return out

        s.set_initial_condition(ic)
        # propagate until pulse has crossed the interface
        t_end = (abs(z0 + 2000.0) + 600.0) / water.cp
        n = int(np.ceil(t_end / s.dt))
        for _ in range(n):
            s.step()

        # sample transmitted and reflected amplitudes
        T_v = 2 * water.Zp / (rock.Zp + water.Zp)  # velocity transmission
        probe_rock = s.evaluate(np.array([[250.0, 250.0, -2600.0]]))[0]
        vz_inc = -amp / water.Zp
        # transmitted velocity amplitude ~ T_v * incident velocity
        assert np.isclose(probe_rock[8], T_v * vz_inc, rtol=0.15)

    def test_shear_not_transmitted_to_ocean(self):
        """Shear stresses must stay (weakly) zero inside the acoustic layer."""
        water = acoustic(1000.0, 1500.0)
        rock = elastic(2700.0, 6000.0, 3464.0)
        xs = np.linspace(0, 2000.0, 4)
        m = layered_ocean_mesh(
            xs, xs, np.linspace(-3000.0, -1000.0, 4), np.linspace(-1000.0, 0.0, 3), rock, water
        )
        s = CoupledSolver(m, order=2)

        def ic(x):
            out = np.zeros((len(x), 9))
            r2 = ((x - np.array([1000, 1000, -2000.0])) ** 2).sum(axis=1)
            # SH disturbance strictly inside the rock (shear components in
            # the embedded acoustic layer are inert: mu = 0 freezes them)
            out[:, 3] = np.where(x[:, 2] < -1300.0, 1e3 * np.exp(-r2 / (2 * 300.0**2)), 0.0)
            return out

        s.set_initial_condition(ic)
        rock_shear0 = np.abs(s.Q[~m.is_acoustic_elem][:, :, 3:6]).max()
        for _ in range(40):
            s.step()
        ac = m.is_acoustic_elem
        shear = np.abs(s.Q[ac][:, :, 3:6]).max()
        assert shear < 1e-3 * rock_shear0


class TestPointSource:
    def test_ricker_source_radiates(self):
        rock = elastic(2700.0, 6000.0, 3464.0)
        m = box_mesh(*(np.linspace(0, 2000.0, 5),) * 3, [rock])
        m.tag_boundary(lambda c, n: np.full(len(c), FaceKind.ABSORBING.value))
        s = CoupledSolver(m, order=2)
        f0 = 5.0

        def ricker(t):
            a = (np.pi * f0 * (t - 0.25)) ** 2
            return (1 - 2 * a) * np.exp(-a)

        src = PointSource([1000.0, 1000.0, 1000.0], ricker, moment=[1e9] * 3 + [0, 0, 0])
        s.add_source(src)
        for _ in range(80):
            s.step()
        assert s.energy() > 0
        v = s.evaluate(np.array([[1400.0, 1000.0, 1000.0]]))[0]
        assert np.abs(v[6:9]).max() > 0

    def test_source_outside_mesh_rejected(self):
        rock = elastic(2700.0, 6000.0, 3464.0)
        m = box_mesh(*(np.linspace(0, 100.0, 3),) * 3, [rock])
        s = CoupledSolver(m, order=1)
        src = PointSource([500.0, 0, 0], lambda t: 1.0, force=[1, 0, 0])
        with pytest.raises(ValueError):
            s.add_source(src)

    def test_needs_amplitude(self):
        with pytest.raises(ValueError):
            PointSource([0, 0, 0], lambda t: 1.0)


class TestSolverAPI:
    def test_run_reaches_end_time(self):
        m = periodic_box(3)
        s = CoupledSolver(m, order=1)
        calls = []
        s.run(10 * s.dt + 0.3 * s.dt, callback=lambda sv: calls.append(sv.t))
        assert np.isclose(s.t, 10.3 * s.dt, rtol=1e-10)
        assert len(calls) == 11

    def test_tagger_helper(self):
        water = acoustic(1000.0, 1500.0)
        rock = elastic(2700.0, 6000.0, 3464.0)
        xs = np.linspace(0, 1000.0, 3)
        m = layered_ocean_mesh(
            xs, xs, np.linspace(-1500.0, -500.0, 3), np.linspace(-500.0, 0.0, 2), rock, water
        )
        m.tag_boundary(ocean_surface_gravity_tagger(m))
        top = m.boundary.normal[:, 2] > 0.99
        assert (m.boundary.kind[top] == FaceKind.GRAVITY_FREE_SURFACE.value).all()
        assert (m.boundary.kind[~top] == FaceKind.ABSORBING.value).all()

    def test_evaluate_roundtrip(self):
        m = periodic_box(3)
        s = CoupledSolver(m, order=2)
        g = np.array([1.0, -2.0, 0.5])

        def ic(x):
            out = np.zeros((len(x), 9))
            out[:, 7] = x @ g
            return out

        s.set_initial_condition(ic)
        pts = np.array([[0.3, 0.4, 0.5], [0.9, 0.1, 0.2]])
        vals = s.evaluate(pts)
        assert np.allclose(vals[:, 7], pts @ g, atol=1e-10)
        assert np.allclose(vals[:, [0, 1, 2, 3, 4, 5, 6, 8]], 0.0, atol=1e-10)
