"""Tests for receivers, spectra and field sampling."""

import numpy as np
import pytest

from repro.analysis.receivers import QUANTITY_NAMES, ReceiverArray
from repro.analysis.spectra import (
    amplitude_spectrum,
    dominant_frequency,
    max_excited_frequency,
    resolved_frequency,
)
from repro.core.materials import elastic
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh

ROCK1 = elastic(1.0, 2.0, 1.0)


def small_solver():
    xs = np.linspace(0, 1, 4)
    m = box_mesh(xs, xs, xs, [ROCK1])
    for vec in np.eye(3):
        m.glue_periodic(vec * 1.0)
    return CoupledSolver(m, order=2)


class TestReceivers:
    def test_records_exact_plane_wave(self):
        s = small_solver()
        k = 2 * np.pi
        cp = ROCK1.cp
        r = np.array([ROCK1.lam + 2 * ROCK1.mu, ROCK1.lam, ROCK1.lam, 0, 0, 0, -cp, 0, 0])
        s.set_initial_condition(lambda x: r[None, :] * np.sin(k * x[:, 0])[:, None])
        rec = ReceiverArray(s, np.array([[0.25, 0.5, 0.5], [0.75, 0.5, 0.5]]))
        rec.record()
        vals = rec.data("vx")
        assert np.allclose(vals[0], -cp * np.sin(k * np.array([0.25, 0.75])), atol=0.05)

    def test_callback_subsampling(self):
        s = small_solver()
        s.set_initial_condition(lambda x: np.zeros((len(x), 9)))
        rec = ReceiverArray(s, np.array([[0.5, 0.5, 0.5]]), every=3)
        for _ in range(9):
            s.step()
            rec(s)
        assert len(rec.times) == 3

    def test_rejects_outside_point(self):
        s = small_solver()
        with pytest.raises(ValueError):
            ReceiverArray(s, np.array([[5.0, 0.0, 0.0]]))

    def test_pressure_helper(self):
        s = small_solver()
        s.set_initial_condition(
            lambda x: np.tile(np.array([-3.0, -3.0, -3.0, 0, 0, 0, 0, 0, 0]), (len(x), 1))
        )
        rec = ReceiverArray(s, np.array([[0.5, 0.5, 0.5]]))
        rec.record()
        assert np.isclose(rec.pressure()[0, 0], 3.0, atol=1e-9)

    def test_quantity_names(self):
        assert len(QUANTITY_NAMES) == 9
        assert QUANTITY_NAMES[8] == "vz"


class TestSpectra:
    def test_pure_tone(self):
        t = np.linspace(0, 10, 2001)
        x = 2.5 * np.sin(2 * np.pi * 3.0 * t)
        f, a = amplitude_spectrum(t, x)
        assert np.isclose(dominant_frequency(t, x), 3.0, atol=0.06)
        assert np.isclose(a.max(), 2.5, rtol=0.02)

    def test_two_tones_max_excited(self):
        t = np.linspace(0, 20, 8001)
        x = np.sin(2 * np.pi * 1.0 * t) + 0.3 * np.sin(2 * np.pi * 12.0 * t)
        assert np.isclose(max_excited_frequency(t, x, threshold=0.1), 12.0, atol=0.2)
        assert np.isclose(dominant_frequency(t, x), 1.0, atol=0.1)

    def test_nonuniform_sampling_resampled(self):
        rng = np.random.default_rng(0)
        t = np.sort(rng.uniform(0, 10, 600))
        x = np.sin(2 * np.pi * 2.0 * t)
        assert np.isclose(dominant_frequency(t, x), 2.0, atol=0.2)

    def test_resolved_frequency_paper_rule(self):
        """Sec. 6.2: 50 m elements at c = 1483 m/s with 2 elements per
        wavelength resolve ~15 Hz."""
        f = resolved_frequency(50.0, 1483.0, order=5)
        assert np.isclose(f, 14.83, atol=0.01)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            amplitude_spectrum(np.array([0.0, 1.0]), np.array([1.0, 2.0]))


class TestFields:
    def test_cross_section_linear_field(self):
        from repro.analysis.fields import cross_section

        s = small_solver()

        def ic(x):
            out = np.zeros((len(x), 9))
            out[:, 8] = 2.0 * x[:, 0]
            return out

        s.set_initial_condition(ic)
        dist, vals = cross_section(s, [0.1, 0.5, 0.5], [0.9, 0.5, 0.5], 9, quantity=8)
        assert np.allclose(vals, 2.0 * np.linspace(0.1, 0.9, 9), atol=1e-9)
        assert np.isclose(dist[-1], 0.8)

    def test_sea_surface_grid(self):
        from repro.analysis.fields import sea_surface_grid
        from repro.core.materials import acoustic
        from repro.core.riemann import FaceKind

        oc = acoustic(1000.0, 100.0)
        xs = np.linspace(0, 8, 9)
        m = box_mesh(xs, xs, np.linspace(-1, 0, 2), [oc])

        def tagger(cent, nrm):
            tags = np.full(len(cent), FaceKind.WALL.value)
            tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
            return tags

        m.tag_boundary(tagger)
        s = CoupledSolver(m, order=2)
        s.gravity.eta[:] = np.sin(2 * np.pi * s.gravity.points[:, :, 0] / 8.0)
        X, Y, eta = sea_surface_grid(s, np.linspace(0, 8, 17), np.linspace(0, 8, 17))
        assert eta.shape == (16, 16)
        assert np.allclose(eta, np.sin(2 * np.pi * X / 8.0), atol=0.1)

    def test_requires_gravity_faces(self):
        from repro.analysis.fields import sea_surface_grid

        s = small_solver()
        with pytest.raises(ValueError):
            sea_surface_grid(s, np.linspace(0, 1, 3), np.linspace(0, 1, 3))
