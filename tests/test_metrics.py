"""Fleet metrics: typed registry, snapshot merging, exporters, status view.

Covers the four layers of the fleet-metrics stack: registry semantics
under concurrent mutation, the associative snapshot merge the supervisor
folds member views with (property-tested), the Prometheus text exporter
against the strict validator CI runs on every ``.prom`` artifact, the
:class:`~repro.obs.fleet.FleetAggregator` + offline status view, and
end-to-end ensembles (in-process fast tier, spawned in the ``slow``
tier) whose on-disk fleet totals must agree with the member run logs.
"""

import io
import json
import os
import re
import threading
import time

import pytest

from repro.obs.fleet import (
    FLEET_JSONL,
    FLEET_PROM,
    FleetAggregator,
    read_jsonl_tolerant,
    status_lines,
    status_rows,
    watch_status,
)
from repro.obs.metrics import (
    DEFAULT_SERIES_CAPACITY,
    METRICS_SCHEMA_VERSION,
    MetricRegistry,
    TimeSeries,
    default_log_buckets,
    get_metrics,
    merge_snapshots,
    prom_name,
    to_prometheus,
    validate_prometheus,
)


@pytest.fixture(autouse=True)
def _clean_metrics():
    met = get_metrics()
    met.disable()
    met.reset()
    yield
    met.disable()
    met.reset()


# ----------------------------------------------------------------------
class TestTimeSeries:
    def test_ring_overwrites_oldest_and_counts_drops(self):
        s = TimeSeries(capacity=4)
        for k in range(6):
            s.append(float(k), float(10 * k))
        assert len(s) == 4
        assert s.dropped == 2
        t, v = s.samples()
        assert t == [2.0, 3.0, 4.0, 5.0]
        assert v == [20.0, 30.0, 40.0, 50.0]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TimeSeries(capacity=0)


class TestRegistry:
    def test_counter_accumulates_and_reads(self):
        reg = MetricRegistry()
        reg.enable()
        reg.inc("a/b", 3)
        reg.inc("a/b")
        assert reg.value("a/b") == 4
        with pytest.raises(ValueError, match="monotonic"):
            reg.inc("a/b", -1)

    def test_gauge_last_write_wins(self):
        reg = MetricRegistry()
        reg.enable()
        reg.set_gauge("g", 1.5)
        reg.set_gauge("g", -2.0)
        assert reg.value("g") == -2.0
        snap = reg.snapshot()
        assert snap["gauges"]["g"]["value"] == -2.0
        assert snap["gauges"]["g"]["t"] > 0

    def test_histogram_buckets_and_overflow(self):
        reg = MetricRegistry()
        reg.enable()
        for v in (0.5, 5.0, 5.0, 1e9):  # below, mid x2, overflow
            reg.observe("h", v, bounds=(1.0, 10.0))
        h = reg.snapshot()["histograms"]["h"]
        assert h["bounds"] == [1.0, 10.0]
        assert h["counts"] == [1, 2, 1]
        assert h["count"] == 4
        assert h["sum"] == pytest.approx(0.5 + 5.0 + 5.0 + 1e9)

    def test_default_buckets_are_log_decades(self):
        b = default_log_buckets()
        assert b[0] == pytest.approx(1e-6)
        assert b[-1] == pytest.approx(1e6)
        ratios = [y / x for x, y in zip(b, b[1:])]
        assert all(r == pytest.approx(10.0) for r in ratios)

    def test_name_pins_type(self):
        reg = MetricRegistry()
        reg.enable()
        reg.inc("x")
        with pytest.raises(ValueError, match="counter"):
            reg.set_gauge("x", 1.0)
        with pytest.raises(ValueError, match="counter"):
            reg.observe("x", 1.0)

    def test_disabled_is_a_noop(self):
        reg = MetricRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert reg.value("c") is None

    def test_reset_keeps_enabled_flag(self):
        reg = MetricRegistry()
        reg.enable()
        reg.inc("c")
        reg.reset()
        assert reg.enabled
        assert reg.value("c") is None

    def test_compact_omits_series(self):
        reg = MetricRegistry()
        reg.enable()
        reg.inc("c")
        full = reg.snapshot()
        compact = reg.compact()
        assert "series" in full and full["series"]["c"]["v"] == [1.0]
        assert "series" not in compact
        assert compact["schema"] == METRICS_SCHEMA_VERSION

    def test_concurrent_mixed_mutation_is_exact(self):
        """N threads hammer one counter/histogram: no lost updates."""
        reg = MetricRegistry()
        reg.enable()
        n_threads, n_iter = 8, 400
        barrier = threading.Barrier(n_threads)
        errors = []

        def work(tid):
            try:
                barrier.wait()
                for k in range(n_iter):
                    reg.inc("race/steps")
                    reg.set_gauge(f"race/g{tid}", float(k))
                    reg.observe("race/h", float(k % 7) + 0.5,
                                bounds=(1.0, 3.0, 10.0))
                    if k % 97 == 0:
                        reg.snapshot()  # concurrent readers must not tear
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = n_threads * n_iter
        assert reg.value("race/steps") == total
        h = reg.snapshot()["histograms"]["race/h"]
        assert h["count"] == total
        assert sum(h["counts"]) == total
        # ring buffers saturated without unbounded growth
        series = reg.snapshot()["series"]["race/steps"]
        assert len(series["v"]) == DEFAULT_SERIES_CAPACITY
        assert series["dropped"] == total - DEFAULT_SERIES_CAPACITY


# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def snap(self, reg):
        return reg.snapshot()

    def test_none_is_identity(self):
        reg = MetricRegistry()
        reg.enable()
        reg.inc("c", 2)
        snap = reg.snapshot()
        assert merge_snapshots(snap, None) == merge_snapshots(None, snap)
        empty = merge_snapshots(None, None)
        assert empty["counters"] == {} and empty["schema"] == \
            METRICS_SCHEMA_VERSION

    def test_counters_sum_gauges_newest_wins(self):
        a = {"schema": 1, "counters": {"c": 3}, "histograms": {},
             "gauges": {"g": {"value": 1.0, "t": 10.0}}}
        b = {"schema": 1, "counters": {"c": 4, "d": 1}, "histograms": {},
             "gauges": {"g": {"value": 9.0, "t": 5.0}}}
        m = merge_snapshots(a, b)
        assert m["counters"] == {"c": 7, "d": 1}
        assert m["gauges"]["g"] == {"value": 1.0, "t": 10.0}  # newest t wins

    def test_histograms_add_bucketwise_and_bounds_must_match(self):
        h1 = {"bounds": [1.0, 10.0], "counts": [1, 2, 0], "sum": 6.0,
              "count": 3}
        h2 = {"bounds": [1.0, 10.0], "counts": [0, 1, 1], "sum": 105.0,
              "count": 2}
        a = {"schema": 1, "counters": {}, "gauges": {}, "histograms":
             {"h": h1}}
        b = {"schema": 1, "counters": {}, "gauges": {}, "histograms":
             {"h": h2}}
        m = merge_snapshots(a, b)
        assert m["histograms"]["h"]["counts"] == [1, 3, 1]
        assert m["histograms"]["h"]["count"] == 5
        bad = {"schema": 1, "counters": {}, "gauges": {}, "histograms":
               {"h": {"bounds": [2.0], "counts": [0, 0], "sum": 0.0,
                      "count": 0}}}
        with pytest.raises(ValueError, match="bounds"):
            merge_snapshots(a, bad)

    def test_series_union_trims_to_capacity_keeping_newest(self):
        def series(ts):
            return {"kind": "gauge", "t": [float(t) for t in ts],
                    "v": [float(10 * t) for t in ts], "dropped": 0,
                    "capacity": 3}

        a = {"schema": 1, "counters": {}, "gauges": {}, "histograms": {},
             "series": {"s": series([1, 2])}}
        b = {"schema": 1, "counters": {}, "gauges": {}, "histograms": {},
             "series": {"s": series([3, 4])}}
        m = merge_snapshots(a, b)
        assert m["series"]["s"]["t"] == [2.0, 3.0, 4.0]  # newest 3 kept


def _hypothesis_snapshots():
    """Strategy for wire snapshots with exact-arithmetic values.

    Values are integer-valued floats so counter/histogram addition is
    exact, and every series shares one capacity — the fleet's registries
    all use :data:`DEFAULT_SERIES_CAPACITY`, and trim-to-capacity is only
    order-independent when the capacities agree.
    """
    from hypothesis import strategies as st

    names = st.sampled_from(["m/a", "m/b", "m/c"])
    ints = st.integers(min_value=0, max_value=1000)
    nums = ints.map(float)
    ts = st.integers(min_value=0, max_value=50).map(float)
    gauge_cell = st.fixed_dictionaries({"value": nums, "t": ts})
    hist_cell = st.fixed_dictionaries({
        "bounds": st.just([1.0, 10.0]),
        "counts": st.lists(ints, min_size=3, max_size=3),
        "sum": nums,
        "count": ints,
    })
    series_cell = st.lists(st.tuples(ts, nums), max_size=5).map(
        lambda pts: {"kind": "gauge", "t": [p[0] for p in pts],
                     "v": [p[1] for p in pts], "dropped": 0, "capacity": 4})
    snapshot = st.fixed_dictionaries({
        "schema": st.just(METRICS_SCHEMA_VERSION),
        "counters": st.dictionaries(names, ints, max_size=3),
        "gauges": st.dictionaries(names, gauge_cell, max_size=3),
        "histograms": st.dictionaries(names, hist_cell, max_size=3),
        "series": st.dictionaries(names, series_cell, max_size=2),
    })
    return st.one_of(st.none(), snapshot)


try:
    from hypothesis import given, settings

    _SNAPS = _hypothesis_snapshots()

    class TestMergeAssociativity:
        """The fold contract :class:`FleetAggregator` relies on."""

        @given(a=_SNAPS, b=_SNAPS, c=_SNAPS)
        @settings(max_examples=200)
        def test_merge_is_associative(self, a, b, c):
            left = merge_snapshots(merge_snapshots(a, b), c)
            right = merge_snapshots(a, merge_snapshots(b, c))
            assert left == right

        @given(a=_SNAPS, b=_SNAPS)
        @settings(max_examples=100)
        def test_merge_never_mutates_operands(self, a, b):
            a0 = json.loads(json.dumps(a)) if a is not None else None
            b0 = json.loads(json.dumps(b)) if b is not None else None
            merge_snapshots(a, b)
            assert a == a0 and b == b0
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass


# ----------------------------------------------------------------------
class TestPrometheusExport:
    def registry_snapshot(self):
        reg = MetricRegistry()
        reg.enable()
        reg.inc("sched/steps_total", 42)
        reg.inc("cache/plan_hits", 3)
        reg.set_gauge("sched/sim_time", 1.25)
        reg.set_gauge("health/energy_drift_ratio", -1.5e-9)
        reg.observe("io/checkpoint_seconds", 0.02, bounds=(0.01, 0.1, 1.0))
        reg.observe("io/checkpoint_seconds", 0.5, bounds=(0.01, 0.1, 1.0))
        return reg.compact()

    def test_export_passes_strict_validator(self):
        text = to_prometheus(self.registry_snapshot())
        assert validate_prometheus(text) == [], validate_prometheus(text)
        assert text.endswith("\n")

    def test_counter_total_suffix_and_sanitized_names(self):
        text = to_prometheus(self.registry_snapshot())
        assert "# TYPE repro_sched_steps_total counter" in text
        assert "repro_sched_steps_total 42" in text
        # _total is appended exactly once, names sanitized / -> _
        assert "repro_cache_plan_hits_total 3" in text
        assert prom_name("a/b-c.d") == "repro_a_b_c_d"

    def test_histogram_cumulative_with_inf_bucket(self):
        text = to_prometheus(self.registry_snapshot())
        lines = [ln for ln in text.splitlines()
                 if ln.startswith("repro_io_checkpoint_seconds")]
        buckets = [ln for ln in lines if "_bucket" in ln]
        assert buckets[-1].startswith(
            'repro_io_checkpoint_seconds_bucket{le="+Inf"}')
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 2
        assert any(ln.startswith("repro_io_checkpoint_seconds_count")
                   for ln in lines)

    def test_constant_labels_and_extra_families(self):
        text = to_prometheus(
            self.registry_snapshot(), labels={"member": "m0"},
            extra={"fleet/members": [({}, 2.0)],
                   "fleet/gauge_max": [({"metric": "x"}, 7.0)]})
        assert validate_prometheus(text) == [], validate_prometheus(text)
        assert 'repro_sched_steps_total{member="m0"} 42' in text
        assert "repro_fleet_members 2.0" in text
        assert 'repro_fleet_gauge_max{metric="x"} 7.0' in text

    def test_validator_rejects_bad_documents(self):
        assert validate_prometheus("x_total 1\n")  # sample without TYPE
        assert validate_prometheus("# TYPE x counter\nx 1")  # no newline
        assert validate_prometheus("# TYPE x counter\nx -3\n")  # negative
        assert validate_prometheus(
            "# TYPE x counter\n# TYPE x counter\nx 1\n")  # duplicate TYPE
        assert validate_prometheus("# TYPE h histogram\n"
                                   'h_bucket{le="1"} 2\n'
                                   'h_bucket{le="+Inf"} 1\n'
                                   "h_sum 1.0\nh_count 1\n")  # not cumulative
        assert validate_prometheus("# TYPE h histogram\n"
                                   'h_bucket{le="+Inf"} 2\n'
                                   "h_sum 1.0\nh_count 3\n")  # Inf != count
        assert validate_prometheus("not a metric line at all\n")

    def test_validator_accepts_own_fleet_export(self, tmp_path):
        agg = FleetAggregator(out_dir=str(tmp_path))
        agg.update("m0", self.registry_snapshot(), wall=100.0,
                   state="running")
        agg.update("m1", self.registry_snapshot(), wall=101.0, state="ok")
        text = agg.to_prometheus(now=102.0)
        assert validate_prometheus(text) == [], validate_prometheus(text)


# ----------------------------------------------------------------------
class TestFleetAggregator:
    def member_snap(self, steps, sim_t, drift):
        reg = MetricRegistry()
        reg.enable()
        reg.inc("sched/steps_total", steps)
        reg.set_gauge("sched/sim_time", sim_t)
        reg.set_gauge("health/energy_drift_ratio", drift)
        return reg.compact()

    def test_fleet_fold_sums_counters(self):
        agg = FleetAggregator()
        agg.update("m0", self.member_snap(10, 1.0, 1e-9), wall=50.0)
        agg.update("m1", self.member_snap(32, 2.0, 3e-9), wall=51.0)
        fleet = agg.fleet_snapshot()
        assert fleet["counters"]["sched/steps_total"] == 42
        stats = agg.gauge_stats()["health/energy_drift_ratio"]
        assert stats["min"] == 1e-9 and stats["max"] == 3e-9
        assert stats["n"] == 2

    def test_member_brief_and_staleness(self):
        agg = FleetAggregator()
        agg.update("m0", self.member_snap(10, 1.5, 0.0), wall=50.0,
                   state="running")
        brief = agg.member_brief("m0")
        assert brief["step"] == 10 and brief["sim_t"] == 1.5
        assert agg.staleness(now=57.0) == {"m0": 7.0}
        assert agg.member_brief("nope") == {}

    def test_future_schema_snapshot_ignored(self):
        agg = FleetAggregator()
        agg.update("m0", {"schema": METRICS_SCHEMA_VERSION + 1,
                          "counters": {"c": 1}}, wall=1.0)
        assert agg.member_snapshot("m0") is None  # not misfolded
        assert "m0" in agg.members  # but liveness is still refreshed

    def test_export_atomic_artifacts(self, tmp_path):
        agg = FleetAggregator(out_dir=str(tmp_path))
        agg.update("m0", self.member_snap(5, 0.5, 0.0), wall=10.0,
                   state="running")
        agg.export(now=11.0)
        agg.update("m0", self.member_snap(9, 0.9, 0.0), wall=12.0,
                   state="ok")
        agg.export(now=13.0)
        prom = (tmp_path / FLEET_PROM).read_text()
        assert validate_prometheus(prom) == [], validate_prometheus(prom)
        history = read_jsonl_tolerant(str(tmp_path / FLEET_JSONL))
        assert len(history) == 2  # full bounded history, newest last
        assert history[-1]["members"]["m0"]["state"] == "ok"
        assert history[-1]["fleet"]["counters"]["sched/steps_total"] == 9
        # no leftover temp files from the atomic publish
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]

    def test_export_requires_out_dir(self):
        with pytest.raises(ValueError, match="out_dir"):
            FleetAggregator().export()


# ----------------------------------------------------------------------
class TestStatusView:
    def write_jsonl(self, path, records):
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")

    def synthetic_run_dir(self, tmp_path):
        root = tmp_path / "ens"
        snap = {"schema": METRICS_SCHEMA_VERSION, "counters": {},
                "gauges": {"sched/steps_total": {"value": 40.0, "t": 104.0},
                           "sched/sim_time": {"value": 0.8, "t": 104.0},
                           "sched/wall_rate": {"value": 25.0, "t": 104.0},
                           "health/energy_drift_ratio":
                               {"value": 2e-9, "t": 104.0}},
                "histograms": {}}
        self.write_jsonl(str(root / "m0" / "run.jsonl"), [
            {"event": "heartbeat", "seq": 1, "wall": 100.0, "run_id": "r",
             "step": 20, "sim_t": 0.4, "dt": 0.01, "energy": 1.0,
             "wall_rate": 20.0},
            {"event": "metrics", "seq": 2, "wall": 104.0, "run_id": "r",
             "step": 40, "sim_t": 0.8, "metrics": snap},
        ])
        # m1: heartbeats only (metrics off), plus a torn tail to tolerate
        self.write_jsonl(str(root / "m1" / "run.jsonl"), [
            {"event": "heartbeat", "seq": 1, "wall": 101.0, "run_id": "r",
             "step": 7, "sim_t": 0.14},
        ])
        with open(root / "m1" / "run.jsonl", "a") as fh:
            fh.write('{"event": "heartbeat", "torn')
        self.write_jsonl(str(root / "ensemble.jsonl"), [
            {"event": "member_start", "seq": 1, "wall": 99.0, "run_id": "s",
             "member": "m0", "attempt": 1},
            {"event": "member_start", "seq": 2, "wall": 99.5, "run_id": "s",
             "member": "m1", "attempt": 1},
            {"event": "member_retry", "seq": 3, "wall": 103.0, "run_id": "s",
             "member": "m1", "attempt": 1, "reason": "signal 9",
             "delay_s": 0.1},
        ])
        return str(root)

    def test_rows_prefer_metric_gauges_with_heartbeat_fallback(self, tmp_path):
        rows = {r["member"]: r
                for r in status_rows(self.synthetic_run_dir(tmp_path),
                                     now=110.0)}
        m0, m1 = rows["m0"], rows["m1"]
        assert m0["step"] == 40.0 and m0["sim_t"] == 0.8  # from gauges
        assert m0["wall_rate"] == 25.0
        assert m0["energy_drift"] == 2e-9
        assert m0["state"] == "running"
        assert m0["stale_s"] == pytest.approx(6.0)
        # m1 falls back to its heartbeat record; retry state from the
        # supervisor log; the torn tail is skipped, not fatal
        assert m1["step"] == 7 and m1["sim_t"] == 0.14
        assert m1["energy_drift"] is None
        assert m1["state"] == "retrying"
        assert m1["retries"] == 1

    def test_lines_render_and_count_states(self, tmp_path):
        lines = status_lines(self.synthetic_run_dir(tmp_path), now=110.0)
        text = "\n".join(lines)
        assert "m0" in text and "m1" in text
        assert "1 retrying" in text and "1 running" in text

    def test_empty_dir_is_not_an_error(self, tmp_path):
        assert status_rows(str(tmp_path)) == []
        assert any("no members" in ln for ln in status_lines(str(tmp_path)))

    def test_watch_single_shot_and_missing_dir(self, tmp_path):
        buf = io.StringIO()
        assert watch_status(self.synthetic_run_dir(tmp_path),
                            stream=buf) == 0
        assert "fleet status" in buf.getvalue()
        # bounded watch over a dir that never exists: placeholder rows,
        # not a traceback, and a clean exit after `iterations` renders
        buf = io.StringIO()
        assert watch_status(str(tmp_path / "gone"), interval=0.0,
                            iterations=2, stream=buf) == 0
        assert buf.getvalue().count("fleet status") == 2

    def test_watch_ctrl_c_exits_clean(self, tmp_path, monkeypatch):
        def boom(_seconds):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.obs.fleet.time.sleep", boom)
        buf = io.StringIO()
        assert watch_status(self.synthetic_run_dir(tmp_path), interval=5.0,
                            stream=buf) == 0


# ----------------------------------------------------------------------
class TestDisabledOverhead:
    def test_disabled_registry_within_step_budget(self):
        """The guard-discipline bar: metrics off must not tax the solver.

        Mirrors the telemetry budget test: per-call cost of the disabled
        mutation entry points times a conservative count of wired guard
        sites must stay under 2% of a measured solver step.
        """
        from repro.core.materials import acoustic, elastic
        from repro.core.solver import (
            CoupledSolver,
            ocean_surface_gravity_tagger,
        )
        from repro.mesh.generators import layered_ocean_mesh

        import numpy as np

        crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
        ocean = acoustic(rho=1000.0, cp=1500.0)
        xs = np.linspace(0.0, 2000.0, 4)
        mesh = layered_ocean_mesh(
            xs, xs,
            zs_earth=np.linspace(-1500.0, -500.0, 3),
            zs_ocean=np.linspace(-500.0, 0.0, 2),
            earth=crust, ocean=ocean,
        )
        mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
        solver = CoupledSolver(mesh, order=2)

        met = get_metrics()
        assert not met.enabled
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            met.inc("x")
            met.set_gauge("g", 1.0)
            met.observe("h", 1.0)
        per_call = (time.perf_counter() - t0) / (3 * n)

        t0 = time.perf_counter()
        for _ in range(3):
            solver.step()
        per_step = (time.perf_counter() - t0) / 3

        sites = 40  # upper bound on guarded sites per step across layers
        overhead = sites * per_call / per_step
        assert overhead < 0.02, (
            f"disabled metrics cost {overhead * 100:.3f}% of a step "
            f"({sites} sites x {per_call * 1e9:.0f} ns)"
        )


# ----------------------------------------------------------------------
def _last_metrics_steps(runlog_path):
    """``sched/steps_total`` of the last metrics record in a run log."""
    metrics = [r for r in read_jsonl_tolerant(runlog_path)
               if r.get("event") == "metrics"]
    assert metrics, f"no metrics records in {runlog_path}"
    return metrics[-1]["metrics"]["counters"]["sched/steps_total"]


def _prom_value(text, name):
    m = re.search(rf"^{re.escape(name)} (\S+)$", text, re.M)
    assert m, f"{name} not found in .prom export"
    return float(m.group(1))


class TestEnsembleFleetMetrics:
    """In-process (workers=0) two-member ensembles with metrics on."""

    def specs(self, n=2, **over):
        from repro.ensemble import MemberSpec

        return [MemberSpec(member_id=f"m{k}", builder="quickstart",
                           perturb={"n_x": 4}, t_end=0.12, seed=k, **over)
                for k in range(n)]

    def run_ensemble(self, specs, out_dir):
        from repro.ensemble import RetryPolicy, Supervisor

        sup = Supervisor(specs, workers=0, out_dir=str(out_dir),
                         retry=RetryPolicy(max_retries=1, backoff_base=0.01,
                                           max_delay_s=0.02))
        return sup.run()

    def test_fleet_totals_agree_with_member_runlogs(self, tmp_path):
        result = self.run_ensemble(self.specs(), tmp_path)
        assert result.counts["ok"] == 2

        prom = (tmp_path / FLEET_PROM).read_text()
        assert validate_prometheus(prom) == [], validate_prometheus(prom)
        expected = sum(
            _last_metrics_steps(str(tmp_path / m.member_id / "run.jsonl"))
            for m in result.members)
        assert expected > 0
        assert _prom_value(prom, "repro_sched_steps_total") == expected
        assert _prom_value(prom, "repro_fleet_members") == 2.0

        history = read_jsonl_tolerant(str(tmp_path / FLEET_JSONL))
        assert history
        last = history[-1]
        assert last["fleet"]["counters"]["sched/steps_total"] == expected
        assert set(last["members"]) == {"m0", "m1"}
        assert all(cell["state"] in ("ok", "completed")
                   for cell in last["members"].values())
        # fleet spread stats cover the physics gauges
        assert "sched/sim_time" in last["gauge_stats"]

    def test_status_view_renders_completed_fleet(self, tmp_path):
        self.run_ensemble(self.specs(), tmp_path)
        rows = {r["member"]: r for r in status_rows(str(tmp_path))}
        assert set(rows) == {"m0", "m1"}
        for row in rows.values():
            assert row["state"] == "ok"
            assert row["step"] > 0
            assert row["sim_t"] == pytest.approx(0.12)
            assert row["metrics_records"] >= 1
        lines = status_lines(str(tmp_path))
        assert any("2 ok" in ln for ln in lines)
        assert any(FLEET_PROM in ln for ln in lines)

    def test_supervisor_events_carry_metric_briefs(self, tmp_path):
        import dataclasses

        from repro.core.health.inject import FaultInjector

        specs = self.specs()
        specs[1] = dataclasses.replace(
            specs[1], injector=FaultInjector().kill_process(at_step=10),
            checkpoint_every=0.03)
        self.run_ensemble(specs, tmp_path)
        sup = read_jsonl_tolerant(str(tmp_path / "ensemble.jsonl"))
        retries = [r for r in sup if r.get("event") == "member_retry"]
        assert retries
        # the retry event is self-contained: it embeds where the member was
        assert retries[0]["metrics"].get("step", 0) > 0
        ends = [r for r in sup if r.get("event") == "member_end"]
        assert ends and all("metrics" in r for r in ends)

    def test_metrics_registry_not_leaked_after_ensemble(self, tmp_path):
        self.run_ensemble(self.specs(n=1), tmp_path)
        assert not get_metrics().enabled

    def test_no_metrics_opt_out(self, tmp_path):
        result = self.run_ensemble(self.specs(metrics=False), tmp_path)
        assert result.counts["ok"] == 2
        for m in result.members:
            records = read_jsonl_tolerant(
                str(tmp_path / m.member_id / "run.jsonl"))
            assert not [r for r in records if r.get("event") == "metrics"]

    def test_merged_trace_one_lane_per_member(self, tmp_path):
        from repro.obs.trace import merge_chrome_traces, validate_chrome_trace

        self.run_ensemble(self.specs(trace=True), tmp_path)
        out = tmp_path / "ensemble.trace.json"
        doc = merge_chrome_traces(str(tmp_path), out_path=str(out))
        assert validate_chrome_trace(doc) == [], validate_chrome_trace(doc)
        assert doc["otherData"]["members"] == ["m0", "m1"]
        events = doc["traceEvents"]
        span_pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert span_pids == {1, 2}  # one process lane per member
        lane_names = {e["args"]["name"] for e in events
                      if e.get("name") == "process_name"}
        assert {"supervisor", "member m0", "member m1"} <= lane_names
        instants = [e for e in events if e.get("ph") == "i"]
        assert instants and all(e["pid"] == 0 for e in instants)
        assert any(e["name"].startswith("member_start") for e in instants)
        # written artifact parses and validates too
        on_disk = json.loads(out.read_text())
        assert validate_chrome_trace(on_disk) == []

    def test_merge_without_traces_raises(self, tmp_path):
        from repro.obs.trace import merge_chrome_traces

        self.run_ensemble(self.specs(), tmp_path)  # metrics, no traces
        with pytest.raises(FileNotFoundError):
            merge_chrome_traces(str(tmp_path))


@pytest.mark.slow
class TestEnsembleFleetMetricsSpawned:
    """The acceptance bar across real process boundaries."""

    def test_spawned_fleet_totals_agree_with_runlogs(self, tmp_path):
        from repro.ensemble import MemberSpec, RetryPolicy, Supervisor

        specs = [MemberSpec(member_id=f"m{k}", builder="quickstart",
                            perturb={"n_x": 4}, t_end=0.12, seed=k)
                 for k in range(2)]
        sup = Supervisor(specs, workers=2, out_dir=str(tmp_path),
                         retry=RetryPolicy(max_retries=1),
                         member_timeout=60.0)
        result = sup.run()
        assert result.counts["ok"] == 2

        prom = (tmp_path / FLEET_PROM).read_text()
        assert validate_prometheus(prom) == [], validate_prometheus(prom)
        expected = sum(
            _last_metrics_steps(str(tmp_path / m.member_id / "run.jsonl"))
            for m in result.members)
        assert expected > 0
        assert _prom_value(prom, "repro_sched_steps_total") == expected
        history = read_jsonl_tolerant(str(tmp_path / FLEET_JSONL))
        assert history[-1]["fleet"]["counters"]["sched/steps_total"] == \
            expected

    def test_obs_status_cli_on_spawned_run(self, tmp_path):
        import subprocess
        import sys

        from repro.ensemble import MemberSpec, Supervisor

        specs = [MemberSpec(member_id="m0", builder="quickstart",
                            perturb={"n_x": 4}, t_end=0.12, seed=1)]
        Supervisor(specs, workers=1, out_dir=str(tmp_path),
                   member_timeout=60.0).run()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "obs-status", str(tmp_path)],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "m0" in proc.stdout
        assert "1 ok" in proc.stdout
