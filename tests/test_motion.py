"""Tests for the prescribed-motion (kinematic seafloor) boundary."""

import numpy as np
import pytest

from repro.core.materials import acoustic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh


def ocean_box(nx=8, nz=4, L=4.0, h=1.0, c=20.0, top=FaceKind.GRAVITY_FREE_SURFACE):
    oc = acoustic(1000.0, c)
    m = box_mesh(
        np.linspace(0, L, nx + 1), np.linspace(0, 0.5, 2), np.linspace(-h, 0, nz + 1), [oc]
    )
    m.glue_periodic(np.array([L, 0, 0]))
    m.glue_periodic(np.array([0, 0.5, 0]))

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.WALL.value)
        tags[nrm[:, 2] < -0.99] = FaceKind.PRESCRIBED_MOTION.value
        tags[nrm[:, 2] > 0.99] = top.value
        return tags

    m.tag_boundary(tagger)
    return m


class TestMechanics:
    def test_zero_motion_equals_wall(self):
        """motion = 0 must reproduce the rigid free-slip wall exactly."""
        oc = acoustic(1000.0, 20.0)

        def ic(x):
            out = np.zeros((len(x), 9))
            p = 5.0 * np.cos(2 * np.pi * x[:, 0] / 4.0)
            out[:, 0] = out[:, 1] = out[:, 2] = -p
            return out

        m1 = ocean_box(top=FaceKind.FREE_SURFACE)
        s1 = CoupledSolver(m1, order=2, bottom_motion=lambda pts, t: np.zeros(len(pts)))
        s1.set_initial_condition(ic)

        m2 = box_mesh(
            np.linspace(0, 4.0, 9), np.linspace(0, 0.5, 2), np.linspace(-1.0, 0, 5), [oc]
        )
        m2.glue_periodic(np.array([4.0, 0, 0]))
        m2.glue_periodic(np.array([0, 0.5, 0]))

        def tagger(cent, nrm):
            tags = np.full(len(cent), FaceKind.WALL.value)
            tags[nrm[:, 2] > 0.99] = FaceKind.FREE_SURFACE.value
            return tags

        m2.tag_boundary(tagger)
        s2 = CoupledSolver(m2, order=2)
        s2.set_initial_condition(ic)

        for _ in range(25):
            s1.step()
            s2.step()
        assert np.abs(s1.Q - s2.Q).max() < 1e-10 * max(np.abs(s2.Q).max(), 1e-30)

    def test_piston_radiates_pressure(self):
        """A uniformly rising bottom radiates p = Z * v into the column."""
        c, rho, v0 = 20.0, 1000.0, 1e-3
        m = ocean_box(nx=4, nz=6, top=FaceKind.FREE_SURFACE)
        s = CoupledSolver(m, order=2, bottom_motion=lambda pts, t: np.full(len(pts), v0))
        # run until the wavefront is mid-column but not yet at the surface
        t_target = 0.5 / c * 0.8
        n = int(np.ceil(t_target / s.dt))
        for _ in range(n):
            s.step()
        q = s.evaluate(np.array([[2.0, 0.25, -0.9]]))[0]
        p = -(q[0] + q[1] + q[2]) / 3.0
        assert np.isclose(p, rho * c * v0, rtol=0.05)
        assert np.isclose(q[8], v0, rtol=0.05)

    def test_uplift_bookkeeping(self):
        m = ocean_box(nx=4, nz=2)
        v0 = 2e-3
        s = CoupledSolver(m, order=1, bottom_motion=lambda pts, t: np.full(len(pts), v0))
        for _ in range(10):
            s.step()
        assert np.allclose(s.motion.uplift, v0 * s.t, rtol=1e-9)

    def test_validation(self):
        m = ocean_box(nx=4, nz=2)
        with pytest.raises(ValueError):
            CoupledSolver(m, order=1)  # tagged faces but no motion given
        m2 = box_mesh(*(np.linspace(0, 1, 3),) * 3, [acoustic(1000.0, 20.0)])
        with pytest.raises(ValueError):
            CoupledSolver(m2, order=1, bottom_motion=lambda p, t: np.zeros(len(p)))


class TestKajiuraTransfer:
    @pytest.mark.slow
    def test_short_wavelengths_filtered(self):
        """The non-hydrostatic seafloor-to-surface transfer function.

        An instantaneously-completed bottom uplift of wavenumber k produces
        an initial sea-surface displacement ``eta = u / cosh(k h)`` (Kajiura
        1963) — the mechanism the paper invokes for the smoother wavefronts
        of the fully coupled model (Sec. 6.2).  A hydrostatic (shallow
        water) transfer passes the uplift 1:1.
        """
        h, c = 1.0, 25.0
        ratios = {}
        for L, nx in ((8.0, 8), (2.0, 10)):
            k = 2 * np.pi / L
            m = ocean_box(nx=nx, nz=5, L=L, h=h, c=c)
            u0 = 1e-4
            T_rise = 3 * h / c  # fast vs gravity, slow vs acoustics

            def motion(pts, t, k=k):
                rate = u0 / T_rise if t < T_rise else 0.0
                return rate * np.cos(k * pts[:, 0])

            s = CoupledSolver(m, order=2, bottom_motion=motion)
            # after the rise, the surface bump oscillates as a standing
            # gravity wave eta0 cos(w t) with acoustic reverberations on
            # top; least-squares fit of the gravity component over one
            # period separates the two (the acoustics average out)
            omega = np.sqrt(9.81 * k * np.tanh(k * h))
            t_end = T_rise + 2 * np.pi / omega
            x = s.gravity.points[:, :, 0]
            ts, amps = [], []
            while s.t < t_end:
                s.step()
                if s.t > T_rise:
                    ts.append(s.t)
                    amps.append(2 * np.mean(s.gravity.eta * np.cos(k * x)))
            ts, amps = np.array(ts), np.array(amps)
            basis = np.column_stack([np.cos(omega * ts), np.sin(omega * ts), np.ones_like(ts)])
            coef = np.linalg.lstsq(basis, amps, rcond=None)[0]
            ratios[k * h] = float(np.hypot(coef[0], coef[1])) / u0

        for kh, ratio in ratios.items():
            expected = 1.0 / np.cosh(kh)
            assert np.isclose(ratio, expected, rtol=0.25), (kh, ratio, expected)
        # and the qualitative statement: short wavelengths strongly filtered
        khs = sorted(ratios)
        assert ratios[khs[1]] < 0.7 * ratios[khs[0]]
