"""Tests for the exact Riemann solvers and flux matrices (paper Sec. 4.2/4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.materials import SXX, SXY, SXZ, VX, VY, VZ, acoustic, elastic, jacobian_normal, jacobians
from repro.core.riemann import (
    FaceKind,
    boundary_flux_matrix,
    free_surface_matrix,
    gravity_affine_vector,
    interior_flux_matrices,
    jacobian_positive_part,
    middle_state_matrices,
    wall_matrix,
)
from repro.core.rotation import (
    bond_matrix,
    normal_basis,
    state_rotation,
    state_rotation_inverse,
)

from .conftest import random_material, random_unit_vector


def random_unit(seed):
    rng = np.random.default_rng(seed)
    n = rng.normal(size=3)
    return n / np.linalg.norm(n)


def state_rotation_from(R):
    """T9 for an arbitrary rotation matrix: blockdiag(bond(R), R)."""
    T = np.zeros((9, 9))
    T[:6, :6] = bond_matrix(R)
    T[6:, 6:] = R
    return T


ROCK = elastic(2700.0, 6000.0, 3464.0)
SOFT = elastic(2000.0, 3000.0, 1500.0)
WATER = acoustic(1000.0, 1500.0)


class TestMiddleState:
    def test_welded_consistency(self):
        """Equal traces of compatible states reproduce the trace."""
        Gm, Gp = middle_state_matrices(ROCK, ROCK)
        w = np.random.default_rng(0).normal(size=9)
        assert np.allclose((Gm + Gp) @ w, w)

    def test_elastic_acoustic_zero_shear(self):
        Gm, Gp = middle_state_matrices(ROCK, WATER)
        w = np.random.default_rng(1).normal(size=9)
        wb = Gm @ w + Gp @ np.random.default_rng(2).normal(size=9)
        assert np.isclose(wb[SXY], 0.0)
        assert np.isclose(wb[SXZ], 0.0)

    def test_elastic_acoustic_consistency(self):
        """Physically compatible equal traces are reproduced (Sec. 4.2)."""
        Gm, Gp = middle_state_matrices(ROCK, WATER)
        rng = np.random.default_rng(3)
        w = rng.normal(size=9)
        w[SXY] = w[SXZ] = 0.0  # compatible: no shear traction
        wb = (Gm + Gp) @ w
        # normal traction and normal velocity reproduced
        assert np.isclose(wb[SXX], w[SXX])
        assert np.isclose(wb[VX], w[VX])

    def test_welded_different_materials_continuity(self):
        """Middle state must satisfy continuity seen from both sides."""
        Gm, Gp = middle_state_matrices(ROCK, SOFT)
        Gm2, Gp2 = middle_state_matrices(SOFT, ROCK)
        rng = np.random.default_rng(4)
        wm, wp = rng.normal(size=9), rng.normal(size=9)
        wb_from_minus = Gm @ wm + Gp @ wp
        # seen from the other side the normal flips: in the mirrored local
        # frame traction and velocity components transform consistently; we
        # verify the traction/velocity *values* agree via the explicit
        # two-wave solution instead.
        a = (wp[SXX] - wm[SXX] + SOFT.Zp * (wp[VX] - wm[VX])) / (ROCK.Zp + SOFT.Zp)
        assert np.isclose(wb_from_minus[SXX], wm[SXX] + ROCK.Zp * a)
        assert np.isclose(wb_from_minus[VX], wm[VX] + a)

    def test_paper_eq17_18(self):
        """Explicit check of paper Eqs. (17)-(18) on the elastic side."""
        rng = np.random.default_rng(5)
        wm, wp = rng.normal(size=9), rng.normal(size=9)
        Gm, Gp = middle_state_matrices(ROCK, WATER)
        wb = Gm @ wm + Gp @ wp
        Zpm, Zpp, Zsm = ROCK.Zp, WATER.Zp, ROCK.Zs
        alpha1 = (
            Zpm * Zpp / (Zpm + Zpp) * ((wm[0] - wp[0]) / Zpp + wm[6] - wp[6])
        )
        assert np.isclose(wb[0], wm[0] - alpha1)
        assert np.isclose(wb[6], wm[6] - alpha1 / Zpm)
        assert np.isclose(wb[7], wm[7] - wm[3] / Zsm)
        assert np.isclose(wb[8], wm[8] - wm[5] / Zsm)


class TestFluxMatrices:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_welded_equals_physical_flux(self, seed):
        n = random_unit(seed)
        Fm, Fp = interior_flux_matrices(ROCK, ROCK, n)
        q = np.random.default_rng(seed).normal(size=9)
        Ahat = jacobian_normal(ROCK, n)
        assert np.allclose((Fm + Fp) @ q, Ahat @ q, rtol=1e-10, atol=1e-6)

    def test_coupled_flux_consistency(self):
        """Compatible continuous states get the physical flux (convergence
        prerequisite highlighted in paper Sec. 4.2)."""
        n = random_unit(7)
        T = state_rotation(n)
        w = np.random.default_rng(8).normal(size=9)
        w[SXY] = w[SXZ] = 0.0
        q = T @ w
        Fm, Fp = interior_flux_matrices(ROCK, WATER, n)
        Ahat = jacobian_normal(ROCK, n)
        assert np.allclose((Fm + Fp) @ q, Ahat @ q, rtol=1e-9, atol=1e-6)

    def test_one_sided_flux_would_differ(self):
        """A flux ignoring the other side's impedance differs from the exact
        one (the non-convergence pitfall of [64] cited in Sec. 4.2)."""
        n = np.array([1.0, 0, 0])
        Fm_coupled, _ = interior_flux_matrices(ROCK, WATER, n)
        Fm_wrong, _ = interior_flux_matrices(ROCK, ROCK, n)
        assert not np.allclose(Fm_coupled, Fm_wrong, rtol=1e-3)

    def test_acoustic_side_no_shear_flux(self):
        n = np.array([0.0, 0, 1.0])
        Fm, Fp = interior_flux_matrices(WATER, ROCK, n)
        q = np.random.default_rng(9).normal(size=9)
        flux = Fm @ q + Fp @ q
        # acoustic flux never produces shear stress
        assert np.allclose(flux[3:6], 0.0, atol=1e-8)


class TestInterfaceProperties:
    """Property-based checks over random material pairs and orientations.

    These generalize the fixed ROCK/WATER spot checks above: the Godunov
    flux must be conservative, frame-independent and consistent for *any*
    admissible acoustic/elastic pairing and face orientation.
    """

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_welded_flux_is_consistent(self, seed):
        """F- + F+ reproduces the physical normal flux for any material."""
        rng = np.random.default_rng(seed)
        mat = random_material(rng)
        n = random_unit_vector(rng)
        q = rng.normal(size=9)
        Fm, Fp = interior_flux_matrices(mat, mat, n)
        Ahat = jacobian_normal(mat, n)
        scale = max(np.abs(Ahat @ q).max(), np.abs(Ahat).max())
        assert np.allclose((Fm + Fp) @ q, Ahat @ q, rtol=1e-9, atol=1e-9 * scale)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_momentum_conservation_across_interface(self, seed):
        """What flows out of the minus side flows into the plus side.

        The velocity rows of the flux carry 1/rho, so the momentum budget
        is rho_m F^-[v] + rho_p F^+[v] = 0 — for any material pairing,
        with the plus side seeing the flipped normal.
        """
        rng = np.random.default_rng(seed)
        mm, mp = random_material(rng), random_material(rng)
        n = random_unit_vector(rng)
        qm, qp = rng.normal(size=9), rng.normal(size=9)
        Fm, Fp = interior_flux_matrices(mm, mp, n)
        Gm, Gp = interior_flux_matrices(mp, mm, -n)
        f_minus = (Fm @ qm + Fp @ qp)[6:]
        f_plus = (Gm @ qp + Gp @ qm)[6:]
        budget = mm.rho * f_minus + mp.rho * f_plus
        scale = max(np.abs(mm.rho * f_minus).max(), np.abs(mp.rho * f_plus).max(), 1e-30)
        assert np.abs(budget).max() < 1e-9 * scale

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_middle_state_agrees_from_both_sides(self, seed):
        """Traction vector and normal velocity of the Godunov middle state
        are the same whether solved from the minus or the plus side."""
        rng = np.random.default_rng(seed)
        mm, mp = random_material(rng), random_material(rng)
        n = random_unit_vector(rng)
        qm, qp = rng.normal(size=9), rng.normal(size=9)
        # minus-side solve, in the local frame of n
        wm, wp = state_rotation_inverse(n) @ qm, state_rotation_inverse(n) @ qp
        Gm, Gp = middle_state_matrices(mm, mp)
        wb_minus = Gm @ wm + Gp @ wp
        # plus-side solve, in the local frame of -n (its outward normal)
        w2m, w2p = state_rotation_inverse(-n) @ qp, state_rotation_inverse(-n) @ qm
        Hm, Hp = middle_state_matrices(mp, mm)
        wb_plus = Hm @ w2m + Hp @ w2p
        # traction t(n) = -t(-n); local face-traction components are
        # (sxx, sxy, sxz) = Voigt rows [0, 3, 5] in each local frame
        t_minus = normal_basis(n) @ wb_minus[[SXX, SXY, SXZ]]
        t_plus = normal_basis(-n) @ wb_plus[[SXX, SXY, SXZ]]
        scale = max(np.abs(t_minus).max(), np.abs(wb_minus).max(), 1e-30)
        assert np.abs(t_minus + t_plus).max() < 1e-9 * scale
        # normal velocity: v*.n from minus == -(v*.(-n)) from plus
        assert abs(wb_minus[VX] + wb_plus[VX]) < 1e-9 * scale

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_flux_rotation_invariance(self, seed):
        """Rotating the face normal conjugates the flux by T9 (Eq. 15):
        F(R n) = T9(R) F(n) T9(R)^-1 — physics has no preferred frame."""
        rng = np.random.default_rng(seed)
        mm, mp = random_material(rng), random_material(rng)
        n = random_unit_vector(rng)
        R = normal_basis(random_unit_vector(rng))  # arbitrary rotation
        T9, T9i = state_rotation_from(R), state_rotation_from(R.T)
        Fm, Fp = interior_flux_matrices(mm, mp, n)
        Gm, Gp = interior_flux_matrices(mm, mp, R @ n)
        assert np.allclose(Gm, T9 @ Fm @ T9i, atol=1e-12 * max(np.abs(Fm).max(), 1.0))
        assert np.allclose(Gp, T9 @ Fp @ T9i, atol=1e-12 * max(np.abs(Fp).max(), 1.0))


class TestBoundary:
    def test_free_surface_zeroes_traction(self):
        G = free_surface_matrix(ROCK)
        w = np.random.default_rng(10).normal(size=9)
        wb = G @ w
        assert np.allclose([wb[SXX], wb[SXY], wb[SXZ]], 0.0)

    def test_wall_zeroes_normal_velocity(self):
        G = wall_matrix(ROCK)
        w = np.random.default_rng(11).normal(size=9)
        wb = G @ w
        assert np.isclose(wb[VX], 0.0)
        assert np.allclose([wb[SXY], wb[SXZ]], 0.0)  # free slip

    def test_wall_reflects_like_mirror_ghost(self):
        """Wall middle state == welded Riemann against the mirrored ghost."""
        w = np.random.default_rng(12).normal(size=9)
        ghost = w.copy()
        ghost[VX] = -w[VX]
        ghost[SXY] = -w[SXY]
        ghost[SXZ] = -w[SXZ]
        Gm, Gp = middle_state_matrices(ROCK, ROCK)
        wb_ghost = Gm @ w + Gp @ ghost
        wb_wall = wall_matrix(ROCK) @ w
        for idx in (SXX, SXY, SXZ, VX, VY, VZ):
            assert np.isclose(wb_wall[idx], wb_ghost[idx]), idx

    def test_free_surface_reflects_like_traction_ghost(self):
        """Free surface == welded Riemann against the traction-mirrored ghost."""
        w = np.random.default_rng(13).normal(size=9)
        ghost = w.copy()
        ghost[SXX] = -w[SXX]
        ghost[SXY] = -w[SXY]
        ghost[SXZ] = -w[SXZ]
        Gm, Gp = middle_state_matrices(ROCK, ROCK)
        wb_ghost = Gm @ w + Gp @ ghost
        wb_fs = free_surface_matrix(ROCK) @ w
        for idx in (SXX, SXY, SXZ, VX, VY, VZ):
            assert np.isclose(wb_fs[idx], wb_ghost[idx]), idx

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_boundary_matrices_idempotent(self, seed):
        """Free-surface and wall middle-state maps are projections: a state
        already satisfying the boundary condition is left alone (G G = G),
        for any admissible material."""
        rng = np.random.default_rng(seed)
        mat = random_material(rng)
        for G in (free_surface_matrix(mat), wall_matrix(mat)):
            scale = max(np.abs(G).max(), 1.0)
            assert np.abs(G @ G - G).max() < 1e-12 * scale

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_boundary_conditions_hold_for_any_material(self, seed):
        rng = np.random.default_rng(seed)
        mat = random_material(rng)
        w = rng.normal(size=9)
        wb_fs = free_surface_matrix(mat) @ w
        assert np.allclose([wb_fs[SXX], wb_fs[SXY], wb_fs[SXZ]], 0.0, atol=1e-10)
        wb_wall = wall_matrix(mat) @ w
        assert abs(wb_wall[VX]) < 1e-10

    def test_gravity_affine_vector(self):
        c = gravity_affine_vector(WATER, g=9.81)
        # paper Eq. 22: p^b = rho g eta  =>  sigma_nn^b = -rho g eta
        assert np.isclose(c[SXX], -1000.0 * 9.81)
        assert np.isclose(c[VX], -1000.0 * 9.81 / WATER.Zp)

    def test_boundary_flux_kinds(self):
        n = random_unit(14)
        for kind in (FaceKind.FREE_SURFACE, FaceKind.WALL, FaceKind.ABSORBING):
            F = boundary_flux_matrix(ROCK, n, kind)
            assert F.shape == (9, 9)
        with pytest.raises(ValueError):
            boundary_flux_matrix(ROCK, n, FaceKind.INTERIOR)


class TestPositivePart:
    @pytest.mark.parametrize("mat", [ROCK, WATER])
    def test_splitting(self, mat):
        A = jacobians(mat)[0]
        Ap = jacobian_positive_part(mat)
        Am = A - Ap
        evp = np.real(np.linalg.eigvals(Ap))
        evm = np.real(np.linalg.eigvals(Am))
        assert evp.min() > -1e-6 * mat.cp
        assert evm.max() < 1e-6 * mat.cp
        # A+ and A- annihilate each other (independent characteristic fields)
        assert np.abs(Ap @ Am).max() < 1e-10 * np.abs(A).max() ** 2 / mat.cp

    def test_outgoing_plane_wave_passes(self):
        """A right-going P wave state is transported by A+ unchanged vs A."""
        mat = ROCK
        r = np.zeros(9)
        r[0], r[1], r[2], r[6] = mat.lam + 2 * mat.mu, mat.lam, mat.lam, -mat.cp
        A = jacobians(mat)[0]
        Ap = jacobian_positive_part(mat)
        assert np.allclose(Ap @ r, A @ r, rtol=1e-12)

    def test_incoming_wave_absorbed(self):
        """A left-going P wave state produces zero outgoing flux."""
        mat = ROCK
        r = np.zeros(9)
        r[0], r[1], r[2], r[6] = mat.lam + 2 * mat.mu, mat.lam, mat.lam, +mat.cp
        Ap = jacobian_positive_part(mat)
        assert np.abs(Ap @ r).max() < 1e-8 * mat.lam
