"""Smoke-run every ``benchmarks/bench_*.py`` entry point in tiny-mesh mode.

The figure/table benchmarks are the repo's reproduction artifacts; nothing
in the fast suite would notice if one of them drifted out of sync with the
library API (signature changes, renamed helpers, moved configs).  This
module imports each ``bench_*`` file and calls every ``test_*`` entry
point with a stub ``benchmark`` fixture under ``REPRO_FAST=1``, so the
whole suite stays runnable without pytest-benchmark installed.

Marked ``slow``: the shared scenario runs take minutes even in fast mode.
Run with ``pytest -m slow tests/test_bench_smoke.py``.
"""

import importlib
import inspect
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))


class StubBenchmark:
    """Duck-typed stand-in for pytest-benchmark's ``benchmark`` fixture.

    Supports the two call styles the suite uses — ``benchmark(fn)`` and
    ``benchmark.pedantic(fn, rounds=..., iterations=..., warmup_rounds=...)``
    — and records real wall-clock timings in ``stats`` so entry points
    that compute speedups from ``stats["mean"]`` keep working.
    """

    def __init__(self):
        self.stats = {}

    def __call__(self, fn, *args, **kwargs):
        return self._run(fn, args, kwargs, rounds=1, iterations=1)

    def pedantic(self, target, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0):
        kwargs = kwargs or {}
        for _ in range(warmup_rounds):
            target(*args, **kwargs)
        return self._run(target, args, kwargs, rounds, iterations)

    def _run(self, fn, args, kwargs, rounds, iterations):
        times, result = [], None
        for _ in range(max(int(rounds), 1)):
            t0 = time.perf_counter()
            for _ in range(max(int(iterations), 1)):
                result = fn(*args, **kwargs)
            times.append((time.perf_counter() - t0) / max(int(iterations), 1))
        self.stats = {
            "mean": sum(times) / len(times),
            "min": min(times),
            "max": max(times),
            "rounds": len(times),
        }
        return result


@pytest.fixture(autouse=True)
def _tiny_mesh_mode(monkeypatch, tmp_path):
    # REPRO_FAST is read at benchmarks/_cache.py import time, so it must be
    # in the environment before the bench module (and _cache) are imported
    monkeypatch.setenv("REPRO_FAST", "1")
    monkeypatch.syspath_prepend(str(BENCH_DIR))
    # keep the smoke run from clobbering the committed full-run results in
    # benchmarks/out with tiny-mesh numbers
    import _cache

    monkeypatch.setattr(_cache, "_OUT_DIR", str(tmp_path / "out"))


def test_all_benchmarks_discovered():
    assert len(BENCH_MODULES) >= 14, BENCH_MODULES


@pytest.mark.parametrize("mod_name", BENCH_MODULES)
def test_bench_entry_points_run(mod_name):
    mod = importlib.import_module(mod_name)
    entries = [
        (name, fn)
        for name, fn in sorted(vars(mod).items())
        if name.startswith("test_") and inspect.isfunction(fn)
        and fn.__module__ == mod.__name__
    ]
    assert entries, f"{mod_name} defines no test_* entry point"
    for name, fn in entries:
        params = inspect.signature(fn).parameters
        # entry points may only request the benchmark fixture — anything
        # else is argument drift against how the suite invokes them
        extra = [p for p in params if p != "benchmark"]
        assert not extra, f"{mod_name}.{name} requests unknown fixtures {extra}"
        kwargs = {"benchmark": StubBenchmark()} if "benchmark" in params else {}
        fn(**kwargs)
