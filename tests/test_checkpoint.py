"""Checkpoint/restart: atomic archives, fingerprinting, exact round-trips."""

import os

import numpy as np
import pytest

from repro.core.lts import LocalTimeStepping
from repro.core.materials import acoustic, elastic
from repro.core.resilience import ResilientRunner
from repro.core.solver import CoupledSolver, PointSource, ocean_surface_gravity_tagger
from repro.io.checkpoint import (
    CheckpointError,
    CheckpointManager,
    capture_state,
    latest_checkpoint,
    load_checkpoint,
    restore_checkpoint,
    restore_state,
    save_checkpoint,
    fingerprint,
)
from repro.mesh.generators import layered_ocean_mesh
from repro.rupture.fault import FaultSolver, Prestress
from repro.rupture.friction import LinearSlipWeakening


def build_gts(order=2):
    """Small coupled Earth-ocean solver with a gravity surface and a source."""
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, 2000.0, 4)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-1500.0, -500.0, 3),
        zs_ocean=np.linspace(-500.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=order)

    def ricker(t):
        a = (np.pi * 2.0 * (t - 0.3)) ** 2
        return (1.0 - 2.0 * a) * np.exp(-a)

    solver.add_source(
        PointSource([1000.0, 1000.0, -900.0], ricker, moment=[5e12] * 3 + [0, 0, 0])
    )
    return solver


def build_lts_fault_gravity():
    """LTS setup with a rupturing fault under a gravity-topped ocean."""
    crust = elastic(2700.0, 6000.0, 3464.0)
    ocean = acoustic(1000.0, 1500.0)
    xs = np.linspace(-1500.0, 1500.0, 5)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-3000.0, -1000.0, 3),
        zs_ocean=np.linspace(-1000.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    n = mesh.mark_fault(
        lambda c, nrm: (np.abs(nrm[:, 0]) > 0.99)
        & (np.abs(c[:, 0]) < 1e-6)
        & (c[:, 2] < -1000.0)
    )
    assert n > 0
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    fr = LinearSlipWeakening(mu_s=0.677, mu_d=0.525, d_c=0.05)
    fault = FaultSolver(fr, Prestress(sigma_n=-120e6, tau_s=81.6e6))
    solver = CoupledSolver(mesh, order=1, fault=fault)
    lts = LocalTimeStepping(solver)
    return solver, fault, lts


class TestArchive:
    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        solver = build_gts()
        solver.run(0.05)
        path = save_checkpoint(str(tmp_path / "state"), solver)
        assert path.endswith(".npz") and os.path.exists(path)
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_roundtrip_restores_every_field(self, tmp_path):
        solver = build_gts()
        solver.run(0.1)
        path = save_checkpoint(str(tmp_path / "s.npz"), solver,
                               metadata={"note": "mid-run"})
        fresh = build_gts()
        meta = restore_checkpoint(path, fresh)
        assert meta["note"] == "mid-run"
        assert fresh.t == solver.t
        assert np.array_equal(fresh.Q, solver.Q)
        assert np.array_equal(fresh.gravity.eta, solver.gravity.eta)

    def test_fingerprint_rejects_different_order(self, tmp_path):
        solver = build_gts(order=2)
        path = save_checkpoint(str(tmp_path / "s.npz"), solver)
        other = CoupledSolver(solver.mesh, order=1)
        with pytest.raises(CheckpointError, match="different problem"):
            restore_checkpoint(path, other)

    def test_fingerprint_strict_false_still_checks_shapes(self, tmp_path):
        solver = build_gts(order=2)
        path = save_checkpoint(str(tmp_path / "s.npz"), solver)
        other = CoupledSolver(solver.mesh, order=1)
        with pytest.raises(CheckpointError, match="shape"):
            restore_checkpoint(path, other, strict=False)

    def test_fingerprint_differs_between_problems(self):
        a = build_gts(order=2)
        b = build_gts(order=1)
        assert fingerprint(a) != fingerprint(b)
        assert fingerprint(a) == fingerprint(build_gts(order=2))

    def test_corrupt_archive_is_rejected(self, tmp_path):
        bad = tmp_path / "ckpt_0000000001.npz"
        bad.write_bytes(b"not an npz archive")
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(bad))

    def test_fault_state_requires_fault_solver(self, tmp_path):
        solver, fault, lts = build_lts_fault_gravity()
        path = save_checkpoint(str(tmp_path / "f.npz"), solver, lts)
        plain = build_gts()
        with pytest.raises(CheckpointError):
            restore_state(plain, load_checkpoint(path)["state"])


class TestManager:
    def test_rotation_keeps_newest(self, tmp_path):
        solver = build_gts()
        mgr = CheckpointManager(str(tmp_path), solver, keep=2)
        for step in (10, 20, 30):
            mgr.save(step)
        names = sorted(os.listdir(tmp_path))
        assert names == ["ckpt_0000000020.npz", "ckpt_0000000030.npz"]
        assert mgr.latest().endswith("ckpt_0000000030.npz")

    def test_latest_checkpoint_empty_dir(self, tmp_path):
        assert latest_checkpoint(str(tmp_path)) is None
        assert latest_checkpoint(str(tmp_path / "missing")) is None


class TestRoundTripGTS:
    def test_interrupted_run_matches_uninterrupted_bitwise(self, tmp_path):
        t_end = 0.6
        baseline = build_gts()
        ResilientRunner(baseline, checkpoint_every=0.2, verbose=False).run(t_end)

        # "crash" after 0.4 s of a checkpointed run...
        victim = build_gts()
        ResilientRunner(
            victim, checkpoint_every=0.2, checkpoint_dir=str(tmp_path),
            verbose=False,
        ).run(0.4)

        # ...then rebuild from scratch and resume from the latest checkpoint
        resumed = build_gts()
        runner = ResilientRunner(
            resumed, checkpoint_every=0.2, checkpoint_dir=str(tmp_path),
            verbose=False,
        )
        runner.resume()
        assert resumed.t == pytest.approx(0.4)
        runner.run(t_end)

        assert resumed.t == baseline.t
        assert np.array_equal(resumed.Q, baseline.Q)
        assert np.array_equal(resumed.gravity.eta, baseline.gravity.eta)


class TestRoundTripLTS:
    def test_interrupted_lts_fault_gravity_matches_bitwise(self, tmp_path):
        t_end = 0.3
        sA, fA, ltsA = build_lts_fault_gravity()
        ResilientRunner(sA, lts=ltsA, checkpoint_every=0.1, verbose=False).run(t_end)
        assert fA.slip.max() > 0  # the fault actually ruptures in this window

        sB, fB, ltsB = build_lts_fault_gravity()
        ResilientRunner(
            sB, lts=ltsB, checkpoint_every=0.1, checkpoint_dir=str(tmp_path),
            verbose=False,
        ).run(0.2)

        sC, fC, ltsC = build_lts_fault_gravity()
        runner = ResilientRunner(
            sC, lts=ltsC, checkpoint_every=0.1, checkpoint_dir=str(tmp_path),
            verbose=False,
        )
        runner.resume()
        runner.run(t_end)

        assert np.array_equal(sA.Q, sC.Q)
        assert np.array_equal(sA.gravity.eta, sC.gravity.eta)
        for name in fA.STATE_FIELDS:
            assert np.array_equal(getattr(fA, name), getattr(fC, name)), name


class TestCaptureRestore:
    def test_capture_is_a_deep_copy(self):
        solver = build_gts()
        solver.run(0.05)
        snap = capture_state(solver)
        q_before = snap["Q"].copy()
        solver.run(0.1)
        assert np.array_equal(snap["Q"], q_before)
        restore_state(solver, snap)
        assert np.array_equal(solver.Q, q_before)
        assert solver.t == float(snap["t"])


# ----------------------------------------------------------------------
class TestCorruptFallback:
    """A damaged newest rotation must never poison a resume (ISSUE 6)."""

    def _two_rotations(self, tmp_path):
        solver = build_gts()
        mgr = CheckpointManager(str(tmp_path), solver, keep=3)
        solver.run(0.05)
        mgr.save(10)
        good_state = capture_state(solver)
        solver.run(0.1)
        mgr.save(20)
        return solver, mgr, good_state

    def test_restore_latest_skips_corrupt_newest(self, tmp_path):
        solver, mgr, good_state = self._two_rotations(tmp_path)
        # kill -9 mid-write through a non-atomic path: garbage newest file
        with open(mgr.path_for(20), "wb") as f:
            f.write(b"\x00" * 100)
        solver.run(0.15)  # wander away from both rotations
        with pytest.warns(RuntimeWarning, match="skipping unreadable"):
            meta = mgr.restore_latest()
        assert meta is not None and int(float(meta["step"])) == 10
        assert solver.t == float(good_state["t"])
        assert np.array_equal(solver.Q, good_state["Q"])

    def test_restore_latest_skips_truncated_newest(self, tmp_path):
        solver, mgr, good_state = self._two_rotations(tmp_path)
        raw = open(mgr.path_for(20), "rb").read()
        with open(mgr.path_for(20), "wb") as f:
            f.write(raw[: len(raw) // 2])  # torn at half length
        with pytest.warns(RuntimeWarning, match="skipping unreadable"):
            meta = mgr.restore_latest()
        assert int(float(meta["step"])) == 10
        assert np.array_equal(solver.Q, good_state["Q"])

    def test_restore_latest_all_corrupt_returns_none(self, tmp_path):
        solver, mgr, _ = self._two_rotations(tmp_path)
        for step in (10, 20):
            with open(mgr.path_for(step), "wb") as f:
                f.write(b"junk")
        with pytest.warns(RuntimeWarning):
            assert mgr.restore_latest() is None

    def test_fingerprint_mismatch_still_raises_strict(self, tmp_path):
        solver = build_gts(order=2)
        mgr = CheckpointManager(str(tmp_path), solver, keep=3)
        mgr.save(10)
        other = CoupledSolver(solver.mesh, order=1)
        mgr2 = CheckpointManager(str(tmp_path), other, keep=3)
        # damaged files are a fallback case; a *foreign* checkpoint is not
        with pytest.raises(CheckpointError, match="different problem"):
            mgr2.restore_latest()

    def test_latest_checkpoint_validate_skips_corrupt(self, tmp_path):
        solver, mgr, _ = self._two_rotations(tmp_path)
        with open(mgr.path_for(20), "wb") as f:
            f.write(b"\x00junk")
        # without validation the damaged newest wins; with it, the
        # next-newest readable rotation does
        assert latest_checkpoint(str(tmp_path)) == mgr.path_for(20)
        with pytest.warns(RuntimeWarning, match="skipping unreadable"):
            best = latest_checkpoint(str(tmp_path), validate=True)
        assert best == mgr.path_for(10)

    def test_candidates_sorted_newest_first(self, tmp_path):
        solver = build_gts()
        mgr = CheckpointManager(str(tmp_path), solver, keep=5)
        for step in (5, 30, 10):
            mgr.save(step)
        from repro.io.checkpoint import checkpoint_candidates

        steps = [int(os.path.basename(p)[5:-4])
                 for p in checkpoint_candidates(str(tmp_path))]
        assert steps == [30, 10, 5]
