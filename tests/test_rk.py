"""Tests for the face-ODE integrators."""

import numpy as np
import pytest

from repro.core.rk import RK4, ButcherTableau, ExactPropagator, rk_solve


class TestExactPropagator:
    def test_scalar_exponential(self):
        a = -2.0
        prop = ExactPropagator(np.array([[a]]), n_forcing=0, dt=0.5)
        y = prop.apply(np.array([3.0]), np.zeros((1, 0)))
        assert np.isclose(y[0], 3.0 * np.exp(a * 0.5))

    def test_constant_forcing(self):
        """y' = a y + c: exact solution known."""
        a, c, dt = -1.5, 2.0, 0.7
        prop = ExactPropagator(np.array([[a]]), n_forcing=1, dt=dt)
        y = prop.apply(np.array([0.0]), np.array([[c]]))
        exact = c / (-a) * (1 - np.exp(a * dt))
        assert np.isclose(y[0], exact)

    def test_polynomial_forcing_vs_dense_rk(self):
        """Exact propagator matches a very fine RK4 integration."""
        rng = np.random.default_rng(0)
        A = np.array([[-3.0, 0.0], [1.0, 0.0]])
        K = 4
        b = rng.normal(size=(2, K))
        dt = 0.35
        prop = ExactPropagator(A, n_forcing=K, dt=dt)
        y0 = rng.normal(size=2)
        y_exact = prop.apply(y0, b)

        def f(t, y):
            return A @ y + b @ t ** np.arange(K)

        y_rk = rk_solve(f, y0, dt, RK4, n_steps=2000)
        assert np.allclose(y_exact, y_rk, rtol=1e-9, atol=1e-11)

    def test_batched_apply(self):
        A = np.array([[-1.0]])
        prop = ExactPropagator(A, n_forcing=2, dt=0.1)
        y0 = np.ones((5, 7, 1))
        b = np.zeros((5, 7, 1, 2))
        y = prop.apply(y0, b)
        assert y.shape == (5, 7, 1)
        assert np.allclose(y, np.exp(-0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            ExactPropagator(np.zeros((2, 3)), 1, 0.1)
        with pytest.raises(ValueError):
            ExactPropagator(np.zeros((2, 2)), 1, -0.1)


class TestRK:
    def test_rk4_order(self):
        """Error of y' = y over [0,1] shrinks ~h^4."""
        errs = []
        for n in (4, 8):
            y = rk_solve(lambda t, y: y, np.array([1.0]), 1.0, RK4, n_steps=n)
            errs.append(abs(y[0] - np.e))
        assert np.log2(errs[0] / errs[1]) > 3.7

    def test_tableau_validation(self):
        with pytest.raises(ValueError):
            ButcherTableau(
                a=np.array([[0.0, 1.0], [0.0, 0.0]]),
                b=np.array([0.5, 0.5]),
                c=np.array([0.0, 1.0]),
                order=2,
            )
        with pytest.raises(ValueError):
            ButcherTableau(
                a=np.zeros((2, 2)),
                b=np.array([0.5, 0.6]),
                c=np.array([0.0, 1.0]),
                order=2,
            )

    def test_time_dependent_rhs(self):
        """y' = t  ->  y = t^2/2."""
        y = rk_solve(lambda t, y: np.array([t]), np.array([0.0]), 2.0, RK4, n_steps=4)
        assert np.isclose(y[0], 2.0)
