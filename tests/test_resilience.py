"""Watchdog, fault injection, and rollback/dt-backoff recovery."""

import os

import numpy as np
import pytest

from repro.core.health import (
    HealthError,
    SimulationDiverged,
    Watchdog,
    total_energy,
)
from repro.core.health.inject import FaultInjector, InjectedIOError
from repro.core.lts import LocalTimeStepping
from repro.core.materials import Material, acoustic, elastic
from repro.core.resilience import ResilientRunner
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver, PointSource, ocean_surface_gravity_tagger
from repro.mesh.generators import box_mesh, layered_ocean_mesh

ROCK = elastic(2700.0, 6000.0, 3464.0)


def build_coupled(order=2):
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, 2000.0, 4)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-1500.0, -500.0, 3),
        zs_ocean=np.linspace(-500.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=order)

    def ricker(t):
        a = (np.pi * 2.0 * (t - 0.3)) ** 2
        return (1.0 - 2.0 * a) * np.exp(-a)

    solver.add_source(
        PointSource([1000.0, 1000.0, -900.0], ricker, moment=[5e12] * 3 + [0, 0, 0])
    )
    return solver


def build_closed_passive():
    """Closed elastic box with an initial condition: strict Lyapunov domain."""
    xs = np.linspace(0.0, 1000.0, 4)
    mesh = box_mesh(xs, xs, xs, [ROCK])
    solver = CoupledSolver(mesh, order=1)

    def bump(points):
        out = np.zeros((len(points), 9))
        r2 = ((points - 500.0) ** 2).sum(axis=1)
        out[:, 8] = np.exp(-r2 / 200.0**2)
        return out

    solver.set_initial_condition(bump)
    return solver


class TestWatchdog:
    def test_healthy_run_stays_healthy(self):
        solver = build_closed_passive()
        wd = Watchdog(solver)
        assert wd.energy_mode == "strict"
        for _ in range(5):
            solver.step()
            assert wd.check(dt=solver.dt).ok

    def test_nan_detected_with_location_detail(self):
        solver = build_closed_passive()
        wd = Watchdog(solver)
        solver.Q.flat[3] = np.nan
        report = wd.check()
        assert not report.ok
        assert "NaN" in report.checks["state"]

    def test_energy_growth_trips_strict_mode(self):
        solver = build_closed_passive()
        wd = Watchdog(solver)
        assert wd.check().ok
        solver.Q *= 2.0  # quadruples the energy
        report = wd.check()
        assert not report.ok
        assert "Lyapunov" in report.checks["energy"]

    def test_sources_switch_auto_to_growth_mode(self):
        solver = build_coupled()
        wd = Watchdog(solver)
        assert wd.energy_mode == "growth"
        # energy injection by the source must NOT trip the watchdog
        for _ in range(5):
            solver.step()
            assert wd.check(dt=solver.dt).ok

    def test_energy_runaway_trips_growth_mode(self):
        solver = build_coupled()
        wd = Watchdog(solver, growth_factor=10.0)
        for _ in range(3):
            solver.step()
            wd.check()
        solver.Q *= 100.0
        assert not wd.check().ok

    def test_cfl_violation_detected(self):
        solver = build_closed_passive()
        wd = Watchdog(solver)
        assert wd.check(dt=solver.dt).ok
        report = wd.check(dt=solver.dt * 64.0)
        assert not report.ok
        assert "CFL" in report.checks["cfl"]

    def test_ensure_raises_health_error(self):
        solver = build_closed_passive()
        wd = Watchdog(solver)
        solver.Q.flat[0] = np.inf
        with pytest.raises(HealthError, match="Inf"):
            wd.ensure()

    def test_total_energy_includes_surface_potential(self):
        solver = build_coupled()
        assert total_energy(solver) == pytest.approx(solver.energy())
        solver.gravity.eta += 0.5
        assert total_energy(solver) > solver.energy()


class TestRecovery:
    def test_injected_nan_triggers_rollback_and_run_completes(self):
        solver = build_coupled()
        injector = FaultInjector().corrupt_state(at_step=5)
        runner = ResilientRunner(
            solver, checkpoint_every=0.2, injector=injector, verbose=False
        )
        runner.run(0.4)
        assert runner.rollbacks >= 1
        assert (5, "state", "Q") in injector.log
        assert solver.t == pytest.approx(0.4)
        assert np.isfinite(solver.Q).all()

    def test_inflated_dt_trips_cfl_and_recovers(self):
        solver = build_coupled()
        injector = FaultInjector().inflate_dt(at_step=3, factor=1e3)
        runner = ResilientRunner(solver, injector=injector, verbose=False)
        runner.run(0.15)
        assert runner.rollbacks >= 1
        assert solver.t == pytest.approx(0.15)
        assert np.isfinite(solver.Q).all()

    def test_backoff_halves_dt_and_relaxes_after_success(self):
        solver = build_coupled()
        injector = FaultInjector().corrupt_state(at_step=2)
        runner = ResilientRunner(
            solver, checkpoint_every=0.1, injector=injector, verbose=False
        )
        scales = []

        orig_rollback = runner._rollback

        def spy(snap):
            orig_rollback(snap)
            scales.append(runner.dt_scale)

        runner._rollback = spy
        runner.run(0.3)
        # the rollback happened with the scale still at 1; halving follows,
        # then the scale relaxes back to 1 across healthy segments
        assert runner.rollbacks == 1
        assert scales == [1.0]
        assert runner.dt_scale == 1.0

    def test_persistent_corruption_exhausts_retries(self):
        solver = build_coupled()
        injector = FaultInjector().corrupt_state(at_step=4, persistent=True)
        runner = ResilientRunner(
            solver, injector=injector, max_retries=2, verbose=False
        )
        with pytest.raises(SimulationDiverged) as exc_info:
            runner.run(0.3)
        diag = exc_info.value.diagnostics()
        assert diag["attempts"] == 3
        assert diag["failures"]
        assert diag["dt_scale"] < 1.0

    def test_lts_injected_nan_recovers(self):
        crust = elastic(2700.0, 6000.0, 3464.0)
        ocean = acoustic(1000.0, 1500.0)
        xs = np.linspace(0.0, 2000.0, 4)
        mesh = layered_ocean_mesh(
            xs, xs,
            zs_earth=np.linspace(-1500.0, -500.0, 3),
            zs_ocean=np.linspace(-500.0, 0.0, 2),
            earth=crust, ocean=ocean,
        )
        mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
        solver = CoupledSolver(mesh, order=1)
        lts = LocalTimeStepping(solver)
        injector = FaultInjector().corrupt_state(at_step=2, target="eta")
        runner = ResilientRunner(
            solver, lts=lts, checkpoint_every=0.05, injector=injector,
            verbose=False,
        )
        runner.run(0.15)
        assert runner.rollbacks >= 1
        assert np.isfinite(solver.gravity.eta).all()
        assert solver.t == pytest.approx(0.15)

    def test_io_failure_keeps_previous_checkpoint(self, tmp_path):
        baseline = build_coupled()

        # first run: two checkpoints, the SECOND write fails
        runner = ResilientRunner(
            baseline, checkpoint_every=0.1, checkpoint_dir=str(tmp_path),
            verbose=False,
        )
        runner.run(0.1)  # one segment -> one good checkpoint
        first = runner.manager.latest()
        assert first is not None

        injector = FaultInjector().fail_io(at_step=runner.step_count + 1)
        runner.injector = injector
        with pytest.warns(RuntimeWarning, match="checkpoint write failed"):
            runner.run(0.2)
        # the failed write left the earlier checkpoint untouched and no junk
        assert runner.manager.latest() == first
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []
        assert injector.log[-1][1] == "io"

        # and the run itself kept going past the failed write
        assert baseline.t == pytest.approx(0.2)
        runner.injector = None
        runner.run(0.3)  # next segment checkpoints fine again
        assert runner.manager.latest() != first


class TestInjectorContract:
    def test_one_shot_actions_do_not_refire(self):
        solver = build_coupled()
        injector = FaultInjector().corrupt_state(at_step=1)
        injector.on_step(solver, 1)
        solver.Q.flat[0] = 0.0
        injector.on_step(solver, 1)
        assert solver.Q.flat[0] == 0.0
        assert len(injector.log) == 1

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption target"):
            FaultInjector().corrupt_state(0, target="flux")

    def test_io_gate_budget(self):
        injector = FaultInjector().fail_io(at_step=0, count=2)
        for _ in range(2):
            with pytest.raises(InjectedIOError):
                injector.io_gate(5)
        injector.io_gate(5)  # budget exhausted: passes


class TestInputValidation:
    def test_rejects_invalid_boundary_tags(self):
        xs = np.linspace(0.0, 1000.0, 3)
        mesh = box_mesh(xs, xs, xs, [ROCK])
        mesh.tag_boundary(
            lambda c, n: np.full(len(c), FaceKind.FAULT.value)
        )
        with pytest.raises(ValueError, match="invalid or untagged"):
            CoupledSolver(mesh, order=1)

    def test_rejects_non_finite_material(self):
        xs = np.linspace(0.0, 1000.0, 3)
        bad = Material(rho=float("nan"), lam=3e10, mu=3e10)
        mesh = box_mesh(xs, xs, xs, [bad])
        with pytest.raises(ValueError, match="non-finite"):
            CoupledSolver(mesh, order=1)

    def test_valid_mesh_still_accepted(self):
        xs = np.linspace(0.0, 1000.0, 3)
        mesh = box_mesh(xs, xs, xs, [ROCK])
        CoupledSolver(mesh, order=1)  # must not raise


class TestPointSourceBinding:
    def test_bind_caches_time_quadrature(self):
        solver = build_coupled()
        src = solver.sources[0]
        assert src._tq is not None and src._wq is not None
        out = np.zeros_like(solver.Q)
        src.add(out, 0.25, solver.dt)
        assert np.abs(out).max() > 0

    def test_add_matches_fresh_quadrature(self):
        from repro.core.quadrature import gauss_legendre_01

        solver = build_coupled()
        src = solver.sources[0]
        out = np.zeros_like(solver.Q)
        src.add(out, 0.25, solver.dt)
        tq, wq = gauss_legendre_01(6)
        s_int = solver.dt * sum(
            w * src.stf(0.25 + solver.dt * t) for t, w in zip(tq, wq)
        )
        expected = s_int * np.outer(src._phi, src._amp)
        assert np.array_equal(out[src._elem], expected)


class TestPartitionedBackendRecovery:
    """Supervision must be backend-agnostic: the watchdog and the rollback
    / dt-backoff ladder behave identically when steps execute on the
    partitioned (threaded, halo-exchanging) backend (ISSUE 6 satellite)."""

    def build_partitioned(self, workers=2):
        crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
        ocean = acoustic(rho=1000.0, cp=1500.0)
        xs = np.linspace(0.0, 2000.0, 4)
        mesh = layered_ocean_mesh(
            xs, xs,
            zs_earth=np.linspace(-1500.0, -500.0, 3),
            zs_ocean=np.linspace(-500.0, 0.0, 2),
            earth=crust, ocean=ocean,
        )
        mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
        solver = CoupledSolver(mesh, order=2, backend="partitioned",
                               workers=workers)

        def ricker(t):
            a = (np.pi * 2.0 * (t - 0.3)) ** 2
            return (1.0 - 2.0 * a) * np.exp(-a)

        solver.add_source(PointSource(
            [1000.0, 1000.0, -900.0], ricker, moment=[5e12] * 3 + [0, 0, 0]
        ))
        return solver

    def test_watchdog_healthy_on_partitioned_steps(self):
        solver = self.build_partitioned()
        wd = Watchdog(solver)
        for _ in range(5):
            solver.step()
            assert wd.check(dt=solver.dt).ok

    def test_injected_nan_recovers_on_partitioned_backend(self):
        solver = self.build_partitioned()
        injector = FaultInjector().corrupt_state(at_step=5)
        runner = ResilientRunner(
            solver, checkpoint_every=0.2, injector=injector, verbose=False
        )
        runner.run(0.4)
        assert runner.rollbacks >= 1
        assert solver.t == pytest.approx(0.4)
        assert np.isfinite(solver.Q).all()

    def test_recovery_path_identical_to_serial_backend(self):
        # the recovery ladder (rollback, dt-halved replay, relaxation) must
        # be an execution detail of the SUPERVISOR, not the backend: the
        # same injected fault on serial and partitioned backends walks the
        # same path and lands on bitwise-identical state
        runs = {}
        for backend, workers in (("serial", None), ("partitioned", 2)):
            if backend == "serial":
                solver = build_coupled()
            else:
                solver = self.build_partitioned(workers=workers)
            runner = ResilientRunner(
                solver, checkpoint_every=0.1,
                injector=FaultInjector().corrupt_state(at_step=4),
                verbose=False,
            )
            runner.run(0.2)
            runs[backend] = (solver, runner)
        serial, partitioned = runs["serial"], runs["partitioned"]
        assert serial[1].rollbacks == partitioned[1].rollbacks >= 1
        assert np.array_equal(serial[0].Q, partitioned[0].Q)
        assert np.array_equal(serial[0].gravity.eta,
                              partitioned[0].gravity.eta)

    def test_persistent_fault_diverges_on_partitioned_backend(self):
        solver = self.build_partitioned()
        injector = FaultInjector().corrupt_state(at_step=3, persistent=True)
        runner = ResilientRunner(
            solver, injector=injector, max_retries=2, verbose=False
        )
        with pytest.raises(SimulationDiverged) as exc_info:
            runner.run(0.3)
        assert exc_info.value.diagnostics()["attempts"] == 3
