"""Tests of the gravitational free-surface boundary condition (Sec. 4.3).

The headline test measures the frequency of a standing surface gravity wave
in a compressible ocean box and compares against the *exact* dispersion
relation of the continuous model

    ``omega^2 = c^2 (k^2 - kappa^2) = g kappa tanh(kappa h)``

which includes the compressibility correction — this validates both the
eta-ODE integration and the acoustic volume solver at once.
"""

import numpy as np
import pytest
from scipy.optimize import brentq

from repro.core.materials import acoustic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh


def gravity_box(h=1.0, L=4.0, c=15.0, rho=1000.0, nx=8, nz=4, order=2, integrator="exact"):
    oc = acoustic(rho, c)
    m = box_mesh(
        np.linspace(0, L, nx + 1), np.linspace(0, 0.5, 2), np.linspace(-h, 0, nz + 1), [oc]
    )
    m.glue_periodic(np.array([L, 0, 0]))
    m.glue_periodic(np.array([0, 0.5, 0]))

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.WALL.value)
        tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
        return tags

    m.tag_boundary(tagger)
    return CoupledSolver(m, order=order, gravity_integrator=integrator)


def exact_gravity_mode(h, L, c, g=9.81):
    k = 2 * np.pi / L
    def f(kap):
        return c**2 * (k**2 - kap**2) - g * kap * np.tanh(kap * h)

    kap = brentq(f, 1e-9, k * (1 - 1e-12))
    return k, kap, np.sqrt(g * kap * np.tanh(kap * h))


def seed_mode(solver, h, L, c, rho=1000.0, A=1e-3, g=9.81):
    k, kap, omega = exact_gravity_mode(h, L, c, g)

    def ic(x):
        out = np.zeros((len(x), 9))
        p = A * np.cosh(kap * (x[:, 2] + h)) * np.cos(k * x[:, 0])
        out[:, 0] = out[:, 1] = out[:, 2] = -p
        return out

    solver.set_initial_condition(ic)
    gb = solver.gravity
    gb.eta[:] = A * np.cosh(kap * h) * np.cos(k * gb.points[:, :, 0]) / (rho * g)
    return omega


class TestGravityDispersion:
    @pytest.mark.slow
    def test_standing_wave_frequency(self):
        h, L, c = 1.0, 4.0, 15.0
        s = gravity_box(h, L, c)
        omega = seed_mode(s, h, L, c)
        assert len(s.gravity) > 0

        T = 2 * np.pi / omega
        ts, etas = [], []
        probe = np.array([[0.05, 0.25]])
        nsteps = int(0.75 * T / s.dt)
        for i in range(nsteps):
            s.step()
            if i % 4 == 0:
                ts.append(s.t)
                etas.append(s.gravity.sample(probe)[0])
        from scipy.optimize import curve_fit

        ts, etas = np.array(ts), np.array(etas)
        popt, _ = curve_fit(
            lambda t, Af, w, ph: Af * np.cos(w * t + ph), ts, etas, p0=[etas[0], omega, 0.0]
        )
        assert abs(abs(popt[1]) - omega) / omega < 0.01
        # standing wave: amplitude preserved to a few percent
        assert abs(popt[0]) / abs(etas[0]) == pytest.approx(1.0, abs=0.05)

    def test_rk4_matches_exact_integrator(self):
        """Both face-ODE integrators must give the same trajectory."""
        h, L, c = 1.0, 4.0, 15.0
        states = {}
        for integ in ("exact", "rk4"):
            s = gravity_box(h, L, c, nx=4, nz=2, order=2, integrator=integ)
            seed_mode(s, h, L, c)
            for _ in range(30):
                s.step()
            states[integ] = (s.Q.copy(), s.gravity.eta.copy())
        dq = np.abs(states["exact"][0] - states["rk4"][0]).max()
        deta = np.abs(states["exact"][1] - states["rk4"][1]).max()
        assert dq < 1e-8 * max(np.abs(states["exact"][0]).max(), 1e-30)
        assert deta < 1e-8 * np.abs(states["exact"][1]).max()


class TestGravityMechanics:
    def test_flat_surface_at_rest_stays(self):
        """Lake at rest: zero perturbation state is preserved exactly."""
        s = gravity_box(nx=4, nz=2)
        for _ in range(20):
            s.step()
        assert np.abs(s.Q).max() < 1e-12
        assert np.abs(s.gravity.eta).max() < 1e-12

    def test_eta_tracks_uplift(self):
        """A steady upward velocity field lifts eta at the right rate."""
        s = gravity_box(nx=4, nz=2, c=100.0)
        v0 = 1e-4

        def ic(x):
            out = np.zeros((len(x), 9))
            out[:, 8] = v0
            return out

        s.set_initial_condition(ic)
        n = 5
        for _ in range(n):
            s.step()
        # early times: deta/dt ~ v0 (gravity feedback still negligible)
        expect = v0 * s.t
        assert np.allclose(s.gravity.eta, expect, rtol=0.05)

    def test_restoring_force_direction(self):
        """A static bump in eta must accelerate the surface downwards."""
        s = gravity_box(nx=8, nz=2, c=50.0)
        gb = s.gravity
        k = 2 * np.pi / 4.0
        gb.eta[:] = 1e-3 * np.cos(k * gb.points[:, :, 0])
        eta0 = gb.eta.copy()
        for _ in range(10):
            s.step()
        # crest (cos=1) must come down, trough must come up
        crest = np.cos(k * gb.points[:, :, 0]) > 0.9
        trough = np.cos(k * gb.points[:, :, 0]) < -0.9
        assert (gb.eta[crest] < eta0[crest]).all()
        assert (gb.eta[trough] > eta0[trough]).all()

    def test_rejects_gravity_on_elastic(self):
        from repro.core.materials import elastic

        rock = elastic(2700.0, 6000.0, 3464.0)
        m = box_mesh(
            np.linspace(0, 4, 3), np.linspace(0, 4, 3), np.linspace(-1, 0, 2), [rock]
        )

        def tagger(cent, nrm):
            tags = np.full(len(cent), FaceKind.WALL.value)
            tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
            return tags

        m.tag_boundary(tagger)
        with pytest.raises(ValueError):
            CoupledSolver(m, order=1)

    def test_surface_height_output(self):
        s = gravity_box(nx=4, nz=2)
        xy, eta = s.gravity.surface_height()
        assert xy.shape == (len(s.gravity), 2)
        assert eta.shape == (len(s.gravity),)
