"""Tests for the mesh-quality diagnostics."""

import numpy as np

from repro.core.materials import acoustic, elastic
from repro.mesh.generators import bathymetry_mesh, box_mesh
from repro.mesh.quality import assess, timestep_report
from repro.mesh.tetmesh import TetMesh

ROCK = elastic(2700.0, 6000.0, 3464.0)
WATER = acoustic(1000.0, 1500.0)


class TestAssess:
    def test_regular_tet(self):
        """A regular tetrahedron has radius ratio exactly 1."""
        a = 1.0
        verts = np.array(
            [
                [1.0, 1.0, 1.0],
                [1.0, -1.0, -1.0],
                [-1.0, 1.0, -1.0],
                [-1.0, -1.0, 1.0],
            ]
        ) * a
        m = TetMesh(verts, np.array([[0, 1, 2, 3]]), [ROCK])
        q = assess(m)
        assert np.isclose(q.radius_ratio_min, 1.0, rtol=1e-10)
        assert not q.worst_is_sliver

    def test_box_mesh_quality(self):
        m = box_mesh(*(np.linspace(0, 1, 4),) * 3, [ROCK])
        q = assess(m)
        assert q.n_elements == m.n_elements
        assert np.isclose(q.volume_total, 1.0)
        assert 0.2 < q.radius_ratio_min <= q.radius_ratio_mean <= 1.0
        assert q.edge_min > 0.3
        assert np.isclose(q.edge_max, np.sqrt(3) / 3, rtol=0.01)  # cube diagonal /3

    def test_sliver_detected(self):
        """A squashed tet is flagged as a sliver."""
        verts = np.array(
            [[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0.5, 0.5, 1e-3]]
        )
        m = TetMesh(verts, np.array([[0, 1, 2, 3]]), [ROCK])
        q = assess(m)
        assert q.radius_ratio_min < 0.05
        assert q.worst_is_sliver

    def test_flat_ocean_cells_lower_quality(self):
        m = bathymetry_mesh(
            np.linspace(0, 4000.0, 5),
            np.linspace(0, 4000.0, 5),
            lambda x, y: np.full_like(x, -50.0),
            2,
            np.linspace(-3000.0, -50.0, 3),
            ROCK,
            WATER,
        )
        q = assess(m)
        # 25 m layers under 1 km cells: very flat, low ratio but valid
        assert 0 < q.radius_ratio_min < 0.2
        assert q.insphere_min < 50.0


class TestReport:
    def test_timestep_report_contents(self):
        m = box_mesh(*(np.linspace(0, 1000.0, 3),) * 3, [ROCK])
        rep = timestep_report(m, order=2)
        assert "elements: 48" in rep
        assert "LTS clusters" in rep
        assert "update reduction" in rep
