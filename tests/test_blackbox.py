"""Flight recorder, diagnostic bundles, NaN localization and classifier."""

import json
import os
import time
import types

import numpy as np
import pytest

from repro.core.health import (
    SimulationDiverged,
    first_nonfinite_index,
    state_arrays,
    Watchdog,
)
from repro.core.health.inject import FaultInjector
from repro.core.materials import acoustic, elastic
from repro.core.resilience import ResilientRunner
from repro.core.solver import CoupledSolver, ocean_surface_gravity_tagger
from repro.mesh.generators import box_mesh, layered_ocean_mesh
from repro.obs.blackbox import (
    BUNDLE_SCHEMA_VERSION,
    BUNDLE_SUFFIX,
    VERDICTS,
    FlightRecorder,
    build_bundle,
    classify_bundle,
    diagnose_bundle_file,
    dump_bundle,
    field_statistics,
    find_bundles,
    load_bundle,
    locate_nonfinite,
    newest_bundle,
    thread_stacks,
    validate_bundle,
    write_bundle,
)

ROCK = elastic(2700.0, 6000.0, 3464.0)


def build_coupled(order=2):
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, 2000.0, 4)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-1500.0, -500.0, 3),
        zs_ocean=np.linspace(-500.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    return CoupledSolver(mesh, order=order)


def build_closed_passive():
    xs = np.linspace(0.0, 1000.0, 4)
    mesh = box_mesh(xs, xs, xs, [ROCK])
    solver = CoupledSolver(mesh, order=1)

    def bump(points):
        out = np.zeros((len(points), 9))
        r2 = ((points - 500.0) ** 2).sum(axis=1)
        out[:, 8] = np.exp(-r2 / 200.0**2)
        return out

    solver.set_initial_condition(bump)
    return solver


# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=8)
        for i in range(100):
            rec.record_micro(i, i % 3, i, 1e-3)
        assert len(rec) == 8
        assert rec.recorded == 100
        events = rec.events()
        assert len(events) == 8
        # oldest events fell off the ring; the tail is intact, in order
        assert [e["index"] for e in events] == list(range(92, 100))

    def test_event_normalization(self):
        rec = FlightRecorder(capacity=16)
        rec.record_micro(0, 2, 5, 1e-3)
        rec.record_step(1, 0.25, 1e-3, energy=3.5, dt_scale=0.5)
        rec.record("checkpoint", step=1, path="x.npz")
        micro, step, ckpt = rec.events()
        assert micro == {"kind": "micro", "index": 0, "cluster": 2,
                        "t_int": 5, "dt": 1e-3}
        assert step["kind"] == "step" and step["energy"] == 3.5
        assert step["dt_scale"] == 0.5
        assert ckpt == {"kind": "checkpoint", "step": 1, "path": "x.npz"}
        snap = rec.snapshot()
        assert snap["capacity"] == 16 and snap["recorded"] == 3

    def test_subscribe_records_scheduler_windows(self):
        from repro.sched import HookBus

        rec = FlightRecorder(capacity=4)
        bus = HookBus()
        rec.subscribe(bus)
        ev = types.SimpleNamespace(index=7, cluster=1, t_int=3, dt=2e-3)
        bus.micro_step(None, ev)
        events = rec.events()
        assert events == [{"kind": "micro", "index": 7, "cluster": 1,
                           "t_int": 3, "dt": 2e-3}]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
class TestLocalization:
    def test_bisection_finds_first_bad_entry(self):
        arr = np.zeros(5000)
        arr[3777] = np.nan
        assert first_nonfinite_index(arr) == 3777

    def test_bisection_small_and_edge_cases(self):
        assert first_nonfinite_index(np.zeros(10)) is None
        a = np.zeros(10)
        a[0] = np.inf
        assert first_nonfinite_index(a) == 0
        b = np.zeros(2000)
        b[-1] = np.nan
        assert first_nonfinite_index(b) == 1999

    def test_first_of_several(self):
        arr = np.zeros(4096)
        arr[[100, 2000, 4000]] = np.nan
        assert first_nonfinite_index(arr) == 100

    def test_locate_on_clean_solver_is_none(self):
        solver = build_closed_passive()
        assert locate_nonfinite(solver) is None

    def test_locate_names_field_and_element(self):
        solver = build_closed_passive()
        n_dof = solver.Q.shape[1] * solver.Q.shape[2]
        elem = 7
        solver.Q.flat[elem * n_dof] = np.nan
        loc = locate_nonfinite(solver)
        assert loc["field"] == "Q"
        assert loc["element"] == elem
        assert loc["n_nan"] == 1 and loc["n_inf"] == 0
        assert loc["value"] == "nan"

    def test_watchdog_report_names_element_and_field(self):
        """Satellite: the non-finite report localizes the first offender
        even without the full bundle path."""
        solver = build_closed_passive()
        n_dof = solver.Q.shape[1] * solver.Q.shape[2]
        solver.Q.flat[5 * n_dof] = np.inf
        report = Watchdog(solver).check()
        assert not report.ok
        msg = report.checks["state"]
        assert "first at element 5" in msg
        assert "Q[5" in msg

    def test_field_statistics(self):
        solver = build_closed_passive()
        solver.Q.flat[0] = np.nan
        stats = field_statistics(solver)
        q = stats["Q"]
        assert q["n_nan"] == 1
        assert q["size"] == solver.Q.size
        assert np.isfinite(q["abs_max"])

    def test_state_arrays_covers_modal_state(self):
        solver = build_closed_passive()
        names = [name for name, _ in state_arrays(solver)]
        assert "Q" in names


# ----------------------------------------------------------------------
class TestBundleIO:
    def _doc(self, **kw):
        kw.setdefault("kind", "diverged")
        kw.setdefault("reason", "Q has 1 NaN")
        return build_bundle(**kw)

    def test_round_trip_and_validation(self, tmp_path):
        path = str(tmp_path / ("a" + BUNDLE_SUFFIX))
        rec = FlightRecorder(capacity=4)
        rec.record_step(1, 0.1, 1e-3)
        doc = self._doc(ring=rec, context={"member": "m0", "attempt": 2})
        write_bundle(path, doc)
        loaded = load_bundle(path)
        assert loaded["schema"] == BUNDLE_SCHEMA_VERSION
        assert loaded["context"] == {"member": "m0", "attempt": 2}
        assert loaded["ring"]["events"][0]["kind"] == "step"
        assert validate_bundle(loaded) == []
        # no temp files left behind by the atomic publish
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_fingerprint_detects_tampering(self, tmp_path):
        path = str(tmp_path / ("b" + BUNDLE_SUFFIX))
        write_bundle(path, self._doc())
        doc = load_bundle(path)
        doc["reason"] = "totally fine actually"
        errors = validate_bundle(doc)
        assert any("fingerprint mismatch" in e for e in errors)

    def test_validate_rejects_malformed(self):
        assert validate_bundle([]) == ["bundle is not a JSON object"]
        errors = validate_bundle({"schema": "x", "ring": 3})
        assert any("schema" in e for e in errors)
        assert any("ring" in e for e in errors)

    def test_suffix_enforced(self, tmp_path):
        with pytest.raises(ValueError, match="blackbox.json"):
            write_bundle(str(tmp_path / "a.json"), self._doc())

    def test_state_excerpt_rides_alongside(self, tmp_path):
        path = str(tmp_path / ("c" + BUNDLE_SUFFIX))
        state = {"Q": np.arange(6.0).reshape(2, 3)}
        dump_bundle(path, kind="diverged", state=state)
        doc = load_bundle(path)
        assert validate_bundle(doc) == []  # fingerprint covers the excerpt
        npz = os.path.join(str(tmp_path), doc["excerpt"])
        assert os.path.isfile(npz)
        back = np.load(npz)
        np.testing.assert_array_equal(back["Q"], state["Q"])

    def test_find_and_newest(self, tmp_path):
        assert find_bundles(str(tmp_path)) == []
        assert newest_bundle(str(tmp_path)) is None
        a = str(tmp_path / ("a" + BUNDLE_SUFFIX))
        b = str(tmp_path / ("b" + BUNDLE_SUFFIX))
        write_bundle(a, self._doc())
        write_bundle(b, self._doc())
        os.utime(a, (time.time() - 100, time.time() - 100))
        assert find_bundles(str(tmp_path)) == [a, b]
        assert newest_bundle(str(tmp_path)) == b
        assert find_bundles(str(tmp_path / "missing")) == []

    def test_solver_forensics_embedded(self, tmp_path):
        solver = build_closed_passive()
        solver.Q.flat[0] = np.nan
        doc = self._doc(solver=solver)
        assert doc["nan_origin"]["field"] == "Q"
        assert doc["field_stats"]["Q"]["n_nan"] == 1
        assert "forensics_error" not in doc

    def test_thread_stacks_cover_current_thread(self):
        stacks = thread_stacks()
        assert any(s["current"] for s in stacks.values())
        mine = [s for s in stacks.values() if s["current"]][0]
        assert any("thread_stacks" in ln or "test_blackbox" in ln
                   for ln in mine["frames"])


# ----------------------------------------------------------------------
class TestClassifier:
    def test_located_nan_beats_everything(self):
        doc = build_bundle(
            kind="diverged",
            reason="energy runaway and CFL violated",  # red herrings
            extra={"nan_origin": {"field": "Q", "element": 3,
                                  "flat_index": 3, "index": [3, 0, 0],
                                  "value": "nan", "n_nan": 1, "n_inf": 0,
                                  "sim_t": 0.5, "lts_cluster": 1,
                                  "partition": 0}},
        )
        v = classify_bundle(doc)
        assert v["verdict"] == "nan_origin"
        assert any("Q[3]" in e for e in v["evidence"])
        assert any("LTS cluster 1" in e for e in v["evidence"])

    def test_textual_nan(self):
        doc = build_bundle(kind="recovery",
                           failures=["Q has 2 NaN / 0 Inf values"])
        assert classify_bundle(doc)["verdict"] == "nan_origin"

    def test_cfl(self):
        doc = build_bundle(kind="diverged",
                           reason="CFL violated: dt 0.5 not admissible")
        assert classify_bundle(doc)["verdict"] == "cfl_collapse"

    def test_energy(self):
        doc = build_bundle(kind="diverged",
                           reason="energy grew beyond the Lyapunov bound")
        assert classify_bundle(doc)["verdict"] == "energy_blowup"

    def test_supervisor_kind_is_worker_death(self):
        doc = build_bundle(kind="supervisor", reason="heartbeat_timeout")
        assert classify_bundle(doc)["verdict"] == "worker_death"

    def test_death_markers(self):
        for reason in ("killed by signal 9", "exited with status 3",
                       "corrupt_result", "hang detected"):
            doc = build_bundle(kind="supervisor", reason=reason)
            assert classify_bundle(doc)["verdict"] == "worker_death", reason

    def test_exception_kind_is_worker_death(self):
        doc = build_bundle(kind="exception",
                           error="Traceback ...\nKeyError: 'x'\n")
        assert classify_bundle(doc)["verdict"] == "worker_death"

    def test_unknown(self):
        doc = build_bundle(kind="diverged")
        v = classify_bundle(doc)
        assert v["verdict"] == "unknown"
        assert v["verdict"] in VERDICTS


# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def _run_to_divergence(self, tmp_path, injector, **kw):
        solver = build_coupled(order=1)
        runner = ResilientRunner(
            solver, injector=injector, max_retries=1, verbose=False,
            checkpoint_dir=str(tmp_path), **kw,
        )
        with pytest.raises(SimulationDiverged) as exc_info:
            runner.run(6 * solver.dt)
        return runner, exc_info.value

    def test_nan_divergence_dumps_classifiable_bundle(self, tmp_path):
        inj = FaultInjector().corrupt_state(at_step=2, persistent=True)
        runner, exc = self._run_to_divergence(tmp_path, inj)
        assert exc.bundle is not None
        assert exc.bundle.endswith(BUNDLE_SUFFIX)
        assert exc.diagnostics()["bundle"] == exc.bundle
        doc = load_bundle(exc.bundle)
        assert validate_bundle(doc) == []
        assert doc["kind"] == "diverged"
        # dumped BEFORE rollback: the corruption is still localizable
        assert doc["nan_origin"]["field"] == "Q"
        assert classify_bundle(doc)["verdict"] == "nan_origin"
        # the terminal bundle ships a state excerpt next to the JSON
        assert os.path.isfile(os.path.join(str(tmp_path), doc["excerpt"]))
        # ring recorded the supervised steps leading up to the fault
        kinds = {e["kind"] for e in doc["ring"]["events"]}
        assert "step" in kinds
        # the retry before exhaustion dumped its own recovery bundle
        kinds_written = [load_bundle(p)["kind"]
                         for p in runner.bundles_written]
        assert kinds_written.count("recovery") >= 1
        assert kinds_written[-1] == "diverged"
        assert runner.last_bundle == exc.bundle

    def test_energy_blowup_verdict(self, tmp_path):
        inj = FaultInjector().corrupt_state(at_step=2, value=1.0e30,
                                            persistent=True)
        _, exc = self._run_to_divergence(tmp_path, inj)
        doc = load_bundle(exc.bundle)
        assert doc["nan_origin"] is None  # finite — huge, but finite
        assert classify_bundle(doc)["verdict"] == "energy_blowup"

    def test_cfl_collapse_verdict(self, tmp_path):
        inj = FaultInjector().inflate_dt(at_step=2, factor=64.0,
                                         persistent=True)
        _, exc = self._run_to_divergence(tmp_path, inj)
        doc = load_bundle(exc.bundle)
        assert classify_bundle(doc)["verdict"] == "cfl_collapse"

    def test_no_directory_means_no_bundle_but_same_fault(self):
        solver = build_coupled(order=1)
        inj = FaultInjector().corrupt_state(at_step=2, persistent=True)
        runner = ResilientRunner(solver, injector=inj, max_retries=1,
                                 verbose=False)
        with pytest.raises(SimulationDiverged) as exc_info:
            runner.run(6 * solver.dt)
        assert exc_info.value.bundle is None
        assert runner.bundles_written == []

    def test_opt_out_disables_recorder(self, tmp_path):
        solver = build_coupled(order=1)
        inj = FaultInjector().corrupt_state(at_step=2, persistent=True)
        runner = ResilientRunner(solver, injector=inj, max_retries=1,
                                 verbose=False, blackbox=False,
                                 checkpoint_dir=str(tmp_path))
        assert runner.recorder is None
        with pytest.raises(SimulationDiverged) as exc_info:
            runner.run(6 * solver.dt)
        assert exc_info.value.bundle is None

    def test_clean_run_dumps_nothing(self, tmp_path):
        solver = build_coupled(order=1)
        runner = ResilientRunner(solver, verbose=False,
                                 checkpoint_dir=str(tmp_path))
        runner.run(4 * solver.dt)
        assert runner.bundles_written == []
        assert runner.last_bundle is None
        assert find_bundles(str(tmp_path)) == []
        # ...but the ring was recording the whole time
        assert runner.recorder.recorded >= 4

    def test_recovered_run_keeps_recovery_bundle_only(self, tmp_path):
        solver = build_coupled(order=1)
        inj = FaultInjector().corrupt_state(at_step=2)  # one-shot
        runner = ResilientRunner(solver, injector=inj, max_retries=3,
                                 verbose=False, checkpoint_dir=str(tmp_path))
        runner.run(6 * solver.dt)  # recovers
        kinds = [load_bundle(p)["kind"] for p in runner.bundles_written]
        assert kinds == ["recovery"]

    def test_dump_exception_bundle(self, tmp_path):
        solver = build_coupled(order=1)
        runner = ResilientRunner(solver, verbose=False,
                                 checkpoint_dir=str(tmp_path))
        try:
            raise KeyError("boom")
        except KeyError as exc:
            path = runner.dump_exception(exc)
        doc = load_bundle(path)
        assert doc["kind"] == "exception"
        assert "KeyError" in doc["error"]
        assert classify_bundle(doc)["verdict"] == "worker_death"

    def test_bundle_context_is_stamped(self, tmp_path):
        solver = build_coupled(order=1)
        inj = FaultInjector().corrupt_state(at_step=2, persistent=True)
        runner = ResilientRunner(solver, injector=inj, max_retries=1,
                                 verbose=False, checkpoint_dir=str(tmp_path))
        runner.bundle_context = {"member": "m7", "attempt": 2}
        with pytest.raises(SimulationDiverged) as exc_info:
            runner.run(6 * solver.dt)
        doc = load_bundle(exc_info.value.bundle)
        assert doc["context"] == {"member": "m7", "attempt": 2}


# ----------------------------------------------------------------------
class TestDiagnoseCLI:
    def _bundle(self, tmp_path, **kw):
        path = str(tmp_path / ("x" + BUNDLE_SUFFIX))
        kw.setdefault("kind", "diverged")
        write_bundle(path, build_bundle(**kw))
        return path

    def test_diagnose_ok(self, tmp_path, capsys):
        path = self._bundle(tmp_path, reason="Q has 1 NaN",
                            context={"member": "m0", "attempt": 1})
        assert diagnose_bundle_file(path, check=True) == 0
        out = capsys.readouterr().out
        assert "verdict nan_origin" in out
        assert "member m0, attempt 1" in out
        assert "OK" in out

    def test_diagnose_directory_picks_newest(self, tmp_path, capsys):
        self._bundle(tmp_path, reason="Q has 1 NaN")
        assert diagnose_bundle_file(str(tmp_path)) == 0
        assert "verdict nan_origin" in capsys.readouterr().out

    def test_diagnose_empty_directory(self, tmp_path, capsys):
        assert diagnose_bundle_file(str(tmp_path)) == 2
        assert "no" in capsys.readouterr().err

    def test_diagnose_unreadable(self, tmp_path, capsys):
        bad = str(tmp_path / ("bad" + BUNDLE_SUFFIX))
        with open(bad, "w") as fh:
            fh.write("{ torn")
        assert diagnose_bundle_file(bad) == 2

    def test_diagnose_tampered_fails_check_only(self, tmp_path, capsys):
        path = self._bundle(tmp_path, reason="energy runaway")
        doc = json.loads(open(path).read())
        doc["reason"] = "nothing to see"
        with open(path, "w") as fh:
            json.dump(doc, fh)
        # without --check: still classifies (with a warning on stderr)
        assert diagnose_bundle_file(path) == 0
        captured = capsys.readouterr()
        assert "fingerprint mismatch" in captured.err
        assert diagnose_bundle_file(path, check=True) == 1

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.__main__ import main

        path = self._bundle(tmp_path, reason="CFL violated")
        assert main(["obs-diagnose", path, "--check"]) == 0
        assert "verdict cfl_collapse" in capsys.readouterr().out


# ----------------------------------------------------------------------
class TestOverheadBudget:
    def test_recorder_hot_path_within_step_budget(self):
        """The always-on ring must cost < 2% of a step at ~2 record sites
        per supervised step (micro window + post-watchdog gauge)."""
        solver = build_coupled(order=2)
        rec = FlightRecorder()
        n = 50_000
        t0 = time.perf_counter()
        for i in range(n):
            rec.record_micro(i, 0, i, 1e-3)
            rec.record_step(i, 1e-3 * i, 1e-3, energy=1.0, dt_scale=1.0)
        per_call = (time.perf_counter() - t0) / (2 * n)

        t0 = time.perf_counter()
        for _ in range(3):
            solver.step()
        per_step = (time.perf_counter() - t0) / 3

        sites = 2  # recorder appends per supervised step
        overhead = sites * per_call / per_step
        assert overhead < 0.02, (
            f"flight recorder costs {overhead * 100:.3f}% of a step "
            f"({per_call * 1e9:.0f} ns per append)"
        )
