"""Unit and property tests for the fault friction laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rupture.friction import LinearSlipWeakening, RateStateFastVelocityWeakening


class TestLinearSlipWeakening:
    def test_coefficient_endpoints(self):
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.5)
        assert np.isclose(fr.coefficient(np.array([0.0]))[0], 0.6)
        assert np.isclose(fr.coefficient(np.array([0.5]))[0], 0.3)
        assert np.isclose(fr.coefficient(np.array([5.0]))[0], 0.3)  # saturates

    def test_locked_below_strength(self):
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.5)
        V, tau = fr.solve(np.array([50e6]), np.array([120e6]), np.array([0.0]), np.array([4e6]))
        assert V[0] == 0.0
        assert np.isclose(tau[0], 50e6)

    def test_slipping_above_strength(self):
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.5)
        eta = 4.6e6
        V, tau = fr.solve(np.array([80e6]), np.array([120e6]), np.array([0.0]), np.array([eta]))
        assert np.isclose(tau[0], 0.6 * 120e6)
        assert np.isclose(V[0], (80e6 - 72e6) / eta)

    def test_cohesion_adds_strength(self):
        fr0 = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.5)
        fr1 = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.5, cohesion=5e6)
        args = (np.array([80e6]), np.array([120e6]), np.array([0.0]), np.array([4e6]))
        V0, _ = fr0.solve(*args)
        V1, _ = fr1.solve(*args)
        assert V1[0] < V0[0]

    def test_state_is_slip(self):
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.5)
        psi = fr.evolve_state(np.array([0.1]), np.array([2.0]), 0.05)
        assert np.isclose(psi[0], 0.2)

    @given(
        st.floats(min_value=1e5, max_value=2e8),
        st.floats(min_value=1e6, max_value=3e8),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_traction_never_exceeds_stick_or_strength(self, ts, sig, slip):
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.5)
        V, tau = fr.solve(np.array([ts]), np.array([sig]), np.array([slip]), np.array([4e6]))
        strength = 0.6 * sig - min(slip / 0.5, 1.0) * 0.3 * sig
        assert tau[0] <= ts + 1e-3
        assert tau[0] <= strength + 1e-3
        assert V[0] >= 0


class TestRateState:
    def make(self):
        return RateStateFastVelocityWeakening(a=0.01, b=0.014, L=0.2, Vw=0.1, fw=0.2, f0=0.6)

    def test_friction_coefficient_monotone_in_V(self):
        fr = self.make()
        psi = np.full(5, 0.6)
        V = np.logspace(-9, 1, 5)
        f = fr.f(V, psi)
        assert (np.diff(f) > 0).all()

    def test_steady_state_weakens_at_high_V(self):
        fr = self.make()
        assert fr.f_ss(np.array([10.0]))[0] < fr.f_ss(np.array([1e-9]))[0]
        # fast limit approaches fw
        assert np.isclose(fr.f_ss(np.array([1e4]))[0], fr.fw, atol=0.02)

    def test_equilibrium_initialization(self):
        """psi from stress makes the fault creep exactly at Vini."""
        fr = self.make()
        tau0, sig = np.array([45e6]), np.array([120e6])
        psi0 = fr.initial_state_from_stress(tau0, sig)
        # friction at Vini reproduces the stress ratio
        assert np.isclose(fr.f(np.array([fr.Vini]), psi0)[0], 45e6 / 120e6, rtol=1e-9)

    def test_solve_residual_zero(self):
        fr = self.make()
        psi0 = fr.initial_state_from_stress(np.array([45e6]), np.array([120e6]))
        eta = np.array([4.6e6])
        for stick in (45e6, 70e6, 90e6, 120e6):
            V, tau = fr.solve(np.array([stick]), np.array([120e6]), psi0.copy(), eta)
            resid = stick - eta * V - 120e6 * fr.f(V, psi0)
            assert abs(resid[0]) < 1e-5 * stick
            assert np.isclose(tau[0], stick - eta[0] * V[0], rtol=1e-9)

    def test_solve_zero_normal_stress(self):
        """With zero normal stress there is no strength: V = stick / eta."""
        fr = self.make()
        V, tau = fr.solve(np.array([1e6]), np.array([0.0]), np.array([0.6]), np.array([4e6]))
        assert np.isclose(V[0], 1e6 / 4e6, rtol=1e-8)
        assert np.isclose(tau[0], 0.0, atol=1.0)

    def test_state_relaxes_to_steady_state(self):
        fr = self.make()
        V = np.array([1.0])
        psi = np.array([0.9])
        # evolve a long time at fixed V: psi -> psi_ss(V)
        psi_end = fr.evolve_state(psi, V, 100.0 * fr.L / V[0])
        assert np.isclose(psi_end[0], fr.psi_ss(V)[0], rtol=1e-6)

    def test_state_exponential_rate(self):
        fr = self.make()
        V = np.array([0.5])
        psi0 = np.array([0.9])
        pss = fr.psi_ss(V)
        dt = 0.01
        psi1 = fr.evolve_state(psi0, V, dt)
        expect = pss + (psi0 - pss) * np.exp(-V * dt / fr.L)
        assert np.allclose(psi1, expect)

    @given(st.floats(min_value=1e5, max_value=3e8), st.floats(min_value=0.3, max_value=1.2))
    @settings(max_examples=30, deadline=None)
    def test_solution_properties(self, stick, psi):
        fr = self.make()
        V, tau = fr.solve(np.array([stick]), np.array([120e6]), np.array([psi]), np.array([4.6e6]))
        assert V[0] >= 0
        assert 0 <= tau[0] <= stick * (1 + 1e-9)
        # residual small
        resid = stick - 4.6e6 * V - 120e6 * fr.f(V, np.array([psi]))
        assert abs(resid[0]) <= 1e-5 * max(stick, 1e6)

    def test_iteration_count_exposed(self):
        fr = self.make()
        fr.solve(np.array([90e6]), np.array([120e6]), np.array([0.6]), np.array([4.6e6]))
        assert fr.last_iterations >= 1
