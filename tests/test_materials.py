"""Tests for material models and PDE Jacobians."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.materials import Material, acoustic, elastic, jacobian_normal, jacobians


class TestMaterial:
    def test_elastic_roundtrip(self):
        m = elastic(2700.0, 6000.0, 3464.0)
        assert np.isclose(m.cp, 6000.0)
        assert np.isclose(m.cs, 3464.0)
        assert not m.is_acoustic

    def test_acoustic(self):
        w = acoustic(1000.0, 1500.0)
        assert w.is_acoustic
        assert np.isclose(w.cp, 1500.0)
        assert w.cs == 0.0
        assert w.Zs == 0.0
        assert np.isclose(w.lam, 1000.0 * 1500.0**2)  # bulk modulus

    def test_impedances(self):
        m = elastic(2700.0, 6000.0, 3464.0)
        assert np.isclose(m.Zp, 2700 * 6000)
        assert np.isclose(m.Zs, 2700 * 3464)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(ValueError):
            Material(rho=0.0, lam=1.0)

    def test_rejects_negative_mu(self):
        with pytest.raises(ValueError):
            Material(rho=1.0, lam=1.0, mu=-1.0)

    @given(
        st.floats(min_value=0.1, max_value=1e4),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=0.1, max_value=0.7),
    )
    @settings(max_examples=30, deadline=None)
    def test_speed_ordering(self, rho, cp, cs_frac):
        m = elastic(rho, cp, cp * cs_frac)
        assert m.cp > m.cs >= 0
        assert m.max_wave_speed == m.cp


class TestJacobians:
    def test_eigenvalues_elastic(self, rock):
        A, B, C = jacobians(rock)
        for M in (A, B, C):
            ev = np.sort(np.real(np.linalg.eigvals(M)))
            assert np.allclose(ev[0], -rock.cp, rtol=1e-10)
            assert np.allclose(ev[-1], rock.cp, rtol=1e-10)
            assert np.isclose(np.sort(np.abs(ev))[3], rock.cs, rtol=1e-8)

    def test_eigenvalues_acoustic(self, water):
        A, _, _ = jacobians(water)
        ev = np.sort(np.real(np.linalg.eigvals(A)))
        assert np.isclose(ev[0], -water.cp)
        assert np.isclose(ev[-1], water.cp)
        assert np.count_nonzero(np.abs(ev) > 1.0) == 2  # only P waves

    def test_acoustic_is_special_case(self, water):
        """Acoustic equations = elastic with mu=0, K=lambda (paper Sec. 4.1)."""
        A, B, C = jacobians(water)
        # pressure rows: with sigma = -p I, dp/dt = -K div(v) means all three
        # diagonal stress rows must be identical
        assert np.allclose(A[0], A[1])
        assert np.allclose(A[1], A[2])
        assert np.allclose(B[0], B[2])
        # no shear coupling at all
        assert not A[3:6].any()
        assert not B[3].any() or not B[3, 6:].any()

    def test_jacobian_normal_axes(self, rock):
        A, B, C = jacobians(rock)
        assert np.allclose(jacobian_normal(rock, [1, 0, 0]), A)
        assert np.allclose(jacobian_normal(rock, [0, 1, 0]), B)
        assert np.allclose(jacobian_normal(rock, [0, 0, 1]), C)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_normal_jacobian_speeds_rotation_invariant(self, seed):
        rock = elastic(2700.0, 6000.0, 3464.0)
        rng = np.random.default_rng(seed)
        n = rng.normal(size=3)
        n /= np.linalg.norm(n)
        ev = np.sort(np.real(np.linalg.eigvals(jacobian_normal(rock, n))))
        assert np.isclose(ev[0], -rock.cp, rtol=1e-8)
        assert np.isclose(ev[-1], rock.cp, rtol=1e-8)
